package simurgh_test

import (
	"fmt"

	"simurgh"
)

// ExampleCreate shows the minimal lifecycle: create a volume, attach a
// process, write and read back a file.
func ExampleCreate() {
	vol, err := simurgh.Create(32 << 20)
	if err != nil {
		panic(err)
	}
	defer vol.Unmount()
	c, _ := vol.Attach(simurgh.Root)
	fd, _ := c.Create("/greeting", 0o644)
	c.Write(fd, []byte("hello from NVMM"))
	c.Close(fd)

	fd, _ = c.Open("/greeting", simurgh.ORdonly, 0)
	buf := make([]byte, 32)
	n, _ := c.Read(fd, buf)
	fmt.Println(string(buf[:n]))
	// Output: hello from NVMM
}

// ExampleVolume_Crash demonstrates crash simulation and recovery on a
// tracked volume.
func ExampleVolume_Crash() {
	vol, err := simurgh.CreateWithOptions(32<<20, simurgh.Options{Tracked: true})
	if err != nil {
		panic(err)
	}
	c, _ := vol.Attach(simurgh.Root)
	fd, _ := c.Create("/survivor", 0o644)
	c.Write(fd, []byte("durable"))
	c.Close(fd)

	vol.Crash() // power failure: unfenced stores are dropped
	stats, err := vol.Remount(simurgh.Options{Tracked: true})
	if err != nil {
		panic(err)
	}
	fmt.Println("clean shutdown:", stats.WasClean)

	c2, _ := vol.Attach(simurgh.Root)
	fd, _ = c2.Open("/survivor", simurgh.ORdonly, 0)
	buf := make([]byte, 16)
	n, _ := c2.Read(fd, buf)
	fmt.Println(string(buf[:n]))
	// Output:
	// clean shutdown: false
	// durable
}

// ExampleClient_Rename shows atomic rename with replacement.
func ExampleClient_Rename() {
	vol, _ := simurgh.Create(32 << 20)
	c, _ := vol.Attach(simurgh.Root)
	fd, _ := c.Create("/draft", 0o644)
	c.Write(fd, []byte("v2"))
	c.Close(fd)
	fd, _ = c.Create("/published", 0o644)
	c.Write(fd, []byte("v1"))
	c.Close(fd)

	c.Rename("/draft", "/published") // atomic replace

	fd, _ = c.Open("/published", simurgh.ORdonly, 0)
	buf := make([]byte, 8)
	n, _ := c.Read(fd, buf)
	fmt.Println(string(buf[:n]))
	// Output: v2
}
