// Shared directory scalability: many "processes" create files in ONE
// directory concurrently — the workload that collapses on kernel file
// systems (they serialize on the directory's inode mutex) and scales on
// Simurgh (per-line busy locks in the directory hash blocks, Fig 7b).
//
// The example runs the same storm against Simurgh and a NOVA-like kernel
// baseline and prints both rates. On a multi-core machine the gap widens
// with the worker count.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"simurgh"
	"simurgh/internal/cost"
	"simurgh/internal/fsapi"
	"simurgh/internal/kfs"
	"simurgh/internal/pmem"
	"simurgh/internal/vfs"
)

const (
	workers  = 8
	duration = 500 * time.Millisecond
)

func storm(name string, attach func() (fsapi.Client, error)) {
	var ops int64
	var mu sync.Mutex
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := attach()
			if err != nil {
				log.Fatal(err)
			}
			local := int64(0)
			for i := 0; ; i++ {
				select {
				case <-stop:
					mu.Lock()
					ops += local
					mu.Unlock()
					return
				default:
				}
				fd, err := c.Create(fmt.Sprintf("/shared/w%d-f%d", w, i), 0o644)
				if err != nil {
					log.Fatalf("%s: %v", name, err)
				}
				c.Close(fd)
				local++
			}
		}()
	}
	time.Sleep(duration)
	close(stop)
	wg.Wait()
	fmt.Printf("%-10s %8.0f creates/s in one shared directory (%d workers)\n",
		name, float64(ops)/duration.Seconds(), workers)
}

func main() {
	// Simurgh.
	vol, err := simurgh.Create(512 << 20)
	if err != nil {
		log.Fatal(err)
	}
	c, _ := vol.Attach(simurgh.Root)
	c.Mkdir("/shared", 0o777)
	storm("simurgh", func() (fsapi.Client, error) { return vol.Attach(simurgh.Root) })

	// NOVA-like baseline under the simulated kernel storage stack.
	nova := vfs.New(kfs.New(kfs.KindNova, pmem.New(512<<20)), cost.KernelModel())
	nc, _ := nova.Attach(fsapi.Root)
	nc.Mkdir("/shared", 0o777)
	storm("nova", func() (fsapi.Client, error) { return nova.Attach(fsapi.Root) })
}
