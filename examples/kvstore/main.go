// KV store on Simurgh: the LSM key-value store (the LevelDB stand-in used
// by the YCSB experiments) running on an emulated NVMM volume — the
// "data-intensive application on a node-local file system" scenario the
// paper's introduction motivates.
package main

import (
	"fmt"
	"log"

	"simurgh"
	"simurgh/internal/leveldb"
)

func main() {
	vol, err := simurgh.Create(256 << 20)
	if err != nil {
		log.Fatal(err)
	}
	defer vol.Unmount()
	c, err := vol.Attach(simurgh.Root)
	if err != nil {
		log.Fatal(err)
	}

	db, err := leveldb.Open(c, "/db", leveldb.Options{
		MemtableBytes: 64 << 10, // small memtable so SSTables appear
		SyncWrites:    true,     // fsync the WAL per update, like LevelDB sync mode
	})
	if err != nil {
		log.Fatal(err)
	}

	// Write a batch of user records.
	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("user%05d", i)
		if err := db.Put(key, fmt.Sprintf(`{"id":%d,"name":"user-%d"}`, i, i)); err != nil {
			log.Fatal(err)
		}
	}
	// Updates and deletes.
	db.Put("user00042", `{"id":42,"name":"renamed"}`)
	db.Delete("user00013")

	// Point reads.
	v, ok, _ := db.Get("user00042")
	fmt.Printf("user00042 -> %s (found=%v)\n", v, ok)
	_, ok, _ = db.Get("user00013")
	fmt.Printf("user00013 deleted (found=%v)\n", ok)

	// Range scan.
	rows, err := db.Scan("user00100", 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("scan from user00100:")
	for _, kv := range rows {
		fmt.Printf("  %s = %.40s\n", kv[0], kv[1])
	}

	if err := db.Close(); err != nil {
		log.Fatal(err)
	}

	// Show the file layout the store produced on the Simurgh volume.
	ents, _ := c.ReadDir("/db")
	fmt.Printf("\n/db contains %d files (WAL segments, SSTables, MANIFEST):\n", len(ents))
	for _, e := range ents {
		st, _ := c.Stat("/db/" + e.Name)
		fmt.Printf("  %-14s %8d bytes\n", e.Name, st.Size)
	}
}
