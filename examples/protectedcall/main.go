// Protected functions (§3): this example drives the simulated CPU
// extension directly — the bootstrap of Figure 2, privilege escalation
// through jmpp, and the faults that make the design safe. It also prints
// the regenerated gem5 cycle table.
package main

import (
	"fmt"
	"log"

	"simurgh/internal/isa"
	"simurgh/internal/pmem"
)

func main() {
	// Step 1-2 (Figure 2): the OS security module maps the NVMM as
	// kernel-only pages and loads the file-system functions into protected
	// pages with the ep bit set.
	mem := isa.NewMemory()
	sup := isa.NewSupervisor(mem, 0x400000)
	dev := pmem.New(1 << 16)
	const nvmmBase = 0x100000
	for off := uint64(0); off < dev.Size(); off += isa.PageSize {
		sup.MapData(nvmmBase+off, true)
	}

	var slot, val, out uint64
	write := func(c *isa.CPU) error {
		dev.Store64(slot*64, val)
		dev.Persist(slot*64, 8)
		return nil
	}
	read := func(c *isa.CPU) error {
		out = dev.Load64(slot * 64)
		return nil
	}
	addrs, err := sup.LoadProtected([]isa.ProtectedFunc{write, read}, nil)
	if err != nil {
		log.Fatal(err)
	}
	cpu := isa.NewCPU(mem)

	fmt.Println("== the only door in: jmpp to a registered entry point ==")
	slot, val = 7, 0xC0FFEE
	if err := cpu.Jmpp(addrs[0]); err != nil {
		log.Fatal(err)
	}
	slot = 7
	if err := cpu.Jmpp(addrs[1]); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote and read back %#x through protected functions (CPL now %d)\n\n", out, cpu.CPL())

	fmt.Println("== everything else faults ==")
	show := func(what string, err error) { fmt.Printf("%-46s -> %v\n", what, err) }
	show("user-mode load of NVMM page", cpu.Load(nvmmBase))
	show("user-mode store to NVMM page", cpu.Store(nvmmBase))
	show("user-mode store to protected code page", cpu.Store(addrs[0]))
	show("jmpp into the middle of a function", cpu.Jmpp(addrs[0]+8))
	show("jmpp to a page without the ep bit", cpu.Jmpp(0x100000))
	show("stray pret without a jmpp frame", cpu.Pret())

	fmt.Println("\n== regenerated gem5 cycle table (§3.3) ==")
	for _, row := range isa.CycleTable() {
		fmt.Printf("%-32s %6d cycles  (%s)\n", row.Mechanism, row.Cycles, row.Detail)
	}
	fmt.Printf("\nprotected call vs syscall: %dx fewer cycles on real hardware\n",
		isa.CyclesSyscallModern/isa.CyclesJmppPret)
}
