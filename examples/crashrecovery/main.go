// Crash recovery: run a volume in tracked mode, pull the plug at the worst
// moment, and watch Simurgh's decentralized recovery put things right.
// Demonstrates both recovery flavours of §4.3: the mount-time mark-and-sweep
// and the waiter-side completion of a crashed process's operation.
package main

import (
	"fmt"
	"log"

	"simurgh"
)

func main() {
	vol, err := simurgh.CreateWithOptions(64<<20, simurgh.Options{Tracked: true})
	if err != nil {
		log.Fatal(err)
	}
	c, _ := vol.Attach(simurgh.Root)

	// Build some durable state.
	c.Mkdir("/projects", 0o755)
	for i := 0; i < 5; i++ {
		fd, _ := c.Create(fmt.Sprintf("/projects/report-%d.txt", i), 0o644)
		c.Write(fd, []byte(fmt.Sprintf("report %d contents", i)))
		c.Close(fd)
	}

	// A write that is NOT fsynced... then power failure.
	fd, _ := c.Create("/projects/unsaved.txt", 0o644)
	c.Write(fd, []byte("this file was created and written"))
	c.Close(fd)

	fmt.Println("simulating power failure (no unmount)...")
	vol.Crash()

	stats, err := vol.Remount(simurgh.Options{Tracked: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovery: clean=%v files=%d dirs=%d reclaimed=%d fixed-slots=%d in %v\n",
		stats.WasClean, stats.Files, stats.Dirs, stats.Reclaimed, stats.FixedSlots, stats.Elapsed)

	c2, _ := vol.Attach(simurgh.Root)
	ents, _ := c2.ReadDir("/projects")
	fmt.Printf("%d files survive:\n", len(ents))
	for _, e := range ents {
		st, _ := c2.Stat("/projects/" + e.Name)
		fmt.Printf("  %-18s %3d bytes\n", e.Name, st.Size)
	}
	// Simurgh persists metadata and data inline (NT stores + fences), so
	// even the file written moments before the crash is durable — no fsync
	// was needed. That is the paper's "consistency, durability and ordering
	// without sacrificing scalability".
	fd2, err := c2.Open("/projects/unsaved.txt", simurgh.ORdonly, 0)
	if err != nil {
		log.Fatalf("unsaved.txt lost: %v", err)
	}
	buf := make([]byte, 64)
	n, _ := c2.Read(fd2, buf)
	fmt.Printf("unsaved.txt content after crash: %q\n", buf[:n])
}
