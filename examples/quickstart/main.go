// Quickstart: create an emulated NVMM volume, attach as a process, and use
// the POSIX-like API — files, directories, symlinks, hard links, renames.
package main

import (
	"fmt"
	"log"

	"simurgh"
)

func main() {
	// 64 MiB of emulated NVMM, formatted and mounted.
	vol, err := simurgh.Create(64 << 20)
	if err != nil {
		log.Fatal(err)
	}
	defer vol.Unmount()

	// Attach a "process" (the preload-library step of the paper).
	c, err := vol.Attach(simurgh.Cred{UID: 1000, GID: 1000})
	if err != nil {
		log.Fatal(err)
	}
	// The root directory is owned by root; open it up for this demo.
	rootc, _ := vol.Attach(simurgh.Root)
	rootc.Chmod("/", 0o777)

	// Files.
	fd, err := c.Create("/notes.txt", 0o644)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := c.Write(fd, []byte("persistent memory is byte addressable\n")); err != nil {
		log.Fatal(err)
	}
	c.Close(fd)

	// Directories and renames.
	if err := c.Mkdir("/docs", 0o755); err != nil {
		log.Fatal(err)
	}
	if err := c.Rename("/notes.txt", "/docs/notes.txt"); err != nil {
		log.Fatal(err)
	}

	// Symlinks and hard links.
	if err := c.Symlink("/docs/notes.txt", "/latest"); err != nil {
		log.Fatal(err)
	}
	if err := c.Link("/docs/notes.txt", "/docs/notes-hardlink.txt"); err != nil {
		log.Fatal(err)
	}

	// Read back through the symlink.
	fd, err = c.Open("/latest", simurgh.ORdonly, 0)
	if err != nil {
		log.Fatal(err)
	}
	buf := make([]byte, 128)
	n, _ := c.Read(fd, buf)
	c.Close(fd)
	fmt.Printf("content via symlink: %q\n", buf[:n])

	// Stat shows the persistent pointer acting as the inode identifier.
	st, _ := c.Stat("/docs/notes.txt")
	fmt.Printf("inode (NVMM offset) %#x, %d bytes, nlink=%d, mode %o\n",
		st.Ino, st.Size, st.Nlink, st.Mode&0o777)

	// Directory listing.
	ents, _ := c.ReadDir("/docs")
	for _, e := range ents {
		fmt.Println("  /docs/" + e.Name)
	}
}
