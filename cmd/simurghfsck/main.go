// Command simurghfsck inspects and repairs Simurgh volume images. The
// Simurgh library includes a dedicated recovery entry point (§5.5); this
// tool drives it offline:
//
//	simurghfsck -image vol.img             check/repair an image in place
//	simurghfsck -image vol.img -dump       also list the directory tree
//	simurghfsck -demo vol.img [-size N]    create a demo image containing a
//	                                       crashed volume, then repair it
//
// Images are created with simurgh.Volume.Device().WriteTo (see the
// crashrecovery example).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"simurgh/internal/core"
	"simurgh/internal/corpus"
	"simurgh/internal/fsapi"
	"simurgh/internal/obs"
	"simurgh/internal/pmem"
)

// toDelta maps the device counter snapshot into the obs traffic type.
func toDelta(s pmem.StatsSnapshot) obs.Delta {
	return obs.Delta{
		LoadBytes:  s.LoadBytes,
		StoreBytes: s.StoreBytes,
		NTBytes:    s.NTBytes,
		Flushes:    s.Flushes,
		Fences:     s.Fences,
	}
}

func main() {
	image := flag.String("image", "", "volume image to check and repair")
	dump := flag.Bool("dump", false, "list the directory tree after repair")
	demo := flag.String("demo", "", "write a demo image with an injected crash to this path")
	size := flag.Uint64("size", 256<<20, "demo volume size in bytes")
	flag.Parse()

	switch {
	case *demo != "":
		if err := makeDemo(*demo, *size); err != nil {
			fmt.Fprintln(os.Stderr, "simurghfsck:", err)
			os.Exit(1)
		}
	case *image != "":
		if err := check(*image, *dump); err != nil {
			fmt.Fprintln(os.Stderr, "simurghfsck:", err)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func makeDemo(path string, size uint64) error {
	dev := pmem.New(size)
	fs, err := core.Format(dev, fsapi.Root, core.Options{})
	if err != nil {
		return err
	}
	c, _ := fs.Attach(fsapi.Root)
	if err := c.Mkdir("/project", 0o755); err != nil {
		return err
	}
	if _, err := corpus.Generate(c, "/project", corpus.LinuxLike(1)); err != nil {
		return err
	}
	// Abandon an unlink halfway: the entry is invalidated but the slot and
	// inode survive, exactly the state §4.3 recovers from.
	fs.SetHooks(core.Hooks{CrashPoint: func(p string) bool {
		return p == "delete.after-invalidate"
	}})
	if err := c.Unlink("/project/file_0_0.c"); err != core.ErrCrashed {
		return fmt.Errorf("expected injected crash, got %v", err)
	}
	// No Unmount: the image is dirty on purpose.
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := dev.WriteTo(f); err != nil {
		return err
	}
	fmt.Printf("wrote dirty demo image to %s (crashed mid-unlink)\n", path)
	return nil
}

func check(path string, dump bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	dev, err := pmem.ReadImage(f)
	f.Close()
	if err != nil {
		return err
	}
	// Each fsck stage is reported as an obs.Phase: the same diffable
	// counter-snapshot types the live file system exposes, with the stage's
	// NVMM traffic attributed from the device counter delta.
	base := dev.StatsSnapshot()
	fs, stats, err := core.Mount(dev, core.Options{})
	if err != nil {
		return err
	}
	recoverPmem := dev.StatsSnapshot().Sub(base)

	base = dev.StatsSnapshot()
	auditStart := time.Now()
	free := fs.FreeBlocks()
	maint := fs.Maintain()
	auditElapsed := time.Since(auditStart)
	auditPmem := dev.StatsSnapshot().Sub(base)

	state := "dirty (recovery performed)"
	if stats.WasClean {
		state = "clean"
	}
	fmt.Printf("volume: %s, %d bytes\n", state, dev.Size())
	obs.WritePhases(os.Stdout, []obs.Phase{
		{
			Name:    "recover",
			Elapsed: stats.Elapsed,
			Counters: []obs.Counter{
				{Name: "files", Value: stats.Files},
				{Name: "dirs", Value: stats.Dirs},
				{Name: "symlinks", Value: stats.Symlinks},
				{Name: "dir-blocks", Value: stats.DirBlocks},
				{Name: "fixed-slots", Value: stats.FixedSlots},
				{Name: "fixed-creates", Value: stats.FixedCreates},
				{Name: "fixed-renames", Value: stats.FixedRenames},
				{Name: "fixed-logs", Value: stats.FixedLogs},
				{Name: "reclaimed", Value: stats.Reclaimed},
			},
			Pmem: toDelta(recoverPmem),
		},
		{
			Name:    "audit",
			Elapsed: auditElapsed,
			Counters: []obs.Counter{
				{Name: "used-blocks", Value: stats.UsedDataBlock},
				{Name: "free-blocks", Value: free},
				{Name: "dirs-visited", Value: maint.DirsVisited},
				{Name: "blocks-compacted", Value: maint.BlocksFreed},
			},
			Pmem: toDelta(auditPmem),
		},
	})
	if dump {
		c, _ := fs.Attach(fsapi.Root)
		dumpTree(c, "/", 0)
	}
	fs.Unmount()
	// Write the repaired image back.
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	defer out.Close()
	_, err = dev.WriteTo(out)
	return err
}

func dumpTree(c fsapi.Client, path string, depth int) {
	if depth > 8 {
		return
	}
	ents, err := c.ReadDir(path)
	if err != nil {
		return
	}
	for _, e := range ents {
		p := path + "/" + e.Name
		if path == "/" {
			p = "/" + e.Name
		}
		for i := 0; i < depth; i++ {
			fmt.Print("  ")
		}
		if fsapi.IsDir(e.Mode) {
			fmt.Printf("%s/\n", e.Name)
			dumpTree(c, p, depth+1)
		} else {
			st, _ := c.Stat(p)
			fmt.Printf("%s (%d bytes)\n", e.Name, st.Size)
		}
	}
}
