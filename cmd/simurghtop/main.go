// Command simurghtop is a live top-style monitor for a Simurgh process
// exporting metrics (simurghbench serve, simurghsh -metrics, or any embed
// of internal/export). It polls /stats.json and renders per-op rates and
// latency percentiles, lock contention, recovery activity, and allocator
// occupancy for each interval window.
//
//	simurghtop                      monitor http://127.0.0.1:9180
//	simurghtop -addr host:port      monitor another endpoint
//	simurghtop -once                one interval, print, exit (no screen clear)
//	simurghtop -demo                self-contained demo: starts an in-process
//	                                volume plus workload and monitors it
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"simurgh/internal/core"
	"simurgh/internal/export"
	"simurgh/internal/fsapi"
	"simurgh/internal/obs"
	"simurgh/internal/pmem"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9180", "exporter address (host:port or full URL)")
	interval := flag.Duration("interval", time.Second, "sampling interval")
	once := flag.Bool("once", false, "sample one interval, print, and exit")
	count := flag.Int("count", 0, "stop after N windows (0 = run until interrupted)")
	demo := flag.Bool("demo", false, "start an in-process volume + workload and monitor it")
	flag.Parse()

	url := *addr
	if !strings.HasPrefix(url, "http://") && !strings.HasPrefix(url, "https://") {
		url = "http://" + url
	}
	if *demo {
		srv, stop, err := startDemo()
		if err != nil {
			fatal(err)
		}
		defer stop()
		url = srv.URL
		fmt.Fprintf(os.Stderr, "demo volume serving on %s\n", srv.URL)
	}

	base, err := fetch(url)
	if err != nil {
		fatal(err)
	}
	for n := 0; ; n++ {
		time.Sleep(*interval)
		cur, err := fetch(url)
		if err != nil {
			fatal(err)
		}
		if !*once {
			fmt.Print("\x1b[H\x1b[2J") // home + clear
		}
		render(os.Stdout, cur.Sub(base), *interval)
		// The cluster panel is best-effort: standalone exporters answer
		// 404 on /cluster.json and the panel simply stays absent.
		if cl := fetchCluster(url); cl != nil {
			renderCluster(os.Stdout, cl)
		}
		base = cur
		if *once || (*count > 0 && n+1 >= *count) {
			return
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "simurghtop:", err)
	os.Exit(1)
}

// fetch pulls one JSON snapshot from the exporter.
func fetch(url string) (export.JSONSnapshot, error) {
	var js export.JSONSnapshot
	resp, err := http.Get(url + "/stats.json")
	if err != nil {
		return js, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return js, fmt.Errorf("%s/stats.json: %s", url, resp.Status)
	}
	err = json.NewDecoder(resp.Body).Decode(&js)
	return js, err
}

// clusterDoc mirrors /cluster.json (replica.Node.WriteClusterJSON).
type clusterDoc struct {
	Role           string      `json:"role"`
	Epoch          uint64      `json:"epoch"`
	Seq            uint64      `json:"seq"`
	CommitFloor    uint64      `json:"commit_floor"`
	Quorum         int         `json:"quorum"`
	AckWindow      uint64      `json:"ack_window"`
	Sessions       int         `json:"sessions"`
	HeartbeatRTTNs uint64      `json:"heartbeat_rtt_ns"`
	PrimarySeq     uint64      `json:"primary_seq"`
	Backups        []backupRow `json:"backups"`
	ShardEpoch     uint64      `json:"shard_epoch"`
	Shards         []shardRow  `json:"shards"`
}

type backupRow struct {
	Addr     string `json:"addr"`
	AckedSeq uint64 `json:"acked_seq"`
	LagOps   uint64 `json:"lag_ops"`
	LagBytes uint64 `json:"lag_bytes"`
	ShipLag  uint64 `json:"ship_lag"`
}

// shardRow mirrors one entry of the shard table a sharded node injects into
// /cluster.json (shard.Authority.WriteClusterRows).
type shardRow struct {
	ID     uint32   `json:"id"`
	Prefix string   `json:"prefix"`
	State  string   `json:"state"`
	Served bool     `json:"served"`
	Ops    uint64   `json:"ops"`
	Addrs  []string `json:"addrs"`
}

// fetchCluster pulls the replication health document; nil when the
// exporter has no cluster plane (404) or the fetch fails.
func fetchCluster(url string) *clusterDoc {
	resp, err := http.Get(url + "/cluster.json")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	var c clusterDoc
	if err := json.NewDecoder(resp.Body).Decode(&c); err != nil {
		return nil
	}
	return &c
}

// renderCluster writes the replication panel: the node's role and log
// position, then one line per backup link with its ack and ship lag.
func renderCluster(w io.Writer, c *clusterDoc) {
	fmt.Fprintf(w, "\nreplication: %s epoch %d  seq %d  floor %d  window %d  quorum %d  sessions %d",
		c.Role, c.Epoch, c.Seq, c.CommitFloor, c.AckWindow, c.Quorum, c.Sessions)
	if c.HeartbeatRTTNs > 0 {
		fmt.Fprintf(w, "  hb-rtt %s", fmtNs(c.HeartbeatRTTNs))
	}
	fmt.Fprintln(w)
	if c.Role != "primary" && c.PrimarySeq > c.Seq {
		fmt.Fprintf(w, "  behind primary by %d ops\n", c.PrimarySeq-c.Seq)
	}
	for _, b := range c.Backups {
		fmt.Fprintf(w, "  backup %-21s acked %-10d lag %d ops / %d B  ship %d\n",
			b.Addr, b.AckedSeq, b.LagOps, b.LagBytes, b.ShipLag)
	}
	if len(c.Shards) > 0 {
		fmt.Fprintf(w, "\nshards: map epoch %d\n", c.ShardEpoch)
		for _, s := range c.Shards {
			prefix := s.Prefix
			if prefix == "" {
				prefix = "(hash)"
			}
			mark := " "
			if s.Served {
				mark = "*"
			}
			fmt.Fprintf(w, "  %s shard %-4d %-12s %-10s ops %-10d %s\n",
				mark, s.ID, prefix, s.State, s.Ops, strings.Join(s.Addrs, ","))
		}
	}
}

// render writes one monitor frame for the window delta d over the given
// interval: ops by rate, then contention, events, and allocator gauges.
func render(w io.Writer, d export.JSONSnapshot, interval time.Duration) {
	secs := interval.Seconds()
	if secs <= 0 {
		secs = 1
	}
	fmt.Fprintf(w, "simurgh — %s window, sample period %d\n\n", interval, d.SamplePeriod)

	names := make([]string, 0, len(d.Ops))
	for name, o := range d.Ops {
		if o.Calls > 0 {
			names = append(names, name)
		}
	}
	sort.Slice(names, func(i, j int) bool {
		if a, b := d.Ops[names[i]].Calls, d.Ops[names[j]].Calls; a != b {
			return a > b
		}
		return names[i] < names[j]
	})
	fmt.Fprintf(w, "%-10s %12s %8s %10s %10s %10s %10s\n",
		"op", "rate/s", "errs", "mean", "p50", "p95", "p99")
	if len(names) == 0 {
		fmt.Fprintf(w, "%-10s %12s\n", "(idle)", "0")
	}
	for _, name := range names {
		o := d.Ops[name]
		fmt.Fprintf(w, "%-10s %12.0f %8d %10s %10s %10s %10s\n",
			name, float64(o.Calls)/secs, o.Errors,
			fmtNs(o.MeanNs), fmtNs(o.P50Ns), fmtNs(o.P95Ns), fmtNs(o.P99Ns))
	}

	if len(d.LockWaits) > 0 {
		fmt.Fprintf(w, "\n%-10s %12s %10s %10s\n", "lock", "waits/s", "mean", "p99")
		for _, class := range sortedKeys(d.LockWaits) {
			lw := d.LockWaits[class]
			fmt.Fprintf(w, "%-10s %12.0f %10s %10s\n",
				class, float64(lw.Waits)/secs, fmtNs(lw.MeanNs), fmtNs(lw.P99Ns))
		}
	}
	if len(d.Events) > 0 {
		fmt.Fprintf(w, "\nevents:")
		for _, name := range sortedKeys(d.Events) {
			fmt.Fprintf(w, "  %s=%d", name, d.Events[name])
		}
		fmt.Fprintln(w)
	}
	if len(d.Gauges) > 0 {
		fmt.Fprintf(w, "\ngauges:\n")
		for _, name := range sortedKeys(d.Gauges) {
			fmt.Fprintf(w, "  %-28s %12d\n", name, d.Gauges[name])
		}
	}
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// fmtNs renders a nanosecond latency compactly (ns, µs, or ms).
func fmtNs(ns uint64) string {
	switch {
	case ns == 0:
		return "-"
	case ns < 1000:
		return fmt.Sprintf("%dns", ns)
	case ns < 1000000:
		return fmt.Sprintf("%.1fµs", float64(ns)/1000)
	default:
		return fmt.Sprintf("%.2fms", float64(ns)/1e6)
	}
}

// startDemo formats an in-memory volume, runs a small churn workload over
// it, and exports it on a free port, so simurghtop can be tried with no
// other process running.
func startDemo() (*export.Server, func(), error) {
	reg := obs.NewRegistry()
	reg.SetSamplePeriod(1)
	reg.EnableTrace(4096)
	dev := pmem.New(128 << 20)
	vol, err := core.Format(dev, fsapi.Root, core.Options{Obs: reg})
	if err != nil {
		return nil, nil, err
	}
	// The demo has no real replication group; a synthetic /cluster.json
	// exercises the replication panel end to end (CI smokes it).
	demoCluster := func(w io.Writer) error {
		_, err := fmt.Fprintf(w, `{
 "role": "primary", "epoch": 1, "seq": 4096, "commit_floor": 4094,
 "quorum": 1, "ack_window": 2, "sessions": 2,
 "heartbeat_rtt_ns": 184000, "primary_seq": 0,
 "backups": [
  {"addr": "127.0.0.1:9191", "acked_seq": 4094, "lag_ops": 2, "lag_bytes": 8192, "ship_lag": 1}
 ],
 "shard_epoch": 3,
 "shards": [
  {"id": 0, "prefix": "/", "state": "serving", "served": true, "ops": 18231, "addrs": ["127.0.0.1:9190", "127.0.0.1:9191"]},
  {"id": 1, "prefix": "/warm", "state": "migrating", "served": false, "ops": 0, "addrs": ["127.0.0.1:9192"]}
 ]
}
`)
		return err
	}
	srv, err := export.ServeOpts("127.0.0.1:0", vol.Stats, nil, reg,
		export.Options{Cluster: demoCluster})
	if err != nil {
		return nil, nil, err
	}
	stop := make(chan struct{})
	for t := 0; t < 2; t++ {
		c, aerr := vol.Attach(fsapi.Root)
		if aerr != nil {
			srv.Close()
			return nil, nil, aerr
		}
		go churn(c, t, stop)
	}
	return srv, func() { close(stop); srv.Close(); vol.Unmount() }, nil
}

// churn is the demo workload: create, write, stat, read back, and
// periodically unlink in a private directory.
func churn(c fsapi.Client, t int, stop <-chan struct{}) {
	dir := fmt.Sprintf("/demo%d", t)
	c.Mkdir(dir, 0o755)
	buf := make([]byte, 4096)
	for i := 0; ; i++ {
		select {
		case <-stop:
			return
		default:
		}
		name := fmt.Sprintf("%s/f%d", dir, i%64)
		fd, err := c.Open(name, fsapi.OCreate|fsapi.OWronly|fsapi.OTrunc, 0o644)
		if err != nil {
			continue
		}
		c.Write(fd, buf)
		c.Close(fd)
		c.Stat(name)
		if fd, err := c.Open(name, fsapi.ORdonly, 0); err == nil {
			c.Read(fd, buf)
			c.Close(fd)
		}
		if i%8 == 7 {
			c.Unlink(name)
		}
	}
}
