package main

import (
	"strings"
	"testing"
	"time"

	"simurgh/internal/export"
)

func TestRenderFrame(t *testing.T) {
	d := export.JSONSnapshot{
		SamplePeriod: 1,
		Ops: map[string]export.OpJSON{
			"create": {Calls: 200, Errors: 2, MeanNs: 4500, P50Ns: 4000, P95Ns: 9000, P99Ns: 20000},
			"stat":   {Calls: 1000, MeanNs: 800, P50Ns: 700, P95Ns: 1500, P99Ns: 2500},
		},
		Events:    map[string]uint64{"waiter_recovery": 3},
		LockWaits: map[string]export.LockWaitJSON{"line": {Waits: 12, MeanNs: 2000, P99Ns: 8000}},
		Gauges:    map[string]uint64{"alloc.blocks_free": 31337},
	}
	var sb strings.Builder
	render(&sb, d, time.Second)
	out := sb.String()

	for _, want := range []string{
		"op", "rate/s", "p99", // header
		"stat", "1000", // highest-rate op with its per-second rate
		"create", "4.0µs", // p50 formatted
		"line", "waiter_recovery=3",
		"alloc.blocks_free", "31337",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("frame missing %q:\n%s", want, out)
		}
	}
	// stat (higher rate) must sort above create.
	if strings.Index(out, "stat") > strings.Index(out, "create") {
		t.Errorf("ops not sorted by rate:\n%s", out)
	}
}

func TestRenderIdleFrame(t *testing.T) {
	var sb strings.Builder
	render(&sb, export.JSONSnapshot{SamplePeriod: 32}, time.Second)
	if !strings.Contains(sb.String(), "(idle)") {
		t.Errorf("idle frame should say so:\n%s", sb.String())
	}
}

// TestDemoEndToEnd starts the in-process demo volume and checks a
// polled window renders live data (acceptance criterion: simurghtop
// renders live data from a running process).
func TestDemoEndToEnd(t *testing.T) {
	srv, stop, err := startDemo()
	if err != nil {
		t.Fatalf("startDemo: %v", err)
	}
	defer stop()

	base, err := fetch(srv.URL)
	if err != nil {
		t.Fatalf("fetch: %v", err)
	}
	time.Sleep(200 * time.Millisecond)
	cur, err := fetch(srv.URL)
	if err != nil {
		t.Fatalf("fetch: %v", err)
	}
	d := cur.Sub(base)
	var total uint64
	for _, o := range d.Ops {
		total += o.Calls
	}
	if total == 0 {
		t.Fatal("demo workload produced no ops in the window")
	}
	var sb strings.Builder
	render(&sb, d, 200*time.Millisecond)
	if !strings.Contains(sb.String(), "create") && !strings.Contains(sb.String(), "open") {
		t.Errorf("frame shows no workload ops:\n%s", sb.String())
	}
	if _, ok := d.Gauges["alloc.blocks_free"]; !ok {
		t.Errorf("gauges missing alloc.blocks_free: %v", d.Gauges)
	}
}
