// Command simurghsh is an interactive shell over a Simurgh volume — handy
// for poking at the file system, inspecting recovery behaviour, and demos.
//
//	simurghsh                      fresh in-memory volume
//	simurghsh -image vol.img       open (and on exit save) an image file
//	simurghsh -metrics host:port   also serve live metrics over HTTP
//	simurghsh -connect host:port   drive a remote simurghd volume instead
//	simurghsh -route host:port     drive a sharded cluster through the router
//	simurghsh -promote host:port   promote a backup simurghd to primary
//	simurghsh trace merge <out> <in...>   one-shot: merge Chrome trace dumps
//	simurghsh shards <addr>               one-shot: print the live shard map
//	simurghsh migrate <seed> <id> <tgt,...>  one-shot: live-migrate a shard
//
// Commands: ls [path], cat <file>, write <file> <text...>, append <file>
// <text...>, mkdir <dir>, rm <file>, rmdir <dir>, mv <old> <new>,
// ln -s <target> <link>, ln <old> <new>, stat <path>, chmod <perm> <path>,
// tree [path], df, stats [reset], trace <on [n]|off|dump <file>|merge
// <out> <in...>>, slow <on <dur> [n]|off|show|dump <file>>, crashdemo,
// su <uid> <gid>, help, exit.
package main

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"simurgh/internal/core"
	"simurgh/internal/export"
	"simurgh/internal/fsapi"
	"simurgh/internal/obs"
	"simurgh/internal/pmem"
	"simurgh/internal/shard"
	"simurgh/internal/wire/client"
)

func main() {
	image := flag.String("image", "", "volume image to open and save on exit")
	size := flag.Uint64("size", 256<<20, "volume size for fresh volumes")
	metrics := flag.String("metrics", "", "serve live metrics on this host:port (e.g. 127.0.0.1:9180)")
	connect := flag.String("connect", "", "drive a remote simurghd at this host:port instead of a local volume")
	route := flag.String("route", "", "drive a sharded cluster through the client router, seeded at this host:port")
	promote := flag.String("promote", "", "tell the simurghd at this host:port to become the replication primary, then exit")
	flag.Parse()

	// `simurghsh trace merge <out> <in...>` runs one-shot: it only touches
	// local dump files, so it needs neither a volume nor a connection.
	if flag.NArg() >= 2 && flag.Arg(0) == "trace" && flag.Arg(1) == "merge" {
		if err := traceMerge(flag.Args()[2:]); err != nil {
			fatal(err)
		}
		return
	}

	// `simurghsh shards <addr>` and `simurghsh migrate <seed> <id> <tgt,...>`
	// are one-shot cluster control commands.
	if flag.NArg() >= 1 && flag.Arg(0) == "shards" {
		if err := printShards(flag.Args()[1:]); err != nil {
			fatal(err)
		}
		return
	}
	if flag.NArg() >= 1 && flag.Arg(0) == "migrate" {
		if err := migrateShard(flag.Args()[1:]); err != nil {
			fatal(err)
		}
		return
	}

	if *promote != "" {
		epoch, err := client.Promote(*promote, 0)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s promoted: epoch %d\n", *promote, epoch)
		return
	}

	if *route != "" {
		if *image != "" || *metrics != "" || *connect != "" {
			fatal(fmt.Errorf("-route is exclusive with -image, -metrics and -connect"))
		}
		rt, err := client.DialRouter(*route, client.RouterOptions{})
		if err != nil {
			fatal(err)
		}
		cred := fsapi.Root
		c, err := rt.Attach(cred)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("routing %s via %s\n", rt.Name(), *route)
		sh := &shell{fsys: rt, c: c, cred: cred, reg: obs.NewRegistry()}
		repl(sh)
		c.Detach()
		rt.Close()
		return
	}

	if *connect != "" {
		if *image != "" || *metrics != "" {
			fatal(fmt.Errorf("-connect is exclusive with -image and -metrics (those need a local volume)"))
		}
		// The shell is a distributed-tracing participant: its registry
		// records the client-side spans, and with TraceSample 1 every
		// interactive operation carries a trace context once `trace on`
		// arms the recorder (the server ignores it until then — sampling
		// requires an enabled recorder).
		reg := obs.NewRegistry()
		reg.SetNode("simurghsh")
		remote, err := client.Dial(*connect, client.Options{Obs: reg, TraceSample: 1})
		if err != nil {
			fatal(err)
		}
		cred := fsapi.Root
		c, err := remote.Attach(cred)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("connected to %s at %s\n", remote.Name(), *connect)
		sh := &shell{fsys: remote, c: c, cred: cred, reg: reg}
		repl(sh)
		c.Detach()
		remote.Close()
		return
	}

	// The shell is interactive, so sample every operation: exact latency
	// and NVMM attribution matter more than per-call overhead here.
	reg := obs.NewRegistry()
	reg.SetSamplePeriod(1)

	var dev *pmem.Device
	var fs *core.FS
	if *image != "" {
		if f, err := os.Open(*image); err == nil {
			d, err := pmem.ReadImage(f)
			f.Close()
			if err != nil {
				fatal(err)
			}
			mounted, stats, err := core.Mount(d, core.Options{Obs: reg})
			if err != nil {
				fatal(err)
			}
			if !stats.WasClean {
				fmt.Printf("recovered unclean volume in %v (%d repairs)\n",
					stats.Elapsed, stats.FixedSlots+stats.FixedCreates+stats.FixedRenames+stats.FixedLogs)
			}
			dev, fs = d, mounted
		}
	}
	if fs == nil {
		dev = pmem.New(*size)
		formatted, err := core.Format(dev, fsapi.Root, core.Options{Obs: reg})
		if err != nil {
			fatal(err)
		}
		fs = formatted
	}

	if *metrics != "" {
		srv, err := export.Serve(*metrics, fs.Stats, nil, reg)
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Printf("metrics on %s  (/metrics /stats.json /trace.json /debug/vars)\n", srv.URL)
	}

	cred := fsapi.Root
	c, _ := fs.Attach(cred)
	sh := &shell{fsys: fs, fs: fs, dev: dev, c: c, cred: cred, reg: reg, base: fs.Stats()}
	repl(sh)
	fs.Unmount()
	if *image != "" {
		f, err := os.Create(*image)
		if err != nil {
			fatal(err)
		}
		dev.WriteTo(f)
		f.Close()
		fmt.Printf("saved volume to %s\n", *image)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "simurghsh:", err)
	os.Exit(1)
}

// repl runs the interactive loop until EOF or exit.
func repl(sh *shell) {
	fmt.Println("simurghsh — type 'help' for commands, 'exit' to quit")
	scanner := bufio.NewScanner(os.Stdin)
	for {
		fmt.Printf("simurgh[uid=%d]> ", sh.cred.UID)
		if !scanner.Scan() {
			break
		}
		line := strings.TrimSpace(scanner.Text())
		if line == "" {
			continue
		}
		if line == "exit" || line == "quit" {
			break
		}
		sh.exec(line)
	}
}

type shell struct {
	fsys fsapi.FileSystem // what su re-attaches through (local or remote)
	fs   *core.FS         // nil when driving a remote volume over -connect
	dev  *pmem.Device
	c    fsapi.Client
	cred fsapi.Cred
	reg  *obs.Registry // volume registry locally; client-side registry over -connect
	base obs.Snapshot  // stats baseline; `stats reset` moves it
}

// errRemote reports commands that need the volume in-process.
func errRemote(cmd string) error {
	return fmt.Errorf("%s needs a local volume (not available over -connect)", cmd)
}

func (s *shell) exec(line string) {
	args := strings.Fields(line)
	cmd, rest := args[0], args[1:]
	var err error
	switch cmd {
	case "help":
		fmt.Println("ls cat write append mkdir rm rmdir mv ln stat chmod tree df stats trace slow maintain crashdemo su exit")
	case "ls":
		path := "/"
		if len(rest) > 0 {
			path = rest[0]
		}
		var ents []fsapi.DirEntry
		ents, err = s.c.ReadDir(path)
		for _, e := range ents {
			kind := "-"
			if fsapi.IsDir(e.Mode) {
				kind = "d"
			} else if fsapi.IsSymlink(e.Mode) {
				kind = "l"
			}
			fmt.Printf("%s %04o  %s\n", kind, e.Mode&fsapi.ModePermMask, e.Name)
		}
	case "cat":
		if len(rest) < 1 {
			err = errUsage("cat <file>")
			break
		}
		var fd fsapi.FD
		fd, err = s.c.Open(rest[0], fsapi.ORdonly, 0)
		if err != nil {
			break
		}
		buf := make([]byte, 64<<10)
		for {
			n, rerr := s.c.Read(fd, buf)
			if n > 0 {
				os.Stdout.Write(buf[:n])
			}
			if rerr != nil || n == 0 {
				break
			}
		}
		fmt.Println()
		s.c.Close(fd)
	case "write", "append":
		if len(rest) < 2 {
			err = errUsage(cmd + " <file> <text...>")
			break
		}
		flags := fsapi.OCreate | fsapi.OWronly
		if cmd == "append" {
			flags |= fsapi.OAppend
		} else {
			flags |= fsapi.OTrunc
		}
		var fd fsapi.FD
		fd, err = s.c.Open(rest[0], flags, 0o644)
		if err != nil {
			break
		}
		_, err = s.c.Write(fd, []byte(strings.Join(rest[1:], " ")+"\n"))
		s.c.Close(fd)
	case "mkdir":
		if len(rest) < 1 {
			err = errUsage("mkdir <dir>")
			break
		}
		err = s.c.Mkdir(rest[0], 0o755)
	case "rm":
		if len(rest) < 1 {
			err = errUsage("rm <file>")
			break
		}
		err = s.c.Unlink(rest[0])
	case "rmdir":
		if len(rest) < 1 {
			err = errUsage("rmdir <dir>")
			break
		}
		err = s.c.Rmdir(rest[0])
	case "mv":
		if len(rest) < 2 {
			err = errUsage("mv <old> <new>")
			break
		}
		err = s.c.Rename(rest[0], rest[1])
	case "ln":
		switch {
		case len(rest) == 3 && rest[0] == "-s":
			err = s.c.Symlink(rest[1], rest[2])
		case len(rest) == 2:
			err = s.c.Link(rest[0], rest[1])
		default:
			err = errUsage("ln [-s] <target> <link>")
		}
	case "stat":
		if len(rest) < 1 {
			err = errUsage("stat <path>")
			break
		}
		var st fsapi.Stat
		st, err = s.c.Stat(rest[0])
		if err == nil {
			fmt.Printf("inode %#x  mode %o  uid/gid %d/%d  nlink %d  size %d\n",
				st.Ino, st.Mode, st.UID, st.GID, st.Nlink, st.Size)
		}
	case "chmod":
		if len(rest) < 2 {
			err = errUsage("chmod <octal-perm> <path>")
			break
		}
		var perm uint64
		perm, err = strconv.ParseUint(rest[0], 8, 32)
		if err == nil {
			err = s.c.Chmod(rest[1], uint32(perm))
		}
	case "tree":
		path := "/"
		if len(rest) > 0 {
			path = rest[0]
		}
		s.tree(path, 0)
	case "df":
		if s.fs == nil {
			err = errRemote(cmd)
			break
		}
		free := s.fs.FreeBlocks()
		total := s.dev.Size() / core.BlockSize
		fmt.Printf("%d / %d blocks free (%.1f%%)\n", free, total, 100*float64(free)/float64(total))
	case "stats":
		if s.fs == nil {
			err = errRemote(cmd)
			break
		}
		if len(rest) > 0 && rest[0] == "reset" {
			s.base = s.fs.Stats()
			fmt.Println("stats baseline reset")
			break
		}
		s.fs.Stats().Sub(s.base).WriteTable(os.Stdout)
	case "trace":
		// `trace merge` operates on dump files alone. The other verbs
		// drive this process's registry: the volume's locally, the
		// client-side recorder over -connect (dump it and merge with the
		// servers' /trace.json for the cross-node timeline).
		if len(rest) > 0 && rest[0] == "merge" {
			err = traceMerge(rest[1:])
			break
		}
		err = s.trace(rest)
	case "slow":
		err = s.slow(rest)
	case "maintain":
		if s.fs == nil {
			err = errRemote(cmd)
			break
		}
		st := s.fs.Maintain()
		fmt.Printf("visited %d dirs, freed %d hash blocks\n", st.DirsVisited, st.BlocksFreed)
	case "crashdemo":
		if s.fs == nil {
			err = errRemote(cmd)
			break
		}
		// Abandon a create mid-flight, then show recovery-on-access.
		s.fs.SetHooks(core.Hooks{CrashPoint: func(p string) bool { return p == "create.after-slot" }})
		_, cerr := s.c.Create("/crashdemo-file", 0o644)
		s.fs.SetHooks(core.Hooks{})
		fmt.Printf("create aborted mid-operation: %v\n", cerr)
		fmt.Println("the next access completes it (recovery-on-access):")
		if st, serr := s.c.Stat("/crashdemo-file"); serr == nil {
			fmt.Printf("  /crashdemo-file exists, inode %#x\n", st.Ino)
		} else {
			fmt.Printf("  stat: %v\n", serr)
		}
	case "su":
		if len(rest) < 2 {
			err = errUsage("su <uid> <gid>")
			break
		}
		uid, e1 := strconv.Atoi(rest[0])
		gid, e2 := strconv.Atoi(rest[1])
		if e1 != nil || e2 != nil {
			err = errUsage("su <uid> <gid>")
			break
		}
		s.cred = fsapi.Cred{UID: uint32(uid), GID: uint32(gid)}
		s.c, err = s.fsys.Attach(s.cred)
	default:
		err = fmt.Errorf("unknown command %q (try 'help')", cmd)
	}
	if err != nil {
		fmt.Println("error:", err)
	}
}

// trace drives the flight recorder: `trace on [spans]` arms it,
// `trace off` disarms it, `trace dump <file>` writes the recorded spans
// as Chrome trace-event JSON for ui.perfetto.dev.
func (s *shell) trace(rest []string) error {
	if len(rest) == 0 {
		return errUsage("trace <on [spans]|off|dump <file>>")
	}
	reg := s.reg
	switch rest[0] {
	case "on":
		capacity := 4096
		if len(rest) > 1 {
			n, err := strconv.Atoi(rest[1])
			if err != nil || n <= 0 {
				return errUsage("trace on [spans]")
			}
			capacity = n
		}
		reg.EnableTrace(capacity)
		fmt.Printf("flight recorder on (%d spans)\n", capacity)
	case "off":
		reg.EnableTrace(0)
		fmt.Println("flight recorder off")
	case "dump":
		if len(rest) < 2 {
			return errUsage("trace dump <file>")
		}
		f, err := os.Create(rest[1])
		if err != nil {
			return err
		}
		if err := reg.WriteChromeTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s — open it in ui.perfetto.dev or chrome://tracing\n", rest[1])
	default:
		return errUsage("trace <on [spans]|off|dump <file>|merge <out> <in...>>")
	}
	return nil
}

// traceMerge combines several nodes' Chrome trace dumps (client, primary,
// backup) into one timeline file: distributed spans line up side by side
// in ui.perfetto.dev, linked by the trace ID in each span's args.
func traceMerge(rest []string) error {
	if len(rest) < 2 {
		return errUsage("trace merge <out> <in...>")
	}
	dumps := make([][]byte, 0, len(rest)-1)
	for _, name := range rest[1:] {
		b, err := os.ReadFile(name)
		if err != nil {
			return err
		}
		dumps = append(dumps, b)
	}
	var buf bytes.Buffer
	if err := obs.MergeChromeTraces(&buf, dumps...); err != nil {
		return err
	}
	if err := os.WriteFile(rest[0], buf.Bytes(), 0o644); err != nil {
		return err
	}
	fmt.Printf("merged %d dumps into %s — open it in ui.perfetto.dev\n", len(dumps), rest[0])
	return nil
}

// slow drives the slow-operation log: `slow on <threshold> [n]` arms it,
// `slow off` disarms it, `slow show` prints the ring, `slow dump <file>`
// writes it as JSON (the same document /slow.json serves).
func (s *shell) slow(rest []string) error {
	usage := "slow <on <threshold> [entries]|off|show|dump <file>>"
	if len(rest) == 0 {
		return errUsage(usage)
	}
	reg := s.reg
	switch rest[0] {
	case "on":
		if len(rest) < 2 {
			return errUsage(usage)
		}
		d, err := time.ParseDuration(rest[1])
		if err != nil || d <= 0 {
			return errUsage("slow on <threshold> [entries]  (e.g. slow on 1ms)")
		}
		capacity := obs.DefaultSlowLogCapacity
		if len(rest) > 2 {
			n, err := strconv.Atoi(rest[2])
			if err != nil || n <= 0 {
				return errUsage(usage)
			}
			capacity = n
		}
		reg.SetSlowThreshold(d, capacity)
		fmt.Printf("slow log on: threshold %v, %d entries\n", d, capacity)
	case "off":
		reg.SetSlowThreshold(0, 0)
		fmt.Println("slow log off")
	case "show":
		ops := reg.SlowOps()
		if len(ops) == 0 {
			fmt.Println("slow log empty")
			break
		}
		fmt.Printf("%-14s %-10s %12s %18s\n", "span", "op", "latency", "trace")
		for _, op := range ops {
			trace := "-"
			if op.Trace != 0 {
				trace = fmt.Sprintf("%016x", op.Trace)
			}
			fmt.Printf("%-14s %-10s %12v %18s\n",
				op.Name(), op.Op.String(), time.Duration(op.LatNs), trace)
		}
	case "dump":
		if len(rest) < 2 {
			return errUsage("slow dump <file>")
		}
		f, err := os.Create(rest[1])
		if err != nil {
			return err
		}
		if err := reg.WriteSlowJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", rest[1])
	default:
		return errUsage(usage)
	}
	return nil
}

func (s *shell) tree(path string, depth int) {
	ents, err := s.c.ReadDir(path)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for _, e := range ents {
		fmt.Printf("%s%s", strings.Repeat("  ", depth), e.Name)
		child := path + "/" + e.Name
		if path == "/" {
			child = "/" + e.Name
		}
		if fsapi.IsDir(e.Mode) {
			fmt.Println("/")
			if depth < 10 {
				s.tree(child, depth+1)
			}
		} else if fsapi.IsSymlink(e.Mode) {
			target, _ := s.c.Readlink(child)
			fmt.Printf(" -> %s\n", target)
		} else {
			st, _ := s.c.Stat(child)
			fmt.Printf(" (%d)\n", st.Size)
		}
	}
}

func errUsage(u string) error { return fmt.Errorf("usage: %s", u) }

// printShards fetches and pretty-prints the live shard map from a node.
func printShards(rest []string) error {
	if len(rest) < 1 {
		return errUsage("shards <addr>")
	}
	m, err := shard.FetchMapAny(strings.Split(rest[0], ","), 0)
	if err != nil {
		return err
	}
	fmt.Printf("shard map epoch %d (%d shards)\n", m.Epoch, len(m.Shards))
	fmt.Printf("%-5s %-12s %-10s %s\n", "ID", "PREFIX", "STATE", "ADDRS")
	for i := range m.Shards {
		sh := &m.Shards[i]
		prefix := sh.Prefix
		if prefix == "" {
			prefix = "(hash)"
		}
		fmt.Printf("%-5d %-12s %-10s %s\n", sh.ID, prefix, sh.State, strings.Join(sh.Addrs, ","))
	}
	return nil
}

// migrateShard live-migrates one shard to a new owner group.
func migrateShard(rest []string) error {
	if len(rest) < 3 {
		return errUsage("migrate <seed> <shard-id> <target-addr,...>")
	}
	id, err := strconv.ParseUint(rest[1], 10, 32)
	if err != nil {
		return errUsage("migrate <seed> <shard-id> <target-addr,...>")
	}
	m, err := shard.Migrate(strings.Split(rest[0], ","), uint32(id), strings.Split(rest[2], ","),
		shard.MigrateOptions{Logf: func(f string, a ...any) { fmt.Printf(f+"\n", a...) }})
	if err != nil {
		return err
	}
	fmt.Printf("shard %s now at %s (map epoch %d)\n", rest[1], rest[2], m.Epoch)
	return nil
}
