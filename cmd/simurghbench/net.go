package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"runtime"
	"runtime/pprof"
	"sync"
	"time"

	"simurgh/internal/core"
	"simurgh/internal/fsapi"
	"simurgh/internal/obs"
	"simurgh/internal/pmem"
	"simurgh/internal/server"
	"simurgh/internal/wire"
	"simurgh/internal/wire/client"
)

// runNet measures the wire protocol: ops/s and batch round-trip latency
// percentiles across a connection-count × batch-size grid, quantifying the
// AnyCall-style amortization (one network crossing per batch instead of one
// per call). By default it spins an in-process simurghd over loopback so
// the numbers isolate protocol overhead; -addr points it at a live server
// instead.
func runNet(args []string) error {
	fs := flag.NewFlagSet("net", flag.ExitOnError)
	addr := fs.String("addr", "", "benchmark a running simurghd at this host:port (default: in-process loopback server)")
	connsFlag := fs.String("conns", "1,8,64", "comma-separated concurrent connection counts")
	batchFlag := fs.String("batch", "1,8,32", "comma-separated batch sizes (requests per Submit)")
	dur := fs.Duration("duration", time.Second, "measurement time per grid point")
	files := fs.Int("files", 64, "files the stat workload cycles over")
	jsonOut := fs.String("json", "", "also write results as JSON to this file")
	profile := fs.String("profile", "", "capture a runtime profile over the whole run: cpu, heap, or allocs")
	profileOut := fs.String("profile-out", "", "profile output file (default net_<kind>.pprof)")
	traceSample := fs.Int("trace-sample", 0, "tag 1-in-N requests with a distributed trace context (0 = off); scrape the server's /trace.json afterwards")
	shardsFlag := fs.String("shards", "", "comma-separated replica-group counts: measure sharded pwrite scaling through the router instead of the flat grid")
	quorum := fs.Int("quorum", 1, "with -shards: backups per group that must ack each write")
	fs.Parse(args)

	connCounts := parseThreads(*connsFlag)
	batchSizes := parseThreads(*batchFlag)

	if *shardsFlag != "" {
		// Sharded scaling mode: one conns × batch working point (the flag
		// lists default to a grid meant for the flat suite; pin the rep
		// suite's 8×32 point unless the caller overrode them).
		conns, batch := 8, 32
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "conns":
				conns = connCounts[0]
			case "batch":
				batch = batchSizes[0]
			}
		})
		return runNetShards(parseThreads(*shardsFlag), *quorum, conns, batch, *dur, *jsonOut)
	}

	stopProfile, err := startProfile(*profile, *profileOut)
	if err != nil {
		return err
	}
	defer stopProfile()

	target := *addr
	if target == "" {
		dev := pmem.New(256 << 20)
		vol, err := core.Format(dev, fsapi.Root, core.Options{})
		if err != nil {
			return err
		}
		srv, err := server.New(server.Config{FS: vol})
		if err != nil {
			return err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		go srv.Serve(ln)
		defer srv.Shutdown()
		target = ln.Addr().String()
		fmt.Printf("## Wire protocol (in-process simurghd on %s)\n", target)
	} else {
		fmt.Printf("## Wire protocol (remote simurghd on %s)\n", target)
	}

	var copts client.Options
	if *traceSample > 0 {
		reg := obs.NewRegistry()
		reg.SetNode("simurghbench")
		reg.EnableTrace(4096)
		copts.Obs = reg
		copts.TraceSample = *traceSample
	}
	remote, err := client.Dial(target, copts)
	if err != nil {
		return err
	}
	defer remote.Close()

	paths, err := netPopulate(remote, *files)
	if err != nil {
		return err
	}

	fmt.Printf("%6s %6s %12s %10s %10s %10s\n", "conns", "batch", "ops/s", "p50", "p95", "p99")
	var points []netPointJSON
	for _, conns := range connCounts {
		var base float64 // batch-1 throughput at this connection count
		for _, batch := range batchSizes {
			pt, err := netPoint(remote, paths, conns, batch, *dur)
			if err != nil {
				return err
			}
			speedup := ""
			if batch == batchSizes[0] {
				base = pt.OpsPerSec
			} else if base > 0 {
				speedup = fmt.Sprintf("  %.1fx vs batch-%d", pt.OpsPerSec/base, batchSizes[0])
			}
			fmt.Printf("%6d %6d %12.0f %10s %10s %10s%s\n",
				conns, batch, pt.OpsPerSec,
				fmtNs(pt.P50Ns), fmtNs(pt.P95Ns), fmtNs(pt.P99Ns), speedup)
			points = append(points, pt)
		}
	}

	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		err = enc.Encode(struct {
			Suite      string         `json:"suite"`
			DurationMs int64          `json:"duration_ms"`
			Points     []netPointJSON `json:"points"`
		}{Suite: "net", DurationMs: dur.Milliseconds(), Points: points})
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Printf("\nwrote %s\n", *jsonOut)
	}
	return nil
}

// startProfile begins capturing the requested runtime profile and returns
// the function that finishes it. CPU profiling streams for the whole run;
// heap and allocs snapshot at the end (after a GC, so live-heap numbers are
// settled). An empty kind is a no-op.
func startProfile(kind, out string) (func(), error) {
	if kind == "" {
		return func() {}, nil
	}
	if out == "" {
		out = "net_" + kind + ".pprof"
	}
	f, err := os.Create(out)
	if err != nil {
		return nil, err
	}
	done := func(err error) {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "profile %s: %v\n", out, err)
			return
		}
		fmt.Printf("wrote %s profile to %s\n", kind, out)
	}
	switch kind {
	case "cpu":
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		return func() {
			pprof.StopCPUProfile()
			done(nil)
		}, nil
	case "heap", "allocs":
		return func() {
			runtime.GC()
			done(pprof.Lookup(kind).WriteTo(f, 0))
		}, nil
	default:
		f.Close()
		os.Remove(out)
		return nil, fmt.Errorf("unknown -profile kind %q (want cpu, heap, or allocs)", kind)
	}
}

// netPointJSON is one grid point of the net suite: latencies are batch
// round-trip times (a batch's RTT covers all its ops).
type netPointJSON struct {
	Conns     int     `json:"conns"`
	Batch     int     `json:"batch"`
	Ops       uint64  `json:"ops"`
	ElapsedNs int64   `json:"elapsed_ns"`
	OpsPerSec float64 `json:"ops_per_sec"`
	P50Ns     uint64  `json:"p50_ns"`
	P95Ns     uint64  `json:"p95_ns"`
	P99Ns     uint64  `json:"p99_ns"`
}

// netPopulate creates the files the stat workload cycles over.
func netPopulate(remote *client.Remote, files int) ([]string, error) {
	c, err := remote.Attach(fsapi.Root)
	if err != nil {
		return nil, err
	}
	defer c.Detach()
	if err := c.Mkdir("/bench", 0o755); err != nil {
		return nil, err
	}
	paths := make([]string, files)
	for i := range paths {
		paths[i] = fmt.Sprintf("/bench/f%03d", i)
		fd, err := c.Create(paths[i], 0o644)
		if err != nil {
			return nil, err
		}
		if _, err := c.Write(fd, []byte("x")); err != nil {
			return nil, err
		}
		if err := c.Close(fd); err != nil {
			return nil, err
		}
	}
	return paths, nil
}

// netPoint drives conns sessions, each submitting explicit batches of the
// given size, for roughly dur, and aggregates throughput and RTT
// percentiles.
func netPoint(remote *client.Remote, paths []string, conns, batch int, dur time.Duration) (netPointJSON, error) {
	sessions := make([]*client.Session, conns)
	for i := range sessions {
		c, err := remote.Attach(fsapi.Cred{UID: 1000, GID: 1000})
		if err != nil {
			return netPointJSON{}, err
		}
		sessions[i] = c.(*client.Session)
		defer sessions[i].Detach()
	}

	type connResult struct {
		ops  uint64
		hist obs.Histogram
		err  error
	}
	results := make([]connResult, conns)

	run := func(stopAt time.Time, record bool) {
		var wg sync.WaitGroup
		for ci := range sessions {
			wg.Add(1)
			go func(ci int) {
				defer wg.Done()
				sess, res := sessions[ci], &results[ci]
				reqs := make([]wire.Request, batch)
				i := ci // stagger the path cycle across connections
				for time.Now().Before(stopAt) {
					for j := range reqs {
						reqs[j] = wire.Request{Op: wire.OpStat, Path: paths[i%len(paths)]}
						i++
					}
					t0 := time.Now()
					resps, err := sess.Submit(reqs)
					if err != nil {
						res.err = err
						return
					}
					if record {
						res.hist.Observe(uint64(time.Since(t0)))
						res.ops += uint64(len(resps))
					}
				}
			}(ci)
		}
		wg.Wait()
	}

	// Brief warmup settles connection buffers and the server's worker pool
	// before the timed window.
	run(time.Now().Add(dur/10), false)
	start := time.Now()
	run(start.Add(dur), true)
	elapsed := time.Since(start)

	pt := netPointJSON{Conns: conns, Batch: batch, ElapsedNs: elapsed.Nanoseconds()}
	var hist obs.Histogram
	for i := range results {
		if results[i].err != nil {
			return netPointJSON{}, results[i].err
		}
		pt.Ops += results[i].ops
		hist = hist.Add(results[i].hist)
	}
	pt.OpsPerSec = float64(pt.Ops) / elapsed.Seconds()
	pt.P50Ns = hist.Percentile(0.50)
	pt.P95Ns = hist.Percentile(0.95)
	pt.P99Ns = hist.Percentile(0.99)
	return pt, nil
}

// fmtNs renders a latency compactly (µs below 10ms, ms above).
func fmtNs(ns uint64) string {
	if ns >= 10_000_000 {
		return fmt.Sprintf("%.1fms", float64(ns)/1e6)
	}
	return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
}
