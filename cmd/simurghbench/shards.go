package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"runtime"
	"sync"
	"time"

	"simurgh/internal/core"
	"simurgh/internal/fsapi"
	"simurgh/internal/obs"
	"simurgh/internal/pmem"
	"simurgh/internal/replica"
	"simurgh/internal/server"
	"simurgh/internal/shard"
	"simurgh/internal/wire"
	"simurgh/internal/wire/client"
)

// shardGroup is one in-process replica group serving one hash shard.
type shardGroup struct {
	srv     *server.Server
	primary *replica.Node
	backups []*replica.Node
	addr    string
}

func (g *shardGroup) close() {
	g.srv.Shutdown()
	for _, b := range g.backups {
		b.Close()
	}
	g.primary.Close()
}

// startShardGroups spins n independent replica groups (each a primary with
// quorum in-process backups and its own volume) plus the shard map naming
// them, and installs a shard authority on every server so the router's
// claims and Moved fencing run exactly as in a real deployment.
func startShardGroups(n, quorum int) ([]*shardGroup, *shard.Map, error) {
	quiet := func(string, ...any) {}
	restore := func(img []byte) (fsapi.FileSystem, error) {
		d, err := pmem.ReadImage(bytes.NewReader(img))
		if err != nil {
			return nil, err
		}
		fs, _, err := core.Mount(d, core.Options{})
		return fs, err
	}

	// Listeners first: the map needs every group's address before any
	// authority can be built.
	lns := make([]net.Listener, n)
	m := &shard.Map{Epoch: 1}
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, nil, err
		}
		lns[i] = ln
		sh := shard.Shard{ID: uint32(i), Addrs: []string{ln.Addr().String()}}
		if n == 1 {
			sh.Prefix = "/"
		}
		m.Shards = append(m.Shards, sh)
	}

	groups := make([]*shardGroup, 0, n)
	fail := func(err error) ([]*shardGroup, *shard.Map, error) {
		for _, g := range groups {
			g.close()
		}
		return nil, nil, err
	}
	for i := 0; i < n; i++ {
		addr := lns[i].Addr().String()
		dev, vol, err := repVolume()
		if err != nil {
			return fail(err)
		}
		pnode := replica.NewPrimary(vol, replica.Config{
			Quorum: quorum,
			Logf:   quiet,
			Snapshot: func(w io.Writer) error {
				_, err := dev.WriteTo(w)
				return err
			},
		})
		auth, err := shard.NewAuthority(m, addr, nil)
		if err != nil {
			pnode.Close()
			return fail(err)
		}
		srv, err := server.New(server.Config{FS: vol, Replica: pnode, Sharding: auth})
		if err != nil {
			pnode.Close()
			return fail(err)
		}
		go srv.Serve(lns[i])
		g := &shardGroup{srv: srv, primary: pnode, addr: addr}
		for b := 0; b < quorum; b++ {
			g.backups = append(g.backups, replica.NewBackup(replica.Config{
				PrimaryAddr: addr,
				Logf:        quiet,
				Restore:     restore,
			}))
		}
		groups = append(groups, g)
	}
	for _, g := range groups {
		joined := func() bool {
			if g.primary.Backups() < quorum {
				return false
			}
			for _, b := range g.backups {
				if b.Epoch() != g.primary.Epoch() {
					return false
				}
			}
			return true
		}
		for deadline := time.Now().Add(30 * time.Second); !joined(); {
			if time.Now().After(deadline) {
				for _, g := range groups {
					g.close()
				}
				return nil, nil, fmt.Errorf("shards: only %d/%d backups joined %s", g.primary.Backups(), quorum, g.addr)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	return groups, m, nil
}

// shardPointJSON is one sharded measurement: the aggregate pwrite point
// through the router plus its per-shard split.
type shardPointJSON struct {
	Shards   int            `json:"shards"`
	Quorum   int            `json:"quorum"`
	Pwrite   netPointJSON   `json:"pwrite"`
	PerShard []shardOpsJSON `json:"per_shard"`
}

type shardOpsJSON struct {
	Shard     uint32  `json:"shard"`
	Ops       uint64  `json:"ops"`
	OpsPerSec float64 `json:"ops_per_sec"`
}

// runNetShards measures sharded aggregate write throughput: for each group
// count in ns, it spins that many independent replica groups, routes conns
// writers through the client router (each writer pinned to a file whose
// path hashes to writer%groups, so load spreads evenly), and reports the
// aggregate acked-pwrite throughput and its per-shard split. The point of
// the suite is the scaling ratio: aggregate throughput across 2 groups vs 1
// at equal quorum.
func runNetShards(ns []int, quorum, conns, batch int, dur time.Duration, jsonOut string) error {
	fmt.Printf("## Sharded write scaling (groups x quorum %d, %d conns, batch %d)\n", quorum, conns, batch)
	fmt.Printf("%7s %12s %10s %10s %10s  %s\n", "shards", "pwrite/s", "p50", "p95", "p99", "per-shard ops/s")
	var points []shardPointJSON
	var base float64
	for _, n := range ns {
		pt, err := shardPoint(n, quorum, conns, batch, dur)
		if err != nil {
			return err
		}
		points = append(points, pt)
		per := ""
		for _, s := range pt.PerShard {
			per += fmt.Sprintf(" %d:%.0f", s.Shard, s.OpsPerSec)
		}
		scale := ""
		if n == ns[0] {
			base = pt.Pwrite.OpsPerSec
		} else if base > 0 {
			scale = fmt.Sprintf("  %.2fx vs %d-group", pt.Pwrite.OpsPerSec/base, ns[0])
		}
		fmt.Printf("%7d %12.0f %10s %10s %10s %s%s\n",
			n, pt.Pwrite.OpsPerSec,
			fmtNs(pt.Pwrite.P50Ns), fmtNs(pt.Pwrite.P95Ns), fmtNs(pt.Pwrite.P99Ns), per, scale)
	}
	if jsonOut != "" {
		f, err := os.Create(jsonOut)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		err = enc.Encode(struct {
			Suite      string           `json:"suite"`
			DurationMs int64            `json:"duration_ms"`
			Quorum     int              `json:"quorum"`
			Conns      int              `json:"conns"`
			Batch      int              `json:"batch"`
			GoMaxProcs int              `json:"gomaxprocs"`
			Points     []shardPointJSON `json:"points"`
		}{Suite: "shards", DurationMs: dur.Milliseconds(), Quorum: quorum,
			Conns: conns, Batch: batch, GoMaxProcs: runtime.GOMAXPROCS(0),
			Points: points})
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Printf("\nwrote %s\n", jsonOut)
	}
	return nil
}

// shardFile picks a path for a worker that routes to the wanted shard, by
// probing candidate names against the map (hash placement is opaque; the
// probe pins even load instead of trusting FNV to balance a handful of
// workers).
func shardFile(m *shard.Map, worker int, want uint32) string {
	for probe := 0; ; probe++ {
		p := fmt.Sprintf("/wr%03d-%d", worker, probe)
		if m.Route(p).ID == want {
			return p
		}
	}
}

// shardPoint measures one group count: aggregate pwrite through the router.
func shardPoint(n, quorum, conns, batch int, dur time.Duration) (shardPointJSON, error) {
	pt := shardPointJSON{Shards: n, Quorum: quorum}
	groups, m, err := startShardGroups(n, quorum)
	if err != nil {
		return pt, err
	}
	defer func() {
		for _, g := range groups {
			g.close()
		}
	}()

	rt, err := client.DialRouter(groups[0].addr, client.RouterOptions{})
	if err != nil {
		return pt, err
	}
	defer rt.Close()

	type worker struct {
		sess  fsapi.Client
		fd    fsapi.FD
		shard uint32
		ops   uint64
		hist  obs.Histogram
		err   error
	}
	workers := make([]*worker, conns)
	for i := range workers {
		c, err := rt.Attach(fsapi.Root)
		if err != nil {
			return pt, err
		}
		w := &worker{sess: c, shard: uint32(i % n)}
		defer c.Detach()
		fd, err := c.Create(shardFile(m, i, w.shard), 0o644)
		if err != nil {
			return pt, err
		}
		w.fd = fd
		workers[i] = w
	}

	run := func(stopAt time.Time, record bool) {
		var wg sync.WaitGroup
		for _, w := range workers {
			wg.Add(1)
			go func(w *worker) {
				defer wg.Done()
				sess := w.sess.(*client.RoutedSession)
				reqs := make([]wire.Request, batch)
				payload := []byte("0123456789abcdef")
				var off uint64
				for time.Now().Before(stopAt) {
					for j := range reqs {
						reqs[j] = wire.Request{Op: wire.OpPwrite, FD: w.fd, Data: payload,
							Off: (off % 4096) * uint64(len(payload))}
						off++
					}
					t0 := time.Now()
					resps, err := sess.Submit(reqs)
					if err != nil {
						w.err = err
						return
					}
					for i := range resps {
						if resps[i].Code != wire.CodeOK {
							w.err = fmt.Errorf("pwrite: %w", resps[i].Err())
							return
						}
					}
					if record {
						w.hist.Observe(uint64(time.Since(t0)))
						w.ops += uint64(len(resps))
					}
				}
			}(w)
		}
		wg.Wait()
	}
	run(time.Now().Add(dur/10), false)
	start := time.Now()
	run(start.Add(dur), true)
	elapsed := time.Since(start)

	pt.Pwrite = netPointJSON{Conns: conns, Batch: batch, ElapsedNs: elapsed.Nanoseconds()}
	var hist obs.Histogram
	perShard := make(map[uint32]uint64)
	for _, w := range workers {
		if w.err != nil {
			return pt, w.err
		}
		pt.Pwrite.Ops += w.ops
		perShard[w.shard] += w.ops
		hist = hist.Add(w.hist)
	}
	pt.Pwrite.OpsPerSec = float64(pt.Pwrite.Ops) / elapsed.Seconds()
	pt.Pwrite.P50Ns = hist.Percentile(0.50)
	pt.Pwrite.P95Ns = hist.Percentile(0.95)
	pt.Pwrite.P99Ns = hist.Percentile(0.99)
	for i := 0; i < n; i++ {
		pt.PerShard = append(pt.PerShard, shardOpsJSON{
			Shard:     uint32(i),
			Ops:       perShard[uint32(i)],
			OpsPerSec: float64(perShard[uint32(i)]) / elapsed.Seconds(),
		})
	}
	return pt, nil
}
