package main

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"time"

	"simurgh/internal/core"
	"simurgh/internal/fsapi"
	"simurgh/internal/obs"
	"simurgh/internal/pmem"
	"simurgh/internal/replica"
	"simurgh/internal/server"
	"simurgh/internal/wire"
	"simurgh/internal/wire/client"
)

// runRep measures and exercises primary–backup replication. Without -addr
// it runs the overhead grid: the same in-process workload against a
// standalone server and against every (lockstep|pipelined) × (quorum 1|2)
// combination with quorum backups attached, reporting the replication tax
// on a read-mostly point (stat, which never leaves the primary) and a
// pure-mutation point (pwrite, which pays a quorum ack per reply flush),
// plus the shipped wire bytes per entry. With -addr it drives acknowledged writes
// against a live group and verifies, after the run (and any failover the
// operator caused mid-run), that every acknowledged write is readable —
// the zero-acked-write-loss check the CI smoke job kills a primary under.
func runRep(args []string) error {
	fs := flag.NewFlagSet("rep", flag.ExitOnError)
	addr := fs.String("addr", "", "drive a live group at this comma-separated address list instead of in-process servers")
	conns := fs.Int("conns", 8, "concurrent sessions")
	batch := fs.Int("batch", 32, "requests per Submit")
	dur := fs.Duration("duration", time.Second, "measurement time per point (in-process) or write-drive time (-addr)")
	files := fs.Int("files", 64, "files the stat workload cycles over")
	jsonOut := fs.String("json", "", "also write results as JSON to this file")
	traceSample := fs.Int("trace-sample", 0, "with -addr: tag 1-in-N writes with a distributed trace context (0 = off); scrape the nodes' /trace.json and merge with `simurghsh trace merge`")
	route := fs.Bool("route", false, "with -addr: treat the address list as shard-map seeds and drive writes through the client router (sharded groups, live migration under load)")
	fs.Parse(args)

	if *addr != "" {
		return repLive(*addr, *conns, *dur, *traceSample, *route)
	}
	return repOverhead(*conns, *batch, *dur, *files, *jsonOut)
}

// repVolume formats one in-process volume. 64 MiB is plenty for the
// overhead workloads and keeps the per-backup snapshot transfer (paid once
// per grid cell per backup) from dominating setup.
func repVolume() (*pmem.Device, *core.FS, error) {
	dev := pmem.New(64 << 20)
	vol, err := core.Format(dev, fsapi.Root, core.Options{})
	return dev, vol, err
}

// repServe starts a wire server on loopback and returns its address.
func repServe(cfg server.Config) (*server.Server, string, error) {
	srv, err := server.New(cfg)
	if err != nil {
		return nil, "", err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, "", err
	}
	go srv.Serve(ln)
	return srv, ln.Addr().String(), nil
}

// repPointJSON is one cell of the overhead grid: a shipping mode × quorum
// combination measured against the shared standalone baseline.
type repPointJSON struct {
	Mode              string       `json:"mode"` // "lockstep" | "pipelined"
	Quorum            int          `json:"quorum"`
	Backups           int          `json:"backups"`
	Stat              netPointJSON `json:"stat"`
	Pwrite            netPointJSON `json:"pwrite"`
	StatOverheadPct   float64      `json:"stat_overhead_pct"`
	PwriteOverheadPct float64      `json:"pwrite_overhead_pct"`
	ShipBytesPerOp    float64      `json:"ship_bytes_per_op"`
}

func repOverhead(conns, batch int, dur time.Duration, files int, jsonOut string) error {
	fmt.Printf("## Replication overhead grid (mode x quorum vs standalone)\n")
	quiet := func(string, ...any) {}
	restore := func(img []byte) (fsapi.FileSystem, error) {
		d, err := pmem.ReadImage(bytes.NewReader(img))
		if err != nil {
			return nil, err
		}
		fs, _, err := core.Mount(d, core.Options{})
		return fs, err
	}

	// Standalone baseline, shared by every grid cell.
	_, vol, err := repVolume()
	if err != nil {
		return err
	}
	srv, target, err := repServe(server.Config{FS: vol})
	if err != nil {
		return err
	}
	baseStat, baseWrite, err := func() (s, w netPointJSON, err error) {
		remote, err := client.Dial(target, client.Options{})
		if err != nil {
			return s, w, err
		}
		defer remote.Close()
		paths, err := netPopulate(remote, files)
		if err != nil {
			return s, w, err
		}
		if s, err = netPoint(remote, paths, conns, batch, dur); err != nil {
			return s, w, err
		}
		w, err = repWritePoint(remote, conns, batch, dur)
		return s, w, err
	}()
	srv.Shutdown()
	if err != nil {
		return err
	}

	tax := func(base, rep float64) float64 {
		if base <= 0 {
			return 0
		}
		return (1 - rep/base) * 100
	}

	// cell measures one mode × quorum combination: a fresh primary shipping
	// to quorum in-process backups, so every acked pwrite pays a real
	// round trip. Ship bytes/op comes from the primary's shipped-bytes
	// counter delta across the pwrite point (per entry, so the unrecorded
	// warmup writes don't skew it).
	cell := func(mode string, quorum int) (repPointJSON, error) {
		pt := repPointJSON{Mode: mode, Quorum: quorum, Backups: quorum}
		pdev, pvol, err := repVolume()
		if err != nil {
			return pt, err
		}
		pnode := replica.NewPrimary(pvol, replica.Config{
			Quorum:   quorum,
			Lockstep: mode == "lockstep",
			Logf:     quiet,
			Snapshot: func(w io.Writer) error {
				_, err := pdev.WriteTo(w)
				return err
			},
		})
		psrv, ptarget, err := repServe(server.Config{FS: pvol, Replica: pnode})
		if err != nil {
			pnode.Close()
			return pt, err
		}
		defer psrv.Shutdown()
		defer pnode.Close()
		backups := make([]*replica.Node, quorum)
		for i := range backups {
			backups[i] = replica.NewBackup(replica.Config{
				PrimaryAddr: ptarget,
				Lockstep:    mode == "lockstep",
				Logf:        quiet,
				Restore:     restore,
			})
			defer backups[i].Close()
		}
		// Wait for completed joins, not just registered links: a backup's
		// epoch leaves zero only once its snapshot is restored. Gating on
		// Backups() alone would race the snapshot transfer and stall the
		// first attach's quorum wait past the client handshake deadline.
		joined := func() bool {
			if pnode.Backups() < quorum {
				return false
			}
			for _, b := range backups {
				if b.Epoch() != pnode.Epoch() {
					return false
				}
			}
			return true
		}
		for deadline := time.Now().Add(30 * time.Second); !joined(); {
			if time.Now().After(deadline) {
				return pt, fmt.Errorf("rep: only %d/%d backups joined", pnode.Backups(), quorum)
			}
			time.Sleep(10 * time.Millisecond)
		}

		remote, err := client.Dial(ptarget, client.Options{})
		if err != nil {
			return pt, err
		}
		defer remote.Close()
		paths, err := netPopulate(remote, files)
		if err != nil {
			return pt, err
		}
		if pt.Stat, err = netPoint(remote, paths, conns, batch, dur); err != nil {
			return pt, err
		}
		e0, b0 := pnode.ShipStats()
		if pt.Pwrite, err = repWritePoint(remote, conns, batch, dur); err != nil {
			return pt, err
		}
		e1, b1 := pnode.ShipStats()
		if e1 > e0 {
			// Per-link totals: normalize to per-entry wire cost.
			pt.ShipBytesPerOp = float64(b1-b0) / float64(e1-e0)
		}
		pt.StatOverheadPct = tax(baseStat.OpsPerSec, pt.Stat.OpsPerSec)
		pt.PwriteOverheadPct = tax(baseWrite.OpsPerSec, pt.Pwrite.OpsPerSec)
		return pt, nil
	}

	fmt.Printf("%-10s %6s %12s %12s %10s %10s %9s\n",
		"mode", "quorum", "stat op/s", "pwrite op/s", "stat ovh", "pwrite ovh", "bytes/op")
	fmt.Printf("%-10s %6s %12.0f %12.0f %10s %10s %9s\n",
		"standalone", "-", baseStat.OpsPerSec, baseWrite.OpsPerSec, "-", "-", "-")
	var points []repPointJSON
	for _, mode := range []string{"lockstep", "pipelined"} {
		for _, quorum := range []int{1, 2} {
			pt, err := cell(mode, quorum)
			if err != nil {
				return err
			}
			points = append(points, pt)
			fmt.Printf("%-10s %6d %12.0f %12.0f %9.1f%% %9.1f%% %9.1f\n",
				pt.Mode, pt.Quorum, pt.Stat.OpsPerSec, pt.Pwrite.OpsPerSec,
				pt.StatOverheadPct, pt.PwriteOverheadPct, pt.ShipBytesPerOp)
		}
	}

	if jsonOut != "" {
		f, err := os.Create(jsonOut)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		err = enc.Encode(struct {
			Suite            string         `json:"suite"`
			DurationMs       int64          `json:"duration_ms"`
			StandaloneStat   netPointJSON   `json:"standalone_stat"`
			StandalonePwrite netPointJSON   `json:"standalone_pwrite"`
			Points           []repPointJSON `json:"points"`
		}{
			Suite: "rep", DurationMs: dur.Milliseconds(),
			StandaloneStat: baseStat, StandalonePwrite: baseWrite,
			Points: points,
		})
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Printf("\nwrote %s\n", jsonOut)
	}
	return nil
}

// repWritePoint drives conns sessions, each submitting batches of pwrites
// to its own file — every request is a replicated mutation, so the point
// measures the log/quorum path with no read dilution.
func repWritePoint(remote *client.Remote, conns, batch int, dur time.Duration) (netPointJSON, error) {
	sessions := make([]*client.Session, conns)
	fds := make([]fsapi.FD, conns)
	for i := range sessions {
		c, err := remote.Attach(fsapi.Root)
		if err != nil {
			return netPointJSON{}, err
		}
		sessions[i] = c.(*client.Session)
		defer sessions[i].Detach()
		fd, err := c.Create(fmt.Sprintf("/bench/wr%03d", i), 0o644)
		if err != nil {
			return netPointJSON{}, err
		}
		fds[i] = fd
	}

	type connResult struct {
		ops  uint64
		hist obs.Histogram
		err  error
	}
	results := make([]connResult, conns)
	run := func(stopAt time.Time, record bool) {
		var wg sync.WaitGroup
		for ci := range sessions {
			wg.Add(1)
			go func(ci int) {
				defer wg.Done()
				sess, fd, res := sessions[ci], fds[ci], &results[ci]
				reqs := make([]wire.Request, batch)
				payload := []byte("0123456789abcdef")
				var off uint64
				for time.Now().Before(stopAt) {
					for j := range reqs {
						reqs[j] = wire.Request{Op: wire.OpPwrite, FD: fd, Data: payload,
							Off: (off % 4096) * uint64(len(payload))}
						off++
					}
					t0 := time.Now()
					resps, err := sess.Submit(reqs)
					if err != nil {
						res.err = err
						return
					}
					if record {
						res.hist.Observe(uint64(time.Since(t0)))
						res.ops += uint64(len(resps))
					}
				}
			}(ci)
		}
		wg.Wait()
	}
	run(time.Now().Add(dur/10), false)
	start := time.Now()
	run(start.Add(dur), true)
	elapsed := time.Since(start)

	pt := netPointJSON{Conns: conns, Batch: batch, ElapsedNs: elapsed.Nanoseconds()}
	var hist obs.Histogram
	for i := range results {
		if results[i].err != nil {
			return netPointJSON{}, results[i].err
		}
		pt.Ops += results[i].ops
		hist = hist.Add(results[i].hist)
	}
	pt.OpsPerSec = float64(pt.Ops) / elapsed.Seconds()
	pt.P50Ns = hist.Percentile(0.50)
	pt.P95Ns = hist.Percentile(0.95)
	pt.P99Ns = hist.Percentile(0.99)
	return pt, nil
}

// repLive drives acknowledged writes against a live group for dur — the
// operator (or CI) kills the primary mid-run — then re-reads every file
// and fails unless each acknowledged write is present. Each worker owns
// one file and appends monotonically numbered 8-byte records with Pwrite;
// a record counts only once its response arrives. With routed, addr is a
// shard-map seed list and every write goes through the client router, so
// the same zero-loss ledger also covers live shard migration (the files
// spread across shards by hash, and Moved answers retry transparently).
func repLive(addr string, workers int, dur time.Duration, traceSample int, routed bool) error {
	copts := client.Options{FailoverTimeout: 30 * time.Second}
	if traceSample > 0 {
		// Originate distributed trace contexts: the servers record their
		// spans against the IDs this client stamps on sampled writes.
		reg := obs.NewRegistry()
		reg.SetNode("simurghbench")
		reg.EnableTrace(4096)
		copts.Obs = reg
		copts.TraceSample = traceSample
	}
	var remote interface {
		Attach(fsapi.Cred) (fsapi.Client, error)
		Close() error
	}
	var tail func() string
	if routed {
		rt, err := client.DialRouter(addr, client.RouterOptions{Options: copts})
		if err != nil {
			return err
		}
		remote = rt
		tail = func() string {
			st := rt.Stats()
			return fmt.Sprintf("epoch=%d moves=%d map_refreshes=%d",
				st.Epoch, st.Moves, st.MapRefreshes)
		}
	} else {
		r, err := client.Dial(addr, copts)
		if err != nil {
			return err
		}
		remote = r
		tail = func() string {
			st := r.Stats()
			return fmt.Sprintf("failovers=%d replays=%d redirects=%d",
				st.Failovers, st.Replays, st.Redirects)
		}
	}
	defer remote.Close()

	// Sharding hashes on the first path component, so a shared /replive
	// directory would pin every worker file to one shard; routed runs put
	// the files at the root instead, where each name hashes independently.
	pathFor := func(wi int) string {
		if routed {
			return fmt.Sprintf("/replive-w%03d", wi)
		}
		return fmt.Sprintf("/replive/w%03d", wi)
	}
	if !routed {
		setup, err := remote.Attach(fsapi.Root)
		if err != nil {
			return err
		}
		if err := setup.Mkdir("/replive", 0o755); err != nil && err != fsapi.ErrExist {
			return err
		}
		setup.Detach()
	}

	type result struct {
		acked uint64
		err   error
	}
	results := make([]result, workers)
	stopAt := time.Now().Add(dur)
	var wg sync.WaitGroup
	for wi := 0; wi < workers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			res := &results[wi]
			c, err := remote.Attach(fsapi.Root)
			if err != nil {
				res.err = err
				return
			}
			defer c.Detach()
			fd, err := c.Open(pathFor(wi), fsapi.OCreate|fsapi.ORdwr, 0o644)
			if err != nil {
				res.err = err
				return
			}
			var rec [8]byte
			for time.Now().Before(stopAt) {
				binary.LittleEndian.PutUint64(rec[:], res.acked)
				if _, err := c.Pwrite(fd, rec[:], res.acked*8); err != nil {
					res.err = fmt.Errorf("write %d: %w", res.acked, err)
					return
				}
				res.acked++
			}
		}(wi)
	}
	wg.Wait()

	var totalAcked, totalLost uint64
	verify, err := remote.Attach(fsapi.Root)
	if err != nil {
		return err
	}
	defer verify.Detach()
	for wi := 0; wi < workers; wi++ {
		if results[wi].err != nil {
			return fmt.Errorf("worker %d: %w", wi, results[wi].err)
		}
		totalAcked += results[wi].acked
		fd, err := verify.Open(pathFor(wi), fsapi.ORdonly, 0)
		if err != nil {
			return fmt.Errorf("verify open w%03d: %w", wi, err)
		}
		buf := make([]byte, results[wi].acked*8)
		n, err := verify.Pread(fd, buf, 0)
		if err != nil {
			return fmt.Errorf("verify read w%03d: %w", wi, err)
		}
		for rec := uint64(0); rec < results[wi].acked; rec++ {
			if uint64(n) < (rec+1)*8 ||
				binary.LittleEndian.Uint64(buf[rec*8:]) != rec {
				totalLost++
			}
		}
		verify.Close(fd)
	}

	fmt.Printf("acked=%d lost=%d %s\n", totalAcked, totalLost, tail())
	if totalLost > 0 {
		return fmt.Errorf("rep: %d acknowledged writes lost", totalLost)
	}
	return nil
}
