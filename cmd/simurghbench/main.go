// Command simurghbench regenerates every table and figure of the paper's
// evaluation (see DESIGN.md for the experiment index):
//
//	simurghbench isa                  gem5 cycle table (§3.3)
//	simurghbench micro [flags]        FxMark microbenchmarks (Fig 7a-l)
//	simurghbench fig6                 original vs adapted FxMark read (Fig 6)
//	simurghbench filebench [flags]    varmail/webserver/webproxy/fileserver (Fig 8)
//	simurghbench ycsb [flags]         YCSB A-F on LevelDB (Fig 9)
//	simurghbench breakdown [flags]    execution-time breakdown (Table 1 / Fig 10)
//	simurghbench tar [flags]          tar pack/unpack (Fig 11)
//	simurghbench git [flags]          git add/commit/reset (Fig 12)
//	simurghbench recovery [flags]     full-crash recovery time (§5.5)
//	simurghbench serve [flags]        run a live workload and export metrics
//	simurghbench net [flags]          wire-protocol throughput/latency grid
//	simurghbench net -shards 1,2      sharded write scaling through the router
//	simurghbench rep [flags]          replication overhead grid / live-group drive
//	simurghbench rep -addr S -route   zero-loss write drive through the shard router
//	simurghbench all                  everything at default scale
//
// Results are throughput series/tables in the paper's shape; absolute
// numbers reflect this host (emulated NVMM in DRAM), so compare trends, not
// magnitudes. See EXPERIMENTS.md for a paper-vs-measured discussion.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"simurgh/internal/apps/gitbench"
	"simurgh/internal/apps/tarbench"
	"simurgh/internal/bench"
	"simurgh/internal/core"
	"simurgh/internal/corpus"
	"simurgh/internal/cost"
	"simurgh/internal/export"
	"simurgh/internal/filebench"
	"simurgh/internal/fsapi"
	"simurgh/internal/fxmark"
	"simurgh/internal/isa"
	"simurgh/internal/obs"
	"simurgh/internal/pmem"
	"simurgh/internal/ycsb"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "isa":
		err = runISA()
	case "micro":
		err = runMicro(args)
	case "fig6":
		err = runFig6(args)
	case "filebench":
		err = runFilebench(args)
	case "ycsb":
		err = runYCSB(args)
	case "breakdown":
		err = runBreakdown(args)
	case "tar":
		err = runTar(args)
	case "git":
		err = runGit(args)
	case "recovery":
		err = runRecovery(args)
	case "serve":
		err = runServe(args)
	case "net":
		err = runNet(args)
	case "rep":
		err = runRep(args)
	case "ablation":
		err = runAblation(args)
	case "all":
		err = runAll(args)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "simurghbench:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: simurghbench <isa|micro|fig6|filebench|ycsb|breakdown|tar|git|recovery|serve|net|rep|all> [flags]`)
}

func parseThreads(s string) []int {
	if s == "" {
		return bench.DefaultThreads()
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err == nil && n > 0 {
			out = append(out, n)
		}
	}
	if len(out) == 0 {
		return bench.DefaultThreads()
	}
	return out
}

func parseFS(s string) []string {
	if s == "" || s == "all" {
		return bench.FSNames
	}
	return strings.Split(s, ",")
}

// runISA regenerates the §3.3 cycle comparison.
func runISA() error {
	fmt.Println("## Protected-function cycle model (gem5, §3.3)")
	fmt.Printf("%-32s %8s  %s\n", "mechanism", "cycles", "detail")
	for _, row := range isa.CycleTable() {
		fmt.Printf("%-32s %8d  %s\n", row.Mechanism, row.Cycles, row.Detail)
	}
	fmt.Printf("\nprotected call vs geteuid syscall: %.1fx cheaper\n",
		float64(isa.CyclesSyscallModern)/float64(isa.CyclesJmppPret))
	fmt.Printf("per-operation delta charged to Simurgh in all benchmarks: %d cycles (%.0f ns @ %.1f GHz)\n",
		cost.JmppExtraCycles, float64(cost.JmppExtraCycles)/cost.ClockGHz, cost.ClockGHz)
	return nil
}

func runMicro(args []string) error {
	fs := flag.NewFlagSet("micro", flag.ExitOnError)
	benchName := fs.String("bench", "all", "workload name or 'all' (see DESIGN.md Fig 7 index)")
	threads := fs.String("threads", "", "comma-separated thread counts (default 1..min(10,cores))")
	dur := fs.Duration("duration", 500*time.Millisecond, "measurement time per point")
	reps := fs.Int("reps", 1, "repetitions per point (best kept; raises noise immunity)")
	fsList := fs.String("fs", "all", "file systems (comma separated)")
	jsonOut := fs.String("json", "", "also write results as JSON to this file")
	fs.Parse(args)

	ws := fxmark.All()
	names := []string{
		"create-private", "create-shared", "unlink-private", "rename-shared",
		"resolve-private", "resolve-shared", "append-private", "fallocate",
		"read-shared", "read-private", "overwrite-shared", "write-private",
	}
	if *benchName != "all" {
		if _, ok := ws[*benchName]; !ok {
			return fmt.Errorf("unknown bench %q", *benchName)
		}
		names = []string{*benchName}
	}
	figs := map[string]string{
		"create-private": "Fig 7a createfile, private dirs", "create-shared": "Fig 7b createfile, shared dir",
		"unlink-private": "Fig 7c deletefile, private dirs", "rename-shared": "Fig 7d renamefile, shared dir",
		"resolve-private": "Fig 7e resolvepath, private", "resolve-shared": "Fig 7f resolvepath, shared paths",
		"append-private": "Fig 7g appendfile 4KB", "fallocate": "Fig 7h fallocate 4MB",
		"read-shared": "Fig 7i random read, shared file", "read-private": "Fig 7j random read, private files",
		"overwrite-shared": "Fig 7k overwrite, shared file", "write-private": "Fig 7l write, private files",
	}
	ths := parseThreads(*threads)
	var doc []microJSON
	for _, name := range names {
		w := ws[name]
		fsNames := parseFS(*fsList)
		if name == "overwrite-shared" {
			fsNames = append(append([]string{}, fsNames...), "simurgh-relaxed")
		}
		var results []bench.Result
		for _, fsName := range fsNames {
			for _, th := range ths {
				var best bench.Result
				for r := 0; r < *reps; r++ {
					res, err := bench.RunPoint(w, fsName, 512<<20, th, *dur)
					if err != nil {
						return err
					}
					if res.Ops > best.Ops || best.Elapsed == 0 {
						best = res
					}
				}
				results = append(results, best)
			}
		}
		if name == "read-shared" {
			for _, t := range ths {
				results = append(results, bench.RawReadBandwidth(1<<30, t, *dur))
			}
		}
		inMB := strings.HasPrefix(name, "read") || strings.HasPrefix(name, "write") ||
			strings.HasPrefix(name, "overwrite") || strings.HasPrefix(name, "append")
		bench.PrintSeries(os.Stdout, figs[name], results, inMB)
		doc = append(doc, microJSON{Bench: name, Fig: figs[name], Results: toPoints(results)})
	}
	if *jsonOut != "" {
		if err := writeMicroJSON(*jsonOut, *dur, *reps, doc); err != nil {
			return err
		}
		fmt.Printf("\nwrote %s\n", *jsonOut)
	}
	return nil
}

// microJSON is the machine-readable form of one workload's result series,
// for regression baselines (BENCH_*.json).
type microJSON struct {
	Bench   string      `json:"bench"`
	Fig     string      `json:"fig"`
	Results []pointJSON `json:"results"`
}

type pointJSON struct {
	FS        string  `json:"fs"`
	Threads   int     `json:"threads"`
	Ops       uint64  `json:"ops"`
	Bytes     uint64  `json:"bytes,omitempty"`
	ElapsedNs int64   `json:"elapsed_ns"`
	OpsPerSec float64 `json:"ops_per_sec"`
	MBPerSec  float64 `json:"mb_per_sec,omitempty"`
}

func toPoints(results []bench.Result) []pointJSON {
	out := make([]pointJSON, 0, len(results))
	for _, r := range results {
		out = append(out, pointJSON{
			FS: r.FS, Threads: r.Threads, Ops: r.Ops, Bytes: r.Bytes,
			ElapsedNs: r.Elapsed.Nanoseconds(),
			OpsPerSec: r.OpsPerSec(), MBPerSec: r.MBPerSec(),
		})
	}
	return out
}

func writeMicroJSON(path string, dur time.Duration, reps int, doc []microJSON) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	err = enc.Encode(struct {
		Suite      string      `json:"suite"`
		DurationMs int64       `json:"duration_ms"`
		Reps       int         `json:"reps"`
		Benches    []microJSON `json:"benches"`
	}{Suite: "micro", DurationMs: dur.Milliseconds(), Reps: reps, Benches: doc})
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// runFig6 compares the original (cache-hot) FxMark read with the adapted
// (random-offset) variant and the raw device bandwidth.
func runFig6(args []string) error {
	fs := flag.NewFlagSet("fig6", flag.ExitOnError)
	threads := fs.String("threads", "", "thread counts")
	dur := fs.Duration("duration", 500*time.Millisecond, "per point")
	fs.Parse(args)
	ths := parseThreads(*threads)
	ws := fxmark.All()
	var results []bench.Result
	for _, variant := range []struct{ wl, label string }{
		{"read-shared-cachehot", "original-fxmark"},
		{"read-shared", "adapted-fxmark"},
	} {
		for _, fsName := range []string{"simurgh", "nova"} {
			for _, t := range ths {
				r, err := bench.RunPoint(ws[variant.wl], fsName, 512<<20, t, *dur)
				if err != nil {
					return err
				}
				r.FS = fsName + "/" + variant.label
				results = append(results, r)
			}
		}
	}
	for _, t := range ths {
		results = append(results, bench.RawReadBandwidth(1<<30, t, *dur))
	}
	bench.PrintSeries(os.Stdout, "Fig 6: FxMark DRBL original vs adapted (MiB/s)", results, true)
	return nil
}

func runFilebench(args []string) error {
	fs := flag.NewFlagSet("filebench", flag.ExitOnError)
	files := fs.Int("files", 300, "fileset size (paper: 1k/10k)")
	threads := fs.Int("threads", 8, "worker threads (paper: 16-100)")
	dur := fs.Duration("duration", time.Second, "measured time")
	fsList := fs.String("fs", "all", "file systems")
	fs.Parse(args)

	fmt.Println("## Fig 8: Filebench throughput (flowops/s)")
	fmt.Printf("%-12s", "workload")
	names := parseFS(*fsList)
	for _, n := range names {
		fmt.Printf("%12s", n)
	}
	fmt.Println()
	for _, p := range filebench.Personalities() {
		fmt.Printf("%-12s", p.Name)
		for _, fsName := range names {
			fsi, err := bench.MakeFS(fsName, 1<<30)
			if err != nil {
				return err
			}
			res, err := filebench.Run(fsi, p, filebench.Config{
				Files: *files, Threads: *threads, Duration: *dur,
			})
			if err != nil {
				return err
			}
			fmt.Printf("%12.0f", res.Throughput())
		}
		fmt.Println()
	}
	return nil
}

func runYCSB(args []string) error {
	fs := flag.NewFlagSet("ycsb", flag.ExitOnError)
	records := fs.Int("records", 5000, "rows loaded")
	ops := fs.Int("ops", 10000, "run-phase operations")
	threads := fs.Int("threads", 2, "client threads")
	fsList := fs.String("fs", "all", "file systems")
	fs.Parse(args)

	names := parseFS(*fsList)
	fmt.Println("## Fig 9: YCSB throughput on LevelDB (ops/s; last row normalizes to SplitFS)")
	fmt.Printf("%-10s", "workload")
	for _, n := range names {
		fmt.Printf("%12s", n)
	}
	fmt.Println()
	results := map[string]map[string]ycsb.Result{}
	for _, spec := range ycsb.Workloads {
		fmt.Printf("Run%-7s", spec.Name)
		results[spec.Name] = map[string]ycsb.Result{}
		for _, fsName := range names {
			fsi, err := bench.MakeFS(fsName, 1<<30)
			if err != nil {
				return err
			}
			res, err := ycsb.Run(fsi, spec, ycsb.Config{Records: *records, Ops: *ops, Threads: *threads})
			if err != nil {
				return err
			}
			results[spec.Name][fsName] = res
			fmt.Printf("%12.0f", res.RunThroughput())
		}
		fmt.Println()
	}
	if base, ok := results["A"]["splitfs"]; ok && base.RunThroughput() > 0 {
		fmt.Println("\nnormalized to splitfs:")
		for _, spec := range ycsb.Workloads {
			fmt.Printf("Run%-7s", spec.Name)
			sf := results[spec.Name]["splitfs"].RunThroughput()
			for _, fsName := range names {
				if sf > 0 {
					fmt.Printf("%12.2f", results[spec.Name][fsName].RunThroughput()/sf)
				} else {
					fmt.Printf("%12s", "-")
				}
			}
			fmt.Println()
		}
	}
	return nil
}

// statsFS is the surface breakdown needs from an observable file system:
// snapshotting the per-op counters and forcing full sampling.
type statsFS interface {
	fsapi.StatsProvider
	fsapi.ObsProvider
}

// observe prepares fsi for an attributed phase, returning a closure that
// yields the phase's counter delta — or nil for file systems without
// per-op counters (the kernel baselines).
func observe(fsi fsapi.FileSystem) func() obs.Snapshot {
	sp, ok := fsi.(statsFS)
	if !ok {
		return nil
	}
	sp.Obs().SetSamplePeriod(1) // exact attribution; this is not a speed run
	base := sp.Stats()
	return func() obs.Snapshot { return sp.Stats().Sub(base) }
}

// obsSplit converts a phase's counter delta plus its wall time into the
// paper's application / data copy / file-system split. In-FS time is the
// ops' recorded latency total; copy time is the file-content traffic of
// the read/write classes (metadata traffic stays in the file-system
// share) at the calibrated memcpy bandwidth, capped at the FS total like
// TimedClient.Breakdown.
func obsSplit(d obs.Snapshot, wall time.Duration) (app, copyT, fst time.Duration) {
	fsTotal := time.Duration(d.TotalLatNs())
	var bytes float64
	for _, op := range []obs.Op{obs.OpRead, obs.OpPread} {
		o := d.Ops[op]
		bytes += o.PerCall(o.Pmem.LoadBytes) * float64(o.Calls)
	}
	for _, op := range []obs.Op{obs.OpWrite, obs.OpPwrite} {
		o := d.Ops[op]
		bytes += o.PerCall(o.Pmem.StoreBytes+o.Pmem.NTBytes) * float64(o.Calls)
	}
	copyT = time.Duration(bytes / bench.MemcpyBandwidth() * float64(time.Second))
	if copyT > fsTotal {
		copyT = fsTotal
	}
	fst = fsTotal - copyT
	app = wall - fsTotal
	if app < 0 {
		app = 0
	}
	return app, copyT, fst
}

func runBreakdown(args []string) error {
	fs := flag.NewFlagSet("breakdown", flag.ExitOnError)
	fsName := fs.String("fs", "nova", "file system to break down (Table 1: nova; Fig 10: simurgh)")
	records := fs.Int("records", 5000, "YCSB rows")
	scale := fs.Int("scale", 1, "corpus scale for tar/git rows")
	fs.Parse(args)

	fmt.Printf("## Execution-time breakdown for %s (Table 1 / Fig 10)\n", *fsName)
	fmt.Printf("%-12s %14s %14s %14s\n", "workload", "application", "data copy", "file system")
	row := func(name string, app, cp, fst time.Duration) {
		total := app + cp + fst
		if total <= 0 {
			total = 1
		}
		fmt.Printf("%-12s %13.2f%% %13.2f%% %13.2f%%\n", name,
			100*float64(app)/float64(total), 100*float64(cp)/float64(total),
			100*float64(fst)/float64(total))
	}
	// Observable file systems (simurgh and its variants) get their split
	// from the FS's own per-op counters; kernel baselines keep the
	// stopwatch client. Per-phase deltas accumulate into one op table.
	var opsTotal obs.Snapshot
	haveObs := false

	// YCSB LoadA.
	fsi, err := bench.MakeFS(*fsName, 1<<30)
	if err != nil {
		return err
	}
	done := observe(fsi)
	res, err := ycsb.RunLoadOnly(fsi, ycsb.Config{Records: *records})
	if err != nil {
		return err
	}
	if done != nil {
		d := done()
		app, cp, fst := obsSplit(d, res.LoadTime)
		row("YCSB LoadA", app, cp, fst)
		opsTotal = opsTotal.Add(d)
		haveObs = true
	} else {
		row("YCSB LoadA", res.App, res.Copy, res.FSTime)
	}

	// Tar pack.
	fsi, err = bench.MakeFS(*fsName, 1<<30)
	if err != nil {
		return err
	}
	if _, err := tarbench.Prepare(fsi, corpus.LinuxLike(*scale)); err != nil {
		return err
	}
	c, _ := fsi.Attach(fsapi.Root)
	done = observe(fsi)
	packStart := time.Now()
	if done != nil {
		if _, err := tarbench.PackWithClient(c); err != nil {
			return err
		}
		d := done()
		app, cp, fst := obsSplit(d, time.Since(packStart))
		row("Tar Pack", app, cp, fst)
		opsTotal = opsTotal.Add(d)
	} else {
		tc := bench.NewTimedClient(c)
		if _, err := tarbench.PackWithClient(tc); err != nil {
			return err
		}
		app, cp, fst := tc.Breakdown(time.Since(packStart))
		row("Tar Pack", app, cp, fst)
	}

	// Git commit.
	fsi, err = bench.MakeFS(*fsName, 1<<30)
	if err != nil {
		return err
	}
	c2, _ := fsi.Attach(fsapi.Root)
	if err := c2.Mkdir("/src", 0o755); err != nil {
		return err
	}
	if _, err := corpus.Generate(c2, "/src", corpus.LinuxLike(*scale)); err != nil {
		return err
	}
	repo, err := gitbench.Init(fsi, "/repo", "/src")
	if err != nil {
		return err
	}
	if _, err := repo.Add(); err != nil {
		return err
	}
	done = observe(fsi)
	commitStart := time.Now()
	if done != nil {
		if _, err := repo.WithClient(c2).Commit("bench"); err != nil {
			return err
		}
		d := done()
		app, cp, fst := obsSplit(d, time.Since(commitStart))
		row("Git Commit", app, cp, fst)
		opsTotal = opsTotal.Add(d)
	} else {
		tc2 := bench.NewTimedClient(c2)
		if _, err := repo.WithClient(tc2).Commit("bench"); err != nil {
			return err
		}
		app, cp, fst := tc2.Breakdown(time.Since(commitStart))
		row("Git Commit", app, cp, fst)
	}

	if haveObs {
		fmt.Println("\nper-op attribution across the three workloads (live counters):")
		opsTotal.WriteTable(os.Stdout)
	}
	return nil
}

func runTar(args []string) error {
	fs := flag.NewFlagSet("tar", flag.ExitOnError)
	scale := fs.Int("scale", 2, "corpus scale factor")
	reps := fs.Int("reps", 1, "repetitions (best kept)")
	fsList := fs.String("fs", "all", "file systems")
	fs.Parse(args)
	fmt.Println("## Fig 11: tar throughput (MiB/s)")
	fmt.Printf("%-12s %12s %12s\n", "fs", "pack", "unpack")
	for _, fsName := range parseFS(*fsList) {
		var bestPack, bestUnpack float64
		for r := 0; r < *reps; r++ {
			fsi, err := bench.MakeFS(fsName, 2<<30)
			if err != nil {
				return err
			}
			if _, err := tarbench.Prepare(fsi, corpus.LinuxLike(*scale)); err != nil {
				return err
			}
			runtime.GC()
			pack, err := tarbench.Pack(fsi)
			if err != nil {
				return err
			}
			runtime.GC()
			unpack, err := tarbench.Unpack(fsi)
			if err != nil {
				return err
			}
			if pack.MBPerSec() > bestPack {
				bestPack = pack.MBPerSec()
			}
			if unpack.MBPerSec() > bestUnpack {
				bestUnpack = unpack.MBPerSec()
			}
		}
		fmt.Printf("%-12s %12.1f %12.1f\n", fsName, bestPack, bestUnpack)
	}
	return nil
}

func runGit(args []string) error {
	fs := flag.NewFlagSet("git", flag.ExitOnError)
	scale := fs.Int("scale", 2, "corpus scale factor")
	reps := fs.Int("reps", 1, "repetitions (best kept)")
	fsList := fs.String("fs", "all", "file systems")
	fs.Parse(args)
	fmt.Println("## Fig 12: git throughput (files/s)")
	fmt.Printf("%-12s %12s %12s %12s\n", "fs", "add", "commit", "reset")
	for _, fsName := range parseFS(*fsList) {
		var bestAdd, bestCommit, bestReset float64
		for r := 0; r < *reps; r++ {
			fsi, err := bench.MakeFS(fsName, 2<<30)
			if err != nil {
				return err
			}
			c, _ := fsi.Attach(fsapi.Root)
			if err := c.Mkdir("/src", 0o755); err != nil {
				return err
			}
			if _, err := corpus.Generate(c, "/src", corpus.LinuxLike(*scale)); err != nil {
				return err
			}
			repo, err := gitbench.Init(fsi, "/repo", "/src")
			if err != nil {
				return err
			}
			runtime.GC()
			add, err := repo.Add()
			if err != nil {
				return err
			}
			runtime.GC()
			commit, err := repo.Commit("bench")
			if err != nil {
				return err
			}
			if err := repo.DeleteWorkTree(); err != nil {
				return err
			}
			runtime.GC()
			reset, err := repo.Reset()
			if err != nil {
				return err
			}
			if v := add.FilesPerSec(); v > bestAdd {
				bestAdd = v
			}
			if v := commit.FilesPerSec(); v > bestCommit {
				bestCommit = v
			}
			if v := reset.FilesPerSec(); v > bestReset {
				bestReset = v
			}
		}
		fmt.Printf("%-12s %12.0f %12.0f %12.0f\n", fsName, bestAdd, bestCommit, bestReset)
	}
	return nil
}

func runRecovery(args []string) error {
	fs := flag.NewFlagSet("recovery", flag.ExitOnError)
	trees := fs.Int("trees", 10, "number of source trees (paper: 10)")
	scale := fs.Int("scale", 2, "corpus scale per tree")
	fs.Parse(args)

	dev := pmem.New(4 << 30)
	cfs, err := core.Format(dev, fsapi.Root, core.Options{})
	if err != nil {
		return err
	}
	c, _ := cfs.Attach(fsapi.Root)
	var total corpus.Stats
	for i := 0; i < *trees; i++ {
		root := fmt.Sprintf("/tree%d", i)
		if err := c.Mkdir(root, 0o755); err != nil {
			return err
		}
		st, err := corpus.Generate(c, root, corpus.LinuxLike(*scale))
		if err != nil {
			return err
		}
		total.Dirs += st.Dirs + 1
		total.Files += st.Files
		total.Bytes += st.Bytes
	}
	// Simulate an unclean shutdown: mount again without Unmount.
	_, stats, err := core.Mount(dev, core.Options{})
	if err != nil {
		return err
	}
	fmt.Println("## §5.5 recovery test")
	fmt.Printf("populated: %d files, %d dirs, %.1f MiB\n", total.Files, total.Dirs,
		float64(total.Bytes)/(1<<20))
	fmt.Printf("recovery:  %v (files=%d dirs=%d reclaimed=%d fixed-slots=%d)\n",
		stats.Elapsed, stats.Files, stats.Dirs, stats.Reclaimed, stats.FixedSlots)
	fmt.Printf("rate:      %.0f objects/s\n",
		float64(stats.Files+stats.Dirs)/stats.Elapsed.Seconds())
	return nil
}

// runAblation isolates the protected-function contribution: the same
// Simurgh design charged with the jmpp delta (46 cycles) versus a full
// syscall (400 cycles) per operation. The paper argues the ~330 saved
// cycles halve the latency of very fast operations like resolvepath while
// slower operations gain mostly from the library design itself.
func runAblation(args []string) error {
	fs := flag.NewFlagSet("ablation", flag.ExitOnError)
	threads := fs.String("threads", "1", "thread counts")
	dur := fs.Duration("duration", 2*time.Second, "per point")
	reps := fs.Int("reps", 3, "repetitions per point (best is kept)")
	fs.Parse(args)
	ths := parseThreads(*threads)
	ws := fxmark.All()
	fmt.Println("## Ablation: jmpp vs syscall entry on the same file system design")
	for _, wl := range []string{"resolve-private", "create-shared", "unlink-private"} {
		var results []bench.Result
		for _, fsName := range []string{"simurgh", "simurgh-syscall"} {
			for _, t := range ths {
				var best bench.Result
				for r := 0; r < *reps; r++ {
					res, err := bench.RunPoint(ws[wl], fsName, 512<<20, t, *dur)
					if err != nil {
						return err
					}
					if res.OpsPerSec() > best.OpsPerSec() {
						best = res
					}
				}
				results = append(results, best)
			}
		}
		bench.PrintSeries(os.Stdout, wl, results, false)
	}
	return nil
}

func runAll(args []string) error {
	if err := runISA(); err != nil {
		return err
	}
	if err := runMicro([]string{"-duration", "300ms"}); err != nil {
		return err
	}
	if err := runFig6([]string{"-duration", "300ms"}); err != nil {
		return err
	}
	if err := runFilebench([]string{"-duration", "500ms", "-files", "200", "-threads", "4"}); err != nil {
		return err
	}
	if err := runYCSB([]string{"-records", "3000", "-ops", "6000"}); err != nil {
		return err
	}
	if err := runBreakdown([]string{"-fs", "nova"}); err != nil {
		return err
	}
	if err := runBreakdown([]string{"-fs", "simurgh"}); err != nil {
		return err
	}
	if err := runTar([]string{"-scale", "1"}); err != nil {
		return err
	}
	if err := runGit([]string{"-scale", "1"}); err != nil {
		return err
	}
	return runRecovery([]string{"-trees", "5", "-scale", "1"})
}

// runServe formats a fresh in-memory volume, drives a continuous mixed
// metadata/data workload over it, and exports live metrics over HTTP —
// the target for simurghtop, Prometheus scrapes, and the CI smoke test.
func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:9180", "metrics listen address (host:port, port 0 picks one)")
	size := fs.Uint64("size", 256<<20, "volume size in bytes")
	threads := fs.Int("threads", 2, "workload threads")
	dur := fs.Duration("duration", 0, "how long to serve (0 = until interrupted)")
	traceCap := fs.Int("trace", 4096, "flight-recorder capacity in spans (0 = off)")
	pprofOn := fs.Bool("pprof", false, "also serve net/http/pprof under /debug/pprof/")
	fs.Parse(args)

	reg := obs.NewRegistry()
	reg.SetSamplePeriod(1) // serve is an observability target, not a speed run
	if *traceCap > 0 {
		reg.EnableTrace(*traceCap)
	}
	dev := pmem.New(*size)
	vol, err := core.Format(dev, fsapi.Root, core.Options{Obs: reg})
	if err != nil {
		return err
	}
	srv, err := export.ServeOpts(*addr, vol.Stats, nil, reg, export.Options{Pprof: *pprofOn})
	if err != nil {
		return err
	}
	fmt.Printf("serving metrics on %s  (/metrics /stats.json /trace.json /debug/vars)\n", srv.URL)
	if *pprofOn {
		fmt.Printf("pprof on %s/debug/pprof/\n", srv.URL)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for t := 0; t < *threads; t++ {
		c, aerr := vol.Attach(fsapi.Root)
		if aerr != nil {
			return aerr
		}
		wg.Add(1)
		go func(t int, c fsapi.Client) {
			defer wg.Done()
			churn(c, t, stop)
		}(t, c)
	}
	if *dur > 0 {
		time.Sleep(*dur)
	} else {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt)
		<-sig
		fmt.Println("\nshutting down")
	}
	close(stop)
	wg.Wait()
	srv.Close()
	vol.Unmount()
	return nil
}

// churn runs a steady mixed workload in a private directory: create,
// write, stat, read back, and periodically unlink, so every instrumented
// path (locks, allocator, directory probes) stays warm without filling
// the volume.
func churn(c fsapi.Client, t int, stop <-chan struct{}) {
	dir := fmt.Sprintf("/serve%d", t)
	c.Mkdir(dir, 0o755)
	buf := make([]byte, 4096)
	for i := 0; ; i++ {
		select {
		case <-stop:
			return
		default:
		}
		name := fmt.Sprintf("%s/f%d", dir, i%64)
		fd, err := c.Open(name, fsapi.OCreate|fsapi.OWronly|fsapi.OTrunc, 0o644)
		if err != nil {
			continue
		}
		c.Write(fd, buf)
		c.Close(fd)
		c.Stat(name)
		if fd, err := c.Open(name, fsapi.ORdonly, 0); err == nil {
			c.Read(fd, buf)
			c.Close(fd)
		}
		if i%8 == 7 {
			c.Unlink(name)
		}
	}
}
