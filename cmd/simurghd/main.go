// Command simurghd serves a Simurgh volume to remote clients over the wire
// protocol — the network face of the paper's shared-NVMM volume. Each
// connection is one attached process with its own open-file table; clients
// batch operations AnyCall-style so many small calls share one round trip.
//
//	simurghd                                fresh in-memory volume on :9190
//	simurghd -image vol.img                 open (and on exit save) an image
//	simurghd -metrics 127.0.0.1:9180        also export /metrics and /healthz
//	simurghd -duration 30s                  exit (gracefully) after 30s
//
// Replicated serving: a second daemon started with -join enlists as a
// backup — it receives a snapshot, follows the primary's log, and promotes
// itself when the primary's heartbeats stop. Clients dial the whole group
// ("addr1,addr2") and fail over automatically.
//
//	simurghd -addr :9190                            the primary
//	simurghd -addr :9191 -join 127.0.0.1:9190       a backup
//
// Sharded serving: with -shards or -shard-map the daemon installs a shard
// map and fences operations for shards it does not serve (CodeMoved), so
// sharded clients (client.DialRouter) can spread the namespace across
// several replica groups. Migrations arrive as map pushes (simurghsh
// migrate); a node losing a shard drains its log to the new owners before
// acknowledging the push.
//
//	simurghd -shards 4                              single node, 4 hash shards
//	simurghd -shard-map cluster.json                one group of a multi-group map
//
// SIGINT/SIGTERM drain gracefully: in-flight batches reply, then the
// process exits (saving the image if one was given).
package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"io"
	iofs "io/fs"
	"log"
	"net"
	"os"
	"os/signal"
	"runtime"
	"sync/atomic"
	"syscall"
	"time"

	"simurgh/internal/core"
	"simurgh/internal/export"
	"simurgh/internal/fsapi"
	"simurgh/internal/obs"
	"simurgh/internal/pmem"
	"simurgh/internal/replica"
	"simurgh/internal/server"
	"simurgh/internal/shard"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9190", "listen address for the wire protocol")
	size := flag.Uint64("size", 256<<20, "volume size for fresh volumes")
	image := flag.String("image", "", "volume image to open and save on exit")
	metrics := flag.String("metrics", "", "serve /metrics and /healthz on this host:port")
	pprofOn := flag.Bool("pprof", false, "also serve net/http/pprof under /debug/pprof/ on the -metrics port")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "batch-execution worker pool size")
	maxConns := flag.Int("max-conns", 256, "maximum concurrent client connections")
	deadline := flag.Duration("deadline", 5*time.Second, "queue-admission deadline before a batch is refused as overloaded")
	drain := flag.Duration("drain", 5*time.Second, "graceful-shutdown wait before stragglers are cut")
	duration := flag.Duration("duration", 0, "serve for this long then drain and exit (0 = until signalled)")
	join := flag.String("join", "", "run as a backup of this primary (host:port)")
	advertise := flag.String("advertise", "", "address clients and backups reach this node at (default -addr)")
	quorum := flag.Int("quorum", 1, "backups that must apply a write before the client is acknowledged")
	heartbeat := flag.Duration("heartbeat", 500*time.Millisecond, "primary heartbeat interval")
	failover := flag.Duration("failover", 2*time.Second, "backup promotes itself after this long without primary contact")
	noAutoPromote := flag.Bool("no-auto-promote", false, "backups wait for an explicit promote instead of self-promoting")
	noReplication := flag.Bool("no-replication", false, "serve standalone: no replication layer, no joins accepted")
	shards := flag.Int("shards", 0, `serve a single-node shard map with this many hash shards (1 = one "/" shard)`)
	shardMap := flag.String("shard-map", "", "serve this shard map file (JSON, see internal/shard; overrides -shards)")
	traceCap := flag.Int("trace", 0, "enable the flight recorder with this many span slots (0 = off); dump at /trace.json")
	slowThresh := flag.Duration("slow-threshold", 0, "log operations slower than this to the /slow.json ring (0 = off)")
	flag.Parse()

	if *advertise == "" {
		*advertise = *addr
	}
	if *join != "" && *image != "" {
		fatal(errors.New("-image cannot be combined with -join: a backup's volume arrives with the snapshot"))
	}
	if *join != "" && *noReplication {
		fatal(errors.New("-join requires the replication layer"))
	}

	reg := obs.NewRegistry()
	reg.SetNode(*advertise)
	if *traceCap > 0 {
		reg.EnableTrace(*traceCap)
	}
	if *slowThresh > 0 {
		reg.SetSlowThreshold(*slowThresh, obs.DefaultSlowLogCapacity)
	}

	// curDev/curFS track the live volume: the formatted/opened one on a
	// primary, the latest restored snapshot on a backup. The replication
	// callbacks and the exporter read through them.
	var curDev atomic.Pointer[pmem.Device]
	var curFS atomic.Pointer[core.FS]

	openVolume := func() {
		var dev *pmem.Device
		var fs *core.FS
		if *image != "" {
			f, err := os.Open(*image)
			if err != nil {
				// Formatting fresh is only right when there is no image yet;
				// an unreadable existing image must not be overwritten with
				// an empty volume at exit.
				if !errors.Is(err, iofs.ErrNotExist) {
					fatal(err)
				}
			} else {
				d, err := pmem.ReadImage(f)
				f.Close()
				if err != nil {
					fatal(err)
				}
				mounted, stats, err := core.Mount(d, core.Options{Obs: reg})
				if err != nil {
					fatal(err)
				}
				if !stats.WasClean {
					log.Printf("recovered unclean volume in %v (%d repairs)",
						stats.Elapsed, stats.FixedSlots+stats.FixedCreates+stats.FixedRenames+stats.FixedLogs)
				}
				dev, fs = d, mounted
			}
		}
		if fs == nil {
			dev = pmem.New(*size)
			formatted, err := core.Format(dev, fsapi.Root, core.Options{Obs: reg})
			if err != nil {
				fatal(err)
			}
			fs = formatted
		}
		curDev.Store(dev)
		curFS.Store(fs)
	}

	repCfg := replica.Config{
		Obs:               reg,
		Advertise:         *advertise,
		Quorum:            *quorum,
		PrimaryAddr:       *join,
		HeartbeatInterval: *heartbeat,
		FailoverGrace:     *failover,
		AutoPromote:       !*noAutoPromote,
		Logf:              log.Printf,
		Snapshot: func(w io.Writer) error {
			_, err := curDev.Load().WriteTo(w)
			return err
		},
		Restore: func(img []byte) (fsapi.FileSystem, error) {
			d, err := pmem.ReadImage(bytes.NewReader(img))
			if err != nil {
				return nil, err
			}
			fs, _, err := core.Mount(d, core.Options{Obs: reg})
			if err != nil {
				return nil, err
			}
			if old := curFS.Load(); old != nil {
				old.Unmount()
			}
			curDev.Store(d)
			curFS.Store(fs)
			return fs, nil
		},
	}

	var node *replica.Node
	scfg := server.Config{
		Workers:        *workers,
		MaxConns:       *maxConns,
		RequestTimeout: *deadline,
		DrainTimeout:   *drain,
		Logf:           log.Printf,
		Obs:            reg,
	}
	switch {
	case *noReplication:
		openVolume()
		scfg.FS = curFS.Load()
	case *join != "":
		node = replica.NewBackup(repCfg)
		scfg.Replica = node
	default:
		openVolume()
		node = replica.NewPrimary(curFS.Load(), repCfg)
		scfg.FS = curFS.Load()
		scfg.Replica = node
	}

	var auth *shard.Authority
	if *shardMap != "" || *shards > 0 {
		var smap *shard.Map
		if *shardMap != "" {
			b, err := os.ReadFile(*shardMap)
			if err != nil {
				fatal(err)
			}
			if smap, err = shard.ParseJSON(b); err != nil {
				fatal(err)
			}
		} else {
			smap = shard.SingleNode(*advertise, *shards)
		}
		var onRetire func([]uint32, *shard.Map) error
		if node != nil {
			n := node
			onRetire = func(lost []uint32, next *shard.Map) error {
				seen := make(map[string]bool)
				var addrs []string
				for _, id := range lost {
					if sh := next.ByID(id); sh != nil {
						for _, a := range sh.Addrs {
							if !seen[a] {
								seen[a] = true
								addrs = append(addrs, a)
							}
						}
					}
				}
				log.Printf("shard map: retiring shards %v, draining log to %v", lost, addrs)
				return n.MigrationDrain(addrs, 30*time.Second)
			}
		}
		a, err := shard.NewAuthority(smap, *advertise, onRetire)
		if err != nil {
			fatal(err)
		}
		auth = a
		scfg.Sharding = auth
		if node != nil {
			node.SetClusterExtra(auth.WriteClusterRows)
		}
		log.Printf("sharded: %d shards at epoch %d (self %s)", len(smap.Shards), smap.Epoch, *advertise)
	}

	srv, err := server.New(scfg)
	if err != nil {
		fatal(err)
	}

	if *metrics != "" {
		src := func() obs.Snapshot {
			if fs := curFS.Load(); fs != nil {
				return fs.Stats()
			}
			return obs.Snapshot{}
		}
		health := func() string {
			if srv.Draining() {
				return "draining"
			}
			if node != nil {
				return node.Health()
			}
			return "serving"
		}
		extras := []export.Extra{srv.WriteMetrics}
		if auth != nil {
			extras = append(extras, auth.WriteMetrics)
		}
		eopts := export.Options{Pprof: *pprofOn}
		if node != nil {
			extras = append(extras, node.WriteMetrics)
			eopts.Cluster = node.WriteClusterJSON
			eopts.HealthDetail = func(w io.Writer) {
				fmt.Fprintf(w, "epoch %d\n", node.Epoch())
				fmt.Fprintf(w, "commit_floor %d\n", node.CommitFloor())
			}
		}
		msrv, err := export.ServeOpts(*metrics, src, health, reg, eopts, extras...)
		if err != nil {
			fatal(err)
		}
		defer msrv.Close()
		log.Printf("metrics on %s/metrics, health on %s/healthz", msrv.URL, msrv.URL)
		if *pprofOn {
			log.Printf("pprof on %s/debug/pprof/", msrv.URL)
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	switch {
	case *join != "":
		log.Printf("backup of %s on %s (promotes after %v silence)", *join, ln.Addr(), *failover)
	case node != nil:
		log.Printf("serving %s on %s as primary (%d workers, quorum %d)",
			curFS.Load().Name(), ln.Addr(), *workers, *quorum)
	default:
		log.Printf("serving %s on %s (%d workers, %d conns max)",
			curFS.Load().Name(), ln.Addr(), *workers, *maxConns)
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	var timerC <-chan time.Time
	if *duration > 0 {
		timerC = time.After(*duration)
	}
	drained := make(chan struct{})
	go func() {
		select {
		case sig := <-sigc:
			log.Printf("%v: draining (%v grace)", sig, *drain)
		case <-timerC:
			log.Printf("duration elapsed: draining (%v grace)", *drain)
		}
		srv.Shutdown()
		close(drained)
	}()

	if err := srv.Serve(ln); err != nil {
		fatal(err)
	}
	<-drained
	if node != nil {
		node.Close()
	}

	if fs := curFS.Load(); fs != nil {
		fs.Unmount()
	}
	if *image != "" {
		f, err := os.Create(*image)
		if err != nil {
			fatal(err)
		}
		if _, err := curDev.Load().WriteTo(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		log.Printf("saved volume to %s", *image)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "simurghd:", err)
	os.Exit(1)
}
