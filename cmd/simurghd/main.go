// Command simurghd serves a Simurgh volume to remote clients over the wire
// protocol — the network face of the paper's shared-NVMM volume. Each
// connection is one attached process with its own open-file table; clients
// batch operations AnyCall-style so many small calls share one round trip.
//
//	simurghd                                fresh in-memory volume on :9190
//	simurghd -image vol.img                 open (and on exit save) an image
//	simurghd -metrics 127.0.0.1:9180        also export /metrics over HTTP
//	simurghd -duration 30s                  exit (gracefully) after 30s
//
// SIGINT/SIGTERM drain gracefully: in-flight batches reply, then the
// process exits (saving the image if one was given).
package main

import (
	"errors"
	"flag"
	"fmt"
	iofs "io/fs"
	"log"
	"net"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"simurgh/internal/core"
	"simurgh/internal/export"
	"simurgh/internal/fsapi"
	"simurgh/internal/obs"
	"simurgh/internal/pmem"
	"simurgh/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9190", "listen address for the wire protocol")
	size := flag.Uint64("size", 256<<20, "volume size for fresh volumes")
	image := flag.String("image", "", "volume image to open and save on exit")
	metrics := flag.String("metrics", "", "serve /metrics (volume + server series) on this host:port")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "batch-execution worker pool size")
	maxConns := flag.Int("max-conns", 256, "maximum concurrent client connections")
	deadline := flag.Duration("deadline", 5*time.Second, "queue-admission deadline before a batch is refused as overloaded")
	drain := flag.Duration("drain", 5*time.Second, "graceful-shutdown wait before stragglers are cut")
	duration := flag.Duration("duration", 0, "serve for this long then drain and exit (0 = until signalled)")
	flag.Parse()

	reg := obs.NewRegistry()

	var dev *pmem.Device
	var fs *core.FS
	if *image != "" {
		f, err := os.Open(*image)
		if err != nil {
			// Formatting fresh is only right when there is no image yet; an
			// unreadable existing image must not be overwritten with an
			// empty volume at exit.
			if !errors.Is(err, iofs.ErrNotExist) {
				fatal(err)
			}
		} else {
			d, err := pmem.ReadImage(f)
			f.Close()
			if err != nil {
				fatal(err)
			}
			mounted, stats, err := core.Mount(d, core.Options{Obs: reg})
			if err != nil {
				fatal(err)
			}
			if !stats.WasClean {
				log.Printf("recovered unclean volume in %v (%d repairs)",
					stats.Elapsed, stats.FixedSlots+stats.FixedCreates+stats.FixedRenames+stats.FixedLogs)
			}
			dev, fs = d, mounted
		}
	}
	if fs == nil {
		dev = pmem.New(*size)
		formatted, err := core.Format(dev, fsapi.Root, core.Options{Obs: reg})
		if err != nil {
			fatal(err)
		}
		fs = formatted
	}

	srv, err := server.New(server.Config{
		FS:             fs,
		Workers:        *workers,
		MaxConns:       *maxConns,
		RequestTimeout: *deadline,
		DrainTimeout:   *drain,
		Logf:           log.Printf,
	})
	if err != nil {
		fatal(err)
	}

	if *metrics != "" {
		msrv, err := export.Serve(*metrics, fs.Stats, reg, srv.WriteMetrics)
		if err != nil {
			fatal(err)
		}
		defer msrv.Close()
		log.Printf("metrics on %s/metrics", msrv.URL)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	log.Printf("serving %s on %s (%d workers, %d conns max)",
		fs.Name(), ln.Addr(), *workers, *maxConns)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	var timerC <-chan time.Time
	if *duration > 0 {
		timerC = time.After(*duration)
	}
	drained := make(chan struct{})
	go func() {
		select {
		case sig := <-sigc:
			log.Printf("%v: draining (%v grace)", sig, *drain)
		case <-timerC:
			log.Printf("duration elapsed: draining (%v grace)", *drain)
		}
		srv.Shutdown()
		close(drained)
	}()

	if err := srv.Serve(ln); err != nil {
		fatal(err)
	}
	<-drained

	fs.Unmount()
	if *image != "" {
		f, err := os.Create(*image)
		if err != nil {
			fatal(err)
		}
		if _, err := dev.WriteTo(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		log.Printf("saved volume to %s", *image)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "simurghd:", err)
	os.Exit(1)
}
