package obs

import (
	"math"
	"math/bits"
)

// NumBuckets is the fixed size of the per-op latency histogram. Buckets are
// power-of-two nanosecond ranges: bucket 0 holds latencies below 128 ns,
// bucket i (i>0) holds [64<<(i-1), 64<<i) ns, and the last bucket absorbs
// everything from ~16.8 ms up. Fixed buckets keep recording a single atomic
// add and make histograms diffable field-by-field.
const NumBuckets = 20

// bucketOf maps a latency in nanoseconds to its histogram bucket.
func bucketOf(ns uint64) int {
	b := bits.Len64(ns >> 6)
	if b >= NumBuckets {
		return NumBuckets - 1
	}
	return b
}

// BucketOf maps a latency in nanoseconds to its histogram bucket index.
// Exported for sinks outside this package (the network server's request
// histograms) that share the bucket layout so their series diff and render
// with the same tools.
func BucketOf(ns uint64) int { return bucketOf(ns) }

// BucketUpperNs returns the exclusive upper bound of bucket i in
// nanoseconds (the last bucket reports its lower bound: it is unbounded).
func BucketUpperNs(i int) uint64 {
	if i >= NumBuckets-1 {
		return 64 << (NumBuckets - 2)
	}
	return 64 << i
}

// BucketLowerNs returns the inclusive lower bound of bucket i in
// nanoseconds.
func BucketLowerNs(i int) uint64 {
	if i <= 0 {
		return 0
	}
	if i >= NumBuckets-1 {
		return 64 << (NumBuckets - 2)
	}
	return 64 << (i - 1)
}

// Histogram is a diffed, plain-value latency histogram (counts per bucket).
type Histogram [NumBuckets]uint64

// Observe records one latency sample of ns nanoseconds. Not safe for
// concurrent use — single-goroutine accumulators (bench harnesses) only;
// concurrent recording goes through a Registry.
func (h *Histogram) Observe(ns uint64) { h[bucketOf(ns)]++ }

// Count returns the total number of recorded samples.
func (h Histogram) Count() uint64 {
	var n uint64
	for _, c := range h {
		n += c
	}
	return n
}

// Quantile returns an upper-bound estimate of the q-quantile (0 < q <= 1)
// in nanoseconds: the upper bound of the bucket where the cumulative count
// crosses q. Returns 0 for an empty histogram.
func (h Histogram) Quantile(q float64) uint64 {
	total := h.Count()
	if total == 0 {
		return 0
	}
	want := uint64(math.Ceil(q * float64(total)))
	if want < 1 {
		want = 1
	}
	if want > total {
		want = total
	}
	var cum uint64
	for i, c := range h {
		cum += c
		if cum >= want {
			return BucketUpperNs(i)
		}
	}
	return BucketUpperNs(NumBuckets - 1)
}

// Percentile returns an interpolated estimate of the q-quantile (0 < q <=
// 1) in nanoseconds. Where Quantile reports the crossing bucket's upper
// bound (a safe but coarse overestimate — power-of-two buckets make it up
// to 2x high), Percentile interpolates linearly within the crossing
// bucket, treating the bucket's k-th sample as sitting at the center of
// its 1/count slice; a single-sample bucket therefore estimates its
// midpoint. The last bucket is unbounded and reports its lower bound.
// Returns 0 for an empty histogram.
func (h Histogram) Percentile(q float64) uint64 {
	total := h.Count()
	if total == 0 {
		return 0
	}
	want := uint64(math.Ceil(q * float64(total)))
	if want < 1 {
		want = 1
	}
	if want > total {
		want = total
	}
	var cum uint64
	for i, c := range h {
		if c == 0 {
			continue
		}
		cum += c
		if cum < want {
			continue
		}
		lo := BucketLowerNs(i)
		hi := BucketUpperNs(i)
		if hi <= lo { // unbounded tail bucket
			return lo
		}
		rank := want - (cum - c) // 1-based rank within this bucket
		frac := (float64(rank) - 0.5) / float64(c)
		return lo + uint64(frac*float64(hi-lo))
	}
	return BucketLowerNs(NumBuckets - 1)
}

// Add returns the bucket-wise sum h+b.
func (h Histogram) Add(b Histogram) Histogram {
	var out Histogram
	for i := range h {
		out[i] = h[i] + b[i]
	}
	return out
}

// Sub returns the bucket-wise difference h-b.
func (h Histogram) Sub(b Histogram) Histogram {
	var out Histogram
	for i := range h {
		out[i] = h[i] - b[i]
	}
	return out
}
