package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestBucketBoundaries(t *testing.T) {
	cases := []struct {
		ns   uint64
		want int
	}{
		{0, 0}, {63, 0}, {64, 1}, {127, 1}, {128, 2}, {255, 2}, {256, 3},
		{64 << 10, 11}, {1 << 62, NumBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketOf(c.ns); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.ns, got, c.want)
		}
	}
	// Every bucket's upper bound must land in the next bucket (except the
	// open-ended last one).
	for i := 0; i < NumBuckets-2; i++ {
		if got := bucketOf(BucketUpperNs(i)); got != i+1 {
			t.Errorf("bucketOf(upper(%d)) = %d, want %d", i, got, i+1)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile should be 0")
	}
	// 90 fast samples, 10 slow ones.
	for i := 0; i < 90; i++ {
		h[bucketOf(100)]++
	}
	for i := 0; i < 10; i++ {
		h[bucketOf(1<<20)]++
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if p50 := h.Quantile(0.5); p50 != BucketUpperNs(bucketOf(100)) {
		t.Errorf("p50 = %d, want fast bucket bound %d", p50, BucketUpperNs(bucketOf(100)))
	}
	if p99 := h.Quantile(0.99); p99 != BucketUpperNs(bucketOf(1<<20)) {
		t.Errorf("p99 = %d, want slow bucket bound %d", p99, BucketUpperNs(bucketOf(1<<20)))
	}
}

func TestRegistryRecordAndSnapshot(t *testing.T) {
	r := NewRegistry()
	r.SetSamplePeriod(1)
	for i := 0; i < 10; i++ {
		if !r.Enter(OpCreate) {
			t.Fatal("period 1 must deep-sample every call")
		}
		r.Sample(OpCreate, time.Now(), 1000, Delta{Fences: 2, Flushes: 3, NTBytes: 64}, false)
	}
	r.Enter(OpUnlink)
	r.Error(OpUnlink)
	s := r.Snapshot()
	c := s.Ops[OpCreate]
	if c.Calls != 10 || c.Sampled != 10 || c.Errors != 0 {
		t.Fatalf("create stats = %+v", c)
	}
	if c.Pmem.Fences != 20 || c.Pmem.Flushes != 30 || c.Pmem.NTBytes != 640 {
		t.Fatalf("create pmem = %+v", c.Pmem)
	}
	if c.MeanNs() != 1000 {
		t.Fatalf("mean = %d", c.MeanNs())
	}
	if got := c.PerCall(c.Pmem.Fences); got != 2 {
		t.Fatalf("fences/op = %v", got)
	}
	u := s.Ops[OpUnlink]
	if u.Calls != 1 || u.Errors != 1 {
		t.Fatalf("unlink stats = %+v", u)
	}
}

func TestSnapshotDiff(t *testing.T) {
	r := NewRegistry()
	r.SetSamplePeriod(1)
	r.Enter(OpWrite)
	r.Sample(OpWrite, time.Now(), 500, Delta{Fences: 1}, false)
	base := r.Snapshot()
	base.Shards = []ShardStat{{Name: "locks", Gets: 5, Contended: 1}}
	base.Device = Delta{Fences: 7}

	r.Enter(OpWrite)
	r.Sample(OpWrite, time.Now(), 700, Delta{Fences: 3}, false)
	cur := r.Snapshot()
	cur.Shards = []ShardStat{{Name: "locks", Gets: 9, Contended: 2}}
	cur.Device = Delta{Fences: 11}

	d := cur.Sub(base)
	w := d.Ops[OpWrite]
	if w.Calls != 1 || w.LatNs != 700 || w.Pmem.Fences != 3 {
		t.Fatalf("diffed write stats = %+v", w)
	}
	if d.Ops[OpRead].Calls != 0 {
		t.Fatal("untouched op should diff to zero")
	}
	if len(d.Shards) != 1 || d.Shards[0].Gets != 4 || d.Shards[0].Contended != 1 {
		t.Fatalf("diffed shards = %+v", d.Shards)
	}
	if d.Device.Fences != 4 {
		t.Fatalf("diffed device = %+v", d.Device)
	}
}

func TestSamplePeriodCountsStayExact(t *testing.T) {
	r := NewRegistry()
	r.SetSamplePeriod(32)
	const calls = 1000
	sampled := 0
	for i := 0; i < calls; i++ {
		if r.Enter(OpStat) {
			sampled++
			r.Sample(OpStat, time.Now(), 100, Delta{}, false)
		}
	}
	s := r.Snapshot()
	if s.Ops[OpStat].Calls != calls {
		t.Fatalf("calls = %d, want %d (exact regardless of sampling)", s.Ops[OpStat].Calls, calls)
	}
	if s.Ops[OpStat].Sampled != uint64(sampled) {
		t.Fatalf("sampled = %d, want %d", s.Ops[OpStat].Sampled, sampled)
	}
	if sampled == 0 || sampled == calls {
		t.Fatalf("sampling picked %d of %d; expected a strict subset", sampled, calls)
	}
	// Extrapolation scales the sampled latency back to all calls.
	if est := s.Ops[OpStat].EstTotalLatNs(); est != 100*calls {
		t.Fatalf("extrapolated latency = %d, want %d", est, 100*calls)
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := NewRegistry()
	r.SetSamplePeriod(1)
	r.EnableTrace(64)
	const goroutines, per = 8, 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				op := Op(i % int(NumOps))
				if r.Enter(op) {
					r.Sample(op, time.Now(), uint64(i), Delta{Fences: 1}, i%7 == 0)
				}
				if i%13 == 0 {
					r.Error(op)
				}
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	var calls, fences uint64
	for op := Op(0); op < NumOps; op++ {
		calls += s.Ops[op].Calls
		fences += s.Ops[op].Pmem.Fences
	}
	if calls != goroutines*per {
		t.Fatalf("total calls = %d, want %d", calls, goroutines*per)
	}
	if fences != goroutines*per {
		t.Fatalf("total fences = %d, want %d", fences, goroutines*per)
	}
}

func TestTraceRingWraps(t *testing.T) {
	r := NewRegistry()
	r.SetSamplePeriod(1)
	r.EnableTrace(4)
	for i := 0; i < 10; i++ {
		r.Sample(OpRead, time.Now(), uint64(i), Delta{}, false)
	}
	ev := r.Trace()
	if len(ev) != 4 {
		t.Fatalf("trace len = %d, want 4", len(ev))
	}
	for i, e := range ev {
		if e.LatNs != uint64(6+i) {
			t.Fatalf("trace[%d].LatNs = %d, want %d (newest 4, oldest first)", i, e.LatNs, 6+i)
		}
	}
	r.EnableTrace(0)
	r.Sample(OpRead, time.Now(), 1, Delta{}, false)
	if r.Trace() != nil {
		t.Fatal("disabled trace must drop events")
	}
}

func TestNilRegistryIsSafe(t *testing.T) {
	var r *Registry
	if r.Enter(OpOpen) {
		t.Fatal("nil registry must not sample")
	}
	r.Error(OpOpen)
	r.Sample(OpOpen, time.Now(), 1, Delta{}, false)
	r.SetSamplePeriod(1)
	r.EnableTrace(4)
	if s := r.Snapshot(); s.TotalCalls() != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
}

func TestWriteTableAndPhases(t *testing.T) {
	r := NewRegistry()
	r.SetSamplePeriod(1)
	r.Enter(OpMkdir)
	r.Sample(OpMkdir, time.Now(), 1500, Delta{Fences: 4, Flushes: 6, NTBytes: 4096}, false)
	s := r.Snapshot()
	s.Shards = []ShardStat{{Name: "locks", Gets: 10, Contended: 3}}
	s.Device = Delta{Fences: 4}
	var sb strings.Builder
	s.WriteTable(&sb)
	out := sb.String()
	for _, want := range []string{"mkdir", "fence/op", "locks=3/10", "device: "} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "unlink") {
		t.Errorf("table should omit zero-call ops:\n%s", out)
	}

	sb.Reset()
	WritePhases(&sb, []Phase{
		{Name: "recover", Elapsed: time.Millisecond,
			Counters: []Counter{{Name: "files", Value: 12}, {Name: "fixes", Value: 0}},
			Pmem:     Delta{Fences: 2}},
	})
	out = sb.String()
	if !strings.Contains(out, "recover") || !strings.Contains(out, "files=12") {
		t.Errorf("phase report malformed:\n%s", out)
	}
	if strings.Contains(out, "fixes=0") {
		t.Errorf("phase report should omit zero counters:\n%s", out)
	}
}
