package obs

import (
	"testing"
	"time"
)

func BenchmarkEnter(b *testing.B) {
	r := NewRegistry()
	for i := 0; i < b.N; i++ {
		if r.Enter(OpStat) {
			r.Sample(OpStat, time.Time{}, 100, Delta{}, false)
		}
	}
}
