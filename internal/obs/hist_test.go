package obs

import "testing"

func TestBucketLowerNs(t *testing.T) {
	cases := []struct {
		i    int
		want uint64
	}{
		{0, 0}, {1, 64}, {2, 128}, {3, 256},
		{NumBuckets - 1, 64 << (NumBuckets - 2)},
	}
	for _, c := range cases {
		if got := BucketLowerNs(c.i); got != c.want {
			t.Errorf("BucketLowerNs(%d) = %d, want %d", c.i, got, c.want)
		}
	}
	for i := 1; i < NumBuckets; i++ {
		if BucketLowerNs(i) != BucketUpperNs(i-1) {
			t.Errorf("bucket %d lower %d != bucket %d upper %d",
				i, BucketLowerNs(i), i-1, BucketUpperNs(i-1))
		}
	}
}

func TestPercentileEmpty(t *testing.T) {
	var h Histogram
	if got := h.Percentile(0.99); got != 0 {
		t.Fatalf("empty histogram percentile = %d, want 0", got)
	}
}

func TestPercentileSingleSampleIsMidpoint(t *testing.T) {
	var h Histogram
	h[3] = 1 // bucket 3 covers [256, 512)
	want := uint64(384)
	for _, q := range []float64{0.01, 0.5, 0.99, 1} {
		if got := h.Percentile(q); got != want {
			t.Errorf("Percentile(%v) = %d, want midpoint %d", q, got, want)
		}
	}
}

func TestPercentileInterpolatesWithinBucket(t *testing.T) {
	var h Histogram
	h[1] = 100 // bucket 1 covers [64, 128)
	// rank 50 of 100 sits at 64 + (50-0.5)/100*64 = 95.68 -> 95.
	if got := h.Percentile(0.50); got != 95 {
		t.Errorf("p50 = %d, want 95", got)
	}
	if got := h.Percentile(0.01); got < 64 || got >= 66 {
		t.Errorf("p1 = %d, want near lower bound 64", got)
	}
	if got := h.Percentile(1); got < 126 || got >= 128 {
		t.Errorf("p100 = %d, want near upper bound 128", got)
	}
}

func TestPercentileMonotonicAndBelowQuantile(t *testing.T) {
	var h Histogram
	h[1], h[4], h[8], h[12] = 500, 300, 150, 50
	p50 := h.Percentile(0.50)
	p95 := h.Percentile(0.95)
	p99 := h.Percentile(0.99)
	if !(p50 <= p95 && p95 <= p99) {
		t.Fatalf("percentiles not monotonic: p50=%d p95=%d p99=%d", p50, p95, p99)
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		if h.Percentile(q) > h.Quantile(q) {
			t.Errorf("Percentile(%v)=%d exceeds bucket upper bound Quantile=%d",
				q, h.Percentile(q), h.Quantile(q))
		}
	}
}

func TestPercentileTailBucket(t *testing.T) {
	var h Histogram
	h[NumBuckets-1] = 10
	want := BucketLowerNs(NumBuckets - 1)
	if got := h.Percentile(0.99); got != want {
		t.Fatalf("tail-bucket percentile = %d, want lower bound %d", got, want)
	}
}
