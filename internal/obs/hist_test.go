package obs

import "testing"

func TestBucketLowerNs(t *testing.T) {
	cases := []struct {
		i    int
		want uint64
	}{
		{0, 0}, {1, 64}, {2, 128}, {3, 256},
		{NumBuckets - 1, 64 << (NumBuckets - 2)},
	}
	for _, c := range cases {
		if got := BucketLowerNs(c.i); got != c.want {
			t.Errorf("BucketLowerNs(%d) = %d, want %d", c.i, got, c.want)
		}
	}
	for i := 1; i < NumBuckets; i++ {
		if BucketLowerNs(i) != BucketUpperNs(i-1) {
			t.Errorf("bucket %d lower %d != bucket %d upper %d",
				i, BucketLowerNs(i), i-1, BucketUpperNs(i-1))
		}
	}
}

func TestPercentileEmpty(t *testing.T) {
	var h Histogram
	if got := h.Percentile(0.99); got != 0 {
		t.Fatalf("empty histogram percentile = %d, want 0", got)
	}
}

func TestPercentileSingleSampleIsMidpoint(t *testing.T) {
	var h Histogram
	h[3] = 1 // bucket 3 covers [256, 512)
	want := uint64(384)
	for _, q := range []float64{0.01, 0.5, 0.99, 1} {
		if got := h.Percentile(q); got != want {
			t.Errorf("Percentile(%v) = %d, want midpoint %d", q, got, want)
		}
	}
}

func TestPercentileInterpolatesWithinBucket(t *testing.T) {
	var h Histogram
	h[1] = 100 // bucket 1 covers [64, 128)
	// rank 50 of 100 sits at 64 + (50-0.5)/100*64 = 95.68 -> 95.
	if got := h.Percentile(0.50); got != 95 {
		t.Errorf("p50 = %d, want 95", got)
	}
	if got := h.Percentile(0.01); got < 64 || got >= 66 {
		t.Errorf("p1 = %d, want near lower bound 64", got)
	}
	if got := h.Percentile(1); got < 126 || got >= 128 {
		t.Errorf("p100 = %d, want near upper bound 128", got)
	}
}

func TestPercentileMonotonicAndBelowQuantile(t *testing.T) {
	var h Histogram
	h[1], h[4], h[8], h[12] = 500, 300, 150, 50
	p50 := h.Percentile(0.50)
	p95 := h.Percentile(0.95)
	p99 := h.Percentile(0.99)
	if !(p50 <= p95 && p95 <= p99) {
		t.Fatalf("percentiles not monotonic: p50=%d p95=%d p99=%d", p50, p95, p99)
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		if h.Percentile(q) > h.Quantile(q) {
			t.Errorf("Percentile(%v)=%d exceeds bucket upper bound Quantile=%d",
				q, h.Percentile(q), h.Quantile(q))
		}
	}
}

func TestPercentileTailBucket(t *testing.T) {
	var h Histogram
	h[NumBuckets-1] = 10
	want := BucketLowerNs(NumBuckets - 1)
	if got := h.Percentile(0.99); got != want {
		t.Fatalf("tail-bucket percentile = %d, want lower bound %d", got, want)
	}
}

func TestPercentileP100LandsInLastOccupiedBucket(t *testing.T) {
	var h Histogram
	h[2], h[6] = 99, 1 // bucket 6 covers [2048, 4096)
	got := h.Percentile(1)
	if got < BucketLowerNs(6) || got >= BucketUpperNs(6) {
		t.Fatalf("p100 = %d, want inside [%d, %d)", got, BucketLowerNs(6), BucketUpperNs(6))
	}
	// The single sample in the crossing bucket estimates its midpoint.
	if want := uint64(3072); got != want {
		t.Fatalf("p100 = %d, want midpoint %d", got, want)
	}
}

func TestPercentileQuantileClamping(t *testing.T) {
	var h Histogram
	h[1] = 4
	// q beyond 1 clamps to the last sample; a vanishing q clamps to the
	// first. Neither may walk off the histogram.
	if lo, hi := h.Percentile(1e-9), h.Percentile(2.5); lo < 64 || hi >= 128 || lo > hi {
		t.Fatalf("clamped percentiles out of bucket: q->0 -> %d, q>1 -> %d", lo, hi)
	}
	if got := h.Quantile(2.5); got != BucketUpperNs(1) {
		t.Fatalf("Quantile(2.5) = %d, want bucket upper %d", got, BucketUpperNs(1))
	}
	if got := h.Quantile(0.99); got != BucketUpperNs(1) {
		t.Fatalf("single-bucket Quantile = %d, want %d", got, BucketUpperNs(1))
	}
}
