package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// SpanKind tags a trace event with the phase of work it covers. Whole
// operations are SpanOp; the other kinds are sub-operation phases recorded
// by the subsystems (lock spinning, slow directory probes, recovery work,
// device fences) so a trace shows where inside an operation the time went.
type SpanKind uint8

const (
	// SpanOp is one whole deep-sampled operation.
	SpanOp SpanKind = iota
	// SpanLockWait is a contended wait for a busy-flag line or file lock.
	SpanLockWait
	// SpanDirProbe is a slow-path directory probe or index build.
	SpanDirProbe
	// SpanRecovery is waiter- or mount-performed recovery work.
	SpanRecovery
	// SpanPmemFlush is a fence/flush barrier executed by the device.
	SpanPmemFlush
	// SpanClientEnqueue is a traced batch waiting in the client send queue
	// (submit → writer pickup).
	SpanClientEnqueue
	// SpanClientSend is the client writer's vectored flush of a traced batch.
	SpanClientSend
	// SpanClientAwait is the client-side round trip of a traced request
	// (submit → reply delivery).
	SpanClientAwait
	// SpanSrvQueue is a traced batch waiting in the server job queue.
	SpanSrvQueue
	// SpanSrvExec is a traced batch executing on a server worker.
	SpanSrvExec
	// SpanSrvExecFast is a traced all-read batch executing inline on the
	// server read fast path.
	SpanSrvExecFast
	// SpanSrvQuorum is the server blocking until replication reaches quorum
	// for a traced batch's writes.
	SpanSrvQuorum
	// SpanRepCommit is a traced entry waiting in the primary's group-commit
	// buffer (ship enqueue → writer drain).
	SpanRepCommit
	// SpanRepShip is the primary shipper's vectored flush of a traced drain.
	SpanRepShip
	// SpanRepApply is the backup applying a traced Replicate frame.
	SpanRepApply
	// SpanRepAck is the backup acknowledging a traced frame's sequence back
	// to the primary (apply done → ack written).
	SpanRepAck
	// NumSpanKinds bounds the SpanKind enum.
	NumSpanKinds
)

var spanKindNames = [NumSpanKinds]string{
	SpanOp: "op", SpanLockWait: "lock-wait", SpanDirProbe: "dir-probe",
	SpanRecovery: "recovery", SpanPmemFlush: "pmem-flush",
	SpanClientEnqueue: "cli-enqueue", SpanClientSend: "cli-send",
	SpanClientAwait: "cli-await", SpanSrvQueue: "srv-queue",
	SpanSrvExec: "srv-exec", SpanSrvExecFast: "srv-exec-fast",
	SpanSrvQuorum: "srv-quorum", SpanRepCommit: "rep-commit",
	SpanRepShip: "rep-ship", SpanRepApply: "rep-apply", SpanRepAck: "rep-ack",
}

// String returns the span kind name.
func (k SpanKind) String() string {
	if k < NumSpanKinds {
		return spanKindNames[k]
	}
	return "unknown"
}

// TraceEvent is one phase-tagged span captured by the flight recorder.
// Trace, when nonzero, is the distributed trace ID the span belongs to:
// spans with equal trace IDs across node dumps describe one causal chain
// (one sampled batch crossing client, primary, and backups).
type TraceEvent struct {
	Kind  SpanKind
	Op    Op // the operation class; meaningful for SpanOp spans
	Start time.Time
	LatNs uint64
	Trace uint64
	Err   bool
}

// Name returns the display name of the span: the op name for whole-op
// spans, the phase name otherwise.
func (e TraceEvent) Name() string {
	if e.Kind == SpanOp {
		return e.Op.String()
	}
	return e.Kind.String()
}

// traceRing is a bounded ring buffer of recent spans — the flight recorder.
// Disabled (zero capacity) by default; when enabled, appends take a short
// mutex — tracing is a debugging aid, not a hot-path feature, and op spans
// are already rate-limited by the sample period. The `on` flag mirrors
// "capacity > 0" so the disabled fast path is a single atomic load with no
// lock traffic.
type traceRing struct {
	on   atomic.Bool
	mu   sync.Mutex
	buf  []TraceEvent
	next uint64 // total events recorded; next%len(buf) is the write slot
}

func (t *traceRing) record(kind SpanKind, op Op, trace uint64, start time.Time, latNs uint64, failed bool) {
	if !t.on.Load() {
		return
	}
	t.mu.Lock()
	if len(t.buf) > 0 {
		t.buf[t.next%uint64(len(t.buf))] = TraceEvent{Kind: kind, Op: op, Start: start, LatNs: latNs, Trace: trace, Err: failed}
		t.next++
	}
	t.mu.Unlock()
}

// EnableTrace turns the flight recorder on with the given capacity (0
// disables and drops any captured events).
func (r *Registry) EnableTrace(capacity int) {
	if r == nil {
		return
	}
	r.trace.mu.Lock()
	if capacity <= 0 {
		r.trace.buf = nil
	} else {
		r.trace.buf = make([]TraceEvent, capacity)
	}
	r.trace.next = 0
	r.trace.on.Store(capacity > 0)
	r.trace.mu.Unlock()
}

// TraceEnabled reports whether the flight recorder is currently capturing.
// Instrumentation sites that need extra clock reads to produce a span check
// this first so a disabled recorder costs one atomic load.
func (r *Registry) TraceEnabled() bool {
	if r == nil {
		return false
	}
	return r.trace.on.Load()
}

// Span records a phase-tagged span into the flight recorder. op is ignored
// for non-SpanOp kinds except as trace metadata. Nil-safe and cheap when
// tracing is off.
func (r *Registry) Span(kind SpanKind, op Op, start time.Time, latNs uint64, failed bool) {
	if r == nil {
		return
	}
	r.trace.record(kind, op, 0, start, latNs, failed)
}

// SpanCtx is Span carrying a distributed trace ID: spans recorded with the
// same nonzero trace across processes merge into one causal chain in a
// combined Chrome dump. It also feeds the slow-op log when a threshold is
// armed. Nil-safe and one atomic load when both tracing and the slow log
// are off.
func (r *Registry) SpanCtx(kind SpanKind, op Op, trace uint64, start time.Time, latNs uint64, failed bool) {
	if r == nil {
		return
	}
	r.trace.record(kind, op, trace, start, latNs, failed)
	if t := r.slow.thresholdNs.Load(); t != 0 && latNs >= t {
		r.slow.record(kind, op, trace, start, latNs, failed)
	}
}

// SetNode names this registry's process for multi-node trace merging. The
// name becomes the Chrome-trace process label, and the derived pid keeps
// each node's spans in a distinct process group when dumps are merged.
func (r *Registry) SetNode(name string) {
	if r == nil {
		return
	}
	r.node.Store(name)
}

// Node returns the node name set by SetNode ("" if unset).
func (r *Registry) Node() string {
	if r == nil {
		return ""
	}
	if v, ok := r.node.Load().(string); ok {
		return v
	}
	return ""
}

// nodePid derives a stable small positive Chrome-trace pid from the node
// name (FNV-1a folded), so independently-produced dumps land in distinct
// process groups with high probability. An unnamed node is pid 1.
func nodePid(name string) int {
	if name == "" {
		return 1
	}
	h := uint32(2166136261)
	for i := 0; i < len(name); i++ {
		h ^= uint32(name[i])
		h *= 16777619
	}
	p := int(h%99990) + 10 // avoid colliding with the unnamed pid 1
	return p
}

// Trace returns the captured events, oldest first. At most the ring's
// capacity of most recent events is retained.
func (r *Registry) Trace() []TraceEvent {
	if r == nil {
		return nil
	}
	t := &r.trace
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.buf) == 0 || t.next == 0 {
		return nil
	}
	n := t.next
	capU := uint64(len(t.buf))
	count := n
	if count > capU {
		count = capU
	}
	out := make([]TraceEvent, 0, count)
	for i := n - count; i < n; i++ {
		out = append(out, t.buf[i%capU])
	}
	return out
}

// WriteChromeTrace writes the captured spans as a Chrome trace-event JSON
// array of complete ("X") events with microsecond timestamps, loadable by
// Perfetto (ui.perfetto.dev) or chrome://tracing. Each span kind renders as
// its own thread lane inside this node's process group. Timestamps are
// absolute wall-clock microseconds, so dumps taken from different processes
// share one time axis and can be concatenated by MergeChromeTraces into a
// single cross-node timeline; spans of one distributed trace carry the same
// "trace" arg (hex ID) to link the chain.
func (r *Registry) WriteChromeTrace(w io.Writer) error {
	events := r.Trace()
	node := r.Node()
	pid := nodePid(node)
	bw := bufio.NewWriter(w)
	bw.WriteString("[")
	label := node
	if label == "" {
		label = "simurgh"
	}
	fmt.Fprintf(bw, `{"name":"process_name","ph":"M","pid":%d,"args":{"name":%q}}`, pid, label)
	for _, e := range events {
		bw.WriteString(",\n ")
		ts := float64(e.Start.UnixNano()) / 1e3
		dur := float64(e.LatNs) / 1e3
		// Untraced spans omit the "trace" arg so a hex-ID search in the
		// viewer matches only the distributed chain.
		if e.Trace != 0 {
			fmt.Fprintf(bw, `{"name":%q,"cat":%q,"ph":"X","ts":%.3f,"dur":%.3f,"pid":%d,"tid":%d,"args":{"err":%t,"trace":"%016x"}}`,
				e.Name(), e.Kind.String(), ts, dur, pid, int(e.Kind)+1, e.Err, e.Trace)
		} else {
			fmt.Fprintf(bw, `{"name":%q,"cat":%q,"ph":"X","ts":%.3f,"dur":%.3f,"pid":%d,"tid":%d,"args":{"err":%t}}`,
				e.Name(), e.Kind.String(), ts, dur, pid, int(e.Kind)+1, e.Err)
		}
	}
	bw.WriteString("]\n")
	return bw.Flush()
}

// MergeChromeTraces merges Chrome-trace dumps produced by WriteChromeTrace
// on different nodes into one JSON array. Because dumps carry absolute
// timestamps and node-distinct pids, merging is event concatenation: the
// result renders each node as its own process group on a shared time axis,
// with cross-node spans of one trace ID lining up as a single causal chain.
func MergeChromeTraces(w io.Writer, dumps ...[]byte) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("[")
	first := true
	for _, d := range dumps {
		var events []json.RawMessage
		if err := json.Unmarshal(d, &events); err != nil {
			return fmt.Errorf("obs: merge: bad trace dump: %w", err)
		}
		for _, e := range events {
			if !first {
				bw.WriteString(",\n ")
			}
			first = false
			bw.Write(e)
		}
	}
	bw.WriteString("]\n")
	return bw.Flush()
}
