package obs

import (
	"sync"
	"time"
)

// TraceEvent is one deep-sampled operation captured by the trace ring.
type TraceEvent struct {
	Op    Op
	Start time.Time
	LatNs uint64
	Err   bool
}

// traceRing is a bounded ring buffer of recent deep-sampled operations.
// Disabled (zero capacity) by default; when enabled, appends take a short
// mutex — tracing is a debugging aid, not a hot-path feature, and sampled
// ops are already rate-limited by the sample period.
type traceRing struct {
	mu   sync.Mutex
	buf  []TraceEvent
	next uint64 // total events recorded; next%len(buf) is the write slot
}

func (t *traceRing) record(op Op, start time.Time, latNs uint64, failed bool) {
	t.mu.Lock()
	if len(t.buf) > 0 {
		t.buf[t.next%uint64(len(t.buf))] = TraceEvent{Op: op, Start: start, LatNs: latNs, Err: failed}
		t.next++
	}
	t.mu.Unlock()
}

// EnableTrace turns the trace ring on with the given capacity (0 disables
// and drops any captured events).
func (r *Registry) EnableTrace(capacity int) {
	if r == nil {
		return
	}
	r.trace.mu.Lock()
	if capacity <= 0 {
		r.trace.buf = nil
	} else {
		r.trace.buf = make([]TraceEvent, capacity)
	}
	r.trace.next = 0
	r.trace.mu.Unlock()
}

// Trace returns the captured events, oldest first. At most the ring's
// capacity of most recent events is retained.
func (r *Registry) Trace() []TraceEvent {
	if r == nil {
		return nil
	}
	t := &r.trace
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.buf) == 0 || t.next == 0 {
		return nil
	}
	n := t.next
	capU := uint64(len(t.buf))
	count := n
	if count > capU {
		count = capU
	}
	out := make([]TraceEvent, 0, count)
	for i := n - count; i < n; i++ {
		out = append(out, t.buf[i%capU])
	}
	return out
}
