package obs

import (
	"bufio"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// SpanKind tags a trace event with the phase of work it covers. Whole
// operations are SpanOp; the other kinds are sub-operation phases recorded
// by the subsystems (lock spinning, slow directory probes, recovery work,
// device fences) so a trace shows where inside an operation the time went.
type SpanKind uint8

const (
	// SpanOp is one whole deep-sampled operation.
	SpanOp SpanKind = iota
	// SpanLockWait is a contended wait for a busy-flag line or file lock.
	SpanLockWait
	// SpanDirProbe is a slow-path directory probe or index build.
	SpanDirProbe
	// SpanRecovery is waiter- or mount-performed recovery work.
	SpanRecovery
	// SpanPmemFlush is a fence/flush barrier executed by the device.
	SpanPmemFlush
	// NumSpanKinds bounds the SpanKind enum.
	NumSpanKinds
)

var spanKindNames = [NumSpanKinds]string{
	SpanOp: "op", SpanLockWait: "lock-wait", SpanDirProbe: "dir-probe",
	SpanRecovery: "recovery", SpanPmemFlush: "pmem-flush",
}

// String returns the span kind name.
func (k SpanKind) String() string {
	if k < NumSpanKinds {
		return spanKindNames[k]
	}
	return "unknown"
}

// TraceEvent is one phase-tagged span captured by the flight recorder.
type TraceEvent struct {
	Kind  SpanKind
	Op    Op // the operation class; meaningful for SpanOp spans
	Start time.Time
	LatNs uint64
	Err   bool
}

// Name returns the display name of the span: the op name for whole-op
// spans, the phase name otherwise.
func (e TraceEvent) Name() string {
	if e.Kind == SpanOp {
		return e.Op.String()
	}
	return e.Kind.String()
}

// traceRing is a bounded ring buffer of recent spans — the flight recorder.
// Disabled (zero capacity) by default; when enabled, appends take a short
// mutex — tracing is a debugging aid, not a hot-path feature, and op spans
// are already rate-limited by the sample period. The `on` flag mirrors
// "capacity > 0" so the disabled fast path is a single atomic load with no
// lock traffic.
type traceRing struct {
	on   atomic.Bool
	mu   sync.Mutex
	buf  []TraceEvent
	next uint64 // total events recorded; next%len(buf) is the write slot
}

func (t *traceRing) record(kind SpanKind, op Op, start time.Time, latNs uint64, failed bool) {
	if !t.on.Load() {
		return
	}
	t.mu.Lock()
	if len(t.buf) > 0 {
		t.buf[t.next%uint64(len(t.buf))] = TraceEvent{Kind: kind, Op: op, Start: start, LatNs: latNs, Err: failed}
		t.next++
	}
	t.mu.Unlock()
}

// EnableTrace turns the flight recorder on with the given capacity (0
// disables and drops any captured events).
func (r *Registry) EnableTrace(capacity int) {
	if r == nil {
		return
	}
	r.trace.mu.Lock()
	if capacity <= 0 {
		r.trace.buf = nil
	} else {
		r.trace.buf = make([]TraceEvent, capacity)
	}
	r.trace.next = 0
	r.trace.on.Store(capacity > 0)
	r.trace.mu.Unlock()
}

// TraceEnabled reports whether the flight recorder is currently capturing.
// Instrumentation sites that need extra clock reads to produce a span check
// this first so a disabled recorder costs one atomic load.
func (r *Registry) TraceEnabled() bool {
	if r == nil {
		return false
	}
	return r.trace.on.Load()
}

// Span records a phase-tagged span into the flight recorder. op is ignored
// for non-SpanOp kinds except as trace metadata. Nil-safe and cheap when
// tracing is off.
func (r *Registry) Span(kind SpanKind, op Op, start time.Time, latNs uint64, failed bool) {
	if r == nil {
		return
	}
	r.trace.record(kind, op, start, latNs, failed)
}

// Trace returns the captured events, oldest first. At most the ring's
// capacity of most recent events is retained.
func (r *Registry) Trace() []TraceEvent {
	if r == nil {
		return nil
	}
	t := &r.trace
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.buf) == 0 || t.next == 0 {
		return nil
	}
	n := t.next
	capU := uint64(len(t.buf))
	count := n
	if count > capU {
		count = capU
	}
	out := make([]TraceEvent, 0, count)
	for i := n - count; i < n; i++ {
		out = append(out, t.buf[i%capU])
	}
	return out
}

// WriteChromeTrace writes the captured spans as a Chrome trace-event JSON
// array of complete ("X") events with microsecond timestamps, loadable by
// Perfetto (ui.perfetto.dev) or chrome://tracing. Each span kind renders as
// its own thread lane; timestamps are relative to the earliest captured
// span.
func (r *Registry) WriteChromeTrace(w io.Writer) error {
	events := r.Trace()
	bw := bufio.NewWriter(w)
	bw.WriteString("[")
	var epoch time.Time
	for _, e := range events {
		if epoch.IsZero() || e.Start.Before(epoch) {
			epoch = e.Start
		}
	}
	for i, e := range events {
		if i > 0 {
			bw.WriteString(",\n ")
		}
		ts := float64(e.Start.Sub(epoch).Nanoseconds()) / 1e3
		dur := float64(e.LatNs) / 1e3
		fmt.Fprintf(bw, `{"name":%q,"cat":%q,"ph":"X","ts":%.3f,"dur":%.3f,"pid":1,"tid":%d,"args":{"err":%t}}`,
			e.Name(), e.Kind.String(), ts, dur, int(e.Kind)+1, e.Err)
	}
	bw.WriteString("]\n")
	return bw.Flush()
}
