package obs

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

func TestSpanKindsRecorded(t *testing.T) {
	r := NewRegistry()
	if r.TraceEnabled() {
		t.Fatal("fresh registry should have tracing off")
	}
	start := time.Now()
	r.Span(SpanLockWait, OpCreate, start, 100, false) // dropped: disabled
	r.EnableTrace(8)
	if !r.TraceEnabled() {
		t.Fatal("EnableTrace did not enable")
	}
	r.Span(SpanLockWait, OpCreate, start, 100, false)
	r.Span(SpanRecovery, 0, start.Add(time.Microsecond), 2000, false)
	r.Span(SpanPmemFlush, 0, start.Add(2*time.Microsecond), 50, false)
	r.SetSamplePeriod(1)
	r.Sample(OpMkdir, start.Add(3*time.Microsecond), 700, Delta{}, true)
	ev := r.Trace()
	if len(ev) != 4 {
		t.Fatalf("got %d events, want 4", len(ev))
	}
	wantKinds := []SpanKind{SpanLockWait, SpanRecovery, SpanPmemFlush, SpanOp}
	for i, e := range ev {
		if e.Kind != wantKinds[i] {
			t.Errorf("event %d kind = %v, want %v", i, e.Kind, wantKinds[i])
		}
	}
	if ev[0].Name() != "lock-wait" {
		t.Errorf("lock-wait span name = %q", ev[0].Name())
	}
	if ev[3].Name() != "mkdir" || !ev[3].Err {
		t.Errorf("op span name/err = %q/%v, want mkdir/true", ev[3].Name(), ev[3].Err)
	}
}

func TestObserveFenceFeedsRecorder(t *testing.T) {
	r := NewRegistry()
	r.EnableTrace(4)
	r.ObserveFence(time.Now(), 250*time.Nanosecond)
	ev := r.Trace()
	if len(ev) != 1 || ev[0].Kind != SpanPmemFlush || ev[0].LatNs != 250 {
		t.Fatalf("unexpected fence span: %+v", ev)
	}
}

func TestWriteChromeTraceIsValidJSON(t *testing.T) {
	r := NewRegistry()
	r.EnableTrace(16)
	base := time.Now()
	r.Span(SpanOp, OpCreate, base, 900, false)
	r.Span(SpanLockWait, OpCreate, base.Add(100*time.Nanosecond), 300, false)
	r.Span(SpanRecovery, 0, base.Add(time.Millisecond), 5000, true)
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("trace output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(events) != 3 {
		t.Fatalf("got %d JSON events, want 3", len(events))
	}
	for i, e := range events {
		if e["ph"] != "X" {
			t.Errorf("event %d ph = %v, want X", i, e["ph"])
		}
		for _, k := range []string{"name", "cat", "ts", "dur", "pid", "tid"} {
			if _, ok := e[k]; !ok {
				t.Errorf("event %d missing field %q", i, k)
			}
		}
	}
	if events[0]["name"] != "create" || events[1]["cat"] != "lock-wait" {
		t.Errorf("unexpected name/cat: %v / %v", events[0]["name"], events[1]["cat"])
	}
	// Empty recorder still produces a valid (empty) array.
	var empty bytes.Buffer
	r2 := NewRegistry()
	if err := r2.WriteChromeTrace(&empty); err != nil {
		t.Fatal(err)
	}
	var none []map[string]any
	if err := json.Unmarshal(empty.Bytes(), &none); err != nil || len(none) != 0 {
		t.Fatalf("empty trace invalid: %v %q", err, empty.String())
	}
}

func TestEventAndLockWaitCounters(t *testing.T) {
	r := NewRegistry()
	r.Event(EvWaiterRecovery)
	r.Event(EvWaiterRecovery)
	r.Event(EvLineLockTimeout)
	r.LockWait(LockLine, 1000)
	r.LockWait(LockLine, 3000)
	r.LockWait(LockFile, 200)
	s := r.Snapshot()
	if s.Events[EvWaiterRecovery] != 2 || s.Events[EvLineLockTimeout] != 1 {
		t.Fatalf("events = %v", s.Events)
	}
	lw := s.LockWaits[LockLine]
	if lw.Waits != 2 || lw.TotalNs != 4000 || lw.MeanNs() != 2000 || lw.Hist.Count() != 2 {
		t.Fatalf("line lock-wait = %+v", lw)
	}
	if s.LockWaits[LockFile].Waits != 1 {
		t.Fatalf("file lock-wait = %+v", s.LockWaits[LockFile])
	}

	// Sub scopes events and waits to a window and passes gauges through.
	s.Gauges = []Gauge{{Name: "alloc.blocks_free", Value: 7}}
	d := s.Sub(r.Snapshot().Sub(s)) // s - 0
	r.Event(EvWaiterRecovery)
	r.LockWait(LockLine, 500)
	s2 := r.Snapshot()
	win := s2.Sub(s)
	if win.Events[EvWaiterRecovery] != 1 || win.LockWaits[LockLine].Waits != 1 {
		t.Fatalf("window diff wrong: events=%v waits=%+v", win.Events, win.LockWaits[LockLine])
	}
	if len(d.Gauges) != 1 || d.Gauges[0].Value != 7 {
		t.Fatalf("gauges not passed through Sub: %+v", d.Gauges)
	}

	// Add merges.
	sum := win.Add(win)
	if sum.Events[EvWaiterRecovery] != 2 || sum.LockWaits[LockLine].Waits != 2 {
		t.Fatalf("Add wrong: %v %+v", sum.Events, sum.LockWaits[LockLine])
	}
}

func TestEventNamesComplete(t *testing.T) {
	for e := Event(0); e < NumEvents; e++ {
		if e.String() == "" || e.String() == "unknown" {
			t.Errorf("event %d has no name", e)
		}
	}
	for k := SpanKind(0); k < NumSpanKinds; k++ {
		if k.String() == "" || k.String() == "unknown" {
			t.Errorf("span kind %d has no name", k)
		}
	}
	for c := LockClass(0); c < NumLockClasses; c++ {
		if c.String() == "" || c.String() == "unknown" {
			t.Errorf("lock class %d has no name", c)
		}
	}
}

func TestNilRegistryNewSurfacesSafe(t *testing.T) {
	var r *Registry
	r.Event(EvWaiterRecovery)
	r.LockWait(LockLine, 10)
	r.Span(SpanRecovery, 0, time.Time{}, 1, false)
	r.ObserveFence(time.Now(), time.Nanosecond)
	if r.TraceEnabled() {
		t.Fatal("nil registry reports tracing enabled")
	}
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
}
