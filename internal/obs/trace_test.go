package obs

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

func TestSpanKindsRecorded(t *testing.T) {
	r := NewRegistry()
	if r.TraceEnabled() {
		t.Fatal("fresh registry should have tracing off")
	}
	start := time.Now()
	r.Span(SpanLockWait, OpCreate, start, 100, false) // dropped: disabled
	r.EnableTrace(8)
	if !r.TraceEnabled() {
		t.Fatal("EnableTrace did not enable")
	}
	r.Span(SpanLockWait, OpCreate, start, 100, false)
	r.Span(SpanRecovery, 0, start.Add(time.Microsecond), 2000, false)
	r.Span(SpanPmemFlush, 0, start.Add(2*time.Microsecond), 50, false)
	r.SetSamplePeriod(1)
	r.Sample(OpMkdir, start.Add(3*time.Microsecond), 700, Delta{}, true)
	ev := r.Trace()
	if len(ev) != 4 {
		t.Fatalf("got %d events, want 4", len(ev))
	}
	wantKinds := []SpanKind{SpanLockWait, SpanRecovery, SpanPmemFlush, SpanOp}
	for i, e := range ev {
		if e.Kind != wantKinds[i] {
			t.Errorf("event %d kind = %v, want %v", i, e.Kind, wantKinds[i])
		}
	}
	if ev[0].Name() != "lock-wait" {
		t.Errorf("lock-wait span name = %q", ev[0].Name())
	}
	if ev[3].Name() != "mkdir" || !ev[3].Err {
		t.Errorf("op span name/err = %q/%v, want mkdir/true", ev[3].Name(), ev[3].Err)
	}
}

func TestObserveFenceFeedsRecorder(t *testing.T) {
	r := NewRegistry()
	r.EnableTrace(4)
	r.ObserveFence(time.Now(), 250*time.Nanosecond)
	ev := r.Trace()
	if len(ev) != 1 || ev[0].Kind != SpanPmemFlush || ev[0].LatNs != 250 {
		t.Fatalf("unexpected fence span: %+v", ev)
	}
}

func TestWriteChromeTraceIsValidJSON(t *testing.T) {
	r := NewRegistry()
	r.EnableTrace(16)
	base := time.Now()
	r.Span(SpanOp, OpCreate, base, 900, false)
	r.Span(SpanLockWait, OpCreate, base.Add(100*time.Nanosecond), 300, false)
	r.Span(SpanRecovery, 0, base.Add(time.Millisecond), 5000, true)
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("trace output is not valid JSON: %v\n%s", err, buf.String())
	}
	// One process_name metadata event leads, then the three spans.
	if len(events) != 4 {
		t.Fatalf("got %d JSON events, want 4", len(events))
	}
	if events[0]["ph"] != "M" || events[0]["name"] != "process_name" {
		t.Errorf("leading event = %v, want process_name metadata", events[0])
	}
	for i, e := range events[1:] {
		if e["ph"] != "X" {
			t.Errorf("span %d ph = %v, want X", i, e["ph"])
		}
		for _, k := range []string{"name", "cat", "ts", "dur", "pid", "tid"} {
			if _, ok := e[k]; !ok {
				t.Errorf("span %d missing field %q", i, k)
			}
		}
	}
	if events[1]["name"] != "create" || events[2]["cat"] != "lock-wait" {
		t.Errorf("unexpected name/cat: %v / %v", events[1]["name"], events[2]["cat"])
	}
	// Empty recorder still produces a valid array (metadata only).
	var empty bytes.Buffer
	r2 := NewRegistry()
	if err := r2.WriteChromeTrace(&empty); err != nil {
		t.Fatal(err)
	}
	var none []map[string]any
	if err := json.Unmarshal(empty.Bytes(), &none); err != nil || len(none) != 1 {
		t.Fatalf("empty trace invalid: %v %q", err, empty.String())
	}
}

// TestTraceRingWrapDuringDump hammers the ring with concurrent span
// recording — enough to wrap it many times — while dumps are being taken,
// and checks every dump is internally consistent: valid JSON, at most
// capacity spans, latencies monotonically increasing (recording order),
// never a torn or duplicated slot.
func TestTraceRingWrapDuringDump(t *testing.T) {
	r := NewRegistry()
	r.SetNode("wrap")
	const capacity = 64
	r.EnableTrace(capacity)

	stop := make(chan struct{})
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		for i := uint64(1); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			r.SpanCtx(SpanRepApply, 0, i, time.Now(), i, false)
		}
	}()

	for dumps := 0; dumps < 50; dumps++ {
		ev := r.Trace()
		if len(ev) > capacity {
			t.Fatalf("dump %d returned %d events, capacity %d", dumps, len(ev), capacity)
		}
		for i := 1; i < len(ev); i++ {
			if ev[i].LatNs <= ev[i-1].LatNs {
				t.Fatalf("dump %d not oldest-first: lat[%d]=%d after lat[%d]=%d",
					dumps, i, ev[i].LatNs, i-1, ev[i-1].LatNs)
			}
			if ev[i].Trace != ev[i].LatNs {
				t.Fatalf("dump %d torn event: trace %d with lat %d", dumps, ev[i].Trace, ev[i].LatNs)
			}
		}
		var buf bytes.Buffer
		if err := r.WriteChromeTrace(&buf); err != nil {
			t.Fatal(err)
		}
		var events []map[string]any
		if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
			t.Fatalf("dump %d invalid JSON under concurrent wrap: %v", dumps, err)
		}
	}
	close(stop)
	<-writerDone

	// Fill the ring deterministically past capacity: a quiet dump holds
	// exactly the newest capacity events, oldest first.
	for i := uint64(1 << 40); i < 1<<40+2*capacity; i++ {
		r.SpanCtx(SpanRepApply, 0, i, time.Now(), i, false)
	}
	ev := r.Trace()
	if len(ev) != capacity {
		t.Fatalf("final dump has %d events, want %d", len(ev), capacity)
	}
	if want := uint64(1<<40 + 2*capacity - 1); ev[len(ev)-1].LatNs != want {
		t.Fatalf("final dump newest lat = %d, want %d", ev[len(ev)-1].LatNs, want)
	}
}

func TestEventAndLockWaitCounters(t *testing.T) {
	r := NewRegistry()
	r.Event(EvWaiterRecovery)
	r.Event(EvWaiterRecovery)
	r.Event(EvLineLockTimeout)
	r.LockWait(LockLine, 1000)
	r.LockWait(LockLine, 3000)
	r.LockWait(LockFile, 200)
	s := r.Snapshot()
	if s.Events[EvWaiterRecovery] != 2 || s.Events[EvLineLockTimeout] != 1 {
		t.Fatalf("events = %v", s.Events)
	}
	lw := s.LockWaits[LockLine]
	if lw.Waits != 2 || lw.TotalNs != 4000 || lw.MeanNs() != 2000 || lw.Hist.Count() != 2 {
		t.Fatalf("line lock-wait = %+v", lw)
	}
	if s.LockWaits[LockFile].Waits != 1 {
		t.Fatalf("file lock-wait = %+v", s.LockWaits[LockFile])
	}

	// Sub scopes events and waits to a window and passes gauges through.
	s.Gauges = []Gauge{{Name: "alloc.blocks_free", Value: 7}}
	d := s.Sub(r.Snapshot().Sub(s)) // s - 0
	r.Event(EvWaiterRecovery)
	r.LockWait(LockLine, 500)
	s2 := r.Snapshot()
	win := s2.Sub(s)
	if win.Events[EvWaiterRecovery] != 1 || win.LockWaits[LockLine].Waits != 1 {
		t.Fatalf("window diff wrong: events=%v waits=%+v", win.Events, win.LockWaits[LockLine])
	}
	if len(d.Gauges) != 1 || d.Gauges[0].Value != 7 {
		t.Fatalf("gauges not passed through Sub: %+v", d.Gauges)
	}

	// Add merges.
	sum := win.Add(win)
	if sum.Events[EvWaiterRecovery] != 2 || sum.LockWaits[LockLine].Waits != 2 {
		t.Fatalf("Add wrong: %v %+v", sum.Events, sum.LockWaits[LockLine])
	}
}

func TestEventNamesComplete(t *testing.T) {
	for e := Event(0); e < NumEvents; e++ {
		if e.String() == "" || e.String() == "unknown" {
			t.Errorf("event %d has no name", e)
		}
	}
	for k := SpanKind(0); k < NumSpanKinds; k++ {
		if k.String() == "" || k.String() == "unknown" {
			t.Errorf("span kind %d has no name", k)
		}
	}
	for c := LockClass(0); c < NumLockClasses; c++ {
		if c.String() == "" || c.String() == "unknown" {
			t.Errorf("lock class %d has no name", c)
		}
	}
}

func TestNilRegistryNewSurfacesSafe(t *testing.T) {
	var r *Registry
	r.Event(EvWaiterRecovery)
	r.LockWait(LockLine, 10)
	r.Span(SpanRecovery, 0, time.Time{}, 1, false)
	r.ObserveFence(time.Now(), time.Nanosecond)
	if r.TraceEnabled() {
		t.Fatal("nil registry reports tracing enabled")
	}
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
}
