// Package obs is the per-operation observability core shared by every layer
// of the file system: lock-free sharded counters and latency histograms per
// operation class, NVMM-traffic attribution (flushes, fences, non-temporal
// bytes charged to the operation that issued them), an optional bounded
// trace ring, and a Snapshot/diff API that the stats surfaces (FS.Stats,
// simurghsh stats, simurghbench breakdown, simurghfsck) are built on.
//
// The paper's central claims are per-operation claims — metadata ops cost N
// cycles, flush/fence counts dominate the YCSB breakdowns (Table 1, Fig 10)
// — so the reproduction must be able to attribute device traffic and
// latency to an operation class from live counters instead of ad-hoc
// timing. A Registry is that sink: the core dispatch path calls Enter once
// per public operation (one sharded atomic increment), and for sampled
// operations additionally records latency and the device-stats delta of the
// operation window.
//
// Recording is lock-free: counters are split across power-of-two shards so
// concurrent clients do not serialize on a shared cache line. Long-lived
// callers pin themselves to a shard with ShardHint (round-robin at attach
// time) so their hot counters stay cache-resident; anonymous callers fall
// back to a per-call random shard.
// Attribution windows are exact when operations do not overlap on the
// device (unit tests, the shell, the breakdown tool); overlapping windows
// each observe the union of concurrent traffic, so heavily parallel sweeps
// should read the per-op columns as upper bounds.
package obs

import (
	"math/rand/v2"
	"runtime"
	"sync/atomic"
	"time"
)

// Op is a file-system operation class. Every public operation of the FS
// dispatch path maps to exactly one Op.
type Op uint8

// Operation classes, one per public fsapi.Client operation.
const (
	OpCreate Op = iota
	OpOpen
	OpClose
	OpRead
	OpPread
	OpWrite
	OpPwrite
	OpSeek
	OpFsync
	OpFtruncate
	OpFallocate
	OpFstat
	OpStat
	OpLstat
	OpMkdir
	OpRmdir
	OpUnlink
	OpRename
	OpSymlink
	OpLink
	OpReadlink
	OpReadDir
	OpChmod
	OpUtimes
	OpDetach
	// NumOps bounds the Op enum; it is the length of per-op arrays.
	NumOps
)

var opNames = [NumOps]string{
	OpCreate: "create", OpOpen: "open", OpClose: "close",
	OpRead: "read", OpPread: "pread", OpWrite: "write", OpPwrite: "pwrite",
	OpSeek: "seek", OpFsync: "fsync", OpFtruncate: "ftruncate",
	OpFallocate: "fallocate", OpFstat: "fstat", OpStat: "stat",
	OpLstat: "lstat", OpMkdir: "mkdir", OpRmdir: "rmdir",
	OpUnlink: "unlink", OpRename: "rename", OpSymlink: "symlink",
	OpLink: "link", OpReadlink: "readlink", OpReadDir: "readdir",
	OpChmod: "chmod", OpUtimes: "utimes", OpDetach: "detach",
}

// String returns the operation class name.
func (o Op) String() string {
	if o < NumOps {
		return opNames[o]
	}
	return "unknown"
}

// Delta is NVMM device traffic attributed to an operation window (or, in a
// Snapshot's Device field, the device-global totals). It mirrors the pmem
// device counters without importing them, so obs stays dependency-free.
type Delta struct {
	LoadBytes  uint64
	StoreBytes uint64
	NTBytes    uint64
	Flushes    uint64
	Fences     uint64
}

// Add returns the field-wise sum a+b.
func (a Delta) Add(b Delta) Delta {
	return Delta{
		LoadBytes:  a.LoadBytes + b.LoadBytes,
		StoreBytes: a.StoreBytes + b.StoreBytes,
		NTBytes:    a.NTBytes + b.NTBytes,
		Flushes:    a.Flushes + b.Flushes,
		Fences:     a.Fences + b.Fences,
	}
}

// Sub returns the field-wise difference a-b.
func (a Delta) Sub(b Delta) Delta {
	return Delta{
		LoadBytes:  a.LoadBytes - b.LoadBytes,
		StoreBytes: a.StoreBytes - b.StoreBytes,
		NTBytes:    a.NTBytes - b.NTBytes,
		Flushes:    a.Flushes - b.Flushes,
		Fences:     a.Fences - b.Fences,
	}
}

// DefaultSamplePeriod is the deep-sampling period a fresh Registry starts
// with: 1 of every 32 calls per op class opens a full latency/attribution
// window. Call and error counts are always exact; only the window (two
// clock reads plus a device-stats snapshot, ~100 ns) is sampled so the
// instrumented dispatch path stays within benchmark noise on sub-µs
// operations. Surfaces that need exact attribution (tests, the shell, the
// breakdown tool) call SetSamplePeriod(1).
const DefaultSamplePeriod = 32

// opCounters is the per-shard accumulator of one operation class. All
// fields are updated with atomic adds only.
type opCounters struct {
	calls   atomic.Uint64
	errors  atomic.Uint64
	sampled atomic.Uint64
	latNs   atomic.Uint64
	hist    [NumBuckets]atomic.Uint64
	load    atomic.Uint64
	store   atomic.Uint64
	nt      atomic.Uint64
	flushes atomic.Uint64
	fences  atomic.Uint64
}

type regShard struct {
	ops [NumOps]opCounters
}

// lockWaitCounters accumulates timed contended waits for one lock class.
// Waits are already a slow path (the caller just blocked), so plain shared
// atomics are fine here.
type lockWaitCounters struct {
	waits atomic.Uint64
	ns    atomic.Uint64
	hist  [NumBuckets]atomic.Uint64
}

// Registry is the live observability sink of one mounted file system.
// All methods are safe for concurrent use and nil-safe (a nil Registry
// records nothing), so optional instrumentation costs one branch.
type Registry struct {
	shards     []regShard
	shardMask  uint32
	hintCtr    atomic.Uint32
	sampleMask atomic.Uint64
	trace      traceRing
	slow       slowLog
	node       atomic.Value // string; set by SetNode
	events     [NumEvents]atomic.Uint64
	lockWait   [NumLockClasses]lockWaitCounters
}

// NewRegistry creates a Registry sized for the host's parallelism, deep-
// sampling every DefaultSamplePeriod-th call.
func NewRegistry() *Registry {
	n := nextPow2(runtime.GOMAXPROCS(0))
	if n > 32 {
		n = 32
	}
	r := &Registry{shards: make([]regShard, n), shardMask: uint32(n - 1)}
	r.SetSamplePeriod(DefaultSamplePeriod)
	return r
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// SetSamplePeriod sets the deep-sampling period (rounded up to a power of
// two; minimum 1 = every call). Period 1 makes latency and NVMM attribution
// exact at ~100 ns extra per operation.
func (r *Registry) SetSamplePeriod(period int) {
	if r == nil {
		return
	}
	if period < 1 {
		period = 1
	}
	r.sampleMask.Store(uint64(nextPow2(period)) - 1)
}

// SamplePeriod returns the current deep-sampling period.
func (r *Registry) SamplePeriod() uint64 {
	if r == nil {
		return 0
	}
	return r.sampleMask.Load() + 1
}

func (r *Registry) shard() *regShard {
	return &r.shards[rand.Uint32()&r.shardMask]
}

// ShardHint returns a stable shard index for a long-lived caller (one per
// attached client). Pinning a caller's counters to one shard keeps its hot
// calls counter in cache — a per-call random shard touches a fresh line
// almost every operation — while round-robin hints still spread concurrent
// callers so they do not serialize on one line.
func (r *Registry) ShardHint() uint32 {
	if r == nil {
		return 0
	}
	return r.hintCtr.Add(1) & r.shardMask
}

// Enter counts one call of op and reports whether the caller should open a
// full latency/attribution window for it (deep sampling). This is the only
// per-call cost of a non-sampled operation: one sharded atomic increment.
func (r *Registry) Enter(op Op) bool {
	if r == nil {
		return false
	}
	return r.EnterAt(rand.Uint32(), op)
}

// EnterAt is Enter recording into the shard selected by hint (from
// ShardHint).
func (r *Registry) EnterAt(hint uint32, op Op) bool {
	if r == nil {
		return false
	}
	n := r.shards[hint&r.shardMask].ops[op].calls.Add(1)
	return n&r.sampleMask.Load() == 0
}

// Error counts one failed call of op.
func (r *Registry) Error(op Op) {
	if r == nil {
		return
	}
	r.shard().ops[op].errors.Add(1)
}

// ErrorAt is Error recording into the shard selected by hint.
func (r *Registry) ErrorAt(hint uint32, op Op) {
	if r == nil {
		return
	}
	r.shards[hint&r.shardMask].ops[op].errors.Add(1)
}

// Sample closes a deep-sampled operation window: it records the measured
// latency into the op's histogram and charges the NVMM traffic delta of the
// window to the op class. start is the window's begin time (used only by
// the trace ring).
func (r *Registry) Sample(op Op, start time.Time, latNs uint64, d Delta, failed bool) {
	if r == nil {
		return
	}
	r.SampleAt(rand.Uint32(), op, start, latNs, d, failed)
}

// SampleAt is Sample recording into the shard selected by hint.
func (r *Registry) SampleAt(hint uint32, op Op, start time.Time, latNs uint64, d Delta, failed bool) {
	if r == nil {
		return
	}
	c := &r.shards[hint&r.shardMask].ops[op]
	c.sampled.Add(1)
	c.latNs.Add(latNs)
	c.hist[bucketOf(latNs)].Add(1)
	if d.LoadBytes != 0 {
		c.load.Add(d.LoadBytes)
	}
	if d.StoreBytes != 0 {
		c.store.Add(d.StoreBytes)
	}
	if d.NTBytes != 0 {
		c.nt.Add(d.NTBytes)
	}
	if d.Flushes != 0 {
		c.flushes.Add(d.Flushes)
	}
	if d.Fences != 0 {
		c.fences.Add(d.Fences)
	}
	r.trace.record(SpanOp, op, 0, start, latNs, failed)
	if t := r.slow.thresholdNs.Load(); t != 0 && latNs >= t {
		r.slow.record(SpanOp, op, 0, start, latNs, failed)
	}
}

// ObserveFence implements the pmem-device fence observer: it records one
// device fence as a pmem-flush span in the flight recorder. The device
// only times fences while TraceEnabled reports true, so an idle recorder
// adds one atomic load per fence.
func (r *Registry) ObserveFence(start time.Time, dur time.Duration) {
	if r == nil {
		return
	}
	r.trace.record(SpanPmemFlush, 0, 0, start, uint64(dur.Nanoseconds()), false)
}
