package obs

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

func TestSlowLogThresholdAndRing(t *testing.T) {
	r := NewRegistry()
	if r.SlowThreshold() != 0 || r.SlowOps() != nil {
		t.Fatal("fresh registry should have the slow log disarmed and empty")
	}
	// Disarmed: nothing recorded regardless of latency.
	r.SpanCtx(SpanSrvExec, OpPwrite, 7, time.Now(), 1<<30, false)
	if got := r.SlowOps(); got != nil {
		t.Fatalf("disarmed slow log recorded %d ops", len(got))
	}

	r.SetSlowThreshold(time.Microsecond, 4)
	if r.SlowThreshold() != time.Microsecond {
		t.Fatalf("threshold = %v, want 1µs", r.SlowThreshold())
	}
	r.SpanCtx(SpanSrvExec, OpPwrite, 1, time.Now(), 999, false) // below: dropped
	for i := uint64(1); i <= 6; i++ {                           // ring capacity 4: keeps 3..6
		r.SpanCtx(SpanSrvExec, OpPwrite, i, time.Now(), 1000+i, i == 6)
	}
	ops := r.SlowOps()
	if len(ops) != 4 {
		t.Fatalf("slow log holds %d ops, want 4", len(ops))
	}
	for i, op := range ops {
		if want := uint64(3 + i); op.Trace != want {
			t.Fatalf("slow[%d].Trace = %d, want %d (oldest first)", i, op.Trace, want)
		}
	}
	if !ops[3].Err || ops[0].Err {
		t.Fatalf("err flags not preserved: %+v", ops)
	}
	if ops[0].Name() != "srv-exec" {
		t.Fatalf("slow op name = %q, want srv-exec", ops[0].Name())
	}
	r.SpanCtx(SpanOp, OpMkdir, 0, time.Now(), 5000, false)
	if ops = r.SlowOps(); ops[len(ops)-1].Name() != "mkdir" {
		t.Fatalf("op-span slow name = %q, want mkdir", ops[len(ops)-1].Name())
	}

	var buf bytes.Buffer
	if err := r.WriteSlowJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		ThresholdNs uint64 `json:"threshold_ns"`
		Ops         []struct {
			Name  string `json:"name"`
			LatNs uint64 `json:"lat_ns"`
			Trace string `json:"trace"`
			Err   bool   `json:"err"`
		} `json:"ops"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("slow.json invalid: %v\n%s", err, buf.String())
	}
	if doc.ThresholdNs != 1000 || len(doc.Ops) != 4 {
		t.Fatalf("threshold/ops = %d/%d, want 1000/4", doc.ThresholdNs, len(doc.Ops))
	}
	if doc.Ops[0].Trace != "0000000000000004" {
		t.Fatalf("ops[0].trace = %q", doc.Ops[0].Trace)
	}
	if doc.Ops[3].Name != "mkdir" || doc.Ops[3].Trace != "0000000000000000" {
		t.Fatalf("ops[3] = %+v, want untraced mkdir", doc.Ops[3])
	}

	// Disarming drops the ring.
	r.SetSlowThreshold(0, 0)
	if r.SlowThreshold() != 0 || r.SlowOps() != nil {
		t.Fatal("disarm did not clear the slow log")
	}
}

func TestSlowLogNilRegistry(t *testing.T) {
	var r *Registry
	r.SetSlowThreshold(time.Millisecond, 8)
	if r.SlowThreshold() != 0 || r.SlowOps() != nil {
		t.Fatal("nil registry slow log not inert")
	}
	var buf bytes.Buffer
	if err := r.WriteSlowJSON(&buf); err != nil {
		t.Fatal(err)
	}
}
