package obs

// Structured slow-op log: a threshold-gated ring of the most recent
// operations and spans whose latency crossed an armed threshold. Unlike the
// flight recorder — which captures everything sampled and wraps fast under
// load — the slow log keeps only outliers, so a burst of tail latency from
// minutes ago is still inspectable when an operator gets to the node. It is
// dumped as JSON via /slow.json and the simurghsh `slow` command.
//
// Cost when disarmed is one atomic load on each sampled-window close and
// each SpanCtx; recording takes a short mutex (outliers are rare by
// definition).

import (
	"bufio"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultSlowLogCapacity is the ring capacity SetSlowThreshold installs
// when none has been set explicitly.
const DefaultSlowLogCapacity = 256

// SlowOp is one logged slow operation or span.
type SlowOp struct {
	Kind  SpanKind
	Op    Op // meaningful for SpanOp spans
	Start time.Time
	LatNs uint64
	Trace uint64 // distributed trace ID; 0 when the op was untraced
	Err   bool
}

// Name returns the display name of the slow entry, mirroring
// TraceEvent.Name.
func (s SlowOp) Name() string {
	if s.Kind == SpanOp {
		return s.Op.String()
	}
	return s.Kind.String()
}

type slowLog struct {
	thresholdNs atomic.Uint64 // 0 = disarmed
	mu          sync.Mutex
	buf         []SlowOp
	next        uint64 // total entries recorded; next%len(buf) is the write slot
}

func (l *slowLog) record(kind SpanKind, op Op, trace uint64, start time.Time, latNs uint64, failed bool) {
	l.mu.Lock()
	if len(l.buf) > 0 {
		l.buf[l.next%uint64(len(l.buf))] = SlowOp{Kind: kind, Op: op, Start: start, LatNs: latNs, Trace: trace, Err: failed}
		l.next++
	}
	l.mu.Unlock()
}

// SetSlowThreshold arms the slow-op log: operations and spans at or above d
// are retained in a ring of capacity entries (DefaultSlowLogCapacity if
// capacity <= 0). d <= 0 disarms the log and drops captured entries.
func (r *Registry) SetSlowThreshold(d time.Duration, capacity int) {
	if r == nil {
		return
	}
	l := &r.slow
	l.mu.Lock()
	if d <= 0 {
		l.buf = nil
		l.next = 0
		l.thresholdNs.Store(0)
	} else {
		if capacity <= 0 {
			capacity = DefaultSlowLogCapacity
		}
		if len(l.buf) != capacity {
			l.buf = make([]SlowOp, capacity)
			l.next = 0
		}
		l.thresholdNs.Store(uint64(d.Nanoseconds()))
	}
	l.mu.Unlock()
}

// SlowThreshold returns the armed threshold (0 when the log is disarmed).
func (r *Registry) SlowThreshold() time.Duration {
	if r == nil {
		return 0
	}
	return time.Duration(r.slow.thresholdNs.Load())
}

// SlowOps returns the captured slow entries, oldest first.
func (r *Registry) SlowOps() []SlowOp {
	if r == nil {
		return nil
	}
	l := &r.slow
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.buf) == 0 || l.next == 0 {
		return nil
	}
	capU := uint64(len(l.buf))
	count := l.next
	if count > capU {
		count = capU
	}
	out := make([]SlowOp, 0, count)
	for i := l.next - count; i < l.next; i++ {
		out = append(out, l.buf[i%capU])
	}
	return out
}

// WriteSlowJSON dumps the slow-op log as a JSON object:
// {"threshold_ns":N,"ops":[{...}]}. Entries are oldest first.
func (r *Registry) WriteSlowJSON(w io.Writer) error {
	ops := r.SlowOps()
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "{\"threshold_ns\":%d,\"ops\":[", uint64(r.SlowThreshold()))
	for i, s := range ops {
		if i > 0 {
			bw.WriteString(",\n ")
		}
		fmt.Fprintf(bw, `{"name":%q,"kind":%q,"start_us":%d,"lat_ns":%d,"trace":"%016x","err":%t}`,
			s.Name(), s.Kind.String(), s.Start.UnixNano()/1e3, s.LatNs, s.Trace, s.Err)
	}
	bw.WriteString("]}\n")
	return bw.Flush()
}
