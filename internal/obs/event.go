package obs

// Event identifies a rare, individually countable occurrence worth
// surfacing on its own rather than folding into per-op aggregates: lock
// timeouts, recovery actions, allocator steals. Events are counted with a
// single shared atomic per kind — they fire orders of magnitude less often
// than operations, so sharding would buy nothing.
type Event uint8

const (
	// EvLineLockTimeout counts busy-flag line waits that exceeded the line
	// lock timeout and triggered a recovery attempt.
	EvLineLockTimeout Event = iota
	// EvWaiterRecovery counts waiter-performs-recovery actions: a waiter
	// found the line still stuck after the timeout and repaired it.
	EvWaiterRecovery
	// EvWaiterRecoveryNoop counts recovery attempts that found the line
	// already released by the time the recovery lock was held.
	EvWaiterRecoveryNoop
	// EvRenameLogRecovered counts cross-directory rename logs completed
	// during recovery (waiter- or mount-time).
	EvRenameLogRecovered
	// EvMountRecovery counts mount-time recovery passes over an unclean
	// volume.
	EvMountRecovery
	// EvDirChainExtend counts directory block-chain extensions.
	EvDirChainExtend
	// EvSegLockSteal counts block-allocator segment locks stolen from
	// stale holders.
	EvSegLockSteal
	// NumEvents bounds the Event enum.
	NumEvents
)

var eventNames = [NumEvents]string{
	EvLineLockTimeout:    "line_lock_timeout",
	EvWaiterRecovery:     "waiter_recovery",
	EvWaiterRecoveryNoop: "waiter_recovery_noop",
	EvRenameLogRecovered: "rename_log_recovered",
	EvMountRecovery:      "mount_recovery",
	EvDirChainExtend:     "dir_chain_extend",
	EvSegLockSteal:       "seg_lock_steal",
}

// String returns the event name (snake_case, stable for exporters).
func (e Event) String() string {
	if e < NumEvents {
		return eventNames[e]
	}
	return "unknown"
}

// LockClass distinguishes the lock families whose contended waits are
// timed: persistent busy-flag directory lines and volatile per-file locks.
type LockClass uint8

const (
	// LockLine is the persistent busy-flag lock of a directory line.
	LockLine LockClass = iota
	// LockFile is the volatile per-file reader/writer lock.
	LockFile
	// NumLockClasses bounds the LockClass enum.
	NumLockClasses
)

var lockClassNames = [NumLockClasses]string{LockLine: "line", LockFile: "file"}

// String returns the lock class name.
func (c LockClass) String() string {
	if c < NumLockClasses {
		return lockClassNames[c]
	}
	return "unknown"
}

// Event counts one occurrence of e. Nil-safe.
func (r *Registry) Event(e Event) {
	if r == nil || e >= NumEvents {
		return
	}
	r.events[e].Add(1)
}

// LockWait records one contended lock acquisition of class c that blocked
// for ns nanoseconds. Only contended waits reach the registry — the
// uncontended fast paths (first-try CAS, TryLock) record nothing — so the
// wait histogram is a pure picture of contention. Nil-safe.
func (r *Registry) LockWait(c LockClass, ns uint64) {
	if r == nil || c >= NumLockClasses {
		return
	}
	lw := &r.lockWait[c]
	lw.waits.Add(1)
	lw.ns.Add(ns)
	lw.hist[bucketOf(ns)].Add(1)
}
