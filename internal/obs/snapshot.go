package obs

import (
	"fmt"
	"io"
	"time"
)

// OpStats is the plain-value accumulated state of one operation class at
// snapshot time. Calls and Errors are exact; Sampled, the histogram, the
// latency total and the NVMM traffic cover only deep-sampled calls (all
// calls when the registry runs at sample period 1).
type OpStats struct {
	Calls   uint64
	Errors  uint64
	Sampled uint64
	LatNs   uint64
	Hist    Histogram
	Pmem    Delta
}

// MeanNs returns the mean latency of sampled calls in nanoseconds.
func (s OpStats) MeanNs() uint64 {
	if s.Sampled == 0 {
		return 0
	}
	return s.LatNs / s.Sampled
}

// PerCall returns v scaled from sampled calls to a per-call average.
func (s OpStats) PerCall(v uint64) float64 {
	if s.Sampled == 0 {
		return 0
	}
	return float64(v) / float64(s.Sampled)
}

// EstTotalLatNs extrapolates the total latency across all calls from the
// sampled subset (identical to LatNs at sample period 1).
func (s OpStats) EstTotalLatNs() uint64 {
	if s.Sampled == 0 {
		return 0
	}
	return uint64(float64(s.LatNs) / float64(s.Sampled) * float64(s.Calls))
}

// Add returns the field-wise sum s+b.
func (s OpStats) Add(b OpStats) OpStats {
	return OpStats{
		Calls:   s.Calls + b.Calls,
		Errors:  s.Errors + b.Errors,
		Sampled: s.Sampled + b.Sampled,
		LatNs:   s.LatNs + b.LatNs,
		Hist:    s.Hist.Add(b.Hist),
		Pmem:    s.Pmem.Add(b.Pmem),
	}
}

// Sub returns the field-wise difference s-b.
func (s OpStats) Sub(b OpStats) OpStats {
	return OpStats{
		Calls:   s.Calls - b.Calls,
		Errors:  s.Errors - b.Errors,
		Sampled: s.Sampled - b.Sampled,
		LatNs:   s.LatNs - b.LatNs,
		Hist:    s.Hist.Sub(b.Hist),
		Pmem:    s.Pmem.Sub(b.Pmem),
	}
}

// ShardStat reports lock pressure on one named sharded volatile-state map:
// how many times a shard was locked and how many of those acquisitions
// found the lock already held.
type ShardStat struct {
	Name      string
	Gets      uint64
	Contended uint64
}

// LockWaitStat is the accumulated contended-wait state of one lock class:
// how many acquisitions blocked, for how long in total, and the wait-time
// distribution. Uncontended acquisitions are not counted.
type LockWaitStat struct {
	Waits   uint64
	TotalNs uint64
	Hist    Histogram
}

// MeanNs returns the mean contended wait in nanoseconds.
func (l LockWaitStat) MeanNs() uint64 {
	if l.Waits == 0 {
		return 0
	}
	return l.TotalNs / l.Waits
}

// Add returns the field-wise sum l+b.
func (l LockWaitStat) Add(b LockWaitStat) LockWaitStat {
	return LockWaitStat{Waits: l.Waits + b.Waits, TotalNs: l.TotalNs + b.TotalNs, Hist: l.Hist.Add(b.Hist)}
}

// Sub returns the field-wise difference l-b.
func (l LockWaitStat) Sub(b LockWaitStat) LockWaitStat {
	return LockWaitStat{Waits: l.Waits - b.Waits, TotalNs: l.TotalNs - b.TotalNs, Hist: l.Hist.Sub(b.Hist)}
}

// Gauge is one named point-in-time level (allocator occupancy, dirty
// lines): a current value, not a monotonic counter, so Sub keeps the later
// snapshot's reading instead of differencing.
type Gauge struct {
	Name  string
	Value uint64
}

// Snapshot is a point-in-time copy of a Registry (plus, when taken through
// FS.Stats, shard contention, device-global traffic, and subsystem
// gauges). Snapshots are plain values: diff two with Sub to scope counters
// to a window.
type Snapshot struct {
	// SamplePeriod is the registry's deep-sampling period at snapshot time.
	SamplePeriod uint64
	// Ops holds one accumulator per operation class.
	Ops [NumOps]OpStats
	// Shards reports contention on the volatile sharded maps (optional).
	Shards []ShardStat
	// Device holds the device-global traffic totals (optional).
	Device Delta
	// Events holds the rare-event counters, indexed by Event.
	Events [NumEvents]uint64
	// LockWaits holds contended-wait stats, indexed by LockClass.
	LockWaits [NumLockClasses]LockWaitStat
	// Gauges holds point-in-time subsystem levels (optional; set by
	// FS.Stats). Levels, not counters: Sub passes them through.
	Gauges []Gauge
}

// Snapshot sums the registry's shards into a consistent-enough point-in-time
// copy (individual counters are read atomically; the set is not a single
// atomic cut, which is fine for monotonically increasing counters).
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	s.SamplePeriod = r.SamplePeriod()
	for i := range r.shards {
		sh := &r.shards[i]
		for op := Op(0); op < NumOps; op++ {
			c := &sh.ops[op]
			o := &s.Ops[op]
			o.Calls += c.calls.Load()
			o.Errors += c.errors.Load()
			o.Sampled += c.sampled.Load()
			o.LatNs += c.latNs.Load()
			for b := 0; b < NumBuckets; b++ {
				o.Hist[b] += c.hist[b].Load()
			}
			o.Pmem.LoadBytes += c.load.Load()
			o.Pmem.StoreBytes += c.store.Load()
			o.Pmem.NTBytes += c.nt.Load()
			o.Pmem.Flushes += c.flushes.Load()
			o.Pmem.Fences += c.fences.Load()
		}
	}
	for e := Event(0); e < NumEvents; e++ {
		s.Events[e] = r.events[e].Load()
	}
	for c := LockClass(0); c < NumLockClasses; c++ {
		lw := &r.lockWait[c]
		st := &s.LockWaits[c]
		st.Waits = lw.waits.Load()
		st.TotalNs = lw.ns.Load()
		for b := 0; b < NumBuckets; b++ {
			st.Hist[b] = lw.hist[b].Load()
		}
	}
	return s
}

// Sub returns the snapshot diff s-base: per-op counters, shard stats
// (matched by name) and device totals all scoped to the window between the
// two snapshots.
func (s Snapshot) Sub(base Snapshot) Snapshot {
	out := Snapshot{SamplePeriod: s.SamplePeriod, Device: s.Device.Sub(base.Device), Gauges: s.Gauges}
	for op := Op(0); op < NumOps; op++ {
		out.Ops[op] = s.Ops[op].Sub(base.Ops[op])
	}
	for e := Event(0); e < NumEvents; e++ {
		out.Events[e] = s.Events[e] - base.Events[e]
	}
	for c := LockClass(0); c < NumLockClasses; c++ {
		out.LockWaits[c] = s.LockWaits[c].Sub(base.LockWaits[c])
	}
	baseShards := make(map[string]ShardStat, len(base.Shards))
	for _, b := range base.Shards {
		baseShards[b.Name] = b
	}
	for _, sh := range s.Shards {
		b := baseShards[sh.Name]
		out.Shards = append(out.Shards, ShardStat{
			Name: sh.Name, Gets: sh.Gets - b.Gets, Contended: sh.Contended - b.Contended,
		})
	}
	return out
}

// Add returns the field-wise sum s+o, merging shard stats by name. Use it
// to accumulate windows from several runs into one table.
func (s Snapshot) Add(o Snapshot) Snapshot {
	out := Snapshot{SamplePeriod: s.SamplePeriod, Device: s.Device.Add(o.Device)}
	if out.SamplePeriod < o.SamplePeriod {
		out.SamplePeriod = o.SamplePeriod
	}
	for op := Op(0); op < NumOps; op++ {
		out.Ops[op] = s.Ops[op].Add(o.Ops[op])
	}
	for e := Event(0); e < NumEvents; e++ {
		out.Events[e] = s.Events[e] + o.Events[e]
	}
	for c := LockClass(0); c < NumLockClasses; c++ {
		out.LockWaits[c] = s.LockWaits[c].Add(o.LockWaits[c])
	}
	gm := make(map[string]int, len(s.Gauges))
	for _, g := range s.Gauges {
		gm[g.Name] = len(out.Gauges)
		out.Gauges = append(out.Gauges, g)
	}
	for _, g := range o.Gauges {
		if i, ok := gm[g.Name]; ok {
			out.Gauges[i].Value += g.Value
		} else {
			out.Gauges = append(out.Gauges, g)
		}
	}
	merged := make(map[string]int, len(s.Shards))
	for _, sh := range s.Shards {
		merged[sh.Name] = len(out.Shards)
		out.Shards = append(out.Shards, sh)
	}
	for _, sh := range o.Shards {
		if i, ok := merged[sh.Name]; ok {
			out.Shards[i].Gets += sh.Gets
			out.Shards[i].Contended += sh.Contended
		} else {
			out.Shards = append(out.Shards, sh)
		}
	}
	return out
}

// TotalCalls returns the number of operations across all classes.
func (s Snapshot) TotalCalls() uint64 {
	var n uint64
	for op := Op(0); op < NumOps; op++ {
		n += s.Ops[op].Calls
	}
	return n
}

// TotalLatNs returns the extrapolated total in-FS latency across all
// classes in nanoseconds.
func (s Snapshot) TotalLatNs() uint64 {
	var n uint64
	for op := Op(0); op < NumOps; op++ {
		n += s.Ops[op].EstTotalLatNs()
	}
	return n
}

func fmtNs(ns uint64) string {
	return time.Duration(ns).Round(10 * time.Nanosecond).String()
}

func fmtBytes(b float64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.1fM", b/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fK", b/(1<<10))
	default:
		return fmt.Sprintf("%.0fB", b)
	}
}

// WriteTable renders the snapshot as the per-op breakdown table (the Fig
// 10-style view): calls, errors, mean/p50/p99 latency (interpolated
// percentiles), and per-call flush, fence and non-temporal-byte
// attribution, plus the share of total in-FS time. Classes with zero calls
// are omitted.
func (s Snapshot) WriteTable(w io.Writer) {
	totalLat := s.TotalLatNs()
	fmt.Fprintf(w, "%-10s %10s %7s %10s %10s %10s %9s %9s %9s %7s\n",
		"op", "calls", "errs", "mean", "p50", "p99", "flush/op", "fence/op", "nt/op", "fs%")
	for op := Op(0); op < NumOps; op++ {
		o := s.Ops[op]
		if o.Calls == 0 {
			continue
		}
		share := 0.0
		if totalLat > 0 {
			share = 100 * float64(o.EstTotalLatNs()) / float64(totalLat)
		}
		fmt.Fprintf(w, "%-10s %10d %7d %10s %10s %10s %9.2f %9.2f %9s %6.1f%%\n",
			op, o.Calls, o.Errors,
			fmtNs(o.MeanNs()), fmtNs(o.Hist.Percentile(0.50)), fmtNs(o.Hist.Percentile(0.99)),
			o.PerCall(o.Pmem.Flushes), o.PerCall(o.Pmem.Fences),
			fmtBytes(o.PerCall(o.Pmem.NTBytes)), share)
	}
	fmt.Fprintf(w, "total: %d calls, %s in-FS", s.TotalCalls(), fmtNs(totalLat))
	if s.SamplePeriod > 1 {
		fmt.Fprintf(w, " (latency/pmem sampled 1/%d)", s.SamplePeriod)
	}
	fmt.Fprintln(w)
	if len(s.Shards) > 0 {
		fmt.Fprintf(w, "shards:")
		for _, sh := range s.Shards {
			pct := 0.0
			if sh.Gets > 0 {
				pct = 100 * float64(sh.Contended) / float64(sh.Gets)
			}
			fmt.Fprintf(w, " %s=%d/%d contended (%.2f%%)", sh.Name, sh.Contended, sh.Gets, pct)
		}
		fmt.Fprintln(w)
	}
	if s.Device != (Delta{}) {
		fmt.Fprintf(w, "device: %d flushes, %d fences, %s NT, %s stored, %s loaded\n",
			s.Device.Flushes, s.Device.Fences,
			fmtBytes(float64(s.Device.NTBytes)), fmtBytes(float64(s.Device.StoreBytes)),
			fmtBytes(float64(s.Device.LoadBytes)))
	}
	anyWait := false
	for c := LockClass(0); c < NumLockClasses; c++ {
		if s.LockWaits[c].Waits > 0 {
			anyWait = true
		}
	}
	if anyWait {
		fmt.Fprintf(w, "lock-wait:")
		for c := LockClass(0); c < NumLockClasses; c++ {
			lw := s.LockWaits[c]
			if lw.Waits == 0 {
				continue
			}
			fmt.Fprintf(w, " %s=%d waits (mean %s, p99 %s)",
				c, lw.Waits, fmtNs(lw.MeanNs()), fmtNs(lw.Hist.Percentile(0.99)))
		}
		fmt.Fprintln(w)
	}
	anyEvent := false
	for e := Event(0); e < NumEvents; e++ {
		if s.Events[e] > 0 {
			anyEvent = true
		}
	}
	if anyEvent {
		fmt.Fprintf(w, "events:")
		for e := Event(0); e < NumEvents; e++ {
			if s.Events[e] > 0 {
				fmt.Fprintf(w, " %s=%d", e, s.Events[e])
			}
		}
		fmt.Fprintln(w)
	}
}

// Counter is one labeled value in a phase report.
type Counter struct {
	Name  string
	Value uint64
}

// Phase is a named counter snapshot taken at one boundary of a multi-step
// job (a recovery pass, an fsck stage). It reuses the snapshot vocabulary —
// plain diffable values plus an attributed NVMM traffic Delta — so offline
// tools report with the same types the live FS exposes.
type Phase struct {
	Name     string
	Elapsed  time.Duration
	Counters []Counter
	Pmem     Delta
}

// WritePhases renders a phase report, one block per phase, skipping
// zero-valued counters.
func WritePhases(w io.Writer, phases []Phase) {
	for _, p := range phases {
		fmt.Fprintf(w, "%-10s %12v", p.Name, p.Elapsed.Round(time.Microsecond))
		for _, c := range p.Counters {
			if c.Value != 0 {
				fmt.Fprintf(w, "  %s=%d", c.Name, c.Value)
			}
		}
		if p.Pmem != (Delta{}) {
			fmt.Fprintf(w, "  [%d flushes, %d fences, %s NT]",
				p.Pmem.Flushes, p.Pmem.Fences, fmtBytes(float64(p.Pmem.NTBytes)))
		}
		fmt.Fprintln(w)
	}
}
