// Package tarbench reproduces the paper's tar benchmark (Fig 11): packing a
// Linux-source-like tree into one archive inside the file system, and
// unpacking it back out. Pack stresses path resolution plus large
// sequential writes; unpack stresses create/write plus the per-file
// attribute syscalls (chmod/utimes) that the paper notes make kernel file
// systems slow. No fsync is issued, as in the paper.
package tarbench

import (
	"archive/tar"
	"fmt"
	"io"
	"time"

	"simurgh/internal/corpus"
	"simurgh/internal/fsapi"
)

// Result reports one pack or unpack run.
type Result struct {
	FS      string
	Files   uint64
	Bytes   uint64
	Elapsed time.Duration
}

// MBPerSec is the figure's throughput metric.
func (r Result) MBPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Bytes) / (1 << 20) / r.Elapsed.Seconds()
}

// fdWriter adapts an fsapi descriptor to io.Writer.
type fdWriter struct {
	c  fsapi.Client
	fd fsapi.FD
}

func (w fdWriter) Write(p []byte) (int, error) { return w.c.Write(w.fd, p) }

// fdReader adapts an fsapi descriptor to io.Reader.
type fdReader struct {
	c  fsapi.Client
	fd fsapi.FD
}

func (r fdReader) Read(p []byte) (int, error) { return r.c.Read(r.fd, p) }

// Prepare generates the source tree under /src.
func Prepare(fs fsapi.FileSystem, spec corpus.Spec) (corpus.Stats, error) {
	c, err := fs.Attach(fsapi.Root)
	if err != nil {
		return corpus.Stats{}, err
	}
	if err := c.Mkdir("/src", 0o755); err != nil {
		return corpus.Stats{}, err
	}
	return corpus.Generate(c, "/src", spec)
}

// Pack archives /src into /archive.tar and reports throughput.
func Pack(fs fsapi.FileSystem) (Result, error) {
	c, err := fs.Attach(fsapi.Root)
	if err != nil {
		return Result{}, err
	}
	res, err := PackWithClient(c)
	res.FS = fs.Name()
	return res, err
}

// PackWithClient packs through an explicit client (the breakdown
// experiment wraps it in a timing decorator).
func PackWithClient(c fsapi.Client) (Result, error) {
	var res Result
	start := time.Now()
	afd, err := c.Open("/archive.tar", fsapi.OCreate|fsapi.OWronly|fsapi.OTrunc|fsapi.OAppend, 0o644)
	if err != nil {
		return res, err
	}
	tw := tar.NewWriter(fdWriter{c, afd})
	buf := make([]byte, 256<<10)
	err = corpus.Walk(c, "/src", func(path string, st fsapi.Stat) error {
		hdr := &tar.Header{
			Name: path[1:], Mode: int64(st.Mode & fsapi.ModePermMask),
			Size:    int64(st.Size),
			ModTime: time.Unix(0, st.Mtime),
		}
		if err := tw.WriteHeader(hdr); err != nil {
			return err
		}
		fd, err := c.Open(path, fsapi.ORdonly, 0)
		if err != nil {
			return err
		}
		defer c.Close(fd)
		remaining := st.Size
		for remaining > 0 {
			n, err := c.Read(fd, buf)
			if n == 0 || err == io.EOF {
				break
			}
			if err != nil {
				return err
			}
			if _, err := tw.Write(buf[:n]); err != nil {
				return err
			}
			remaining -= uint64(n)
			res.Bytes += uint64(n)
		}
		res.Files++
		return nil
	})
	if err != nil {
		return res, err
	}
	if err := tw.Close(); err != nil {
		return res, err
	}
	c.Close(afd)
	res.Elapsed = time.Since(start)
	return res, nil
}

// Unpack extracts /archive.tar into /unpacked, issuing the same per-file
// attribute updates (chmod + utimes) a real tar does.
func Unpack(fs fsapi.FileSystem) (Result, error) {
	c, err := fs.Attach(fsapi.Root)
	if err != nil {
		return Result{}, err
	}
	res := Result{FS: fs.Name()}
	start := time.Now()
	if err := c.Mkdir("/unpacked", 0o755); err != nil && err != fsapi.ErrExist {
		return res, err
	}
	afd, err := c.Open("/archive.tar", fsapi.ORdonly, 0)
	if err != nil {
		return res, err
	}
	defer c.Close(afd)
	tr := tar.NewReader(fdReader{c, afd})
	buf := make([]byte, 256<<10)
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return res, err
		}
		path := "/unpacked/" + hdr.Name
		if err := mkdirs(c, path); err != nil {
			return res, err
		}
		fd, err := c.Create(path, uint32(hdr.Mode)&fsapi.ModePermMask)
		if err != nil {
			return res, err
		}
		for {
			n, err := tr.Read(buf)
			if n > 0 {
				if _, werr := c.Write(fd, buf[:n]); werr != nil {
					c.Close(fd)
					return res, werr
				}
				res.Bytes += uint64(n)
			}
			if err == io.EOF {
				break
			}
			if err != nil {
				c.Close(fd)
				return res, err
			}
		}
		c.Close(fd)
		// tar restores mode and times per file: extra metadata syscalls.
		if err := c.Chmod(path, uint32(hdr.Mode)&fsapi.ModePermMask); err != nil {
			return res, err
		}
		if err := c.Utimes(path, hdr.ModTime.UnixNano(), hdr.ModTime.UnixNano()); err != nil {
			return res, err
		}
		res.Files++
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// mkdirs creates all parent directories of path.
func mkdirs(c fsapi.Client, path string) error {
	comps, err := fsapi.SplitPath(path)
	if err != nil {
		return err
	}
	cur := ""
	for _, comp := range comps[:len(comps)-1] {
		cur += "/" + comp
		if err := c.Mkdir(cur, 0o755); err != nil && err != fsapi.ErrExist {
			return err
		}
	}
	return nil
}

// Verify compares the unpacked tree against the source (test support).
func Verify(fs fsapi.FileSystem) error {
	c, err := fs.Attach(fsapi.Root)
	if err != nil {
		return err
	}
	var srcFiles, dstFiles uint64
	var srcBytes, dstBytes uint64
	if err := corpus.Walk(c, "/src", func(path string, st fsapi.Stat) error {
		srcFiles++
		srcBytes += st.Size
		return nil
	}); err != nil {
		return err
	}
	if err := corpus.Walk(c, "/unpacked/src", func(path string, st fsapi.Stat) error {
		dstFiles++
		dstBytes += st.Size
		return nil
	}); err != nil {
		return err
	}
	if srcFiles != dstFiles || srcBytes != dstBytes {
		return fmt.Errorf("tar round trip mismatch: src %d files/%d bytes, dst %d files/%d bytes",
			srcFiles, srcBytes, dstFiles, dstBytes)
	}
	return nil
}
