package tarbench

import (
	"testing"

	"simurgh/internal/bench"
	"simurgh/internal/corpus"
)

func TestPackUnpackRoundTrip(t *testing.T) {
	fs, err := bench.MakeFS("simurgh", 512<<20)
	if err != nil {
		t.Fatal(err)
	}
	spec := corpus.Spec{Depth: 2, Fanout: 3, FilesPerDir: 4, MeanFileSize: 4096, Seed: 1}
	st, err := Prepare(fs, spec)
	if err != nil {
		t.Fatal(err)
	}
	if st.Files == 0 || st.Dirs == 0 {
		t.Fatalf("empty corpus: %+v", st)
	}
	pack, err := Pack(fs)
	if err != nil {
		t.Fatal(err)
	}
	if pack.Files != st.Files {
		t.Fatalf("packed %d files, corpus has %d", pack.Files, st.Files)
	}
	if pack.MBPerSec() <= 0 {
		t.Fatal("no pack throughput")
	}
	unpack, err := Unpack(fs)
	if err != nil {
		t.Fatal(err)
	}
	if unpack.Files != st.Files {
		t.Fatalf("unpacked %d files, want %d", unpack.Files, st.Files)
	}
	if unpack.Bytes != pack.Bytes {
		t.Fatalf("unpacked %d bytes, packed %d", unpack.Bytes, pack.Bytes)
	}
	if err := Verify(fs); err != nil {
		t.Fatal(err)
	}
}

func TestPackOnAllFS(t *testing.T) {
	spec := corpus.Spec{Depth: 1, Fanout: 2, FilesPerDir: 3, MeanFileSize: 2048, Seed: 2}
	for _, name := range bench.FSNames {
		fs, err := bench.MakeFS(name, 256<<20)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Prepare(fs, spec); err != nil {
			t.Fatalf("%s prepare: %v", name, err)
		}
		if _, err := Pack(fs); err != nil {
			t.Fatalf("%s pack: %v", name, err)
		}
		if _, err := Unpack(fs); err != nil {
			t.Fatalf("%s unpack: %v", name, err)
		}
		if err := Verify(fs); err != nil {
			t.Fatalf("%s verify: %v", name, err)
		}
	}
}
