package gitbench

import (
	"testing"

	"simurgh/internal/bench"
	"simurgh/internal/corpus"
	"simurgh/internal/fsapi"
)

func setupRepo(t *testing.T, fsName string) (*Repo, corpus.Stats) {
	t.Helper()
	fs, err := bench.MakeFS(fsName, 512<<20)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := fs.Attach(fsapi.Root)
	if err := c.Mkdir("/src", 0o755); err != nil {
		t.Fatal(err)
	}
	st, err := corpus.Generate(c, "/src", corpus.Spec{Depth: 2, Fanout: 2, FilesPerDir: 4, MeanFileSize: 2048, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	repo, err := Init(fs, "/repo", "/src")
	if err != nil {
		t.Fatal(err)
	}
	return repo, st
}

func TestAddCommitResetCycle(t *testing.T) {
	repo, st := setupRepo(t, "simurgh")
	add, err := repo.Add()
	if err != nil {
		t.Fatal(err)
	}
	if add.Files != st.Files {
		t.Fatalf("added %d files, corpus has %d", add.Files, st.Files)
	}
	commit, err := repo.Commit("initial")
	if err != nil {
		t.Fatal(err)
	}
	if commit.Files != st.Files {
		t.Fatalf("commit stated %d files, want %d", commit.Files, st.Files)
	}
	if err := repo.DeleteWorkTree(); err != nil {
		t.Fatal(err)
	}
	// Everything tracked must be gone.
	for path := range repo.idx {
		if _, err := repo.c.Stat(path); err == nil {
			t.Fatalf("%s survives DeleteWorkTree", path)
		}
	}
	reset, err := repo.Reset()
	if err != nil {
		t.Fatal(err)
	}
	if reset.Files != st.Files {
		t.Fatalf("reset restored %d files, want %d", reset.Files, st.Files)
	}
	// Contents must round-trip through the object store.
	for path, h := range repo.idx {
		fst, err := repo.c.Stat(path)
		if err != nil {
			t.Fatalf("restored %s: %v", path, err)
		}
		data := make([]byte, fst.Size)
		fd, _ := repo.c.Open(path, fsapi.ORdonly, 0)
		n, _ := repo.c.Pread(fd, data, 0)
		repo.c.Close(fd)
		if hashOf(data[:n]) != h {
			t.Fatalf("%s content hash mismatch after reset", path)
		}
	}
}

func TestAddIsIdempotentOnObjects(t *testing.T) {
	repo, _ := setupRepo(t, "simurgh")
	a1, err := repo.Add()
	if err != nil {
		t.Fatal(err)
	}
	a2, err := repo.Add()
	if err != nil {
		t.Fatal(err)
	}
	if a1.Files != a2.Files {
		t.Fatalf("add counts differ: %d vs %d", a1.Files, a2.Files)
	}
}

func TestGitCycleOnAllFS(t *testing.T) {
	for _, name := range bench.FSNames {
		repo, st := setupRepo(t, name)
		if _, err := repo.Add(); err != nil {
			t.Fatalf("%s add: %v", name, err)
		}
		if _, err := repo.Commit("c"); err != nil {
			t.Fatalf("%s commit: %v", name, err)
		}
		if err := repo.DeleteWorkTree(); err != nil {
			t.Fatalf("%s delete: %v", name, err)
		}
		reset, err := repo.Reset()
		if err != nil {
			t.Fatalf("%s reset: %v", name, err)
		}
		if reset.Files != st.Files {
			t.Fatalf("%s: reset %d files, want %d", name, reset.Files, st.Files)
		}
	}
}
