// Package gitbench reproduces the paper's git benchmark (Fig 12): add,
// commit, and reset --hard over a Linux-source-like tree, implemented as a
// minimal content-addressable object store with the same file-system access
// pattern as git: blob objects written under objects/xx/..., an index file,
// tree and commit objects, and a working-tree restore on reset. Commit is
// metadata heavy (it stats every tracked file), which is where the paper
// sees the largest file-system differences.
package gitbench

import (
	"bytes"
	"compress/zlib"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"simurgh/internal/corpus"
	"simurgh/internal/fsapi"
)

// Repo is an open repository inside a file system under test.
type Repo struct {
	c    fsapi.Client
	dir  string            // repo root, e.g. "/repo"
	work string            // working tree root, e.g. "/src"
	idx  map[string]string // path -> blob hash
}

// Result measures one git operation.
type Result struct {
	Op      string
	FS      string
	Files   uint64
	Bytes   uint64
	Elapsed time.Duration
}

// FilesPerSec is the reported throughput.
func (r Result) FilesPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Files) / r.Elapsed.Seconds()
}

// Init creates the repository layout.
func Init(fs fsapi.FileSystem, repoDir, workDir string) (*Repo, error) {
	c, err := fs.Attach(fsapi.Root)
	if err != nil {
		return nil, err
	}
	r := &Repo{c: c, dir: repoDir, work: workDir, idx: map[string]string{}}
	for _, d := range []string{repoDir, repoDir + "/objects", repoDir + "/refs", repoDir + "/refs/heads"} {
		if err := c.Mkdir(d, 0o755); err != nil && err != fsapi.ErrExist {
			return nil, err
		}
	}
	return r, nil
}

// WithClient returns a view of the repository that performs its file-system
// calls through c (sharing the index); used to wrap a timing client.
func (r *Repo) WithClient(c fsapi.Client) *Repo {
	return &Repo{c: c, dir: r.dir, work: r.work, idx: r.idx}
}

func hashOf(data []byte) string {
	h := sha256.Sum256(data)
	return hex.EncodeToString(h[:20])
}

// writeObject stores data under objects/xx/rest (compressed), like git.
func (r *Repo) writeObject(hash string, data []byte) error {
	dir := r.dir + "/objects/" + hash[:2]
	path := dir + "/" + hash[2:]
	if _, err := r.c.Stat(path); err == nil {
		return nil // object already present
	}
	if err := r.c.Mkdir(dir, 0o755); err != nil && err != fsapi.ErrExist {
		return err
	}
	var buf bytes.Buffer
	zw := zlib.NewWriter(&buf)
	zw.Write(data)
	zw.Close()
	fd, err := r.c.Create(path, 0o444)
	if err != nil {
		return err
	}
	defer r.c.Close(fd)
	_, err = r.c.Write(fd, buf.Bytes())
	return err
}

// readObject loads and decompresses an object.
func (r *Repo) readObject(hash string) ([]byte, error) {
	path := r.dir + "/objects/" + hash[:2] + "/" + hash[2:]
	fd, err := r.c.Open(path, fsapi.ORdonly, 0)
	if err != nil {
		return nil, err
	}
	defer r.c.Close(fd)
	var raw bytes.Buffer
	buf := make([]byte, 64<<10)
	for {
		n, err := r.c.Read(fd, buf)
		if n > 0 {
			raw.Write(buf[:n])
		}
		if err != nil {
			break
		}
	}
	zr, err := zlib.NewReader(&raw)
	if err != nil {
		return nil, err
	}
	defer zr.Close()
	return io.ReadAll(zr)
}

// Add hashes every file in the working tree, stores missing blobs, and
// rewrites the index.
func (r *Repo) Add() (Result, error) {
	res := Result{Op: "add"}
	start := time.Now()
	err := corpus.Walk(r.c, r.work, func(path string, st fsapi.Stat) error {
		fd, err := r.c.Open(path, fsapi.ORdonly, 0)
		if err != nil {
			return err
		}
		data := make([]byte, st.Size)
		n, _ := r.c.Pread(fd, data, 0)
		r.c.Close(fd)
		data = data[:n]
		h := hashOf(data)
		if err := r.writeObject(h, data); err != nil {
			return err
		}
		r.idx[path] = h
		res.Files++
		res.Bytes += uint64(n)
		return nil
	})
	if err != nil {
		return res, err
	}
	if err := r.writeIndex(); err != nil {
		return res, err
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

func (r *Repo) writeIndex() error {
	paths := make([]string, 0, len(r.idx))
	for p := range r.idx {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	var sb strings.Builder
	for _, p := range paths {
		fmt.Fprintf(&sb, "%s %s\n", r.idx[p], p)
	}
	tmp := r.dir + "/index.tmp"
	fd, err := r.c.Create(tmp, 0o644)
	if err != nil {
		return err
	}
	if _, err := r.c.Write(fd, []byte(sb.String())); err != nil {
		r.c.Close(fd)
		return err
	}
	r.c.Close(fd)
	return r.c.Rename(tmp, r.dir+"/index")
}

// Commit stats every tracked file (the metadata-heavy phase the paper
// highlights), builds tree objects bottom-up, writes the commit object, and
// updates the branch ref.
func (r *Repo) Commit(msg string) (Result, error) {
	res := Result{Op: "commit"}
	start := time.Now()
	// git retrieves the metadata of all files on commit.
	trees := map[string][]string{} // dir -> entry lines
	for path, h := range r.idx {
		st, err := r.c.Stat(path)
		if err != nil {
			return res, err
		}
		dir := parentOf(path)
		trees[dir] = append(trees[dir],
			fmt.Sprintf("blob %o %s %s %d", st.Mode&fsapi.ModePermMask, h, baseOf(path), st.Size))
		res.Files++
	}
	// Build tree objects strictly bottom-up by depth, so every directory's
	// entry list is complete (all child trees hashed) before it is hashed.
	all := map[string]bool{r.work: true}
	maxDepth := 0
	for d := range trees {
		for cur := d; ; cur = parentOf(cur) {
			all[cur] = true
			if dd := depth(cur); dd > maxDepth {
				maxDepth = dd
			}
			if cur == r.work || cur == "/" {
				break
			}
		}
	}
	treeHash := map[string]string{}
	for dd := maxDepth; dd >= 0; dd-- {
		var level []string
		for d := range all {
			if depth(d) == dd {
				level = append(level, d)
			}
		}
		sort.Strings(level)
		for _, d := range level {
			lines := trees[d]
			sort.Strings(lines)
			content := []byte(strings.Join(lines, "\n"))
			h := hashOf(content)
			if err := r.writeObject(h, content); err != nil {
				return res, err
			}
			treeHash[d] = h
			if d != r.work && d != "/" {
				trees[parentOf(d)] = append(trees[parentOf(d)],
					fmt.Sprintf("tree %s %s", h, baseOf(d)))
			}
		}
	}
	root := treeHash[r.work]
	commit := fmt.Sprintf("tree %s\nmessage %s\ntime %d\n", root, msg, time.Now().UnixNano())
	ch := hashOf([]byte(commit))
	if err := r.writeObject(ch, []byte(commit)); err != nil {
		return res, err
	}
	// Update the ref via write + rename, like git's lockfile protocol.
	tmp := r.dir + "/refs/heads/main.lock"
	fd, err := r.c.Create(tmp, 0o644)
	if err != nil {
		return res, err
	}
	r.c.Write(fd, []byte(ch+"\n"))
	r.c.Close(fd)
	if err := r.c.Rename(tmp, r.dir+"/refs/heads/main"); err != nil {
		return res, err
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// DeleteWorkTree removes all tracked files (the paper deletes all files
// between commit and reset).
func (r *Repo) DeleteWorkTree() error {
	for path := range r.idx {
		if err := r.c.Unlink(path); err != nil && err != fsapi.ErrNotExist {
			return err
		}
	}
	return nil
}

// Reset restores the working tree from the index (reset --hard).
func (r *Repo) Reset() (Result, error) {
	res := Result{Op: "reset"}
	start := time.Now()
	for path, h := range r.idx {
		data, err := r.readObject(h)
		if err != nil {
			return res, err
		}
		fd, err := r.c.Create(path, 0o644)
		if err != nil {
			return res, err
		}
		if _, err := r.c.Write(fd, data); err != nil {
			r.c.Close(fd)
			return res, err
		}
		r.c.Close(fd)
		res.Files++
		res.Bytes += uint64(len(data))
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

func parentOf(p string) string {
	i := strings.LastIndexByte(p, '/')
	if i <= 0 {
		return "/"
	}
	return p[:i]
}

func baseOf(p string) string {
	i := strings.LastIndexByte(p, '/')
	return p[i+1:]
}

func depth(p string) int { return strings.Count(p, "/") }
