package wire

import (
	"errors"
	"io"

	"simurgh/internal/fsapi"
)

// Server-side conditions that have no fsapi equivalent but must round-trip
// the wire like the file-system sentinels.
var (
	// ErrOverload reports that the server's worker queue or connection
	// limit rejected the request; the client may retry.
	ErrOverload = errors.New("wire: server overloaded")
	// ErrShutdown reports that the server is draining and no longer
	// accepts new work.
	ErrShutdown = errors.New("wire: server shutting down")
	// ErrNotPrimary reports that the contacted server is a replication
	// backup (or candidate) and cannot serve the request; the redirect
	// frame or message names the primary to contact instead.
	ErrNotPrimary = errors.New("wire: not the primary")
	// ErrMoved reports that the shard owning the request's path is no
	// longer served by the contacted node; the client must refetch the
	// shard map and retry against the current owner.
	ErrMoved = errors.New("wire: shard moved")
)

// ErrCode is the wire form of an error. Every fsapi sentinel has a code so
// errors.Is works across the network; CodeOther carries anything else as an
// opaque message.
type ErrCode uint8

const (
	CodeOK ErrCode = iota
	CodeNotExist
	CodeExist
	CodeNotDir
	CodeIsDir
	CodeNotEmpty
	CodePerm
	CodeBadFD
	CodeNameTooLong
	CodeNoSpace
	CodeInval
	CodeLoop
	CodeCrossDir
	CodeReadOnly
	CodeWriteOnly
	CodeOverload
	CodeShutdown
	CodeNotPrimary
	CodeMoved
	CodeEOF
	CodeOther
	// NumErrCodes bounds the ErrCode enum.
	NumErrCodes
)

// sentinels maps each code to the canonical error it round-trips.
// CodeOther maps to nil: its errors reconstruct as plain RemoteErrors.
var sentinels = [NumErrCodes]error{
	CodeNotExist:    fsapi.ErrNotExist,
	CodeExist:       fsapi.ErrExist,
	CodeNotDir:      fsapi.ErrNotDir,
	CodeIsDir:       fsapi.ErrIsDir,
	CodeNotEmpty:    fsapi.ErrNotEmpty,
	CodePerm:        fsapi.ErrPerm,
	CodeBadFD:       fsapi.ErrBadFD,
	CodeNameTooLong: fsapi.ErrNameTooLong,
	CodeNoSpace:     fsapi.ErrNoSpace,
	CodeInval:       fsapi.ErrInval,
	CodeLoop:        fsapi.ErrLoop,
	CodeCrossDir:    fsapi.ErrCrossDir,
	CodeReadOnly:    fsapi.ErrReadOnly,
	CodeWriteOnly:   fsapi.ErrWriteOnly,
	CodeOverload:    ErrOverload,
	CodeShutdown:    ErrShutdown,
	CodeNotPrimary:  ErrNotPrimary,
	CodeMoved:       ErrMoved,
	CodeEOF:         io.EOF,
}

// CodeOf maps an error to its wire code (CodeOK for nil).
func CodeOf(err error) ErrCode {
	if err == nil {
		return CodeOK
	}
	for code := CodeNotExist; code < CodeOther; code++ {
		if errors.Is(err, sentinels[code]) {
			return code
		}
	}
	return CodeOther
}

// Sentinel returns the canonical error for c, or nil if c has none
// (CodeOK, CodeOther, out of range).
func (c ErrCode) Sentinel() error {
	if c < NumErrCodes {
		return sentinels[c]
	}
	return nil
}

// Wrap reconstructs the error a response carried: the canonical sentinel
// when the server sent no extra detail, otherwise a RemoteError that keeps
// the server's message while still matching the sentinel via errors.Is.
func (c ErrCode) Wrap(msg string) error {
	if c == CodeOK {
		return nil
	}
	s := c.Sentinel()
	if msg == "" || (s != nil && msg == s.Error()) {
		if s != nil {
			return s
		}
		return &RemoteError{Code: c, Msg: "wire: remote error"}
	}
	return &RemoteError{Code: c, Msg: msg}
}

// MsgFor returns the message a response should carry for err: empty when
// the code's canonical text already says it all (the common case, saving
// bytes), the full text otherwise.
func MsgFor(code ErrCode, err error) string {
	if err == nil {
		return ""
	}
	if s := code.Sentinel(); s != nil && err.Error() == s.Error() {
		return ""
	}
	return err.Error()
}

// RemoteError is a file-system error decoded from the wire with a
// server-side detail message. It unwraps to the code's canonical sentinel,
// so errors.Is(err, fsapi.ErrPerm) works across the network.
type RemoteError struct {
	Code ErrCode
	Msg  string
}

// Error returns the server's message.
func (e *RemoteError) Error() string { return e.Msg }

// Unwrap exposes the canonical sentinel for errors.Is.
func (e *RemoteError) Unwrap() error { return e.Code.Sentinel() }
