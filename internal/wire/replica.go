// Replication wire format. The primary assigns every state-changing
// operation a monotonically increasing log sequence number and ships the
// resulting entries to its backups in KindReplicate frames — batched
// exactly like client traffic, one frame amortizing many entries. A backup
// acknowledges the highest sequence it has applied with KindRepAck; the
// primary acknowledges clients only once a quorum of backups has applied
// their operations.
//
// A backup enlists by sending KindJoin on a fresh connection (instead of
// KindAttach). The primary answers KindJoinOK with the current epoch, the
// snapshot's log position and size, and a manifest of the sessions that
// already exist; it then streams the volume image in KindSnapChunk frames
// and follows with the live log. Entries carry the originating session and
// — for descriptor-creating ops — the primary's resulting FD, so the
// backup replays each session against a shadow client and maps primary
// descriptors to its own.
package wire

import (
	"fmt"

	"simurgh/internal/fsapi"
)

// Replicated reports whether an operation must travel the replication log.
// Everything that mutates the volume or a session's state (open-file table,
// file offsets) replicates; pure reads (Pread, Stat, Lstat, Fstat,
// Readlink, ReadDir) and Fsync (its durability effect is subsumed by the
// per-op quorum ack) execute on the primary alone. OpRead replicates even
// though it returns data, because it moves the descriptor's offset.
func (o Op) Replicated() bool {
	switch o {
	case OpCreate, OpOpen, OpClose, OpRead, OpWrite, OpPwrite, OpSeek,
		OpFtruncate, OpFallocate, OpMkdir, OpRmdir, OpUnlink, OpRename,
		OpSymlink, OpLink, OpChmod, OpUtimes, OpDetach:
		return true
	}
	return false
}

// EntryKind discriminates log entries.
type EntryKind uint8

const (
	// EntryOp replays one client request against the session's shadow.
	EntryOp EntryKind = 1
	// EntryAttach creates the session's shadow client with its credentials.
	EntryAttach EntryKind = 2
	// EntryPwrite is the compact form of an OpPwrite EntryOp: positional
	// writes dominate replicated traffic, carry no path and produce no
	// descriptor, so the entry ships only id/fd/offset/data instead of the
	// full request framing plus an unused ResFD. Decoding materializes a
	// normal OpPwrite Request so apply paths stay uniform.
	EntryPwrite EntryKind = 3
)

// Entry is one replicated log record.
type Entry struct {
	// Seq is the log sequence number (1-based, no gaps).
	Seq uint64
	// Sess identifies the originating session; backups key shadows by it.
	Sess uint64
	// Kind selects which of the remaining fields apply.
	Kind EntryKind
	// Cred is the attaching session's identity (EntryAttach only).
	Cred fsapi.Cred
	// Req is the replayed request (EntryOp only).
	Req Request
	// ResFD is the primary's resulting descriptor for OpCreate/OpOpen, so
	// the backup can map primary FDs to its shadow's FDs without relying on
	// identical allocation order.
	ResFD fsapi.FD
}

// AppendEntry encodes e onto dst and returns the extended slice.
func AppendEntry(dst []byte, e *Entry) []byte {
	dst = appendU64(dst, e.Seq)
	dst = appendU64(dst, e.Sess)
	dst = append(dst, byte(e.Kind))
	switch e.Kind {
	case EntryAttach:
		dst = appendU32(dst, e.Cred.UID)
		dst = appendU32(dst, e.Cred.GID)
	case EntryOp:
		dst = appendU32(dst, uint32(e.ResFD))
		dst = AppendRequest(dst, &e.Req)
	case EntryPwrite:
		dst = appendU32(dst, e.Req.ID)
		dst = appendU32(dst, uint32(e.Req.FD))
		dst = appendU64(dst, e.Req.Off)
		dst = appendBytes(dst, e.Req.Data)
	}
	return dst
}

// DecodeEntry decodes one entry from b, returning the remaining bytes.
// Variable-length request fields are copied, safe to retain.
func DecodeEntry(b []byte) (Entry, []byte, error) {
	rd := reader{b: b}
	e, err := decodeEntry(&rd)
	if err != nil {
		return Entry{}, nil, err
	}
	return e, rd.b, nil
}

func decodeEntry(rd *reader) (Entry, error) {
	var e Entry
	e.Seq = rd.u64()
	e.Sess = rd.u64()
	e.Kind = EntryKind(rd.u8())
	if rd.err != nil {
		return Entry{}, rd.err
	}
	switch e.Kind {
	case EntryAttach:
		e.Cred.UID = rd.u32()
		e.Cred.GID = rd.u32()
		if rd.err != nil {
			return Entry{}, rd.err
		}
		return e, nil
	case EntryOp:
		e.ResFD = fsapi.FD(rd.u32())
		if rd.err != nil {
			return Entry{}, rd.err
		}
		req, err := decodeRequest(rd)
		if err != nil {
			return Entry{}, err
		}
		e.Req = req
		return e, nil
	case EntryPwrite:
		e.Req.Op = OpPwrite
		e.Req.ID = rd.u32()
		e.Req.FD = fsapi.FD(rd.u32())
		e.Req.Off = rd.u64()
		e.Req.Data = rd.bytes(MaxIO)
		if rd.err != nil {
			return Entry{}, rd.err
		}
		return e, nil
	default:
		return Entry{}, fmt.Errorf("%w: bad entry kind %d", ErrBadMessage, e.Kind)
	}
}

// DecodeEntries decodes a KindReplicate payload (at most MaxBatch entries).
func DecodeEntries(payload []byte) ([]Entry, error) {
	var ents []Entry
	for len(payload) > 0 {
		if len(ents) >= MaxBatch {
			return nil, fmt.Errorf("%w: replicate frame exceeds %d entries", ErrBadMessage, MaxBatch)
		}
		e, rest, err := DecodeEntry(payload)
		if err != nil {
			return nil, err
		}
		ents = append(ents, e)
		payload = rest
	}
	return ents, nil
}

// DecodeEntriesInto is the zero-allocation variant of DecodeEntries: it
// appends to dst (reusing capacity) and decoded request paths and write
// data ALIAS payload. The backup applies every entry before reading the
// next frame, so the aliased buffer is stable for exactly that window. dst
// is returned even on error so its capacity is never lost.
func DecodeEntriesInto(dst []Entry, payload []byte) ([]Entry, error) {
	rd := reader{b: payload, alias: true}
	for len(rd.b) > 0 {
		if len(dst) >= MaxBatch {
			return dst, fmt.Errorf("%w: replicate frame exceeds %d entries", ErrBadMessage, MaxBatch)
		}
		e, err := decodeEntry(&rd)
		if err != nil {
			return dst, err
		}
		dst = append(dst, e)
	}
	return dst, nil
}

// Join is the backup's enlistment request.
type Join struct {
	// Epoch is the highest epoch the backup has seen (zero for a fresh
	// backup). A primary with a lower epoch refuses the join: it is stale.
	Epoch uint64
	// Addr is the backup's advertised address, for diagnostics.
	Addr string
}

// AppendJoin encodes the KindJoin payload.
func AppendJoin(dst []byte, j *Join) []byte {
	dst = append(dst, magic[:]...)
	dst = append(dst, Version)
	dst = appendU64(dst, j.Epoch)
	dst = appendStr(dst, j.Addr)
	return dst
}

// ParseJoin validates and decodes a KindJoin payload.
func ParseJoin(payload []byte) (Join, error) {
	rd := reader{b: payload}
	var m [4]byte
	m[0], m[1], m[2], m[3] = rd.u8(), rd.u8(), rd.u8(), rd.u8()
	v := rd.u8()
	j := Join{Epoch: rd.u64(), Addr: rd.str(MaxPath)}
	if rd.err != nil {
		return Join{}, rd.err
	}
	if m != magic {
		return Join{}, fmt.Errorf("%w: bad magic", ErrBadMessage)
	}
	if v != Version {
		return Join{}, fmt.Errorf("%w: got %d, want %d", ErrVersion, v, Version)
	}
	return j, nil
}

// SessionInfo describes one pre-existing session in the join manifest. The
// backup creates its shadow with the right credentials, but descriptors
// those sessions opened before the snapshot cannot be transferred; their
// operations are skipped on this backup (see the replica package docs).
type SessionInfo struct {
	Sess uint64
	Cred fsapi.Cred
}

// JoinOK is the primary's answer to a join.
type JoinOK struct {
	// Epoch is the primary's current epoch.
	Epoch uint64
	// SnapSeq is the log position the snapshot captures; replication
	// resumes at SnapSeq+1.
	SnapSeq uint64
	// SnapSize is the total snapshot byte count that follows in
	// KindSnapChunk frames.
	SnapSize uint64
	// Sessions are the sessions alive at the snapshot.
	Sessions []SessionInfo
}

// AppendJoinOK encodes the KindJoinOK payload.
func AppendJoinOK(dst []byte, j *JoinOK) []byte {
	dst = appendU64(dst, j.Epoch)
	dst = appendU64(dst, j.SnapSeq)
	dst = appendU64(dst, j.SnapSize)
	dst = appendU32(dst, uint32(len(j.Sessions)))
	for i := range j.Sessions {
		dst = appendU64(dst, j.Sessions[i].Sess)
		dst = appendU32(dst, j.Sessions[i].Cred.UID)
		dst = appendU32(dst, j.Sessions[i].Cred.GID)
	}
	return dst
}

// sessionInfoSize is the encoded size of one manifest entry.
const sessionInfoSize = 8 + 4 + 4

// ParseJoinOK decodes a KindJoinOK payload.
func ParseJoinOK(payload []byte) (JoinOK, error) {
	rd := reader{b: payload}
	j := JoinOK{Epoch: rd.u64(), SnapSeq: rd.u64(), SnapSize: rd.u64()}
	n := int(rd.u32())
	if rd.err == nil && n > len(rd.b)/sessionInfoSize {
		return JoinOK{}, fmt.Errorf("%w: session count %d beyond payload", ErrBadMessage, n)
	}
	if rd.err == nil && n > 0 {
		j.Sessions = make([]SessionInfo, 0, n)
		for i := 0; i < n; i++ {
			j.Sessions = append(j.Sessions, SessionInfo{
				Sess: rd.u64(),
				Cred: fsapi.Cred{UID: rd.u32(), GID: rd.u32()},
			})
		}
	}
	if rd.err != nil {
		return JoinOK{}, rd.err
	}
	return j, nil
}

// SnapChunk is one piece of the volume snapshot.
type SnapChunk struct {
	Off  uint64
	Data []byte
}

// AppendSnapChunk encodes the KindSnapChunk payload.
func AppendSnapChunk(dst []byte, c *SnapChunk) []byte {
	dst = appendU64(dst, c.Off)
	return appendBytes(dst, c.Data)
}

// ParseSnapChunk decodes a KindSnapChunk payload.
func ParseSnapChunk(payload []byte) (SnapChunk, error) {
	rd := reader{b: payload}
	c := SnapChunk{Off: rd.u64(), Data: rd.bytes(MaxIO)}
	if rd.err != nil {
		return SnapChunk{}, rd.err
	}
	return c, nil
}

// Heartbeat is the primary's liveness beacon, echoed verbatim by the
// backup so the primary can measure the round trip.
type Heartbeat struct {
	// Epoch is the primary's epoch; a backup that has seen a higher one
	// ignores the beacon.
	Epoch uint64
	// Seq is the primary's last assigned sequence; the backup derives its
	// lag from it.
	Seq uint64
	// SentNs is the primary's send timestamp (opaque to the backup).
	SentNs uint64
}

// AppendHeartbeat encodes the KindHeartbeat payload.
func AppendHeartbeat(dst []byte, h *Heartbeat) []byte {
	dst = appendU64(dst, h.Epoch)
	dst = appendU64(dst, h.Seq)
	return appendU64(dst, h.SentNs)
}

// ParseHeartbeat decodes a KindHeartbeat payload.
func ParseHeartbeat(payload []byte) (Heartbeat, error) {
	rd := reader{b: payload}
	h := Heartbeat{Epoch: rd.u64(), Seq: rd.u64(), SentNs: rd.u64()}
	if rd.err != nil {
		return Heartbeat{}, rd.err
	}
	return h, nil
}

// RepAck acknowledges application of every entry up to Seq.
type RepAck struct {
	Epoch uint64
	Seq   uint64
}

// AppendRepAck encodes the KindRepAck payload.
func AppendRepAck(dst []byte, a *RepAck) []byte {
	dst = appendU64(dst, a.Epoch)
	return appendU64(dst, a.Seq)
}

// ParseRepAck decodes a KindRepAck payload.
func ParseRepAck(payload []byte) (RepAck, error) {
	rd := reader{b: payload}
	a := RepAck{Epoch: rd.u64(), Seq: rd.u64()}
	if rd.err != nil {
		return RepAck{}, rd.err
	}
	return a, nil
}

// Redirect tells a client which address serves the volume. Addr may be
// empty when the contacted node does not know a primary yet.
type Redirect struct {
	Epoch uint64
	Addr  string
}

// AppendRedirect encodes the KindRedirect payload.
func AppendRedirect(dst []byte, r *Redirect) []byte {
	dst = appendU64(dst, r.Epoch)
	return appendStr(dst, r.Addr)
}

// ParseRedirect decodes a KindRedirect payload.
func ParseRedirect(payload []byte) (Redirect, error) {
	rd := reader{b: payload}
	r := Redirect{Epoch: rd.u64(), Addr: rd.str(MaxPath)}
	if rd.err != nil {
		return Redirect{}, rd.err
	}
	return r, nil
}
