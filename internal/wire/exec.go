package wire

import "simurgh/internal/fsapi"

// Execute runs one decoded request against a client and builds its
// response. It is the single interpretation of the wire vocabulary in
// terms of fsapi, shared by the network server's batch workers and the
// replication layer's shadow replay (both must agree exactly, or replicas
// diverge). Unknown sizes were already bounded by the decoder. Read data is
// freshly allocated, so the response is safe to retain (the replication
// dedup cache depends on this).
func Execute(c fsapi.Client, req *Request) Response {
	resp, _ := ExecuteInto(c, req, nil)
	return resp
}

// ExecuteInto is Execute with a caller-owned read scratch buffer: read and
// pread responses land in scratch (grown as needed) and resp.Data aliases
// it. It returns the (possibly grown) scratch for reuse. The caller must
// not retain resp.Data past the scratch's next use — server workers encode
// the response into the reply frame before reusing it. Passing nil scratch
// allocates per read, which is exactly Execute.
func ExecuteInto(c fsapi.Client, req *Request, scratch []byte) (Response, []byte) {
	resp := Response{ID: req.ID, Op: req.Op}
	var err error
	switch req.Op {
	case OpCreate:
		resp.FD, err = c.Create(req.Path, req.Perm)
	case OpOpen:
		resp.FD, err = c.Open(req.Path, fsapi.OpenFlag(req.Flags), req.Perm)
	case OpClose:
		err = c.Close(req.FD)
	case OpRead:
		var p []byte
		p, scratch = readBuf(req.Size, scratch)
		var n int
		n, err = c.Read(req.FD, p)
		resp.Data = p[:n]
	case OpPread:
		var p []byte
		p, scratch = readBuf(req.Size, scratch)
		var n int
		n, err = c.Pread(req.FD, p, req.Off)
		resp.Data = p[:n]
	case OpWrite:
		var n int
		n, err = c.Write(req.FD, req.Data)
		resp.N = uint32(n)
	case OpPwrite:
		var n int
		n, err = c.Pwrite(req.FD, req.Data, req.Off)
		resp.N = uint32(n)
	case OpSeek:
		resp.Off, err = c.Seek(req.FD, int64(req.Off), int(req.Flags))
	case OpFsync:
		err = c.Fsync(req.FD)
	case OpFtruncate:
		err = c.Ftruncate(req.FD, req.Off)
	case OpFallocate:
		err = c.Fallocate(req.FD, req.Off)
	case OpFstat:
		resp.Stat, err = c.Fstat(req.FD)
	case OpStat:
		resp.Stat, err = c.Stat(req.Path)
	case OpLstat:
		resp.Stat, err = c.Lstat(req.Path)
	case OpMkdir:
		err = c.Mkdir(req.Path, req.Perm)
	case OpRmdir:
		err = c.Rmdir(req.Path)
	case OpUnlink:
		err = c.Unlink(req.Path)
	case OpRename:
		err = c.Rename(req.Path, req.Path2)
	case OpSymlink:
		err = c.Symlink(req.Path, req.Path2)
	case OpLink:
		err = c.Link(req.Path, req.Path2)
	case OpReadlink:
		resp.Str, err = c.Readlink(req.Path)
	case OpReadDir:
		resp.Dir, err = c.ReadDir(req.Path)
	case OpChmod:
		err = c.Chmod(req.Path, req.Perm)
	case OpUtimes:
		err = c.Utimes(req.Path, int64(req.Off), int64(req.Off2))
	case OpDetach:
		err = c.Detach()
	default:
		err = fsapi.ErrInval
	}
	if err != nil {
		resp.Code = CodeOf(err)
		resp.Msg = MsgFor(resp.Code, err)
		resp.Data, resp.Str, resp.Dir = nil, "", nil
		resp.Stat = fsapi.Stat{}
	}
	return resp, scratch
}

// readBuf carves a size-byte read destination out of scratch, growing it if
// needed; nil scratch stays nil so Execute keeps fresh-allocation
// semantics.
func readBuf(size uint32, scratch []byte) (p, out []byte) {
	n := int(size)
	if scratch == nil {
		return make([]byte, n), nil
	}
	if cap(scratch) < n {
		scratch = make([]byte, n)
	}
	return scratch[:n], scratch
}
