package wire

import (
	"fmt"

	"simurgh/internal/fsapi"
)

// Sharding frame payloads. The shard map itself (internal/shard) has its own
// codec; this file defines only the thin wire envelopes that move it around
// and the per-connection shard claim that lets a server fence attaches.

// Moved is the payload of a KindMoved frame (and the structured detail
// behind a CodeMoved response): the contacted node does not serve the shard
// the client asked for. Epoch is the map epoch under which the node is
// answering — a client holding an older map must refetch; Addr names one
// address of the shard's current owner group (may be empty if the node only
// knows the shard left). Shard echoes the claimed shard ID.
type Moved struct {
	Shard uint32
	Epoch uint64
	Addr  string
}

// AppendMoved encodes a Moved payload onto dst.
func AppendMoved(dst []byte, m *Moved) []byte {
	dst = appendU32(dst, m.Shard)
	dst = appendU64(dst, m.Epoch)
	return appendStr(dst, m.Addr)
}

// ParseMoved decodes a KindMoved payload.
func ParseMoved(payload []byte) (Moved, error) {
	rd := reader{b: payload}
	m := Moved{Shard: rd.u32(), Epoch: rd.u64(), Addr: rd.str(MaxPath)}
	if rd.err != nil {
		return Moved{}, rd.err
	}
	return m, nil
}

// AppendMapGet encodes a KindMapGet payload: the epoch the client already
// holds (zero for none). A node answers KindMapOK with the full encoded map,
// or an empty KindMapOK payload when haveEpoch is already current — the
// cheap "am I stale?" probe.
func AppendMapGet(dst []byte, haveEpoch uint64) []byte {
	return appendU64(dst, haveEpoch)
}

// ParseMapGet decodes a KindMapGet payload.
func ParseMapGet(payload []byte) (uint64, error) {
	rd := reader{b: payload}
	e := rd.u64()
	if rd.err != nil {
		return 0, rd.err
	}
	return e, nil
}

// attachClaimSize is the byte length of the shard claim suffix on an attach
// payload: u32 shard ID + u64 map epoch.
const attachClaimSize = 4 + 8

// AppendAttachClaim encodes an attach handshake that additionally claims a
// shard: the client asserts "I am attaching to serve operations for shard
// `shard`, routed under map epoch `epoch`". A shard-aware server verifies it
// owns that shard and answers KindMoved instead of KindAttachOK when it does
// not, so a stale-mapped client learns at attach time rather than per
// operation. The client ID is always written (zero when absent) so the claim
// suffix sits at a fixed offset.
func AppendAttachClaim(dst []byte, cred fsapi.Cred, clientID uint64, shard uint32, epoch uint64) []byte {
	dst = append(dst, magic[:]...)
	dst = append(dst, Version)
	dst = appendU32(dst, cred.UID)
	dst = appendU32(dst, cred.GID)
	dst = appendU64(dst, clientID)
	dst = appendU32(dst, shard)
	dst = appendU64(dst, epoch)
	return dst
}

// AttachClaim is the decoded shard claim of an attach handshake, when
// present.
type AttachClaim struct {
	Shard uint32
	Epoch uint64
}

// ParseAttachClaim validates and decodes an attach payload including its
// optional shard claim. It accepts every payload ParseAttach accepts
// (claimed == false for those) plus the AppendAttachClaim form.
func ParseAttachClaim(payload []byte) (fsapi.Cred, uint64, AttachClaim, bool, error) {
	rd := reader{b: payload}
	var m [4]byte
	m[0], m[1], m[2], m[3] = rd.u8(), rd.u8(), rd.u8(), rd.u8()
	v := rd.u8()
	cred := fsapi.Cred{UID: rd.u32(), GID: rd.u32()}
	var clientID uint64
	var claim AttachClaim
	claimed := false
	if rd.err == nil && len(rd.b) >= 8 {
		clientID = rd.u64()
		if rd.err == nil && len(rd.b) >= attachClaimSize {
			claim.Shard = rd.u32()
			claim.Epoch = rd.u64()
			claimed = true
		}
	}
	if rd.err != nil {
		return fsapi.Cred{}, 0, AttachClaim{}, false, rd.err
	}
	if m != magic {
		return fsapi.Cred{}, 0, AttachClaim{}, false, fmt.Errorf("%w: bad magic", ErrBadMessage)
	}
	if v != Version {
		return fsapi.Cred{}, 0, AttachClaim{}, false, fmt.Errorf("%w: got %d, want %d", ErrVersion, v, Version)
	}
	return cred, clientID, claim, claimed, nil
}
