package wire

import (
	"bytes"
	"testing"

	"simurgh/internal/fsapi"
)

// FuzzWireDecode feeds arbitrary bytes to every decoder. Whatever the
// input: no panic, no allocation larger than the input itself (every
// variable-length field is validated against the remaining bytes before
// allocating), and anything that decodes cleanly must re-encode and decode
// back to the same value (round-trip stability for all frame types).
func FuzzWireDecode(f *testing.F) {
	for _, r := range sampleRequests() {
		r := r
		f.Add(AppendRequest(nil, &r))
	}
	for _, r := range sampleResponses() {
		r := r
		f.Add(AppendResponse(nil, &r))
	}
	f.Add(AppendAttach(nil, fsapi.Cred{UID: 1000, GID: 1000}, 7))
	f.Add(AppendErrFrame(nil, ErrOverload))
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Requests.
		if req, rest, err := DecodeRequest(data); err == nil {
			if len(req.Data) > len(data) || len(req.Path)+len(req.Path2) > len(data) {
				t.Fatalf("decoded request larger than input: %+v", req)
			}
			re := AppendRequest(nil, &req)
			again, rest2, err := DecodeRequest(re)
			if err != nil {
				t.Fatalf("re-decode of re-encoded request failed: %v", err)
			}
			if len(rest2) != 0 {
				t.Fatalf("re-encoded request left %d trailing bytes", len(rest2))
			}
			if again.ID != req.ID || again.Op != req.Op || again.Path != req.Path ||
				again.Path2 != req.Path2 || !bytes.Equal(again.Data, req.Data) ||
				again.Off != req.Off || again.Off2 != req.Off2 ||
				again.FD != req.FD || again.Flags != req.Flags ||
				again.Perm != req.Perm || again.Size != req.Size {
				t.Fatalf("request round trip diverged:\n in %+v\nout %+v", req, again)
			}
			_ = rest
		}
		// Responses.
		if resp, _, err := DecodeResponse(data); err == nil {
			if len(resp.Data) > len(data) || len(resp.Dir) > len(data) {
				t.Fatalf("decoded response larger than input: %+v", resp)
			}
			re := AppendResponse(nil, &resp)
			again, rest2, err := DecodeResponse(re)
			if err != nil {
				t.Fatalf("re-decode of re-encoded response failed: %v", err)
			}
			if len(rest2) != 0 {
				t.Fatalf("re-encoded response left %d trailing bytes", len(rest2))
			}
			if again.ID != resp.ID || again.Op != resp.Op || again.Code != resp.Code ||
				again.Str != resp.Str || !bytes.Equal(again.Data, resp.Data) ||
				again.Stat != resp.Stat || len(again.Dir) != len(resp.Dir) {
				t.Fatalf("response round trip diverged:\n in %+v\nout %+v", resp, again)
			}
		}
		// Batches of each direction (bounded by MaxBatch internally).
		if reqs, err := DecodeBatch(data); err == nil && len(reqs) > len(data) {
			t.Fatalf("batch decoded %d requests from %d bytes", len(reqs), len(data))
		}
		if resps, err := DecodeReply(data); err == nil && len(resps) > len(data) {
			t.Fatalf("reply decoded %d responses from %d bytes", len(resps), len(data))
		}
		// Handshake and error frames.
		if cred, id, err := ParseAttach(data); err == nil {
			back := AppendAttach(nil, cred, id)
			if got, gotID, err := ParseAttach(back); err != nil || got != cred || gotID != id {
				t.Fatalf("attach round trip: (%+v, %d, %v)", got, gotID, err)
			}
		}
		_ = ParseErrFrame(data)
	})
}
