package wire

import "sync"

// Buffer pooling for the wire hot path.
//
// Frames, reply payloads, and request coalescing buffers churn at request
// rate; allocating them per frame made the allocator — not the FS — the
// throughput ceiling (see BENCH_pr4). Buffers are pooled in a few size
// classes and handed around inside a *Buf wrapper so that returning one to
// the pool never boxes a slice header (sync.Pool.Put of a bare []byte
// allocates the very header we are trying to avoid).
//
// Ownership contract: exactly one owner at a time. GetBuf transfers
// ownership to the caller; PutBuf transfers it back and the caller must not
// touch B afterwards. FrameReader owns its current buffer until Detach
// hands it to the caller; the server's job release and the client's
// refcounted payload release are the other two release points (see
// DESIGN.md §6). Double-put is a correctness bug the -race lifetime tests
// exist to catch.

// Buf is a pooled byte buffer. B may be re-sliced or grown by the owner;
// PutBuf re-classes it by its final capacity.
type Buf struct {
	B []byte
}

// bufClasses are the pooled capacity classes, smallest first. The third
// class is MaxIO plus headroom so a full 1 MiB read chunk plus its framing
// stays in one class; the last fits any legal frame.
var bufClasses = [...]int{4 << 10, 64 << 10, MaxIO + (64 << 10), MaxFrame + 16}

var bufPools [len(bufClasses)]sync.Pool

// GetBuf returns a pooled buffer with len(B) == n. n beyond MaxFrame+16 is
// served by a plain allocation (no class fits; PutBuf will still accept it
// into the largest class it covers).
func GetBuf(n int) *Buf {
	for i, c := range bufClasses {
		if n <= c {
			if v := bufPools[i].Get(); v != nil {
				b := v.(*Buf)
				b.B = b.B[:cap(b.B)][:n]
				return b
			}
			return &Buf{B: make([]byte, c)[:n]}
		}
	}
	return &Buf{B: make([]byte, n)}
}

// PutBuf returns b to the pool. nil is a no-op so release paths need not
// branch. The buffer is classed by capacity: it re-enters the largest class
// its capacity fully serves, so a buffer grown by append still pools.
func PutBuf(b *Buf) {
	if b == nil {
		return
	}
	c := cap(b.B)
	for i := len(bufClasses) - 1; i >= 0; i-- {
		if c >= bufClasses[i] {
			b.B = b.B[:0]
			bufPools[i].Put(b)
			return
		}
	}
	// Smaller than every class (caller shrank it): drop for GC.
}
