//go:build !race

package wire

// raceEnabled gates allocation-count assertions: testing.AllocsPerRun is
// unreliable under the race detector (instrumentation allocates).
const raceEnabled = false
