package wire

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"simurgh/internal/fsapi"
)

// sampleRequests covers every request shape once.
func sampleRequests() []Request {
	return []Request{
		{ID: 1, Op: OpCreate, Path: "/a/b", Perm: 0o644},
		{ID: 2, Op: OpOpen, Path: "/f", Flags: uint32(fsapi.OCreate | fsapi.ORdwr), Perm: 0o600},
		{ID: 3, Op: OpClose, FD: 7},
		{ID: 4, Op: OpRead, FD: 7, Size: 4096},
		{ID: 5, Op: OpPread, FD: 7, Size: 512, Off: 1 << 40},
		{ID: 6, Op: OpWrite, FD: 7, Data: []byte("payload")},
		{ID: 7, Op: OpPwrite, FD: 7, Off: 12345, Data: bytes.Repeat([]byte{0xAB}, 1000)},
		{ID: 8, Op: OpSeek, FD: 7, Off: ^uint64(15), Flags: fsapi.SeekEnd},
		{ID: 9, Op: OpFsync, FD: 7},
		{ID: 10, Op: OpFtruncate, FD: 7, Off: 100},
		{ID: 11, Op: OpFallocate, FD: 7, Off: 1 << 20},
		{ID: 12, Op: OpFstat, FD: 7},
		{ID: 13, Op: OpStat, Path: "/s"},
		{ID: 14, Op: OpLstat, Path: "/l"},
		{ID: 15, Op: OpMkdir, Path: "/d", Perm: 0o755},
		{ID: 16, Op: OpRmdir, Path: "/d"},
		{ID: 17, Op: OpUnlink, Path: "/u"},
		{ID: 18, Op: OpRename, Path: "/old", Path2: "/new"},
		{ID: 19, Op: OpSymlink, Path: "/target", Path2: "/link"},
		{ID: 20, Op: OpLink, Path: "/o", Path2: "/n"},
		{ID: 21, Op: OpReadlink, Path: "/link"},
		{ID: 22, Op: OpReadDir, Path: "/"},
		{ID: 23, Op: OpChmod, Path: "/c", Perm: 0o400},
		{ID: 24, Op: OpUtimes, Path: "/t", Off: ^uint64(4), Off2: 99},
		{ID: 25, Op: OpDetach},
		{ID: 26, Op: OpWrite, FD: 1}, // empty write
	}
}

// sampleResponses covers every response shape, success and error.
func sampleResponses() []Response {
	st := fsapi.Stat{
		Ino: 0xdeadbeef, Mode: fsapi.ModeRegular | 0o644, UID: 10, GID: 20,
		Nlink: 2, Size: 4096, Atime: -1, Mtime: 2, Ctime: 3,
	}
	return []Response{
		{ID: 1, Op: OpCreate, FD: 3},
		{ID: 2, Op: OpOpen, FD: 4},
		{ID: 3, Op: OpClose},
		{ID: 4, Op: OpRead, Data: []byte("read me")},
		{ID: 5, Op: OpPread, Data: nil},
		{ID: 6, Op: OpWrite, N: 7},
		{ID: 7, Op: OpPwrite, N: 1000},
		{ID: 8, Op: OpSeek, Off: -1},
		{ID: 12, Op: OpFstat, Stat: st},
		{ID: 13, Op: OpStat, Stat: st},
		{ID: 14, Op: OpLstat, Stat: st},
		{ID: 21, Op: OpReadlink, Str: "/target"},
		{ID: 22, Op: OpReadDir, Dir: []fsapi.DirEntry{
			{Name: "a", Ino: 1, Mode: fsapi.ModeDir | 0o755},
			{Name: strings.Repeat("n", fsapi.MaxNameLen), Ino: 2, Mode: fsapi.ModeRegular},
		}},
		{ID: 23, Op: OpChmod},
		{ID: 30, Op: OpOpen, Code: CodeNotExist},
		{ID: 31, Op: OpOpen, Code: CodePerm, Msg: "fs: permission denied (need 4, have 0)"},
		{ID: 32, Op: OpStat, Code: CodeOther, Msg: "backend exploded"},
		{ID: 33, Op: OpStat, Code: CodeOverload},
	}
}

func TestRequestRoundTrip(t *testing.T) {
	for _, want := range sampleRequests() {
		buf := AppendRequest(nil, &want)
		got, rest, err := DecodeRequest(buf)
		if err != nil {
			t.Fatalf("%v: decode: %v", want.Op, err)
		}
		if len(rest) != 0 {
			t.Fatalf("%v: %d trailing bytes", want.Op, len(rest))
		}
		if got.ID != want.ID || got.Op != want.Op || got.FD != want.FD ||
			got.Flags != want.Flags || got.Perm != want.Perm ||
			got.Off != want.Off || got.Off2 != want.Off2 || got.Size != want.Size ||
			got.Path != want.Path || got.Path2 != want.Path2 ||
			!bytes.Equal(got.Data, want.Data) {
			t.Fatalf("%v: round trip mismatch:\n got %+v\nwant %+v", want.Op, got, want)
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	for _, want := range sampleResponses() {
		buf := AppendResponse(nil, &want)
		got, rest, err := DecodeResponse(buf)
		if err != nil {
			t.Fatalf("%v: decode: %v", want.Op, err)
		}
		if len(rest) != 0 {
			t.Fatalf("%v: %d trailing bytes", want.Op, len(rest))
		}
		if got.ID != want.ID || got.Op != want.Op || got.Code != want.Code {
			t.Fatalf("%v: header mismatch: got %+v want %+v", want.Op, got, want)
		}
		if want.Code != CodeOK {
			continue // body is not encoded on errors
		}
		if got.FD != want.FD || got.N != want.N || got.Off != want.Off ||
			got.Stat != want.Stat || got.Str != want.Str ||
			!bytes.Equal(got.Data, want.Data) || len(got.Dir) != len(want.Dir) {
			t.Fatalf("%v: round trip mismatch:\n got %+v\nwant %+v", want.Op, got, want)
		}
		for i := range want.Dir {
			if got.Dir[i] != want.Dir[i] {
				t.Fatalf("dir entry %d: got %+v want %+v", i, got.Dir[i], want.Dir[i])
			}
		}
	}
}

func TestBatchRoundTrip(t *testing.T) {
	reqs := sampleRequests()
	var payload []byte
	for i := range reqs {
		payload = AppendRequest(payload, &reqs[i])
	}
	got, err := DecodeBatch(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(reqs) {
		t.Fatalf("decoded %d requests, want %d", len(got), len(reqs))
	}
	for i := range reqs {
		if got[i].ID != reqs[i].ID || got[i].Op != reqs[i].Op {
			t.Fatalf("request %d: got %+v want %+v", i, got[i], reqs[i])
		}
	}

	resps := sampleResponses()
	payload = payload[:0]
	for i := range resps {
		payload = AppendResponse(payload, &resps[i])
	}
	gotR, err := DecodeReply(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotR) != len(resps) {
		t.Fatalf("decoded %d responses, want %d", len(gotR), len(resps))
	}
}

func TestErrCodeRoundTrip(t *testing.T) {
	all := []error{
		fsapi.ErrNotExist, fsapi.ErrExist, fsapi.ErrNotDir, fsapi.ErrIsDir,
		fsapi.ErrNotEmpty, fsapi.ErrPerm, fsapi.ErrBadFD, fsapi.ErrNameTooLong,
		fsapi.ErrNoSpace, fsapi.ErrInval, fsapi.ErrLoop, fsapi.ErrCrossDir,
		fsapi.ErrReadOnly, fsapi.ErrWriteOnly, ErrOverload, ErrShutdown,
	}
	for _, sentinel := range all {
		code := CodeOf(sentinel)
		if code == CodeOK || code == CodeOther {
			t.Fatalf("%v mapped to %d", sentinel, code)
		}
		back := code.Wrap(MsgFor(code, sentinel))
		if !errors.Is(back, sentinel) {
			t.Fatalf("round trip of %v lost identity: %v", sentinel, back)
		}
		if back.Error() != sentinel.Error() {
			t.Fatalf("round trip of %v changed message: %q", sentinel, back.Error())
		}
		// Wrapped variants (as CheckPerm produces) keep both the detail
		// message and the sentinel identity.
		wrapped := fmt.Errorf("%w (extra context)", sentinel)
		code = CodeOf(wrapped)
		back = code.Wrap(MsgFor(code, wrapped))
		if !errors.Is(back, sentinel) {
			t.Fatalf("wrapped round trip of %v lost identity: %v", sentinel, back)
		}
		if back.Error() != wrapped.Error() {
			t.Fatalf("wrapped round trip of %v lost message: %q", sentinel, back.Error())
		}
	}
	if CodeOf(nil) != CodeOK {
		t.Fatal("CodeOf(nil) != CodeOK")
	}
	if CodeOf(errors.New("novel")) != CodeOther {
		t.Fatal("unknown error did not map to CodeOther")
	}
	if err := CodeOther.Wrap("novel"); err == nil || err.Error() != "novel" {
		t.Fatalf("CodeOther.Wrap = %v", err)
	}
}

func TestAttachRoundTrip(t *testing.T) {
	cred := fsapi.Cred{UID: 1000, GID: 2000}
	payload := AppendAttach(nil, cred, 0)
	got, id, err := ParseAttach(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got != cred || id != 0 {
		t.Fatalf("got (%+v, %d) want (%+v, 0)", got, id, cred)
	}
	// With a client identity appended (the replication-era handshake).
	payload2 := AppendAttach(nil, cred, 0xfeedbeef)
	got, id, err = ParseAttach(payload2)
	if err != nil {
		t.Fatal(err)
	}
	if got != cred || id != 0xfeedbeef {
		t.Fatalf("got (%+v, %#x) want (%+v, 0xfeedbeef)", got, id, cred)
	}
	bad := append([]byte(nil), payload...)
	bad[0] = 'X'
	if _, _, err := ParseAttach(bad); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("bad magic err = %v", err)
	}
	bad = append([]byte(nil), payload...)
	bad[4] = Version + 1
	if _, _, err := ParseAttach(bad); !errors.Is(err, ErrVersion) {
		t.Fatalf("bad version err = %v", err)
	}
}

func TestErrFrameRoundTrip(t *testing.T) {
	payload := AppendErrFrame(nil, ErrOverload)
	err := ParseErrFrame(payload)
	if !errors.Is(err, ErrOverload) {
		t.Fatalf("err = %v, want ErrOverload", err)
	}
}

func TestFrameIO(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{[]byte("first"), {}, bytes.Repeat([]byte{1}, 100000)}
	kinds := []Kind{KindBatch, KindAttachOK, KindReply}
	for i := range payloads {
		if err := WriteFrame(&buf, kinds[i], payloads[i]); err != nil {
			t.Fatal(err)
		}
	}
	fr := NewFrameReader(&buf)
	for i := range payloads {
		kind, payload, err := fr.Next()
		if err != nil {
			t.Fatal(err)
		}
		if kind != kinds[i] || !bytes.Equal(payload, payloads[i]) {
			t.Fatalf("frame %d: kind %d len %d", i, kind, len(payload))
		}
	}
	if _, _, err := fr.Next(); err == nil {
		t.Fatal("expected EOF")
	}
	if err := WriteFrame(&buf, KindBatch, make([]byte, MaxFrame)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversize frame err = %v", err)
	}
}

func TestDecodeRejectsOversize(t *testing.T) {
	// Read size beyond MaxIO.
	req := Request{ID: 1, Op: OpRead, FD: 1, Size: MaxIO + 1}
	if _, _, err := DecodeRequest(AppendRequest(nil, &req)); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("oversize read size err = %v", err)
	}
	// Truncated write payload: claims more bytes than present.
	b := appendU32(nil, 9)
	b = append(b, byte(OpWrite))
	b = appendU32(b, 1)          // fd
	b = appendU32(b, 1<<30)      // claimed data length
	b = append(b, 'x', 'y', 'z') // only 3 bytes present
	if _, _, err := DecodeRequest(b); err == nil {
		t.Fatal("decode of over-claiming write succeeded")
	}
	// Batch with too many ops.
	one := AppendRequest(nil, &Request{ID: 1, Op: OpDetach})
	big := bytes.Repeat(one, MaxBatch+1)
	if _, err := DecodeBatch(big); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("oversize batch err = %v", err)
	}
	// ReadDir entry count beyond payload.
	r := appendU32(nil, 22)
	r = append(r, byte(OpReadDir), byte(CodeOK))
	r = appendU32(r, 1<<30) // claimed entry count
	if _, _, err := DecodeResponse(r); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("over-claiming readdir err = %v", err)
	}
}

func TestDecodedDataDoesNotAliasInput(t *testing.T) {
	req := Request{ID: 1, Op: OpWrite, FD: 1, Data: []byte("aliased?")}
	buf := AppendRequest(nil, &req)
	got, _, err := DecodeRequest(buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range buf {
		buf[i] = 0xFF
	}
	if string(got.Data) != "aliased?" {
		t.Fatalf("decoded data aliases input buffer: %q", got.Data)
	}
}
