package client_test

import (
	"net"
	"testing"
	"time"

	"simurgh/internal/fsapi"
	"simurgh/internal/wire"
	"simurgh/internal/wire/client"
)

// overloadServer speaks just enough of the wire protocol to answer every
// request in the first `refuse` batches with CodeOverload, then succeed.
func overloadServer(t *testing.T, refuse int) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				fr := wire.NewFrameReader(conn)
				if k, _, err := fr.Next(); err != nil || k != wire.KindAttach {
					return
				}
				if err := wire.WriteFrame(conn, wire.KindAttachOK, []byte("stub")); err != nil {
					return
				}
				batches := 0
				for {
					k, payload, err := fr.Next()
					if err != nil || k != wire.KindBatch {
						return
					}
					var out []byte
					for len(payload) > 0 {
						req, rest, err := wire.DecodeRequest(payload)
						if err != nil {
							return
						}
						payload = rest
						resp := wire.Response{ID: req.ID, Op: req.Op}
						if batches < refuse {
							resp.Code = wire.CodeOverload
						}
						out = wire.AppendResponse(out, &resp)
					}
					batches++
					if err := wire.WriteFrame(conn, wire.KindReply, out); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
	return ln.Addr().String()
}

// TestOverloadRetry: a call refused with CodeOverload is retried with
// backoff until the server accepts, invisibly to the caller.
func TestOverloadRetry(t *testing.T) {
	addr := overloadServer(t, 2)
	remote, err := client.Dial(addr, client.Options{
		OverloadBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	c, err := remote.Attach(fsapi.Root)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Stat("/"); err != nil {
		t.Fatalf("stat after transient overload: %v", err)
	}
	if got := remote.Stats().OverloadRetries; got != 2 {
		t.Fatalf("OverloadRetries = %d, want 2", got)
	}
}

// TestOverloadRetryGivesUp: retries are bounded; a persistently overloaded
// server surfaces ErrOverload to the caller.
func TestOverloadRetryGivesUp(t *testing.T) {
	addr := overloadServer(t, 1<<30)
	remote, err := client.Dial(addr, client.Options{
		OverloadRetries: 2,
		OverloadBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	c, err := remote.Attach(fsapi.Root)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = c.Stat("/")
	if err == nil {
		t.Fatal("persistently overloaded call succeeded")
	}
	if got := remote.Stats().OverloadRetries; got != 2 {
		t.Fatalf("OverloadRetries = %d, want 2", got)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("bounded retry took %v", elapsed)
	}
}

// serveWarm starts a real server and dials it with a warm pool and a
// short idle timeout.
func serveWarm(t *testing.T, warm int, idle time.Duration) *client.Remote {
	t.Helper()
	addr := overloadServer(t, 0)
	remote, err := client.Dial(addr, client.Options{Warm: warm, IdleTimeout: idle})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { remote.Close() })
	return remote
}

// TestIdlePoolReaped: pre-dialed connections that sit unused past
// IdleTimeout are closed by the reaper and the pool shrinks.
func TestIdlePoolReaped(t *testing.T) {
	remote := serveWarm(t, 3, 40*time.Millisecond)
	if got := remote.PoolSize(); got != 3 {
		t.Fatalf("pool after warm dial = %d, want 3", got)
	}
	deadline := time.Now().Add(5 * time.Second)
	for remote.PoolSize() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("pool never shrank (still %d)", remote.PoolSize())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := remote.Stats().IdleReaped; got != 3 {
		t.Fatalf("IdleReaped = %d, want 3", got)
	}
}
