package client_test

import (
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"simurgh/internal/core"
	"simurgh/internal/fsapi"
	"simurgh/internal/pmem"
	"simurgh/internal/replica"
	"simurgh/internal/server"
	"simurgh/internal/wire/client"
)

// startReplicatedServer serves a fresh volume as a founding primary, which
// is what gives the server durable sessions: a failed-over client can
// re-attach by client ID and replay unanswered requests.
func startReplicatedServer(t *testing.T) string {
	t.Helper()
	dev := pmem.New(64 << 20)
	vol, err := core.Format(dev, fsapi.Root, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cfg := replica.Config{
		Quorum:            1,
		HeartbeatInterval: 25 * time.Millisecond,
		FailoverGrace:     300 * time.Millisecond,
		Advertise:         ln.Addr().String(),
		Snapshot: func(w io.Writer) error {
			_, err := dev.WriteTo(w)
			return err
		},
	}
	n := replica.NewPrimary(vol, cfg)
	srv, err := server.New(server.Config{FS: vol, Replica: n})
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Abort(); n.Close() })
	return ln.Addr().String()
}

// chaosProxy forwards TCP connections to a backend and, on demand, tears
// down every live connection at once — the client sees a transport loss
// while the server (and its retained sessions) stay up.
type chaosProxy struct {
	ln      net.Listener
	backend string

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
}

func startChaosProxy(t *testing.T, backend string) *chaosProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &chaosProxy{ln: ln, backend: backend, conns: make(map[net.Conn]struct{})}
	go p.acceptLoop()
	t.Cleanup(p.close)
	return p
}

func (p *chaosProxy) addr() string { return p.ln.Addr().String() }

func (p *chaosProxy) acceptLoop() {
	for {
		in, err := p.ln.Accept()
		if err != nil {
			return
		}
		out, err := net.Dial("tcp", p.backend)
		if err != nil {
			in.Close()
			continue
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			in.Close()
			out.Close()
			return
		}
		p.conns[in] = struct{}{}
		p.conns[out] = struct{}{}
		p.mu.Unlock()
		pipe := func(dst, src net.Conn) {
			io.Copy(dst, src)
			dst.Close()
			src.Close()
			p.mu.Lock()
			delete(p.conns, dst)
			delete(p.conns, src)
			p.mu.Unlock()
		}
		go pipe(in, out)
		go pipe(out, in)
	}
}

// killAll severs every proxied connection currently alive.
func (p *chaosProxy) killAll() {
	p.mu.Lock()
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
}

func (p *chaosProxy) close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.ln.Close()
	p.killAll()
}

// TestReplayReusedBuffersUnderReconnect aims -race at the retransmission
// path: pooled request segments and pending-call records must stay valid
// while the recovery goroutine replays them over a fresh connection. The
// chaos proxy repeatedly severs the client's transport mid-flight; every
// read still has to return the right bytes, and by the end the session
// must have actually exercised failover replays.
func TestReplayReusedBuffersUnderReconnect(t *testing.T) {
	backend := startReplicatedServer(t)
	proxy := startChaosProxy(t, backend)

	remote, err := client.Dial(proxy.addr(), client.Options{
		FailoverTimeout: 20 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	c, err := remote.Attach(fsapi.Root)
	if err != nil {
		t.Fatal(err)
	}

	// A patterned file so replayed reads are verifiable byte-for-byte.
	const fileSize = 128 << 10
	pat := func(off int) byte { return byte(off*167 ^ off>>9) }
	data := make([]byte, fileSize)
	for i := range data {
		data[i] = pat(i)
	}
	fd, err := c.Create("/replay", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Pwrite(fd, data, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(fd); err != nil {
		t.Fatal(err)
	}
	// Reopen read-write: readers and the mutating worker share this fd.
	fd, err = c.Open("/replay", fsapi.ORdwr, 0)
	if err != nil {
		t.Fatal(err)
	}

	// Killer: sever all proxied connections every 60ms until told to stop.
	stopKill := make(chan struct{})
	var killWG sync.WaitGroup
	killWG.Add(1)
	go func() {
		defer killWG.Done()
		tick := time.NewTicker(60 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stopKill:
				return
			case <-tick.C:
				proxy.killAll()
			}
		}
	}()

	// Workers keep the wire busy so kills land on in-flight requests.
	stopWork := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			buf := make([]byte, 16<<10)
			for it := 0; ; it++ {
				select {
				case <-stopWork:
					return
				default:
				}
				off := ((g*37 + it*11) * 512) % (fileSize - len(buf))
				n, err := c.Pread(fd, buf, uint64(off))
				if err != nil {
					errs <- err
					return
				}
				for k := 0; k < n; k += 509 {
					if buf[k] != pat(off+k) {
						t.Errorf("replayed read at %d: byte %d = %#x, want %#x",
							off, k, buf[k], pat(off+k))
						return
					}
				}
			}
		}(g)
	}
	// One mutating worker so replicated (deduplicated) ops replay too.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for it := 0; ; it++ {
			select {
			case <-stopWork:
				return
			default:
			}
			off := (it * 4096) % (fileSize - 4096)
			if _, err := c.Pwrite(fd, data[off:off+4096], uint64(off)); err != nil {
				errs <- err
				return
			}
		}
	}()

	// Run until the session has demonstrably failed over and replayed
	// in-flight requests, or give up.
	deadline := time.Now().Add(8 * time.Second)
	for time.Now().Before(deadline) {
		st := remote.Stats()
		if st.Failovers > 0 && st.Replays > 0 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	close(stopKill)
	killWG.Wait()
	close(stopWork)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := remote.Stats()
	if st.Failovers == 0 {
		t.Fatal("chaos proxy never induced a failover")
	}
	if st.Replays == 0 {
		t.Fatal("no requests were replayed across reconnects")
	}
	t.Logf("failovers=%d replays=%d dials=%d", st.Failovers, st.Replays, st.Dials)
}
