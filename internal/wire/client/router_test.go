package client_test

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"simurgh/internal/core"
	"simurgh/internal/fsapi"
	"simurgh/internal/fstest"
	"simurgh/internal/pmem"
	"simurgh/internal/replica"
	"simurgh/internal/server"
	"simurgh/internal/shard"
	"simurgh/internal/wire/client"
)

// newVolume formats a fresh in-memory volume for one test node.
func newVolume(t testing.TB) (*pmem.Device, *core.FS) {
	t.Helper()
	dev := pmem.New(64 << 20)
	vol, err := core.Format(dev, fsapi.Root, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return dev, vol
}

// serveCluster starts one single-node server per entry of prefixes, each
// owning the shard named by its prefix ("" = a hash shard), and returns a
// router over them. No replication — this is the topology for
// routing/conformance tests.
func serveCluster(t testing.TB, prefixes []string) (*client.Router, *shard.Map) {
	t.Helper()
	n := len(prefixes)
	lns := make([]net.Listener, n)
	m := &shard.Map{Epoch: 1}
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		m.Shards = append(m.Shards, shard.Shard{
			ID: uint32(i), Prefix: prefixes[i], Addrs: []string{ln.Addr().String()},
		})
	}
	for i := 0; i < n; i++ {
		_, vol := newVolume(t)
		auth, err := shard.NewAuthority(m, lns[i].Addr().String(), nil)
		if err != nil {
			t.Fatal(err)
		}
		srv, err := server.New(server.Config{FS: vol, Sharding: auth, Logf: t.Logf})
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve(lns[i])
		t.Cleanup(srv.Shutdown)
	}
	rt, err := client.DialRouter(lns[0].Addr().String(), client.RouterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rt.Close() })
	return rt, m
}

// serveHashCluster is serveCluster with n pure hash shards.
func serveHashCluster(t testing.TB, n int) (*client.Router, *shard.Map) {
	t.Helper()
	return serveCluster(t, make([]string, n))
}

// pathOnShard probes root-level names matching prefix until one hashes to
// the wanted shard.
func pathOnShard(t testing.TB, m *shard.Map, prefix string, want uint32) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		p := fmt.Sprintf("/%s%d", prefix, i)
		if m.Route(p).ID == want {
			return p
		}
	}
	t.Fatalf("no root name with prefix %q routes to shard %d", prefix, want)
	return ""
}

// TestRouterConformance runs the full file-system battery through a router
// over a two-node cluster split by prefix: node 0 serves "/" and node 1
// serves the "/d2" subtree, so every operation crosses the wire AND the
// routing layer, the RenameCrossDir case is a genuine cross-shard rename,
// and root listings merge entries from both nodes. The split is by prefix
// rather than hash because POSIX hard links need their two sibling names on
// one shard (cross-shard Link is EXDEV, like link(2) across mounts).
func TestRouterConformance(t *testing.T) {
	fstest.RunConformance(t, func() fsapi.FileSystem {
		rt, _ := serveCluster(t, []string{"/", "/d2"})
		return rt
	})
}

// TestCrossShardRename exercises the copy+unlink rename path for files,
// symlinks, and directories whose old and new names hash to different
// shards.
func TestCrossShardRename(t *testing.T) {
	rt, m := serveHashCluster(t, 2)
	c, err := rt.Attach(fsapi.Root)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Detach()

	src := pathOnShard(t, m, "src", 0)
	dst := pathOnShard(t, m, "dst", 1)

	// Regular file: contents and replace semantics survive the copy.
	fd, err := c.Create(src, 0o640)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write(fd, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	c.Close(fd)
	if err := c.Rename(src, dst); err != nil {
		t.Fatalf("cross-shard rename: %v", err)
	}
	if _, err := c.Stat(src); err != fsapi.ErrNotExist {
		t.Fatalf("source survives rename: %v", err)
	}
	st, err := c.Stat(dst)
	if err != nil {
		t.Fatal(err)
	}
	if st.Mode&fsapi.ModePermMask != 0o640 {
		t.Errorf("mode %o after cross-shard rename, want 640", st.Mode&fsapi.ModePermMask)
	}
	fd, err = c.Open(dst, fsapi.ORdonly, 0)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	n, _ := c.Read(fd, buf)
	c.Close(fd)
	if !bytes.Equal(buf[:n], []byte("payload")) {
		t.Errorf("content %q after cross-shard rename", buf[:n])
	}

	// Directory: the tree moves recursively.
	dsrc := pathOnShard(t, m, "dirs", 0)
	ddst := pathOnShard(t, m, "dird", 1)
	if err := c.Mkdir(dsrc, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := c.Mkdir(dsrc+"/sub", 0o755); err != nil {
		t.Fatal(err)
	}
	fd, err = c.Create(dsrc+"/sub/f", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	c.Write(fd, []byte("deep"))
	c.Close(fd)
	if err := c.Rename(dsrc, ddst); err != nil {
		t.Fatalf("cross-shard dir rename: %v", err)
	}
	if _, err := c.Stat(dsrc); err != fsapi.ErrNotExist {
		t.Fatalf("source dir survives rename: %v", err)
	}
	fd, err = c.Open(ddst+"/sub/f", fsapi.ORdonly, 0)
	if err != nil {
		t.Fatalf("moved tree content missing: %v", err)
	}
	n, _ = c.Read(fd, buf)
	c.Close(fd)
	if !bytes.Equal(buf[:n], []byte("deep")) {
		t.Errorf("tree content %q after cross-shard rename", buf[:n])
	}

	// Symlink: moves as a link, not as its target.
	lsrc := pathOnShard(t, m, "lns", 0)
	ldst := pathOnShard(t, m, "lnd", 1)
	if err := c.Symlink("/somewhere", lsrc); err != nil {
		t.Fatal(err)
	}
	if err := c.Rename(lsrc, ldst); err != nil {
		t.Fatalf("cross-shard symlink rename: %v", err)
	}
	if target, err := c.Readlink(ldst); err != nil || target != "/somewhere" {
		t.Errorf("Readlink after rename = %q, %v", target, err)
	}

	// Cross-shard hard links cannot exist (two volumes, one inode).
	hsrc := pathOnShard(t, m, "hls", 0)
	hdst := pathOnShard(t, m, "hld", 1)
	fd, err = c.Create(hsrc, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	c.Close(fd)
	if err := c.Link(hsrc, hdst); err != fsapi.ErrCrossDir {
		t.Errorf("cross-shard Link = %v, want ErrCrossDir", err)
	}

	if st := rt.Stats(); st.CrossRenames < 3 {
		t.Errorf("CrossRenames = %d, want >= 3", st.CrossRenames)
	}
}

// TestRouterReadDirMerge checks the root listing is the union of every
// shard's root directory, deduplicated and sorted.
func TestRouterReadDirMerge(t *testing.T) {
	rt, m := serveHashCluster(t, 2)
	c, err := rt.Attach(fsapi.Root)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Detach()

	a := pathOnShard(t, m, "ma", 0)
	b := pathOnShard(t, m, "mb", 1)
	for _, p := range []string{a, b} {
		fd, err := c.Create(p, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		c.Close(fd)
	}
	ents, err := c.ReadDir("/")
	if err != nil {
		t.Fatal(err)
	}
	found := map[string]bool{}
	for i, e := range ents {
		found[e.Name] = true
		if i > 0 && ents[i-1].Name > e.Name {
			t.Errorf("merged listing out of order: %q before %q", ents[i-1].Name, e.Name)
		}
	}
	if !found[strings.TrimPrefix(a, "/")] || !found[strings.TrimPrefix(b, "/")] {
		t.Errorf("merged root listing missing shard entries: %v", found)
	}
}

// TestMovedPingPong pins the bounded-redirect guarantee: two nodes whose
// same-epoch maps each name the other as the shard's owner would bounce a
// client forever; the router must give up after MaxMovedHops.
func TestMovedPingPong(t *testing.T) {
	lnX, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	lnY, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrX, addrY := lnX.Addr().String(), lnY.Addr().String()

	serveWith := func(ln net.Listener, self string, m *shard.Map) {
		_, vol := newVolume(t)
		auth, err := shard.NewAuthority(m, self, nil)
		if err != nil {
			t.Fatal(err)
		}
		srv, err := server.New(server.Config{FS: vol, Sharding: auth})
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve(ln)
		t.Cleanup(srv.Shutdown)
	}
	// X believes Y owns the shard; Y believes X does. Same epoch, so no
	// refresh can break the tie.
	serveWith(lnX, addrX, &shard.Map{Epoch: 2, Shards: []shard.Shard{{ID: 0, Prefix: "/", Addrs: []string{addrY}}}})
	serveWith(lnY, addrY, &shard.Map{Epoch: 2, Shards: []shard.Shard{{ID: 0, Prefix: "/", Addrs: []string{addrX}}}})

	// The router starts from a stale epoch-1 map pointing at X.
	rt, err := client.NewRouter(
		&shard.Map{Epoch: 1, Shards: []shard.Shard{{ID: 0, Prefix: "/", Addrs: []string{addrX}}}},
		nil,
		client.RouterOptions{MaxMovedHops: 3, MovedBackoff: time.Millisecond},
	)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	c, err := rt.Attach(fsapi.Root)
	if err == nil {
		_, err = c.Stat("/f")
	}
	if err == nil {
		t.Fatal("ping-pong routing converged; want bounded-hops error")
	}
	if !strings.Contains(err.Error(), "did not converge") {
		t.Fatalf("error = %v, want moved-hops bound", err)
	}
	if st := rt.Stats(); st.Moves < 3 {
		t.Errorf("Moves = %d, want >= MaxMovedHops", st.Moves)
	}
}

// migrCluster is the live-migration topology: node A is the primary of a
// 2-hash-shard map (owning both shards), node B joined it as a replication
// backup. Migrating shard 1 to B exercises the full cutover.
type migrCluster struct {
	addrA, addrB string
	m            *shard.Map
}

func startMigrCluster(t testing.TB) *migrCluster {
	t.Helper()
	lnA, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	lnB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrA, addrB := lnA.Addr().String(), lnB.Addr().String()
	m := &shard.Map{Epoch: 1, Shards: []shard.Shard{
		{ID: 0, Addrs: []string{addrA}},
		{ID: 1, Addrs: []string{addrA}},
	}}
	quiet := func(string, ...any) {}

	devA, volA := newVolume(t)
	nodeA := replica.NewPrimary(volA, replica.Config{
		Advertise: addrA,
		Quorum:    1,
		Logf:      quiet,
		Snapshot: func(w io.Writer) error {
			_, err := devA.WriteTo(w)
			return err
		},
	})
	t.Cleanup(func() { nodeA.Close() })
	authA, err := shard.NewAuthority(m, addrA, func(lost []uint32, next *shard.Map) error {
		seen := map[string]bool{}
		var addrs []string
		for _, id := range lost {
			if sh := next.ByID(id); sh != nil {
				for _, a := range sh.Addrs {
					if !seen[a] {
						seen[a] = true
						addrs = append(addrs, a)
					}
				}
			}
		}
		return nodeA.MigrationDrain(addrs, 30*time.Second)
	})
	if err != nil {
		t.Fatal(err)
	}
	srvA, err := server.New(server.Config{FS: volA, Replica: nodeA, Sharding: authA})
	if err != nil {
		t.Fatal(err)
	}
	go srvA.Serve(lnA)
	t.Cleanup(srvA.Shutdown)

	nodeB := replica.NewBackup(replica.Config{
		Advertise:   addrB,
		PrimaryAddr: addrA,
		Logf:        quiet,
		Restore: func(img []byte) (fsapi.FileSystem, error) {
			d, err := pmem.ReadImage(bytes.NewReader(img))
			if err != nil {
				return nil, err
			}
			fs, _, err := core.Mount(d, core.Options{})
			return fs, err
		},
	})
	t.Cleanup(func() { nodeB.Close() })
	authB, err := shard.NewAuthority(m, addrB, nil)
	if err != nil {
		t.Fatal(err)
	}
	srvB, err := server.New(server.Config{Replica: nodeB, Sharding: authB})
	if err != nil {
		t.Fatal(err)
	}
	go srvB.Serve(lnB)
	t.Cleanup(srvB.Shutdown)

	for deadline := time.Now().Add(30 * time.Second); ; {
		if nodeA.Backups() >= 1 && nodeB.Epoch() == nodeA.Epoch() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("backup did not join")
		}
		time.Sleep(5 * time.Millisecond)
	}
	return &migrCluster{addrA: addrA, addrB: addrB, m: m}
}

// TestLiveMigrationZeroLoss drives acknowledged writes through the router
// to files on both shards, migrates shard 1 from A to B mid-load, and then
// verifies every acknowledged record is readable — the PR's zero-loss
// acceptance, in-process.
func TestLiveMigrationZeroLoss(t *testing.T) {
	cl := startMigrCluster(t)
	rt, err := client.DialRouter(cl.addrA, client.RouterOptions{MovedBackoff: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	const workers = 4
	type result struct {
		path  string
		acked uint64
		err   error
	}
	results := make([]result, workers)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for wi := 0; wi < workers; wi++ {
		// Even workers write shard-0 files, odd workers shard-1 files, so
		// the migrating shard carries live load through the cutover.
		results[wi].path = pathOnShard(t, cl.m, fmt.Sprintf("w%d-", wi), uint32(wi%2))
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			res := &results[wi]
			c, err := rt.Attach(fsapi.Root)
			if err != nil {
				res.err = err
				return
			}
			defer c.Detach()
			fd, err := c.Open(res.path, fsapi.OCreate|fsapi.ORdwr, 0o644)
			if err != nil {
				res.err = err
				return
			}
			var rec [8]byte
			for {
				select {
				case <-stop:
					return
				default:
				}
				binary.LittleEndian.PutUint64(rec[:], res.acked)
				if _, err := c.Pwrite(fd, rec[:], res.acked*8); err != nil {
					res.err = fmt.Errorf("write %d: %w", res.acked, err)
					return
				}
				res.acked++
			}
		}(wi)
	}

	time.Sleep(150 * time.Millisecond) // let pre-migration writes accumulate
	m2, err := shard.Migrate([]string{cl.addrA}, 1, []string{cl.addrB}, shard.MigrateOptions{})
	if err != nil {
		t.Fatalf("migrate: %v", err)
	}
	if sh := m2.ByID(1); len(sh.Addrs) != 1 || sh.Addrs[0] != cl.addrB {
		t.Fatalf("shard 1 owner after migrate: %v", sh.Addrs)
	}
	time.Sleep(150 * time.Millisecond) // and post-migration writes
	close(stop)
	wg.Wait()

	// The new owner must be serving the shard directly.
	mB, err := shard.FetchMap(cl.addrB, 0, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if mB.Epoch != m2.Epoch {
		t.Errorf("target map epoch %d, want %d", mB.Epoch, m2.Epoch)
	}

	verify, err := rt.Attach(fsapi.Root)
	if err != nil {
		t.Fatal(err)
	}
	defer verify.Detach()
	var totalAcked uint64
	for wi := range results {
		res := &results[wi]
		if res.err != nil {
			t.Fatalf("worker %d: %v", wi, res.err)
		}
		if res.acked == 0 {
			t.Fatalf("worker %d acked nothing", wi)
		}
		totalAcked += res.acked
		fd, err := verify.Open(res.path, fsapi.ORdonly, 0)
		if err != nil {
			t.Fatalf("verify open %s: %v", res.path, err)
		}
		buf := make([]byte, res.acked*8)
		n, err := verify.Pread(fd, buf, 0)
		if err != nil {
			t.Fatalf("verify read %s: %v", res.path, err)
		}
		for rec := uint64(0); rec < res.acked; rec++ {
			if uint64(n) < (rec+1)*8 || binary.LittleEndian.Uint64(buf[rec*8:]) != rec {
				t.Fatalf("worker %d: acked record %d lost (read %d bytes)", wi, rec, n)
			}
		}
		verify.Close(fd)
	}
	st := rt.Stats()
	if st.Epoch != m2.Epoch {
		t.Errorf("router epoch %d after migration, want %d", st.Epoch, m2.Epoch)
	}
	t.Logf("acked=%d moves=%d refreshes=%d (epoch %d)", totalAcked, st.Moves, st.MapRefreshes, st.Epoch)
}

// TestRouterConformanceAfterMigration runs a compact end-to-end pass over a
// cluster that has already completed a live migration: shard 1's files now
// live on node B, shard 0 stays on A, and everything — creates, listings,
// cross-shard renames — must behave as before the move.
func TestRouterConformanceAfterMigration(t *testing.T) {
	cl := startMigrCluster(t)
	rt, err := client.DialRouter(cl.addrA, client.RouterOptions{MovedBackoff: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	c, err := rt.Attach(fsapi.Root)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Detach()
	pre := pathOnShard(t, cl.m, "pre", 1)
	fd, err := c.Create(pre, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	c.Write(fd, []byte("before"))
	c.Close(fd)

	if _, err := shard.Migrate([]string{cl.addrA}, 1, []string{cl.addrB}, shard.MigrateOptions{}); err != nil {
		t.Fatalf("migrate: %v", err)
	}

	// Pre-migration data is served by the new owner.
	fd, err = c.Open(pre, fsapi.ORdonly, 0)
	if err != nil {
		t.Fatalf("open pre-migration file: %v", err)
	}
	buf := make([]byte, 16)
	n, _ := c.Read(fd, buf)
	c.Close(fd)
	if !bytes.Equal(buf[:n], []byte("before")) {
		t.Fatalf("pre-migration content %q", buf[:n])
	}

	// Fresh namespace work on both shards, including a cross-shard rename
	// whose shard-1 side now lives on B.
	src := pathOnShard(t, cl.m, "post", 0)
	dst := pathOnShard(t, cl.m, "moved", 1)
	fd, err = c.Create(src, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	c.Write(fd, []byte("across"))
	c.Close(fd)
	if err := c.Rename(src, dst); err != nil {
		t.Fatalf("cross-shard rename after migration: %v", err)
	}
	fd, err = c.Open(dst, fsapi.ORdonly, 0)
	if err != nil {
		t.Fatal(err)
	}
	n, _ = c.Read(fd, buf)
	c.Close(fd)
	if !bytes.Equal(buf[:n], []byte("across")) {
		t.Fatalf("renamed content %q", buf[:n])
	}
	ents, err := c.ReadDir("/")
	if err != nil {
		t.Fatal(err)
	}
	found := map[string]bool{}
	for _, e := range ents {
		found[e.Name] = true
	}
	for _, p := range []string{pre, dst} {
		if !found[strings.TrimPrefix(p, "/")] {
			t.Errorf("root listing missing %s after migration", p)
		}
	}
}
