package client

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"simurgh/internal/fsapi"
	"simurgh/internal/obs"
	"simurgh/internal/wire"
)

// sendItem is one encoded request group queued for the writer. payload
// aliases rb's pooled buffer; the writer holds one of rb's references and
// releases it once the bytes are on the wire. trace (0 = untraced) marks a
// sampled group: the writer tags the whole coalesced frame with it and
// records the enqueue/send spans; start is the submission time the enqueue
// span begins at.
type sendItem struct {
	rb      *refBuf
	payload []byte
	n       int // requests in payload
	trace   uint64
	start   time.Time
}

// refBuf is a reference-counted pooled request buffer. One buffer backs a
// whole submitted group: each pending call references its own encoded
// segment (kept for failover replay) and the write loop references the
// payload until it is written, so the buffer recycles only when the last
// holder lets go.
type refBuf struct {
	buf  *wire.Buf
	refs atomic.Int32
}

var refBufPool = sync.Pool{New: func() any { return new(refBuf) }}

// getRefBuf returns a refcounted buffer with room for est bytes and zero
// length. The caller must Store the reference count before sharing it.
func getRefBuf(est int) *refBuf {
	rb := refBufPool.Get().(*refBuf)
	if rb.buf == nil || cap(rb.buf.B) < est {
		wire.PutBuf(rb.buf)
		rb.buf = wire.GetBuf(est)
	}
	rb.buf.B = rb.buf.B[:0]
	return rb
}

// release drops one reference; the last one returns the buffer and the
// wrapper to their pools.
func (rb *refBuf) release() {
	if rb.refs.Add(-1) == 0 {
		wire.PutBuf(rb.buf)
		rb.buf = nil
		refBufPool.Put(rb)
	}
}

// pendingCall is one submitted, unanswered request. seg retains the
// request's encoded bytes so a failover can replay it verbatim (same ID —
// the server deduplicates replicated operations by request ID, making the
// replay exactly-once), and seqNo orders replays by original submission.
// dst, when set, is where the reader lands read data (the caller's buffer,
// eliminating the frame→response→caller double copy); rb is the request
// buffer reference released when the call retires.
//
// Ownership protocol: a pendingCall in s.pend may be touched only by
// whoever removes it from the map under s.mu — the reader claims it to
// deliver (and is the only goroutine allowed to decode into dst), the
// waiter claims it back to abandon. A call that cannot be claimed back
// (the reader got there first) is leaked to the GC rather than pooled: a
// late delivery into a reused call would corrupt an unrelated request.
type pendingCall struct {
	ch    chan wire.Response
	seg   []byte
	seqNo uint64
	dst   []byte
	rb    *refBuf
	trace uint64    // distributed trace ID of the submission; 0 = untraced
	start time.Time // submission time; the round-trip span's begin
}

var pcPool = sync.Pool{New: func() any {
	return &pendingCall{ch: make(chan wire.Response, 1)}
}}

func getPC() *pendingCall { return pcPool.Get().(*pendingCall) }

func putPC(pc *pendingCall) {
	select { // defensive: a pooled call must never carry a stale response
	case <-pc.ch:
	default:
	}
	pc.seg, pc.dst, pc.rb = nil, nil, nil
	pc.seqNo = 0
	pc.trace = 0
	pcPool.Put(pc)
}

// transport is one connection generation. A session survives its
// transports: when one dies and failover is enabled, the session attaches
// a successor and replays its unanswered calls over it.
type transport struct {
	conn net.Conn
	fr   *wire.FrameReader
	down chan struct{} // closed when this transport is retired
}

// Session is one attached remote client. Safe for concurrent use; calls
// from multiple goroutines coalesce into shared batch frames.
type Session struct {
	r        *Remote
	cred     fsapi.Cred
	clientID uint64

	seq   atomic.Uint32
	mu    sync.Mutex
	subNo uint64 // submission counter, orders failover replays
	pend  map[uint32]*pendingCall
	t     *transport

	// Distributed-trace sampling state (from Options.Obs/TraceSample). The
	// untraced steady state costs one atomic load per submission; only the
	// 1-in-TraceSample sampled submissions take clock reads and span
	// recording.
	tr        *obs.Registry
	traceBase uint64 // node-namespace bits (high 16) of generated trace IDs
	traceMask uint64 // sampling period - 1 (power of two)
	traceCtr  atomic.Uint64

	sendq chan sendItem

	closing  atomic.Bool
	failOnce sync.Once
	dead     chan struct{}
	deadErr  error
}

// resetTransport installs conn/fr as the session's live transport and
// starts its loops.
func (s *Session) resetTransport(conn net.Conn, fr *wire.FrameReader) {
	t := &transport{conn: conn, fr: fr, down: make(chan struct{})}
	s.mu.Lock()
	s.t = t
	s.mu.Unlock()
	go s.readLoop(t)
	go s.writeLoop(t)
}

// fail terminates the session once: records err, wakes every waiter, and
// closes the transport.
func (s *Session) fail(err error) {
	s.failOnce.Do(func() {
		s.deadErr = err
		close(s.dead)
		s.mu.Lock()
		t := s.t
		s.t = nil
		s.mu.Unlock()
		if t != nil {
			close(t.down)
			t.conn.Close()
		}
	})
}

// err returns the session's terminal error.
func (s *Session) err() error {
	select {
	case <-s.dead:
		if s.deadErr != nil {
			return s.deadErr
		}
		return ErrClosed
	default:
		return nil
	}
}

// transportFailed retires t after an I/O error. The first loop to report
// wins; with failover enabled the session re-resolves the primary and
// replays, otherwise it dies with err (the pre-replication behavior).
func (s *Session) transportFailed(t *transport, err error) {
	s.mu.Lock()
	stale := s.t != t
	if !stale {
		s.t = nil
		close(t.down)
	}
	s.mu.Unlock()
	t.conn.Close()
	if stale {
		return
	}
	if s.closing.Load() || s.r.opts.FailoverTimeout <= 0 {
		s.fail(err)
		return
	}
	go s.recover(err)
}

// recover re-attaches the session after a transport loss: it re-resolves
// the primary (following redirects), resumes the server-side session by
// client ID, and replays every unanswered request in submission order.
// Unanswered requests are the complete loss set — registration in pend
// precedes any write, so nothing can be dropped without being replayed.
func (s *Session) recover(cause error) {
	deadline := time.Now().Add(s.r.opts.FailoverTimeout)
	backoff := 10 * time.Millisecond
	for {
		if s.err() != nil {
			return
		}
		conn, fr, err := s.r.attachConn(s.cred, s.clientID)
		if err == nil {
			s.resume(conn, fr)
			s.r.st.failovers.Add(1)
			return
		}
		if s.closing.Load() || !time.Now().Before(deadline) {
			s.fail(fmt.Errorf("%w (after %v)", ErrNoPrimary, cause))
			return
		}
		d := backoff/2 + time.Duration(rand.Int63n(int64(backoff/2)+1))
		select {
		case <-time.After(d):
		case <-s.dead:
			return
		}
		if backoff < 250*time.Millisecond {
			backoff *= 2
		}
	}
}

// Rehome tears the session's transport down and re-attaches against the
// Remote's current dial list, resuming the server-side session by client
// ID and replaying unanswered requests. The router calls it after pointing
// a shard's Remote at the shard's new owner group (SetAddrs); ordinary
// failover never needs it — transport loss recovers on its own.
func (s *Session) Rehome() error {
	if err := s.err(); err != nil {
		return err
	}
	s.mu.Lock()
	t := s.t
	if t != nil {
		s.t = nil
		close(t.down)
	}
	s.mu.Unlock()
	if t != nil {
		t.conn.Close()
	}
	conn, fr, err := s.r.attachConn(s.cred, s.clientID)
	if err != nil {
		// The transport is already down; a session with no transport and no
		// recovery in flight would strand its pending calls. Hand them to the
		// ordinary failover loop (which keeps retrying the Remote's — possibly
		// re-pointed — dial list) and report the miss to the router.
		if !s.closing.Load() && s.r.opts.FailoverTimeout > 0 {
			go s.recover(err)
		} else {
			s.fail(err)
		}
		return err
	}
	s.resume(conn, fr)
	s.r.st.failovers.Add(1)
	return nil
}

// resume replays the unanswered calls over a fresh connection and brings
// the new transport live. The reader starts before the replay is written
// (replies may start flowing immediately); the writer starts after, so
// replay frames never interleave with coalesced batches.
func (s *Session) resume(conn net.Conn, fr *wire.FrameReader) {
	t := &transport{conn: conn, fr: fr, down: make(chan struct{})}
	s.mu.Lock()
	replay := make([]*pendingCall, 0, len(s.pend))
	for _, pc := range s.pend {
		replay = append(replay, pc)
	}
	s.t = t
	s.mu.Unlock()
	sort.Slice(replay, func(i, j int) bool { return replay[i].seqNo < replay[j].seqNo })
	go s.readLoop(t)
	frame := make([]byte, 0, 64<<10)
	count := 0
	flush := func() bool {
		if count == 0 {
			return true
		}
		binary.LittleEndian.PutUint32(frame[:4], uint32(len(frame)-4))
		_, err := conn.Write(frame)
		if err != nil {
			s.transportFailed(t, err)
			return false
		}
		s.r.st.replays.Add(uint64(count))
		frame, count = frame[:0], 0
		return true
	}
	for _, pc := range replay {
		if count == wire.MaxBatch || (count > 0 && len(frame)-5+len(pc.seg) > maxCoalesce) {
			if !flush() {
				return
			}
		}
		if count == 0 {
			frame = append(frame[:0], 0, 0, 0, 0, byte(wire.KindBatch))
		}
		frame = append(frame, pc.seg...)
		count++
	}
	if !flush() {
		return
	}
	go s.writeLoop(t)
}

// writeLoop drains the send queue, merging everything immediately available
// into one KindBatch frame written with a single vectored write — the
// header and each group's payload go to the kernel as one writev, with no
// coalescing copy. It exits when its transport is retired; an item lost to
// a dying write is re-sent by the failover replay (its pend entry is still
// unanswered).
func (s *Session) writeLoop(t *transport) {
	// hdr has room for the frame header plus a trace context; untraced
	// frames use only its first 5 bytes.
	var hdr [5 + wire.TraceCtxSize]byte
	acc := make([][]byte, 0, 16)
	items := make([]sendItem, 0, 16)
	var held *sendItem
	for {
		var first sendItem
		if held != nil {
			first, held = *held, nil
		} else {
			select {
			case first = <-s.sendq:
			case <-t.down:
				return
			case <-s.dead:
				return
			}
		}
		acc = append(acc[:0], hdr[:5], first.payload)
		items = append(items[:0], first)
		total := len(first.payload)
		count := first.n
		trace, traceStart := first.trace, first.start
	coalesce:
		for count < wire.MaxBatch {
			select {
			case it := <-s.sendq:
				if total+len(it.payload) > maxCoalesce || count+it.n > wire.MaxBatch {
					held = &it
					break coalesce
				}
				acc = append(acc, it.payload)
				items = append(items, it)
				total += len(it.payload)
				count += it.n
				if trace == 0 && it.trace != 0 {
					// A traced item merged into an untraced group: the whole
					// frame is sampled under its ID (traces are batch-
					// granular by design).
					trace, traceStart = it.trace, it.start
				}
			default:
				break coalesce
			}
		}
		var writeStart time.Time
		if trace != 0 {
			binary.LittleEndian.PutUint32(hdr[:4], uint32(total+1+wire.TraceCtxSize))
			hdr[4] = byte(wire.KindBatchTraced)
			binary.LittleEndian.PutUint64(hdr[5:], trace)
			acc[0] = hdr[:]
			writeStart = time.Now()
			s.tr.SpanCtx(obs.SpanClientEnqueue, 0, trace, traceStart, uint64(writeStart.Sub(traceStart)), false)
		} else {
			binary.LittleEndian.PutUint32(hdr[:4], uint32(total+1))
			hdr[4] = byte(wire.KindBatch)
		}
		vec := net.Buffers(acc)
		_, err := vec.WriteTo(t.conn)
		if trace != 0 {
			s.tr.SpanCtx(obs.SpanClientSend, 0, trace, writeStart, uint64(time.Since(writeStart)), err != nil)
		}
		for i := range items {
			if items[i].rb != nil {
				items[i].rb.release()
			}
		}
		if err != nil {
			if held != nil && held.rb != nil {
				held.rb.release()
			}
			s.transportFailed(t, err)
			return
		}
	}
}

// readLoop decodes reply frames and routes each response to its waiter.
// Each response's call is claimed out of pend before decoding, so the
// claimer may safely land read data in the call's dst buffer; a response
// for an already-answered ID (a failover replay racing its original) is
// dropped. On a decode error the claimed call is returned to pend so the
// failover replay still covers it.
func (s *Session) readLoop(t *transport) {
	for {
		kind, payload, err := t.fr.Next()
		if err != nil {
			s.transportFailed(t, err)
			return
		}
		switch kind {
		case wire.KindReply:
			for len(payload) > 0 {
				var pc *pendingCall
				var id uint32
				if len(payload) >= 4 {
					id = binary.LittleEndian.Uint32(payload)
					s.mu.Lock()
					pc = s.pend[id]
					if pc != nil {
						delete(s.pend, id)
					}
					s.mu.Unlock()
				}
				var dst []byte
				if pc != nil {
					dst = pc.dst
				}
				resp, rest, err := wire.DecodeResponseInto(payload, dst)
				if err != nil {
					if pc != nil {
						s.mu.Lock()
						s.pend[id] = pc
						s.mu.Unlock()
					}
					s.transportFailed(t, err)
					return
				}
				payload = rest
				if pc != nil {
					if pc.trace != 0 {
						s.tr.SpanCtx(obs.SpanClientAwait, obs.Op(resp.Op-1), pc.trace,
							pc.start, uint64(time.Since(pc.start)), resp.Code != wire.CodeOK)
					}
					pc.ch <- resp // buffered; never blocks
				}
			}
		case wire.KindErr:
			s.transportFailed(t, wire.ParseErrFrame(payload))
			return
		default:
			s.transportFailed(t, fmt.Errorf("%w: unexpected kind %d", wire.ErrBadMessage, kind))
			return
		}
	}
}

// Submit sends reqs as one explicit batch (IDs are assigned in place) and
// returns the responses in request order. It is the deterministic-batch
// interface for benchmarks; the fsapi methods use it one request at a time
// and rely on writer coalescing instead. Submit does not retry overloads —
// callers driving explicit batches see CodeOverload responses directly.
func (s *Session) Submit(reqs []wire.Request) ([]wire.Response, error) {
	if len(reqs) == 0 {
		return nil, nil
	}
	out := make([]wire.Response, len(reqs))
	if err := s.submitInto(reqs, out, nil); err != nil {
		return nil, err
	}
	return out, nil
}

// submitInto is the submission engine behind Submit and every fsapi call:
// it encodes reqs into a pooled refcounted buffer, registers pooled pending
// calls, queues the group for the writer, and collects the responses into
// out (len(out) == len(reqs)). dst, when non-nil, is handed to the first
// request's pending call so the reader can land read data directly in the
// caller's buffer; only single-request submissions pass it.
func (s *Session) submitInto(reqs []wire.Request, out []wire.Response, dst []byte) error {
	if len(reqs) > wire.MaxBatch {
		return fmt.Errorf("%w: %d requests > %d", wire.ErrBadMessage, len(reqs), wire.MaxBatch)
	}
	// Oversized paths are refused here, before any bytes hit the wire: the
	// server's decoder would reject them as a protocol error and tear down
	// the whole connection (and paths beyond uint16 would not even encode).
	est := 0
	for i := range reqs {
		if len(reqs[i].Path) > wire.MaxPath || len(reqs[i].Path2) > wire.MaxPath {
			return fsapi.ErrNameTooLong
		}
		est += 48 + len(reqs[i].Path) + len(reqs[i].Path2) + len(reqs[i].Data)
	}
	if err := s.err(); err != nil {
		return err
	}
	var pcsArr [8]*pendingCall
	var pcs []*pendingCall
	if len(reqs) <= len(pcsArr) {
		pcs = pcsArr[:len(reqs)]
	} else {
		pcs = make([]*pendingCall, len(reqs))
	}
	for i := range pcs {
		pcs[i] = getPC()
	}
	pcs[0].dst = dst
	// Trace sampling: one atomic load when the recorder is off, one more
	// counter increment when it is on; only the sampled 1-in-N submission
	// reads the clock and carries a trace context to the server.
	var trace uint64
	var traceStart time.Time
	if s.tr.TraceEnabled() {
		if n := s.traceCtr.Add(1); n&s.traceMask == 0 {
			trace = s.traceBase | (n & (1<<48 - 1))
			traceStart = time.Now()
		}
	}
	rb := getRefBuf(est)
	payload := rb.buf.B
	s.mu.Lock()
	for i := range reqs {
		// IDs are uint32 on the wire, so a long-lived session's counter can
		// wrap; skip past any ID still pending so a reply is never routed
		// to the wrong waiter.
		id := s.seq.Add(1)
		for {
			if _, busy := s.pend[id]; !busy {
				break
			}
			id = s.seq.Add(1)
		}
		reqs[i].ID = id
		start := len(payload)
		payload = wire.AppendRequest(payload, &reqs[i])
		s.subNo++
		pc := pcs[i]
		pc.seg = payload[start:len(payload):len(payload)]
		pc.seqNo = s.subNo
		pc.rb = rb
		if trace != 0 {
			pc.trace = trace
			pc.start = traceStart
		}
		s.pend[id] = pc
	}
	rb.buf.B = payload
	// One reference per pending call plus one for the writer.
	rb.refs.Store(int32(len(reqs)) + 1)
	s.mu.Unlock()
	if len(payload) > maxCoalesce {
		s.unregisterPCs(reqs, pcs)
		rb.release() // the writer's reference; the send never happens
		return wire.ErrFrameTooLarge
	}
	select {
	case s.sendq <- sendItem{rb: rb, payload: payload, n: len(reqs), trace: trace, start: traceStart}:
	case <-s.dead:
		s.unregisterPCs(reqs, pcs)
		rb.release()
		return s.err()
	}
	for i := range pcs {
		resp, err := s.waitPC(reqs[i].ID, pcs[i])
		if err != nil {
			s.unregisterPCs(reqs[i+1:], pcs[i+1:])
			return err
		}
		out[i] = resp
	}
	return nil
}

// unregisterPCs withdraws pending calls after a failed submit, releasing
// each one that is still claimable (present in pend). A call the reader
// already claimed is leaked to the GC instead of pooled — the reader may be
// delivering into it right now.
func (s *Session) unregisterPCs(reqs []wire.Request, pcs []*pendingCall) {
	for i := range reqs {
		s.mu.Lock()
		cur, ok := s.pend[reqs[i].ID]
		mine := ok && cur == pcs[i]
		if mine {
			delete(s.pend, reqs[i].ID)
		}
		s.mu.Unlock()
		if mine {
			s.retirePC(pcs[i])
		}
	}
}

// retirePC releases a fully-owned pending call: its request-buffer
// reference and the call itself return to their pools.
func (s *Session) retirePC(pc *pendingCall) {
	if pc.rb != nil {
		pc.rb.release()
	}
	putPC(pc)
}

// waitPC blocks for id's response, preferring a delivered response over the
// session's death (the reply may have raced the failure). On death it
// claims the call back out of pend before giving up — whoever removes a
// call from pend owns it, so a successful claim-back guarantees no reader
// will ever touch the call (or its dst buffer) again. If the reader won the
// claim, its delivery or re-registration is imminent: spin until one
// happens.
func (s *Session) waitPC(id uint32, pc *pendingCall) (wire.Response, error) {
	select {
	case r := <-pc.ch:
		s.retirePC(pc)
		return r, nil
	case <-s.dead:
	}
	for {
		select {
		case r := <-pc.ch:
			s.retirePC(pc)
			return r, nil
		default:
		}
		s.mu.Lock()
		cur, ok := s.pend[id]
		mine := ok && cur == pc
		if mine {
			delete(s.pend, id)
		}
		s.mu.Unlock()
		if mine {
			err := s.err()
			s.retirePC(pc)
			return wire.Response{}, err
		}
		// Claimed by a reader mid-decode; the session is already dead, so
		// latency is irrelevant — yield until it delivers or re-registers.
		time.Sleep(100 * time.Microsecond)
	}
}

// call performs one request/response round trip. Overloaded answers (the
// server shed the request under pressure) are retried transparently with
// jittered, doubling backoff, bounded in both attempts and total delay.
func (s *Session) call(req wire.Request) (wire.Response, error) {
	return s.callDst(req, nil)
}

// callDst is call with a destination buffer for read data (see submitInto).
// The single-request round trip runs with stack-allocated request and
// response slots — no per-call heap allocation.
func (s *Session) callDst(req wire.Request, dst []byte) (wire.Response, error) {
	o := &s.r.opts
	var backoff, total time.Duration
	for attempt := 0; ; attempt++ {
		var one [1]wire.Request
		var out [1]wire.Response
		one[0] = req
		if err := s.submitInto(one[:], out[:], dst); err != nil {
			return wire.Response{}, err
		}
		resp := out[0]
		if resp.Code != wire.CodeOverload || attempt >= o.OverloadRetries || total >= o.OverloadBudget {
			return resp, nil
		}
		if backoff == 0 {
			backoff = o.OverloadBackoff
		}
		d := backoff/2 + time.Duration(rand.Int63n(int64(backoff/2)+1))
		select {
		case <-time.After(d):
		case <-s.dead:
			return wire.Response{}, s.err()
		}
		total += d
		if backoff < 128*time.Millisecond {
			backoff *= 2
		}
		s.r.st.overloadRetries.Add(1)
	}
}

// --- fsapi.Client ---------------------------------------------------------

// Create creates a regular file and opens it for writing.
func (s *Session) Create(path string, perm uint32) (fsapi.FD, error) {
	resp, err := s.call(wire.Request{Op: wire.OpCreate, Path: path, Perm: perm})
	if err != nil {
		return -1, err
	}
	if err := resp.Err(); err != nil {
		return -1, err
	}
	return resp.FD, nil
}

// Open opens an existing file (or creates with OCreate).
func (s *Session) Open(path string, flags fsapi.OpenFlag, perm uint32) (fsapi.FD, error) {
	resp, err := s.call(wire.Request{Op: wire.OpOpen, Path: path, Flags: uint32(flags), Perm: perm})
	if err != nil {
		return -1, err
	}
	if err := resp.Err(); err != nil {
		return -1, err
	}
	return resp.FD, nil
}

// Close releases the descriptor.
func (s *Session) Close(fd fsapi.FD) error {
	resp, err := s.call(wire.Request{Op: wire.OpClose, FD: fd})
	if err != nil {
		return err
	}
	return resp.Err()
}

// Read reads from the descriptor's current position, chunking requests
// larger than wire.MaxIO into sequential wire reads. Each chunk's
// destination slice rides the request down to the reply decoder, so the
// data is copied exactly once: frame buffer → p.
func (s *Session) Read(fd fsapi.FD, p []byte) (int, error) {
	total := 0
	for {
		ask := len(p) - total
		if ask > wire.MaxIO {
			ask = wire.MaxIO
		}
		dst := p[total : total+ask : total+ask]
		resp, err := s.callDst(wire.Request{Op: wire.OpRead, FD: fd, Size: uint32(ask)}, dst)
		if err == nil {
			err = resp.Err()
		}
		if err != nil {
			if total > 0 {
				return total, nil
			}
			return 0, err
		}
		n := readInto(dst, resp.Data, p[total:])
		total += n
		if n < ask || total == len(p) {
			return total, nil
		}
	}
}

// Pread reads at an explicit offset without moving the position, with the
// same single-copy destination plumbing as Read.
func (s *Session) Pread(fd fsapi.FD, p []byte, off uint64) (int, error) {
	total := 0
	for {
		ask := len(p) - total
		if ask > wire.MaxIO {
			ask = wire.MaxIO
		}
		dst := p[total : total+ask : total+ask]
		resp, err := s.callDst(wire.Request{Op: wire.OpPread, FD: fd, Size: uint32(ask), Off: off + uint64(total)}, dst)
		if err == nil {
			err = resp.Err()
		}
		if err != nil {
			if total > 0 {
				return total, nil
			}
			return 0, err
		}
		n := readInto(dst, resp.Data, p[total:])
		total += n
		if n < ask || total == len(p) {
			return total, nil
		}
	}
}

// readInto finalizes a read chunk: when the decoder already landed data in
// dst the bytes are in place, otherwise (oversized or foreign backing) they
// are copied into rest.
func readInto(dst, data, rest []byte) int {
	if len(data) == 0 {
		return 0
	}
	if &data[0] == &dst[0] && len(data) <= len(dst) {
		return len(data)
	}
	return copy(rest, data)
}

// Write writes at the descriptor's current position, chunking payloads
// larger than wire.MaxIO.
func (s *Session) Write(fd fsapi.FD, p []byte) (int, error) {
	total := 0
	for {
		chunk := p[total:]
		if len(chunk) > wire.MaxIO {
			chunk = chunk[:wire.MaxIO]
		}
		resp, err := s.call(wire.Request{Op: wire.OpWrite, FD: fd, Data: chunk})
		if err == nil {
			err = resp.Err()
		}
		if err != nil {
			if total > 0 {
				return total, nil
			}
			return 0, err
		}
		total += int(resp.N)
		if int(resp.N) < len(chunk) || total == len(p) {
			return total, nil
		}
	}
}

// Pwrite writes at an explicit offset without moving the position.
func (s *Session) Pwrite(fd fsapi.FD, p []byte, off uint64) (int, error) {
	total := 0
	for {
		chunk := p[total:]
		if len(chunk) > wire.MaxIO {
			chunk = chunk[:wire.MaxIO]
		}
		resp, err := s.call(wire.Request{Op: wire.OpPwrite, FD: fd, Data: chunk, Off: off + uint64(total)})
		if err == nil {
			err = resp.Err()
		}
		if err != nil {
			if total > 0 {
				return total, nil
			}
			return 0, err
		}
		total += int(resp.N)
		if int(resp.N) < len(chunk) || total == len(p) {
			return total, nil
		}
	}
}

// Seek repositions the descriptor.
func (s *Session) Seek(fd fsapi.FD, off int64, whence int) (int64, error) {
	resp, err := s.call(wire.Request{Op: wire.OpSeek, FD: fd, Off: uint64(off), Flags: uint32(whence)})
	if err != nil {
		return 0, err
	}
	if err := resp.Err(); err != nil {
		return 0, err
	}
	return resp.Off, nil
}

// Fsync persists outstanding updates of the file.
func (s *Session) Fsync(fd fsapi.FD) error {
	resp, err := s.call(wire.Request{Op: wire.OpFsync, FD: fd})
	if err != nil {
		return err
	}
	return resp.Err()
}

// Ftruncate sets the file size.
func (s *Session) Ftruncate(fd fsapi.FD, size uint64) error {
	resp, err := s.call(wire.Request{Op: wire.OpFtruncate, FD: fd, Off: size})
	if err != nil {
		return err
	}
	return resp.Err()
}

// Fallocate preallocates space for [0, size).
func (s *Session) Fallocate(fd fsapi.FD, size uint64) error {
	resp, err := s.call(wire.Request{Op: wire.OpFallocate, FD: fd, Off: size})
	if err != nil {
		return err
	}
	return resp.Err()
}

// Fstat stats an open descriptor.
func (s *Session) Fstat(fd fsapi.FD) (fsapi.Stat, error) {
	resp, err := s.call(wire.Request{Op: wire.OpFstat, FD: fd})
	if err != nil {
		return fsapi.Stat{}, err
	}
	if err := resp.Err(); err != nil {
		return fsapi.Stat{}, err
	}
	return resp.Stat, nil
}

// Stat resolves a path (following symlinks) and returns its attributes.
func (s *Session) Stat(path string) (fsapi.Stat, error) {
	resp, err := s.call(wire.Request{Op: wire.OpStat, Path: path})
	if err != nil {
		return fsapi.Stat{}, err
	}
	if err := resp.Err(); err != nil {
		return fsapi.Stat{}, err
	}
	return resp.Stat, nil
}

// Lstat is Stat without following a final symlink.
func (s *Session) Lstat(path string) (fsapi.Stat, error) {
	resp, err := s.call(wire.Request{Op: wire.OpLstat, Path: path})
	if err != nil {
		return fsapi.Stat{}, err
	}
	if err := resp.Err(); err != nil {
		return fsapi.Stat{}, err
	}
	return resp.Stat, nil
}

// Mkdir creates a directory.
func (s *Session) Mkdir(path string, perm uint32) error {
	resp, err := s.call(wire.Request{Op: wire.OpMkdir, Path: path, Perm: perm})
	if err != nil {
		return err
	}
	return resp.Err()
}

// Rmdir removes an empty directory.
func (s *Session) Rmdir(path string) error {
	resp, err := s.call(wire.Request{Op: wire.OpRmdir, Path: path})
	if err != nil {
		return err
	}
	return resp.Err()
}

// Unlink removes a file or symlink.
func (s *Session) Unlink(path string) error {
	resp, err := s.call(wire.Request{Op: wire.OpUnlink, Path: path})
	if err != nil {
		return err
	}
	return resp.Err()
}

// Rename moves old to new.
func (s *Session) Rename(oldPath, newPath string) error {
	resp, err := s.call(wire.Request{Op: wire.OpRename, Path: oldPath, Path2: newPath})
	if err != nil {
		return err
	}
	return resp.Err()
}

// Symlink creates a symbolic link at linkPath pointing to target.
func (s *Session) Symlink(target, linkPath string) error {
	resp, err := s.call(wire.Request{Op: wire.OpSymlink, Path: target, Path2: linkPath})
	if err != nil {
		return err
	}
	return resp.Err()
}

// Link creates a hard link at newPath for oldPath's inode.
func (s *Session) Link(oldPath, newPath string) error {
	resp, err := s.call(wire.Request{Op: wire.OpLink, Path: oldPath, Path2: newPath})
	if err != nil {
		return err
	}
	return resp.Err()
}

// Readlink returns a symlink's target.
func (s *Session) Readlink(path string) (string, error) {
	resp, err := s.call(wire.Request{Op: wire.OpReadlink, Path: path})
	if err != nil {
		return "", err
	}
	if err := resp.Err(); err != nil {
		return "", err
	}
	return resp.Str, nil
}

// ReadDir lists a directory.
func (s *Session) ReadDir(path string) ([]fsapi.DirEntry, error) {
	resp, err := s.call(wire.Request{Op: wire.OpReadDir, Path: path})
	if err != nil {
		return nil, err
	}
	if err := resp.Err(); err != nil {
		return nil, err
	}
	return resp.Dir, nil
}

// Chmod updates permission bits.
func (s *Session) Chmod(path string, perm uint32) error {
	resp, err := s.call(wire.Request{Op: wire.OpChmod, Path: path, Perm: perm})
	if err != nil {
		return err
	}
	return resp.Err()
}

// Utimes sets access/modification times (unix nanoseconds).
func (s *Session) Utimes(path string, atime, mtime int64) error {
	resp, err := s.call(wire.Request{Op: wire.OpUtimes, Path: path, Off: uint64(atime), Off2: uint64(mtime)})
	if err != nil {
		return err
	}
	return resp.Err()
}

// Detach releases the remote client (the server closes its open
// descriptors) and shuts the connection down. A connection loss during
// detach does not trigger failover: the caller wanted the session gone.
func (s *Session) Detach() error {
	s.closing.Store(true)
	resp, callErr := s.call(wire.Request{Op: wire.OpDetach})
	s.fail(ErrClosed)
	if callErr != nil {
		return callErr
	}
	return resp.Err()
}
