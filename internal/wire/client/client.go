// Package client is the remote side of the wire protocol: a Remote is an
// fsapi.FileSystem backed by a simurghd server, and each Attach yields a
// Session — an fsapi.Client whose calls travel the network. Sessions
// pipeline: every call is enqueued to a writer goroutine that coalesces
// whatever is waiting into one KindBatch frame (AnyCall-style aggregation),
// so N goroutines issuing calls concurrently share round trips instead of
// paying one each. Replies are matched by request ID, out of order.
//
// The packages above this one do not know the network exists: fstest's
// conformance suite, simurghbench, and simurghsh run unmodified against a
// Remote.
package client

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"simurgh/internal/fsapi"
	"simurgh/internal/wire"
)

// ErrClosed reports use of a detached or failed session.
var ErrClosed = errors.New("wire client: session closed")

// maxCoalesce bounds the payload the writer merges into one batch frame,
// leaving frame-header headroom under wire.MaxFrame.
const maxCoalesce = wire.MaxFrame - 1024

// Options tunes a Remote.
type Options struct {
	// DialTimeout bounds each TCP connect. Default 5s.
	DialTimeout time.Duration
	// Warm pre-dials this many idle connections at Dial time so the first
	// attaches skip connect latency. Default 0.
	Warm int
}

// Remote is a served volume reached over the network. It implements
// fsapi.FileSystem: Attach opens (or reuses) a connection and performs the
// wire handshake.
type Remote struct {
	addr string
	opts Options

	mu     sync.Mutex
	idle   []net.Conn // connected but not yet handshaken
	name   string     // remote FS name, learned from the first AttachOK
	closed bool
}

// Dial prepares a Remote for addr. The server is first contacted at Attach
// (or immediately, for Options.Warm pre-dialed connections).
func Dial(addr string, opts Options) (*Remote, error) {
	if opts.DialTimeout <= 0 {
		opts.DialTimeout = 5 * time.Second
	}
	r := &Remote{addr: addr, opts: opts}
	for i := 0; i < opts.Warm; i++ {
		conn, err := net.DialTimeout("tcp", addr, opts.DialTimeout)
		if err != nil {
			r.Close()
			return nil, err
		}
		r.mu.Lock()
		r.idle = append(r.idle, conn)
		r.mu.Unlock()
	}
	return r, nil
}

// Name identifies the remote file system once known ("wire(<addr>)" before
// the first successful attach).
func (r *Remote) Name() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.name != "" {
		return "wire(" + r.name + ")"
	}
	return "wire(" + r.addr + ")"
}

// Close releases idle connections. Live sessions are unaffected; detach
// them individually.
func (r *Remote) Close() error {
	r.mu.Lock()
	idle := r.idle
	r.idle, r.closed = nil, true
	r.mu.Unlock()
	for _, c := range idle {
		c.Close()
	}
	return nil
}

// conn returns a transport: a pre-dialed idle connection when one is
// available, a fresh dial otherwise.
func (r *Remote) conn() (net.Conn, error) {
	r.mu.Lock()
	if n := len(r.idle); n > 0 {
		c := r.idle[n-1]
		r.idle = r.idle[:n-1]
		r.mu.Unlock()
		return c, nil
	}
	r.mu.Unlock()
	return net.DialTimeout("tcp", r.addr, r.opts.DialTimeout)
}

// Attach opens a session for cred: one connection, one server-side
// fsapi.Client with its own open-file table — the remote equivalent of a
// process preloading the library.
func (r *Remote) Attach(cred fsapi.Cred) (fsapi.Client, error) {
	conn, err := r.conn()
	if err != nil {
		return nil, err
	}
	fr := wire.NewFrameReader(conn)
	name, err := handshake(conn, fr, cred, r.opts.DialTimeout)
	if err != nil {
		conn.Close()
		return nil, err
	}
	r.mu.Lock()
	r.name = name
	r.mu.Unlock()

	s := &Session{
		conn:    conn,
		fr:      fr,
		pending: make(map[uint32]chan wire.Response),
		sendq:   make(chan sendItem, 256),
		dead:    make(chan struct{}),
	}
	go s.writeLoop()
	go s.readLoop()
	return s, nil
}

// handshake sends KindAttach and waits for KindAttachOK, returning the
// server's file system name. fr must be the reader the session will keep
// using, so no buffered bytes are lost across the handoff.
func handshake(conn net.Conn, fr *wire.FrameReader, cred fsapi.Cred, timeout time.Duration) (string, error) {
	conn.SetDeadline(time.Now().Add(timeout))
	defer conn.SetDeadline(time.Time{})
	if err := wire.WriteFrame(conn, wire.KindAttach, wire.AppendAttach(nil, cred)); err != nil {
		return "", err
	}
	kind, payload, err := fr.Next()
	if err != nil {
		return "", err
	}
	switch kind {
	case wire.KindAttachOK:
		return string(payload), nil
	case wire.KindErr:
		return "", wire.ParseErrFrame(payload)
	default:
		return "", fmt.Errorf("%w: unexpected kind %d in handshake", wire.ErrBadMessage, kind)
	}
}

// sendItem is one encoded request group queued for the writer.
type sendItem struct {
	payload []byte
	n       int // requests in payload
}

// Session is one attached remote client. Safe for concurrent use; calls
// from multiple goroutines coalesce into shared batch frames.
type Session struct {
	conn net.Conn
	fr   *wire.FrameReader

	seq     atomic.Uint32
	mu      sync.Mutex
	pending map[uint32]chan wire.Response

	sendq chan sendItem

	failOnce sync.Once
	dead     chan struct{}
	deadErr  error
}

// fail terminates the session once: records err, wakes every waiter, and
// closes the transport.
func (s *Session) fail(err error) {
	s.failOnce.Do(func() {
		s.deadErr = err
		close(s.dead)
		s.conn.Close()
	})
}

// err returns the session's terminal error.
func (s *Session) err() error {
	select {
	case <-s.dead:
		if s.deadErr != nil {
			return s.deadErr
		}
		return ErrClosed
	default:
		return nil
	}
}

// writeLoop drains the send queue, merging everything immediately available
// into one KindBatch frame, written with a single conn.Write per frame.
func (s *Session) writeLoop() {
	frame := make([]byte, 0, 64<<10)
	var held *sendItem
	for {
		var first sendItem
		if held != nil {
			first, held = *held, nil
		} else {
			select {
			case first = <-s.sendq:
			case <-s.dead:
				return
			}
		}
		// Reserve the 5-byte frame header, patch the length afterwards.
		frame = append(frame[:0], 0, 0, 0, 0, byte(wire.KindBatch))
		frame = append(frame, first.payload...)
		count := first.n
	coalesce:
		for count < wire.MaxBatch {
			select {
			case it := <-s.sendq:
				if len(frame)-5+len(it.payload) > maxCoalesce || count+it.n > wire.MaxBatch {
					held = &it
					break coalesce
				}
				frame = append(frame, it.payload...)
				count += it.n
			default:
				break coalesce
			}
		}
		binary.LittleEndian.PutUint32(frame[:4], uint32(len(frame)-4))
		if _, err := s.conn.Write(frame); err != nil {
			s.fail(err)
			return
		}
	}
}

// readLoop decodes reply frames and routes each response to its waiter.
func (s *Session) readLoop() {
	for {
		kind, payload, err := s.fr.Next()
		if err != nil {
			s.fail(err)
			return
		}
		switch kind {
		case wire.KindReply:
			resps, err := wire.DecodeReply(payload)
			if err != nil {
				s.fail(err)
				return
			}
			for i := range resps {
				s.mu.Lock()
				ch := s.pending[resps[i].ID]
				delete(s.pending, resps[i].ID)
				s.mu.Unlock()
				if ch != nil {
					ch <- resps[i] // buffered; never blocks
				}
			}
		case wire.KindErr:
			s.fail(wire.ParseErrFrame(payload))
			return
		default:
			s.fail(fmt.Errorf("%w: unexpected kind %d", wire.ErrBadMessage, kind))
			return
		}
	}
}

// Submit sends reqs as one explicit batch (IDs are assigned in place) and
// returns the responses in request order. It is the deterministic-batch
// interface for benchmarks; the fsapi methods use it one request at a time
// and rely on writer coalescing instead.
func (s *Session) Submit(reqs []wire.Request) ([]wire.Response, error) {
	if len(reqs) == 0 {
		return nil, nil
	}
	if len(reqs) > wire.MaxBatch {
		return nil, fmt.Errorf("%w: %d requests > %d", wire.ErrBadMessage, len(reqs), wire.MaxBatch)
	}
	// Oversized paths are refused here, before any bytes hit the wire: the
	// server's decoder would reject them as a protocol error and tear down
	// the whole connection (and paths beyond uint16 would not even encode).
	for i := range reqs {
		if len(reqs[i].Path) > wire.MaxPath || len(reqs[i].Path2) > wire.MaxPath {
			return nil, fsapi.ErrNameTooLong
		}
	}
	if err := s.err(); err != nil {
		return nil, err
	}
	chans := make([]chan wire.Response, len(reqs))
	var payload []byte
	s.mu.Lock()
	for i := range reqs {
		// IDs are uint32 on the wire, so a long-lived session's counter can
		// wrap; skip past any ID still pending so a reply is never routed
		// to the wrong waiter.
		id := s.seq.Add(1)
		for {
			if _, busy := s.pending[id]; !busy {
				break
			}
			id = s.seq.Add(1)
		}
		reqs[i].ID = id
		chans[i] = make(chan wire.Response, 1)
		s.pending[id] = chans[i]
		payload = wire.AppendRequest(payload, &reqs[i])
	}
	s.mu.Unlock()
	if len(payload) > maxCoalesce {
		s.unregister(reqs)
		return nil, wire.ErrFrameTooLarge
	}
	select {
	case s.sendq <- sendItem{payload: payload, n: len(reqs)}:
	case <-s.dead:
		s.unregister(reqs)
		return nil, s.err()
	}
	out := make([]wire.Response, len(reqs))
	for i := range chans {
		resp, err := s.wait(chans[i])
		if err != nil {
			s.unregister(reqs[i:])
			return nil, err
		}
		out[i] = resp
	}
	return out, nil
}

// unregister removes reqs' pending entries after a failed submit.
func (s *Session) unregister(reqs []wire.Request) {
	s.mu.Lock()
	for i := range reqs {
		delete(s.pending, reqs[i].ID)
	}
	s.mu.Unlock()
}

// wait blocks for one response, preferring a delivered response over the
// session's death (the reply may have raced the failure).
func (s *Session) wait(ch chan wire.Response) (wire.Response, error) {
	select {
	case r := <-ch:
		return r, nil
	case <-s.dead:
		select {
		case r := <-ch:
			return r, nil
		default:
		}
		return wire.Response{}, s.err()
	}
}

// call performs one request/response round trip.
func (s *Session) call(req wire.Request) (wire.Response, error) {
	one := [1]wire.Request{req}
	resps, err := s.Submit(one[:])
	if err != nil {
		return wire.Response{}, err
	}
	return resps[0], nil
}

// --- fsapi.Client ---------------------------------------------------------

// Create creates a regular file and opens it for writing.
func (s *Session) Create(path string, perm uint32) (fsapi.FD, error) {
	resp, err := s.call(wire.Request{Op: wire.OpCreate, Path: path, Perm: perm})
	if err != nil {
		return -1, err
	}
	if err := resp.Err(); err != nil {
		return -1, err
	}
	return resp.FD, nil
}

// Open opens an existing file (or creates with OCreate).
func (s *Session) Open(path string, flags fsapi.OpenFlag, perm uint32) (fsapi.FD, error) {
	resp, err := s.call(wire.Request{Op: wire.OpOpen, Path: path, Flags: uint32(flags), Perm: perm})
	if err != nil {
		return -1, err
	}
	if err := resp.Err(); err != nil {
		return -1, err
	}
	return resp.FD, nil
}

// Close releases the descriptor.
func (s *Session) Close(fd fsapi.FD) error {
	resp, err := s.call(wire.Request{Op: wire.OpClose, FD: fd})
	if err != nil {
		return err
	}
	return resp.Err()
}

// Read reads from the descriptor's current position, chunking requests
// larger than wire.MaxIO into sequential wire reads.
func (s *Session) Read(fd fsapi.FD, p []byte) (int, error) {
	total := 0
	for {
		ask := len(p) - total
		if ask > wire.MaxIO {
			ask = wire.MaxIO
		}
		resp, err := s.call(wire.Request{Op: wire.OpRead, FD: fd, Size: uint32(ask)})
		if err == nil {
			err = resp.Err()
		}
		if err != nil {
			if total > 0 {
				return total, nil
			}
			return 0, err
		}
		n := copy(p[total:], resp.Data)
		total += n
		if n < ask || total == len(p) {
			return total, nil
		}
	}
}

// Pread reads at an explicit offset without moving the position.
func (s *Session) Pread(fd fsapi.FD, p []byte, off uint64) (int, error) {
	total := 0
	for {
		ask := len(p) - total
		if ask > wire.MaxIO {
			ask = wire.MaxIO
		}
		resp, err := s.call(wire.Request{Op: wire.OpPread, FD: fd, Size: uint32(ask), Off: off + uint64(total)})
		if err == nil {
			err = resp.Err()
		}
		if err != nil {
			if total > 0 {
				return total, nil
			}
			return 0, err
		}
		n := copy(p[total:], resp.Data)
		total += n
		if n < ask || total == len(p) {
			return total, nil
		}
	}
}

// Write writes at the descriptor's current position, chunking payloads
// larger than wire.MaxIO.
func (s *Session) Write(fd fsapi.FD, p []byte) (int, error) {
	total := 0
	for {
		chunk := p[total:]
		if len(chunk) > wire.MaxIO {
			chunk = chunk[:wire.MaxIO]
		}
		resp, err := s.call(wire.Request{Op: wire.OpWrite, FD: fd, Data: chunk})
		if err == nil {
			err = resp.Err()
		}
		if err != nil {
			if total > 0 {
				return total, nil
			}
			return 0, err
		}
		total += int(resp.N)
		if int(resp.N) < len(chunk) || total == len(p) {
			return total, nil
		}
	}
}

// Pwrite writes at an explicit offset without moving the position.
func (s *Session) Pwrite(fd fsapi.FD, p []byte, off uint64) (int, error) {
	total := 0
	for {
		chunk := p[total:]
		if len(chunk) > wire.MaxIO {
			chunk = chunk[:wire.MaxIO]
		}
		resp, err := s.call(wire.Request{Op: wire.OpPwrite, FD: fd, Data: chunk, Off: off + uint64(total)})
		if err == nil {
			err = resp.Err()
		}
		if err != nil {
			if total > 0 {
				return total, nil
			}
			return 0, err
		}
		total += int(resp.N)
		if int(resp.N) < len(chunk) || total == len(p) {
			return total, nil
		}
	}
}

// Seek repositions the descriptor.
func (s *Session) Seek(fd fsapi.FD, off int64, whence int) (int64, error) {
	resp, err := s.call(wire.Request{Op: wire.OpSeek, FD: fd, Off: uint64(off), Flags: uint32(whence)})
	if err != nil {
		return 0, err
	}
	if err := resp.Err(); err != nil {
		return 0, err
	}
	return resp.Off, nil
}

// Fsync persists outstanding updates of the file.
func (s *Session) Fsync(fd fsapi.FD) error {
	resp, err := s.call(wire.Request{Op: wire.OpFsync, FD: fd})
	if err != nil {
		return err
	}
	return resp.Err()
}

// Ftruncate sets the file size.
func (s *Session) Ftruncate(fd fsapi.FD, size uint64) error {
	resp, err := s.call(wire.Request{Op: wire.OpFtruncate, FD: fd, Off: size})
	if err != nil {
		return err
	}
	return resp.Err()
}

// Fallocate preallocates space for [0, size).
func (s *Session) Fallocate(fd fsapi.FD, size uint64) error {
	resp, err := s.call(wire.Request{Op: wire.OpFallocate, FD: fd, Off: size})
	if err != nil {
		return err
	}
	return resp.Err()
}

// Fstat stats an open descriptor.
func (s *Session) Fstat(fd fsapi.FD) (fsapi.Stat, error) {
	resp, err := s.call(wire.Request{Op: wire.OpFstat, FD: fd})
	if err != nil {
		return fsapi.Stat{}, err
	}
	if err := resp.Err(); err != nil {
		return fsapi.Stat{}, err
	}
	return resp.Stat, nil
}

// Stat resolves a path (following symlinks) and returns its attributes.
func (s *Session) Stat(path string) (fsapi.Stat, error) {
	resp, err := s.call(wire.Request{Op: wire.OpStat, Path: path})
	if err != nil {
		return fsapi.Stat{}, err
	}
	if err := resp.Err(); err != nil {
		return fsapi.Stat{}, err
	}
	return resp.Stat, nil
}

// Lstat is Stat without following a final symlink.
func (s *Session) Lstat(path string) (fsapi.Stat, error) {
	resp, err := s.call(wire.Request{Op: wire.OpLstat, Path: path})
	if err != nil {
		return fsapi.Stat{}, err
	}
	if err := resp.Err(); err != nil {
		return fsapi.Stat{}, err
	}
	return resp.Stat, nil
}

// Mkdir creates a directory.
func (s *Session) Mkdir(path string, perm uint32) error {
	resp, err := s.call(wire.Request{Op: wire.OpMkdir, Path: path, Perm: perm})
	if err != nil {
		return err
	}
	return resp.Err()
}

// Rmdir removes an empty directory.
func (s *Session) Rmdir(path string) error {
	resp, err := s.call(wire.Request{Op: wire.OpRmdir, Path: path})
	if err != nil {
		return err
	}
	return resp.Err()
}

// Unlink removes a file or symlink.
func (s *Session) Unlink(path string) error {
	resp, err := s.call(wire.Request{Op: wire.OpUnlink, Path: path})
	if err != nil {
		return err
	}
	return resp.Err()
}

// Rename moves old to new.
func (s *Session) Rename(oldPath, newPath string) error {
	resp, err := s.call(wire.Request{Op: wire.OpRename, Path: oldPath, Path2: newPath})
	if err != nil {
		return err
	}
	return resp.Err()
}

// Symlink creates a symbolic link at linkPath pointing to target.
func (s *Session) Symlink(target, linkPath string) error {
	resp, err := s.call(wire.Request{Op: wire.OpSymlink, Path: target, Path2: linkPath})
	if err != nil {
		return err
	}
	return resp.Err()
}

// Link creates a hard link at newPath for oldPath's inode.
func (s *Session) Link(oldPath, newPath string) error {
	resp, err := s.call(wire.Request{Op: wire.OpLink, Path: oldPath, Path2: newPath})
	if err != nil {
		return err
	}
	return resp.Err()
}

// Readlink returns a symlink's target.
func (s *Session) Readlink(path string) (string, error) {
	resp, err := s.call(wire.Request{Op: wire.OpReadlink, Path: path})
	if err != nil {
		return "", err
	}
	if err := resp.Err(); err != nil {
		return "", err
	}
	return resp.Str, nil
}

// ReadDir lists a directory.
func (s *Session) ReadDir(path string) ([]fsapi.DirEntry, error) {
	resp, err := s.call(wire.Request{Op: wire.OpReadDir, Path: path})
	if err != nil {
		return nil, err
	}
	if err := resp.Err(); err != nil {
		return nil, err
	}
	return resp.Dir, nil
}

// Chmod updates permission bits.
func (s *Session) Chmod(path string, perm uint32) error {
	resp, err := s.call(wire.Request{Op: wire.OpChmod, Path: path, Perm: perm})
	if err != nil {
		return err
	}
	return resp.Err()
}

// Utimes sets access/modification times (unix nanoseconds).
func (s *Session) Utimes(path string, atime, mtime int64) error {
	resp, err := s.call(wire.Request{Op: wire.OpUtimes, Path: path, Off: uint64(atime), Off2: uint64(mtime)})
	if err != nil {
		return err
	}
	return resp.Err()
}

// Detach releases the remote client (the server closes its open
// descriptors) and shuts the connection down.
func (s *Session) Detach() error {
	resp, callErr := s.call(wire.Request{Op: wire.OpDetach})
	s.fail(ErrClosed)
	if callErr != nil {
		return callErr
	}
	return resp.Err()
}
