// Package client is the remote side of the wire protocol: a Remote is an
// fsapi.FileSystem backed by a simurghd server, and each Attach yields a
// Session — an fsapi.Client whose calls travel the network. Sessions
// pipeline: every call is enqueued to a writer goroutine that coalesces
// whatever is waiting into one KindBatch frame (AnyCall-style aggregation),
// so N goroutines issuing calls concurrently share round trips instead of
// paying one each. Replies are matched by request ID, out of order.
//
// A Remote may name several addresses (a replicated primary/backup group):
// attaches probe the list, follow KindRedirect frames to the current
// primary, and — when failover is enabled — a Session that loses its
// connection re-attaches to whichever node now serves the volume, resumes
// its server-side session by client ID, and replays its unacknowledged
// requests (the server deduplicates by request ID, so replays are
// exactly-once for replicated operations).
//
// The packages above this one do not know the network exists: fstest's
// conformance suite, simurghbench, and simurghsh run unmodified against a
// Remote.
package client

import (
	crand "crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"simurgh/internal/fsapi"
	"simurgh/internal/obs"
	"simurgh/internal/wire"
)

// ErrClosed reports use of a detached or failed session.
var ErrClosed = errors.New("wire client: session closed")

// ErrNoPrimary reports that no address of the dial list produced a serving
// primary within the failover budget.
var ErrNoPrimary = errors.New("wire client: no reachable primary")

// maxCoalesce bounds the payload the writer merges into one batch frame,
// leaving frame-header headroom under wire.MaxFrame.
const maxCoalesce = wire.MaxFrame - 1024

// maxRedirectHops bounds how many KindRedirect frames one attach follows.
const maxRedirectHops = 4

// Options tunes a Remote.
type Options struct {
	// DialTimeout bounds each TCP connect. Default 5s.
	DialTimeout time.Duration
	// Warm pre-dials this many idle connections at Dial time so the first
	// attaches skip connect latency. Default 0.
	Warm int
	// IdleTimeout reaps pooled connections that have sat idle this long,
	// so a burst of traffic does not pin sockets forever. Default 60s.
	IdleTimeout time.Duration
	// FailoverTimeout is the total budget a disconnected session spends
	// re-resolving the primary before it fails permanently. Zero disables
	// reconnection unless the dial list has more than one address, in
	// which case the default is 10s.
	FailoverTimeout time.Duration
	// OverloadRetries bounds transparent retries of a call answered with
	// CodeOverload (the server means "try again"). Default 4; negative
	// disables retrying.
	OverloadRetries int
	// OverloadBackoff is the first retry's backoff (jittered, doubling).
	// Default 2ms.
	OverloadBackoff time.Duration
	// OverloadBudget caps the total delay overload retries may add to one
	// call. Default 1s.
	OverloadBudget time.Duration
	// Obs, when set, makes sessions participants in distributed tracing:
	// 1-in-TraceSample submissions are tagged with a trace ID, sent in
	// KindBatchTraced frames, and produce client-side spans (enqueue wait,
	// vectored send, round trip) in this registry when its flight recorder
	// is enabled. Nil disables tracing entirely.
	Obs *obs.Registry
	// TraceSample is the trace sampling period (rounded up to a power of
	// two): one submission in TraceSample carries a trace context. Default
	// 1024.
	TraceSample int
}

func (o *Options) fillDefaults(multiAddr bool) {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.IdleTimeout <= 0 {
		o.IdleTimeout = 60 * time.Second
	}
	if o.FailoverTimeout <= 0 && multiAddr {
		o.FailoverTimeout = 10 * time.Second
	}
	if o.OverloadRetries == 0 {
		o.OverloadRetries = 4
	}
	if o.OverloadBackoff <= 0 {
		o.OverloadBackoff = 2 * time.Millisecond
	}
	if o.OverloadBudget <= 0 {
		o.OverloadBudget = time.Second
	}
	if o.TraceSample <= 0 {
		o.TraceSample = 1024
	}
}

// Stats is a point-in-time snapshot of a Remote's client-side counters.
type Stats struct {
	// Dials counts TCP connections established.
	Dials uint64
	// OverloadRetries counts calls transparently retried after a
	// CodeOverload answer.
	OverloadRetries uint64
	// Redirects counts KindRedirect frames followed to another node.
	Redirects uint64
	// Failovers counts successful session re-attaches after a lost
	// connection.
	Failovers uint64
	// Replays counts requests re-sent during failovers.
	Replays uint64
	// IdleReaped counts pooled connections closed by the idle reaper.
	IdleReaped uint64
}

// stats is the live (atomic) form of Stats, shared by Remote and Sessions.
type stats struct {
	dials           atomic.Uint64
	overloadRetries atomic.Uint64
	redirects       atomic.Uint64
	failovers       atomic.Uint64
	replays         atomic.Uint64
	idleReaped      atomic.Uint64
}

func (s *stats) snapshot() Stats {
	return Stats{
		Dials:           s.dials.Load(),
		OverloadRetries: s.overloadRetries.Load(),
		Redirects:       s.redirects.Load(),
		Failovers:       s.failovers.Load(),
		Replays:         s.replays.Load(),
		IdleReaped:      s.idleReaped.Load(),
	}
}

// idleConn is one pooled, not-yet-handshaken connection.
type idleConn struct {
	c     net.Conn
	since time.Time
}

// Remote is a served volume reached over the network. It implements
// fsapi.FileSystem: Attach opens (or reuses) a connection and performs the
// wire handshake.
type Remote struct {
	addrs []string
	opts  Options
	st    stats

	mu      sync.Mutex
	idle    []idleConn
	name    string // remote FS name, learned from the first AttachOK
	primary string // last address that served an attach
	closed  bool
	reaper  chan struct{} // closes the reaper goroutine; nil before it starts

	// claim, when claimed, is the shard claim attaches carry (set by the
	// router): the server refuses the attach with KindMoved when the shard
	// is served elsewhere, instead of silently handing out a session that
	// every subsequent operation would fence.
	claimShard uint32
	claimEpoch uint64
	claimed    bool
}

// SetClaim makes every subsequent attach claim a shard at a map epoch
// (router use; see internal/shard).
func (r *Remote) SetClaim(shardID uint32, epoch uint64) {
	r.mu.Lock()
	r.claimShard, r.claimEpoch, r.claimed = shardID, epoch, true
	r.mu.Unlock()
}

// SetAddrs replaces the dial list — the router points a shard's Remote at
// the shard's new owner group after a migration. Pooled idle connections
// to the old group are dropped.
func (r *Remote) SetAddrs(addrs []string) {
	if len(addrs) == 0 {
		return
	}
	r.mu.Lock()
	r.addrs = append(r.addrs[:0:0], addrs...)
	r.primary = addrs[0]
	idle := r.idle
	r.idle = nil
	r.mu.Unlock()
	for _, ic := range idle {
		ic.c.Close()
	}
}

// Addrs snapshots the current dial list.
func (r *Remote) Addrs() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.addrs...)
}

// Dial prepares a Remote for addr — a host:port, or a comma-separated list
// of them (a replication group; the client finds the primary). The servers
// are first contacted at Attach (or immediately, for Options.Warm
// pre-dialed connections).
func Dial(addr string, opts Options) (*Remote, error) {
	addrs := splitAddrs(addr)
	if len(addrs) == 0 {
		return nil, fmt.Errorf("wire client: empty address")
	}
	opts.fillDefaults(len(addrs) > 1)
	r := &Remote{addrs: addrs, opts: opts, primary: addrs[0]}
	for i := 0; i < opts.Warm; i++ {
		conn, err := r.dial(addrs[0])
		if err != nil {
			r.Close()
			return nil, err
		}
		r.mu.Lock()
		r.idle = append(r.idle, idleConn{c: conn, since: time.Now()})
		r.startReaperLocked()
		r.mu.Unlock()
	}
	return r, nil
}

func splitAddrs(addr string) []string {
	var out []string
	for _, a := range strings.Split(addr, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

func (r *Remote) dial(addr string) (net.Conn, error) {
	conn, err := net.DialTimeout("tcp", addr, r.opts.DialTimeout)
	if err == nil {
		r.st.dials.Add(1)
	}
	return conn, err
}

// Stats snapshots the client-side counters.
func (r *Remote) Stats() Stats { return r.st.snapshot() }

// PoolSize reports how many pre-dialed idle connections are pooled.
func (r *Remote) PoolSize() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.idle)
}

// Name identifies the remote file system once known ("wire(<addr>)" before
// the first successful attach).
func (r *Remote) Name() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.name != "" {
		return "wire(" + r.name + ")"
	}
	return "wire(" + strings.Join(r.addrs, ",") + ")"
}

// Close releases idle connections and stops the reaper. Live sessions are
// unaffected; detach them individually.
func (r *Remote) Close() error {
	r.mu.Lock()
	idle := r.idle
	r.idle, r.closed = nil, true
	if r.reaper != nil {
		close(r.reaper)
		r.reaper = nil
	}
	r.mu.Unlock()
	for _, ic := range idle {
		ic.c.Close()
	}
	return nil
}

// startReaperLocked launches the idle-pool reaper if it is not running.
func (r *Remote) startReaperLocked() {
	if r.reaper != nil || r.closed {
		return
	}
	stop := make(chan struct{})
	r.reaper = stop
	interval := r.opts.IdleTimeout / 4
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				r.reapIdle(time.Now())
			}
		}
	}()
}

// reapIdle closes pooled connections idle beyond IdleTimeout.
func (r *Remote) reapIdle(now time.Time) {
	var dead []net.Conn
	r.mu.Lock()
	kept := r.idle[:0]
	for _, ic := range r.idle {
		if now.Sub(ic.since) >= r.opts.IdleTimeout {
			dead = append(dead, ic.c)
		} else {
			kept = append(kept, ic)
		}
	}
	r.idle = kept
	r.mu.Unlock()
	for _, c := range dead {
		c.Close()
		r.st.idleReaped.Add(1)
	}
}

// conn returns a transport to addr: a pooled idle connection when one is
// available (pooled connections all point at the first address), a fresh
// dial otherwise.
func (r *Remote) conn(addr string) (net.Conn, error) {
	r.mu.Lock()
	if addr == r.addrs[0] {
		if n := len(r.idle); n > 0 {
			ic := r.idle[n-1]
			r.idle = r.idle[:n-1]
			r.mu.Unlock()
			return ic.c, nil
		}
	}
	r.mu.Unlock()
	return r.dial(addr)
}

// redirectErr carries a KindRedirect answer out of the handshake.
type redirectErr struct{ addr string }

func (e *redirectErr) Error() string { return "wire client: redirected to " + e.addr }

// movedErr carries a KindMoved answer out of the handshake: the claimed
// shard is served elsewhere. It unwraps to wire.ErrMoved so routers can
// match it and refetch the shard map.
type movedErr struct{ mv wire.Moved }

func (e *movedErr) Error() string {
	return fmt.Sprintf("wire client: shard %d moved (epoch %d, owner %q)", e.mv.Shard, e.mv.Epoch, e.mv.Addr)
}

func (e *movedErr) Unwrap() error { return wire.ErrMoved }

// attachConn resolves the current primary and performs one attach
// handshake there: it tries the last known-good address first, follows
// redirects, and falls back to the rest of the dial list. On success the
// session keeps conn and fr.
func (r *Remote) attachConn(cred fsapi.Cred, clientID uint64) (net.Conn, *wire.FrameReader, error) {
	r.mu.Lock()
	first := r.primary
	addrs := append([]string(nil), r.addrs...)
	claimShard, claimEpoch, claimed := r.claimShard, r.claimEpoch, r.claimed
	r.mu.Unlock()
	candidates := make([]string, 0, len(addrs)+1)
	candidates = append(candidates, first)
	for _, a := range addrs {
		if a != first {
			candidates = append(candidates, a)
		}
	}
	var attach []byte
	if claimed {
		attach = wire.AppendAttachClaim(nil, cred, clientID, claimShard, claimEpoch)
	} else {
		attach = wire.AppendAttach(nil, cred, clientID)
	}
	var lastErr error
	for _, addr := range candidates {
		for hop := 0; addr != "" && hop < maxRedirectHops; hop++ {
			conn, err := r.conn(addr)
			if err != nil {
				lastErr = err
				break
			}
			fr := wire.NewFrameReader(conn)
			name, err := handshake(conn, fr, attach, r.opts.DialTimeout)
			if err == nil {
				r.mu.Lock()
				r.name, r.primary = name, addr
				r.mu.Unlock()
				return conn, fr, nil
			}
			conn.Close()
			var rdr *redirectErr
			if errors.As(err, &rdr) {
				r.st.redirects.Add(1)
				addr = rdr.addr
				lastErr = fmt.Errorf("%w (redirect loop?)", wire.ErrNotPrimary)
				continue
			}
			if errors.Is(err, wire.ErrMoved) {
				// The whole group stopped serving the claimed shard; no other
				// candidate will differ. Surface it so the router refetches.
				return nil, nil, err
			}
			lastErr = err
			break
		}
	}
	if lastErr == nil {
		lastErr = ErrNoPrimary
	}
	return nil, nil, lastErr
}

// Attach opens a session for cred: one connection, one server-side
// fsapi.Client with its own open-file table — the remote equivalent of a
// process preloading the library.
func (r *Remote) Attach(cred fsapi.Cred) (fsapi.Client, error) {
	clientID := newClientID()
	conn, fr, err := r.attachConn(cred, clientID)
	if err != nil {
		return nil, err
	}
	s := &Session{
		r:        r,
		cred:     cred,
		clientID: clientID,
		pend:     make(map[uint32]*pendingCall),
		sendq:    make(chan sendItem, 256),
		dead:     make(chan struct{}),
	}
	if r.opts.Obs != nil {
		s.tr = r.opts.Obs
		// Trace IDs are node-namespaced: the high 16 bits come from this
		// session's random client identity, the low 48 from a submission
		// counter, so concurrently-sampling clients stay distinguishable.
		s.traceBase = clientID &^ (uint64(1)<<48 - 1)
		if s.traceBase == 0 {
			s.traceBase = 1 << 48
		}
		p := 1
		for p < r.opts.TraceSample {
			p <<= 1
		}
		s.traceMask = uint64(p) - 1
	}
	s.resetTransport(conn, fr)
	return s, nil
}

// handshake sends KindAttach (with the pre-encoded attach payload, which
// may carry a shard claim) and waits for KindAttachOK, returning the
// server's file system name. fr must be the reader the session will keep
// using, so no buffered bytes are lost across the handoff. A KindRedirect
// answer surfaces as *redirectErr, a KindMoved as *movedErr.
func handshake(conn net.Conn, fr *wire.FrameReader, attach []byte, timeout time.Duration) (string, error) {
	conn.SetDeadline(time.Now().Add(timeout))
	defer conn.SetDeadline(time.Time{})
	werr := wire.WriteFrame(conn, wire.KindAttach, attach)
	// A write failure usually means the server refused us (conn limit,
	// draining) and closed after sending an error frame; that frame is
	// the real answer, so try to read it before surfacing the raw error.
	kind, payload, err := fr.Next()
	if err != nil {
		if werr != nil {
			return "", werr
		}
		return "", err
	}
	switch kind {
	case wire.KindAttachOK:
		return string(payload), nil
	case wire.KindRedirect:
		rdr, err := wire.ParseRedirect(payload)
		if err != nil {
			return "", err
		}
		return "", &redirectErr{addr: rdr.Addr}
	case wire.KindMoved:
		mv, err := wire.ParseMoved(payload)
		if err != nil {
			return "", err
		}
		return "", &movedErr{mv: mv}
	case wire.KindErr:
		return "", wire.ParseErrFrame(payload)
	default:
		return "", fmt.Errorf("%w: unexpected kind %d in handshake", wire.ErrBadMessage, kind)
	}
}

// newClientID draws a nonzero 64-bit session-resume identity.
func newClientID() uint64 {
	var b [8]byte
	for {
		if _, err := crand.Read(b[:]); err != nil {
			// Entropy exhaustion is not a real failure mode on supported
			// platforms; a time-derived ID keeps us running regardless.
			return uint64(time.Now().UnixNano()) | 1
		}
		if id := binary.LittleEndian.Uint64(b[:]); id != 0 {
			return id
		}
	}
}

// Promote asks the node at addr to become the primary (the admin side of
// the replication protocol) and returns the new epoch.
func Promote(addr string, timeout time.Duration) (uint64, error) {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return 0, err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(timeout))
	if err := wire.WriteFrame(conn, wire.KindPromote, nil); err != nil {
		return 0, err
	}
	fr := wire.NewFrameReader(conn)
	kind, payload, err := fr.Next()
	if err != nil {
		return 0, err
	}
	switch kind {
	case wire.KindPromoteOK:
		if len(payload) < 8 {
			return 0, wire.ErrTruncated
		}
		return binary.LittleEndian.Uint64(payload), nil
	case wire.KindErr:
		return 0, wire.ParseErrFrame(payload)
	default:
		return 0, fmt.Errorf("%w: unexpected kind %d", wire.ErrBadMessage, kind)
	}
}
