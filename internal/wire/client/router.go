package client

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	pathpkg "path"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"simurgh/internal/fsapi"
	"simurgh/internal/shard"
	"simurgh/internal/wire"
)

// RouterOptions tunes a Router. The embedded Options apply to every
// per-shard Remote the router dials.
type RouterOptions struct {
	Options

	// MaxMovedHops bounds how many Moved answers one operation follows
	// (refetch map, rehome, retry) before giving up. A bound matters: two
	// nodes with conflicting stale maps could otherwise bounce a client
	// between them forever. Default 8.
	MaxMovedHops int
	// MovedBackoff is the first retry's backoff after a Moved answer
	// (jittered, doubling, capped at 250ms). During a migration cutover the
	// new owner may be moments away from promotion; backing off beats
	// hammering. Default 5ms.
	MovedBackoff time.Duration
	// FetchTimeout bounds one map fetch during a refresh. Default 5s.
	FetchTimeout time.Duration
}

func (o *RouterOptions) fillDefaults() {
	if o.MaxMovedHops <= 0 {
		o.MaxMovedHops = 8
	}
	if o.MovedBackoff <= 0 {
		o.MovedBackoff = 5 * time.Millisecond
	}
	if o.FetchTimeout <= 0 {
		o.FetchTimeout = 5 * time.Second
	}
	// Router sessions must survive a Rehome miss (the new owner may not be
	// promoted yet), so failover is always on, even for one-node groups.
	if o.FailoverTimeout <= 0 {
		o.FailoverTimeout = 10 * time.Second
	}
}

// RouterStats is a point-in-time snapshot of a Router's counters.
type RouterStats struct {
	// Epoch is the cached shard map's epoch.
	Epoch uint64
	// Shards is the number of shards in the cached map.
	Shards int
	// Moves counts Moved answers followed (map refetch + session rehome).
	Moves uint64
	// MapRefreshes counts cached-map replacements by a newer epoch.
	MapRefreshes uint64
	// CrossRenames counts renames executed as cross-shard copy+unlink.
	CrossRenames uint64
}

// Router is a sharded volume: it caches the shard map, keeps one Remote per
// shard, and routes every operation by path to the shard's owner group. It
// implements fsapi.FileSystem, so everything written against the flat client
// (fstest, the benchmarks, the shell) runs unchanged against a sharded
// deployment.
//
// Staleness is handled, not prevented: the router acts on its cached map
// and treats a Moved answer as the signal to refetch (from the seeds and
// every address the cached map names), re-point the shard's Remote, rehome
// its session, and retry — bounded by MaxMovedHops with jittered backoff.
// The server-side fence guarantees a Moved operation was not executed, so
// the retry is exactly-once safe.
type Router struct {
	seeds []string
	opts  RouterOptions

	mu      sync.Mutex
	m       *shard.Map // immutable once installed; replaced whole
	remotes map[uint32]*Remote
	closed  bool

	moves        atomic.Uint64
	refreshes    atomic.Uint64
	crossRenames atomic.Uint64
}

// DialRouter fetches the shard map from the first reachable seed (a
// host:port or comma-separated list of them — typically one node of any
// group) and prepares a Router over it. Like Dial, the owner groups are
// first contacted at Attach.
func DialRouter(seeds string, opts RouterOptions) (*Router, error) {
	opts.fillDefaults()
	list := splitAddrs(seeds)
	if len(list) == 0 {
		return nil, errors.New("wire client: no router seed addresses")
	}
	m, err := shard.FetchMapAny(list, opts.FetchTimeout)
	if err != nil {
		return nil, fmt.Errorf("wire client: fetching shard map: %w", err)
	}
	return &Router{
		seeds:   list,
		opts:    opts,
		m:       m,
		remotes: make(map[uint32]*Remote),
	}, nil
}

// NewRouter builds a Router over an already-fetched map (tools that load a
// map file, tests). seeds may be empty; refreshes then only ask the map's
// own addresses.
func NewRouter(m *shard.Map, seeds []string, opts RouterOptions) (*Router, error) {
	opts.fillDefaults()
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &Router{
		seeds:   append([]string(nil), seeds...),
		opts:    opts,
		m:       m.Clone(),
		remotes: make(map[uint32]*Remote),
	}, nil
}

// Name identifies the sharded volume.
func (rt *Router) Name() string {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return fmt.Sprintf("sharded(%d shards, epoch %d)", len(rt.m.Shards), rt.m.Epoch)
}

// Map returns the cached shard map. Callers must not mutate it.
func (rt *Router) Map() *shard.Map {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.m
}

// Stats snapshots the router's counters.
func (rt *Router) Stats() RouterStats {
	rt.mu.Lock()
	epoch, n := rt.m.Epoch, len(rt.m.Shards)
	rt.mu.Unlock()
	return RouterStats{
		Epoch:        epoch,
		Shards:       n,
		Moves:        rt.moves.Load(),
		MapRefreshes: rt.refreshes.Load(),
		CrossRenames: rt.crossRenames.Load(),
	}
}

// Attach opens a routed session. Per-shard wire sessions attach lazily, the
// first time an operation routes to the shard.
func (rt *Router) Attach(cred fsapi.Cred) (fsapi.Client, error) {
	rt.mu.Lock()
	closed := rt.closed
	rt.mu.Unlock()
	if closed {
		return nil, ErrClosed
	}
	return &RoutedSession{
		rt:       rt,
		cred:     cred,
		sessions: make(map[uint32]*Session),
		fds:      make(map[fsapi.FD]routedFD),
		nextFD:   1,
	}, nil
}

// Close drops every per-shard Remote. Attached sessions fail on their next
// operation.
func (rt *Router) Close() error {
	rt.mu.Lock()
	if rt.closed {
		rt.mu.Unlock()
		return nil
	}
	rt.closed = true
	remotes := rt.remotes
	rt.remotes = nil
	rt.mu.Unlock()
	var errs []error
	for _, r := range remotes {
		if err := r.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// route resolves a path to its owning shard ID under the cached map.
func (rt *Router) route(p string) uint32 {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.m.Route(p).ID // Validate guarantees coverage
}

// remote returns (dialing if needed) the Remote for a shard, plus the
// shard's prefix under the cached map.
func (rt *Router) remote(id uint32) (*Remote, string, error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.closed {
		return nil, "", ErrClosed
	}
	sh := rt.m.ByID(id)
	if sh == nil {
		return nil, "", fmt.Errorf("wire client: shard %d not in map epoch %d", id, rt.m.Epoch)
	}
	r := rt.remotes[id]
	if r == nil {
		var err error
		r, err = Dial(strings.Join(sh.Addrs, ","), rt.opts.Options)
		if err != nil {
			return nil, "", err
		}
		rt.remotes[id] = r
	}
	r.SetClaim(id, rt.m.Epoch)
	return r, sh.Prefix, nil
}

// Refresh fetches the shard map from the seeds and every address the cached
// map names, installing the first strictly newer epoch found. It reports
// whether the map advanced. Affected Remotes are re-pointed (SetAddrs) and
// re-claimed; live sessions rehome on their own retry path.
func (rt *Router) Refresh() bool {
	rt.mu.Lock()
	cur := rt.m
	targets := append([]string(nil), rt.seeds...)
	seen := make(map[string]bool, len(targets))
	for _, a := range targets {
		seen[a] = true
	}
	for i := range cur.Shards {
		for _, a := range cur.Shards[i].Addrs {
			if !seen[a] {
				seen[a] = true
				targets = append(targets, a)
			}
		}
	}
	rt.mu.Unlock()
	for _, addr := range targets {
		m, err := shard.FetchMap(addr, cur.Epoch, rt.opts.FetchTimeout)
		if err != nil || m == nil || m.Epoch <= cur.Epoch {
			continue
		}
		rt.install(m)
		return true
	}
	return false
}

// RefreshFrom fetches the shard map from one specific address, installing
// it when strictly newer. A Moved refusal names the authoritative owner;
// asking that owner directly beats scanning the seeds, which mid-migration
// may still answer with the transitional epoch that points at the fenced
// old group.
func (rt *Router) RefreshFrom(addr string) bool {
	if addr == "" {
		return false
	}
	rt.mu.Lock()
	cur := rt.m
	rt.mu.Unlock()
	m, err := shard.FetchMap(addr, cur.Epoch, rt.opts.FetchTimeout)
	if err != nil || m == nil || m.Epoch <= cur.Epoch {
		return false
	}
	rt.install(m)
	return true
}

// install replaces the cached map when epoch advances and re-points every
// existing Remote at its shard's (possibly new) owner group.
func (rt *Router) install(m *shard.Map) {
	type upd struct {
		r     *Remote
		id    uint32
		addrs []string
	}
	rt.mu.Lock()
	if m.Epoch <= rt.m.Epoch {
		rt.mu.Unlock()
		return
	}
	rt.m = m
	var ups []upd
	for id, r := range rt.remotes {
		if sh := m.ByID(id); sh != nil {
			ups = append(ups, upd{r: r, id: id, addrs: append([]string(nil), sh.Addrs...)})
		}
	}
	rt.mu.Unlock()
	rt.refreshes.Add(1)
	for _, u := range ups {
		u.r.SetAddrs(u.addrs)
		u.r.SetClaim(u.id, m.Epoch)
	}
}

// routedFD maps a router-level virtual descriptor to the shard session
// holding the real one. Virtual descriptors are monotonic and never reused,
// so a stale descriptor can never alias a new file.
type routedFD struct {
	shard uint32
	fd    fsapi.FD
}

// RoutedSession is one attached process's view of the sharded volume: a lazy
// per-shard wire session plus a virtual open-file table spanning them. It
// implements fsapi.Client and is safe for concurrent use.
type RoutedSession struct {
	rt   *Router
	cred fsapi.Cred

	mu       sync.Mutex
	sessions map[uint32]*Session
	fds      map[fsapi.FD]routedFD
	nextFD   fsapi.FD
	closed   bool
}

// session returns (attaching if needed) the wire session for a shard.
func (ss *RoutedSession) session(id uint32) (*Session, error) {
	ss.mu.Lock()
	if ss.closed {
		ss.mu.Unlock()
		return nil, ErrClosed
	}
	s := ss.sessions[id]
	ss.mu.Unlock()
	if s != nil {
		return s, nil
	}
	r, prefix, err := ss.rt.remote(id)
	if err != nil {
		return nil, err
	}
	sess, err := ss.attach(r)
	if err != nil {
		return nil, err
	}
	ss.mu.Lock()
	if ss.closed {
		ss.mu.Unlock()
		sess.Detach()
		return nil, ErrClosed
	}
	if exist := ss.sessions[id]; exist != nil {
		ss.mu.Unlock()
		sess.Detach()
		return exist, nil
	}
	ss.sessions[id] = sess
	ss.mu.Unlock()
	ss.ensureAncestors(sess, prefix)
	return sess, nil
}

// attach opens a wire session on r, giving the first attach the same
// failover grace an established session gets from its recovery loop: a
// transient refusal (a primary mid-promotion, an op gate held for a join
// snapshot) is retried with jittered doubling backoff until
// FailoverTimeout, instead of surfacing a raw dial or deadline error the
// first time a worker touches the shard. A Moved answer returns
// immediately so doShard can refetch the map and re-route.
func (ss *RoutedSession) attach(r *Remote) (*Session, error) {
	deadline := time.Now().Add(ss.rt.opts.FailoverTimeout)
	backoff := 10 * time.Millisecond
	for {
		c, err := r.Attach(ss.cred)
		if err == nil {
			return c.(*Session), nil
		}
		if errors.Is(err, wire.ErrMoved) {
			return nil, err
		}
		if !time.Now().Before(deadline) {
			return nil, fmt.Errorf("%w (after %v)", ErrNoPrimary, err)
		}
		ss.mu.Lock()
		closed := ss.closed
		ss.mu.Unlock()
		if closed {
			return nil, ErrClosed
		}
		d := backoff/2 + time.Duration(rand.Int63n(int64(backoff/2)+1))
		time.Sleep(d)
		if backoff < 250*time.Millisecond {
			backoff *= 2
		}
	}
}

// ensureAncestors provisions the scaffolding directories above a prefix
// shard's subtree root on the shard's own volume, so paths under a deep
// prefix like "/warm/deep" resolve on a fresh group. The subtree root
// itself is NOT created: it is a real directory the user must mkdir (the
// mkdir routes here), and until then it does not exist — Stat answers
// ErrNotExist and the parent's merged listing omits it, exactly like an
// unmade directory on a single node. Best-effort: ErrExist is the steady
// state, and a permission failure just surfaces later as the underlying
// operation's own error.
func (ss *RoutedSession) ensureAncestors(s *Session, prefix string) {
	if prefix == "" || prefix == "/" {
		return
	}
	comps, err := fsapi.SplitPath(prefix)
	if err != nil {
		return
	}
	p := ""
	for _, c := range comps[:len(comps)-1] {
		p += "/" + c
		s.Mkdir(p, 0o755)
	}
}

// dropSession forgets a shard session that failed to rehome, but only while
// it holds no descriptors: a fresh attach gets a fresh server-side session,
// which would orphan them.
func (ss *RoutedSession) dropSession(id uint32, s *Session) {
	ss.mu.Lock()
	for _, rf := range ss.fds {
		if rf.shard == id {
			ss.mu.Unlock()
			return
		}
	}
	if ss.sessions[id] == s {
		delete(ss.sessions, id)
	}
	ss.mu.Unlock()
}

// moved reacts to a Moved answer for a shard: refresh the map, then rehome
// the shard's session against its Remote's (possibly re-pointed) dial list.
// The same server-side session resumes under the same client ID, so open
// descriptors and the replay of unanswered calls survive the move.
//
// A migration announces its map in stages, so a refresh racing the cutover
// can install the transitional epoch — one that still points this shard at
// the old, now-fenced group. The rehome's attach then bounces with a Moved
// that names the real owner; fetching the map from that owner re-points
// the Remote, and the recovery loop the failed rehome left running picks
// up the new dial list on its next tick. Only when even the named owner
// yields no newer map is the session abandoned.
func (ss *RoutedSession) moved(id uint32, cause error) {
	ss.rt.moves.Add(1)
	var mv *movedErr
	if errors.As(cause, &mv) {
		// An attach-time refusal names the owner and epoch: wait for the
		// cutover's map instead of settling for a transitional one.
		ss.awaitEpoch(mv.mv)
	} else {
		ss.rt.Refresh()
	}
	ss.mu.Lock()
	s := ss.sessions[id]
	ss.mu.Unlock()
	if s == nil {
		return
	}
	if err := s.Rehome(); err != nil {
		var mv *movedErr
		if errors.As(err, &mv) && ss.awaitEpoch(mv.mv) {
			return
		}
		ss.dropSession(id, s)
	}
}

// awaitEpoch waits for the shard map to reach the epoch a refused attach
// named, polling the named owner first and the seeds as fallback. The
// refusing node installs the cutover map before the new owner learns it
// (the old group's install is the migration's drain barrier), so right at
// the fence there may be nothing newer to fetch from anywhere — only
// moments later. The failed rehome left the session's recovery loop
// running; installing the newer map re-points the Remote, and that loop
// attaches to the new owner on its next tick. Polling shares the failover
// budget the recovery loop itself runs under.
func (ss *RoutedSession) awaitEpoch(mv wire.Moved) bool {
	deadline := time.Now().Add(ss.rt.opts.FailoverTimeout)
	for hop := 1; ; hop++ {
		if ss.rt.Map().Epoch >= mv.Epoch {
			return true
		}
		if ss.rt.RefreshFrom(mv.Addr) || ss.rt.Refresh() {
			continue
		}
		if !time.Now().Before(deadline) {
			return false
		}
		ss.backoff(hop)
	}
}

// backoff sleeps the jittered, doubling Moved-retry delay for a hop.
func (ss *RoutedSession) backoff(hop int) {
	d := ss.rt.opts.MovedBackoff << uint(hop-1)
	if d > 250*time.Millisecond {
		d = 250 * time.Millisecond
	}
	d = d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
	time.Sleep(d)
}

// doShard runs f against the shard pick() currently names, following Moved
// answers (refresh + rehome + backoff) up to MaxMovedHops. pick re-resolves
// each attempt, so a migration that re-routes the path mid-retry is picked
// up. Errors other than Moved pass through untouched.
func (ss *RoutedSession) doShard(pick func() uint32, f func(s *Session) error) error {
	hops := ss.rt.opts.MaxMovedHops
	var err error
	for hop := 0; hop <= hops; hop++ {
		if hop > 0 {
			ss.backoff(hop)
		}
		id := pick()
		var s *Session
		s, err = ss.session(id)
		if err == nil {
			err = f(s)
		}
		if err == nil || !errors.Is(err, wire.ErrMoved) {
			return err
		}
		ss.moved(id, err)
	}
	return fmt.Errorf("wire client: shard routing did not converge after %d moved hops: %w", hops, err)
}

// doPath routes a path-addressed operation.
func (ss *RoutedSession) doPath(p string, f func(s *Session, id uint32) error) error {
	var id uint32
	return ss.doShard(
		func() uint32 { id = ss.rt.route(p); return id },
		func(s *Session) error { return f(s, id) },
	)
}

// doFD routes a descriptor operation to the session holding the real
// descriptor. The shard is pinned at open time — migration moves the whole
// session (rehome), never the descriptor to a different shard.
func (ss *RoutedSession) doFD(fd fsapi.FD, f func(s *Session, rfd fsapi.FD) error) error {
	ss.mu.Lock()
	rf, ok := ss.fds[fd]
	ss.mu.Unlock()
	if !ok {
		return fsapi.ErrBadFD
	}
	return ss.doShard(
		func() uint32 { return rf.shard },
		func(s *Session) error { return f(s, rf.fd) },
	)
}

// registerFD allocates a virtual descriptor for a shard-local one.
func (ss *RoutedSession) registerFD(id uint32, rfd fsapi.FD) fsapi.FD {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	vfd := ss.nextFD
	ss.nextFD++
	ss.fds[vfd] = routedFD{shard: id, fd: rfd}
	return vfd
}

// --- fsapi.Client ------------------------------------------------------

// Create creates a regular file on the path's owner shard.
func (ss *RoutedSession) Create(path string, perm uint32) (fsapi.FD, error) {
	var out fsapi.FD
	err := ss.doPath(path, func(s *Session, id uint32) error {
		fd, err := s.Create(path, perm)
		if err != nil {
			return err
		}
		out = ss.registerFD(id, fd)
		return nil
	})
	if err != nil {
		return -1, err
	}
	return out, nil
}

// Open opens a file on the path's owner shard.
func (ss *RoutedSession) Open(path string, flags fsapi.OpenFlag, perm uint32) (fsapi.FD, error) {
	var out fsapi.FD
	err := ss.doPath(path, func(s *Session, id uint32) error {
		fd, err := s.Open(path, flags, perm)
		if err != nil {
			return err
		}
		out = ss.registerFD(id, fd)
		return nil
	})
	if err != nil {
		return -1, err
	}
	return out, nil
}

// Close releases the descriptor. The virtual slot is freed either way —
// like close(2), the descriptor is gone even when the call errors.
func (ss *RoutedSession) Close(fd fsapi.FD) error {
	err := ss.doFD(fd, func(s *Session, rfd fsapi.FD) error { return s.Close(rfd) })
	if !errors.Is(err, fsapi.ErrBadFD) {
		ss.mu.Lock()
		delete(ss.fds, fd)
		ss.mu.Unlock()
	}
	return err
}

// Read reads at the descriptor's current position.
func (ss *RoutedSession) Read(fd fsapi.FD, p []byte) (int, error) {
	var n int
	err := ss.doFD(fd, func(s *Session, rfd fsapi.FD) error {
		var err error
		n, err = s.Read(rfd, p)
		return err
	})
	return n, err
}

// Pread reads at an explicit offset.
func (ss *RoutedSession) Pread(fd fsapi.FD, p []byte, off uint64) (int, error) {
	var n int
	err := ss.doFD(fd, func(s *Session, rfd fsapi.FD) error {
		var err error
		n, err = s.Pread(rfd, p, off)
		return err
	})
	return n, err
}

// Write writes at the descriptor's current position.
func (ss *RoutedSession) Write(fd fsapi.FD, p []byte) (int, error) {
	var n int
	err := ss.doFD(fd, func(s *Session, rfd fsapi.FD) error {
		var err error
		n, err = s.Write(rfd, p)
		return err
	})
	return n, err
}

// Pwrite writes at an explicit offset.
func (ss *RoutedSession) Pwrite(fd fsapi.FD, p []byte, off uint64) (int, error) {
	var n int
	err := ss.doFD(fd, func(s *Session, rfd fsapi.FD) error {
		var err error
		n, err = s.Pwrite(rfd, p, off)
		return err
	})
	return n, err
}

// Seek repositions the descriptor.
func (ss *RoutedSession) Seek(fd fsapi.FD, off int64, whence int) (int64, error) {
	var pos int64
	err := ss.doFD(fd, func(s *Session, rfd fsapi.FD) error {
		var err error
		pos, err = s.Seek(rfd, off, whence)
		return err
	})
	return pos, err
}

// Fsync persists the file's outstanding updates.
func (ss *RoutedSession) Fsync(fd fsapi.FD) error {
	return ss.doFD(fd, func(s *Session, rfd fsapi.FD) error { return s.Fsync(rfd) })
}

// Ftruncate sets the file size.
func (ss *RoutedSession) Ftruncate(fd fsapi.FD, size uint64) error {
	return ss.doFD(fd, func(s *Session, rfd fsapi.FD) error { return s.Ftruncate(rfd, size) })
}

// Fallocate preallocates space.
func (ss *RoutedSession) Fallocate(fd fsapi.FD, size uint64) error {
	return ss.doFD(fd, func(s *Session, rfd fsapi.FD) error { return s.Fallocate(rfd, size) })
}

// Fstat stats an open descriptor.
func (ss *RoutedSession) Fstat(fd fsapi.FD) (fsapi.Stat, error) {
	var st fsapi.Stat
	err := ss.doFD(fd, func(s *Session, rfd fsapi.FD) error {
		var err error
		st, err = s.Fstat(rfd)
		return err
	})
	return st, err
}

// Stat resolves a path on its owner shard.
func (ss *RoutedSession) Stat(path string) (fsapi.Stat, error) {
	var st fsapi.Stat
	err := ss.doPath(path, func(s *Session, _ uint32) error {
		var err error
		st, err = s.Stat(path)
		return err
	})
	return st, err
}

// Lstat is Stat without following a final symlink.
func (ss *RoutedSession) Lstat(path string) (fsapi.Stat, error) {
	var st fsapi.Stat
	err := ss.doPath(path, func(s *Session, _ uint32) error {
		var err error
		st, err = s.Lstat(path)
		return err
	})
	return st, err
}

// Mkdir creates a directory on the path's owner shard.
func (ss *RoutedSession) Mkdir(path string, perm uint32) error {
	return ss.doPath(path, func(s *Session, _ uint32) error { return s.Mkdir(path, perm) })
}

// Rmdir removes an empty directory.
func (ss *RoutedSession) Rmdir(path string) error {
	return ss.doPath(path, func(s *Session, _ uint32) error { return s.Rmdir(path) })
}

// Unlink removes a file or symlink.
func (ss *RoutedSession) Unlink(path string) error {
	return ss.doPath(path, func(s *Session, _ uint32) error { return s.Unlink(path) })
}

// Rename moves old to new. Within one shard it is the server's atomic
// rename; across shards it degrades to a two-phase copy+unlink (directories
// recurse, symlinks re-link) — not atomic, but the only option when the two
// names live in different groups' NVMM.
func (ss *RoutedSession) Rename(oldPath, newPath string) error {
	hops := ss.rt.opts.MaxMovedHops
	var err error
	for hop := 0; hop <= hops; hop++ {
		if hop > 0 {
			ss.backoff(hop)
		}
		a, b := ss.rt.route(oldPath), ss.rt.route(newPath)
		if a != b {
			return ss.crossRename(oldPath, newPath)
		}
		var s *Session
		s, err = ss.session(a)
		if err == nil {
			err = s.Rename(oldPath, newPath)
		}
		if err == nil || !errors.Is(err, wire.ErrMoved) {
			return err
		}
		ss.moved(a, err)
	}
	return fmt.Errorf("wire client: shard routing did not converge after %d moved hops: %w", hops, err)
}

// crossRename implements rename across shard boundaries: copy to the
// destination shard, then unlink the source. Each sub-operation is itself
// routed (and Moved-retried) through the session.
func (ss *RoutedSession) crossRename(oldPath, newPath string) error {
	ss.rt.crossRenames.Add(1)
	st, err := ss.Lstat(oldPath)
	if err != nil {
		return err
	}
	switch st.Mode & fsapi.ModeTypeMask {
	case fsapi.ModeDir:
		if tst, terr := ss.Lstat(newPath); terr == nil {
			if !fsapi.IsDir(tst.Mode) {
				return fsapi.ErrNotDir
			}
		} else if !errors.Is(terr, fsapi.ErrNotExist) {
			return terr
		}
		if err := ss.Mkdir(newPath, st.Mode&fsapi.ModePermMask); err != nil && !errors.Is(err, fsapi.ErrExist) {
			return err
		}
		ents, err := ss.ReadDir(oldPath)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if err := ss.Rename(oldPath+"/"+e.Name, newPath+"/"+e.Name); err != nil {
				return err
			}
		}
		return ss.Rmdir(oldPath)
	case fsapi.ModeSymlink:
		target, err := ss.Readlink(oldPath)
		if err != nil {
			return err
		}
		if err := ss.Unlink(newPath); err != nil && !errors.Is(err, fsapi.ErrNotExist) {
			return err
		}
		if err := ss.Symlink(target, newPath); err != nil {
			return err
		}
		return ss.Unlink(oldPath)
	default:
		return ss.crossCopyFile(oldPath, newPath, st)
	}
}

// crossCopyFile moves one regular file across shards: replace the target
// name (rename(2) replaces the name, never writes through a symlink), copy
// the bytes in bounded chunks, carry times over, then unlink the source.
func (ss *RoutedSession) crossCopyFile(oldPath, newPath string, st fsapi.Stat) error {
	src, err := ss.Open(oldPath, fsapi.ORdonly, 0)
	if err != nil {
		return err
	}
	defer ss.Close(src)
	if tst, terr := ss.Lstat(newPath); terr == nil {
		if fsapi.IsDir(tst.Mode) {
			return fsapi.ErrIsDir
		}
		if err := ss.Unlink(newPath); err != nil {
			return err
		}
	} else if !errors.Is(terr, fsapi.ErrNotExist) {
		return terr
	}
	dst, err := ss.Create(newPath, st.Mode&fsapi.ModePermMask)
	if err != nil {
		return err
	}
	buf := make([]byte, 256<<10)
	var off uint64
	for {
		n, rerr := ss.Pread(src, buf, off)
		if n > 0 {
			if _, werr := ss.Pwrite(dst, buf[:n], off); werr != nil {
				ss.Close(dst)
				return werr
			}
			off += uint64(n)
		}
		if rerr != nil {
			if errors.Is(rerr, io.EOF) {
				break
			}
			ss.Close(dst)
			return rerr
		}
		if n == 0 {
			break
		}
	}
	if err := ss.Close(dst); err != nil {
		return err
	}
	ss.Utimes(newPath, st.Atime, st.Mtime) // best-effort, like cp -p
	return ss.Unlink(oldPath)
}

// Symlink creates a symbolic link, routed by the link's own path (the
// target is an uninterpreted string and may point anywhere).
func (ss *RoutedSession) Symlink(target, linkPath string) error {
	return ss.doPath(linkPath, func(s *Session, _ uint32) error { return s.Symlink(target, linkPath) })
}

// Link creates a hard link. Hard links cannot span shards — the two names
// would live in different groups' NVMM with no shared inode — so a
// cross-shard link answers ErrCrossDir, like link(2) across mounts answers
// EXDEV.
func (ss *RoutedSession) Link(oldPath, newPath string) error {
	if ss.rt.route(oldPath) != ss.rt.route(newPath) {
		return fsapi.ErrCrossDir
	}
	return ss.doPath(oldPath, func(s *Session, _ uint32) error { return s.Link(oldPath, newPath) })
}

// Readlink returns a symlink's target.
func (ss *RoutedSession) Readlink(path string) (string, error) {
	var out string
	err := ss.doPath(path, func(s *Session, _ uint32) error {
		var err error
		out, err = s.Readlink(path)
		return err
	})
	return out, err
}

// ReadDir lists a directory, merging what other shards contribute to it: at
// the root, every hash shard's (and the "/" shard's) own root entries; at
// any directory, the subtree roots of prefix shards mounted directly under
// it (included only once they exist on their owner). Entries are
// deduplicated by name; merged listings are sorted.
func (ss *RoutedSession) ReadDir(path string) ([]fsapi.DirEntry, error) {
	var ents []fsapi.DirEntry
	var ownerID uint32
	err := ss.doPath(path, func(s *Session, id uint32) error {
		var err error
		ents, err = s.ReadDir(path)
		ownerID = id
		return err
	})
	if err != nil {
		return nil, err
	}
	m := ss.rt.Map()
	if len(m.Shards) == 1 {
		return ents, nil
	}
	clean := cleanRooted(path)
	seen := make(map[string]bool, len(ents))
	for _, e := range ents {
		seen[e.Name] = true
	}
	merged := false
	if clean == "/" {
		for i := range m.Shards {
			sh := &m.Shards[i]
			if sh.ID == ownerID || (sh.Prefix != "" && sh.Prefix != "/") {
				continue
			}
			var more []fsapi.DirEntry
			id := sh.ID
			err := ss.doShard(
				func() uint32 { return id },
				func(s *Session) error {
					var err error
					more, err = s.ReadDir("/")
					return err
				},
			)
			if err != nil {
				return nil, err
			}
			for _, e := range more {
				if !seen[e.Name] {
					seen[e.Name] = true
					ents = append(ents, e)
					merged = true
				}
			}
		}
	}
	for i := range m.Shards {
		sh := &m.Shards[i]
		if sh.ID == ownerID || sh.Prefix == "" || sh.Prefix == "/" || pathpkg.Dir(sh.Prefix) != clean {
			continue
		}
		name := pathpkg.Base(sh.Prefix)
		if seen[name] {
			continue
		}
		st, err := ss.Stat(sh.Prefix)
		if errors.Is(err, fsapi.ErrNotExist) {
			continue
		}
		if err != nil {
			return nil, err
		}
		seen[name] = true
		ents = append(ents, fsapi.DirEntry{Name: name, Ino: st.Ino, Mode: st.Mode})
		merged = true
	}
	if merged {
		sort.Slice(ents, func(i, j int) bool { return ents[i].Name < ents[j].Name })
	}
	return ents, nil
}

// Chmod updates permission bits.
func (ss *RoutedSession) Chmod(path string, perm uint32) error {
	return ss.doPath(path, func(s *Session, _ uint32) error { return s.Chmod(path, perm) })
}

// Utimes sets access/modification times.
func (ss *RoutedSession) Utimes(path string, atime, mtime int64) error {
	return ss.doPath(path, func(s *Session, _ uint32) error { return s.Utimes(path, atime, mtime) })
}

// Submit splits an explicit batch by shard, submits the parts concurrently,
// and stitches the responses back into request order. Create/open responses
// allocate virtual descriptors; descriptor requests are translated to their
// shard-local descriptors. Unlike the single-call path, Moved answers are
// not retried — they come back as CodeMoved responses for the caller (the
// benchmark reruns; the fsapi methods are the transparent path).
func (ss *RoutedSession) Submit(reqs []wire.Request) ([]wire.Response, error) {
	type part struct {
		idx  []int
		reqs []wire.Request
	}
	out := make([]wire.Response, len(reqs))
	parts := make(map[uint32]*part)
	ss.mu.Lock() // one hold for the whole translation loop, not per request
	for i := range reqs {
		req := reqs[i] // copy: the FD field may be rewritten
		var id uint32
		switch {
		case req.Op == wire.OpSymlink:
			id = ss.rt.route(req.Path2)
		case req.Path != "":
			id = ss.rt.route(req.Path)
		default:
			rf, ok := ss.fds[req.FD]
			if !ok {
				out[i] = wire.Response{ID: req.ID, Op: req.Op, Code: wire.CodeOf(fsapi.ErrBadFD)}
				continue
			}
			id, req.FD = rf.shard, rf.fd
		}
		p := parts[id]
		if p == nil {
			p = &part{}
			parts[id] = p
		}
		p.idx = append(p.idx, i)
		p.reqs = append(p.reqs, req)
	}
	ss.mu.Unlock()
	if len(parts) == 1 {
		// Whole batch on one shard (the common case for a worker pinned to
		// its own files): skip the fan-out machinery.
		for id, p := range parts {
			s, err := ss.session(id)
			if err != nil {
				return nil, fmt.Errorf("shard %d: %w", id, err)
			}
			resps, err := s.Submit(p.reqs)
			if err != nil {
				return nil, fmt.Errorf("shard %d: %w", id, err)
			}
			for j, r := range resps {
				if r.Code == wire.CodeOK && (r.Op == wire.OpCreate || r.Op == wire.OpOpen) {
					r.FD = ss.registerFD(id, r.FD)
				}
				out[p.idx[j]] = r
			}
		}
		return out, nil
	}
	var wg sync.WaitGroup
	errs := make([]error, 0, len(parts))
	var emu sync.Mutex
	for id, p := range parts {
		wg.Add(1)
		go func(id uint32, p *part) {
			defer wg.Done()
			s, err := ss.session(id)
			var resps []wire.Response
			if err == nil {
				resps, err = s.Submit(p.reqs)
			}
			if err != nil {
				emu.Lock()
				errs = append(errs, fmt.Errorf("shard %d: %w", id, err))
				emu.Unlock()
				return
			}
			for j, r := range resps {
				if r.Code == wire.CodeOK && (r.Op == wire.OpCreate || r.Op == wire.OpOpen) {
					r.FD = ss.registerFD(id, r.FD)
				}
				out[p.idx[j]] = r
			}
		}(id, p)
	}
	wg.Wait()
	if len(errs) > 0 {
		return nil, errors.Join(errs...)
	}
	return out, nil
}

// Detach releases every shard session.
func (ss *RoutedSession) Detach() error {
	ss.mu.Lock()
	if ss.closed {
		ss.mu.Unlock()
		return nil
	}
	ss.closed = true
	sessions := ss.sessions
	ss.sessions = nil
	ss.fds = nil
	ss.mu.Unlock()
	var errs []error
	for id, s := range sessions {
		if err := s.Detach(); err != nil {
			errs = append(errs, fmt.Errorf("shard %d: %w", id, err))
		}
	}
	return errors.Join(errs...)
}

// cleanRooted canonicalizes a path to its cleaned, rooted form.
func cleanRooted(p string) string {
	if !strings.HasPrefix(p, "/") {
		p = "/" + p
	}
	return pathpkg.Clean(p)
}
