package client_test

import (
	"errors"
	"net"
	"strings"
	"sync"
	"testing"

	"simurgh/internal/core"
	"simurgh/internal/fsapi"
	"simurgh/internal/fstest"
	"simurgh/internal/pmem"
	"simurgh/internal/server"
	"simurgh/internal/wire"
	"simurgh/internal/wire/client"
)

// serve starts a wire server over a fresh Simurgh volume and returns the
// connected Remote; everything is torn down at test cleanup.
func serve(t testing.TB) *client.Remote {
	t.Helper()
	dev := pmem.New(128 << 20)
	fs, err := core.Format(dev, fsapi.Root, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	remote, err := client.Dial(ln.Addr().String(), client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		remote.Close()
		srv.Shutdown()
	})
	return remote
}

// TestRemoteConformance runs the full file-system conformance suite through
// a live TCP server: every fsapi call crosses the wire, so this exercises
// the codec, batching, session FD tables, and error round-tripping at once.
func TestRemoteConformance(t *testing.T) {
	fstest.RunConformance(t, func() fsapi.FileSystem {
		return serve(t)
	})
}

// TestRemoteErrorsKeepIdentity verifies errors survive the network with
// errors.Is identity intact, including wrapped sentinels with detail text.
func TestRemoteErrorsKeepIdentity(t *testing.T) {
	remote := serve(t)
	c, err := remote.Attach(fsapi.Cred{UID: 7, GID: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Detach()

	if _, err := c.Stat("/nope"); !errors.Is(err, fsapi.ErrNotExist) {
		t.Fatalf("Stat(/nope) = %v, want ErrNotExist", err)
	}
	// A permission failure carries CheckPerm's decorated message; identity
	// must survive alongside it.
	root, err := remote.Attach(fsapi.Root)
	if err != nil {
		t.Fatal(err)
	}
	defer root.Detach()
	if err := root.Mkdir("/private", 0o700); err != nil {
		t.Fatal(err)
	}
	_, err = c.Create("/private/f", 0o644)
	if !errors.Is(err, fsapi.ErrPerm) {
		t.Fatalf("Create in 0700 root dir = %v, want ErrPerm", err)
	}
}

// TestRemoteConcurrentCalls drives one session from many goroutines so
// calls coalesce into shared batch frames and replies dispatch by ID.
func TestRemoteConcurrentCalls(t *testing.T) {
	remote := serve(t)
	c, err := remote.Attach(fsapi.Root)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Detach()
	if err := c.Mkdir("/d", 0o755); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				name := "/d/f" + string(rune('a'+g))
				fd, err := c.Create(name, 0o644)
				if err != nil {
					errs <- err
					return
				}
				if _, err := c.Write(fd, []byte("data")); err != nil {
					errs <- err
					return
				}
				if err := c.Close(fd); err != nil {
					errs <- err
					return
				}
				if _, err := c.Stat(name); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestSubmitExplicitBatch sends a dependent op sequence as one batch frame
// and checks in-order execution and per-op responses.
func TestSubmitExplicitBatch(t *testing.T) {
	remote := serve(t)
	cl, err := remote.Attach(fsapi.Root)
	if err != nil {
		t.Fatal(err)
	}
	sess := cl.(*client.Session)
	defer sess.Detach()

	reqs := []wire.Request{
		{Op: wire.OpMkdir, Path: "/b", Perm: 0o755},
		{Op: wire.OpCreate, Path: "/b/f", Perm: 0o644},
		{Op: wire.OpStat, Path: "/b/f"},
		{Op: wire.OpStat, Path: "/b/missing"},
	}
	resps, err := sess.Submit(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(resps) != len(reqs) {
		t.Fatalf("got %d responses, want %d", len(resps), len(reqs))
	}
	for i := 0; i < 3; i++ {
		if resps[i].Code != wire.CodeOK {
			t.Fatalf("op %d (%v) failed: %v", i, reqs[i].Op, resps[i].Err())
		}
	}
	if !errors.Is(resps[3].Err(), fsapi.ErrNotExist) {
		t.Fatalf("batched Stat(missing) = %v, want ErrNotExist", resps[3].Err())
	}
	if resps[2].Stat.Mode&fsapi.ModeTypeMask != fsapi.ModeRegular {
		t.Fatalf("batched Stat returned mode %o", resps[2].Stat.Mode)
	}
}

// TestLargeIOChunks moves a payload beyond wire.MaxIO through the chunking
// read/write paths.
func TestLargeIOChunks(t *testing.T) {
	remote := serve(t)
	c, err := remote.Attach(fsapi.Root)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Detach()

	big := make([]byte, wire.MaxIO+wire.MaxIO/2)
	for i := range big {
		big[i] = byte(i * 31)
	}
	fd, err := c.Create("/big", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := c.Write(fd, big); err != nil || n != len(big) {
		t.Fatalf("Write = (%d, %v), want (%d, nil)", n, err, len(big))
	}
	if err := c.Close(fd); err != nil {
		t.Fatal(err)
	}
	fd, err = c.Open("/big", fsapi.ORdonly, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(big))
	if n, err := c.Pread(fd, got, 0); err != nil || n != len(big) {
		t.Fatalf("Pread = (%d, %v), want (%d, nil)", n, err, len(big))
	}
	for i := range big {
		if got[i] != big[i] {
			t.Fatalf("byte %d: got %d want %d", i, got[i], big[i])
		}
	}
	if err := c.Close(fd); err != nil {
		t.Fatal(err)
	}
}

// TestOversizedPathRejectedLocally verifies paths beyond wire.MaxPath are
// refused client-side with ErrNameTooLong — the server's decoder would
// treat them as a protocol error and tear down the whole connection — and
// that the session stays usable afterwards.
func TestOversizedPathRejectedLocally(t *testing.T) {
	remote := serve(t)
	c, err := remote.Attach(fsapi.Root)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Detach()
	// Just over the protocol limit, and beyond what a u16 length can even
	// encode: both must fail locally without touching the connection.
	for _, n := range []int{wire.MaxPath + 1, 1 << 17} {
		path := "/" + strings.Repeat("x", n)
		if _, err := c.Stat(path); !errors.Is(err, fsapi.ErrNameTooLong) {
			t.Fatalf("Stat(len %d) = %v, want ErrNameTooLong", len(path), err)
		}
		if err := c.Rename("/ok", path); !errors.Is(err, fsapi.ErrNameTooLong) {
			t.Fatalf("Rename to len %d = %v, want ErrNameTooLong", len(path), err)
		}
	}
	if _, err := c.Stat("/"); err != nil {
		t.Fatalf("session dead after local rejection: %v", err)
	}
}

// TestDetachEndsSession verifies calls after Detach fail with ErrClosed.
func TestDetachEndsSession(t *testing.T) {
	remote := serve(t)
	c, err := remote.Attach(fsapi.Root)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Detach(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Stat("/"); !errors.Is(err, client.ErrClosed) {
		t.Fatalf("Stat after Detach = %v, want ErrClosed", err)
	}
}
