package wire

import (
	"bytes"
	"errors"
	"testing"

	"simurgh/internal/fsapi"
)

// TestReplicatedClassification pins which operations enter the log. A
// change here changes what survives failover, so the table is explicit.
func TestReplicatedClassification(t *testing.T) {
	replicated := map[Op]bool{
		OpCreate: true, OpOpen: true, OpClose: true,
		OpRead:  true, // moves the descriptor offset
		OpWrite: true, OpPwrite: true, OpSeek: true,
		OpFtruncate: true, OpFallocate: true,
		OpMkdir: true, OpRmdir: true, OpUnlink: true, OpRename: true,
		OpSymlink: true, OpLink: true, OpChmod: true, OpUtimes: true,
		OpDetach: true,
		// Read-only: answered locally, never shipped.
		OpPread: false, OpFstat: false, OpStat: false, OpLstat: false,
		OpReadlink: false, OpReadDir: false, OpFsync: false,
	}
	for op, want := range replicated {
		if got := op.Replicated(); got != want {
			t.Errorf("%v.Replicated() = %v, want %v", op, got, want)
		}
	}
}

func TestEntryRoundTrip(t *testing.T) {
	entries := []Entry{
		{Seq: 1, Sess: 42, Kind: EntryAttach, Cred: fsapi.Cred{UID: 1000, GID: 7}},
		{Seq: 2, Sess: 42, Kind: EntryOp, ResFD: 5,
			Req: Request{ID: 9, Op: OpCreate, Path: "/f", Perm: 0o644}},
		{Seq: 3, Sess: 42, Kind: EntryOp,
			Req: Request{ID: 10, Op: OpPwrite, FD: 5, Off: 1 << 33, Data: []byte("payload")}},
		{Seq: 4, Sess: 43, Kind: EntryOp,
			Req: Request{ID: 1, Op: OpRename, Path: "/f", Path2: "/g"}},
		{Seq: 5, Sess: 42, Kind: EntryPwrite,
			Req: Request{ID: 11, Op: OpPwrite, FD: 5, Off: 1 << 40, Data: []byte("compact")}},
	}
	var buf []byte
	for i := range entries {
		buf = AppendEntry(buf, &entries[i])
	}
	got, err := DecodeEntries(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(entries) {
		t.Fatalf("decoded %d entries, want %d", len(got), len(entries))
	}
	for i := range entries {
		want, have := entries[i], got[i]
		if have.Seq != want.Seq || have.Sess != want.Sess || have.Kind != want.Kind ||
			have.Cred != want.Cred || have.ResFD != want.ResFD {
			t.Errorf("entry %d header = %+v, want %+v", i, have, want)
		}
		if have.Req.Op != want.Req.Op || have.Req.ID != want.Req.ID ||
			have.Req.Path != want.Req.Path || have.Req.Path2 != want.Req.Path2 ||
			have.Req.Off != want.Req.Off || !bytes.Equal(have.Req.Data, want.Req.Data) {
			t.Errorf("entry %d request = %+v, want %+v", i, have.Req, want.Req)
		}
	}
}

// TestEntryPwriteCompact pins the point of the compact pwrite form: it
// must encode strictly smaller than the generic EntryOp form of the same
// request, decode back to a normal OpPwrite request (so apply paths need no
// special case), and alias the payload in DecodeEntriesInto mode.
func TestEntryPwriteCompact(t *testing.T) {
	req := Request{ID: 7, Op: OpPwrite, FD: 3, Off: 4096, Data: []byte("0123456789abcdef")}
	compact := AppendEntry(nil, &Entry{Seq: 1, Sess: 9, Kind: EntryPwrite, Req: req})
	generic := AppendEntry(nil, &Entry{Seq: 1, Sess: 9, Kind: EntryOp, Req: req})
	if len(compact) >= len(generic) {
		t.Fatalf("compact form is %d bytes, generic %d: no savings", len(compact), len(generic))
	}

	ents, err := DecodeEntriesInto(nil, compact)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("decoded %d entries, want 1", len(ents))
	}
	e := ents[0]
	if e.Kind != EntryPwrite || e.Req.Op != OpPwrite || e.Req.ID != req.ID ||
		e.Req.FD != req.FD || e.Req.Off != req.Off || !bytes.Equal(e.Req.Data, req.Data) {
		t.Fatalf("decoded %+v, want pwrite %+v", e, req)
	}
	copy(e.Req.Data, "ALIAS")
	if !bytes.Contains(compact, []byte("ALIAS56789abcdef")) {
		t.Fatalf("Data does not alias the payload")
	}
}

func TestEntryBadKind(t *testing.T) {
	e := Entry{Seq: 1, Sess: 1, Kind: EntryAttach}
	buf := AppendEntry(nil, &e)
	buf[16] = 99 // corrupt the kind byte
	if _, _, err := DecodeEntry(buf); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("bad kind decoded: err = %v", err)
	}
}

func TestJoinRoundTrip(t *testing.T) {
	j := Join{Epoch: 7, Addr: "10.0.0.2:9191"}
	got, err := ParseJoin(AppendJoin(nil, &j))
	if err != nil {
		t.Fatal(err)
	}
	if got != j {
		t.Fatalf("got %+v, want %+v", got, j)
	}
	bad := AppendJoin(nil, &j)
	bad[0] = 'X'
	if _, err := ParseJoin(bad); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("bad magic accepted: %v", err)
	}
}

func TestJoinOKRoundTrip(t *testing.T) {
	j := JoinOK{Epoch: 3, SnapSeq: 900, SnapSize: 1 << 28, Sessions: []SessionInfo{
		{Sess: 1, Cred: fsapi.Cred{UID: 0, GID: 0}},
		{Sess: 99, Cred: fsapi.Cred{UID: 1000, GID: 1000}},
	}}
	got, err := ParseJoinOK(AppendJoinOK(nil, &j))
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != j.Epoch || got.SnapSeq != j.SnapSeq || got.SnapSize != j.SnapSize ||
		len(got.Sessions) != 2 || got.Sessions[1] != j.Sessions[1] {
		t.Fatalf("got %+v, want %+v", got, j)
	}

	// A forged session count must not drive allocation past the payload.
	forged := AppendJoinOK(nil, &JoinOK{Epoch: 1})
	forged[24] = 0xff
	forged[25] = 0xff
	if _, err := ParseJoinOK(forged); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("forged session count accepted: %v", err)
	}
}

func TestSnapChunkRoundTrip(t *testing.T) {
	c := SnapChunk{Off: 1 << 30, Data: bytes.Repeat([]byte{0xab}, 4096)}
	got, err := ParseSnapChunk(AppendSnapChunk(nil, &c))
	if err != nil {
		t.Fatal(err)
	}
	if got.Off != c.Off || !bytes.Equal(got.Data, c.Data) {
		t.Fatal("snap chunk mangled")
	}
}

func TestHeartbeatAckRedirectRoundTrip(t *testing.T) {
	h := Heartbeat{Epoch: 2, Seq: 500, SentNs: 123456789}
	if got, err := ParseHeartbeat(AppendHeartbeat(nil, &h)); err != nil || got != h {
		t.Fatalf("heartbeat: got %+v, %v", got, err)
	}
	a := RepAck{Epoch: 2, Seq: 499}
	if got, err := ParseRepAck(AppendRepAck(nil, &a)); err != nil || got != a {
		t.Fatalf("repack: got %+v, %v", got, err)
	}
	r := Redirect{Epoch: 4, Addr: "127.0.0.1:9190"}
	if got, err := ParseRedirect(AppendRedirect(nil, &r)); err != nil || got != r {
		t.Fatalf("redirect: got %+v, %v", got, err)
	}
	// Empty address is legal: "no primary known".
	r = Redirect{Epoch: 0}
	if got, err := ParseRedirect(AppendRedirect(nil, &r)); err != nil || got != r {
		t.Fatalf("empty redirect: got %+v, %v", got, err)
	}
}
