package wire

import (
	"testing"
)

// zeroAllocBatch is a steady-state request mix: metadata lookups plus a
// read, the shape the fast-path server loop sees.
func zeroAllocBatch() []Request {
	return []Request{
		{ID: 1, Op: OpStat, Path: "/bench/f000"},
		{ID: 2, Op: OpLstat, Path: "/bench/f001"},
		{ID: 3, Op: OpPread, FD: 7, Size: 4096, Off: 1 << 20},
		{ID: 4, Op: OpFstat, FD: 7},
	}
}

// batchCodecRound is one steady-state codec round trip: encode a batch into
// a reused payload, decode it back into a reused request slice (alias
// mode). With warm buffers it must not allocate.
func batchCodecRound(payload []byte, reqs []Request, src []Request) ([]byte, []Request, error) {
	payload = payload[:0]
	for i := range src {
		payload = AppendRequest(payload, &src[i])
	}
	reqs, err := DecodeBatchInto(reqs[:0], payload)
	return payload, reqs, err
}

// responseCodecRound encodes a data-bearing response into a reused payload
// and decodes it back with the data landing in a caller buffer.
func responseCodecRound(payload []byte, resp *Response, dst []byte) ([]byte, error) {
	payload = AppendResponse(payload[:0], resp)
	_, _, err := DecodeResponseInto(payload, dst)
	return payload, err
}

// entryCodecRound encodes a replication entry into a reused payload and
// decodes it back into a reused entry slice (alias mode).
func entryCodecRound(payload []byte, ents []Entry, e *Entry) ([]byte, []Entry, error) {
	payload = AppendEntry(payload[:0], e)
	ents, err := DecodeEntriesInto(ents[:0], payload)
	return payload, ents, err
}

func BenchmarkBatchCodec(b *testing.B) {
	src := zeroAllocBatch()
	var payload []byte
	var reqs []Request
	var err error
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		payload, reqs, err = batchCodecRound(payload, reqs, src)
		if err != nil {
			b.Fatal(err)
		}
	}
	_ = reqs
}

func BenchmarkResponseCodec(b *testing.B) {
	data := make([]byte, 4096)
	resp := &Response{ID: 3, Op: OpPread, Data: data}
	dst := make([]byte, 0, len(data))
	var payload []byte
	var err error
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		payload, err = responseCodecRound(payload, resp, dst)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEntryCodec(b *testing.B) {
	for _, bc := range []struct {
		name string
		kind EntryKind
	}{{"op", EntryOp}, {"pwrite", EntryPwrite}} {
		b.Run(bc.name, func(b *testing.B) {
			e := &Entry{Seq: 9, Sess: 42, Kind: bc.kind,
				Req: Request{ID: 5, Op: OpPwrite, FD: 3, Off: 4096, Data: make([]byte, 512)}}
			var payload []byte
			var ents []Entry
			var err error
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				payload, ents, err = entryCodecRound(payload, ents, e)
				if err != nil {
					b.Fatal(err)
				}
			}
			_ = ents
		})
	}
}

// TestCodecZeroAlloc pins the steady-state codec paths at zero allocations
// per round trip — the contract the pooled server and client hot paths are
// built on. CI's bench-smoke step enforces the same bound via -benchmem.
func TestCodecZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under -race")
	}
	src := zeroAllocBatch()
	var payload []byte
	var reqs []Request
	var err error
	warm := func() {
		payload, reqs, err = batchCodecRound(payload, reqs, src)
		if err != nil {
			t.Fatal(err)
		}
	}
	warm()
	if avg := testing.AllocsPerRun(200, warm); avg != 0 {
		t.Errorf("batch codec round trip: %.1f allocs/op, want 0", avg)
	}

	data := make([]byte, 4096)
	resp := &Response{ID: 3, Op: OpPread, Data: data}
	dst := make([]byte, 0, len(data))
	var rpayload []byte
	rwarm := func() {
		rpayload, err = responseCodecRound(rpayload, resp, dst)
		if err != nil {
			t.Fatal(err)
		}
	}
	rwarm()
	if avg := testing.AllocsPerRun(200, rwarm); avg != 0 {
		t.Errorf("response codec round trip: %.1f allocs/op, want 0", avg)
	}

	e := &Entry{Seq: 9, Sess: 42, Kind: EntryOp,
		Req: Request{ID: 5, Op: OpPwrite, FD: 3, Off: 4096, Data: make([]byte, 512)}}
	var epayload []byte
	var ents []Entry
	ewarm := func() {
		epayload, ents, err = entryCodecRound(epayload, ents, e)
		if err != nil {
			t.Fatal(err)
		}
	}
	ewarm()
	if avg := testing.AllocsPerRun(200, ewarm); avg != 0 {
		t.Errorf("entry codec round trip: %.1f allocs/op, want 0", avg)
	}
}

// TestDecodeBatchIntoAliases verifies the documented alias contract: batch
// decoding in alias mode points paths and data at the frame buffer instead
// of copying, and mutating the frame is visible through the requests.
func TestDecodeBatchIntoAliases(t *testing.T) {
	src := []Request{{ID: 1, Op: OpWrite, FD: 2, Data: []byte("alias me")}}
	payload := AppendRequest(nil, &src[0])
	reqs, err := DecodeBatchInto(nil, payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 1 || string(reqs[0].Data) != "alias me" {
		t.Fatalf("decoded %+v", reqs)
	}
	copy(reqs[0].Data, "ALIAS")
	if string(payload[len(payload)-8:]) != "ALIAS me" {
		t.Fatalf("Data does not alias the payload: %q", payload[len(payload)-8:])
	}
}

// TestGetPutBufClasses verifies the pool invariant: GetBuf(n) returns a
// buffer with len n, and PutBuf classes by capacity so a grown buffer still
// pools into the largest class it can serve.
func TestGetPutBufClasses(t *testing.T) {
	sizes := []int{0, 1, 4 << 10, (4 << 10) + 1, 64 << 10, MaxIO, MaxFrame, MaxFrame + 64}
	for _, n := range sizes {
		b := GetBuf(n)
		if len(b.B) != n {
			t.Fatalf("GetBuf(%d) len = %d", n, len(b.B))
		}
		if cap(b.B) < n {
			t.Fatalf("GetBuf(%d) cap = %d", n, cap(b.B))
		}
		PutBuf(b)
	}
	// A recycled buffer must come back with at least the requested room.
	big := GetBuf(MaxIO)
	PutBuf(big)
	again := GetBuf(MaxIO + 1024)
	if cap(again.B) < MaxIO+1024 {
		t.Fatalf("recycled cap = %d, want >= %d", cap(again.B), MaxIO+1024)
	}
	PutBuf(again)
	PutBuf(nil) // must be a no-op
}
