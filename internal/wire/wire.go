// Package wire defines Simurgh's client/server network protocol: a compact
// length-prefixed binary codec for every fsapi.Client operation, plus batch
// frames that carry many operations per network round trip (AnyCall-style
// call aggregation — one boundary crossing amortized over N small calls).
//
// Framing: every message on the wire is one frame,
//
//	u32 LE length | u8 kind | payload (length covers kind + payload)
//
// A connection starts with one KindAttach frame (magic, protocol version,
// credentials); the server answers KindAttachOK or KindErr and the
// connection then carries only KindBatch frames from the client and
// KindReply frames from the server. A batch payload is a concatenation of
// encoded requests; a reply payload is a concatenation of encoded
// responses. Requests carry a connection-unique ID that the matching
// response echoes, so replies may be matched out of order and multiple
// batches may be pipelined on one connection.
//
// Decoding is hardened for untrusted input: every length field is validated
// against both a protocol limit and the bytes actually remaining, so
// arbitrary bytes can never cause a panic or an allocation larger than the
// input itself (see FuzzWireDecode).
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"unsafe"

	"simurgh/internal/fsapi"
)

// Protocol limits. Decoders reject anything beyond them; clients split or
// refuse oversized requests before they reach the wire.
const (
	// MaxFrame bounds one frame's kind+payload length.
	MaxFrame = 4 << 20
	// MaxIO bounds a single read or write payload; the client chunks
	// larger fsapi reads and writes into MaxIO pieces.
	MaxIO = 1 << 20
	// MaxBatch bounds the number of operations in one batch frame.
	MaxBatch = 4096
	// MaxPath bounds an encoded path, symlink target, or error message.
	MaxPath = 4096
)

// Version is the protocol version carried in the attach handshake.
const Version = 1

// magic opens the attach frame and identifies a Simurgh wire connection.
var magic = [4]byte{'S', 'M', 'G', 'H'}

// Kind discriminates frame types.
type Kind uint8

const (
	// KindAttach is the client's handshake: magic, version, credentials.
	KindAttach Kind = 1
	// KindAttachOK accepts the handshake; payload is the server FS name.
	KindAttachOK Kind = 2
	// KindBatch carries 1..MaxBatch encoded requests.
	KindBatch Kind = 3
	// KindReply carries the responses of one batch.
	KindReply Kind = 4
	// KindErr reports a connection-level failure (bad handshake, protocol
	// error, overload at accept); payload is an error code and message.
	KindErr Kind = 5

	// Replication kinds (see replica.go). A backup opens its link with
	// KindJoin instead of KindAttach; the primary answers KindJoinOK, streams
	// the volume snapshot as KindSnapChunk frames, then ships log entries in
	// KindReplicate frames which the backup acknowledges with KindRepAck.
	// KindHeartbeat flows primary→backup and is echoed back for RTT and
	// liveness. A server that is not the primary answers client attaches
	// with KindRedirect carrying the primary's address. KindPromote is the
	// admin handshake that promotes a backup explicitly.
	KindJoin      Kind = 6
	KindJoinOK    Kind = 7
	KindSnapChunk Kind = 8
	KindReplicate Kind = 9
	KindRepAck    Kind = 10
	KindHeartbeat Kind = 11
	KindRedirect  Kind = 12
	KindPromote   Kind = 13
	KindPromoteOK Kind = 14

	// Traced variants carry a distributed trace context (TraceCtxSize bytes)
	// before the regular payload. KindBatchTraced is KindBatch for a sampled
	// client batch; KindReplicateTraced is KindReplicate for a shipper drain
	// containing at least one traced entry. Making "sampled" a frame kind
	// instead of a header field keeps the unsampled wire format byte-
	// identical to the untraced protocol, so the common path pays nothing.
	KindBatchTraced     Kind = 15
	KindReplicateTraced Kind = 16

	// Sharding kinds (see shard.go). KindMapGet asks any node for the shard
	// map it serves (payload: the epoch the client already holds); the node
	// answers KindMapOK with the encoded map, or an empty payload when the
	// client is already current. KindMapSet pushes a new map to a node (the
	// migration coordinator's install frame), answered with KindMapOK after
	// the node has fenced and drained any shards it lost. KindMoved answers
	// an attach whose shard claim this node does not serve — the shard-map
	// generalization of KindRedirect, naming a current owner address and the
	// map epoch that says so.
	KindMapGet Kind = 17
	KindMapOK  Kind = 18
	KindMoved  Kind = 19
	KindMapSet Kind = 20
)

// TraceCtxSize is the length of the trace context prefix carried by traced
// frame kinds: one u64 LE trace ID. The ID is node-namespaced (high 16 bits
// drawn randomly per client session, low 48 a session counter), so
// independently-sampled batches collide only with ~2^-16 probability per
// counter value; the sampled flag is implicit in the frame kind.
const TraceCtxSize = 8

// AppendTraceCtx encodes a trace context onto dst.
func AppendTraceCtx(dst []byte, trace uint64) []byte {
	return appendU64(dst, trace)
}

// SplitTraceCtx splits a traced frame's payload into its trace ID and the
// regular payload that follows.
func SplitTraceCtx(payload []byte) (uint64, []byte, error) {
	if len(payload) < TraceCtxSize {
		return 0, nil, fmt.Errorf("%w: traced frame shorter than trace context", ErrTruncated)
	}
	return binary.LittleEndian.Uint64(payload), payload[TraceCtxSize:], nil
}

// Op identifies one fsapi.Client operation on the wire. Zero is invalid so
// that an all-zero buffer never decodes as a request.
type Op uint8

const (
	OpInvalid Op = iota
	OpCreate
	OpOpen
	OpClose
	OpRead
	OpPread
	OpWrite
	OpPwrite
	OpSeek
	OpFsync
	OpFtruncate
	OpFallocate
	OpFstat
	OpStat
	OpLstat
	OpMkdir
	OpRmdir
	OpUnlink
	OpRename
	OpSymlink
	OpLink
	OpReadlink
	OpReadDir
	OpChmod
	OpUtimes
	OpDetach
	// NumOps bounds the Op enum.
	NumOps
)

var opNames = [NumOps]string{
	OpInvalid: "invalid", OpCreate: "create", OpOpen: "open", OpClose: "close",
	OpRead: "read", OpPread: "pread", OpWrite: "write", OpPwrite: "pwrite",
	OpSeek: "seek", OpFsync: "fsync", OpFtruncate: "ftruncate",
	OpFallocate: "fallocate", OpFstat: "fstat", OpStat: "stat",
	OpLstat: "lstat", OpMkdir: "mkdir", OpRmdir: "rmdir", OpUnlink: "unlink",
	OpRename: "rename", OpSymlink: "symlink", OpLink: "link",
	OpReadlink: "readlink", OpReadDir: "readdir", OpChmod: "chmod",
	OpUtimes: "utimes", OpDetach: "detach",
}

// String returns the operation name.
func (o Op) String() string {
	if o < NumOps {
		return opNames[o]
	}
	return "unknown"
}

// Codec-level errors (distinct from the file-system errors carried inside
// responses).
var (
	// ErrFrameTooLarge reports a frame beyond MaxFrame (or an encoded
	// message that would not fit one).
	ErrFrameTooLarge = errors.New("wire: frame too large")
	// ErrTruncated reports a message shorter than its own length fields
	// claim.
	ErrTruncated = errors.New("wire: truncated message")
	// ErrBadMessage reports a structurally invalid message (unknown op,
	// limit violation, bad magic).
	ErrBadMessage = errors.New("wire: malformed message")
	// ErrVersion reports a protocol version mismatch in the handshake.
	ErrVersion = errors.New("wire: protocol version mismatch")
)

// Request is one decoded operation request. Field use depends on Op:
// Path/Path2 carry paths (old/new, target/link), Off carries offsets,
// sizes, atime or the seek offset (int64 bits), Off2 carries mtime, Flags
// carries open flags or the seek whence, Size is the requested read length,
// and Data is the write payload.
type Request struct {
	ID    uint32
	Op    Op
	FD    fsapi.FD
	Flags uint32
	Perm  uint32
	Off   uint64
	Off2  uint64
	Size  uint32
	Path  string
	Path2 string
	Data  []byte
}

// Response is one decoded operation response. Op echoes the request's
// operation so responses decode without request context. Code is zero on
// success; Msg carries a server error detail only when it adds information
// over the code's canonical text.
type Response struct {
	ID   uint32
	Op   Op
	Code ErrCode
	Msg  string
	FD   fsapi.FD
	N    uint32
	Off  int64
	Stat fsapi.Stat
	Str  string
	Data []byte
	Dir  []fsapi.DirEntry
}

// Err returns the response's file-system error, or nil on success.
func (r *Response) Err() error {
	if r.Code == CodeOK {
		return nil
	}
	return r.Code.Wrap(r.Msg)
}

// --- append/consume primitives -----------------------------------------

func appendU16(b []byte, v uint16) []byte { return binary.LittleEndian.AppendUint16(b, v) }
func appendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func appendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }

// appendStr encodes a length-prefixed short string (u16 length).
func appendStr(b []byte, s string) []byte {
	b = appendU16(b, uint16(len(s)))
	return append(b, s...)
}

// appendBytes encodes a length-prefixed byte payload (u32 length).
func appendBytes(b, p []byte) []byte {
	b = appendU32(b, uint32(len(p)))
	return append(b, p...)
}

// reader consumes a message buffer; the first failed read poisons it so
// call sites can check err once at the end. In alias mode, strings and
// payloads reference the input buffer instead of copying — the zero-alloc
// decode used by the server's request path, where the frame buffer outlives
// every decoded request by construction (job ownership, see server docs).
type reader struct {
	b     []byte
	err   error
	alias bool
}

func (r *reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

func (r *reader) u8() uint8 {
	if r.err != nil || len(r.b) < 1 {
		r.fail(ErrTruncated)
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

func (r *reader) u16() uint16 {
	if r.err != nil || len(r.b) < 2 {
		r.fail(ErrTruncated)
		return 0
	}
	v := binary.LittleEndian.Uint16(r.b)
	r.b = r.b[2:]
	return v
}

func (r *reader) u32() uint32 {
	if r.err != nil || len(r.b) < 4 {
		r.fail(ErrTruncated)
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b)
	r.b = r.b[4:]
	return v
}

func (r *reader) u64() uint64 {
	if r.err != nil || len(r.b) < 8 {
		r.fail(ErrTruncated)
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b)
	r.b = r.b[8:]
	return v
}

// str reads a u16-length-prefixed string of at most max bytes. Outside
// alias mode the string conversion copies, so the result does not alias the
// frame buffer; in alias mode it views the input directly.
func (r *reader) str(max int) string {
	n := int(r.u16())
	if r.err != nil {
		return ""
	}
	if n > max {
		r.fail(fmt.Errorf("%w: string length %d > %d", ErrBadMessage, n, max))
		return ""
	}
	if n > len(r.b) {
		r.fail(ErrTruncated)
		return ""
	}
	if n == 0 {
		return ""
	}
	var s string
	if r.alias {
		s = unsafe.String(&r.b[0], n)
	} else {
		s = string(r.b[:n])
	}
	r.b = r.b[n:]
	return s
}

// bytes reads a u32-length-prefixed payload of at most max bytes. Outside
// alias mode it copies out of the frame buffer (frames are reused; decoded
// messages must not alias them); in alias mode it returns a subslice.
func (r *reader) bytes(max int) []byte {
	n := int(r.u32())
	if r.err != nil {
		return nil
	}
	if n > max {
		r.fail(fmt.Errorf("%w: payload length %d > %d", ErrBadMessage, n, max))
		return nil
	}
	if n > len(r.b) {
		r.fail(ErrTruncated)
		return nil
	}
	if n == 0 {
		return nil
	}
	var out []byte
	if r.alias {
		out = r.b[:n:n]
	} else {
		out = make([]byte, n)
		copy(out, r.b)
	}
	r.b = r.b[n:]
	return out
}

// bytesInto is bytes with a caller-provided destination: the payload is
// copied into dst when it fits, so a client receiving a read can land the
// data directly in the caller's buffer instead of a fresh allocation.
func (r *reader) bytesInto(max int, dst []byte) []byte {
	n := int(r.u32())
	if r.err != nil {
		return nil
	}
	if n > max {
		r.fail(fmt.Errorf("%w: payload length %d > %d", ErrBadMessage, n, max))
		return nil
	}
	if n > len(r.b) {
		r.fail(ErrTruncated)
		return nil
	}
	if n == 0 {
		return nil
	}
	var out []byte
	if cap(dst) >= n {
		out = dst[:n]
	} else {
		out = make([]byte, n)
	}
	copy(out, r.b)
	r.b = r.b[n:]
	return out
}

// --- request codec ------------------------------------------------------

// AppendRequest encodes r onto dst and returns the extended slice. The
// caller is responsible for field limits (the client validates paths and
// chunks I/O before encoding).
func AppendRequest(dst []byte, r *Request) []byte {
	dst = appendU32(dst, r.ID)
	dst = append(dst, byte(r.Op))
	switch r.Op {
	case OpCreate:
		dst = appendStr(dst, r.Path)
		dst = appendU32(dst, r.Perm)
	case OpOpen:
		dst = appendStr(dst, r.Path)
		dst = appendU32(dst, r.Flags)
		dst = appendU32(dst, r.Perm)
	case OpClose, OpFsync, OpFstat:
		dst = appendU32(dst, uint32(r.FD))
	case OpRead:
		dst = appendU32(dst, uint32(r.FD))
		dst = appendU32(dst, r.Size)
	case OpPread:
		dst = appendU32(dst, uint32(r.FD))
		dst = appendU32(dst, r.Size)
		dst = appendU64(dst, r.Off)
	case OpWrite:
		dst = appendU32(dst, uint32(r.FD))
		dst = appendBytes(dst, r.Data)
	case OpPwrite:
		dst = appendU32(dst, uint32(r.FD))
		dst = appendU64(dst, r.Off)
		dst = appendBytes(dst, r.Data)
	case OpSeek:
		dst = appendU32(dst, uint32(r.FD))
		dst = appendU64(dst, r.Off)
		dst = appendU32(dst, r.Flags)
	case OpFtruncate, OpFallocate:
		dst = appendU32(dst, uint32(r.FD))
		dst = appendU64(dst, r.Off)
	case OpStat, OpLstat, OpRmdir, OpUnlink, OpReadlink, OpReadDir:
		dst = appendStr(dst, r.Path)
	case OpMkdir, OpChmod:
		dst = appendStr(dst, r.Path)
		dst = appendU32(dst, r.Perm)
	case OpRename, OpSymlink, OpLink:
		dst = appendStr(dst, r.Path)
		dst = appendStr(dst, r.Path2)
	case OpUtimes:
		dst = appendStr(dst, r.Path)
		dst = appendU64(dst, r.Off)
		dst = appendU64(dst, r.Off2)
	case OpDetach:
	}
	return dst
}

// DecodeRequest decodes one request from b, returning the remaining bytes.
// Variable-length fields are copied, so the result is safe to retain after
// b is reused.
func DecodeRequest(b []byte) (Request, []byte, error) {
	rd := reader{b: b}
	r, err := decodeRequest(&rd)
	if err != nil {
		return Request{}, nil, err
	}
	return r, rd.b, nil
}

func decodeRequest(rd *reader) (Request, error) {
	var r Request
	r.ID = rd.u32()
	r.Op = Op(rd.u8())
	if rd.err == nil && (r.Op == OpInvalid || r.Op >= NumOps) {
		return Request{}, fmt.Errorf("%w: bad op %d", ErrBadMessage, r.Op)
	}
	switch r.Op {
	case OpCreate:
		r.Path = rd.str(MaxPath)
		r.Perm = rd.u32()
	case OpOpen:
		r.Path = rd.str(MaxPath)
		r.Flags = rd.u32()
		r.Perm = rd.u32()
	case OpClose, OpFsync, OpFstat:
		r.FD = fsapi.FD(rd.u32())
	case OpRead:
		r.FD = fsapi.FD(rd.u32())
		r.Size = rd.u32()
	case OpPread:
		r.FD = fsapi.FD(rd.u32())
		r.Size = rd.u32()
		r.Off = rd.u64()
	case OpWrite:
		r.FD = fsapi.FD(rd.u32())
		r.Data = rd.bytes(MaxIO)
	case OpPwrite:
		r.FD = fsapi.FD(rd.u32())
		r.Off = rd.u64()
		r.Data = rd.bytes(MaxIO)
	case OpSeek:
		r.FD = fsapi.FD(rd.u32())
		r.Off = rd.u64()
		r.Flags = rd.u32()
	case OpFtruncate, OpFallocate:
		r.FD = fsapi.FD(rd.u32())
		r.Off = rd.u64()
	case OpStat, OpLstat, OpRmdir, OpUnlink, OpReadlink, OpReadDir:
		r.Path = rd.str(MaxPath)
	case OpMkdir, OpChmod:
		r.Path = rd.str(MaxPath)
		r.Perm = rd.u32()
	case OpRename, OpSymlink, OpLink:
		r.Path = rd.str(MaxPath)
		r.Path2 = rd.str(MaxPath)
	case OpUtimes:
		r.Path = rd.str(MaxPath)
		r.Off = rd.u64()
		r.Off2 = rd.u64()
	case OpDetach:
	}
	if rd.err != nil {
		return Request{}, rd.err
	}
	if r.Size > MaxIO {
		return Request{}, fmt.Errorf("%w: read size %d > %d", ErrBadMessage, r.Size, MaxIO)
	}
	return r, nil
}

// DecodeBatch decodes a KindBatch payload into its requests (at most
// MaxBatch). Decoded requests are copies, safe to retain.
func DecodeBatch(payload []byte) ([]Request, error) {
	var reqs []Request
	for len(payload) > 0 {
		if len(reqs) >= MaxBatch {
			return nil, fmt.Errorf("%w: batch exceeds %d ops", ErrBadMessage, MaxBatch)
		}
		r, rest, err := DecodeRequest(payload)
		if err != nil {
			return nil, err
		}
		reqs = append(reqs, r)
		payload = rest
	}
	return reqs, nil
}

// DecodeBatchInto is the zero-allocation variant of DecodeBatch: it appends
// decoded requests to dst (reusing its capacity) and every Path, Path2, and
// Data field ALIASES payload. The caller owns payload and must keep it
// untouched until the last decoded request is retired — the server does
// this by transferring frame-buffer ownership into the batch job and
// returning it to the pool only after the reply is written. dst (possibly
// extended) is returned even on error so its capacity is never lost.
func DecodeBatchInto(dst []Request, payload []byte) ([]Request, error) {
	rd := reader{b: payload, alias: true}
	for len(rd.b) > 0 {
		if len(dst) >= MaxBatch {
			return dst, fmt.Errorf("%w: batch exceeds %d ops", ErrBadMessage, MaxBatch)
		}
		r, err := decodeRequest(&rd)
		if err != nil {
			return dst, err
		}
		dst = append(dst, r)
	}
	return dst, nil
}

// --- response codec -----------------------------------------------------

func appendStat(dst []byte, st *fsapi.Stat) []byte {
	dst = appendU64(dst, st.Ino)
	dst = appendU32(dst, st.Mode)
	dst = appendU32(dst, st.UID)
	dst = appendU32(dst, st.GID)
	dst = appendU32(dst, st.Nlink)
	dst = appendU64(dst, st.Size)
	dst = appendU64(dst, uint64(st.Atime))
	dst = appendU64(dst, uint64(st.Mtime))
	dst = appendU64(dst, uint64(st.Ctime))
	return dst
}

func (r *reader) stat() fsapi.Stat {
	return fsapi.Stat{
		Ino: r.u64(), Mode: r.u32(), UID: r.u32(), GID: r.u32(),
		Nlink: r.u32(), Size: r.u64(),
		Atime: int64(r.u64()), Mtime: int64(r.u64()), Ctime: int64(r.u64()),
	}
}

// dirEntryMinSize is the smallest encoded directory entry (empty name):
// u16 name length + u64 ino + u32 mode. Decoders bound entry-count
// allocations with it.
const dirEntryMinSize = 2 + 8 + 4

// AppendResponse encodes r onto dst and returns the extended slice.
func AppendResponse(dst []byte, r *Response) []byte {
	dst = appendU32(dst, r.ID)
	dst = append(dst, byte(r.Op))
	dst = append(dst, byte(r.Code))
	if r.Code != CodeOK {
		return appendStr(dst, r.Msg)
	}
	switch r.Op {
	case OpCreate, OpOpen:
		dst = appendU32(dst, uint32(r.FD))
	case OpRead, OpPread:
		dst = appendBytes(dst, r.Data)
	case OpWrite, OpPwrite:
		dst = appendU32(dst, r.N)
	case OpSeek:
		dst = appendU64(dst, uint64(r.Off))
	case OpFstat, OpStat, OpLstat:
		dst = appendStat(dst, &r.Stat)
	case OpReadlink:
		dst = appendStr(dst, r.Str)
	case OpReadDir:
		dst = appendU32(dst, uint32(len(r.Dir)))
		for i := range r.Dir {
			dst = appendStr(dst, r.Dir[i].Name)
			dst = appendU64(dst, r.Dir[i].Ino)
			dst = appendU32(dst, r.Dir[i].Mode)
		}
	}
	return dst
}

// ResponseSize returns the exact number of bytes AppendResponse would
// append for r. The server sizes reply frames with it so responses encode
// directly into the outgoing payload with no staging copy.
func ResponseSize(r *Response) int {
	n := 4 + 1 + 1 // ID, op, code
	if r.Code != CodeOK {
		return n + 2 + len(r.Msg)
	}
	switch r.Op {
	case OpCreate, OpOpen:
		n += 4
	case OpRead, OpPread:
		n += 4 + len(r.Data)
	case OpWrite, OpPwrite:
		n += 4
	case OpSeek:
		n += 8
	case OpFstat, OpStat, OpLstat:
		n += 8 + 4 + 4 + 4 + 4 + 8 + 8 + 8 + 8
	case OpReadlink:
		n += 2 + len(r.Str)
	case OpReadDir:
		n += 4
		for i := range r.Dir {
			n += 2 + len(r.Dir[i].Name) + 8 + 4
		}
	}
	return n
}

// DecodeResponse decodes one response from b, returning the remaining
// bytes. Variable-length fields are copies, safe to retain.
func DecodeResponse(b []byte) (Response, []byte, error) {
	rd := reader{b: b}
	r, err := decodeResponse(&rd, nil)
	if err != nil {
		return Response{}, nil, err
	}
	return r, rd.b, nil
}

// DecodeResponseInto decodes one response from b, landing read data in
// dataDst when it fits (the client passes the caller's read buffer, so the
// payload is copied exactly once: frame → destination). All other
// variable-length fields are still copied; only Data may alias dataDst.
func DecodeResponseInto(b, dataDst []byte) (Response, []byte, error) {
	rd := reader{b: b}
	r, err := decodeResponse(&rd, dataDst)
	if err != nil {
		return Response{}, nil, err
	}
	return r, rd.b, nil
}

func decodeResponse(rd *reader, dataDst []byte) (Response, error) {
	var r Response
	r.ID = rd.u32()
	r.Op = Op(rd.u8())
	r.Code = ErrCode(rd.u8())
	if rd.err == nil && (r.Op == OpInvalid || r.Op >= NumOps) {
		return Response{}, fmt.Errorf("%w: bad op %d", ErrBadMessage, r.Op)
	}
	if r.Code != CodeOK {
		r.Msg = rd.str(MaxPath)
		if rd.err != nil {
			return Response{}, rd.err
		}
		return r, nil
	}
	switch r.Op {
	case OpCreate, OpOpen:
		r.FD = fsapi.FD(rd.u32())
	case OpRead, OpPread:
		r.Data = rd.bytesInto(MaxIO, dataDst)
	case OpWrite, OpPwrite:
		r.N = rd.u32()
	case OpSeek:
		r.Off = int64(rd.u64())
	case OpFstat, OpStat, OpLstat:
		r.Stat = rd.stat()
	case OpReadlink:
		r.Str = rd.str(MaxPath)
	case OpReadDir:
		n := int(rd.u32())
		if rd.err == nil && n > len(rd.b)/dirEntryMinSize {
			return Response{}, fmt.Errorf("%w: dir entry count %d beyond payload", ErrBadMessage, n)
		}
		if rd.err == nil && n > 0 {
			r.Dir = make([]fsapi.DirEntry, 0, n)
			for i := 0; i < n; i++ {
				r.Dir = append(r.Dir, fsapi.DirEntry{
					Name: rd.str(fsapi.MaxNameLen), Ino: rd.u64(), Mode: rd.u32(),
				})
			}
		}
	}
	if rd.err != nil {
		return Response{}, rd.err
	}
	return r, nil
}

// DecodeReply decodes a KindReply payload into its responses (at most
// MaxBatch).
func DecodeReply(payload []byte) ([]Response, error) {
	var resps []Response
	for len(payload) > 0 {
		if len(resps) >= MaxBatch {
			return nil, fmt.Errorf("%w: reply exceeds %d responses", ErrBadMessage, MaxBatch)
		}
		r, rest, err := DecodeResponse(payload)
		if err != nil {
			return nil, err
		}
		resps = append(resps, r)
		payload = rest
	}
	return resps, nil
}

// --- handshake and connection-level errors ------------------------------

// AppendAttach encodes the attach handshake payload. clientID (zero = none)
// is a client-chosen stable identity: a server running the replication
// layer keys the session by it, so a client reconnecting after a failover
// can resume its session — open-file table included — on the promoted
// primary.
func AppendAttach(dst []byte, cred fsapi.Cred, clientID uint64) []byte {
	dst = append(dst, magic[:]...)
	dst = append(dst, Version)
	dst = appendU32(dst, cred.UID)
	dst = appendU32(dst, cred.GID)
	if clientID != 0 {
		dst = appendU64(dst, clientID)
	}
	return dst
}

// ParseAttach validates and decodes an attach payload. The trailing client
// ID is optional (clients without a resume identity omit it).
func ParseAttach(payload []byte) (fsapi.Cred, uint64, error) {
	rd := reader{b: payload}
	var m [4]byte
	m[0], m[1], m[2], m[3] = rd.u8(), rd.u8(), rd.u8(), rd.u8()
	v := rd.u8()
	cred := fsapi.Cred{UID: rd.u32(), GID: rd.u32()}
	var clientID uint64
	if rd.err == nil && len(rd.b) >= 8 {
		clientID = rd.u64()
	}
	if rd.err != nil {
		return fsapi.Cred{}, 0, rd.err
	}
	if m != magic {
		return fsapi.Cred{}, 0, fmt.Errorf("%w: bad magic", ErrBadMessage)
	}
	if v != Version {
		return fsapi.Cred{}, 0, fmt.Errorf("%w: got %d, want %d", ErrVersion, v, Version)
	}
	return cred, clientID, nil
}

// AppendErrFrame encodes a KindErr payload.
func AppendErrFrame(dst []byte, err error) []byte {
	code := CodeOf(err)
	dst = append(dst, byte(code))
	return appendStr(dst, err.Error())
}

// ParseErrFrame decodes a KindErr payload into the error it carries.
func ParseErrFrame(payload []byte) error {
	rd := reader{b: payload}
	code := ErrCode(rd.u8())
	msg := rd.str(MaxPath)
	if rd.err != nil {
		return rd.err
	}
	return code.Wrap(msg)
}

// --- framing ------------------------------------------------------------

// WriteFrame writes one frame (header, kind, payload) to w. Callers
// batching many frames should hand WriteFrame a *bufio.Writer and flush
// once per frame group.
func WriteFrame(w io.Writer, kind Kind, payload []byte) error {
	if len(payload)+1 > MaxFrame {
		return ErrFrameTooLarge
	}
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)+1))
	hdr[4] = byte(kind)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// FrameReader reads frames from a connection into pooled payload buffers.
type FrameReader struct {
	r   *bufio.Reader
	buf *Buf
}

// NewFrameReader wraps r for frame-at-a-time reading.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{r: bufio.NewReaderSize(r, 64<<10)}
}

// Next reads one frame and returns its kind and payload. The payload
// aliases a pooled buffer that the next call overwrites; either decode with
// copies before calling Next again, or take ownership with Detach.
func (fr *FrameReader) Next() (Kind, []byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(fr.r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 {
		return 0, nil, fmt.Errorf("%w: empty frame", ErrBadMessage)
	}
	if n > MaxFrame {
		return 0, nil, ErrFrameTooLarge
	}
	if fr.buf == nil || uint32(cap(fr.buf.B)) < n {
		PutBuf(fr.buf)
		fr.buf = GetBuf(int(n))
	}
	buf := fr.buf.B[:n]
	if _, err := io.ReadFull(fr.r, buf); err != nil {
		return 0, nil, err
	}
	return Kind(buf[0]), buf[1:], nil
}

// Detach transfers ownership of the buffer backing the last Next payload to
// the caller, which must PutBuf it when the payload is no longer referenced.
// The next Next draws a fresh pooled buffer. Returns nil before the first
// Next (PutBuf(nil) is a no-op, so blind release is safe).
func (fr *FrameReader) Detach() *Buf {
	b := fr.buf
	fr.buf = nil
	return b
}

// Release returns the FrameReader's current buffer to the pool. Call it
// when the reader is done (connection closed) so long-lived buffers recycle.
func (fr *FrameReader) Release() {
	PutBuf(fr.buf)
	fr.buf = nil
}

// VecWriter stages whole frames and flushes them to a writer in one
// vectored write (writev on a *net.TCPConn), so multi-frame replies and
// replication batches cost one syscall and zero payload copies. Staged
// payloads are borrowed: the caller must keep them valid until Flush
// returns. Not safe for concurrent use; give each writing goroutine its
// own.
type VecWriter struct {
	kinds    []Kind
	payloads [][]byte
	// prefixes, when non-empty, runs parallel to payloads: prefixes[i] is an
	// extra borrowed chunk written between frame i's header and payload (the
	// trace context of a traced frame). Kept empty until the first
	// StagePrefixed so plain Stage/Flush never touch it.
	prefixes [][]byte
	bytes    int
	hdrs     []byte
	bufs     net.Buffers
	// wtmp is the view WriteTo consumes each Flush. It is a struct field
	// rather than a local so the slice header doesn't escape to the heap on
	// every call (WriteTo may pass its receiver pointer to the connection's
	// writeBuffers).
	wtmp net.Buffers
}

// Stage queues one frame. The payload is not copied.
func (v *VecWriter) Stage(kind Kind, payload []byte) error {
	if len(payload)+1 > MaxFrame {
		return ErrFrameTooLarge
	}
	v.kinds = append(v.kinds, kind)
	v.payloads = append(v.payloads, payload)
	if len(v.prefixes) > 0 {
		v.prefixes = append(v.prefixes, nil)
	}
	v.bytes += len(payload) + 5
	return nil
}

// StagePrefixed queues one frame whose wire payload is prefix ++ payload,
// without concatenating them: the frame header's length covers both and the
// vectored flush emits header, prefix, payload back to back. Neither slice
// is copied. Traced frames use this to prepend the trace context to a
// pooled payload buffer in place.
func (v *VecWriter) StagePrefixed(kind Kind, prefix, payload []byte) error {
	if len(prefix)+len(payload)+1 > MaxFrame {
		return ErrFrameTooLarge
	}
	for len(v.prefixes) < len(v.kinds) {
		v.prefixes = append(v.prefixes, nil)
	}
	v.kinds = append(v.kinds, kind)
	v.payloads = append(v.payloads, payload)
	v.prefixes = append(v.prefixes, prefix)
	v.bytes += len(prefix) + len(payload) + 5
	return nil
}

// Count returns the number of staged frames.
func (v *VecWriter) Count() int { return len(v.kinds) }

// StagedBytes returns the total wire size (headers included) of staged
// frames; callers bound memory by flushing when it grows past a budget.
func (v *VecWriter) StagedBytes() int { return v.bytes }

// Flush writes every staged frame to w in at most one vectored write and
// resets the stage. It reports the bytes written even on error so callers
// can keep byte-level metrics exact.
func (v *VecWriter) Flush(w io.Writer) (int64, error) {
	nf := len(v.kinds)
	if nf == 0 {
		return 0, nil
	}
	if cap(v.hdrs) < nf*5 {
		v.hdrs = make([]byte, nf*5)
	}
	v.hdrs = v.hdrs[:nf*5]
	v.bufs = v.bufs[:0]
	for i, p := range v.payloads {
		var pre []byte
		if i < len(v.prefixes) {
			pre = v.prefixes[i]
		}
		h := v.hdrs[i*5 : i*5+5]
		binary.LittleEndian.PutUint32(h, uint32(len(pre)+len(p)+1))
		h[4] = byte(v.kinds[i])
		v.bufs = append(v.bufs, h)
		if len(pre) > 0 {
			v.bufs = append(v.bufs, pre)
		}
		if len(p) > 0 {
			v.bufs = append(v.bufs, p)
		}
	}
	// WriteTo consumes the Buffers it is invoked on (advancing the slice
	// header and nilling spent elements), so it runs on a copy of the
	// header: v.bufs keeps its backing array and capacity for the next
	// Flush.
	v.wtmp = v.bufs
	n, err := v.wtmp.WriteTo(w)
	v.wtmp = nil
	v.kinds = v.kinds[:0]
	for i := range v.payloads {
		v.payloads[i] = nil
	}
	v.payloads = v.payloads[:0]
	for i := range v.prefixes {
		v.prefixes[i] = nil
	}
	v.prefixes = v.prefixes[:0]
	v.bufs = v.bufs[:0]
	v.bytes = 0
	return n, err
}
