package bench

import (
	"strings"
	"testing"
	"time"

	"simurgh/internal/fsapi"
)

func TestMakeFSAllVariants(t *testing.T) {
	names := append(append([]string{}, FSNames...), "simurgh-relaxed", "simurgh-syscall")
	for _, name := range names {
		fs, err := MakeFS(name, 64<<20)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		c, err := fs.Attach(fsapi.Root)
		if err != nil {
			t.Fatalf("%s attach: %v", name, err)
		}
		if _, err := c.Create("/probe", 0o644); err != nil {
			t.Fatalf("%s create: %v", name, err)
		}
	}
	if _, err := MakeFS("btrfs", 64<<20); err == nil {
		t.Fatal("unknown fs accepted")
	}
}

func TestRunPointAndSweep(t *testing.T) {
	w := Workload{
		Name: "touch",
		Worker: func(fs fsapi.FileSystem, _ any, tid int, stop <-chan struct{}) (uint64, uint64, error) {
			c, _ := fs.Attach(fsapi.Root)
			var ops uint64
			for i := 0; ; i++ {
				select {
				case <-stop:
					return ops, 0, nil
				default:
				}
				fd, err := c.Open("/", fsapi.ORdonly, 0)
				if err == nil {
					c.Close(fd)
				}
				// Root open is rejected for write; just stat instead.
				if _, err := c.Stat("/"); err != nil {
					return ops, 0, err
				}
				ops++
			}
		},
	}
	res, err := RunPoint(w, "simurgh", 32<<20, 2, 30*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 || res.OpsPerSec() <= 0 {
		t.Fatalf("bad result: %+v", res)
	}
	all, err := Sweep(w, []string{"simurgh", "nova"}, []int{1, 2}, 32<<20, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 4 {
		t.Fatalf("sweep returned %d results", len(all))
	}
	var sb strings.Builder
	PrintSeries(&sb, "test", all, false)
	out := sb.String()
	if !strings.Contains(out, "simurgh") || !strings.Contains(out, "nova") {
		t.Fatalf("series output missing rows:\n%s", out)
	}
}

func TestDefaultThreads(t *testing.T) {
	ths := DefaultThreads()
	if len(ths) == 0 || ths[0] != 1 {
		t.Fatalf("threads = %v", ths)
	}
	for i := 1; i < len(ths); i++ {
		if ths[i] != ths[i-1]+1 {
			t.Fatalf("not consecutive: %v", ths)
		}
	}
	if ths[len(ths)-1] > 10 {
		t.Fatalf("exceeds paper sweep: %v", ths)
	}
}

func TestRawReadBandwidth(t *testing.T) {
	r := RawReadBandwidth(64<<20, 2, 30*time.Millisecond)
	if r.MBPerSec() <= 0 {
		t.Fatalf("no bandwidth measured: %+v", r)
	}
	if r.FS != "max-bandwidth" {
		t.Fatalf("label = %q", r.FS)
	}
}

func TestMemcpyBandwidthCached(t *testing.T) {
	a := MemcpyBandwidth()
	b := MemcpyBandwidth()
	// The cached value is stored as an integer; allow sub-byte rounding.
	if a <= 0 || a-b > 1 || b-a > 1 {
		t.Fatalf("bandwidth = %f then %f", a, b)
	}
}

func TestTimedClientAccounting(t *testing.T) {
	fs, _ := MakeFS("simurgh", 32<<20)
	c, _ := fs.Attach(fsapi.Root)
	tc := NewTimedClient(c)
	fd, err := tc.Create("/f", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	tc.Write(fd, make([]byte, 10000))
	tc.Close(fd)
	if tc.Calls.Load() != 3 {
		t.Fatalf("calls = %d, want 3", tc.Calls.Load())
	}
	if tc.Bytes.Load() != 10000 {
		t.Fatalf("bytes = %d", tc.Bytes.Load())
	}
	app, cp, fsT := tc.Breakdown(time.Second)
	if app < 0 || cp < 0 || fsT < 0 {
		t.Fatalf("negative breakdown: %v %v %v", app, cp, fsT)
	}
}
