// Package bench provides the shared harness for the paper's evaluation:
// file-system factories for all five systems, fixed-duration worker sweeps
// measuring throughput at 1..N threads, and table/series formatting that
// mirrors the paper's figures.
package bench

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"simurgh/internal/core"
	"simurgh/internal/cost"
	"simurgh/internal/fsapi"
	"simurgh/internal/kfs"
	"simurgh/internal/kfs/splitfs"
	"simurgh/internal/pmem"
	"simurgh/internal/vfs"
)

// FSNames lists the systems in the paper's presentation order.
var FSNames = []string{"simurgh", "nova", "pmfs", "ext4-dax", "splitfs"}

// MakeFS creates a fresh instance of the named file system over an
// emulated NVMM device of the given size, with the paper's cost accounting
// (jmpp delta for Simurgh, syscall cost for the kernel systems).
func MakeFS(name string, devSize uint64) (fsapi.FileSystem, error) {
	dev := pmem.New(devSize)
	// Benchmarks run with the Optane persistence-latency model so flushes,
	// fences and non-temporal stores cost realistic time; unit tests use
	// devices without it. Pre-faulting keeps host page faults out of the
	// measured windows.
	dev.Prefault()
	dev.SetLatency(pmem.OptaneLatency(), cost.SpinNs)
	mkKernel := func(kind kfs.Kind) fsapi.FileSystem {
		inner := kfs.New(kind, dev)
		inner.EnableSoftwareCosts(cost.Spin)
		return vfs.New(inner, cost.KernelModel())
	}
	// A generous busy-wait threshold: on an oversubscribed benchmark host a
	// live lock holder can be descheduled long enough to look dead, and a
	// waiter must not "recover" its lock out from under it.
	const benchLineTimeout = 10 * time.Second
	switch name {
	case "simurgh":
		return core.Format(dev, fsapi.Root, core.Options{Cost: cost.SimurghModel(), LineLockTimeout: benchLineTimeout})
	case "simurgh-relaxed":
		return core.Format(dev, fsapi.Root, core.Options{Cost: cost.SimurghModel(), RelaxedWrites: true, LineLockTimeout: benchLineTimeout})
	case "simurgh-syscall":
		// Ablation: Simurgh's design but with a full syscall charged per
		// operation instead of the jmpp delta — isolates how much of the
		// win comes from protected functions vs. the file-system design.
		return core.Format(dev, fsapi.Root, core.Options{Cost: cost.KernelModel(), LineLockTimeout: benchLineTimeout})
	case "nova":
		return mkKernel(kfs.KindNova), nil
	case "pmfs":
		return mkKernel(kfs.KindPMFS), nil
	case "ext4-dax":
		return mkKernel(kfs.KindExtDax), nil
	case "splitfs":
		sfs := splitfs.New(dev, cost.KernelModel())
		sfs.Inner().EnableSoftwareCosts(cost.Spin)
		return sfs, nil
	default:
		return nil, fmt.Errorf("bench: unknown file system %q", name)
	}
}

// Result is one measured point: a file system at a thread count.
type Result struct {
	FS      string
	Threads int
	Ops     uint64
	Bytes   uint64
	Elapsed time.Duration
}

// OpsPerSec returns throughput in operations per second.
func (r Result) OpsPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Elapsed.Seconds()
}

// MBPerSec returns data throughput in MiB/s.
func (r Result) MBPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Bytes) / (1 << 20) / r.Elapsed.Seconds()
}

// Workload is a benchmark that can run against any file system.
type Workload struct {
	// Name identifies the benchmark (e.g. "create-private").
	Name string
	// DevSize overrides the device size when nonzero.
	DevSize uint64
	// Setup prepares the volume (shared across all workers); it may return
	// a context value passed to every worker.
	Setup func(fs fsapi.FileSystem) (any, error)
	// Worker runs one thread's loop until stop is closed; it reports how
	// many operations and bytes it completed via the returned counters.
	Worker func(fs fsapi.FileSystem, ctx any, tid int, stop <-chan struct{}) (ops, bytes uint64, err error)
}

// RunPoint measures one (fs, threads) point for the given duration.
func RunPoint(w Workload, fsName string, devSize uint64, threads int, d time.Duration) (Result, error) {
	if w.DevSize != 0 {
		devSize = w.DevSize
	}
	fs, err := MakeFS(fsName, devSize)
	if err != nil {
		return Result{}, err
	}
	ctx := any(nil)
	if w.Setup != nil {
		ctx, err = w.Setup(fs)
		if err != nil {
			return Result{}, fmt.Errorf("%s setup on %s: %w", w.Name, fsName, err)
		}
	}
	// Collect garbage from previous points (old device arenas) outside the
	// measured window — on small hosts a background GC of a released 512 MiB
	// arena otherwise lands inside someone else's measurement.
	runtime.GC()
	var ops, bytes atomic.Uint64
	stop := make(chan struct{})
	errs := make(chan error, threads)
	var wg sync.WaitGroup
	start := time.Now()
	for t := 0; t < threads; t++ {
		t := t
		wg.Add(1)
		go func() {
			defer wg.Done()
			o, b, err := w.Worker(fs, ctx, t, stop)
			ops.Add(o)
			bytes.Add(b)
			if err != nil {
				errs <- err
			}
		}()
	}
	time.Sleep(d)
	close(stop)
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errs:
		return Result{}, fmt.Errorf("%s on %s: %w", w.Name, fsName, err)
	default:
	}
	return Result{FS: fsName, Threads: threads, Ops: ops.Load(), Bytes: bytes.Load(), Elapsed: elapsed}, nil
}

// Sweep runs the workload for every fs in fsNames at every thread count.
func Sweep(w Workload, fsNames []string, threads []int, devSize uint64, d time.Duration) ([]Result, error) {
	var out []Result
	for _, fsName := range fsNames {
		for _, th := range threads {
			r, err := RunPoint(w, fsName, devSize, th, d)
			if err != nil {
				return nil, err
			}
			out = append(out, r)
		}
	}
	return out, nil
}

// DefaultThreads returns the paper's 1..10 sweep clamped to the host.
func DefaultThreads() []int {
	max := runtime.NumCPU()
	if max > 10 {
		max = 10
	}
	var ts []int
	for t := 1; t <= max; t++ {
		ts = append(ts, t)
	}
	if len(ts) == 0 {
		ts = []int{1}
	}
	return ts
}

// PrintSeries renders results as one row per fs with a column per thread
// count, in ops/s (like the Fig 7 series).
func PrintSeries(w io.Writer, title string, results []Result, inMB bool) {
	fmt.Fprintf(w, "\n## %s\n", title)
	threads := map[int]bool{}
	byFS := map[string]map[int]Result{}
	var fsOrder []string
	for _, r := range results {
		threads[r.Threads] = true
		if byFS[r.FS] == nil {
			byFS[r.FS] = map[int]Result{}
			fsOrder = append(fsOrder, r.FS)
		}
		byFS[r.FS][r.Threads] = r
	}
	var ths []int
	for t := range threads {
		ths = append(ths, t)
	}
	sort.Ints(ths)
	fmt.Fprintf(w, "%-16s", "fs \\ threads")
	for _, t := range ths {
		fmt.Fprintf(w, "%12d", t)
	}
	fmt.Fprintln(w)
	for _, fsName := range fsOrder {
		fmt.Fprintf(w, "%-16s", fsName)
		for _, t := range ths {
			r, ok := byFS[fsName][t]
			if !ok {
				fmt.Fprintf(w, "%12s", "-")
				continue
			}
			if inMB {
				fmt.Fprintf(w, "%12.1f", r.MBPerSec())
			} else {
				fmt.Fprintf(w, "%12.0f", r.OpsPerSec())
			}
		}
		fmt.Fprintln(w)
	}
	if inMB {
		fmt.Fprintln(w, "(MiB/s)")
	} else {
		fmt.Fprintln(w, "(ops/s)")
	}
}

// RawReadBandwidth measures the emulated NVMM's raw read bandwidth (the
// "max bandwidth" line of Fig 6 / Fig 7i): threads copy 4 kB blocks from
// random offsets straight off the device, with no file system involved.
func RawReadBandwidth(devSize uint64, threads int, d time.Duration) Result {
	dev := pmem.New(devSize)
	stop := make(chan struct{})
	var bytes atomic.Uint64
	var wg sync.WaitGroup
	start := time.Now()
	for t := 0; t < threads; t++ {
		t := t
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, 4096)
			// Simple LCG for offsets; no rand contention.
			x := uint64(t)*2654435761 + 12345
			for {
				select {
				case <-stop:
					return
				default:
				}
				x = x*6364136223846793005 + 1442695040888963407
				off := (x % (devSize - 4096)) &^ 63
				dev.ReadAt(off, buf)
				bytes.Add(4096)
			}
		}()
	}
	time.Sleep(d)
	close(stop)
	wg.Wait()
	return Result{FS: "max-bandwidth", Threads: threads, Ops: bytes.Load() / 4096,
		Bytes: bytes.Load(), Elapsed: time.Since(start)}
}

// PrintBars renders single-point results as labeled rows (like Fig 8/9).
func PrintBars(w io.Writer, title, unit string, rows []struct {
	Label string
	Value float64
}) {
	fmt.Fprintf(w, "\n## %s\n", title)
	var max float64
	for _, r := range rows {
		if r.Value > max {
			max = r.Value
		}
	}
	for _, r := range rows {
		n := 0
		if max > 0 {
			n = int(r.Value / max * 40)
		}
		bar := ""
		for i := 0; i < n; i++ {
			bar += "#"
		}
		fmt.Fprintf(w, "%-24s %12.1f %s  %s\n", r.Label, r.Value, unit, bar)
	}
}
