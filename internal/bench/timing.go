package bench

import (
	"sync/atomic"
	"time"

	"simurgh/internal/fsapi"
)

// TimedClient wraps an fsapi.Client and accumulates the wall time spent
// inside file-system calls plus the bytes copied across the FS boundary.
// The paper's Table 1 and Fig 10 split application run time into
// application / data copy / file system; with this wrapper the split is
// reconstructed as:
//
//	fsTotal   = measured time inside FS calls
//	dataCopy  = bytesMoved / memcpy bandwidth (calibrated once)
//	fs        = fsTotal - dataCopy
//	app       = wall - fsTotal
type TimedClient struct {
	C     fsapi.Client
	Nanos atomic.Int64
	Bytes atomic.Uint64
	Calls atomic.Uint64
}

// NewTimedClient wraps c.
func NewTimedClient(c fsapi.Client) *TimedClient { return &TimedClient{C: c} }

func (t *TimedClient) track(start time.Time, bytes int) {
	t.Nanos.Add(time.Since(start).Nanoseconds())
	t.Bytes.Add(uint64(bytes))
	t.Calls.Add(1)
}

// Breakdown computes the three-way split for a run of the given wall time.
func (t *TimedClient) Breakdown(wall time.Duration) (app, copyT, fs time.Duration) {
	fsTotal := time.Duration(t.Nanos.Load())
	copyT = time.Duration(float64(t.Bytes.Load()) / MemcpyBandwidth() * float64(time.Second))
	if copyT > fsTotal {
		copyT = fsTotal
	}
	fs = fsTotal - copyT
	app = wall - fsTotal
	if app < 0 {
		app = 0
	}
	return app, copyT, fs
}

var memcpyBW atomic.Uint64 // bytes/sec

// MemcpyBandwidth returns the host's measured single-thread memcpy
// bandwidth in bytes/second (calibrated lazily, cached).
func MemcpyBandwidth() float64 {
	if v := memcpyBW.Load(); v != 0 {
		return float64(v)
	}
	src := make([]byte, 16<<20)
	dst := make([]byte, 16<<20)
	start := time.Now()
	total := 0
	for time.Since(start) < 50*time.Millisecond {
		copy(dst, src)
		total += len(src)
	}
	bw := float64(total) / time.Since(start).Seconds()
	if bw < 1 {
		bw = 1
	}
	memcpyBW.Store(uint64(bw))
	return bw
}

// Create implements fsapi.Client.
func (t *TimedClient) Create(path string, perm uint32) (fsapi.FD, error) {
	defer t.track(time.Now(), 0)
	return t.C.Create(path, perm)
}

// Open implements fsapi.Client.
func (t *TimedClient) Open(path string, flags fsapi.OpenFlag, perm uint32) (fsapi.FD, error) {
	defer t.track(time.Now(), 0)
	return t.C.Open(path, flags, perm)
}

// Close implements fsapi.Client.
func (t *TimedClient) Close(fd fsapi.FD) error {
	defer t.track(time.Now(), 0)
	return t.C.Close(fd)
}

// Read implements fsapi.Client.
func (t *TimedClient) Read(fd fsapi.FD, p []byte) (int, error) {
	start := time.Now()
	n, err := t.C.Read(fd, p)
	t.track(start, n)
	return n, err
}

// Pread implements fsapi.Client.
func (t *TimedClient) Pread(fd fsapi.FD, p []byte, off uint64) (int, error) {
	start := time.Now()
	n, err := t.C.Pread(fd, p, off)
	t.track(start, n)
	return n, err
}

// Write implements fsapi.Client.
func (t *TimedClient) Write(fd fsapi.FD, p []byte) (int, error) {
	start := time.Now()
	n, err := t.C.Write(fd, p)
	t.track(start, n)
	return n, err
}

// Pwrite implements fsapi.Client.
func (t *TimedClient) Pwrite(fd fsapi.FD, p []byte, off uint64) (int, error) {
	start := time.Now()
	n, err := t.C.Pwrite(fd, p, off)
	t.track(start, n)
	return n, err
}

// Seek implements fsapi.Client.
func (t *TimedClient) Seek(fd fsapi.FD, off int64, whence int) (int64, error) {
	defer t.track(time.Now(), 0)
	return t.C.Seek(fd, off, whence)
}

// Fsync implements fsapi.Client.
func (t *TimedClient) Fsync(fd fsapi.FD) error {
	defer t.track(time.Now(), 0)
	return t.C.Fsync(fd)
}

// Ftruncate implements fsapi.Client.
func (t *TimedClient) Ftruncate(fd fsapi.FD, size uint64) error {
	defer t.track(time.Now(), 0)
	return t.C.Ftruncate(fd, size)
}

// Fallocate implements fsapi.Client.
func (t *TimedClient) Fallocate(fd fsapi.FD, size uint64) error {
	defer t.track(time.Now(), 0)
	return t.C.Fallocate(fd, size)
}

// Fstat implements fsapi.Client.
func (t *TimedClient) Fstat(fd fsapi.FD) (fsapi.Stat, error) {
	defer t.track(time.Now(), 0)
	return t.C.Fstat(fd)
}

// Stat implements fsapi.Client.
func (t *TimedClient) Stat(path string) (fsapi.Stat, error) {
	defer t.track(time.Now(), 0)
	return t.C.Stat(path)
}

// Lstat implements fsapi.Client.
func (t *TimedClient) Lstat(path string) (fsapi.Stat, error) {
	defer t.track(time.Now(), 0)
	return t.C.Lstat(path)
}

// Mkdir implements fsapi.Client.
func (t *TimedClient) Mkdir(path string, perm uint32) error {
	defer t.track(time.Now(), 0)
	return t.C.Mkdir(path, perm)
}

// Rmdir implements fsapi.Client.
func (t *TimedClient) Rmdir(path string) error {
	defer t.track(time.Now(), 0)
	return t.C.Rmdir(path)
}

// Unlink implements fsapi.Client.
func (t *TimedClient) Unlink(path string) error {
	defer t.track(time.Now(), 0)
	return t.C.Unlink(path)
}

// Rename implements fsapi.Client.
func (t *TimedClient) Rename(oldPath, newPath string) error {
	defer t.track(time.Now(), 0)
	return t.C.Rename(oldPath, newPath)
}

// Symlink implements fsapi.Client.
func (t *TimedClient) Symlink(target, linkPath string) error {
	defer t.track(time.Now(), 0)
	return t.C.Symlink(target, linkPath)
}

// Link implements fsapi.Client.
func (t *TimedClient) Link(oldPath, newPath string) error {
	defer t.track(time.Now(), 0)
	return t.C.Link(oldPath, newPath)
}

// Readlink implements fsapi.Client.
func (t *TimedClient) Readlink(path string) (string, error) {
	defer t.track(time.Now(), 0)
	return t.C.Readlink(path)
}

// ReadDir implements fsapi.Client.
func (t *TimedClient) ReadDir(path string) ([]fsapi.DirEntry, error) {
	defer t.track(time.Now(), 0)
	return t.C.ReadDir(path)
}

// Chmod implements fsapi.Client.
func (t *TimedClient) Chmod(path string, perm uint32) error {
	defer t.track(time.Now(), 0)
	return t.C.Chmod(path, perm)
}

// Utimes implements fsapi.Client.
func (t *TimedClient) Utimes(path string, atime, mtime int64) error {
	defer t.track(time.Now(), 0)
	return t.C.Utimes(path, atime, mtime)
}

// Detach implements fsapi.Client.
func (t *TimedClient) Detach() error { return t.C.Detach() }
