// Package filebench reimplements the four Filebench personalities the paper
// uses (Table 2, Figure 8) — varmail, webserver, webproxy and fileserver —
// as operation loops with the default parameter sets:
//
//	Workload    Files   Dir Width  File Size  Threads
//	varmail     1,000   1,000,000  16 KB      16
//	webserver   1,000   20         16-128 KB  100
//	webproxy    10,000  1,000,000  16 KB      100
//	fileserver  10,000  20         128 KB     50
//
// Each personality follows the canonical Filebench flowop sequence; the
// measured figure is operations per second, as Filebench reports.
package filebench

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"simurgh/internal/fsapi"
)

// Personality is one Filebench workload description.
type Personality struct {
	Name     string
	Files    int
	FileSize int
	Threads  int
	// Loop runs one iteration for a thread; it returns how many flowops it
	// performed.
	Loop func(w *worker) (int, error)
}

// Config overrides scale for constrained hosts.
type Config struct {
	// Files overrides the file count (0 = personality default).
	Files int
	// Threads overrides the thread count (0 = personality default).
	Threads int
	// Duration is how long the measured phase runs.
	Duration time.Duration
}

// Result is ops/s plus totals.
type Result struct {
	Personality string
	FS          string
	Ops         uint64
	Elapsed     time.Duration
}

// Throughput returns flowops per second.
func (r Result) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Elapsed.Seconds()
}

type worker struct {
	c     fsapi.Client
	rng   *rand.Rand
	files int
	size  int
	buf   []byte
	tid   int
	seq   int
}

func (w *worker) pick() string { return fmt.Sprintf("/data/f%06d", w.rng.Intn(w.files)) }

func (w *worker) readWhole(path string) error {
	fd, err := w.c.Open(path, fsapi.ORdonly, 0)
	if err == fsapi.ErrNotExist {
		// Another thread is between delete and re-create of this file —
		// part of the varmail mix, not an error.
		return nil
	}
	if err != nil {
		return err
	}
	defer w.c.Close(fd)
	for off := uint64(0); ; off += uint64(len(w.buf)) {
		n, err := w.c.Pread(fd, w.buf, off)
		if err != nil || n < len(w.buf) {
			return nil // EOF
		}
	}
}

func (w *worker) appendTo(path string, n int, sync bool) error {
	fd, err := w.c.Open(path, fsapi.OCreate|fsapi.OWronly|fsapi.OAppend, 0o644)
	if err != nil {
		return err
	}
	defer w.c.Close(fd)
	if _, err := w.c.Write(fd, w.buf[:n]); err != nil {
		return err
	}
	if sync {
		return w.c.Fsync(fd)
	}
	return nil
}

func (w *worker) createWrite(path string, n int, sync bool) error {
	fd, err := w.c.Create(path, 0o644)
	if err != nil {
		return err
	}
	defer w.c.Close(fd)
	for off := 0; off < n; off += len(w.buf) {
		chunk := n - off
		if chunk > len(w.buf) {
			chunk = len(w.buf)
		}
		if _, err := w.c.Write(fd, w.buf[:chunk]); err != nil {
			return err
		}
	}
	if sync {
		return w.c.Fsync(fd)
	}
	return nil
}

// varmail: deletefile; createfile+append+fsync; openfile+read+append+fsync;
// openfile+read (the classic mail-server cycle; metadata dominated).
func varmailLoop(w *worker) (int, error) {
	victim := w.pick()
	w.c.Unlink(victim) // may not exist; both outcomes are part of the mix
	if err := w.createWrite(victim, w.size/2, true); err != nil {
		return 0, err
	}
	target := w.pick()
	if err := w.readWhole(target); err != nil {
		return 0, err
	}
	if err := w.appendTo(target, w.size/2, true); err != nil {
		return 0, err
	}
	if err := w.readWhole(w.pick()); err != nil {
		return 0, err
	}
	return 16, nil // flowops per iteration in the varmail personality
}

// webserver: open+read ten files, append 16 KB to a shared log.
func webserverLoop(w *worker) (int, error) {
	for i := 0; i < 10; i++ {
		if err := w.readWhole(w.pick()); err != nil {
			return 0, err
		}
	}
	if err := w.appendTo(fmt.Sprintf("/logs/log%d", w.tid%4), 16<<10, false); err != nil {
		return 0, err
	}
	return 21, nil
}

// webproxy: delete, create+append, then five whole-file reads.
func webproxyLoop(w *worker) (int, error) {
	w.seq++
	name := fmt.Sprintf("/data/t%d-%d", w.tid, w.seq)
	if w.seq > 1 {
		w.c.Unlink(fmt.Sprintf("/data/t%d-%d", w.tid, w.seq-1))
	}
	if err := w.createWrite(name, w.size, false); err != nil {
		return 0, err
	}
	for i := 0; i < 5; i++ {
		if err := w.readWhole(w.pick()); err != nil {
			return 0, err
		}
	}
	return 9, nil
}

// fileserver: create+write whole file, open+append, whole-file read,
// delete, stat.
func fileserverLoop(w *worker) (int, error) {
	w.seq++
	name := fmt.Sprintf("/data/t%d-%d", w.tid, w.seq)
	if err := w.createWrite(name, w.size, false); err != nil {
		return 0, err
	}
	if err := w.appendTo(name, 16<<10, false); err != nil {
		return 0, err
	}
	if err := w.readWhole(w.pick()); err != nil {
		return 0, err
	}
	if err := w.c.Unlink(name); err != nil {
		return 0, err
	}
	if _, err := w.c.Stat(w.pick()); err != nil {
		return 0, err
	}
	return 10, nil
}

// Personalities returns the four workloads with the paper's Table 2
// defaults (thread counts are clamped to the host by Run).
func Personalities() []Personality {
	return []Personality{
		{Name: "varmail", Files: 1000, FileSize: 16 << 10, Threads: 16, Loop: varmailLoop},
		{Name: "webserver", Files: 1000, FileSize: 64 << 10, Threads: 100, Loop: webserverLoop},
		{Name: "webproxy", Files: 10000, FileSize: 16 << 10, Threads: 100, Loop: webproxyLoop},
		{Name: "fileserver", Files: 10000, FileSize: 128 << 10, Threads: 50, Loop: fileserverLoop},
	}
}

// ByName finds a personality.
func ByName(name string) (Personality, error) {
	for _, p := range Personalities() {
		if p.Name == name {
			return p, nil
		}
	}
	return Personality{}, fmt.Errorf("filebench: unknown personality %q", name)
}

// Run prepopulates the fileset and executes the personality against fs.
func Run(fs fsapi.FileSystem, p Personality, cfg Config) (Result, error) {
	files := p.Files
	if cfg.Files > 0 {
		files = cfg.Files
	}
	threads := p.Threads
	if cfg.Threads > 0 {
		threads = cfg.Threads
	}
	if cfg.Duration == 0 {
		cfg.Duration = time.Second
	}
	res := Result{Personality: p.Name, FS: fs.Name()}

	setup, err := fs.Attach(fsapi.Root)
	if err != nil {
		return res, err
	}
	if err := setup.Mkdir("/data", 0o777); err != nil {
		return res, err
	}
	if err := setup.Mkdir("/logs", 0o777); err != nil {
		return res, err
	}
	buf := make([]byte, 64<<10)
	for i := 0; i < files; i++ {
		fd, err := setup.Create(fmt.Sprintf("/data/f%06d", i), 0o666)
		if err != nil {
			return res, err
		}
		for off := 0; off < p.FileSize; off += len(buf) {
			chunk := p.FileSize - off
			if chunk > len(buf) {
				chunk = len(buf)
			}
			if _, err := setup.Write(fd, buf[:chunk]); err != nil {
				return res, err
			}
		}
		setup.Close(fd)
	}

	runtime.GC() // previous runs' arenas must not be collected inside the window
	var ops atomic.Uint64
	stop := make(chan struct{})
	errs := make(chan error, threads)
	var wg sync.WaitGroup
	start := time.Now()
	for t := 0; t < threads; t++ {
		t := t
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := fs.Attach(fsapi.Root)
			if err != nil {
				errs <- err
				return
			}
			w := &worker{
				c: c, rng: rand.New(rand.NewSource(int64(t) + 1)),
				files: files, size: p.FileSize,
				buf: make([]byte, 64<<10), tid: t,
			}
			for {
				select {
				case <-stop:
					return
				default:
				}
				n, err := p.Loop(w)
				if err != nil {
					errs <- fmt.Errorf("thread %d: %w", t, err)
					return
				}
				ops.Add(uint64(n))
			}
		}()
	}
	time.Sleep(cfg.Duration)
	close(stop)
	wg.Wait()
	res.Elapsed = time.Since(start)
	res.Ops = ops.Load()
	select {
	case err := <-errs:
		return res, err
	default:
	}
	return res, nil
}
