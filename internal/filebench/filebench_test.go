package filebench

import (
	"testing"
	"time"

	"simurgh/internal/bench"
)

func TestPersonalityLookup(t *testing.T) {
	if _, err := ByName("varmail"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("nonsense"); err == nil {
		t.Fatal("phantom personality")
	}
	if len(Personalities()) != 4 {
		t.Fatalf("expected 4 personalities")
	}
}

func TestEveryPersonalityOnSimurgh(t *testing.T) {
	for _, p := range Personalities() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			fs, err := bench.MakeFS("simurgh", 512<<20)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(fs, p, Config{Files: 60, Threads: 4, Duration: 100 * time.Millisecond})
			if err != nil {
				t.Fatal(err)
			}
			if res.Ops == 0 {
				t.Fatal("no operations completed")
			}
		})
	}
}

func TestVarmailOnAllFS(t *testing.T) {
	p, _ := ByName("varmail")
	for _, name := range bench.FSNames {
		fs, err := bench.MakeFS(name, 512<<20)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(fs, p, Config{Files: 40, Threads: 3, Duration: 80 * time.Millisecond})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Ops == 0 {
			t.Fatalf("%s: zero ops", name)
		}
	}
}
