package filebench

import (
	"testing"
	"time"

	"simurgh/internal/bench"
	"simurgh/internal/core"
)

// TestVarmailDoesNotExhaustSpace pins the stationary fileset size of the
// varmail personality (appends are balanced by delete-resets).
func TestVarmailDoesNotExhaustSpace(t *testing.T) {
	fs, err := bench.MakeFS("simurgh", 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := ByName("varmail")
	res, err := Run(fs, p, Config{Files: 200, Threads: 4, Duration: 500 * time.Millisecond})
	if err != nil {
		t.Fatalf("err=%v free=%d", err, fs.(*core.FS).FreeBlocks())
	}
	t.Logf("ops=%d free=%d", res.Ops, fs.(*core.FS).FreeBlocks())
}
