// Package fxmark implements the FxMark-derived microbenchmarks of the
// paper's Figure 6 and Figure 7 as bench.Workloads: metadata benchmarks
// (create/delete/rename/resolve in private and shared directories) and data
// benchmarks (append, fallocate, random read/overwrite of shared and
// private files). The paper's adaptation is preserved: reads use
// pseudo-random offsets so the CPU cache does not inflate results; the
// original (cache-hot) variant exists separately for the Fig 6 comparison.
package fxmark

import (
	"fmt"
	"math/rand"

	"simurgh/internal/bench"
	"simurgh/internal/fsapi"
)

const (
	// dataDev sizes the device for data-heavy benchmarks.
	dataDev = 1 << 30 // 1 GiB
	// metaDev sizes the device for metadata benchmarks.
	metaDev = 512 << 20

	sharedFileSize  = 64 << 20 // Fig 7i/7k shared file
	privateFileSize = 16 << 20 // Fig 7j/7l per-thread files
	ioSize          = 4096
)

// loop runs fn until stop closes, returning the completed count.
func loop(stop <-chan struct{}, fn func(i int) error) (uint64, error) {
	var ops uint64
	for i := 0; ; i++ {
		select {
		case <-stop:
			return ops, nil
		default:
		}
		if err := fn(i); err != nil {
			return ops, err
		}
		ops++
	}
}

// CreatePrivate is Fig 7a: file creation, one directory per thread.
func CreatePrivate() bench.Workload {
	return bench.Workload{
		Name:    "create-private",
		DevSize: metaDev,
		Worker: func(fs fsapi.FileSystem, _ any, tid int, stop <-chan struct{}) (uint64, uint64, error) {
			c, err := fs.Attach(fsapi.Root)
			if err != nil {
				return 0, 0, err
			}
			dir := fmt.Sprintf("/t%d", tid)
			if err := c.Mkdir(dir, 0o755); err != nil {
				return 0, 0, err
			}
			ops, err := loop(stop, func(i int) error {
				fd, err := c.Create(fmt.Sprintf("%s/f%d", dir, i), 0o644)
				if err != nil {
					return err
				}
				return c.Close(fd)
			})
			return ops, 0, err
		},
	}
}

// CreateShared is Fig 7b: file creation, all threads in one directory.
func CreateShared() bench.Workload {
	return bench.Workload{
		Name:    "create-shared",
		DevSize: metaDev,
		Setup: func(fs fsapi.FileSystem) (any, error) {
			c, err := fs.Attach(fsapi.Root)
			if err != nil {
				return nil, err
			}
			return nil, c.Mkdir("/shared", 0o777)
		},
		Worker: func(fs fsapi.FileSystem, _ any, tid int, stop <-chan struct{}) (uint64, uint64, error) {
			c, err := fs.Attach(fsapi.Root)
			if err != nil {
				return 0, 0, err
			}
			ops, err := loop(stop, func(i int) error {
				fd, err := c.Create(fmt.Sprintf("/shared/t%d-f%d", tid, i), 0o644)
				if err != nil {
					return err
				}
				return c.Close(fd)
			})
			return ops, 0, err
		},
	}
}

// UnlinkPrivate is Fig 7c: deleting empty files from private directories.
// Workers restock (uncounted) when their pool runs dry.
func UnlinkPrivate() bench.Workload {
	const stock = 512
	return bench.Workload{
		Name:    "unlink-private",
		DevSize: metaDev,
		Worker: func(fs fsapi.FileSystem, _ any, tid int, stop <-chan struct{}) (uint64, uint64, error) {
			c, err := fs.Attach(fsapi.Root)
			if err != nil {
				return 0, 0, err
			}
			dir := fmt.Sprintf("/t%d", tid)
			if err := c.Mkdir(dir, 0o755); err != nil {
				return 0, 0, err
			}
			restock := func(gen int) error {
				for i := 0; i < stock; i++ {
					fd, err := c.Create(fmt.Sprintf("%s/g%d-f%d", dir, gen, i), 0o644)
					if err != nil {
						return err
					}
					c.Close(fd)
				}
				return nil
			}
			var ops uint64
			for gen := 0; ; gen++ {
				if err := restock(gen); err != nil {
					return ops, 0, err
				}
				for i := 0; i < stock; i++ {
					select {
					case <-stop:
						return ops, 0, nil
					default:
					}
					if err := c.Unlink(fmt.Sprintf("%s/g%d-f%d", dir, gen, i)); err != nil {
						return ops, 0, err
					}
					ops++
				}
			}
		},
	}
}

// RenameShared is Fig 7d: renaming files within one shared directory.
func RenameShared() bench.Workload {
	return bench.Workload{
		Name:    "rename-shared",
		DevSize: metaDev,
		Setup: func(fs fsapi.FileSystem) (any, error) {
			c, err := fs.Attach(fsapi.Root)
			if err != nil {
				return nil, err
			}
			return nil, c.Mkdir("/shared", 0o777)
		},
		Worker: func(fs fsapi.FileSystem, _ any, tid int, stop <-chan struct{}) (uint64, uint64, error) {
			c, err := fs.Attach(fsapi.Root)
			if err != nil {
				return 0, 0, err
			}
			cur := fmt.Sprintf("/shared/t%d-gen0", tid)
			fd, err := c.Create(cur, 0o644)
			if err != nil {
				return 0, 0, err
			}
			c.Close(fd)
			ops, err := loop(stop, func(i int) error {
				next := fmt.Sprintf("/shared/t%d-gen%d", tid, i+1)
				if err := c.Rename(cur, next); err != nil {
					return err
				}
				cur = next
				return nil
			})
			return ops, 0, err
		},
	}
}

// ResolvePrivate is Fig 7e: opening files in private directories of depth 5.
func ResolvePrivate() bench.Workload {
	return bench.Workload{
		Name:    "resolve-private",
		DevSize: metaDev,
		Worker: func(fs fsapi.FileSystem, _ any, tid int, stop <-chan struct{}) (uint64, uint64, error) {
			c, err := fs.Attach(fsapi.Root)
			if err != nil {
				return 0, 0, err
			}
			path := fmt.Sprintf("/p%d", tid)
			if err := c.Mkdir(path, 0o755); err != nil {
				return 0, 0, err
			}
			for d := 0; d < 4; d++ {
				path += "/d"
				if err := c.Mkdir(path, 0o755); err != nil {
					return 0, 0, err
				}
			}
			file := path + "/target"
			fd, err := c.Create(file, 0o644)
			if err != nil {
				return 0, 0, err
			}
			c.Close(fd)
			ops, err := loop(stop, func(int) error {
				fd, err := c.Open(file, fsapi.ORdonly, 0)
				if err != nil {
					return err
				}
				return c.Close(fd)
			})
			return ops, 0, err
		},
	}
}

// ResolveShared is Fig 7f: all threads resolve paths sharing the same
// directory components (dentry-cache lockref contention for kernel FSes).
func ResolveShared() bench.Workload {
	return bench.Workload{
		Name:    "resolve-shared",
		DevSize: metaDev,
		Setup: func(fs fsapi.FileSystem) (any, error) {
			c, err := fs.Attach(fsapi.Root)
			if err != nil {
				return nil, err
			}
			path := "/common"
			if err := c.Mkdir(path, 0o777); err != nil {
				return nil, err
			}
			for d := 0; d < 4; d++ {
				path += "/d"
				if err := c.Mkdir(path, 0o777); err != nil {
					return nil, err
				}
			}
			for t := 0; t < 16; t++ {
				fd, err := c.Create(fmt.Sprintf("%s/target%d", path, t), 0o644)
				if err != nil {
					return nil, err
				}
				c.Close(fd)
			}
			return path, nil
		},
		Worker: func(fs fsapi.FileSystem, ctx any, tid int, stop <-chan struct{}) (uint64, uint64, error) {
			c, err := fs.Attach(fsapi.Root)
			if err != nil {
				return 0, 0, err
			}
			file := fmt.Sprintf("%s/target%d", ctx.(string), tid%16)
			ops, err := loop(stop, func(int) error {
				fd, err := c.Open(file, fsapi.ORdonly, 0)
				if err != nil {
					return err
				}
				return c.Close(fd)
			})
			return ops, 0, err
		},
	}
}

// AppendPrivate is Fig 7g: 4 kB appends to private files.
func AppendPrivate() bench.Workload {
	return bench.Workload{
		Name:    "append-private",
		DevSize: dataDev,
		Worker: func(fs fsapi.FileSystem, _ any, tid int, stop <-chan struct{}) (uint64, uint64, error) {
			c, err := fs.Attach(fsapi.Root)
			if err != nil {
				return 0, 0, err
			}
			fd, err := c.Open(fmt.Sprintf("/app%d", tid), fsapi.OCreate|fsapi.OWronly|fsapi.OAppend, 0o644)
			if err != nil {
				return 0, 0, err
			}
			buf := make([]byte, ioSize)
			var bytes uint64
			ops, err := loop(stop, func(i int) error {
				// Bound file growth so long runs fit the device.
				if (uint64(i)+1)*ioSize > 512<<20 {
					if err := c.Ftruncate(fd, 0); err != nil {
						return err
					}
				}
				n, err := c.Write(fd, buf)
				bytes += uint64(n)
				return err
			})
			return ops, bytes, err
		},
	}
}

// Fallocate is Fig 7h: preallocating 4 MB chunks for private files.
func Fallocate() bench.Workload {
	const chunk = 4 << 20
	return bench.Workload{
		Name:    "fallocate",
		DevSize: dataDev,
		Worker: func(fs fsapi.FileSystem, _ any, tid int, stop <-chan struct{}) (uint64, uint64, error) {
			c, err := fs.Attach(fsapi.Root)
			if err != nil {
				return 0, 0, err
			}
			ops, err := loop(stop, func(i int) error {
				name := fmt.Sprintf("/fa%d-%d", tid, i)
				fd, err := c.Create(name, 0o644)
				if err != nil {
					return err
				}
				if err := c.Fallocate(fd, chunk); err != nil {
					return err
				}
				if err := c.Fsync(fd); err != nil {
					return err
				}
				c.Close(fd)
				return c.Unlink(name)
			})
			return ops, ops * chunk, err
		},
	}
}

// prepFile creates a file of the given size filled with pattern data.
func prepFile(c fsapi.Client, name string, size uint64) error {
	fd, err := c.Create(name, 0o666)
	if err != nil {
		return err
	}
	defer c.Close(fd)
	buf := make([]byte, 1<<20)
	for i := range buf {
		buf[i] = byte(i)
	}
	for off := uint64(0); off < size; off += uint64(len(buf)) {
		if _, err := c.Pwrite(fd, buf, off); err != nil {
			return err
		}
	}
	return nil
}

// ReadShared is Fig 7i: random 4 kB reads of one shared file.
func ReadShared() bench.Workload {
	return bench.Workload{
		Name:    "read-shared",
		DevSize: dataDev,
		Setup: func(fs fsapi.FileSystem) (any, error) {
			c, err := fs.Attach(fsapi.Root)
			if err != nil {
				return nil, err
			}
			return nil, prepFile(c, "/bigfile", sharedFileSize)
		},
		Worker: func(fs fsapi.FileSystem, _ any, tid int, stop <-chan struct{}) (uint64, uint64, error) {
			c, err := fs.Attach(fsapi.Root)
			if err != nil {
				return 0, 0, err
			}
			fd, err := c.Open("/bigfile", fsapi.ORdonly, 0)
			if err != nil {
				return 0, 0, err
			}
			rng := rand.New(rand.NewSource(int64(tid) + 1))
			buf := make([]byte, ioSize)
			var bytes uint64
			ops, err := loop(stop, func(int) error {
				off := uint64(rng.Int63n(sharedFileSize - ioSize))
				n, err := c.Pread(fd, buf, off)
				bytes += uint64(n)
				return err
			})
			return ops, bytes, err
		},
	}
}

// ReadPrivate is Fig 7j: random 4 kB reads of per-thread files.
func ReadPrivate() bench.Workload {
	return bench.Workload{
		Name:    "read-private",
		DevSize: dataDev,
		Worker: func(fs fsapi.FileSystem, _ any, tid int, stop <-chan struct{}) (uint64, uint64, error) {
			c, err := fs.Attach(fsapi.Root)
			if err != nil {
				return 0, 0, err
			}
			name := fmt.Sprintf("/priv%d", tid)
			if err := prepFile(c, name, privateFileSize); err != nil {
				return 0, 0, err
			}
			fd, err := c.Open(name, fsapi.ORdonly, 0)
			if err != nil {
				return 0, 0, err
			}
			rng := rand.New(rand.NewSource(int64(tid) + 7))
			buf := make([]byte, ioSize)
			var bytes uint64
			ops, err := loop(stop, func(int) error {
				off := uint64(rng.Int63n(privateFileSize - ioSize))
				n, err := c.Pread(fd, buf, off)
				bytes += uint64(n)
				return err
			})
			return ops, bytes, err
		},
	}
}

// ReadSharedCacheHot is the *original* FxMark DRBL behaviour for Fig 6:
// every thread re-reads the same 4 kB block, so results reflect the CPU
// cache rather than NVMM.
func ReadSharedCacheHot() bench.Workload {
	w := ReadShared()
	w.Name = "read-shared-cachehot"
	w.Worker = func(fs fsapi.FileSystem, _ any, tid int, stop <-chan struct{}) (uint64, uint64, error) {
		c, err := fs.Attach(fsapi.Root)
		if err != nil {
			return 0, 0, err
		}
		fd, err := c.Open("/bigfile", fsapi.ORdonly, 0)
		if err != nil {
			return 0, 0, err
		}
		buf := make([]byte, ioSize)
		var bytes uint64
		ops, err := loop(stop, func(int) error {
			n, err := c.Pread(fd, buf, 0)
			bytes += uint64(n)
			return err
		})
		return ops, bytes, err
	}
	return w
}

// OverwriteShared is Fig 7k: random 4 kB overwrites of one shared file.
// Run it with fs "simurgh-relaxed" as well to reproduce the relaxed series.
func OverwriteShared() bench.Workload {
	return bench.Workload{
		Name:    "overwrite-shared",
		DevSize: dataDev,
		Setup: func(fs fsapi.FileSystem) (any, error) {
			c, err := fs.Attach(fsapi.Root)
			if err != nil {
				return nil, err
			}
			return nil, prepFile(c, "/bigfile", sharedFileSize)
		},
		Worker: func(fs fsapi.FileSystem, _ any, tid int, stop <-chan struct{}) (uint64, uint64, error) {
			c, err := fs.Attach(fsapi.Root)
			if err != nil {
				return 0, 0, err
			}
			fd, err := c.Open("/bigfile", fsapi.ORdwr, 0)
			if err != nil {
				return 0, 0, err
			}
			rng := rand.New(rand.NewSource(int64(tid) + 13))
			buf := make([]byte, ioSize)
			var bytes uint64
			ops, err := loop(stop, func(int) error {
				off := uint64(rng.Int63n(sharedFileSize-ioSize)) &^ (ioSize - 1)
				n, err := c.Pwrite(fd, buf, off)
				bytes += uint64(n)
				return err
			})
			return ops, bytes, err
		},
	}
}

// WritePrivate is Fig 7l: random 4 kB writes to private preallocated files.
func WritePrivate() bench.Workload {
	return bench.Workload{
		Name:    "write-private",
		DevSize: dataDev,
		Worker: func(fs fsapi.FileSystem, _ any, tid int, stop <-chan struct{}) (uint64, uint64, error) {
			c, err := fs.Attach(fsapi.Root)
			if err != nil {
				return 0, 0, err
			}
			name := fmt.Sprintf("/wpriv%d", tid)
			fd, err := c.Open(name, fsapi.OCreate|fsapi.ORdwr, 0o644)
			if err != nil {
				return 0, 0, err
			}
			if err := c.Fallocate(fd, privateFileSize); err != nil {
				return 0, 0, err
			}
			rng := rand.New(rand.NewSource(int64(tid) + 29))
			buf := make([]byte, ioSize)
			var bytes uint64
			ops, err := loop(stop, func(int) error {
				off := uint64(rng.Int63n(privateFileSize-ioSize)) &^ (ioSize - 1)
				n, err := c.Pwrite(fd, buf, off)
				bytes += uint64(n)
				return err
			})
			return ops, bytes, err
		},
	}
}

// All returns every Fig 7 workload keyed by CLI name.
func All() map[string]bench.Workload {
	ws := []bench.Workload{
		CreatePrivate(), CreateShared(), UnlinkPrivate(), RenameShared(),
		ResolvePrivate(), ResolveShared(), AppendPrivate(), Fallocate(),
		ReadShared(), ReadPrivate(), OverwriteShared(), WritePrivate(),
		ReadSharedCacheHot(),
	}
	m := make(map[string]bench.Workload, len(ws))
	for _, w := range ws {
		m[w.Name] = w
	}
	return m
}
