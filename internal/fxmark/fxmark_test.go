package fxmark

import (
	"testing"
	"time"

	"simurgh/internal/bench"
)

// TestEveryWorkloadRunsOnEveryFS smoke-runs each microbenchmark briefly on
// each file system, catching interface or setup errors.
func TestEveryWorkloadRunsOnEveryFS(t *testing.T) {
	fss := append([]string{}, bench.FSNames...)
	fss = append(fss, "simurgh-relaxed")
	for name, w := range All() {
		w := w
		t.Run(name, func(t *testing.T) {
			for _, fsName := range fss {
				r, err := bench.RunPoint(w, fsName, 256<<20, 2, 30*time.Millisecond)
				if err != nil {
					t.Fatalf("%s on %s: %v", name, fsName, err)
				}
				if r.Ops == 0 {
					t.Fatalf("%s on %s completed zero operations", name, fsName)
				}
			}
		})
	}
}

func TestResultMath(t *testing.T) {
	r := bench.Result{Ops: 1000, Bytes: 4 << 20, Elapsed: 2 * time.Second}
	if got := r.OpsPerSec(); got != 500 {
		t.Fatalf("OpsPerSec = %f", got)
	}
	if got := r.MBPerSec(); got != 2 {
		t.Fatalf("MBPerSec = %f", got)
	}
}
