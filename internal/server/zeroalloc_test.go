package server

// White-box steady-state tests: they drive the server's batch execution
// path (decode → execute → encode → vectored flush) directly on the calling
// goroutine against a constant-answer client and a discarding connection,
// isolating the server's own allocation behavior from the file system and
// the kernel. This is the path both workers and the read fast path run.

import (
	"io"
	"net"
	"testing"
	"time"

	"simurgh/internal/fsapi"
	"simurgh/internal/obs"
	"simurgh/internal/wire"
)

// nullClient answers every operation from constants.
type nullClient struct{}

func (nullClient) Create(string, uint32) (fsapi.FD, error) { return 3, nil }
func (nullClient) Open(string, fsapi.OpenFlag, uint32) (fsapi.FD, error) {
	return 3, nil
}
func (nullClient) Close(fsapi.FD) error { return nil }
func (nullClient) Read(fd fsapi.FD, p []byte) (int, error) {
	return len(p), nil
}
func (nullClient) Pread(fd fsapi.FD, p []byte, off uint64) (int, error) {
	return len(p), nil
}
func (nullClient) Write(fd fsapi.FD, p []byte) (int, error) { return len(p), nil }
func (nullClient) Pwrite(fd fsapi.FD, p []byte, off uint64) (int, error) {
	return len(p), nil
}
func (nullClient) Seek(fsapi.FD, int64, int) (int64, error) { return 0, nil }
func (nullClient) Fsync(fsapi.FD) error                     { return nil }
func (nullClient) Ftruncate(fsapi.FD, uint64) error         { return nil }
func (nullClient) Fallocate(fsapi.FD, uint64) error         { return nil }
func (nullClient) Fstat(fsapi.FD) (fsapi.Stat, error)       { return fsapi.Stat{Size: 1}, nil }
func (nullClient) Stat(string) (fsapi.Stat, error)          { return fsapi.Stat{Size: 1}, nil }
func (nullClient) Lstat(string) (fsapi.Stat, error)         { return fsapi.Stat{Size: 1}, nil }
func (nullClient) Mkdir(string, uint32) error               { return nil }
func (nullClient) Rmdir(string) error                       { return nil }
func (nullClient) Unlink(string) error                      { return nil }
func (nullClient) Rename(string, string) error              { return nil }
func (nullClient) Symlink(string, string) error             { return nil }
func (nullClient) Link(string, string) error                { return nil }
func (nullClient) Readlink(string) (string, error)          { return "", nil }
func (nullClient) ReadDir(string) ([]fsapi.DirEntry, error) { return nil, nil }
func (nullClient) Chmod(string, uint32) error               { return nil }
func (nullClient) Utimes(string, int64, int64) error        { return nil }
func (nullClient) Detach() error                            { return nil }

// discardConn is a net.Conn that swallows writes.
type discardConn struct{}

type fakeAddr struct{}

func (fakeAddr) Network() string { return "fake" }
func (fakeAddr) String() string  { return "fake" }

func (discardConn) Read(p []byte) (int, error)       { return 0, io.EOF }
func (discardConn) Write(p []byte) (int, error)      { return len(p), nil }
func (discardConn) Close() error                     { return nil }
func (discardConn) LocalAddr() net.Addr              { return fakeAddr{} }
func (discardConn) RemoteAddr() net.Addr             { return fakeAddr{} }
func (discardConn) SetDeadline(time.Time) error      { return nil }
func (discardConn) SetReadDeadline(time.Time) error  { return nil }
func (discardConn) SetWriteDeadline(time.Time) error { return nil }

// steadyState builds the harness: a server shell (no listener, no workers —
// execBatch runs on this goroutine exactly as the fast path does), a
// session over a discarding connection, and the pre-encoded batch frame.
func steadyState(tb testing.TB, reqs []wire.Request) (*Server, *session, []byte) {
	tb.Helper()
	cfg := Config{}
	cfg.fillDefaults()
	s := &Server{cfg: cfg}
	sess := &session{srv: s, conn: discardConn{}, client: nullClient{}, bufw: newBufWriter(io.Discard)}
	var payload []byte
	for i := range reqs {
		payload = wire.AppendRequest(payload, &reqs[i])
	}
	return s, sess, payload
}

// steadyBatches are the request mixes the steady-state tests drive.
func statBatch(n int) []wire.Request {
	reqs := make([]wire.Request, n)
	for i := range reqs {
		reqs[i] = wire.Request{ID: uint32(i + 1), Op: wire.OpStat, Path: "/bench/f000"}
	}
	return reqs
}

func preadBatch(n, size int) []wire.Request {
	reqs := make([]wire.Request, n)
	for i := range reqs {
		reqs[i] = wire.Request{ID: uint32(i + 1), Op: wire.OpPread, FD: 3,
			Size: uint32(size), Off: uint64(i * size)}
	}
	return reqs
}

// runSteady performs one full server round: decode the batch frame into the
// connection scratch, execute it, flush the staged reply.
func runSteady(s *Server, sess *session, cs *connState, payload []byte, enq time.Time) error {
	var err error
	cs.reqs, err = wire.DecodeBatchInto(cs.reqs[:0], payload)
	if err != nil {
		return err
	}
	s.execBatch(sess, cs.reqs, &cs.rs, enq, 0, true)
	cs.rs.shrink()
	return nil
}

func benchSteady(b *testing.B, reqs []wire.Request) {
	s, sess, payload := steadyState(b, reqs)
	var cs connState
	enq := time.Now()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := runSteady(s, sess, &cs, payload, enq); err != nil {
			b.Fatal(err)
		}
	}
}

func pwriteBatch(n, size int) []wire.Request {
	data := make([]byte, size)
	reqs := make([]wire.Request, n)
	for i := range reqs {
		reqs[i] = wire.Request{ID: uint32(i + 1), Op: wire.OpPwrite, FD: 3,
			Off: uint64(i * size), Data: data}
	}
	return reqs
}

// tracedRegistry arms the flight recorder (and slow log) the way a traced
// production node runs, so the benchmarks below measure the instrumented —
// but unsampled — request path.
func tracedRegistry() *obs.Registry {
	r := obs.NewRegistry()
	r.SetNode("bench")
	r.EnableTrace(1024)
	return r
}

func BenchmarkServerStatBatch32(b *testing.B)   { benchSteady(b, statBatch(32)) }
func BenchmarkServerPread4KBatch8(b *testing.B) { benchSteady(b, preadBatch(8, 4096)) }

// BenchmarkServerPwriteTracedUnsampled pins the tracing tax on untraced
// traffic: the registry has its flight recorder enabled, but the batch
// carries no trace context (trace 0), which is what all but 1/TraceSample
// of requests look like on a node running with -trace. bench-smoke gates
// this at 0 allocs/op like every other BenchmarkServer* steady-state path.
func BenchmarkServerPwriteTracedUnsampled(b *testing.B) {
	reqs := pwriteBatch(8, 4096)
	s, sess, payload := steadyState(b, reqs)
	s.cfg.Obs = tracedRegistry()
	var cs connState
	enq := time.Now()
	b.SetBytes(int64(8 * 4096))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := runSteady(s, sess, &cs, payload, enq); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServerPreadLarge exercises the large-IO reply path — MaxIO reads
// whose responses split across several staged frames — pinning the
// double-copy fix: read data moves frame-ward exactly once (fs → scratch →
// encoded payload), with the reply written vectored, never re-staged.
func BenchmarkServerPreadLarge(b *testing.B) {
	reqs := preadBatch(8, wire.MaxIO)
	s, sess, payload := steadyState(b, reqs)
	var cs connState
	enq := time.Now()
	b.SetBytes(int64(8 * wire.MaxIO))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := runSteady(s, sess, &cs, payload, enq); err != nil {
			b.Fatal(err)
		}
	}
}

// TestServerSteadyStateZeroAlloc pins the whole server request path —
// decode, execute, encode, vectored flush — at zero allocations per batch
// once buffers are warm. CI's bench-smoke step enforces the same bound.
func TestServerSteadyStateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under -race")
	}
	for _, tc := range []struct {
		name string
		reqs []wire.Request
		obs  *obs.Registry
	}{
		{"stat32", statBatch(32), nil},
		{"pread4k8", preadBatch(8, 4096), nil},
		{"pwrite4k8-traced-unsampled", pwriteBatch(8, 4096), tracedRegistry()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s, sess, payload := steadyState(t, tc.reqs)
			s.cfg.Obs = tc.obs
			var cs connState
			enq := time.Now()
			round := func() {
				if err := runSteady(s, sess, &cs, payload, enq); err != nil {
					t.Fatal(err)
				}
			}
			// Warm the scratch buffers and pools beyond AllocsPerRun's own
			// single warm-up call.
			for i := 0; i < 4; i++ {
				round()
			}
			if avg := testing.AllocsPerRun(100, round); avg != 0 {
				t.Errorf("steady state: %.1f allocs/batch, want 0", avg)
			}
		})
	}
}
