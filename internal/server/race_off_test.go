//go:build !race

package server

// raceEnabled gates allocation-count assertions: testing.AllocsPerRun is
// unreliable under the race detector (instrumentation allocates).
const raceEnabled = false
