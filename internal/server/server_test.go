package server_test

import (
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"simurgh/internal/core"
	"simurgh/internal/fsapi"
	"simurgh/internal/pmem"
	"simurgh/internal/server"
	"simurgh/internal/wire"
	"simurgh/internal/wire/client"
)

func startServer(t *testing.T, cfg server.Config) (*server.Server, string) {
	t.Helper()
	if cfg.FS == nil {
		dev := pmem.New(64 << 20)
		fs, err := core.Format(dev, fsapi.Root, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		cfg.FS = fs
	}
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(srv.Shutdown)
	return srv, ln.Addr().String()
}

// TestConnLimit verifies the MaxConns'th+1 connection is refused with an
// overload error frame while admitted ones keep working.
func TestConnLimit(t *testing.T) {
	_, addr := startServer(t, server.Config{MaxConns: 2})
	remote, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	c1, err := remote.Attach(fsapi.Root)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Detach()
	c2, err := remote.Attach(fsapi.Root)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Detach()

	if _, err := remote.Attach(fsapi.Root); !errors.Is(err, wire.ErrOverload) {
		t.Fatalf("third attach = %v, want ErrOverload", err)
	}
	// Admitted sessions still serve.
	if _, err := c1.Stat("/"); err != nil {
		t.Fatalf("Stat on admitted conn after refusal: %v", err)
	}
}

// TestBadHandshakeRejected verifies a non-attach first frame gets an error
// frame and a closed connection, not a hang.
func TestBadHandshakeRejected(t *testing.T) {
	_, addr := startServer(t, server.Config{})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A batch before attach is a protocol violation.
	req := wire.Request{ID: 1, Op: wire.OpStat, Path: "/"}
	if err := wire.WriteFrame(conn, wire.KindBatch, wire.AppendRequest(nil, &req)); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	fr := wire.NewFrameReader(conn)
	kind, payload, err := fr.Next()
	if err != nil {
		t.Fatalf("reading rejection: %v", err)
	}
	if kind != wire.KindErr {
		t.Fatalf("got kind %d, want KindErr", kind)
	}
	if e := wire.ParseErrFrame(payload); e == nil {
		t.Fatal("error frame decoded to nil error")
	}
}

// TestBadMagicRejected verifies a garbage handshake is answered with an
// error frame.
func TestBadMagicRejected(t *testing.T) {
	_, addr := startServer(t, server.Config{})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := wire.WriteFrame(conn, wire.KindAttach, []byte("XXXX\x01garbage..")); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	fr := wire.NewFrameReader(conn)
	kind, _, err := fr.Next()
	if err != nil {
		t.Fatalf("reading rejection: %v", err)
	}
	if kind != wire.KindErr {
		t.Fatalf("got kind %d, want KindErr", kind)
	}
}

// TestGracefulShutdown verifies Shutdown lets an in-flight session finish,
// then refuses new connections.
func TestGracefulShutdown(t *testing.T) {
	srv, addr := startServer(t, server.Config{})
	remote, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	c, err := remote.Attach(fsapi.Root)
	if err != nil {
		t.Fatal(err)
	}
	fd, err := c.Create("/f", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write(fd, []byte("persisted")); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(fd); err != nil {
		t.Fatal(err)
	}
	srv.Shutdown()
	if _, err := remote.Attach(fsapi.Root); err == nil {
		t.Fatal("attach after shutdown succeeded")
	}
}

// TestMetricsOutput drives traffic and checks the exported series names and
// monotone counters.
func TestMetricsOutput(t *testing.T) {
	srv, addr := startServer(t, server.Config{})
	remote, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	c, err := remote.Attach(fsapi.Root)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := c.Stat("/"); err != nil {
			t.Fatal(err)
		}
	}
	c.Detach()

	var sb strings.Builder
	srv.WriteMetrics(&sb)
	out := sb.String()
	for _, want := range []string{
		"simurgh_server_conns_accepted_total 1",
		"simurgh_server_sessions_total 1",
		"simurgh_server_requests_total",
		"simurgh_server_request_ns_bucket",
		"simurgh_wire_batches_total",
		"simurgh_wire_batch_size_bucket",
		"simurgh_wire_bytes_read_total",
		"simurgh_wire_bytes_written_total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}

// TestLargeBatchReplySplits verifies a batch whose responses exceed one
// frame (five MaxIO preads: >5 MiB of reply against a 4 MiB MaxFrame) is
// answered across multiple reply frames instead of killing the session.
func TestLargeBatchReplySplits(t *testing.T) {
	_, addr := startServer(t, server.Config{})
	remote, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	cl, err := remote.Attach(fsapi.Root)
	if err != nil {
		t.Fatal(err)
	}
	sess := cl.(*client.Session)
	defer sess.Detach()

	data := make([]byte, wire.MaxIO)
	for i := range data {
		data[i] = byte(i)
	}
	wfd, err := sess.Create("/big", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Pwrite(wfd, data, 0); err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(wfd); err != nil {
		t.Fatal(err)
	}
	fd, err := sess.Open("/big", fsapi.ORdonly, 0)
	if err != nil {
		t.Fatal(err)
	}

	reqs := make([]wire.Request, 5)
	for i := range reqs {
		reqs[i] = wire.Request{Op: wire.OpPread, FD: fd, Size: wire.MaxIO}
	}
	resps, err := sess.Submit(reqs)
	if err != nil {
		t.Fatalf("Submit of %d MaxIO preads: %v", len(reqs), err)
	}
	for i, r := range resps {
		if r.Code != wire.CodeOK {
			t.Fatalf("pread %d failed: %v", i, r.Err())
		}
		if len(r.Data) != wire.MaxIO || r.Data[wire.MaxIO-1] != data[wire.MaxIO-1] {
			t.Fatalf("pread %d returned %d bytes, want %d", i, len(r.Data), wire.MaxIO)
		}
	}
	// The session must still be live after the multi-frame reply.
	if err := sess.Close(fd); err != nil {
		t.Fatalf("session dead after split reply: %v", err)
	}
}

// TestSequentialBatchSemantics checks a dependent create→write→close→stat
// chain works inside one batch frame (in-order execution).
func TestSequentialBatchSemantics(t *testing.T) {
	_, addr := startServer(t, server.Config{})
	remote, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	cl, err := remote.Attach(fsapi.Root)
	if err != nil {
		t.Fatal(err)
	}
	sess := cl.(*client.Session)
	defer sess.Detach()

	resps, err := sess.Submit([]wire.Request{
		{Op: wire.OpCreate, Path: "/chain", Perm: 0o644},
	})
	if err != nil || resps[0].Code != wire.CodeOK {
		t.Fatalf("create: %v / %v", err, resps[0].Err())
	}
	fd := resps[0].FD
	resps, err = sess.Submit([]wire.Request{
		{Op: wire.OpWrite, FD: fd, Data: []byte("abc")},
		{Op: wire.OpWrite, FD: fd, Data: []byte("def")},
		{Op: wire.OpClose, FD: fd},
		{Op: wire.OpStat, Path: "/chain"},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range resps {
		if r.Code != wire.CodeOK {
			t.Fatalf("batch op %d failed: %v", i, r.Err())
		}
	}
	if got := resps[3].Stat.Size; got != 6 {
		t.Fatalf("size after batched writes = %d, want 6", got)
	}
}
