package server_test

import (
	"sync"
	"testing"

	"simurgh/internal/fsapi"
	"simurgh/internal/server"
	"simurgh/internal/wire"
	"simurgh/internal/wire/client"
)

// patternAt is the expected byte at file offset off — position-dependent so
// a reply whose bytes came from a recycled buffer at the wrong offset (a
// pool-lifetime bug) cannot verify.
func patternAt(off int) byte { return byte(off*131 ^ off>>11) }

// TestPoolLifetimeSplitReplies hammers the pooled-buffer ownership contract
// end to end: concurrent sessions interleave large-pread batches — whose
// replies split across several frames and force mid-batch vectored flushes
// — with read-only stat batches riding the inline fast path, and every
// returned byte is verified against the file's position-dependent pattern.
// Its real teeth come from `go test -race`: a frame buffer released while
// still referenced, a reply staged from a recycled payload, or a scratch
// buffer shared across workers shows up as a data race or a corrupt read.
func TestPoolLifetimeSplitReplies(t *testing.T) {
	_, addr := startServer(t, server.Config{})
	remote, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	const fileSize = 4 << 20
	root, err := remote.Attach(fsapi.Root)
	if err != nil {
		t.Fatal(err)
	}
	defer root.Detach()
	fd, err := root.Create("/big", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	chunk := make([]byte, 1<<20)
	for off := 0; off < fileSize; off += len(chunk) {
		for i := range chunk {
			chunk[i] = patternAt(off + i)
		}
		if _, err := root.Pwrite(fd, chunk, uint64(off)); err != nil {
			t.Fatal(err)
		}
	}
	if err := root.Close(fd); err != nil {
		t.Fatal(err)
	}

	const (
		workers = 4
		iters   = 12
		preads  = 10 // 10 MaxIO responses split across 3+ reply frames
	)
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := remote.Attach(fsapi.Root)
			if err != nil {
				errs <- err
				return
			}
			defer c.Detach()
			sess := c.(*client.Session)
			fd, err := c.Open("/big", fsapi.ORdonly, 0)
			if err != nil {
				errs <- err
				return
			}
			reqs := make([]wire.Request, preads)
			stats := make([]wire.Request, 8)
			dst := make([]byte, 256<<10)
			for it := 0; it < iters; it++ {
				// A queued batch: MaxIO preads with split multi-frame replies.
				for j := range reqs {
					off := ((g*31 + it*17 + j*13) * 4096) % (fileSize - wire.MaxIO + 1)
					reqs[j] = wire.Request{Op: wire.OpPread, FD: fd,
						Size: wire.MaxIO, Off: uint64(off)}
				}
				resps, err := sess.Submit(reqs)
				if err != nil {
					errs <- err
					return
				}
				for j, resp := range resps {
					if err := resp.Err(); err != nil {
						errs <- err
						return
					}
					if len(resp.Data) != wire.MaxIO {
						t.Errorf("pread %d returned %d bytes", j, len(resp.Data))
						return
					}
					off := int(reqs[j].Off)
					for k := 0; k < len(resp.Data); k += 4093 {
						if resp.Data[k] != patternAt(off+k) {
							t.Errorf("pread at %d: byte %d = %#x, want %#x",
								off, k, resp.Data[k], patternAt(off+k))
							return
						}
					}
				}
				// A fast-path batch: read-only stats answered inline on the
				// connection goroutine.
				for j := range stats {
					stats[j] = wire.Request{Op: wire.OpStat, Path: "/big"}
				}
				sresps, err := sess.Submit(stats)
				if err != nil {
					errs <- err
					return
				}
				for _, resp := range sresps {
					if err := resp.Err(); err != nil {
						errs <- err
						return
					}
					if resp.Stat.Size != fileSize {
						t.Errorf("stat size = %d, want %d", resp.Stat.Size, fileSize)
						return
					}
				}
				// The fsapi read path: data decodes straight into dst.
				off := ((g*7 + it*29) * 8192) % (fileSize - len(dst))
				n, err := c.Pread(fd, dst, uint64(off))
				if err != nil {
					errs <- err
					return
				}
				if n != len(dst) {
					t.Errorf("Pread = %d bytes, want %d", n, len(dst))
					return
				}
				for k := 0; k < n; k += 1021 {
					if dst[k] != patternAt(off+k) {
						t.Errorf("Pread at %d: byte %d = %#x, want %#x",
							off, k, dst[k], patternAt(off+k))
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
