package server

import (
	"fmt"
	"io"
	"math/bits"
	"sync/atomic"

	"simurgh/internal/obs"
)

// batchBuckets is the number of power-of-two batch-size buckets: bucket i
// holds batches of (2^(i-1), 2^i] ops, bucket 0 holds size-1 batches, and
// the last bucket absorbs everything up to wire.MaxBatch.
const batchBuckets = 13

// latHist is an atomically recorded latency histogram sharing the obs
// bucket layout, so the exported series line up with the file system's own
// op histograms.
type latHist struct {
	buckets [obs.NumBuckets]atomic.Uint64
	sumNs   atomic.Uint64
	count   atomic.Uint64
}

func (h *latHist) observe(ns uint64) {
	h.buckets[obs.BucketOf(ns)].Add(1)
	h.sumNs.Add(ns)
	h.count.Add(1)
}

// metrics is the server's own counter set, one instance per Server. The
// per-op file-system counters live in the volume's obs.Registry (the
// server's execution path runs through the instrumented fsapi client); these
// counters cover what only the network layer can see: connections,
// sessions, frames, batching, queueing, and wire traffic.
type metrics struct {
	connsAccepted atomic.Uint64
	connsActive   atomic.Int64
	connsRejected atomic.Uint64
	sessions      atomic.Uint64
	attachErrors  atomic.Uint64
	protoErrors   atomic.Uint64

	requests      atomic.Uint64
	requestErrors atomic.Uint64
	overloads     atomic.Uint64
	shardMoved    atomic.Uint64
	requestNs     latHist
	quorumWaitNs  latHist

	batches     atomic.Uint64
	fastBatches atomic.Uint64
	batchSize   [batchBuckets]atomic.Uint64

	framesRead    atomic.Uint64
	framesWritten atomic.Uint64
	bytesRead     atomic.Uint64
	bytesWritten  atomic.Uint64
}

func (m *metrics) observeBatch(n int) {
	m.batches.Add(1)
	b := bits.Len(uint(n) - 1) // 1→0, 2→1, 3..4→2, ...
	if n <= 0 {
		b = 0
	}
	if b >= batchBuckets {
		b = batchBuckets - 1
	}
	m.batchSize[b].Add(1)
}

// WriteMetrics renders the server's counters in the Prometheus text
// exposition format as simurgh_server_* and simurgh_wire_* series. It is an
// export.Extra: hand it to export.NewHandler/Serve to append these series
// to the volume's /metrics endpoint.
func (s *Server) WriteMetrics(w io.Writer) {
	m := &s.m
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter("simurgh_server_conns_accepted_total", "Connections accepted.", m.connsAccepted.Load())
	gauge("simurgh_server_conns_active", "Connections currently open.", m.connsActive.Load())
	counter("simurgh_server_conns_rejected_total", "Connections rejected at the limit.", m.connsRejected.Load())
	counter("simurgh_server_sessions_total", "Successful attach handshakes.", m.sessions.Load())
	counter("simurgh_server_attach_errors_total", "Failed attach handshakes.", m.attachErrors.Load())
	counter("simurgh_server_proto_errors_total", "Connections dropped on protocol errors.", m.protoErrors.Load())
	counter("simurgh_server_requests_total", "Operations executed.", m.requests.Load())
	counter("simurgh_server_request_errors_total", "Operations that returned an error.", m.requestErrors.Load())
	counter("simurgh_server_overload_total", "Operations rejected by queue backpressure or drain.", m.overloads.Load())
	counter("simurgh_server_shard_moved_total", "Operations answered CodeMoved (shard served elsewhere).", m.shardMoved.Load())
	drain := int64(0)
	if s.draining.Load() {
		drain = 1
	}
	gauge("simurgh_server_draining", "1 while the server is draining.", drain)
	gauge("simurgh_server_workers", "Worker pool size.", int64(s.cfg.Workers))
	gauge("simurgh_server_queue_len", "Batches waiting for a worker.", int64(len(s.work)))

	fmt.Fprintf(w, "# HELP simurgh_server_request_ns Per-request server-side latency (queue wait + execution).\n")
	fmt.Fprintf(w, "# TYPE simurgh_server_request_ns histogram\n")
	var cum uint64
	for i := 0; i < obs.NumBuckets-1; i++ {
		cum += m.requestNs.buckets[i].Load()
		fmt.Fprintf(w, "simurgh_server_request_ns_bucket{le=\"%d\"} %d\n", obs.BucketUpperNs(i), cum)
	}
	cum += m.requestNs.buckets[obs.NumBuckets-1].Load()
	fmt.Fprintf(w, "simurgh_server_request_ns_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(w, "simurgh_server_request_ns_sum %d\n", m.requestNs.sumNs.Load())
	fmt.Fprintf(w, "simurgh_server_request_ns_count %d\n", m.requestNs.count.Load())

	fmt.Fprintf(w, "# HELP simurgh_server_quorum_wait_ns Time batches spent blocked in WaitQuorum before their replies flushed.\n")
	fmt.Fprintf(w, "# TYPE simurgh_server_quorum_wait_ns histogram\n")
	cum = 0
	for i := 0; i < obs.NumBuckets-1; i++ {
		cum += m.quorumWaitNs.buckets[i].Load()
		fmt.Fprintf(w, "simurgh_server_quorum_wait_ns_bucket{le=\"%d\"} %d\n", obs.BucketUpperNs(i), cum)
	}
	cum += m.quorumWaitNs.buckets[obs.NumBuckets-1].Load()
	fmt.Fprintf(w, "simurgh_server_quorum_wait_ns_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(w, "simurgh_server_quorum_wait_ns_sum %d\n", m.quorumWaitNs.sumNs.Load())
	fmt.Fprintf(w, "simurgh_server_quorum_wait_ns_count %d\n", m.quorumWaitNs.count.Load())

	counter("simurgh_wire_batches_total", "Batch frames received.", m.batches.Load())
	counter("simurgh_server_fast_batches_total", "Read-only batches executed inline on the connection goroutine.", m.fastBatches.Load())
	fmt.Fprintf(w, "# HELP simurgh_wire_batch_size Operations per received batch frame.\n")
	fmt.Fprintf(w, "# TYPE simurgh_wire_batch_size histogram\n")
	cum = 0
	for i := 0; i < batchBuckets-1; i++ {
		cum += m.batchSize[i].Load()
		fmt.Fprintf(w, "simurgh_wire_batch_size_bucket{le=\"%d\"} %d\n", 1<<i, cum)
	}
	cum += m.batchSize[batchBuckets-1].Load()
	fmt.Fprintf(w, "simurgh_wire_batch_size_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(w, "simurgh_wire_batch_size_sum %d\n", m.requests.Load())
	fmt.Fprintf(w, "simurgh_wire_batch_size_count %d\n", m.batches.Load())

	counter("simurgh_wire_frames_read_total", "Frames read from clients.", m.framesRead.Load())
	counter("simurgh_wire_frames_written_total", "Frames written to clients.", m.framesWritten.Load())
	counter("simurgh_wire_bytes_read_total", "Bytes read from clients.", m.bytesRead.Load())
	counter("simurgh_wire_bytes_written_total", "Bytes written to clients.", m.bytesWritten.Load())
}

// countingConn wraps a connection, attributing raw byte traffic to the
// server metrics.
type countingConn struct {
	inner interface {
		Read([]byte) (int, error)
		Write([]byte) (int, error)
	}
	m *metrics
}

func (c countingConn) Read(p []byte) (int, error) {
	n, err := c.inner.Read(p)
	if n > 0 {
		c.m.bytesRead.Add(uint64(n))
	}
	return n, err
}

func (c countingConn) Write(p []byte) (int, error) {
	n, err := c.inner.Write(p)
	if n > 0 {
		c.m.bytesWritten.Add(uint64(n))
	}
	return n, err
}
