// Package server serves a mounted Simurgh volume over TCP using the wire
// protocol. One connection is one attached process: the handshake performs
// fsapi.FileSystem.Attach and the resulting fsapi.Client — which owns the
// connection's open-file table, exactly like a preloaded process in the
// paper — executes every operation the connection sends.
//
// Batches are the unit of scheduling: a KindBatch frame is decoded by the
// connection's reader goroutine and handed to a bounded worker pool; the
// worker executes the batch's operations sequentially in order (so a client
// may batch dependent calls like create→write→close) and writes the reply
// in one or more KindReply frames (several, when the responses — say many
// coalesced MaxIO reads — would overflow a single frame). Concurrency comes
// from connections and from pipelining:
// a client may send further batches before earlier replies arrive, and
// independent batches of one connection may execute on different workers.
//
// Backpressure is explicit: when the worker queue stays full past
// Config.RequestTimeout the batch is answered with CodeOverload instead of
// stalling the connection forever, and connections beyond Config.MaxConns
// are refused with a KindErr frame at accept. Shutdown drains: the listener
// closes, idle readers are nudged off their blocking reads, in-flight
// batches finish and flush their replies, and only stragglers past
// Config.DrainTimeout are cut.
package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"simurgh/internal/fsapi"
	"simurgh/internal/wire"
)

// Replica is the replication layer's hook surface (implemented by
// internal/replica.Node). The server stays ignorant of roles, epochs, and
// quorums; it routes attaches and state-changing operations through the
// hook and hands replication-protocol connections over wholesale.
type Replica interface {
	// AttachClient routes a client attach: on the primary it returns the
	// session (resuming an existing one when clientID matches), on a
	// backup it fails with wire.ErrNotPrimary and a redirect address.
	AttachClient(cred fsapi.Cred, clientID uint64) (c fsapi.Client, sessID uint64, redirect string, err error)
	// Apply executes one replicated operation: exec runs under the log
	// lock, the entry ships to the backups, and the returned sequence is
	// what WaitQuorum gates on. Duplicate request IDs (a client replaying
	// after failover) are answered from the session's replay cache without
	// re-executing.
	Apply(sessID uint64, req *wire.Request, exec func() wire.Response) (wire.Response, uint64)
	// WaitQuorum blocks until the configured quorum of live backups has
	// acknowledged seq (immediately when no backup is connected).
	WaitQuorum(seq uint64)
	// ReleaseSession marks a session's connection gone without detaching
	// it, so a failed-over client can resume it.
	ReleaseSession(sessID uint64)
	// HandleJoin takes ownership of a backup's replication connection
	// (snapshot transfer, log shipping, heartbeats) and blocks until the
	// link dies.
	HandleJoin(conn net.Conn, fr *wire.FrameReader, payload []byte) error
	// Promote makes this node the primary (admin op), returning the new
	// epoch.
	Promote() (uint64, error)
}

// Config parameterizes a Server. The zero value of every field selects a
// sensible default.
type Config struct {
	// FS is the volume to serve. Required unless Replica is set (a backup
	// has no volume until its snapshot restores; the replication layer
	// supplies the clients).
	FS fsapi.FileSystem
	// Replica, when set, routes attaches and state-changing operations
	// through the replication layer.
	Replica Replica
	// MaxConns bounds concurrently open connections; further accepts are
	// refused with a KindErr frame. Default 256.
	MaxConns int
	// Workers is the batch-execution pool size. Default GOMAXPROCS.
	Workers int
	// QueueDepth bounds batches waiting for a worker across all
	// connections. Default 1024.
	QueueDepth int
	// RequestTimeout bounds how long a decoded batch may wait for a free
	// queue slot before it is refused with CodeOverload, and how long the
	// attach handshake may take. Default 5s.
	RequestTimeout time.Duration
	// DrainTimeout bounds Shutdown's wait for in-flight connections before
	// force-closing them. Default 5s.
	DrainTimeout time.Duration
	// Logf receives connection-level diagnostics. Default: discard.
	Logf func(format string, args ...any)
}

func (c *Config) fillDefaults() {
	if c.MaxConns <= 0 {
		c.MaxConns = 256
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 5 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 5 * time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
}

// Server accepts wire-protocol connections and executes their batches
// against one fsapi.FileSystem.
type Server struct {
	cfg      Config
	m        metrics
	work     chan *job
	draining atomic.Bool
	drainCh  chan struct{} // closed when Shutdown starts

	mu    sync.Mutex
	ln    net.Listener
	conns map[net.Conn]struct{}

	connWG       sync.WaitGroup
	workerWG     sync.WaitGroup
	shutdownOnce sync.Once
}

// job is one decoded batch queued for execution.
type job struct {
	sess *session
	reqs []wire.Request
	enq  time.Time
}

// session is the server half of one attached connection.
type session struct {
	srv    *Server
	conn   net.Conn
	client fsapi.Client
	sessID uint64 // replication session identity (0 without a Replica)

	wmu  sync.Mutex
	bufw *bufWriter

	inflight sync.WaitGroup // batches queued or executing
}

// bufWriter is the minimal buffered-writer surface session needs; split out
// so tests can substitute a failing writer.
type bufWriter struct {
	w   io.Writer
	buf []byte
}

func newBufWriter(w io.Writer) *bufWriter {
	return &bufWriter{w: w, buf: make([]byte, 0, 64<<10)}
}

func (b *bufWriter) Write(p []byte) (int, error) {
	b.buf = append(b.buf, p...)
	return len(p), nil
}

func (b *bufWriter) Flush() error {
	if len(b.buf) == 0 {
		return nil
	}
	_, err := b.w.Write(b.buf)
	b.buf = b.buf[:0]
	return err
}

// New builds a Server for cfg. Call Serve to start accepting.
func New(cfg Config) (*Server, error) {
	if cfg.FS == nil && cfg.Replica == nil {
		return nil, errors.New("server: Config.FS is required")
	}
	cfg.fillDefaults()
	s := &Server{
		cfg:     cfg,
		work:    make(chan *job, cfg.QueueDepth),
		drainCh: make(chan struct{}),
		conns:   make(map[net.Conn]struct{}),
	}
	s.workerWG.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s, nil
}

// Serve accepts connections on ln until Shutdown closes it. It returns nil
// after a drain-initiated stop, or the accept error otherwise.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.draining.Load() {
				return nil
			}
			return err
		}
		s.m.connsAccepted.Add(1)
		s.mu.Lock()
		draining := s.draining.Load()
		over := len(s.conns) >= s.cfg.MaxConns || draining
		if !over {
			s.conns[conn] = struct{}{}
		}
		s.mu.Unlock()
		if over {
			s.m.connsRejected.Add(1)
			// Over-limit connections may retry; a draining server is going
			// away, so tell those clients not to.
			reason := error(wire.ErrOverload)
			if draining {
				reason = wire.ErrShutdown
			}
			s.refuse(conn, reason)
			continue
		}
		s.m.connsActive.Add(1)
		s.connWG.Add(1)
		go s.handleConn(conn)
	}
}

// refuse answers an over-limit connection with a KindErr frame and closes
// it without admitting it to the connection table.
func (s *Server) refuse(conn net.Conn, reason error) {
	conn.SetWriteDeadline(time.Now().Add(time.Second))
	wire.WriteFrame(conn, wire.KindErr, wire.AppendErrFrame(nil, reason))
	conn.Close()
}

// handleConn runs one connection: handshake, then the batch read loop.
func (s *Server) handleConn(conn net.Conn) {
	defer s.connWG.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.m.connsActive.Add(-1)
		conn.Close()
	}()

	cc := countingConn{inner: conn, m: &s.m}
	fr := wire.NewFrameReader(cc)
	sess := &session{srv: s, conn: conn, bufw: newBufWriter(cc)}

	// The handshake must arrive promptly; afterwards the connection may
	// idle indefinitely between batches.
	conn.SetReadDeadline(time.Now().Add(s.cfg.RequestTimeout))
	done, err := s.handshake(fr, sess)
	if err != nil {
		s.m.attachErrors.Add(1)
		s.cfg.Logf("server: attach from %s failed: %v", conn.RemoteAddr(), err)
		s.writeErrFrame(sess, err)
		return
	}
	if done {
		// The handshake consumed the whole connection (a replication join
		// that has since died, a redirect, an admin promote).
		return
	}
	conn.SetReadDeadline(time.Time{})
	s.m.sessions.Add(1)

	err = s.readLoop(fr, sess)
	// Let queued and executing batches flush their replies before the
	// deferred close; their responses are the last frames of the session.
	sess.inflight.Wait()
	if s.cfg.Replica != nil {
		// Keep the session resumable: the client may be failing over, not
		// leaving. An explicit OpDetach already tore it down via Apply.
		s.cfg.Replica.ReleaseSession(sess.sessID)
	} else {
		sess.client.Detach()
	}
	if err != nil && !errors.Is(err, io.EOF) && !s.draining.Load() {
		s.m.protoErrors.Add(1)
		s.cfg.Logf("server: conn %s: %v", conn.RemoteAddr(), err)
		s.writeErrFrame(sess, err)
	}
}

// handshake expects the opening frame: KindAttach from clients (attach to
// the volume, acknowledge with the file system name), KindJoin from a
// backup enlisting for replication, or KindPromote from an admin. done
// reports that the connection needs no batch loop.
func (s *Server) handshake(fr *wire.FrameReader, sess *session) (done bool, err error) {
	kind, payload, err := fr.Next()
	if err != nil {
		return false, fmt.Errorf("reading attach: %w", err)
	}
	s.m.framesRead.Add(1)
	switch kind {
	case wire.KindAttach:
	case wire.KindJoin:
		if s.cfg.Replica == nil {
			return false, fmt.Errorf("%w: join without replication", wire.ErrBadMessage)
		}
		sess.conn.SetReadDeadline(time.Time{})
		if err := s.cfg.Replica.HandleJoin(sess.conn, fr, payload); err != nil && !s.draining.Load() {
			s.cfg.Logf("server: replication link %s: %v", sess.conn.RemoteAddr(), err)
		}
		return true, nil
	case wire.KindPromote:
		if s.cfg.Replica == nil {
			return false, fmt.Errorf("%w: promote without replication", wire.ErrBadMessage)
		}
		epoch, err := s.cfg.Replica.Promote()
		if err != nil {
			return false, err
		}
		sess.wmu.Lock()
		defer sess.wmu.Unlock()
		var pl [8]byte
		binary.LittleEndian.PutUint64(pl[:], epoch)
		if err := wire.WriteFrame(sess.bufw, wire.KindPromoteOK, pl[:]); err != nil {
			return false, err
		}
		s.m.framesWritten.Add(1)
		return true, sess.bufw.Flush()
	default:
		return false, fmt.Errorf("%w: expected attach, got kind %d", wire.ErrBadMessage, kind)
	}
	cred, clientID, err := wire.ParseAttach(payload)
	if err != nil {
		return false, err
	}
	var client fsapi.Client
	var name string
	if s.cfg.Replica != nil {
		var sessID uint64
		var redirect string
		client, sessID, redirect, err = s.cfg.Replica.AttachClient(cred, clientID)
		if errors.Is(err, wire.ErrNotPrimary) {
			sess.wmu.Lock()
			defer sess.wmu.Unlock()
			rdr := wire.Redirect{Addr: redirect}
			if err := wire.WriteFrame(sess.bufw, wire.KindRedirect, wire.AppendRedirect(nil, &rdr)); err != nil {
				return false, err
			}
			s.m.framesWritten.Add(1)
			return true, sess.bufw.Flush()
		}
		if err != nil {
			return false, err
		}
		sess.sessID = sessID
		name = "replicated"
		if s.cfg.FS != nil {
			name = s.cfg.FS.Name()
		}
	} else {
		client, err = s.cfg.FS.Attach(cred)
		if err != nil {
			return false, err
		}
		name = s.cfg.FS.Name()
	}
	sess.client = client
	sess.wmu.Lock()
	defer sess.wmu.Unlock()
	if err := wire.WriteFrame(sess.bufw, wire.KindAttachOK, []byte(name)); err != nil {
		return false, err
	}
	s.m.framesWritten.Add(1)
	return false, sess.bufw.Flush()
}

// readLoop decodes batch frames and submits them to the worker pool until
// the connection errors, the client disconnects, or drain nudges the read.
func (s *Server) readLoop(fr *wire.FrameReader, sess *session) error {
	for {
		kind, payload, err := fr.Next()
		if err != nil {
			return err
		}
		s.m.framesRead.Add(1)
		if kind != wire.KindBatch {
			return fmt.Errorf("%w: expected batch, got kind %d", wire.ErrBadMessage, kind)
		}
		reqs, err := wire.DecodeBatch(payload)
		if err != nil {
			return err
		}
		if len(reqs) == 0 {
			continue
		}
		s.m.observeBatch(len(reqs))
		if err := s.submit(sess, reqs); err != nil {
			return err
		}
	}
}

// submit queues one batch, answering with CodeOverload (or CodeShutdown
// while draining) if no queue slot frees up within RequestTimeout.
func (s *Server) submit(sess *session, reqs []wire.Request) error {
	j := &job{sess: sess, reqs: reqs, enq: time.Now()}
	sess.inflight.Add(1)
	timer := time.NewTimer(s.cfg.RequestTimeout)
	defer timer.Stop()
	select {
	case s.work <- j:
		return nil
	case <-s.drainCh:
		sess.inflight.Done()
		return s.rejectBatch(sess, reqs, wire.ErrShutdown)
	case <-timer.C:
		sess.inflight.Done()
		return s.rejectBatch(sess, reqs, wire.ErrOverload)
	}
}

// rejectBatch replies to every request of an unadmitted batch with the
// rejection error.
func (s *Server) rejectBatch(sess *session, reqs []wire.Request, reason error) error {
	code := wire.CodeOf(reason)
	s.m.overloads.Add(uint64(len(reqs)))
	var payload []byte
	for i := range reqs {
		resp := wire.Response{ID: reqs[i].ID, Op: reqs[i].Op, Code: code}
		payload = wire.AppendResponse(payload, &resp)
	}
	return s.writeReply(sess, payload)
}

// worker executes queued batches until the work channel closes.
func (s *Server) worker() {
	defer s.workerWG.Done()
	for j := range s.work {
		s.runBatch(j)
	}
}

// replyBudget bounds one KindReply payload so the frame (kind byte plus
// payload) always fits MaxFrame. A batch whose responses exceed it — e.g.
// several coalesced MaxIO reads — is split across multiple reply frames;
// request IDs let the client match each partial reply.
const replyBudget = wire.MaxFrame - 1

// runBatch executes one batch's operations in order against the session's
// client and writes the reply frames, splitting whenever the accumulated
// responses would overflow one frame. With a Replica configured,
// state-changing operations detour through the replication log, and each
// reply frame waits for the quorum to cover the highest sequence it
// carries — acks pipeline across a batch instead of stalling per op.
func (s *Server) runBatch(j *job) {
	defer j.sess.inflight.Done()
	rep := s.cfg.Replica
	var pendingSeq uint64
	var payload, one []byte
	for i := range j.reqs {
		var resp wire.Response
		if rep != nil && j.reqs[i].Op.Replicated() {
			var seq uint64
			req := &j.reqs[i]
			resp, seq = rep.Apply(j.sess.sessID, req, func() wire.Response {
				return wire.Execute(j.sess.client, req)
			})
			if seq > pendingSeq {
				pendingSeq = seq
			}
		} else {
			resp = wire.Execute(j.sess.client, &j.reqs[i])
		}
		one = wire.AppendResponse(one[:0], &resp)
		if len(one) > replyBudget {
			// A single response no frame can carry (an enormous directory
			// listing): answer that request with an error instead of
			// tearing the connection down on an unwritable frame.
			code := wire.CodeOf(wire.ErrFrameTooLarge)
			resp = wire.Response{ID: j.reqs[i].ID, Op: j.reqs[i].Op,
				Code: code, Msg: wire.MsgFor(code, wire.ErrFrameTooLarge)}
			one = wire.AppendResponse(one[:0], &resp)
		}
		s.m.requestNs.observe(uint64(time.Since(j.enq)))
		s.m.requests.Add(1)
		if resp.Code != wire.CodeOK {
			s.m.requestErrors.Add(1)
		}
		if len(payload) > 0 && len(payload)+len(one) > replyBudget {
			if rep != nil && pendingSeq > 0 {
				rep.WaitQuorum(pendingSeq)
			}
			if err := s.writeReply(j.sess, payload); err != nil {
				s.cfg.Logf("server: reply to %s failed: %v", j.sess.conn.RemoteAddr(), err)
				j.sess.conn.Close() // unwedge the reader; the session is dead
				return
			}
			payload = payload[:0]
		}
		payload = append(payload, one...)
	}
	if rep != nil && pendingSeq > 0 {
		rep.WaitQuorum(pendingSeq)
	}
	if err := s.writeReply(j.sess, payload); err != nil {
		s.cfg.Logf("server: reply to %s failed: %v", j.sess.conn.RemoteAddr(), err)
		j.sess.conn.Close() // unwedge the reader; the session is dead
	}
}

// writeReply frames and flushes one KindReply payload under the session's
// write lock.
func (s *Server) writeReply(sess *session, payload []byte) error {
	sess.wmu.Lock()
	defer sess.wmu.Unlock()
	if err := wire.WriteFrame(sess.bufw, wire.KindReply, payload); err != nil {
		return err
	}
	s.m.framesWritten.Add(1)
	return sess.bufw.Flush()
}

// writeErrFrame best-effort reports a connection-level error to the peer.
func (s *Server) writeErrFrame(sess *session, err error) {
	sess.conn.SetWriteDeadline(time.Now().Add(time.Second))
	sess.wmu.Lock()
	defer sess.wmu.Unlock()
	if wire.WriteFrame(sess.bufw, wire.KindErr, wire.AppendErrFrame(nil, err)) == nil {
		s.m.framesWritten.Add(1)
		sess.bufw.Flush()
	}
}

// Draining reports whether Shutdown has begun (for health endpoints).
func (s *Server) Draining() bool { return s.draining.Load() }

// Abort terminates the server immediately — no drain, no flushed replies,
// connections cut mid-frame. It exists so crash tests can approximate a
// SIGKILLed daemon in-process; production shutdown is Shutdown.
func (s *Server) Abort() {
	s.shutdownOnce.Do(func() {
		s.draining.Store(true)
		close(s.drainCh)
		s.mu.Lock()
		if s.ln != nil {
			s.ln.Close()
		}
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		s.connWG.Wait()
		close(s.work)
		s.workerWG.Wait()
	})
}

// Shutdown gracefully drains the server: stop accepting, nudge idle
// readers, let in-flight batches reply, force-close stragglers after
// DrainTimeout, then stop the worker pool. Idempotent; later calls return
// once the first drain completes.
func (s *Server) Shutdown() {
	s.shutdownOnce.Do(s.shutdown)
}

func (s *Server) shutdown() {
	s.draining.Store(true)
	close(s.drainCh)
	s.mu.Lock()
	if s.ln != nil {
		s.ln.Close()
	}
	for c := range s.conns {
		// Knock blocked readers off their reads; their handlers then wait
		// for in-flight batches and exit.
		c.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.connWG.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(s.cfg.DrainTimeout):
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		<-done
	}
	// All connection handlers have returned, so nothing can submit; the
	// queue can close and the workers run it dry.
	close(s.work)
	s.workerWG.Wait()
}
