// Package server serves a mounted Simurgh volume over TCP using the wire
// protocol. One connection is one attached process: the handshake performs
// fsapi.FileSystem.Attach and the resulting fsapi.Client — which owns the
// connection's open-file table, exactly like a preloaded process in the
// paper — executes every operation the connection sends.
//
// Batches are the unit of scheduling: a KindBatch frame is decoded by the
// connection's reader goroutine and handed to a bounded worker pool; the
// worker executes the batch's operations sequentially in order (so a client
// may batch dependent calls like create→write→close) and writes the reply
// in one or more KindReply frames (several, when the responses — say many
// coalesced MaxIO reads — would overflow a single frame). Concurrency comes
// from connections and from pipelining:
// a client may send further batches before earlier replies arrive, and
// independent batches of one connection may execute on different workers.
//
// Read-only batches skip the pool entirely: a batch made solely of
// never-replicated reads (pread, stat, lstat, fstat, readlink, readdir)
// executes inline on the connection goroutine with connection-local scratch
// — no queue hop, no handoff, no allocation. This is safe because batch
// execution order across batches is already unguaranteed (independent
// batches run on different workers), and those ops touch no session state
// that replication would have to sequence.
//
// The steady-state request path is allocation-free: frames land in pooled
// buffers, requests decode aliasing the frame (wire.DecodeBatchInto),
// responses encode straight into a reused reply payload sized by
// wire.ResponseSize, and reply frames go out in one vectored write
// (wire.VecWriter). A batch that does queue transfers frame-buffer
// ownership into a pooled job, released only after its reply is written.
//
// Backpressure is explicit: when the worker queue stays full past
// Config.RequestTimeout the batch is answered with CodeOverload instead of
// stalling the connection forever, and connections beyond Config.MaxConns
// are refused with a KindErr frame at accept. Shutdown drains: the listener
// closes, idle readers are nudged off their blocking reads, in-flight
// batches finish and flush their replies, and only stragglers past
// Config.DrainTimeout are cut.
package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"simurgh/internal/fsapi"
	"simurgh/internal/obs"
	"simurgh/internal/wire"
)

// Replica is the replication layer's hook surface (implemented by
// internal/replica.Node). The server stays ignorant of roles, epochs, and
// quorums; it routes attaches and state-changing operations through the
// hook and hands replication-protocol connections over wholesale.
type Replica interface {
	// AttachClient routes a client attach: on the primary it returns the
	// session (resuming an existing one when clientID matches), on a
	// backup it fails with wire.ErrNotPrimary and a redirect address.
	AttachClient(cred fsapi.Cred, clientID uint64) (c fsapi.Client, sessID uint64, redirect string, err error)
	// Apply executes one replicated operation: exec runs under the log
	// lock, the entry ships to the backups, and the returned sequence is
	// what WaitQuorum gates on. Duplicate request IDs (a client replaying
	// after failover) are answered from the session's replay cache without
	// re-executing. trace (0 = untraced) is the distributed trace ID of the
	// batch; the replication layer tags the shipped entry's frame with it so
	// backup-side spans link into the same trace.
	Apply(sessID uint64, req *wire.Request, trace uint64, exec func() wire.Response) (wire.Response, uint64)
	// WaitQuorum blocks until the configured quorum of live backups has
	// acknowledged seq (immediately when no backup is connected).
	WaitQuorum(seq uint64)
	// ReleaseSession marks a session's connection gone without detaching
	// it, so a failed-over client can resume it.
	ReleaseSession(sessID uint64)
	// HandleJoin takes ownership of a backup's replication connection
	// (snapshot transfer, log shipping, heartbeats) and blocks until the
	// link dies.
	HandleJoin(conn net.Conn, fr *wire.FrameReader, payload []byte) error
	// Promote makes this node the primary (admin op), returning the new
	// epoch.
	Promote() (uint64, error)
}

// Sharding is the shard authority's hook surface (implemented by
// internal/shard.Authority). The server stays ignorant of maps, prefixes,
// and epochs: it serves the encoded map over the control kinds, verifies
// attach-time shard claims, and asks per operation whether this node still
// serves the operation's shard — answering CodeMoved (never executing, and
// never entering the replication log) when it does not.
type Sharding interface {
	// MapFor returns the encoded shard map, or nil when the caller's epoch
	// is already current (KindMapGet).
	MapFor(haveEpoch uint64) []byte
	// Install decodes and installs a pushed map, returning the encoded
	// installed map (KindMapSet). On a node losing shards it returns only
	// after the handoff drain, making the caller's reply the migration
	// barrier.
	Install(payload []byte) ([]byte, error)
	// CheckAttach verifies an attach-time shard claim: nil to accept, a
	// Moved naming the current owner to refuse.
	CheckAttach(claim wire.AttachClaim) *wire.Moved
	// MovedPath decides a path-carrying operation: nil to serve, a Moved
	// when the path's shard lives elsewhere.
	MovedPath(path string) *wire.Moved
	// MovedShard decides a descriptor operation by the session's attach
	// claim (claimed=false for plain unclaimed clients).
	MovedShard(shard uint32, claimed bool) *wire.Moved
}

// Config parameterizes a Server. The zero value of every field selects a
// sensible default.
type Config struct {
	// FS is the volume to serve. Required unless Replica is set (a backup
	// has no volume until its snapshot restores; the replication layer
	// supplies the clients).
	FS fsapi.FileSystem
	// Replica, when set, routes attaches and state-changing operations
	// through the replication layer.
	Replica Replica
	// Sharding, when set, scopes this node to the shards its authority
	// serves: stale-routed operations answer CodeMoved and the map control
	// kinds (MapGet/MapSet) are served.
	Sharding Sharding
	// MaxConns bounds concurrently open connections; further accepts are
	// refused with a KindErr frame. Default 256.
	MaxConns int
	// Workers is the batch-execution pool size. Default GOMAXPROCS.
	Workers int
	// QueueDepth bounds batches waiting for a worker across all
	// connections. Default 1024.
	QueueDepth int
	// RequestTimeout bounds how long a decoded batch may wait for a free
	// queue slot before it is refused with CodeOverload, and how long the
	// attach handshake may take. Default 5s.
	RequestTimeout time.Duration
	// DrainTimeout bounds Shutdown's wait for in-flight connections before
	// force-closing them. Default 5s.
	DrainTimeout time.Duration
	// Obs, when set, receives server-side spans (queue wait, execute,
	// quorum wait) for traced batches — frames of kind KindBatchTraced.
	// Untraced batches never touch it. Optional; nil records nothing.
	Obs *obs.Registry
	// Logf receives connection-level diagnostics. Default: discard.
	Logf func(format string, args ...any)
}

func (c *Config) fillDefaults() {
	if c.MaxConns <= 0 {
		c.MaxConns = 256
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 5 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 5 * time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
}

// Server accepts wire-protocol connections and executes their batches
// against one fsapi.FileSystem.
type Server struct {
	cfg      Config
	m        metrics
	work     chan *job
	draining atomic.Bool
	drainCh  chan struct{} // closed when Shutdown starts

	mu    sync.Mutex
	ln    net.Listener
	conns map[net.Conn]struct{}

	connWG       sync.WaitGroup
	workerWG     sync.WaitGroup
	shutdownOnce sync.Once
}

// job is one decoded batch queued for execution. It owns the frame buffer
// its requests alias (taken from the FrameReader with Detach); putJob
// returns both the job and the buffer to their pools once the reply is
// written.
type job struct {
	sess  *session
	reqs  []wire.Request
	owner *wire.Buf
	enq   time.Time
	trace uint64 // distributed trace ID of the batch; 0 = untraced
}

var jobPool = sync.Pool{New: func() any { return new(job) }}

func getJob() *job { return jobPool.Get().(*job) }

func putJob(j *job) {
	wire.PutBuf(j.owner)
	j.owner = nil
	j.sess = nil
	j.trace = 0
	clear(j.reqs) // drop aliases into the released buffer
	j.reqs = j.reqs[:0]
	jobPool.Put(j)
}

// replyBudget bounds one KindReply payload so the frame (kind byte plus
// payload) always fits MaxFrame. A batch whose responses exceed it — e.g.
// several coalesced MaxIO reads — is split across multiple reply frames;
// request IDs let the client match each partial reply.
const replyBudget = wire.MaxFrame - 1

// maxStagedReply bounds the reply bytes a batch may accumulate before a
// vectored flush, so a huge read batch (up to MaxBatch coalesced MaxIO
// preads) never holds its entire reply in memory at once.
const maxStagedReply = 2 * wire.MaxFrame

// replyScratch is the reusable buffer set each reply-producing goroutine (a
// worker, or a connection's fast path) threads through batch execution:
// responses encode into payload, whole frames are staged as views into it,
// and reads land in rbuf via wire.ExecuteInto.
type replyScratch struct {
	payload    []byte
	frameStart int // start of the currently open frame within payload
	vw         wire.VecWriter
	rbuf       []byte
}

// shrink drops an outsized payload after a batch so a single giant reply
// doesn't pin memory in a long-lived worker.
func (rs *replyScratch) shrink() {
	if cap(rs.payload) > maxStagedReply {
		rs.payload = nil
	}
}

// connState is the per-connection scratch the read loop reuses: the decoded
// request slice (aliasing the current frame buffer) and the fast path's
// reply scratch.
type connState struct {
	reqs []wire.Request
	rs   replyScratch
}

// fastOps marks the operations a batch may contain and still execute
// inline on the connection goroutine: reads that never replicate and touch
// no per-session mutable state (no FD table changes, no offset movement).
var fastOps = [wire.NumOps]bool{
	wire.OpPread: true, wire.OpStat: true, wire.OpLstat: true,
	wire.OpFstat: true, wire.OpReadlink: true, wire.OpReadDir: true,
}

// fastBatch reports whether every request qualifies for the inline path.
func fastBatch(reqs []wire.Request) bool {
	for i := range reqs {
		if !fastOps[reqs[i].Op] {
			return false
		}
	}
	return true
}

// session is the server half of one attached connection.
type session struct {
	srv    *Server
	conn   net.Conn
	client fsapi.Client
	sessID uint64 // replication session identity (0 without a Replica)

	// claimShard is the shard this session claimed at attach time; claimed
	// distinguishes a real claim from a plain (router-less) client, whose
	// descriptor operations are only fenced when the node serves nothing.
	claimShard uint32
	claimed    bool

	wmu  sync.Mutex
	bufw *bufWriter

	inflight sync.WaitGroup // batches queued or executing
}

// bufWriter is the minimal buffered-writer surface session needs; split out
// so tests can substitute a failing writer.
type bufWriter struct {
	w   io.Writer
	buf []byte
}

func newBufWriter(w io.Writer) *bufWriter {
	return &bufWriter{w: w, buf: make([]byte, 0, 64<<10)}
}

func (b *bufWriter) Write(p []byte) (int, error) {
	b.buf = append(b.buf, p...)
	return len(p), nil
}

func (b *bufWriter) Flush() error {
	if len(b.buf) == 0 {
		return nil
	}
	_, err := b.w.Write(b.buf)
	b.buf = b.buf[:0]
	return err
}

// New builds a Server for cfg. Call Serve to start accepting.
func New(cfg Config) (*Server, error) {
	if cfg.FS == nil && cfg.Replica == nil {
		return nil, errors.New("server: Config.FS is required")
	}
	cfg.fillDefaults()
	s := &Server{
		cfg:     cfg,
		work:    make(chan *job, cfg.QueueDepth),
		drainCh: make(chan struct{}),
		conns:   make(map[net.Conn]struct{}),
	}
	s.workerWG.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s, nil
}

// Serve accepts connections on ln until Shutdown closes it. It returns nil
// after a drain-initiated stop, or the accept error otherwise.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.draining.Load() {
				return nil
			}
			return err
		}
		s.m.connsAccepted.Add(1)
		s.mu.Lock()
		draining := s.draining.Load()
		over := len(s.conns) >= s.cfg.MaxConns || draining
		if !over {
			s.conns[conn] = struct{}{}
		}
		s.mu.Unlock()
		if over {
			s.m.connsRejected.Add(1)
			// Over-limit connections may retry; a draining server is going
			// away, so tell those clients not to.
			reason := error(wire.ErrOverload)
			if draining {
				reason = wire.ErrShutdown
			}
			s.refuse(conn, reason)
			continue
		}
		s.m.connsActive.Add(1)
		s.connWG.Add(1)
		go s.handleConn(conn)
	}
}

// refuse answers an over-limit connection with a KindErr frame and closes
// it without admitting it to the connection table.
func (s *Server) refuse(conn net.Conn, reason error) {
	conn.SetWriteDeadline(time.Now().Add(time.Second))
	wire.WriteFrame(conn, wire.KindErr, wire.AppendErrFrame(nil, reason))
	conn.Close()
}

// handleConn runs one connection: handshake, then the batch read loop.
func (s *Server) handleConn(conn net.Conn) {
	defer s.connWG.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.m.connsActive.Add(-1)
		conn.Close()
	}()

	cc := countingConn{inner: conn, m: &s.m}
	fr := wire.NewFrameReader(cc)
	defer fr.Release()
	sess := &session{srv: s, conn: conn, bufw: newBufWriter(cc)}

	// The handshake must arrive promptly; afterwards the connection may
	// idle indefinitely between batches.
	conn.SetReadDeadline(time.Now().Add(s.cfg.RequestTimeout))
	done, err := s.handshake(fr, sess)
	if err != nil {
		s.m.attachErrors.Add(1)
		s.cfg.Logf("server: attach from %s failed: %v", conn.RemoteAddr(), err)
		s.writeErrFrame(sess, err)
		return
	}
	if done {
		// The handshake consumed the whole connection (a replication join
		// that has since died, a redirect, an admin promote).
		return
	}
	conn.SetReadDeadline(time.Time{})
	s.m.sessions.Add(1)

	err = s.readLoop(fr, sess)
	// Let queued and executing batches flush their replies before the
	// deferred close; their responses are the last frames of the session.
	sess.inflight.Wait()
	if s.cfg.Replica != nil {
		// Keep the session resumable: the client may be failing over, not
		// leaving. An explicit OpDetach already tore it down via Apply.
		s.cfg.Replica.ReleaseSession(sess.sessID)
	} else {
		sess.client.Detach()
	}
	if err != nil && !errors.Is(err, io.EOF) && !s.draining.Load() {
		s.m.protoErrors.Add(1)
		s.cfg.Logf("server: conn %s: %v", conn.RemoteAddr(), err)
		s.writeErrFrame(sess, err)
	}
}

// handshake expects the opening frame: KindAttach from clients (attach to
// the volume, acknowledge with the file system name), KindJoin from a
// backup enlisting for replication, or KindPromote from an admin. done
// reports that the connection needs no batch loop.
func (s *Server) handshake(fr *wire.FrameReader, sess *session) (done bool, err error) {
	kind, payload, err := fr.Next()
	if err != nil {
		return false, fmt.Errorf("reading attach: %w", err)
	}
	s.m.framesRead.Add(1)
	switch kind {
	case wire.KindAttach:
	case wire.KindJoin:
		if s.cfg.Replica == nil {
			return false, fmt.Errorf("%w: join without replication", wire.ErrBadMessage)
		}
		sess.conn.SetReadDeadline(time.Time{})
		if err := s.cfg.Replica.HandleJoin(sess.conn, fr, payload); err != nil && !s.draining.Load() {
			s.cfg.Logf("server: replication link %s: %v", sess.conn.RemoteAddr(), err)
		}
		return true, nil
	case wire.KindPromote:
		if s.cfg.Replica == nil {
			return false, fmt.Errorf("%w: promote without replication", wire.ErrBadMessage)
		}
		epoch, err := s.cfg.Replica.Promote()
		if err != nil {
			return false, err
		}
		sess.wmu.Lock()
		defer sess.wmu.Unlock()
		var pl [8]byte
		binary.LittleEndian.PutUint64(pl[:], epoch)
		if err := wire.WriteFrame(sess.bufw, wire.KindPromoteOK, pl[:]); err != nil {
			return false, err
		}
		s.m.framesWritten.Add(1)
		return true, sess.bufw.Flush()
	case wire.KindMapGet:
		if s.cfg.Sharding == nil {
			return false, fmt.Errorf("%w: map get without sharding", wire.ErrBadMessage)
		}
		have, err := wire.ParseMapGet(payload)
		if err != nil {
			return false, err
		}
		return true, s.writeFrame(sess, wire.KindMapOK, s.cfg.Sharding.MapFor(have))
	case wire.KindMapSet:
		if s.cfg.Sharding == nil {
			return false, fmt.Errorf("%w: map set without sharding", wire.ErrBadMessage)
		}
		// An install that retires shards blocks on the handoff drain; its
		// reply is the migration coordinator's barrier, so no read deadline
		// may cut it short.
		sess.conn.SetReadDeadline(time.Time{})
		installed, err := s.cfg.Sharding.Install(payload)
		if err != nil {
			return false, err
		}
		return true, s.writeFrame(sess, wire.KindMapOK, installed)
	default:
		return false, fmt.Errorf("%w: expected attach, got kind %d", wire.ErrBadMessage, kind)
	}
	cred, clientID, claim, claimed, err := wire.ParseAttachClaim(payload)
	if err != nil {
		return false, err
	}
	if claimed && s.cfg.Sharding != nil {
		if mv := s.cfg.Sharding.CheckAttach(claim); mv != nil {
			// The claimed shard lives elsewhere: answer Moved instead of
			// attaching, so a stale-mapped router refetches before it ever
			// holds a session here.
			return true, s.writeFrame(sess, wire.KindMoved, wire.AppendMoved(nil, mv))
		}
		sess.claimShard, sess.claimed = claim.Shard, true
	}
	var client fsapi.Client
	var name string
	if s.cfg.Replica != nil {
		var sessID uint64
		var redirect string
		client, sessID, redirect, err = s.cfg.Replica.AttachClient(cred, clientID)
		if errors.Is(err, wire.ErrNotPrimary) {
			sess.wmu.Lock()
			defer sess.wmu.Unlock()
			rdr := wire.Redirect{Addr: redirect}
			if err := wire.WriteFrame(sess.bufw, wire.KindRedirect, wire.AppendRedirect(nil, &rdr)); err != nil {
				return false, err
			}
			s.m.framesWritten.Add(1)
			return true, sess.bufw.Flush()
		}
		if err != nil {
			return false, err
		}
		sess.sessID = sessID
		name = "replicated"
		if s.cfg.FS != nil {
			name = s.cfg.FS.Name()
		}
	} else {
		client, err = s.cfg.FS.Attach(cred)
		if err != nil {
			return false, err
		}
		name = s.cfg.FS.Name()
	}
	sess.client = client
	sess.wmu.Lock()
	defer sess.wmu.Unlock()
	if err := wire.WriteFrame(sess.bufw, wire.KindAttachOK, []byte(name)); err != nil {
		return false, err
	}
	s.m.framesWritten.Add(1)
	return false, sess.bufw.Flush()
}

// readLoop decodes batch frames and dispatches them until the connection
// errors, the client disconnects, or drain nudges the read. Read-only
// batches run inline right here; everything else transfers the frame buffer
// into a pooled job and queues for a worker.
func (s *Server) readLoop(fr *wire.FrameReader, sess *session) error {
	var cs connState
	for {
		kind, payload, err := fr.Next()
		if err != nil {
			return err
		}
		s.m.framesRead.Add(1)
		var trace uint64
		switch kind {
		case wire.KindBatch:
		case wire.KindBatchTraced:
			trace, payload, err = wire.SplitTraceCtx(payload)
			if err != nil {
				return err
			}
		default:
			return fmt.Errorf("%w: expected batch, got kind %d", wire.ErrBadMessage, kind)
		}
		cs.reqs, err = wire.DecodeBatchInto(cs.reqs[:0], payload)
		if err != nil {
			return err
		}
		if len(cs.reqs) == 0 {
			continue
		}
		s.m.observeBatch(len(cs.reqs))
		if fastBatch(cs.reqs) {
			s.m.fastBatches.Add(1)
			s.execBatch(sess, cs.reqs, &cs.rs, time.Now(), trace, true)
			cs.rs.shrink()
			continue
		}
		if err := s.submit(sess, fr, cs.reqs, trace); err != nil {
			return err
		}
	}
}

// submit hands one batch to the worker pool, answering with CodeOverload
// (or CodeShutdown while draining) if no queue slot frees up within
// RequestTimeout. The frame buffer's ownership moves into the job; the
// requests in reqs alias it, so they are shallow-copied and stay valid.
func (s *Server) submit(sess *session, fr *wire.FrameReader, reqs []wire.Request, trace uint64) error {
	j := getJob()
	j.sess = sess
	j.enq = time.Now()
	j.trace = trace
	j.reqs = append(j.reqs[:0], reqs...)
	j.owner = fr.Detach()
	sess.inflight.Add(1)
	select {
	case s.work <- j:
		return nil
	default:
		// Queue full: fall through to the timed wait. Only this slow path
		// pays for a timer.
	}
	timer := time.NewTimer(s.cfg.RequestTimeout)
	defer timer.Stop()
	select {
	case s.work <- j:
		return nil
	case <-s.drainCh:
		return s.rejectJob(j, wire.ErrShutdown)
	case <-timer.C:
		return s.rejectJob(j, wire.ErrOverload)
	}
}

// rejectJob answers an unadmitted job's batch with the rejection error and
// releases the job.
func (s *Server) rejectJob(j *job, reason error) error {
	j.sess.inflight.Done()
	err := s.rejectBatch(j.sess, j.reqs, reason)
	putJob(j)
	return err
}

// rejectBatch replies to every request of an unadmitted batch with the
// rejection error.
func (s *Server) rejectBatch(sess *session, reqs []wire.Request, reason error) error {
	code := wire.CodeOf(reason)
	s.m.overloads.Add(uint64(len(reqs)))
	var payload []byte
	for i := range reqs {
		resp := wire.Response{ID: reqs[i].ID, Op: reqs[i].Op, Code: code}
		payload = wire.AppendResponse(payload, &resp)
	}
	return s.writeReply(sess, payload)
}

// worker executes queued batches until the work channel closes, reusing one
// replyScratch across every batch it runs.
func (s *Server) worker() {
	defer s.workerWG.Done()
	var rs replyScratch
	for j := range s.work {
		s.execBatch(j.sess, j.reqs, &rs, j.enq, j.trace, false)
		j.sess.inflight.Done()
		putJob(j)
		rs.shrink()
	}
}

// execBatch executes one batch's operations in order against the session's
// client and writes the reply frames, splitting whenever the accumulated
// responses would overflow one frame. Responses encode directly into the
// scratch payload (sized by wire.ResponseSize — no staging copy) and closed
// frames flush in one vectored write. With a Replica configured,
// state-changing operations detour through the replication log, and each
// flush waits for the quorum to cover the highest sequence it carries —
// acks pipeline across a batch instead of stalling per op. Replicated ops
// keep allocation semantics (wire.Execute) because the replica's dedup
// cache retains their responses; everything else reads into scratch.
func (s *Server) execBatch(sess *session, reqs []wire.Request, rs *replyScratch, enq time.Time, trace uint64, fast bool) {
	rep := s.cfg.Replica
	var pendingSeq uint64
	var execStart time.Time
	if trace != 0 {
		// The batch arrived in a traced frame: time the execute window and
		// attribute the queue wait (worker path only — the fast path never
		// queued). The untraced path takes none of these clock reads.
		execStart = time.Now()
		if !fast {
			s.cfg.Obs.SpanCtx(obs.SpanSrvQueue, batchOp(reqs), trace, enq, uint64(execStart.Sub(enq)), false)
		}
	}
	rs.payload = rs.payload[:0]
	rs.frameStart = 0
	if rs.rbuf == nil {
		// ExecuteInto treats nil scratch as "allocate fresh per read"
		// (Execute semantics); hand it a non-nil empty one so it grows a
		// reusable buffer instead.
		rs.rbuf = make([]byte, 0)
	}
	shd := s.cfg.Sharding
	for i := range reqs {
		req := &reqs[i]
		var resp wire.Response
		var mv *wire.Moved
		if shd != nil {
			mv = s.shardMoved(sess, req)
		}
		switch {
		case mv != nil:
			resp = movedResponse(sess, req, mv)
		case rep != nil && req.Op.Replicated():
			var seq uint64
			resp, seq = rep.Apply(sess.sessID, req, trace, func() wire.Response {
				// Re-check under the replication op gate: a migration's
				// authority swap between the loop's check and this exec must
				// still fence the op. A Moved response never enters the log
				// (only CodeOK ships), so the client retries it on the new
				// owner with nothing half-applied here.
				if shd != nil {
					if mv := s.shardMoved(sess, req); mv != nil {
						return movedResponse(sess, req, mv)
					}
				}
				return wire.Execute(sess.client, req)
			})
			if seq > pendingSeq {
				pendingSeq = seq
			}
		default:
			resp, rs.rbuf = wire.ExecuteInto(sess.client, req, rs.rbuf)
		}
		need := wire.ResponseSize(&resp)
		if need > replyBudget {
			// A single response no frame can carry (an enormous directory
			// listing): answer that request with an error instead of
			// tearing the connection down on an unwritable frame.
			code := wire.CodeOf(wire.ErrFrameTooLarge)
			resp = wire.Response{ID: req.ID, Op: req.Op,
				Code: code, Msg: wire.MsgFor(code, wire.ErrFrameTooLarge)}
			need = wire.ResponseSize(&resp)
		}
		s.m.requestNs.observe(uint64(time.Since(enq)))
		s.m.requests.Add(1)
		if resp.Code != wire.CodeOK {
			s.m.requestErrors.Add(1)
		}
		if open := len(rs.payload) - rs.frameStart; open > 0 && open+need > replyBudget {
			// Close the open frame. The staged view stays valid even if
			// payload's array is later reallocated by append: the old array's
			// bytes are complete and never mutated.
			rs.vw.Stage(wire.KindReply, rs.payload[rs.frameStart:len(rs.payload):len(rs.payload)])
			rs.frameStart = len(rs.payload)
			if rs.vw.StagedBytes() >= maxStagedReply {
				if rep != nil && pendingSeq > 0 {
					s.waitQuorum(rep, pendingSeq, trace, batchOp(reqs))
					pendingSeq = 0
				}
				if err := s.flushReplies(sess, rs); err != nil {
					s.cfg.Logf("server: reply to %s failed: %v", sess.conn.RemoteAddr(), err)
					sess.conn.Close() // unwedge the reader; the session is dead
					return
				}
			}
		}
		rs.payload = wire.AppendResponse(rs.payload, &resp)
	}
	rs.vw.Stage(wire.KindReply, rs.payload[rs.frameStart:])
	rs.frameStart = len(rs.payload)
	if rep != nil && pendingSeq > 0 {
		s.waitQuorum(rep, pendingSeq, trace, batchOp(reqs))
	}
	if err := s.flushReplies(sess, rs); err != nil {
		s.cfg.Logf("server: reply to %s failed: %v", sess.conn.RemoteAddr(), err)
		sess.conn.Close() // unwedge the reader; the session is dead
		return
	}
	if trace != 0 {
		kind := obs.SpanSrvExec
		if fast {
			kind = obs.SpanSrvExecFast
		}
		s.cfg.Obs.SpanCtx(kind, batchOp(reqs), trace, execStart, uint64(time.Since(execStart)), false)
	}
}

// batchOp maps a batch to the obs operation class of its first request, for
// span display (wire ops are obs ops shifted by the invalid sentinel).
func batchOp(reqs []wire.Request) obs.Op {
	if len(reqs) == 0 {
		return 0
	}
	return obs.Op(reqs[0].Op - 1)
}

// waitQuorum blocks until the replica layer has quorum coverage for seq,
// attributing the stall to the quorum-wait histogram. With pipelined
// shipping this is the only point where replication latency is visible to a
// client: execution never waits, only the reply flush does.
func (s *Server) waitQuorum(rep Replica, seq uint64, trace uint64, op obs.Op) {
	start := time.Now()
	rep.WaitQuorum(seq)
	wait := uint64(time.Since(start))
	s.m.quorumWaitNs.observe(wait)
	if trace != 0 {
		s.cfg.Obs.SpanCtx(obs.SpanSrvQuorum, op, trace, start, wait, false)
	}
}

// flushReplies writes every staged reply frame in one vectored write under
// the session's write lock and resets the scratch. Bytes are attributed to
// the wire metrics directly (the vectored path bypasses countingConn so the
// kernel sees a single writev).
func (s *Server) flushReplies(sess *session, rs *replyScratch) error {
	nf := rs.vw.Count()
	sess.wmu.Lock()
	n, err := rs.vw.Flush(sess.conn)
	sess.wmu.Unlock()
	if n > 0 {
		s.m.bytesWritten.Add(uint64(n))
	}
	s.m.framesWritten.Add(uint64(nf))
	rs.payload = rs.payload[:0]
	rs.frameStart = 0
	return err
}

// shardMoved decides whether req may execute on this node, returning the
// Moved destination when its shard has been handed off. Path-carrying
// operations route by path; descriptor operations by the session's
// attach-time shard claim. Detach is exempt: a departing client may always
// clean its session up wherever it is.
func (s *Server) shardMoved(sess *session, req *wire.Request) *wire.Moved {
	switch req.Op {
	case wire.OpDetach:
		return nil
	case wire.OpSymlink:
		// Path carries the link's uninterpreted target string; the link's
		// own name (Path2) is what places the operation on a shard.
		return s.cfg.Sharding.MovedPath(req.Path2)
	case wire.OpRename, wire.OpLink:
		// Two-path operations are local only when both names are: a stale
		// router whose map splits the pair must be bounced, not half-served.
		if mv := s.cfg.Sharding.MovedPath(req.Path); mv != nil {
			return mv
		}
		return s.cfg.Sharding.MovedPath(req.Path2)
	}
	if req.Path != "" {
		return s.cfg.Sharding.MovedPath(req.Path)
	}
	return s.cfg.Sharding.MovedShard(sess.claimShard, sess.claimed)
}

// movedResponse answers one fenced request with CodeMoved. The message
// names the shard's current owner for humans; routers ignore it and
// refetch the map.
func movedResponse(sess *session, req *wire.Request, mv *wire.Moved) wire.Response {
	sess.srv.m.shardMoved.Add(1)
	msg := fmt.Sprintf("wire: shard moved (epoch %d)", mv.Epoch)
	if mv.Addr != "" {
		msg = fmt.Sprintf("wire: shard moved to %s (epoch %d)", mv.Addr, mv.Epoch)
	}
	return wire.Response{ID: req.ID, Op: req.Op, Code: wire.CodeMoved, Msg: msg}
}

// writeFrame frames and flushes one handshake/control reply under the
// session's write lock.
func (s *Server) writeFrame(sess *session, kind wire.Kind, payload []byte) error {
	sess.wmu.Lock()
	defer sess.wmu.Unlock()
	if err := wire.WriteFrame(sess.bufw, kind, payload); err != nil {
		return err
	}
	s.m.framesWritten.Add(1)
	return sess.bufw.Flush()
}

// writeReply frames and flushes one KindReply payload under the session's
// write lock.
func (s *Server) writeReply(sess *session, payload []byte) error {
	sess.wmu.Lock()
	defer sess.wmu.Unlock()
	if err := wire.WriteFrame(sess.bufw, wire.KindReply, payload); err != nil {
		return err
	}
	s.m.framesWritten.Add(1)
	return sess.bufw.Flush()
}

// writeErrFrame best-effort reports a connection-level error to the peer.
func (s *Server) writeErrFrame(sess *session, err error) {
	sess.conn.SetWriteDeadline(time.Now().Add(time.Second))
	sess.wmu.Lock()
	defer sess.wmu.Unlock()
	if wire.WriteFrame(sess.bufw, wire.KindErr, wire.AppendErrFrame(nil, err)) == nil {
		s.m.framesWritten.Add(1)
		sess.bufw.Flush()
	}
}

// Draining reports whether Shutdown has begun (for health endpoints).
func (s *Server) Draining() bool { return s.draining.Load() }

// Abort terminates the server immediately — no drain, no flushed replies,
// connections cut mid-frame. It exists so crash tests can approximate a
// SIGKILLed daemon in-process; production shutdown is Shutdown.
func (s *Server) Abort() {
	s.shutdownOnce.Do(func() {
		s.draining.Store(true)
		close(s.drainCh)
		s.mu.Lock()
		if s.ln != nil {
			s.ln.Close()
		}
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		s.connWG.Wait()
		close(s.work)
		s.workerWG.Wait()
	})
}

// Shutdown gracefully drains the server: stop accepting, nudge idle
// readers, let in-flight batches reply, force-close stragglers after
// DrainTimeout, then stop the worker pool. Idempotent; later calls return
// once the first drain completes.
func (s *Server) Shutdown() {
	s.shutdownOnce.Do(s.shutdown)
}

func (s *Server) shutdown() {
	s.draining.Store(true)
	close(s.drainCh)
	s.mu.Lock()
	if s.ln != nil {
		s.ln.Close()
	}
	for c := range s.conns {
		// Knock blocked readers off their reads; their handlers then wait
		// for in-flight batches and exit.
		c.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.connWG.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(s.cfg.DrainTimeout):
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		<-done
	}
	// All connection handlers have returned, so nothing can submit; the
	// queue can close and the workers run it dry.
	close(s.work)
	s.workerWG.Wait()
}
