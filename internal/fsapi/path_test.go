package fsapi

import (
	"errors"
	"strings"
	"testing"
)

// sameComps compares component slices treating nil and empty as equal
// (SplitPath may return either for root-resolving paths).
func sameComps(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSplitPathEdgeCases(t *testing.T) {
	long := strings.Repeat("x", MaxNameLen)
	tooLong := long + "x"
	cases := []struct {
		in   string
		want []string
		err  error
	}{
		{"", nil, nil},
		{"/", nil, nil},
		{"//", nil, nil},
		{"///", nil, nil},
		{".", nil, nil},
		{"/.", nil, nil},
		{"/./", nil, nil},
		{"/./.", nil, nil},
		{"..", nil, nil},
		{"/..", nil, nil},
		{"/../..", nil, nil},
		{"/../a", []string{"a"}, nil},
		{"a", []string{"a"}, nil},
		{"/a", []string{"a"}, nil},
		{"a/", []string{"a"}, nil},
		{"/a/", []string{"a"}, nil},
		{"/a//b", []string{"a", "b"}, nil},
		{"//a///b//", []string{"a", "b"}, nil},
		{"/a/b/c", []string{"a", "b", "c"}, nil},
		{"/a/./b", []string{"a", "b"}, nil},
		{"/a/../b", []string{"b"}, nil},
		{"/a/b/../../c", []string{"c"}, nil},
		{"/a/b/../..", nil, nil},
		{"/a/../../b", []string{"b"}, nil}, // ".." never escapes the root
		{"/..a", []string{"..a"}, nil},     // only exactly ".." is special
		{"/a..", []string{"a.."}, nil},
		{"/.hidden", []string{".hidden"}, nil},
		{"/" + long, []string{long}, nil},
		{"/" + tooLong, nil, ErrNameTooLong},
		{"/ok/" + tooLong + "/after", nil, ErrNameTooLong},
	}
	for _, tc := range cases {
		got, err := SplitPath(tc.in)
		if !errors.Is(err, tc.err) {
			t.Errorf("SplitPath(%q) err = %v, want %v", tc.in, err, tc.err)
			continue
		}
		if tc.err == nil && !sameComps(got, tc.want) {
			t.Errorf("SplitPath(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestBaseDirEdgeCases(t *testing.T) {
	cases := []struct {
		in       string
		wantDir  []string
		wantName string
		err      error
	}{
		{"/a", nil, "a", nil},
		{"/a/b", []string{"a"}, "b", nil},
		{"/a/b/c", []string{"a", "b"}, "c", nil},
		{"//a//b//", []string{"a"}, "b", nil},
		{"/a/./b", []string{"a"}, "b", nil},
		{"/a/../b", nil, "b", nil},
		// Paths that resolve to the root have no final name to split off.
		{"/", nil, "", ErrInval},
		{"", nil, "", ErrInval},
		{"/a/..", nil, "", ErrInval},
		{"/.", nil, "", ErrInval},
		{"/" + strings.Repeat("x", MaxNameLen+1), nil, "", ErrNameTooLong},
	}
	for _, tc := range cases {
		dir, name, err := BaseDir(tc.in)
		if !errors.Is(err, tc.err) {
			t.Errorf("BaseDir(%q) err = %v, want %v", tc.in, err, tc.err)
			continue
		}
		if tc.err != nil {
			continue
		}
		if !sameComps(dir, tc.wantDir) || name != tc.wantName {
			t.Errorf("BaseDir(%q) = (%v, %q), want (%v, %q)",
				tc.in, dir, name, tc.wantDir, tc.wantName)
		}
	}
}

func TestJoinPath(t *testing.T) {
	cases := []struct {
		in   []string
		want string
	}{
		{nil, "/"},
		{[]string{}, "/"},
		{[]string{"a"}, "/a"},
		{[]string{"a", "b"}, "/a/b"},
		{[]string{"a", "b", "c"}, "/a/b/c"},
		{[]string{".hidden", "..a"}, "/.hidden/..a"},
	}
	for _, tc := range cases {
		if got := JoinPath(tc.in); got != tc.want {
			t.Errorf("JoinPath(%v) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

// TestSplitJoinRoundTrip checks JoinPath∘SplitPath is the identity on
// canonical paths and canonicalizes everything else to a fixed point.
func TestSplitJoinRoundTrip(t *testing.T) {
	for _, p := range []string{
		"/", "/a", "/a/b/c", "//a//./b/../c", "/..", "/a/../../b",
	} {
		comps, err := SplitPath(p)
		if err != nil {
			t.Fatalf("SplitPath(%q): %v", p, err)
		}
		canon := JoinPath(comps)
		again, err := SplitPath(canon)
		if err != nil {
			t.Fatalf("SplitPath(%q): %v", canon, err)
		}
		if !sameComps(comps, again) {
			t.Errorf("round trip %q: %v -> %q -> %v", p, comps, canon, again)
		}
	}
}
