package fsapi

import (
	"strings"
	"testing"
)

// FuzzSplitPath checks the path canonicalizer never panics, never returns
// empty/dot components, and is idempotent through JoinPath.
func FuzzSplitPath(f *testing.F) {
	for _, seed := range []string{
		"/", "", "/a/b/c", "a//b", "/../..", "/a/./b/../c", "////",
		"/name.with.dots/..hidden", strings.Repeat("/x", 100),
		"/" + strings.Repeat("y", MaxNameLen), "/\x00/weird",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, path string) {
		comps, err := SplitPath(path)
		if err != nil {
			return // only ErrNameTooLong is allowed
		}
		for _, c := range comps {
			if c == "" || c == "." || c == ".." {
				t.Fatalf("SplitPath(%q) returned component %q", path, c)
			}
			if len(c) > MaxNameLen {
				t.Fatalf("SplitPath(%q) returned overlong component", path)
			}
			if strings.ContainsRune(c, '/') {
				t.Fatalf("SplitPath(%q) returned component with slash", path)
			}
		}
		// Round trip: joining and re-splitting is a fixed point.
		again, err := SplitPath(JoinPath(comps))
		if err != nil {
			t.Fatalf("re-split of %q failed: %v", JoinPath(comps), err)
		}
		if len(again) != len(comps) {
			t.Fatalf("round trip changed length: %v vs %v", comps, again)
		}
		for i := range comps {
			if comps[i] != again[i] {
				t.Fatalf("round trip changed component %d: %v vs %v", i, comps, again)
			}
		}
	})
}
