// Package fsapi defines the POSIX-like interface shared by Simurgh and the
// baseline file systems, so benchmarks and applications are written once and
// run against every implementation.
//
// The attachment model mirrors the paper: a FileSystem is the mounted
// volume; Attach corresponds to a process preloading the library (its
// effective uid/gid are fixed at that point and stored in the protected
// pages), and the returned Client carries that process's open-file table.
package fsapi

import (
	"errors"
	"fmt"

	"simurgh/internal/obs"
)

// Cred is the effective identity of an attached process.
type Cred struct {
	UID uint32
	GID uint32
}

// Root is the superuser credential (bypasses permission checks).
var Root = Cred{UID: 0, GID: 0}

// Mode bits (a subset of POSIX).
const (
	ModeTypeMask uint32 = 0o170000
	ModeRegular  uint32 = 0o100000
	ModeDir      uint32 = 0o040000
	ModeSymlink  uint32 = 0o120000
	ModePermMask uint32 = 0o777
)

// IsDir reports whether mode describes a directory.
func IsDir(mode uint32) bool { return mode&ModeTypeMask == ModeDir }

// IsSymlink reports whether mode describes a symbolic link.
func IsSymlink(mode uint32) bool { return mode&ModeTypeMask == ModeSymlink }

// IsRegular reports whether mode describes a regular file.
func IsRegular(mode uint32) bool { return mode&ModeTypeMask == ModeRegular }

// Open flags.
type OpenFlag uint32

const (
	ORdonly OpenFlag = 0
	OWronly OpenFlag = 1 << iota
	ORdwr
	OCreate
	OExcl
	OTrunc
	OAppend
)

// FD is a per-client file descriptor.
type FD int32

// Whence values for Seek.
const (
	SeekSet = 0
	SeekCur = 1
	SeekEnd = 2
)

// MaxNameLen is the maximum length of a single path component.
const MaxNameLen = 255

// Errors shared by all implementations.
var (
	ErrNotExist    = errors.New("fs: no such file or directory")
	ErrExist       = errors.New("fs: file exists")
	ErrNotDir      = errors.New("fs: not a directory")
	ErrIsDir       = errors.New("fs: is a directory")
	ErrNotEmpty    = errors.New("fs: directory not empty")
	ErrPerm        = errors.New("fs: permission denied")
	ErrBadFD       = errors.New("fs: bad file descriptor")
	ErrNameTooLong = errors.New("fs: name too long")
	ErrNoSpace     = errors.New("fs: no space left on device")
	ErrInval       = errors.New("fs: invalid argument")
	ErrLoop        = errors.New("fs: too many levels of symbolic links")
	ErrCrossDir    = errors.New("fs: invalid cross-directory operation")
	ErrReadOnly    = errors.New("fs: file not open for writing")
	ErrWriteOnly   = errors.New("fs: file not open for reading")
)

// Stat describes a file. Ino is the file system's stable identifier — for
// Simurgh it is the inode's persistent pointer (the paper removes inode
// numbers entirely and uses NVMM offsets).
type Stat struct {
	Ino   uint64
	Mode  uint32
	UID   uint32
	GID   uint32
	Nlink uint32
	Size  uint64
	Atime int64
	Mtime int64
	Ctime int64
}

// DirEntry is one directory listing entry.
type DirEntry struct {
	Name string
	Ino  uint64
	Mode uint32
}

// Client is a process's view of a mounted file system: its credentials plus
// its open-file table. Clients of the same FileSystem share all state below
// the open-file map, exactly like processes sharing NVMM.
//
// Implementations must be safe for concurrent use by multiple goroutines
// (the paper's multithreaded processes).
type Client interface {
	// Create creates a regular file and opens it for writing.
	Create(path string, perm uint32) (FD, error)
	// Open opens an existing file (or creates with OCreate).
	Open(path string, flags OpenFlag, perm uint32) (FD, error)
	// Close releases the descriptor.
	Close(fd FD) error
	// Read reads from the descriptor's current position.
	Read(fd FD, p []byte) (int, error)
	// Pread reads at an explicit offset without moving the position.
	Pread(fd FD, p []byte, off uint64) (int, error)
	// Write writes at the descriptor's current position (or EOF with OAppend).
	Write(fd FD, p []byte) (int, error)
	// Pwrite writes at an explicit offset without moving the position.
	Pwrite(fd FD, p []byte, off uint64) (int, error)
	// Seek repositions the descriptor.
	Seek(fd FD, off int64, whence int) (int64, error)
	// Fsync persists outstanding updates of the file.
	Fsync(fd FD) error
	// Ftruncate sets the file size.
	Ftruncate(fd FD, size uint64) error
	// Fallocate preallocates space for [0, size).
	Fallocate(fd FD, size uint64) error
	// Fstat stats an open descriptor.
	Fstat(fd FD) (Stat, error)

	// Stat resolves a path (following symlinks) and returns its attributes.
	Stat(path string) (Stat, error)
	// Lstat is Stat without following a final symlink.
	Lstat(path string) (Stat, error)
	// Mkdir creates a directory.
	Mkdir(path string, perm uint32) error
	// Rmdir removes an empty directory.
	Rmdir(path string) error
	// Unlink removes a file or symlink.
	Unlink(path string) error
	// Rename moves old to new (within or across directories).
	Rename(oldPath, newPath string) error
	// Symlink creates a symbolic link at linkPath pointing to target.
	Symlink(target, linkPath string) error
	// Link creates a hard link at newPath for oldPath's inode.
	Link(oldPath, newPath string) error
	// Readlink returns a symlink's target.
	Readlink(path string) (string, error)
	// ReadDir lists a directory.
	ReadDir(path string) ([]DirEntry, error)
	// Chmod updates permission bits.
	Chmod(path string, perm uint32) error
	// Utimes sets access/modification times (unix nanoseconds).
	Utimes(path string, atime, mtime int64) error

	// Detach releases the client (closes all open descriptors).
	Detach() error
}

// FileSystem is a mounted volume accepting process attachments.
type FileSystem interface {
	// Name identifies the implementation ("simurgh", "nova", ...).
	Name() string
	// Attach registers a process with the given credentials.
	Attach(cred Cred) (Client, error)
}

// StatsProvider is implemented by file systems that keep per-operation
// observability counters (call/error counts, latency histograms, NVMM
// flush/fence attribution — see package obs). Tools type-assert a
// FileSystem to it; kernel-FS baselines do not implement it.
type StatsProvider interface {
	// Stats returns a point-in-time snapshot of the counters. Diff two
	// snapshots with Sub to scope them to a phase.
	Stats() obs.Snapshot
}

// ObsProvider is implemented by file systems that expose their live obs
// registry, for tools that need more than snapshots: adjusting the sample
// period, enabling the flight recorder, exporting Chrome traces.
type ObsProvider interface {
	// Obs returns the live observability registry.
	Obs() *obs.Registry
}

// SplitPath canonicalizes path into components, rejecting empty and
// overlong names. "." and ".." are resolved lexically ( ".." never escapes
// the root).
func SplitPath(path string) ([]string, error) {
	var comps []string
	i := 0
	for i < len(path) {
		for i < len(path) && path[i] == '/' {
			i++
		}
		j := i
		for j < len(path) && path[j] != '/' {
			j++
		}
		if j > i {
			name := path[i:j]
			switch name {
			case ".":
			case "..":
				if len(comps) > 0 {
					comps = comps[:len(comps)-1]
				}
			default:
				if len(name) > MaxNameLen {
					return nil, ErrNameTooLong
				}
				comps = append(comps, name)
			}
		}
		i = j
	}
	return comps, nil
}

// BaseDir splits path into its parent directory components and final name.
func BaseDir(path string) (dir []string, name string, err error) {
	comps, err := SplitPath(path)
	if err != nil {
		return nil, "", err
	}
	if len(comps) == 0 {
		return nil, "", ErrInval
	}
	return comps[:len(comps)-1], comps[len(comps)-1], nil
}

// JoinPath reassembles components into an absolute path.
func JoinPath(comps []string) string {
	if len(comps) == 0 {
		return "/"
	}
	n := 0
	for _, c := range comps {
		n += len(c) + 1
	}
	b := make([]byte, 0, n)
	for _, c := range comps {
		b = append(b, '/')
		b = append(b, c...)
	}
	return string(b)
}

// CheckPerm verifies that cred may access a file with the given owner and
// mode at the requested rwx level (4=r, 2=w, 1=x), applying the standard
// owner/group/other split. Root bypasses all checks.
func CheckPerm(cred Cred, uid, gid, mode uint32, want uint32) error {
	if cred.UID == 0 {
		return nil
	}
	var bits uint32
	switch {
	case cred.UID == uid:
		bits = (mode >> 6) & 7
	case cred.GID == gid:
		bits = (mode >> 3) & 7
	default:
		bits = mode & 7
	}
	if bits&want != want {
		return fmt.Errorf("%w (need %o, have %o)", ErrPerm, want, bits)
	}
	return nil
}

// AccessRead, AccessWrite, AccessExec are the want arguments to CheckPerm.
const (
	AccessRead  uint32 = 4
	AccessWrite uint32 = 2
	AccessExec  uint32 = 1
)
