package fsapi

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestSplitPath(t *testing.T) {
	cases := []struct {
		in   string
		want string // joined with ","
	}{
		{"/", ""},
		{"", ""},
		{"/a", "a"},
		{"a", "a"},
		{"/a/b/c", "a,b,c"},
		{"a//b///c/", "a,b,c"},
		{"/a/./b", "a,b"},
		{"/a/../b", "b"},
		{"/../a", "a"},
		{"/a/b/../../c", "c"},
		{"./a", "a"},
	}
	for _, c := range cases {
		got, err := SplitPath(c.in)
		if err != nil {
			t.Fatalf("SplitPath(%q): %v", c.in, err)
		}
		if s := strings.Join(got, ","); s != c.want {
			t.Errorf("SplitPath(%q) = %q, want %q", c.in, s, c.want)
		}
	}
}

func TestSplitPathRejectsLongNames(t *testing.T) {
	long := strings.Repeat("x", MaxNameLen+1)
	if _, err := SplitPath("/" + long); !errors.Is(err, ErrNameTooLong) {
		t.Fatalf("err = %v, want ErrNameTooLong", err)
	}
	ok := strings.Repeat("x", MaxNameLen)
	if _, err := SplitPath("/" + ok); err != nil {
		t.Fatalf("max-length name rejected: %v", err)
	}
}

func TestBaseDir(t *testing.T) {
	dir, name, err := BaseDir("/a/b/c")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(dir, ",") != "a,b" || name != "c" {
		t.Fatalf("BaseDir = (%v, %q)", dir, name)
	}
	if _, _, err := BaseDir("/"); !errors.Is(err, ErrInval) {
		t.Fatalf("BaseDir(/) err = %v, want ErrInval", err)
	}
}

func TestJoinPathRoundTrip(t *testing.T) {
	f := func(parts []string) bool {
		var clean []string
		for _, p := range parts {
			p = strings.Map(func(r rune) rune {
				if r == '/' || r == 0 {
					return 'x'
				}
				return r
			}, p)
			if p == "" || p == "." || p == ".." || len(p) > MaxNameLen {
				continue
			}
			clean = append(clean, p)
		}
		joined := JoinPath(clean)
		got, err := SplitPath(joined)
		if err != nil {
			return false
		}
		if len(got) != len(clean) {
			return false
		}
		for i := range got {
			if got[i] != clean[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCheckPerm(t *testing.T) {
	owner := Cred{UID: 100, GID: 100}
	group := Cred{UID: 101, GID: 100}
	other := Cred{UID: 102, GID: 102}
	const mode = 0o640
	if err := CheckPerm(owner, 100, 100, mode, AccessRead|AccessWrite); err != nil {
		t.Fatalf("owner rw: %v", err)
	}
	if err := CheckPerm(group, 100, 100, mode, AccessRead); err != nil {
		t.Fatalf("group r: %v", err)
	}
	if err := CheckPerm(group, 100, 100, mode, AccessWrite); !errors.Is(err, ErrPerm) {
		t.Fatalf("group w = %v, want ErrPerm", err)
	}
	if err := CheckPerm(other, 100, 100, mode, AccessRead); !errors.Is(err, ErrPerm) {
		t.Fatalf("other r = %v, want ErrPerm", err)
	}
	if err := CheckPerm(Root, 100, 100, 0, AccessRead|AccessWrite|AccessExec); err != nil {
		t.Fatalf("root bypass: %v", err)
	}
}

func TestModePredicates(t *testing.T) {
	if !IsDir(ModeDir | 0o755) {
		t.Fatal("IsDir failed")
	}
	if !IsRegular(ModeRegular | 0o644) {
		t.Fatal("IsRegular failed")
	}
	if !IsSymlink(ModeSymlink | 0o777) {
		t.Fatal("IsSymlink failed")
	}
	if IsDir(ModeRegular) || IsRegular(ModeDir) || IsSymlink(ModeRegular) {
		t.Fatal("mode predicates confuse types")
	}
}
