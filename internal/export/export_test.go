package export

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"simurgh/internal/obs"
)

// loadedRegistry builds a registry with representative traffic in every
// metric family the exporter serves.
func loadedRegistry(t *testing.T) *obs.Registry {
	t.Helper()
	r := obs.NewRegistry()
	r.EnableTrace(64)
	start := time.Now()
	for i := 0; i < 40; i++ {
		r.Enter(obs.OpStat)
		r.Sample(obs.OpStat, start, 1500, obs.Delta{Flushes: 1, StoreBytes: 64}, false)
	}
	r.Enter(obs.OpCreate)
	r.Error(obs.OpCreate)
	r.Sample(obs.OpCreate, start, 9000, obs.Delta{Fences: 2}, true)
	r.Event(obs.EvWaiterRecovery)
	r.Event(obs.EvLineLockTimeout)
	r.LockWait(obs.LockLine, 2500)
	r.LockWait(obs.LockFile, 800)
	r.Span(obs.SpanRecovery, 0, start, 4000, false)
	return r
}

func testSource(r *obs.Registry) Source {
	return func() obs.Snapshot {
		s := r.Snapshot()
		s.Gauges = []obs.Gauge{
			{Name: "alloc.blocks_free", Value: 123},
			{Name: "slab.inode.valid", Value: 7},
		}
		s.Shards = []obs.ShardStat{{Name: "locks", Gets: 10, Contended: 3}}
		s.Device = obs.Delta{LoadBytes: 4096, StoreBytes: 2560, Flushes: 40, Fences: 2}
		return s
	}
}

// promLine matches a sample line of the text exposition format:
// metric_name{labels} value (labels optional).
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? (?:[0-9]+(?:\.[0-9]+)?|\+Inf|NaN)$`)

// TestMetricsEndpointServesValidExposition scrapes /metrics and validates
// every line against the Prometheus text format (acceptance criterion).
func TestMetricsEndpointServesValidExposition(t *testing.T) {
	r := loadedRegistry(t)
	ts := httptest.NewServer(NewHandler(testSource(r), nil, r))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q, want text/plain", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	text := string(body)

	seen := map[string]bool{}
	sc := bufio.NewScanner(strings.NewReader(text))
	lines := 0
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Errorf("malformed comment line: %q", line)
			continue
		}
		if !promLine.MatchString(line) {
			t.Errorf("invalid exposition line: %q", line)
		}
		seen[strings.FieldsFunc(line, func(r rune) bool { return r == '{' || r == ' ' })[0]] = true
		lines++
	}
	if lines == 0 {
		t.Fatal("no sample lines in /metrics")
	}
	for _, want := range []string{
		"simurgh_sample_period",
		"simurgh_op_calls_total",
		"simurgh_op_errors_total",
		"simurgh_op_latency_ns_bucket",
		"simurgh_op_latency_ns_sum",
		"simurgh_op_latency_ns_count",
		"simurgh_lock_wait_ns_bucket",
		"simurgh_events_total",
		"simurgh_shard_gets_total",
		"simurgh_device_total",
		"simurgh_gauge",
	} {
		if !seen[want] {
			t.Errorf("metric family %s missing from /metrics", want)
		}
	}
	if !strings.Contains(text, `simurgh_op_calls_total{op="stat"} 40`) {
		t.Errorf("stat calls not exported:\n%s", text)
	}
	if !strings.Contains(text, `simurgh_events_total{event="waiter_recovery"} 1`) {
		t.Errorf("waiter_recovery event not exported")
	}
	if !strings.Contains(text, `le="+Inf"`) {
		t.Errorf("histogram missing +Inf bucket")
	}
}

// TestStatsJSONEndpointParses decodes /stats.json and checks the named
// snapshot content (acceptance criterion: parse both endpoints).
func TestStatsJSONEndpointParses(t *testing.T) {
	r := loadedRegistry(t)
	ts := httptest.NewServer(NewHandler(testSource(r), nil, r))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/stats.json")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	defer resp.Body.Close()
	var js JSONSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&js); err != nil {
		t.Fatalf("decode /stats.json: %v", err)
	}
	lo := js.Ops["stat"]
	if lo.Calls != 40 || lo.Sampled != 40 {
		t.Errorf("lookup = %+v, want 40 calls/sampled", lo)
	}
	if lo.P50Ns == 0 || lo.P99Ns < lo.P50Ns {
		t.Errorf("percentiles not populated: p50=%d p99=%d", lo.P50Ns, lo.P99Ns)
	}
	if js.Ops["create"].Errors != 1 {
		t.Errorf("create errors = %d, want 1", js.Ops["create"].Errors)
	}
	if js.Events["line_lock_timeout"] != 1 {
		t.Errorf("events = %v, want line_lock_timeout=1", js.Events)
	}
	if js.LockWaits["line"].Waits != 1 || js.LockWaits["line"].MeanNs != 2500 {
		t.Errorf("lock_waits = %+v", js.LockWaits)
	}
	if js.Gauges["alloc.blocks_free"] != 123 {
		t.Errorf("gauges = %v", js.Gauges)
	}
	if js.Device.Flushes != 40 {
		t.Errorf("device flushes = %d, want 40", js.Device.Flushes)
	}
}

// TestTraceJSONEndpoint checks /trace.json serves Chrome trace-event JSON.
func TestTraceJSONEndpoint(t *testing.T) {
	r := loadedRegistry(t)
	ts := httptest.NewServer(NewHandler(testSource(r), nil, r))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/trace.json")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	defer resp.Body.Close()
	var events []map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&events); err != nil {
		t.Fatalf("decode /trace.json: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("no trace events")
	}
	found := false
	for _, e := range events {
		if e["cat"] == "recovery" {
			found = true
		}
		if e["ph"] != "X" && e["ph"] != "M" {
			t.Errorf("event ph = %v, want X or M", e["ph"])
		}
	}
	if !found {
		t.Error("recovery span missing from trace")
	}
}

// TestJSONSnapshotSub checks windowed diffing for simurghtop: counters
// difference, gauges stay levels, percentiles recompute on the window.
func TestJSONSnapshotSub(t *testing.T) {
	r := obs.NewRegistry()
	start := time.Now()
	r.Enter(obs.OpRead)
	r.Sample(obs.OpRead, start, 1000, obs.Delta{}, false)
	base := ToJSON(r.Snapshot())
	for i := 0; i < 9; i++ {
		r.Enter(obs.OpRead)
		r.Sample(obs.OpRead, start, 100000, obs.Delta{}, false)
	}
	r.Event(obs.EvSegLockSteal)
	r.LockWait(obs.LockFile, 5000)
	cur := ToJSON(r.Snapshot())
	cur.Gauges = map[string]uint64{"alloc.blocks_free": 99}

	d := cur.Sub(base)
	if got := d.Ops["read"].Calls; got != 9 {
		t.Errorf("window read calls = %d, want 9", got)
	}
	if d.Ops["read"].MeanNs != 100000 {
		t.Errorf("window mean = %d, want 100000", d.Ops["read"].MeanNs)
	}
	if p50 := d.Ops["read"].P50Ns; p50 <= 1000 {
		t.Errorf("window p50 = %d, should reflect only the slow window samples", p50)
	}
	if d.Events["seg_lock_steal"] != 1 {
		t.Errorf("window events = %v", d.Events)
	}
	if d.LockWaits["file"].Waits != 1 {
		t.Errorf("window lock waits = %v", d.LockWaits)
	}
	if d.Gauges["alloc.blocks_free"] != 99 {
		t.Errorf("gauges should pass through as levels: %v", d.Gauges)
	}
}

// TestServeListensAndCloses exercises the Serve helper end to end.
func TestServeListensAndCloses(t *testing.T) {
	r := loadedRegistry(t)
	s, err := Serve("127.0.0.1:0", testSource(r), nil, r)
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	resp, err := http.Get(s.URL + "/metrics")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("status = %d", resp.StatusCode)
	}
	if err := s.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
}

// TestHealthz covers the /healthz endpoint: 200 only while serving, 503
// with the state name while draining or running as a backup, and a
// default of "serving" when no health source is wired.
func TestHealthz(t *testing.T) {
	r := loadedRegistry(t)
	state := "serving"
	ts := httptest.NewServer(NewHandler(testSource(r), func() string { return state }, r))
	defer ts.Close()

	get := func() (int, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatalf("healthz: %v", err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, strings.TrimSpace(string(body))
	}

	if code, body := get(); code != http.StatusOK || body != "serving" {
		t.Fatalf("serving: got (%d, %q)", code, body)
	}
	state = "draining"
	if code, body := get(); code != http.StatusServiceUnavailable || body != "draining" {
		t.Fatalf("draining: got (%d, %q)", code, body)
	}
	state = "backup"
	if code, body := get(); code != http.StatusServiceUnavailable || body != "backup" {
		t.Fatalf("backup: got (%d, %q)", code, body)
	}

	// No health source: always healthy.
	ts2 := httptest.NewServer(NewHandler(testSource(r), nil, r))
	defer ts2.Close()
	resp, err := http.Get(ts2.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("default healthz = %d, want 200", resp.StatusCode)
	}
}
