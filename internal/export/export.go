// Package export serves live observability data over HTTP: Prometheus
// text-exposition on /metrics, a named JSON snapshot on /stats.json, the
// flight recorder's Chrome trace JSON on /trace.json, and expvar on
// /debug/vars. It is driven entirely by the obs Snapshot API — a Source
// callback produces a fresh snapshot per scrape — so any stats-capable
// file system (core.FS, the public Volume) can be exported without new
// coupling.
package export

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"sync"
	"sync/atomic"

	"simurgh/internal/obs"
)

// Source produces a point-in-time snapshot of a live file system
// (typically FS.Stats or Volume.Stats).
type Source func() obs.Snapshot

// OpJSON is the per-op entry of the JSON snapshot: raw counters plus
// precomputed mean and interpolated percentiles so consumers need no
// histogram math for the common read.
type OpJSON struct {
	Calls   uint64                 `json:"calls"`
	Errors  uint64                 `json:"errors"`
	Sampled uint64                 `json:"sampled"`
	LatNs   uint64                 `json:"lat_ns"`
	MeanNs  uint64                 `json:"mean_ns"`
	P50Ns   uint64                 `json:"p50_ns"`
	P95Ns   uint64                 `json:"p95_ns"`
	P99Ns   uint64                 `json:"p99_ns"`
	Hist    [obs.NumBuckets]uint64 `json:"hist"`
	Pmem    obs.Delta              `json:"pmem"`
}

// LockWaitJSON is the per-lock-class entry of the JSON snapshot.
type LockWaitJSON struct {
	Waits   uint64                 `json:"waits"`
	TotalNs uint64                 `json:"total_ns"`
	MeanNs  uint64                 `json:"mean_ns"`
	P99Ns   uint64                 `json:"p99_ns"`
	Hist    [obs.NumBuckets]uint64 `json:"hist"`
}

// JSONSnapshot is the wire form of an obs.Snapshot with names instead of
// enum indices, served on /stats.json and consumed by simurghtop.
type JSONSnapshot struct {
	SamplePeriod uint64                  `json:"sample_period"`
	Ops          map[string]OpJSON       `json:"ops"`
	Shards       []obs.ShardStat         `json:"shards"`
	Device       obs.Delta               `json:"device"`
	Events       map[string]uint64       `json:"events"`
	LockWaits    map[string]LockWaitJSON `json:"lock_waits"`
	Gauges       map[string]uint64       `json:"gauges"`
}

// ToJSON converts a snapshot to its wire form. Ops with zero calls are
// omitted; absent keys read as zero.
func ToJSON(s obs.Snapshot) JSONSnapshot {
	out := JSONSnapshot{
		SamplePeriod: s.SamplePeriod,
		Ops:          map[string]OpJSON{},
		Shards:       s.Shards,
		Device:       s.Device,
		Events:       map[string]uint64{},
		LockWaits:    map[string]LockWaitJSON{},
		Gauges:       map[string]uint64{},
	}
	for op := obs.Op(0); op < obs.NumOps; op++ {
		o := s.Ops[op]
		if o.Calls == 0 {
			continue
		}
		out.Ops[op.String()] = OpJSON{
			Calls: o.Calls, Errors: o.Errors, Sampled: o.Sampled, LatNs: o.LatNs,
			MeanNs: o.MeanNs(),
			P50Ns:  o.Hist.Percentile(0.50),
			P95Ns:  o.Hist.Percentile(0.95),
			P99Ns:  o.Hist.Percentile(0.99),
			Hist:   o.Hist, Pmem: o.Pmem,
		}
	}
	for e := obs.Event(0); e < obs.NumEvents; e++ {
		if s.Events[e] != 0 {
			out.Events[e.String()] = s.Events[e]
		}
	}
	for c := obs.LockClass(0); c < obs.NumLockClasses; c++ {
		lw := s.LockWaits[c]
		if lw.Waits == 0 {
			continue
		}
		out.LockWaits[c.String()] = LockWaitJSON{
			Waits: lw.Waits, TotalNs: lw.TotalNs, MeanNs: lw.MeanNs(),
			P99Ns: lw.Hist.Percentile(0.99), Hist: lw.Hist,
		}
	}
	for _, g := range s.Gauges {
		out.Gauges[g.Name] = g.Value
	}
	return out
}

// Sub returns the window diff s-base in wire form: counters and histograms
// are differenced (absent keys count as zero), gauges and shard totals
// keep the later snapshot's values as levels.
func (s JSONSnapshot) Sub(base JSONSnapshot) JSONSnapshot {
	out := JSONSnapshot{
		SamplePeriod: s.SamplePeriod,
		Ops:          map[string]OpJSON{},
		Shards:       s.Shards,
		Device:       s.Device.Sub(base.Device),
		Events:       map[string]uint64{},
		LockWaits:    map[string]LockWaitJSON{},
		Gauges:       s.Gauges,
	}
	for name, o := range s.Ops {
		b := base.Ops[name]
		d := OpJSON{
			Calls: o.Calls - b.Calls, Errors: o.Errors - b.Errors,
			Sampled: o.Sampled - b.Sampled, LatNs: o.LatNs - b.LatNs,
			Pmem: o.Pmem.Sub(b.Pmem),
		}
		var h obs.Histogram
		for i := range d.Hist {
			d.Hist[i] = o.Hist[i] - b.Hist[i]
			h[i] = d.Hist[i]
		}
		if d.Sampled > 0 {
			d.MeanNs = d.LatNs / d.Sampled
		}
		d.P50Ns = h.Percentile(0.50)
		d.P95Ns = h.Percentile(0.95)
		d.P99Ns = h.Percentile(0.99)
		out.Ops[name] = d
	}
	for name, v := range s.Events {
		if d := v - base.Events[name]; d != 0 {
			out.Events[name] = d
		}
	}
	for name, lw := range s.LockWaits {
		b := base.LockWaits[name]
		d := LockWaitJSON{Waits: lw.Waits - b.Waits, TotalNs: lw.TotalNs - b.TotalNs}
		var h obs.Histogram
		for i := range d.Hist {
			d.Hist[i] = lw.Hist[i] - b.Hist[i]
			h[i] = d.Hist[i]
		}
		if d.Waits > 0 {
			d.MeanNs = d.TotalNs / d.Waits
		}
		d.P99Ns = h.Percentile(0.99)
		out.LockWaits[name] = d
	}
	return out
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4): per-op call/error counters and latency
// histograms, lock-wait histograms, event counters, shard and device
// totals, and subsystem gauges.
func WritePrometheus(w io.Writer, s obs.Snapshot) {
	fmt.Fprintf(w, "# HELP simurgh_sample_period Deep-sampling period (1 = every call sampled).\n")
	fmt.Fprintf(w, "# TYPE simurgh_sample_period gauge\n")
	fmt.Fprintf(w, "simurgh_sample_period %d\n", s.SamplePeriod)

	fmt.Fprintf(w, "# HELP simurgh_op_calls_total Operations started, by class.\n")
	fmt.Fprintf(w, "# TYPE simurgh_op_calls_total counter\n")
	for op := obs.Op(0); op < obs.NumOps; op++ {
		if s.Ops[op].Calls != 0 {
			fmt.Fprintf(w, "simurgh_op_calls_total{op=%q} %d\n", op.String(), s.Ops[op].Calls)
		}
	}
	fmt.Fprintf(w, "# HELP simurgh_op_errors_total Operations failed, by class.\n")
	fmt.Fprintf(w, "# TYPE simurgh_op_errors_total counter\n")
	for op := obs.Op(0); op < obs.NumOps; op++ {
		if s.Ops[op].Errors != 0 {
			fmt.Fprintf(w, "simurgh_op_errors_total{op=%q} %d\n", op.String(), s.Ops[op].Errors)
		}
	}
	fmt.Fprintf(w, "# HELP simurgh_op_latency_ns Sampled operation latency, by class.\n")
	fmt.Fprintf(w, "# TYPE simurgh_op_latency_ns histogram\n")
	for op := obs.Op(0); op < obs.NumOps; op++ {
		o := s.Ops[op]
		if o.Sampled == 0 {
			continue
		}
		writeHist(w, "simurgh_op_latency_ns", fmt.Sprintf("op=%q", op.String()), o.Hist, o.LatNs)
	}
	fmt.Fprintf(w, "# HELP simurgh_lock_wait_ns Contended lock wait time, by lock class.\n")
	fmt.Fprintf(w, "# TYPE simurgh_lock_wait_ns histogram\n")
	for c := obs.LockClass(0); c < obs.NumLockClasses; c++ {
		lw := s.LockWaits[c]
		if lw.Waits == 0 {
			continue
		}
		writeHist(w, "simurgh_lock_wait_ns", fmt.Sprintf("lock=%q", c.String()), lw.Hist, lw.TotalNs)
	}
	fmt.Fprintf(w, "# HELP simurgh_events_total Rare events (timeouts, recovery, steals).\n")
	fmt.Fprintf(w, "# TYPE simurgh_events_total counter\n")
	for e := obs.Event(0); e < obs.NumEvents; e++ {
		if s.Events[e] != 0 {
			fmt.Fprintf(w, "simurgh_events_total{event=%q} %d\n", e.String(), s.Events[e])
		}
	}
	if len(s.Shards) > 0 {
		fmt.Fprintf(w, "# HELP simurgh_shard_gets_total Sharded-map lock acquisitions.\n")
		fmt.Fprintf(w, "# TYPE simurgh_shard_gets_total counter\n")
		for _, sh := range s.Shards {
			fmt.Fprintf(w, "simurgh_shard_gets_total{shard=%q} %d\n", sh.Name, sh.Gets)
		}
		fmt.Fprintf(w, "# HELP simurgh_shard_contended_total Sharded-map acquisitions that found the lock held.\n")
		fmt.Fprintf(w, "# TYPE simurgh_shard_contended_total counter\n")
		for _, sh := range s.Shards {
			fmt.Fprintf(w, "simurgh_shard_contended_total{shard=%q} %d\n", sh.Name, sh.Contended)
		}
	}
	fmt.Fprintf(w, "# HELP simurgh_device_total Device-global NVMM traffic counters.\n")
	fmt.Fprintf(w, "# TYPE simurgh_device_total counter\n")
	for _, kv := range []struct {
		k string
		v uint64
	}{
		{"load_bytes", s.Device.LoadBytes}, {"store_bytes", s.Device.StoreBytes},
		{"nt_bytes", s.Device.NTBytes}, {"flushes", s.Device.Flushes}, {"fences", s.Device.Fences},
	} {
		fmt.Fprintf(w, "simurgh_device_total{kind=%q} %d\n", kv.k, kv.v)
	}
	if len(s.Gauges) > 0 {
		fmt.Fprintf(w, "# HELP simurgh_gauge Point-in-time subsystem levels (allocator occupancy, slab flags, device).\n")
		fmt.Fprintf(w, "# TYPE simurgh_gauge gauge\n")
		gauges := append([]obs.Gauge(nil), s.Gauges...)
		sort.Slice(gauges, func(i, j int) bool { return gauges[i].Name < gauges[j].Name })
		for _, g := range gauges {
			fmt.Fprintf(w, "simurgh_gauge{name=%q} %d\n", g.Name, g.Value)
		}
	}
}

// writeHist emits one labeled Prometheus histogram series with cumulative
// buckets; the unbounded tail bucket maps to le="+Inf".
func writeHist(w io.Writer, name, label string, h obs.Histogram, sum uint64) {
	var cum uint64
	for i := 0; i < obs.NumBuckets-1; i++ {
		cum += h[i]
		fmt.Fprintf(w, "%s_bucket{%s,le=\"%d\"} %d\n", name, label, obs.BucketUpperNs(i), cum)
	}
	cum += h[obs.NumBuckets-1]
	fmt.Fprintf(w, "%s_bucket{%s,le=\"+Inf\"} %d\n", name, label, cum)
	fmt.Fprintf(w, "%s_sum{%s} %d\n", name, label, sum)
	fmt.Fprintf(w, "%s_count{%s} %d\n", name, label, cum)
}

// expvarSrc is the Source behind the process-global expvar variable: the
// most recently installed handler wins (expvar allows one publish per name
// per process).
var (
	expvarOnce sync.Once
	expvarSrc  atomic.Value // Source
)

func publishExpvar(src Source) {
	expvarSrc.Store(src)
	expvarOnce.Do(func() {
		expvar.Publish("simurgh", expvar.Func(func() any {
			if f, ok := expvarSrc.Load().(Source); ok && f != nil {
				return ToJSON(f())
			}
			return nil
		}))
	})
}

// Extra appends additional Prometheus series to each /metrics scrape, for
// subsystems whose counters live outside the obs snapshot (the network
// server's simurgh_server_*/simurgh_wire_* series).
type Extra func(w io.Writer)

// HealthFunc reports the node's serving state for /healthz: "serving",
// "draining", or "backup". Anything but "serving" answers 503 so load
// balancers and orchestration probes steer clients at the primary only.
type HealthFunc func() string

// Options selects the exporter's optional endpoints.
type Options struct {
	// Pprof mounts net/http/pprof under /debug/pprof/ (CPU and execution
	// trace profiling over HTTP, goroutine/heap/allocs/mutex/block dumps).
	// Off by default: the endpoints can pause the process for seconds at a
	// time, so they are opt-in even on an already-trusted metrics port.
	Pprof bool
	// Cluster, when set, serves the replication group's health document on
	// /cluster.json (typically replica.Node.WriteClusterJSON). nil answers
	// 404 — standalone daemons have no cluster plane.
	Cluster func(w io.Writer) error
	// HealthDetail, when set, appends machine-readable "key value" lines
	// after the state line on /healthz (epoch, commit_floor), so probes and
	// smoke tests assert promotion state without parsing logs. The first
	// line stays the bare state for existing one-line consumers.
	HealthDetail func(w io.Writer)
}

// NewHandler builds the exporter's HTTP mux. health (optional; nil reports
// "serving") drives /healthz; reg (optional) enables /trace.json from the
// registry's flight recorder; extra appenders are invoked after the
// snapshot on every /metrics scrape.
func NewHandler(src Source, health HealthFunc, reg *obs.Registry, extra ...Extra) http.Handler {
	return NewHandlerOpts(src, health, reg, Options{}, extra...)
}

// NewHandlerOpts is NewHandler with explicit Options.
func NewHandlerOpts(src Source, health HealthFunc, reg *obs.Registry, opts Options, extra ...Extra) http.Handler {
	publishExpvar(src)
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		state := "serving"
		if health != nil {
			state = health()
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if state != "serving" {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		fmt.Fprintln(w, state)
		if opts.HealthDetail != nil {
			opts.HealthDetail(w)
		}
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WritePrometheus(w, src())
		for _, e := range extra {
			e(w)
		}
	})
	mux.HandleFunc("/stats.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		enc.Encode(ToJSON(src()))
	})
	mux.HandleFunc("/trace.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		reg.WriteChromeTrace(w)
	})
	mux.HandleFunc("/slow.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		reg.WriteSlowJSON(w)
	})
	mux.HandleFunc("/cluster.json", func(w http.ResponseWriter, r *http.Request) {
		if opts.Cluster == nil {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		opts.Cluster(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	pprofLine := ""
	if opts.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		pprofLine = "/debug/pprof  runtime profiles (cpu, heap, allocs, goroutine, trace)\n"
	}
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		io.WriteString(w, "simurgh metrics exporter\n\n"+
			"/metrics      Prometheus text exposition\n"+
			"/stats.json   JSON snapshot (ops, events, lock waits, gauges)\n"+
			"/trace.json   Chrome trace-event JSON (load in ui.perfetto.dev)\n"+
			"/slow.json    slow-operation log (threshold-gated ring)\n"+
			"/cluster.json replication group health (primary only)\n"+
			"/healthz      serving state (200 serving, 503 draining/backup)\n"+
			"/debug/vars   expvar\n"+pprofLine)
	})
	return mux
}

// Server is a running exporter endpoint.
type Server struct {
	// URL is the base address, e.g. "http://127.0.0.1:9180".
	URL string

	ln  net.Listener
	srv *http.Server
}

// Serve starts the exporter on addr (host:port; port 0 picks a free one)
// and returns once the listener is accepting.
func Serve(addr string, src Source, health HealthFunc, reg *obs.Registry, extra ...Extra) (*Server, error) {
	return ServeOpts(addr, src, health, reg, Options{}, extra...)
}

// ServeOpts is Serve with explicit Options.
func ServeOpts(addr string, src Source, health HealthFunc, reg *obs.Registry, opts Options, extra ...Extra) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		URL: "http://" + ln.Addr().String(),
		ln:  ln,
		srv: &http.Server{Handler: NewHandlerOpts(src, health, reg, opts, extra...)},
	}
	go s.srv.Serve(ln)
	return s, nil
}

// Close stops the exporter.
func (s *Server) Close() error { return s.srv.Close() }
