// Package fstest provides a conformance battery exercised against every
// file system in the repository (Simurgh and the four baselines) through
// the shared fsapi interface, ensuring the benchmarks compare like for
// like.
package fstest

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"simurgh/internal/fsapi"
)

// Factory creates a fresh, empty file system.
type Factory func() fsapi.FileSystem

// RunConformance executes the full battery against the factory's FS.
func RunConformance(t *testing.T, mk Factory) {
	t.Helper()
	tests := []struct {
		name string
		fn   func(*testing.T, fsapi.FileSystem)
	}{
		{"CreateReadBack", testCreateReadBack},
		{"CreateExclusive", testCreateExclusive},
		{"MissingFile", testMissingFile},
		{"MkdirTree", testMkdirTree},
		{"UnlinkFrees", testUnlink},
		{"Rmdir", testRmdir},
		{"RenameSameDir", testRenameSameDir},
		{"RenameCrossDir", testRenameCrossDir},
		{"RenameReplaces", testRenameReplaces},
		{"ReadDir", testReadDir},
		{"Symlink", testSymlink},
		{"HardLink", testHardLink},
		{"Permissions", testPermissions},
		{"SeekPreadPwrite", testSeekPreadPwrite},
		{"Append", testAppend},
		{"TruncateFallocate", testTruncateFallocate},
		{"LargeFile", testLargeFile},
		{"FsyncDurability", testFsync},
		{"ManyFilesSharedDir", testManyFiles},
		{"ConcurrentCreates", testConcurrentCreates},
		{"ConcurrentSharedAppends", testConcurrentSharedAppends},
		{"Utimes", testUtimes},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			tc.fn(t, mk())
		})
	}
}

func attach(t *testing.T, fs fsapi.FileSystem) fsapi.Client {
	t.Helper()
	c, err := fs.Attach(fsapi.Root)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func testCreateReadBack(t *testing.T, fs fsapi.FileSystem) {
	c := attach(t, fs)
	fd, err := c.Create("/f", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("conformance payload")
	if n, err := c.Write(fd, data); err != nil || n != len(data) {
		t.Fatalf("write = (%d, %v)", n, err)
	}
	c.Close(fd)
	fd, err = c.Open("/f", fsapi.ORdonly, 0)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	n, err := c.Read(fd, buf)
	if err != nil || !bytes.Equal(buf[:n], data) {
		t.Fatalf("read = (%q, %v)", buf[:n], err)
	}
}

func testCreateExclusive(t *testing.T, fs fsapi.FileSystem) {
	c := attach(t, fs)
	if _, err := c.Open("/x", fsapi.OCreate|fsapi.OExcl|fsapi.OWronly, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Open("/x", fsapi.OCreate|fsapi.OExcl|fsapi.OWronly, 0o644); !errors.Is(err, fsapi.ErrExist) {
		t.Fatalf("err = %v, want ErrExist", err)
	}
}

func testMissingFile(t *testing.T, fs fsapi.FileSystem) {
	c := attach(t, fs)
	if _, err := c.Open("/missing", fsapi.ORdonly, 0); !errors.Is(err, fsapi.ErrNotExist) {
		t.Fatalf("err = %v, want ErrNotExist", err)
	}
	if _, err := c.Stat("/missing"); !errors.Is(err, fsapi.ErrNotExist) {
		t.Fatalf("stat err = %v", err)
	}
}

func testMkdirTree(t *testing.T, fs fsapi.FileSystem) {
	c := attach(t, fs)
	for _, p := range []string{"/a", "/a/b", "/a/b/c", "/a/b/c/d"} {
		if err := c.Mkdir(p, 0o755); err != nil {
			t.Fatalf("mkdir %s: %v", p, err)
		}
	}
	if _, err := c.Create("/a/b/c/d/leaf", 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := c.Stat("/a/b/c/d/leaf")
	if err != nil || !fsapi.IsRegular(st.Mode) {
		t.Fatalf("stat leaf = (%+v, %v)", st, err)
	}
	if err := c.Mkdir("/a/b", 0o755); !errors.Is(err, fsapi.ErrExist) {
		t.Fatalf("re-mkdir = %v, want ErrExist", err)
	}
}

func testUnlink(t *testing.T, fs fsapi.FileSystem) {
	c := attach(t, fs)
	fd, _ := c.Create("/f", 0o644)
	c.Write(fd, make([]byte, 20000))
	c.Close(fd)
	if err := c.Unlink("/f"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Stat("/f"); !errors.Is(err, fsapi.ErrNotExist) {
		t.Fatalf("stat after unlink = %v", err)
	}
	if err := c.Unlink("/f"); !errors.Is(err, fsapi.ErrNotExist) {
		t.Fatalf("double unlink = %v", err)
	}
}

func testRmdir(t *testing.T, fs fsapi.FileSystem) {
	c := attach(t, fs)
	c.Mkdir("/d", 0o755)
	c.Create("/d/f", 0o644)
	if err := c.Rmdir("/d"); !errors.Is(err, fsapi.ErrNotEmpty) {
		t.Fatalf("rmdir non-empty = %v", err)
	}
	c.Unlink("/d/f")
	if err := c.Rmdir("/d"); err != nil {
		t.Fatal(err)
	}
}

func testRenameSameDir(t *testing.T, fs fsapi.FileSystem) {
	c := attach(t, fs)
	fd, _ := c.Create("/from", 0o644)
	c.Write(fd, []byte("xyz"))
	c.Close(fd)
	if err := c.Rename("/from", "/to"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Stat("/from"); !errors.Is(err, fsapi.ErrNotExist) {
		t.Fatal("old name survives")
	}
	fd, _ = c.Open("/to", fsapi.ORdonly, 0)
	buf := make([]byte, 8)
	n, _ := c.Read(fd, buf)
	if string(buf[:n]) != "xyz" {
		t.Fatalf("content = %q", buf[:n])
	}
}

func testRenameCrossDir(t *testing.T, fs fsapi.FileSystem) {
	c := attach(t, fs)
	c.Mkdir("/d1", 0o755)
	c.Mkdir("/d2", 0o755)
	c.Create("/d1/f", 0o644)
	if err := c.Rename("/d1/f", "/d2/f"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Stat("/d2/f"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Stat("/d1/f"); !errors.Is(err, fsapi.ErrNotExist) {
		t.Fatal("source survives")
	}
}

func testRenameReplaces(t *testing.T, fs fsapi.FileSystem) {
	c := attach(t, fs)
	fd, _ := c.Create("/a", 0o644)
	c.Write(fd, []byte("A"))
	c.Close(fd)
	fd, _ = c.Create("/b", 0o644)
	c.Write(fd, []byte("B"))
	c.Close(fd)
	if err := c.Rename("/a", "/b"); err != nil {
		t.Fatal(err)
	}
	fd, _ = c.Open("/b", fsapi.ORdonly, 0)
	buf := make([]byte, 4)
	n, _ := c.Read(fd, buf)
	if string(buf[:n]) != "A" {
		t.Fatalf("content = %q, want A", buf[:n])
	}
}

func testReadDir(t *testing.T, fs fsapi.FileSystem) {
	c := attach(t, fs)
	want := map[string]bool{}
	for i := 0; i < 15; i++ {
		name := fmt.Sprintf("e%02d", i)
		c.Create("/"+name, 0o644)
		want[name] = true
	}
	ents, err := c.ReadDir("/")
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != len(want) {
		t.Fatalf("got %d entries, want %d", len(ents), len(want))
	}
	for _, e := range ents {
		if !want[e.Name] {
			t.Fatalf("unexpected entry %q", e.Name)
		}
	}
}

func testSymlink(t *testing.T, fs fsapi.FileSystem) {
	c := attach(t, fs)
	fd, _ := c.Create("/real", 0o644)
	c.Write(fd, []byte("deref"))
	c.Close(fd)
	if err := c.Symlink("/real", "/ln"); err != nil {
		t.Fatal(err)
	}
	if tgt, err := c.Readlink("/ln"); err != nil || tgt != "/real" {
		t.Fatalf("readlink = (%q, %v)", tgt, err)
	}
	fd, err := c.Open("/ln", fsapi.ORdonly, 0)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	n, _ := c.Read(fd, buf)
	if string(buf[:n]) != "deref" {
		t.Fatalf("content via symlink = %q", buf[:n])
	}
	lst, _ := c.Lstat("/ln")
	if !fsapi.IsSymlink(lst.Mode) {
		t.Fatal("Lstat mode not symlink")
	}
}

func testHardLink(t *testing.T, fs fsapi.FileSystem) {
	c := attach(t, fs)
	fd, _ := c.Create("/h1", 0o644)
	c.Write(fd, []byte("linked"))
	c.Close(fd)
	if err := c.Link("/h1", "/h2"); err != nil {
		t.Fatal(err)
	}
	st1, _ := c.Stat("/h1")
	st2, _ := c.Stat("/h2")
	if st1.Ino != st2.Ino || st1.Nlink != 2 {
		t.Fatalf("ino %d/%d nlink %d", st1.Ino, st2.Ino, st1.Nlink)
	}
	c.Unlink("/h1")
	fd, err := c.Open("/h2", fsapi.ORdonly, 0)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	n, _ := c.Read(fd, buf)
	if string(buf[:n]) != "linked" {
		t.Fatalf("content = %q", buf[:n])
	}
}

func testPermissions(t *testing.T, fs fsapi.FileSystem) {
	root := attach(t, fs)
	root.Chmod("/", 0o777)
	alice, _ := fs.Attach(fsapi.Cred{UID: 1000, GID: 1000})
	bob, _ := fs.Attach(fsapi.Cred{UID: 1001, GID: 1001})
	if err := alice.Mkdir("/priv", 0o700); err != nil {
		t.Fatal(err)
	}
	if _, err := alice.Create("/priv/s", 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := bob.Open("/priv/s", fsapi.ORdonly, 0); !errors.Is(err, fsapi.ErrPerm) {
		t.Fatalf("bob read = %v, want ErrPerm", err)
	}
	if _, err := bob.Create("/priv/evil", 0o644); !errors.Is(err, fsapi.ErrPerm) {
		t.Fatalf("bob create = %v, want ErrPerm", err)
	}
	if _, err := root.Open("/priv/s", fsapi.ORdonly, 0); err != nil {
		t.Fatalf("root read: %v", err)
	}
}

func testSeekPreadPwrite(t *testing.T, fs fsapi.FileSystem) {
	c := attach(t, fs)
	fd, _ := c.Open("/s", fsapi.OCreate|fsapi.ORdwr, 0o644)
	c.Write(fd, []byte("0123456789"))
	if pos, _ := c.Seek(fd, 4, fsapi.SeekSet); pos != 4 {
		t.Fatalf("seek = %d", pos)
	}
	buf := make([]byte, 2)
	n, _ := c.Read(fd, buf)
	if string(buf[:n]) != "45" {
		t.Fatalf("read = %q", buf[:n])
	}
	c.Pwrite(fd, []byte("zz"), 1)
	n, _ = c.Pread(fd, buf, 1)
	if string(buf[:n]) != "zz" {
		t.Fatalf("pread = %q", buf[:n])
	}
}

func testAppend(t *testing.T, fs fsapi.FileSystem) {
	c := attach(t, fs)
	fd, _ := c.Open("/log", fsapi.OCreate|fsapi.OWronly|fsapi.OAppend, 0o644)
	c.Write(fd, []byte("aa"))
	c.Write(fd, []byte("bb"))
	c.Close(fd)
	fd, _ = c.Open("/log", fsapi.OWronly|fsapi.OAppend, 0)
	c.Write(fd, []byte("cc"))
	c.Close(fd)
	fd, _ = c.Open("/log", fsapi.ORdonly, 0)
	buf := make([]byte, 16)
	n, _ := c.Read(fd, buf)
	if string(buf[:n]) != "aabbcc" {
		t.Fatalf("appended = %q", buf[:n])
	}
	st, _ := c.Stat("/log")
	if st.Size != 6 {
		t.Fatalf("size = %d", st.Size)
	}
}

func testTruncateFallocate(t *testing.T, fs fsapi.FileSystem) {
	c := attach(t, fs)
	fd, _ := c.Open("/t", fsapi.OCreate|fsapi.ORdwr, 0o644)
	c.Write(fd, bytes.Repeat([]byte{1}, 10000))
	if err := c.Ftruncate(fd, 100); err != nil {
		t.Fatal(err)
	}
	st, _ := c.Fstat(fd)
	if st.Size != 100 {
		t.Fatalf("size after truncate = %d", st.Size)
	}
	if err := c.Fallocate(fd, 1<<20); err != nil {
		t.Fatal(err)
	}
	st, _ = c.Fstat(fd)
	if st.Size != 1<<20 {
		t.Fatalf("size after fallocate = %d", st.Size)
	}
}

func testLargeFile(t *testing.T, fs fsapi.FileSystem) {
	c := attach(t, fs)
	fd, _ := c.Open("/big", fsapi.OCreate|fsapi.ORdwr, 0o644)
	rng := rand.New(rand.NewSource(5))
	data := make([]byte, 2<<20) // 2 MiB
	rng.Read(data)
	for off := 0; off < len(data); off += 100000 {
		end := off + 100000
		if end > len(data) {
			end = len(data)
		}
		if _, err := c.Pwrite(fd, data[off:end], uint64(off)); err != nil {
			t.Fatal(err)
		}
	}
	got := make([]byte, len(data))
	for off := 0; off < len(got); {
		n, err := c.Pread(fd, got[off:], uint64(off))
		if err != nil || n == 0 {
			t.Fatalf("pread at %d = (%d, %v)", off, n, err)
		}
		off += n
	}
	if !bytes.Equal(got, data) {
		t.Fatal("large file content mismatch")
	}
}

func testFsync(t *testing.T, fs fsapi.FileSystem) {
	c := attach(t, fs)
	fd, _ := c.Open("/d", fsapi.OCreate|fsapi.OWronly|fsapi.OAppend, 0o644)
	for i := 0; i < 10; i++ {
		c.Write(fd, make([]byte, 1000))
		if err := c.Fsync(fd); err != nil {
			t.Fatalf("fsync %d: %v", i, err)
		}
	}
	st, _ := c.Fstat(fd)
	if st.Size != 10000 {
		t.Fatalf("size = %d", st.Size)
	}
}

func testManyFiles(t *testing.T, fs fsapi.FileSystem) {
	c := attach(t, fs)
	const n = 500
	for i := 0; i < n; i++ {
		if _, err := c.Create(fmt.Sprintf("/m%04d", i), 0o644); err != nil {
			t.Fatalf("create %d: %v", i, err)
		}
	}
	ents, _ := c.ReadDir("/")
	if len(ents) != n {
		t.Fatalf("%d entries, want %d", len(ents), n)
	}
	for i := 0; i < n; i++ {
		if err := c.Unlink(fmt.Sprintf("/m%04d", i)); err != nil {
			t.Fatalf("unlink %d: %v", i, err)
		}
	}
	ents, _ = c.ReadDir("/")
	if len(ents) != 0 {
		t.Fatalf("%d entries survive", len(ents))
	}
}

func testConcurrentCreates(t *testing.T, fs fsapi.FileSystem) {
	const workers, per = 4, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, _ := fs.Attach(fsapi.Root)
			for i := 0; i < per; i++ {
				if _, err := c.Create(fmt.Sprintf("/c%d-%d", w, i), 0o644); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	c := attach(t, fs)
	ents, _ := c.ReadDir("/")
	if len(ents) != workers*per {
		t.Fatalf("%d entries, want %d", len(ents), workers*per)
	}
}

func testConcurrentSharedAppends(t *testing.T, fs fsapi.FileSystem) {
	c := attach(t, fs)
	c.Create("/shared-log", 0o666)
	const workers, per = 4, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cw, _ := fs.Attach(fsapi.Root)
			fd, err := cw.Open("/shared-log", fsapi.OWronly|fsapi.OAppend, 0)
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < per; i++ {
				if _, err := cw.Write(fd, make([]byte, 64)); err != nil {
					t.Error(err)
					return
				}
			}
			cw.Fsync(fd)
			cw.Close(fd)
		}()
	}
	wg.Wait()
	st, _ := c.Stat("/shared-log")
	if st.Size != workers*per*64 {
		t.Fatalf("size = %d, want %d (lost appends)", st.Size, workers*per*64)
	}
}

func testUtimes(t *testing.T, fs fsapi.FileSystem) {
	c := attach(t, fs)
	c.Create("/u", 0o644)
	if err := c.Utimes("/u", 1234, 5678); err != nil {
		t.Fatal(err)
	}
	st, _ := c.Stat("/u")
	if st.Atime != 1234 || st.Mtime != 5678 {
		t.Fatalf("times = %d/%d", st.Atime, st.Mtime)
	}
}
