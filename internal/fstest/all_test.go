package fstest

import (
	"testing"

	"simurgh/internal/core"
	"simurgh/internal/fsapi"
	"simurgh/internal/kfs"
	"simurgh/internal/kfs/splitfs"
	"simurgh/internal/pmem"
	"simurgh/internal/vfs"
)

const devSize = 128 << 20

func TestSimurghConformance(t *testing.T) {
	RunConformance(t, func() fsapi.FileSystem {
		dev := pmem.New(devSize)
		fs, err := core.Format(dev, fsapi.Root, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return fs
	})
}

func TestSimurghRelaxedConformance(t *testing.T) {
	RunConformance(t, func() fsapi.FileSystem {
		dev := pmem.New(devSize)
		fs, err := core.Format(dev, fsapi.Root, core.Options{RelaxedWrites: true})
		if err != nil {
			t.Fatal(err)
		}
		return fs
	})
}

func TestNovaConformance(t *testing.T) {
	RunConformance(t, func() fsapi.FileSystem {
		return vfs.New(kfs.New(kfs.KindNova, pmem.New(devSize)), nil)
	})
}

func TestPMFSConformance(t *testing.T) {
	RunConformance(t, func() fsapi.FileSystem {
		return vfs.New(kfs.New(kfs.KindPMFS, pmem.New(devSize)), nil)
	})
}

func TestExtDaxConformance(t *testing.T) {
	RunConformance(t, func() fsapi.FileSystem {
		return vfs.New(kfs.New(kfs.KindExtDax, pmem.New(devSize)), nil)
	})
}

func TestSplitFSConformance(t *testing.T) {
	RunConformance(t, func() fsapi.FileSystem {
		return splitfs.New(pmem.New(devSize), nil)
	})
}
