package core

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"simurgh/internal/fsapi"
	"simurgh/internal/obs"
	"simurgh/internal/pmem"
)

// crashWorld creates a tracked device so power failures can be simulated,
// with a short line-lock timeout so waiter recovery triggers fast in tests.
func crashWorld(t *testing.T) (*pmem.Device, *FS, fsapi.Client) {
	t.Helper()
	dev := pmem.New(32 << 20)
	fs, err := Format(dev, fsapi.Root, Options{LineLockTimeout: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	dev.SetMode(pmem.ModeTracked)
	c, _ := fs.Attach(fsapi.Root)
	return dev, fs, c
}

// crashAt arms the hook to fire once at the named point.
func crashAt(fs *FS, point string) {
	fired := false
	fs.SetHooks(Hooks{CrashPoint: func(p string) bool {
		if p == point && !fired {
			fired = true
			return true
		}
		return false
	}})
}

func disarm(fs *FS) { fs.SetHooks(Hooks{}) }

// remount simulates a full power failure + recovery mount.
func remount(t *testing.T, dev *pmem.Device) (*FS, *RecoveryStats, fsapi.Client) {
	t.Helper()
	dev.Crash()
	fs, stats, err := Mount(dev, Options{LineLockTimeout: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	c, _ := fs.Attach(fsapi.Root)
	return fs, stats, c
}

func TestCrashDuringCreateBeforeSlot(t *testing.T) {
	// Crash after the inode and entry are allocated but before the slot
	// store: the file must not exist, and the leaked objects must be
	// reclaimed by recovery (Fig 5a: "the file is not created and no crash
	// recovery is needed; the allocated objects can be reclaimed").
	dev, fs, c := crashWorld(t)
	crashAt(fs, "create.before-slot")
	if _, err := c.Create("/victim", 0o644); !errors.Is(err, ErrCrashed) {
		t.Fatalf("err = %v, want ErrCrashed", err)
	}
	_, stats, c2 := remount(t, dev)
	if _, err := c2.Stat("/victim"); !errors.Is(err, fsapi.ErrNotExist) {
		t.Fatalf("half-created file visible after recovery: %v", err)
	}
	if stats.Reclaimed == 0 {
		t.Fatal("leaked create objects not reclaimed")
	}
	// The name must be creatable afterwards.
	if _, err := c2.Create("/victim", 0o644); err != nil {
		t.Fatalf("create after recovery: %v", err)
	}
}

func TestCrashDuringCreateAfterSlot(t *testing.T) {
	// Crash after the slot store but before the dirty bits clear: the file
	// exists; recovery completes the creation.
	dev, fs, c := crashWorld(t)
	crashAt(fs, "create.after-slot")
	if _, err := c.Create("/kept", 0o644); !errors.Is(err, ErrCrashed) {
		t.Fatalf("err = %v", err)
	}
	// NOTE: the slot store was persisted before the crash point, so the
	// entry survives a power failure.
	_, stats, c2 := remount(t, dev)
	if _, err := c2.Stat("/kept"); err != nil {
		t.Fatalf("completed create lost: %v", err)
	}
	if stats.FixedCreates == 0 {
		t.Fatal("recovery did not report completing the create")
	}
	fd, err := c2.Open("/kept", fsapi.OWronly, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Write(fd, []byte("works")); err != nil {
		t.Fatal(err)
	}
}

func TestCrashDuringCreateRecoveredByNextAccessor(t *testing.T) {
	// Same as above but without a remount: the next process that touches
	// the line completes the create lazily (recovery-on-access), after the
	// waiter clears the stuck busy bit.
	_, fs, c := crashWorld(t)
	crashAt(fs, "create.after-slot")
	if _, err := c.Create("/lazy", 0o644); !errors.Is(err, ErrCrashed) {
		t.Fatalf("err = %v", err)
	}
	disarm(fs)
	c2, _ := fs.Attach(fsapi.Root)
	// The line lock is still held by the "dead" process; a create on the
	// same line must steal it after the timeout and proceed.
	done := make(chan error, 1)
	go func() { _, err := c2.Stat("/lazy"); done <- err }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("stat after lazy recovery: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("line never recovered")
	}
	// The lookup above repaired the entry lock-free; the dead holder's busy
	// bit is still set. A mutation on the same line must time out, perform
	// the waiter-side recovery, and all of it must be visible in the
	// instrumentation.
	line := lineOf(fnv32("lazy"))
	sibling := ""
	for i := 0; sibling == ""; i++ {
		if cand := fmt.Sprintf("lazy-sibling-%d", i); lineOf(fnv32(cand)) == line {
			sibling = "/" + cand
		}
	}
	done2 := make(chan error, 1)
	go func() { _, err := c2.Create(sibling, 0o644); done2 <- err }()
	select {
	case err := <-done2:
		if err != nil {
			t.Fatalf("create on jammed line: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("jammed line never recovered for the mutation")
	}
	s := fs.Stats()
	if s.Events[obs.EvLineLockTimeout] == 0 {
		t.Error("line-lock timeout not counted")
	}
	if s.Events[obs.EvWaiterRecovery] == 0 {
		t.Error("waiter-performs-recovery not counted")
	}
	if s.LockWaits[obs.LockLine].Waits == 0 {
		t.Error("contended line wait not counted")
	}
}

func TestCrashDuringDeleteCompletedOnAccess(t *testing.T) {
	// Crash mid-delete, after the entry was invalidated: the next process
	// touching the line sees the invalid entry and finishes the deletion.
	dev, fs, c := crashWorld(t)
	if _, err := c.Create("/doomed", 0o644); err != nil {
		t.Fatal(err)
	}
	crashAt(fs, "delete.after-invalidate")
	if err := c.Unlink("/doomed"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("err = %v", err)
	}
	_, _, c2 := remount(t, dev)
	if _, err := c2.Stat("/doomed"); !errors.Is(err, fsapi.ErrNotExist) {
		t.Fatalf("half-deleted file visible: %v", err)
	}
	if _, err := c2.Create("/doomed", 0o644); err != nil {
		t.Fatalf("recreate after recovered delete: %v", err)
	}
}

func TestCrashDuringDeleteAfterEntryZero(t *testing.T) {
	dev, fs, c := crashWorld(t)
	c.Create("/gone", 0o644)
	crashAt(fs, "delete.after-entry-zero")
	if err := c.Unlink("/gone"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("err = %v", err)
	}
	_, _, c2 := remount(t, dev)
	if _, err := c2.Stat("/gone"); !errors.Is(err, fsapi.ErrNotExist) {
		t.Fatalf("file visible after crashed delete: %v", err)
	}
}

func TestCrashDuringRenameAfterShadow(t *testing.T) {
	// Crash after the shadow entry exists but before the old slot is swung:
	// the rename never happened.
	dev, fs, c := crashWorld(t)
	c.Create("/orig", 0o644)
	crashAt(fs, "rename.after-shadow")
	if err := c.Rename("/orig", "/moved"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("err = %v", err)
	}
	_, _, c2 := remount(t, dev)
	if _, err := c2.Stat("/orig"); err != nil {
		t.Fatalf("original lost in unfinished rename: %v", err)
	}
	if _, err := c2.Stat("/moved"); !errors.Is(err, fsapi.ErrNotExist) {
		t.Fatalf("phantom destination exists: %v", err)
	}
}

func TestCrashDuringRenameAfterSwap(t *testing.T) {
	// Crash after the old slot was swung to the shadow (the deliberate
	// hash-mismatch state): recovery must complete the rename.
	dev, fs, c := crashWorld(t)
	fd, _ := c.Create("/swap-src", 0o644)
	c.Write(fd, []byte("payload"))
	c.Close(fd)
	crashAt(fs, "rename.after-swap")
	if err := c.Rename("/swap-src", "/swap-dst"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("err = %v", err)
	}
	_, stats, c2 := remount(t, dev)
	if _, err := c2.Stat("/swap-dst"); err != nil {
		t.Fatalf("renamed file lost after mid-rename crash: %v", err)
	}
	if _, err := c2.Stat("/swap-src"); !errors.Is(err, fsapi.ErrNotExist) {
		t.Fatalf("old name visible after recovered rename: %v", err)
	}
	if stats.FixedRenames == 0 {
		t.Fatal("recovery did not report completing a rename")
	}
	fd, err := c2.Open("/swap-dst", fsapi.ORdonly, 0)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	n, _ := c2.Read(fd, buf)
	if string(buf[:n]) != "payload" {
		t.Fatalf("content after recovered rename = %q", buf[:n])
	}
}

func TestCrashDuringRenameAfterPlace(t *testing.T) {
	// Crash after the shadow is placed in the new line but before the old
	// slot is cleared: both slots point at the entry; recovery removes the
	// stale one.
	dev, fs, c := crashWorld(t)
	c.Create("/place-a", 0o644)
	crashAt(fs, "rename.after-place")
	if err := c.Rename("/place-a", "/place-b"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("err = %v", err)
	}
	_, _, c2 := remount(t, dev)
	if _, err := c2.Stat("/place-b"); err != nil {
		t.Fatalf("renamed file lost: %v", err)
	}
	if _, err := c2.Stat("/place-a"); !errors.Is(err, fsapi.ErrNotExist) {
		t.Fatalf("old name visible: %v", err)
	}
	ents, _ := c2.ReadDir("/")
	if len(ents) != 1 {
		t.Fatalf("directory has %d entries after recovery, want 1: %+v", len(ents), ents)
	}
}

func TestCrashDuringCrossDirRenameAfterLog(t *testing.T) {
	// Crash right after the log entry is written: nothing moved yet, so
	// recovery rolls the rename back.
	dev, fs, c := crashWorld(t)
	c.Mkdir("/s", 0o755)
	c.Mkdir("/d", 0o755)
	c.Create("/s/file", 0o644)
	crashAt(fs, "xrename.after-log")
	if err := c.Rename("/s/file", "/d/file"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("err = %v", err)
	}
	_, stats, c2 := remount(t, dev)
	if _, err := c2.Stat("/s/file"); err != nil {
		t.Fatalf("source lost in rolled-back cross-dir rename: %v", err)
	}
	if _, err := c2.Stat("/d/file"); !errors.Is(err, fsapi.ErrNotExist) {
		t.Fatalf("destination exists after rollback: %v", err)
	}
	if stats.FixedLogs == 0 {
		t.Fatal("recovery did not process the rename log")
	}
}

func TestCrashDuringCrossDirRenameAfterInsert(t *testing.T) {
	// Crash after the shadow reached the destination: recovery rolls
	// forward; the file lives only at the destination.
	dev, fs, c := crashWorld(t)
	c.Mkdir("/s2", 0o755)
	c.Mkdir("/d2", 0o755)
	fd, _ := c.Create("/s2/file", 0o644)
	c.Write(fd, []byte("xd"))
	c.Close(fd)
	crashAt(fs, "xrename.after-insert")
	if err := c.Rename("/s2/file", "/d2/file"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("err = %v", err)
	}
	fs2, stats, c2 := remount(t, dev)
	if _, err := c2.Stat("/d2/file"); err != nil {
		t.Fatalf("destination lost in rolled-forward rename: %v", err)
	}
	if _, err := c2.Stat("/s2/file"); !errors.Is(err, fsapi.ErrNotExist) {
		t.Fatalf("source still visible after roll-forward: %v", err)
	}
	if stats.FixedLogs == 0 {
		t.Fatal("rename log not processed")
	}
	// Mount-time recovery must show up in the remounted registry too.
	s := fs2.Stats()
	if s.Events[obs.EvRenameLogRecovered] == 0 {
		t.Error("rename-log recovery not counted")
	}
	if s.Events[obs.EvMountRecovery] == 0 {
		t.Error("mount recovery not counted")
	}
}

func TestCrashDuringCrossDirRenameBeforeLogClear(t *testing.T) {
	dev, fs, c := crashWorld(t)
	c.Mkdir("/s3", 0o755)
	c.Mkdir("/d3", 0o755)
	c.Create("/s3/file", 0o644)
	crashAt(fs, "xrename.before-log-clear")
	if err := c.Rename("/s3/file", "/d3/file"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("err = %v", err)
	}
	_, _, c2 := remount(t, dev)
	if _, err := c2.Stat("/d3/file"); err != nil {
		t.Fatalf("destination lost: %v", err)
	}
	if _, err := c2.Stat("/s3/file"); !errors.Is(err, fsapi.ErrNotExist) {
		t.Fatalf("source duplicated: %v", err)
	}
}

func TestCrashDuringUnlinkLeaksNoBlocks(t *testing.T) {
	// Crash between directory-entry removal and inode free: the blocks are
	// unreachable and must be returned by the recovery sweep.
	dev, fs, c := crashWorld(t)
	fd, _ := c.Create("/fat", 0o644)
	c.Write(fd, make([]byte, 64*BlockSize))
	c.Close(fd)
	crashAt(fs, "unlink.after-remove")
	if err := c.Unlink("/fat"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("err = %v", err)
	}
	fs2, stats, _ := remount(t, dev)
	if stats.Reclaimed == 0 {
		t.Fatal("orphaned inode not reclaimed")
	}
	// All 64 data blocks must be free again: allocate them.
	total := fs2.FreeBlocks()
	if total < 64 {
		t.Fatalf("only %d free blocks after recovery", total)
	}
}

func TestWaiterRecoversStuckLineDirectly(t *testing.T) {
	// A process dies holding a line busy bit with no pending operation: the
	// waiter must clear it and proceed.
	_, fs, c := crashWorld(t)
	c.Create("/a-file", 0o644)
	// Manually jam the line of a name we'll create next.
	first := fs.inoData(fs.rootInode)
	line := lineOf(fnv32("jammed-name"))
	fs.lockLine(first, line)
	done := make(chan error, 1)
	go func() {
		_, err := c.Create("/jammed-name", 0o644)
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("create after stuck lock: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter never recovered the stuck line lock")
	}
	s := fs.Stats()
	if s.Events[obs.EvLineLockTimeout] == 0 {
		t.Error("busy-flag timeout not counted")
	}
	if s.Events[obs.EvWaiterRecovery] == 0 {
		t.Error("waiter recovery not counted")
	}
}

func TestFullCrashRecoveryPreservesTree(t *testing.T) {
	// Build a real tree, crash without unmounting, recover, verify
	// everything — including file contents.
	dev, fs, c := crashWorld(t)
	type file struct {
		path string
		data []byte
	}
	var files []file
	rng := rand.New(rand.NewSource(7))
	for d := 0; d < 5; d++ {
		dir := fmt.Sprintf("/dir%d", d)
		if err := c.Mkdir(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for f := 0; f < 20; f++ {
			p := fmt.Sprintf("%s/file%02d", dir, f)
			data := make([]byte, rng.Intn(20000))
			rng.Read(data)
			fd, err := c.Create(p, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := c.Write(fd, data); err != nil {
				t.Fatal(err)
			}
			c.Close(fd)
			files = append(files, file{p, data})
		}
	}
	c.Symlink("/dir0/file00", "/link0")
	_ = fs

	_, stats, c2 := remount(t, dev)
	if stats.WasClean {
		t.Fatal("unclean crash reported as clean")
	}
	if stats.Dirs != 6 { // root + 5
		t.Fatalf("recovered dirs = %d, want 6", stats.Dirs)
	}
	if stats.Files != 100 {
		t.Fatalf("recovered files = %d, want 100", stats.Files)
	}
	if stats.Symlinks != 1 {
		t.Fatalf("recovered symlinks = %d, want 1", stats.Symlinks)
	}
	for _, f := range files {
		fd, err := c2.Open(f.path, fsapi.ORdonly, 0)
		if err != nil {
			t.Fatalf("open %s after crash: %v", f.path, err)
		}
		buf := make([]byte, len(f.data)+1)
		n, _ := c2.Pread(fd, buf, 0)
		if n != len(f.data) {
			t.Fatalf("%s: %d bytes after crash, want %d", f.path, n, len(f.data))
		}
		for i := 0; i < n; i++ {
			if buf[i] != f.data[i] {
				t.Fatalf("%s: byte %d corrupted", f.path, i)
			}
		}
		c2.Close(fd)
	}
}

func TestRandomizedCrashRecoveryNeverCorrupts(t *testing.T) {
	// Property-style fuzz: run random metadata operations with a crash
	// injected at a random point, power-cycle, recover, and verify global
	// invariants (every surviving file statable, readable, directory
	// listable, recreate/unlink works).
	points := []string{
		"create.after-inode", "create.after-entry", "create.before-slot",
		"create.after-slot", "delete.after-invalidate",
		"delete.after-entry-zero", "unlink.after-remove",
		"rename.after-shadow", "rename.after-swap", "rename.after-place",
		"xrename.after-log", "xrename.after-insert",
		"xrename.before-log-clear", "dir.extend",
	}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		dev := pmem.New(32 << 20)
		fs, err := Format(dev, fsapi.Root, Options{LineLockTimeout: 20 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		c, _ := fs.Attach(fsapi.Root)
		c.Mkdir("/d1", 0o755)
		c.Mkdir("/d2", 0o755)
		live := map[string]bool{}
		for i := 0; i < 30; i++ {
			p := fmt.Sprintf("/d1/f%d", i)
			c.Create(p, 0o644)
			live[p] = true
		}
		dev.SetMode(pmem.ModeTracked)

		// Arm a random crash point, then run random ops until it fires.
		point := points[rng.Intn(len(points))]
		crashAt(fs, point)
		crashed := false
		for i := 0; i < 60 && !crashed; i++ {
			switch rng.Intn(4) {
			case 0:
				p := fmt.Sprintf("/d1/n%d", i)
				if _, err := c.Create(p, 0o644); errors.Is(err, ErrCrashed) {
					crashed = true
				} else if err == nil {
					live[p] = true
				}
			case 1:
				for p := range live {
					err := c.Unlink(p)
					if errors.Is(err, ErrCrashed) {
						crashed = true
						delete(live, p) // outcome unknown; drop from model
					} else if err == nil {
						delete(live, p)
					}
					break
				}
			case 2:
				for p := range live {
					np := fmt.Sprintf("/d1/r%d", i)
					err := c.Rename(p, np)
					if errors.Is(err, ErrCrashed) {
						crashed = true
						delete(live, p) // either name may survive
					} else if err == nil {
						delete(live, p)
						live[np] = true
					}
					break
				}
			case 3:
				for p := range live {
					np := fmt.Sprintf("/d2/x%d", i)
					err := c.Rename(p, np)
					if errors.Is(err, ErrCrashed) {
						crashed = true
						delete(live, p)
					} else if err == nil {
						delete(live, p)
						live[np] = true
					}
					break
				}
			}
		}

		dev.Crash()
		fs2, _, err := Mount(dev, Options{LineLockTimeout: 20 * time.Millisecond})
		if err != nil {
			t.Fatalf("trial %d (%s): mount after crash: %v", trial, point, err)
		}
		c2, _ := fs2.Attach(fsapi.Root)
		// Invariant 1: all files the model knows survived must be intact.
		for p := range live {
			if _, err := c2.Stat(p); err != nil {
				t.Fatalf("trial %d (%s): %s lost: %v", trial, point, p, err)
			}
		}
		// Invariant 2: directories are listable and consistent with stat.
		for _, dir := range []string{"/", "/d1", "/d2"} {
			ents, err := c2.ReadDir(dir)
			if err != nil {
				t.Fatalf("trial %d (%s): readdir %s: %v", trial, point, dir, err)
			}
			for _, e := range ents {
				if _, err := c2.Stat(dir + "/" + e.Name); err != nil {
					t.Fatalf("trial %d (%s): listed entry %s/%s not statable: %v",
						trial, point, dir, e.Name, err)
				}
			}
		}
		// Invariant 3: the FS still works.
		if _, err := c2.Create("/d1/post-crash", 0o644); err != nil {
			t.Fatalf("trial %d (%s): create after recovery: %v", trial, point, err)
		}
		if err := c2.Unlink("/d1/post-crash"); err != nil {
			t.Fatalf("trial %d (%s): unlink after recovery: %v", trial, point, err)
		}
	}
}

func TestRecoveryStatsElapsed(t *testing.T) {
	dev, _, c := crashWorld(t)
	for i := 0; i < 50; i++ {
		c.Create(fmt.Sprintf("/f%d", i), 0o644)
	}
	_, stats, _ := remount(t, dev)
	if stats.Elapsed <= 0 {
		t.Fatal("recovery elapsed time not measured")
	}
	if stats.Files != 50 {
		t.Fatalf("files = %d", stats.Files)
	}
}
