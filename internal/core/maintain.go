package core

import (
	"simurgh/internal/alloc"
	"simurgh/internal/fsapi"
	"simurgh/internal/pmem"
)

// Maintenance (§4.3): the delete protocol's final step — freeing hash
// blocks that became empty — is optional in the paper ("crashing before
// that will not impose any inconsistency") and leftover rename shadows are
// reclaimed "during the next file system maintenance check". This file
// implements that check: CompactDir frees empty trailing hash blocks of one
// directory, and Maintain runs it over the whole tree.

// MaintainStats reports what a maintenance pass reclaimed.
type MaintainStats struct {
	DirsVisited uint64
	BlocksFreed uint64
}

// compactDir frees the empty tail of a directory's hash-block chain. The
// whole directory is quiesced (every line locked) for the duration, so it
// is safe against concurrent creates that would otherwise take slots in the
// blocks being freed.
func (fs *FS) compactDir(first pmem.Ptr, st *MaintainStats) {
	ds := fs.ensureIndex(first)
	for line := 0; line < NLines; line++ {
		fs.lockLine(first, line)
	}
	defer func() {
		for line := NLines - 1; line >= 0; line-- {
			fs.unlockLine(first, line)
		}
	}()
	// Also sweep half-done operations while the directory is quiet.
	for line := 0; line < NLines; line++ {
		fs.repairLine(first, line, nil)
	}

	// Walk the chain; find the longest empty suffix past the first block.
	var chain []pmem.Ptr
	for b := first; !b.IsNull(); b = fs.nextBlock(b) {
		chain = append(chain, b)
	}
	empty := func(b pmem.Ptr) bool {
		for i := 0; i < NLines*SlotsPerLine; i++ {
			if fs.dev.AtomicLoad64(uint64(b)+dirSlotsOff+uint64(i)*8) != 0 {
				return false
			}
		}
		return true
	}
	keep := len(chain)
	for keep > 1 && empty(chain[keep-1]) {
		keep--
	}
	if keep == len(chain) {
		return
	}
	// Unlink the suffix: one persisted pointer store detaches all of it,
	// then the blocks are returned to the allocator.
	last := chain[keep-1]
	fs.dev.AtomicStore64(uint64(last)+dirNextOff, 0)
	fs.dev.Persist(uint64(last)+dirNextOff, 8)
	for _, b := range chain[keep:] {
		fs.oa.Free(ClassDirBlock, b)
		st.BlocksFreed++
	}
	// Fix the volatile index: drop the freed blocks and their free slots.
	ds.blocks = ds.blocks[:0]
	ds.blocks = append(ds.blocks, chain[:keep]...)
	freed := map[pmem.Ptr]bool{}
	for _, b := range chain[keep:] {
		freed[b] = true
	}
	inFreed := func(slot uint64) bool {
		for b := range freed {
			if slot >= uint64(b) && slot < uint64(b)+DirBlockSize {
				return true
			}
		}
		return false
	}
	for line := 0; line < NLines; line++ {
		l := &ds.lines[line]
		l.mu.Lock()
		kept := l.free[:0]
		for _, s := range l.free {
			if !inFreed(s) {
				kept = append(kept, s)
			}
		}
		l.free = kept
		l.mu.Unlock()
	}
}

// Maintain walks the whole tree performing the paper's maintenance check:
// compacting directory chains and completing any leftover half-done
// operations. It can run concurrently with normal operation (each directory
// is quiesced only while it is being compacted).
func (fs *FS) Maintain() MaintainStats {
	var st MaintainStats
	fs.maintainDir(fs.rootInode, &st, map[pmem.Ptr]bool{})
	return st
}

func (fs *FS) maintainDir(ino pmem.Ptr, st *MaintainStats, seen map[pmem.Ptr]bool) {
	if seen[ino] || !fs.plausible(ino, InodeSize) {
		return
	}
	seen[ino] = true
	if !fsapi.IsDir(fs.inoMode(ino)) {
		return
	}
	first := fs.inoData(ino)
	if first.IsNull() {
		return
	}
	st.DirsVisited++
	fs.compactDir(first, st)
	// Recurse into subdirectories.
	d := fs.dev
	for b := first; !b.IsNull(); b = fs.nextBlock(b) {
		for i := 0; i < NLines*SlotsPerLine; i++ {
			e := pmem.Ptr(d.AtomicLoad64(uint64(b) + dirSlotsOff + uint64(i)*8))
			if e.IsNull() || fs.oa.Flags(e)&alloc.FlagValid == 0 {
				continue
			}
			child := pmem.Ptr(d.Load64(uint64(e) + feInodeOff))
			if !child.IsNull() {
				fs.maintainDir(child, st, seen)
			}
		}
	}
}
