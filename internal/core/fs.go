package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"simurgh/internal/alloc"
	"simurgh/internal/cost"
	"simurgh/internal/fsapi"
	"simurgh/internal/obs"
	"simurgh/internal/pmem"
)

// ErrCrashed is returned by an operation aborted at an injected crash point,
// emulating the death of the calling process mid-operation.
var ErrCrashed = errors.New("simurgh: simulated process crash")

// Hooks allows tests to inject process crashes at named points inside
// metadata operations. CrashPoint returns true to "kill" the process there:
// the operation stops immediately, leaving NVMM (and any held busy-wait
// locks) exactly as they were — recovery by other processes is then
// exercised for real.
type Hooks struct {
	CrashPoint func(point string) bool
}

// Options configures Format and Mount.
type Options struct {
	// RelaxedWrites disables the per-file exclusive write lock, as in the
	// "relaxed" Simurgh variant of Fig. 7k (the application coordinates
	// writers itself).
	RelaxedWrites bool
	// LineLockTimeout is how long a process busy-waits on a directory line
	// lock before assuming the holder crashed and running recovery.
	LineLockTimeout time.Duration
	// Cost is the per-call CPU cost model; nil charges nothing.
	Cost *cost.Model
	// Shards overrides the volatile lock/dir sharding (defaults to 64).
	Shards int
	// Now overrides the clock (tests); defaults to time.Now().UnixNano.
	Now func() int64
	// Obs is the per-operation observability sink; nil creates a fresh
	// registry at the default sample period (see obs.DefaultSamplePeriod).
	Obs *obs.Registry
}

const defaultLineLockTimeout = 500 * time.Millisecond

// sharded is the one generic volatile sharded-map type backing all of the
// FS's "shared DRAM" coordination state: file locks, open-file references
// and per-directory state are all instances of it. Shards are selected by
// key, values are created on demand, and every shard counts how many lock
// acquisitions found the shard already held so Stats() can expose
// contention per map.
type sharded[V any] struct {
	name   string
	newV   func() V
	shards []shardOf[V]
	mask   uint64 // len(shards)-1; the count is rounded up to a power of two
}

// shardOf is one mutex-protected slice of a sharded map. The contention
// counters are plain words mutated only while holding mu, so counting
// costs no extra atomics on the hot path; stats() takes each shard's lock
// to read them. The trailing pad keeps adjacent shards off one cache line
// (they would otherwise false-share under exactly the load the counters
// are meant to measure).
type shardOf[V any] struct {
	mu        sync.Mutex
	m         map[pmem.Ptr]V
	gets      uint64
	contended uint64
	_         [24]byte
}

func newSharded[V any](name string, n int, newV func() V) sharded[V] {
	p := 1
	for p < n {
		p <<= 1
	}
	s := sharded[V]{name: name, newV: newV, shards: make([]shardOf[V], p), mask: uint64(p - 1)}
	for i := range s.shards {
		s.shards[i].m = make(map[pmem.Ptr]V)
	}
	return s
}

func (s *sharded[V]) shard(key pmem.Ptr) *shardOf[V] {
	return &s.shards[uint64(key)>>7&s.mask]
}

// lock acquires the shard mutex, counting acquisitions that had to wait.
func (sh *shardOf[V]) lock() {
	if sh.mu.TryLock() {
		sh.gets++
		return
	}
	sh.mu.Lock()
	sh.gets++
	sh.contended++
}

// get returns the value for key, creating it on first use.
func (s *sharded[V]) get(key pmem.Ptr) V {
	sh := s.shard(key)
	sh.lock()
	v, ok := sh.m[key]
	if !ok {
		v = s.newV()
		sh.m[key] = v
	}
	sh.mu.Unlock()
	return v
}

// drop forgets key's value.
func (s *sharded[V]) drop(key pmem.Ptr) {
	sh := s.shard(key)
	sh.lock()
	delete(sh.m, key)
	sh.mu.Unlock()
}

// update runs f on key's entry under the shard lock. f receives the current
// value (zero V when absent) and returns the new value plus whether to keep
// the entry; returning false removes it.
func (s *sharded[V]) update(key pmem.Ptr, f func(v V, ok bool) (V, bool)) {
	sh := s.shard(key)
	sh.lock()
	v, ok := sh.m[key]
	nv, keep := f(v, ok)
	if keep {
		sh.m[key] = nv
	} else if ok {
		delete(sh.m, key)
	}
	sh.mu.Unlock()
}

// stats sums the shard counters into one named contention report.
func (s *sharded[V]) stats() obs.ShardStat {
	st := obs.ShardStat{Name: s.name}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		st.Gets += sh.gets
		st.Contended += sh.contended
		sh.mu.Unlock()
	}
	return st
}

// refEntry tracks open-file references of one inode ("shared DRAM" state):
// POSIX keeps an unlinked inode alive while descriptors reference it, so
// the final close — not the unlink — frees orphaned inodes.
type refEntry struct {
	refs   int
	orphan bool
}

// dirState is the volatile per-directory coordination state ("shared
// DRAM"): a mutex serializing chain extension plus the derived directory
// index (see dirindex.go). The persistent chain itself remains the single
// source of truth.
type dirState struct {
	extendMu sync.Mutex
	dirIndexState
}

// FS is a mounted Simurgh volume. All attached clients (processes) share it.
type FS struct {
	dev   *pmem.Device
	ba    *alloc.BlockAlloc
	oa    *alloc.ObjAlloc
	costM *cost.Model
	hooks Hooks

	relaxedWrites bool
	lineTimeout   time.Duration
	now           func() int64

	// obsR is the per-op observability sink every public operation reports
	// into (never nil on a mounted FS).
	obsR *obs.Registry

	locks sharded[*sync.RWMutex]
	dirs  sharded[*dirState]
	open  sharded[refEntry]

	// recoveryMu serializes concurrent waiter-initiated line recoveries.
	recoveryMu sync.Mutex
	// recStats, when set, collects fixes performed by index builds during
	// the mount-time recovery scan.
	recStats atomic.Pointer[RecoveryStats]

	rootInode pmem.Ptr

	// attach counter for shard hints.
	attached sync.Map // *Client -> struct{}
}

func classConfigs() []alloc.ClassConfig {
	mk := func(class int, size, segBlocks uint64) alloc.ClassConfig {
		return alloc.ClassConfig{
			ObjSize:   size,
			SegBlocks: segBlocks,
			HeadOff:   sbClassHeadOff + uint64(class)*8,
		}
	}
	return []alloc.ClassConfig{
		mk(ClassInode, InodeSize, 8),
		mk(ClassDirBlock, DirBlockSize, 16),
		mk(ClassFileEntry, FileEntrySize, 8),
		mk(ClassExtent, ExtentSize, 8),
		mk(ClassBlob, BlobSize, 8),
	}
}

func (o *Options) fill() {
	if o.LineLockTimeout == 0 {
		o.LineLockTimeout = defaultLineLockTimeout
	}
	if o.Shards == 0 {
		o.Shards = 64
	}
	if o.Now == nil {
		o.Now = func() int64 { return time.Now().UnixNano() }
	}
}

func newFS(dev *pmem.Device, opts Options) (*FS, error) {
	opts.fill()
	nBlocks := dev.Size()/BlockSize - 1
	if nBlocks < 16 {
		return nil, fmt.Errorf("core: device too small (%d bytes)", dev.Size())
	}
	ba := alloc.NewBlockAlloc(dev, BlockSize, 1, nBlocks, 2*maxProcs())
	oa, err := alloc.NewObjAlloc(dev, ba, classConfigs(), 2*maxProcs())
	if err != nil {
		return nil, err
	}
	obsR := opts.Obs
	if obsR == nil {
		obsR = obs.NewRegistry()
	}
	dev.SetFenceObserver(obsR)
	ba.SetStealHook(func() { obsR.Event(obs.EvSegLockSteal) })
	fs := &FS{
		dev:           dev,
		ba:            ba,
		oa:            oa,
		costM:         opts.Cost,
		relaxedWrites: opts.RelaxedWrites,
		lineTimeout:   opts.LineLockTimeout,
		now:           opts.Now,
		obsR:          obsR,
		locks:         newSharded("locks", opts.Shards, func() *sync.RWMutex { return new(sync.RWMutex) }),
		dirs:          newSharded("dirs", opts.Shards, func() *dirState { return new(dirState) }),
		open:          newSharded("refs", opts.Shards, func() refEntry { return refEntry{} }),
	}
	return fs, nil
}

// incRef registers an open descriptor on the inode. It fails if the inode
// was freed between the lock-free lookup and the open.
func (fs *FS) incRef(ino pmem.Ptr) error {
	var err error
	fs.open.update(ino, func(e refEntry, ok bool) (refEntry, bool) {
		if fs.oa.Flags(ino)&alloc.FlagValid == 0 {
			err = fsapi.ErrNotExist
			return e, ok
		}
		e.refs++
		return e, true
	})
	return err
}

// decRef drops one open reference; the last close of an orphaned (fully
// unlinked) inode frees it.
func (fs *FS) decRef(ino pmem.Ptr) {
	var free bool
	fs.open.update(ino, func(e refEntry, ok bool) (refEntry, bool) {
		e.refs--
		if e.refs <= 0 {
			free = e.orphan
			return e, false
		}
		return e, true
	})
	if free {
		fs.freeInode(ino)
	}
}

// releaseOrOrphan is called when the link count reaches zero: the inode is
// freed immediately unless descriptors still reference it.
func (fs *FS) releaseOrOrphan(ino pmem.Ptr) {
	free := true
	fs.open.update(ino, func(e refEntry, ok bool) (refEntry, bool) {
		if ok && e.refs > 0 {
			e.orphan = true
			free = false
			return e, true
		}
		return e, ok
	})
	if free {
		fs.freeInode(ino)
	}
}

func maxProcs() int {
	// Segment/shard counts follow the paper's "twice the number of cores".
	n := numCPU()
	if n < 1 {
		n = 1
	}
	return n
}

// Format initializes dev with an empty Simurgh file system owned by cred.
func Format(dev *pmem.Device, cred fsapi.Cred, opts Options) (*FS, error) {
	dev.Zero(0, BlockSize) // superblock area
	fs, err := newFS(dev, opts)
	if err != nil {
		return nil, err
	}
	d := dev
	d.Store64(sbSizeOff, dev.Size())
	d.Store64(sbBlockSizeOff, BlockSize)
	d.Store64(sbVersionOff, sbVersion)
	d.Store64(sbEpochOff, 1)
	d.Persist(0, BlockSize)

	// Root inode + first directory block.
	root, err := fs.newInode(cred, fsapi.ModeDir|0o755, 0)
	if err != nil {
		return nil, err
	}
	first, err := fs.oa.Alloc(ClassDirBlock, 0)
	if err != nil {
		return nil, err
	}
	fs.oa.ClearDirty(first)
	d.Store64(uint64(root)+inoDataOff, uint64(first))
	d.Store32(uint64(root)+inoNlinkOff, 2)
	d.Persist(uint64(root), InodeSize)
	fs.oa.ClearDirty(root)

	d.Store64(sbRootInodeOff, uint64(root))
	d.Store64(sbCleanOff, 1)
	d.Store64(sbMagicOff, sbMagic)
	d.Persist(0, BlockSize)
	fs.rootInode = root
	// Mark the volume as in use.
	d.Store64(sbCleanOff, 0)
	d.Persist(sbCleanOff, 8)
	return fs, nil
}

// Mount opens an existing volume. If the previous shutdown was unclean, the
// full mark-and-sweep recovery runs first; in all cases the volatile
// allocator state is rebuilt by scanning the persistent structures, exactly
// as §4.3 describes for initialization.
func Mount(dev *pmem.Device, opts Options) (*FS, *RecoveryStats, error) {
	if dev.Load64(sbMagicOff) != sbMagic {
		return nil, nil, fmt.Errorf("core: not a Simurgh volume")
	}
	if dev.Load64(sbVersionOff) != sbVersion {
		return nil, nil, fmt.Errorf("core: unsupported version %d", dev.Load64(sbVersionOff))
	}
	fs, err := newFS(dev, opts)
	if err != nil {
		return nil, nil, err
	}
	fs.rootInode = pmem.Ptr(dev.Load64(sbRootInodeOff))
	clean := dev.Load64(sbCleanOff) == 1
	stats, err := fs.recoverAll(!clean)
	if err != nil {
		return nil, nil, err
	}
	dev.AtomicAdd64(sbEpochOff, 1)
	dev.Store64(sbCleanOff, 0)
	dev.Persist(sbCleanOff, 8)
	return fs, stats, nil
}

// Unmount marks the volume cleanly shut down.
func (fs *FS) Unmount() {
	fs.dev.Store64(sbCleanOff, 1)
	fs.dev.Persist(sbCleanOff, 8)
}

// Device returns the underlying NVMM device.
func (fs *FS) Device() *pmem.Device { return fs.dev }

// SetHooks installs crash-injection hooks (tests only).
func (fs *FS) SetHooks(h Hooks) { fs.hooks = h }

// crash reports whether an injected crash fires at the named point.
func (fs *FS) crash(point string) bool {
	return fs.hooks.CrashPoint != nil && fs.hooks.CrashPoint(point)
}

// FreeBlocks reports the allocator's free data blocks.
func (fs *FS) FreeBlocks() uint64 { return fs.ba.FreeBlocks() }

// Obs returns the FS's observability registry (for sample-period and trace
// control; never nil).
func (fs *FS) Obs() *obs.Registry { return fs.obsR }

// Stats snapshots the per-operation observability counters together with
// volatile-shard contention, the device-global NVMM traffic totals, and
// point-in-time subsystem gauges (block-segment occupancy, slab flag
// counts, device levels). Snapshots are plain values; diff two with Sub to
// scope them to a window. The gauges walk the slab chains, so Stats
// belongs on polling paths, not inside operations.
func (fs *FS) Stats() obs.Snapshot {
	s := fs.obsR.Snapshot()
	s.Shards = []obs.ShardStat{fs.locks.stats(), fs.open.stats(), fs.dirs.stats()}
	s.Device = toDelta(fs.dev.StatsSnapshot())
	s.Gauges = fs.gauges()
	return s
}

var className = [numClasses]string{
	ClassInode: "inode", ClassDirBlock: "dirblock", ClassFileEntry: "fentry",
	ClassExtent: "extent", ClassBlob: "blob",
}

// gauges assembles the subsystem levels: block-allocator occupancy
// (aggregate plus the worst-occupied segment), per-class slab flag counts,
// segment-lock steals, and device levels.
func (fs *FS) gauges() []obs.Gauge {
	g := make([]obs.Gauge, 0, 8+6*numClasses)
	_, nBlocks := fs.ba.Range()
	segs := fs.ba.SegStats()
	var free, minFree uint64
	minFree = ^uint64(0)
	for _, seg := range segs {
		free += seg.Free
		if seg.Free < minFree {
			minFree = seg.Free
		}
	}
	g = append(g,
		obs.Gauge{Name: "alloc.blocks_total", Value: nBlocks},
		obs.Gauge{Name: "alloc.blocks_free", Value: free},
		obs.Gauge{Name: "alloc.segments", Value: uint64(len(segs))},
		obs.Gauge{Name: "alloc.seg_min_free_blocks", Value: minFree},
		obs.Gauge{Name: "alloc.seg_lock_steals", Value: fs.ba.Steals()},
	)
	for class := 0; class < numClasses; class++ {
		st := fs.oa.ClassStats(class)
		p := "slab." + className[class] + "."
		g = append(g,
			obs.Gauge{Name: p + "segments", Value: st.Segments},
			obs.Gauge{Name: p + "objects", Value: st.Objects},
			obs.Gauge{Name: p + "valid", Value: st.Valid},
			obs.Gauge{Name: p + "dirty", Value: st.Dirty},
			obs.Gauge{Name: p + "free", Value: st.Free},
			obs.Gauge{Name: p + "free_listed", Value: st.FreeListed},
		)
	}
	for _, dg := range fs.dev.Gauges() {
		g = append(g, obs.Gauge{Name: "pmem." + dg.Name, Value: dg.Value})
	}
	return g
}

// toDelta converts a device stats snapshot into the obs traffic type.
func toDelta(s pmem.StatsSnapshot) obs.Delta {
	return obs.Delta{
		LoadBytes:  s.LoadBytes,
		StoreBytes: s.StoreBytes,
		NTBytes:    s.NTBytes,
		Flushes:    s.Flushes,
		Fences:     s.Fences,
	}
}

// fileLock returns the volatile read/write lock of an inode.
func (fs *FS) fileLock(ino pmem.Ptr) *sync.RWMutex {
	return fs.locks.get(ino)
}

// lockFileExcl takes l exclusively, timing the wait if the first try does
// not succeed. Uncontended acquisitions cost one TryLock (a single CAS, as
// cheap as the plain Lock fast path) and record nothing.
func (fs *FS) lockFileExcl(l *sync.RWMutex) {
	if l.TryLock() {
		return
	}
	start := time.Now()
	l.Lock()
	ns := uint64(time.Since(start).Nanoseconds())
	fs.obsR.LockWait(obs.LockFile, ns)
	fs.obsR.Span(obs.SpanLockWait, 0, start, ns, false)
}

// lockFileShared is lockFileExcl for read locks.
func (fs *FS) lockFileShared(l *sync.RWMutex) {
	if l.TryRLock() {
		return
	}
	start := time.Now()
	l.RLock()
	ns := uint64(time.Since(start).Nanoseconds())
	fs.obsR.LockWait(obs.LockFile, ns)
	fs.obsR.Span(obs.SpanLockWait, 0, start, ns, false)
}

// dropFileLock forgets the volatile lock of a deleted inode.
func (fs *FS) dropFileLock(ino pmem.Ptr) {
	fs.locks.drop(ino)
}

// dirState returns the volatile coordination state of a directory,
// identified by its first hash block.
func (fs *FS) dirState(first pmem.Ptr) *dirState {
	return fs.dirs.get(first)
}

// newInode allocates and fills an inode (valid|dirty until the caller
// commits). nlink starts at 1 for files, set by the caller for dirs.
func (fs *FS) newInode(cred fsapi.Cred, mode uint32, hint uint64) (pmem.Ptr, error) {
	ino, err := fs.oa.Alloc(ClassInode, hint)
	if err != nil {
		return 0, err
	}
	d := fs.dev
	now := fs.now()
	d.Store32(uint64(ino)+inoModeOff, mode)
	d.Store32(uint64(ino)+inoUIDOff, cred.UID)
	d.Store32(uint64(ino)+inoGIDOff, cred.GID)
	d.Store32(uint64(ino)+inoNlinkOff, 1)
	d.Store64(uint64(ino)+inoSizeOff, 0)
	d.Store64(uint64(ino)+inoAtimeOff, uint64(now))
	d.Store64(uint64(ino)+inoMtimeOff, uint64(now))
	d.Store64(uint64(ino)+inoCtimeOff, uint64(now))
	d.Store64(uint64(ino)+inoDataOff, 0)
	d.Store64(uint64(ino)+inoBlocksOff, 0)
	d.Persist(uint64(ino), InodeSize)
	return ino, nil
}

// inode field helpers.

func (fs *FS) inoMode(ino pmem.Ptr) uint32  { return fs.dev.Load32(uint64(ino) + inoModeOff) }
func (fs *FS) inoUID(ino pmem.Ptr) uint32   { return fs.dev.Load32(uint64(ino) + inoUIDOff) }
func (fs *FS) inoGID(ino pmem.Ptr) uint32   { return fs.dev.Load32(uint64(ino) + inoGIDOff) }
func (fs *FS) inoNlink(ino pmem.Ptr) uint32 { return fs.dev.Load32(uint64(ino) + inoNlinkOff) }
func (fs *FS) inoSize(ino pmem.Ptr) uint64  { return fs.dev.AtomicLoad64(uint64(ino) + inoSizeOff) }
func (fs *FS) inoData(ino pmem.Ptr) pmem.Ptr {
	return pmem.Ptr(fs.dev.AtomicLoad64(uint64(ino) + inoDataOff))
}

func (fs *FS) setNlink(ino pmem.Ptr, n uint32) {
	fs.dev.Store32(uint64(ino)+inoNlinkOff, n)
	fs.dev.Persist(uint64(ino)+inoNlinkOff, 4)
}

func (fs *FS) touchMtime(ino pmem.Ptr) {
	now := uint64(fs.now())
	fs.dev.Store64(uint64(ino)+inoMtimeOff, now)
	fs.dev.Store64(uint64(ino)+inoCtimeOff, now)
	fs.dev.Persist(uint64(ino)+inoMtimeOff, 16)
}

// touchMtimeLazy flushes the time update without a fence; the caller's next
// fence commits it (timestamps need no ordering guarantee).
func (fs *FS) touchMtimeLazy(ino pmem.Ptr) {
	now := uint64(fs.now())
	fs.dev.Store64(uint64(ino)+inoMtimeOff, now)
	fs.dev.Store64(uint64(ino)+inoCtimeOff, now)
	fs.dev.Flush(uint64(ino)+inoMtimeOff, 16)
}

// statOf builds a Stat from an inode.
func (fs *FS) statOf(ino pmem.Ptr) fsapi.Stat {
	d := fs.dev
	return fsapi.Stat{
		Ino:   uint64(ino),
		Mode:  d.Load32(uint64(ino) + inoModeOff),
		UID:   d.Load32(uint64(ino) + inoUIDOff),
		GID:   d.Load32(uint64(ino) + inoGIDOff),
		Nlink: d.Load32(uint64(ino) + inoNlinkOff),
		Size:  fs.inoSize(ino),
		Atime: int64(d.Load64(uint64(ino) + inoAtimeOff)),
		Mtime: int64(d.Load64(uint64(ino) + inoMtimeOff)),
		Ctime: int64(d.Load64(uint64(ino) + inoCtimeOff)),
	}
}
