package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"simurgh/internal/alloc"
	"simurgh/internal/cost"
	"simurgh/internal/fsapi"
	"simurgh/internal/pmem"
)

// ErrCrashed is returned by an operation aborted at an injected crash point,
// emulating the death of the calling process mid-operation.
var ErrCrashed = errors.New("simurgh: simulated process crash")

// Hooks allows tests to inject process crashes at named points inside
// metadata operations. CrashPoint returns true to "kill" the process there:
// the operation stops immediately, leaving NVMM (and any held busy-wait
// locks) exactly as they were — recovery by other processes is then
// exercised for real.
type Hooks struct {
	CrashPoint func(point string) bool
}

// Options configures Format and Mount.
type Options struct {
	// RelaxedWrites disables the per-file exclusive write lock, as in the
	// "relaxed" Simurgh variant of Fig. 7k (the application coordinates
	// writers itself).
	RelaxedWrites bool
	// LineLockTimeout is how long a process busy-waits on a directory line
	// lock before assuming the holder crashed and running recovery.
	LineLockTimeout time.Duration
	// Cost is the per-call CPU cost model; nil charges nothing.
	Cost *cost.Model
	// Shards overrides the volatile lock/dir sharding (defaults to 64).
	Shards int
	// Now overrides the clock (tests); defaults to time.Now().UnixNano.
	Now func() int64
}

const defaultLineLockTimeout = 500 * time.Millisecond

type lockShard struct {
	mu sync.Mutex
	m  map[pmem.Ptr]*sync.RWMutex
}

// refShard tracks open-file references per inode ("shared DRAM" state):
// POSIX keeps an unlinked inode alive while descriptors reference it, so
// the final close — not the unlink — frees orphaned inodes.
type refShard struct {
	mu     sync.Mutex
	refs   map[pmem.Ptr]int
	orphan map[pmem.Ptr]bool
}

type dirShard struct {
	mu sync.Mutex
	m  map[pmem.Ptr]*dirState
}

// dirState is the volatile per-directory coordination state ("shared
// DRAM"): a mutex serializing chain extension plus the derived directory
// index (see dirindex.go). The persistent chain itself remains the single
// source of truth.
type dirState struct {
	extendMu sync.Mutex
	dirIndexState
}

// FS is a mounted Simurgh volume. All attached clients (processes) share it.
type FS struct {
	dev   *pmem.Device
	ba    *alloc.BlockAlloc
	oa    *alloc.ObjAlloc
	costM *cost.Model
	hooks Hooks

	relaxedWrites bool
	lineTimeout   time.Duration
	now           func() int64

	locks []lockShard
	dirs  []dirShard
	open  []refShard

	// recoveryMu serializes concurrent waiter-initiated line recoveries.
	recoveryMu sync.Mutex
	// recStats, when set, collects fixes performed by index builds during
	// the mount-time recovery scan.
	recStats atomic.Pointer[RecoveryStats]

	rootInode pmem.Ptr

	// attach counter for shard hints.
	attached sync.Map // *Client -> struct{}
}

func classConfigs() []alloc.ClassConfig {
	mk := func(class int, size, segBlocks uint64) alloc.ClassConfig {
		return alloc.ClassConfig{
			ObjSize:   size,
			SegBlocks: segBlocks,
			HeadOff:   sbClassHeadOff + uint64(class)*8,
		}
	}
	return []alloc.ClassConfig{
		mk(ClassInode, InodeSize, 8),
		mk(ClassDirBlock, DirBlockSize, 16),
		mk(ClassFileEntry, FileEntrySize, 8),
		mk(ClassExtent, ExtentSize, 8),
		mk(ClassBlob, BlobSize, 8),
	}
}

func (o *Options) fill() {
	if o.LineLockTimeout == 0 {
		o.LineLockTimeout = defaultLineLockTimeout
	}
	if o.Shards == 0 {
		o.Shards = 64
	}
	if o.Now == nil {
		o.Now = func() int64 { return time.Now().UnixNano() }
	}
}

func newFS(dev *pmem.Device, opts Options) (*FS, error) {
	opts.fill()
	nBlocks := dev.Size()/BlockSize - 1
	if nBlocks < 16 {
		return nil, fmt.Errorf("core: device too small (%d bytes)", dev.Size())
	}
	ba := alloc.NewBlockAlloc(dev, BlockSize, 1, nBlocks, 2*maxProcs())
	oa, err := alloc.NewObjAlloc(dev, ba, classConfigs(), 2*maxProcs())
	if err != nil {
		return nil, err
	}
	fs := &FS{
		dev:           dev,
		ba:            ba,
		oa:            oa,
		costM:         opts.Cost,
		relaxedWrites: opts.RelaxedWrites,
		lineTimeout:   opts.LineLockTimeout,
		now:           opts.Now,
		locks:         make([]lockShard, opts.Shards),
		dirs:          make([]dirShard, opts.Shards),
	}
	for i := range fs.locks {
		fs.locks[i].m = make(map[pmem.Ptr]*sync.RWMutex)
	}
	for i := range fs.dirs {
		fs.dirs[i].m = make(map[pmem.Ptr]*dirState)
	}
	fs.open = make([]refShard, opts.Shards)
	for i := range fs.open {
		fs.open[i].refs = make(map[pmem.Ptr]int)
		fs.open[i].orphan = make(map[pmem.Ptr]bool)
	}
	return fs, nil
}

func (fs *FS) refShard(ino pmem.Ptr) *refShard {
	return &fs.open[uint64(ino)>>7%uint64(len(fs.open))]
}

// incRef registers an open descriptor on the inode. It fails if the inode
// was freed between the lock-free lookup and the open.
func (fs *FS) incRef(ino pmem.Ptr) error {
	sh := fs.refShard(ino)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if fs.oa.Flags(ino)&alloc.FlagValid == 0 {
		return fsapi.ErrNotExist
	}
	sh.refs[ino]++
	return nil
}

// decRef drops one open reference; the last close of an orphaned (fully
// unlinked) inode frees it.
func (fs *FS) decRef(ino pmem.Ptr) {
	sh := fs.refShard(ino)
	sh.mu.Lock()
	sh.refs[ino]--
	last := sh.refs[ino] <= 0
	if last {
		delete(sh.refs, ino)
	}
	orphan := last && sh.orphan[ino]
	if orphan {
		delete(sh.orphan, ino)
	}
	sh.mu.Unlock()
	if orphan {
		fs.freeInode(ino)
	}
}

// releaseOrOrphan is called when the link count reaches zero: the inode is
// freed immediately unless descriptors still reference it.
func (fs *FS) releaseOrOrphan(ino pmem.Ptr) {
	sh := fs.refShard(ino)
	sh.mu.Lock()
	if sh.refs[ino] > 0 {
		sh.orphan[ino] = true
		sh.mu.Unlock()
		return
	}
	sh.mu.Unlock()
	fs.freeInode(ino)
}

func maxProcs() int {
	// Segment/shard counts follow the paper's "twice the number of cores".
	n := numCPU()
	if n < 1 {
		n = 1
	}
	return n
}

// Format initializes dev with an empty Simurgh file system owned by cred.
func Format(dev *pmem.Device, cred fsapi.Cred, opts Options) (*FS, error) {
	dev.Zero(0, BlockSize) // superblock area
	fs, err := newFS(dev, opts)
	if err != nil {
		return nil, err
	}
	d := dev
	d.Store64(sbSizeOff, dev.Size())
	d.Store64(sbBlockSizeOff, BlockSize)
	d.Store64(sbVersionOff, sbVersion)
	d.Store64(sbEpochOff, 1)
	d.Persist(0, BlockSize)

	// Root inode + first directory block.
	root, err := fs.newInode(cred, fsapi.ModeDir|0o755, 0)
	if err != nil {
		return nil, err
	}
	first, err := fs.oa.Alloc(ClassDirBlock, 0)
	if err != nil {
		return nil, err
	}
	fs.oa.ClearDirty(first)
	d.Store64(uint64(root)+inoDataOff, uint64(first))
	d.Store32(uint64(root)+inoNlinkOff, 2)
	d.Persist(uint64(root), InodeSize)
	fs.oa.ClearDirty(root)

	d.Store64(sbRootInodeOff, uint64(root))
	d.Store64(sbCleanOff, 1)
	d.Store64(sbMagicOff, sbMagic)
	d.Persist(0, BlockSize)
	fs.rootInode = root
	// Mark the volume as in use.
	d.Store64(sbCleanOff, 0)
	d.Persist(sbCleanOff, 8)
	return fs, nil
}

// Mount opens an existing volume. If the previous shutdown was unclean, the
// full mark-and-sweep recovery runs first; in all cases the volatile
// allocator state is rebuilt by scanning the persistent structures, exactly
// as §4.3 describes for initialization.
func Mount(dev *pmem.Device, opts Options) (*FS, *RecoveryStats, error) {
	if dev.Load64(sbMagicOff) != sbMagic {
		return nil, nil, fmt.Errorf("core: not a Simurgh volume")
	}
	if dev.Load64(sbVersionOff) != sbVersion {
		return nil, nil, fmt.Errorf("core: unsupported version %d", dev.Load64(sbVersionOff))
	}
	fs, err := newFS(dev, opts)
	if err != nil {
		return nil, nil, err
	}
	fs.rootInode = pmem.Ptr(dev.Load64(sbRootInodeOff))
	clean := dev.Load64(sbCleanOff) == 1
	stats, err := fs.recoverAll(!clean)
	if err != nil {
		return nil, nil, err
	}
	dev.AtomicAdd64(sbEpochOff, 1)
	dev.Store64(sbCleanOff, 0)
	dev.Persist(sbCleanOff, 8)
	return fs, stats, nil
}

// Unmount marks the volume cleanly shut down.
func (fs *FS) Unmount() {
	fs.dev.Store64(sbCleanOff, 1)
	fs.dev.Persist(sbCleanOff, 8)
}

// Device returns the underlying NVMM device.
func (fs *FS) Device() *pmem.Device { return fs.dev }

// SetHooks installs crash-injection hooks (tests only).
func (fs *FS) SetHooks(h Hooks) { fs.hooks = h }

// crash reports whether an injected crash fires at the named point.
func (fs *FS) crash(point string) bool {
	return fs.hooks.CrashPoint != nil && fs.hooks.CrashPoint(point)
}

// FreeBlocks reports the allocator's free data blocks.
func (fs *FS) FreeBlocks() uint64 { return fs.ba.FreeBlocks() }

// fileLock returns the volatile read/write lock of an inode.
func (fs *FS) fileLock(ino pmem.Ptr) *sync.RWMutex {
	sh := &fs.locks[uint64(ino)>>7%uint64(len(fs.locks))]
	sh.mu.Lock()
	l := sh.m[ino]
	if l == nil {
		l = new(sync.RWMutex)
		sh.m[ino] = l
	}
	sh.mu.Unlock()
	return l
}

// dropFileLock forgets the volatile lock of a deleted inode.
func (fs *FS) dropFileLock(ino pmem.Ptr) {
	sh := &fs.locks[uint64(ino)>>7%uint64(len(fs.locks))]
	sh.mu.Lock()
	delete(sh.m, ino)
	sh.mu.Unlock()
}

// dirState returns the volatile coordination state of a directory,
// identified by its first hash block.
func (fs *FS) dirState(first pmem.Ptr) *dirState {
	sh := &fs.dirs[uint64(first)>>7%uint64(len(fs.dirs))]
	sh.mu.Lock()
	ds := sh.m[first]
	if ds == nil {
		ds = new(dirState)
		sh.m[first] = ds
	}
	sh.mu.Unlock()
	return ds
}

// newInode allocates and fills an inode (valid|dirty until the caller
// commits). nlink starts at 1 for files, set by the caller for dirs.
func (fs *FS) newInode(cred fsapi.Cred, mode uint32, hint uint64) (pmem.Ptr, error) {
	ino, err := fs.oa.Alloc(ClassInode, hint)
	if err != nil {
		return 0, err
	}
	d := fs.dev
	now := fs.now()
	d.Store32(uint64(ino)+inoModeOff, mode)
	d.Store32(uint64(ino)+inoUIDOff, cred.UID)
	d.Store32(uint64(ino)+inoGIDOff, cred.GID)
	d.Store32(uint64(ino)+inoNlinkOff, 1)
	d.Store64(uint64(ino)+inoSizeOff, 0)
	d.Store64(uint64(ino)+inoAtimeOff, uint64(now))
	d.Store64(uint64(ino)+inoMtimeOff, uint64(now))
	d.Store64(uint64(ino)+inoCtimeOff, uint64(now))
	d.Store64(uint64(ino)+inoDataOff, 0)
	d.Store64(uint64(ino)+inoBlocksOff, 0)
	d.Persist(uint64(ino), InodeSize)
	return ino, nil
}

// inode field helpers.

func (fs *FS) inoMode(ino pmem.Ptr) uint32  { return fs.dev.Load32(uint64(ino) + inoModeOff) }
func (fs *FS) inoUID(ino pmem.Ptr) uint32   { return fs.dev.Load32(uint64(ino) + inoUIDOff) }
func (fs *FS) inoGID(ino pmem.Ptr) uint32   { return fs.dev.Load32(uint64(ino) + inoGIDOff) }
func (fs *FS) inoNlink(ino pmem.Ptr) uint32 { return fs.dev.Load32(uint64(ino) + inoNlinkOff) }
func (fs *FS) inoSize(ino pmem.Ptr) uint64  { return fs.dev.AtomicLoad64(uint64(ino) + inoSizeOff) }
func (fs *FS) inoData(ino pmem.Ptr) pmem.Ptr {
	return pmem.Ptr(fs.dev.AtomicLoad64(uint64(ino) + inoDataOff))
}

func (fs *FS) setNlink(ino pmem.Ptr, n uint32) {
	fs.dev.Store32(uint64(ino)+inoNlinkOff, n)
	fs.dev.Persist(uint64(ino)+inoNlinkOff, 4)
}

func (fs *FS) touchMtime(ino pmem.Ptr) {
	now := uint64(fs.now())
	fs.dev.Store64(uint64(ino)+inoMtimeOff, now)
	fs.dev.Store64(uint64(ino)+inoCtimeOff, now)
	fs.dev.Persist(uint64(ino)+inoMtimeOff, 16)
}

// touchMtimeLazy flushes the time update without a fence; the caller's next
// fence commits it (timestamps need no ordering guarantee).
func (fs *FS) touchMtimeLazy(ino pmem.Ptr) {
	now := uint64(fs.now())
	fs.dev.Store64(uint64(ino)+inoMtimeOff, now)
	fs.dev.Store64(uint64(ino)+inoCtimeOff, now)
	fs.dev.Flush(uint64(ino)+inoMtimeOff, 16)
}

// statOf builds a Stat from an inode.
func (fs *FS) statOf(ino pmem.Ptr) fsapi.Stat {
	d := fs.dev
	return fsapi.Stat{
		Ino:   uint64(ino),
		Mode:  d.Load32(uint64(ino) + inoModeOff),
		UID:   d.Load32(uint64(ino) + inoUIDOff),
		GID:   d.Load32(uint64(ino) + inoGIDOff),
		Nlink: d.Load32(uint64(ino) + inoNlinkOff),
		Size:  fs.inoSize(ino),
		Atime: int64(d.Load64(uint64(ino) + inoAtimeOff)),
		Mtime: int64(d.Load64(uint64(ino) + inoMtimeOff)),
		Ctime: int64(d.Load64(uint64(ino) + inoCtimeOff)),
	}
}
