package core

import "runtime"

// numCPU is indirected for tests.
var numCPU = runtime.NumCPU
