package core

import (
	"fmt"
	"sync"
	"testing"

	"simurgh/internal/fsapi"
)

func TestCompactReclaimsEmptyChainBlocks(t *testing.T) {
	_, fs := newFSForTest(t, 128<<20)
	c := rootClient(t, fs)
	// Grow the root chain far past one block, then empty it.
	const n = 4000
	for i := 0; i < n; i++ {
		if _, err := c.Create(fmt.Sprintf("/f%05d", i), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	chainLen := func() int {
		l := 0
		for b := fs.inoData(fs.rootInode); !b.IsNull(); b = fs.nextBlock(b) {
			l++
		}
		return l
	}
	grown := chainLen()
	if grown < 2 {
		t.Fatalf("chain did not grow: %d blocks", grown)
	}
	for i := 0; i < n; i++ {
		if err := c.Unlink(fmt.Sprintf("/f%05d", i)); err != nil {
			t.Fatal(err)
		}
	}
	st := fs.Maintain()
	if st.BlocksFreed == 0 {
		t.Fatal("maintenance freed nothing")
	}
	if after := chainLen(); after != 1 {
		t.Fatalf("chain length after compact = %d, want 1", after)
	}
	// The directory must remain fully functional.
	for i := 0; i < 500; i++ {
		if _, err := c.Create(fmt.Sprintf("/post%d", i), 0o644); err != nil {
			t.Fatalf("create after compact: %v", err)
		}
	}
	ents, _ := c.ReadDir("/")
	if len(ents) != 500 {
		t.Fatalf("%d entries after compact+create", len(ents))
	}
}

func TestMaintainVisitsSubdirectories(t *testing.T) {
	_, fs := newFSForTest(t, 128<<20)
	c := rootClient(t, fs)
	c.Mkdir("/sub", 0o755)
	for i := 0; i < 2000; i++ {
		c.Create(fmt.Sprintf("/sub/x%05d", i), 0o644)
	}
	for i := 0; i < 2000; i++ {
		c.Unlink(fmt.Sprintf("/sub/x%05d", i))
	}
	st := fs.Maintain()
	if st.DirsVisited < 2 {
		t.Fatalf("visited %d dirs, want >= 2", st.DirsVisited)
	}
	if st.BlocksFreed == 0 {
		t.Fatal("subdirectory chain not compacted")
	}
	if _, err := c.Create("/sub/after", 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestMaintainIsIdempotentAndSafeWhenBusy(t *testing.T) {
	_, fs := newFSForTest(t, 128<<20)
	c := rootClient(t, fs)
	for i := 0; i < 1000; i++ {
		c.Create(fmt.Sprintf("/keep%d", i), 0o644)
	}
	s1 := fs.Maintain()
	s2 := fs.Maintain()
	if s2.BlocksFreed != 0 {
		t.Fatalf("second maintain freed %d blocks", s2.BlocksFreed)
	}
	_ = s1
	// All files must have survived both passes.
	ents, _ := c.ReadDir("/")
	if len(ents) != 1000 {
		t.Fatalf("%d entries after maintenance, want 1000", len(ents))
	}
}

func TestMaintainConcurrentWithWorkload(t *testing.T) {
	_, fs := newFSForTest(t, 128<<20)
	c := rootClient(t, fs)
	c.Mkdir("/work", 0o777)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			cw, _ := fs.Attach(fsapi.Root)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				p := fmt.Sprintf("/work/w%d-%d", w, i)
				if _, err := cw.Create(p, 0o644); err != nil {
					t.Errorf("create: %v", err)
					return
				}
				if err := cw.Unlink(p); err != nil {
					t.Errorf("unlink: %v", err)
					return
				}
			}
		}()
	}
	for i := 0; i < 20; i++ {
		fs.Maintain()
	}
	close(stop)
	wg.Wait()
	ents, _ := c.ReadDir("/work")
	if len(ents) != 0 {
		t.Fatalf("%d entries survive churn", len(ents))
	}
}
