package core

import (
	"sync"
	"sync/atomic"
	"time"

	"simurgh/internal/alloc"
	"simurgh/internal/obs"
	"simurgh/internal/pmem"
)

// Volatile per-directory index ("shared DRAM" state, like the allocators):
// for each hash line it maps full 64-bit name hashes to slot offsets and
// keeps the line's free slots, so directory operations are O(1) in the
// directory size instead of rescanning the persistent chain. The paper's
// linear hash maps have the same complexity natively; here the persistent
// layout (Figure 4) and all crash protocols (Figure 5) are unchanged — the
// index is derived data, rebuilt from NVMM on first access after a mount or
// a recovery, and every mutation happens under the same per-line busy lock
// that guards the persistent slot.
type dirLine struct {
	mu     sync.RWMutex
	byHash map[uint64][]uint64 // fnv64(name) -> candidate slot offsets
	free   []uint64            // free slot offsets of this line
}

func (l *dirLine) add(h uint64, slot uint64) {
	l.mu.Lock()
	if l.byHash == nil {
		l.byHash = make(map[uint64][]uint64, 4)
	}
	l.byHash[h] = append(l.byHash[h], slot)
	l.mu.Unlock()
}

func (l *dirLine) remove(h uint64, slot uint64) {
	l.mu.Lock()
	ss := l.byHash[h]
	for i, s := range ss {
		if s == slot {
			ss[i] = ss[len(ss)-1]
			ss = ss[:len(ss)-1]
			break
		}
	}
	if len(ss) == 0 {
		delete(l.byHash, h)
	} else {
		l.byHash[h] = ss
	}
	l.mu.Unlock()
}

// candidates appends the slots indexed under h to buf (callers pass a small
// stack buffer so the common single-candidate case does not allocate).
func (l *dirLine) candidates(h uint64, buf []uint64) []uint64 {
	l.mu.RLock()
	buf = append(buf[:0], l.byHash[h]...)
	l.mu.RUnlock()
	return buf
}

func (l *dirLine) pushFree(slot uint64) {
	l.mu.Lock()
	l.free = append(l.free, slot)
	l.mu.Unlock()
}

func (l *dirLine) popFree() (uint64, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.free) == 0 {
		return 0, false
	}
	s := l.free[len(l.free)-1]
	l.free = l.free[:len(l.free)-1]
	return s, true
}

// fnv64 is the index key hash (the persistent entries store fnv32, which
// also selects the line).
func fnv64(name string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}

// ensureIndex returns the directory's state with the index built.
func (fs *FS) ensureIndex(first pmem.Ptr) *dirState {
	ds := fs.dirState(first)
	if ds.built.Load() {
		return ds
	}
	ds.buildMu.Lock()
	defer ds.buildMu.Unlock()
	if ds.built.Load() {
		return ds
	}
	fs.buildIndex(first, ds)
	ds.built.Store(true)
	return ds
}

// buildIndex scans the persistent chain, performing the same idempotent
// repair-on-access fixes a lookup would (completing crashed deletes).
func (fs *FS) buildIndex(first pmem.Ptr, ds *dirState) {
	if fs.obsR.TraceEnabled() {
		defer fs.dirProbeSpan(time.Now())
	}
	d := fs.dev
	ds.blocks = ds.blocks[:0]
	for b := first; !b.IsNull(); b = fs.nextBlock(b) {
		ds.blocks = append(ds.blocks, b)
		for line := 0; line < NLines; line++ {
			for s := 0; s < SlotsPerLine; s++ {
				so := slotOff(b, line, s)
				e := pmem.Ptr(d.AtomicLoad64(so))
				if e.IsNull() {
					ds.lines[line].pushFree(so)
					continue
				}
				flags := fs.oa.Flags(e)
				if flags&alloc.FlagValid == 0 {
					// Crashed delete: finish it and reclaim the slot.
					if d.CompareAndSwap64(so, uint64(e), 0) {
						d.Persist(so, 8)
						if fs.oa.Flags(e) == alloc.FlagDirty {
							fs.freeEntryBody(e)
						}
						if st := fs.recStats.Load(); st != nil {
							st.FixedSlots++
						}
					}
					ds.lines[line].pushFree(so)
					continue
				}
				name := fs.entryName(e)
				ds.lines[line].add(fnv64(name), so)
			}
		}
	}
}

// invalidateDir drops a directory's volatile index (after recovery repairs
// the persistent chain behind its back).
func (fs *FS) invalidateDir(first pmem.Ptr) {
	fs.dirs.drop(first)
}

// extendChain appends a fresh hash block to the directory and feeds its
// slots into the free lists. Returns a free slot for the requested line.
func (fs *FS) extendChain(first pmem.Ptr, ds *dirState, line int) (uint64, error) {
	ds.extendMu.Lock()
	defer ds.extendMu.Unlock()
	// Another extender may have refilled the line meanwhile.
	if so, ok := ds.lines[line].popFree(); ok {
		return so, nil
	}
	nb, err := fs.oa.Alloc(ClassDirBlock, uint64(first))
	if err != nil {
		return 0, err
	}
	fs.obsR.Event(obs.EvDirChainExtend)
	fs.oa.ClearDirty(nb)
	if fs.crash("dir.extend") {
		return 0, ErrCrashed
	}
	last := first
	if n := len(ds.blocks); n > 0 {
		last = ds.blocks[n-1]
	} else {
		for b := fs.nextBlock(last); !b.IsNull(); b = fs.nextBlock(b) {
			last = b
		}
	}
	fs.dev.AtomicStore64(uint64(last)+dirNextOff, uint64(nb))
	fs.dev.Persist(uint64(last)+dirNextOff, 8)
	ds.blocks = append(ds.blocks, nb)
	var out uint64
	for l := 0; l < NLines; l++ {
		for s := 0; s < SlotsPerLine; s++ {
			so := slotOff(nb, l, s)
			if l == line && out == 0 {
				out = so
				continue
			}
			ds.lines[l].pushFree(so)
		}
	}
	return out, nil
}

// dirState is defined in fs.go; the index fields live here.
type dirIndexState struct {
	built   atomic.Bool
	buildMu sync.Mutex
	blocks  []pmem.Ptr
	lines   [NLines]dirLine
}
