package core

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"testing"

	"simurgh/internal/fsapi"
	"simurgh/internal/pmem"
)

func newFSForTest(t *testing.T, size uint64) (*pmem.Device, *FS) {
	t.Helper()
	dev := pmem.New(size)
	fs, err := Format(dev, fsapi.Root, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return dev, fs
}

func rootClient(t *testing.T, fs *FS) fsapi.Client {
	t.Helper()
	c, err := fs.Attach(fsapi.Root)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCreateWriteReadFile(t *testing.T) {
	_, fs := newFSForTest(t, 16<<20)
	c := rootClient(t, fs)
	fd, err := c.Create("/hello.txt", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("hello, simurgh")
	if n, err := c.Write(fd, msg); err != nil || n != len(msg) {
		t.Fatalf("write = (%d, %v)", n, err)
	}
	if err := c.Close(fd); err != nil {
		t.Fatal(err)
	}
	fd, err = c.Open("/hello.txt", fsapi.ORdonly, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 64)
	n, err := c.Read(fd, got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:n], msg) {
		t.Fatalf("read %q, want %q", got[:n], msg)
	}
	if _, err := c.Read(fd, got); err != io.EOF {
		t.Fatalf("read at EOF = %v, want io.EOF", err)
	}
}

func TestCreateExclusive(t *testing.T) {
	_, fs := newFSForTest(t, 16<<20)
	c := rootClient(t, fs)
	if _, err := c.Open("/f", fsapi.OCreate|fsapi.OExcl|fsapi.OWronly, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Open("/f", fsapi.OCreate|fsapi.OExcl|fsapi.OWronly, 0o644); !errors.Is(err, fsapi.ErrExist) {
		t.Fatalf("second excl create = %v, want ErrExist", err)
	}
}

func TestOpenMissingFile(t *testing.T) {
	_, fs := newFSForTest(t, 16<<20)
	c := rootClient(t, fs)
	if _, err := c.Open("/nope", fsapi.ORdonly, 0); !errors.Is(err, fsapi.ErrNotExist) {
		t.Fatalf("err = %v, want ErrNotExist", err)
	}
}

func TestMkdirAndNesting(t *testing.T) {
	_, fs := newFSForTest(t, 16<<20)
	c := rootClient(t, fs)
	if err := c.Mkdir("/a", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := c.Mkdir("/a/b", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := c.Mkdir("/a/b/c", 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Create("/a/b/c/file", 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := c.Stat("/a/b/c")
	if err != nil {
		t.Fatal(err)
	}
	if !fsapi.IsDir(st.Mode) {
		t.Fatal("nested dir is not a dir")
	}
	if _, err := c.Stat("/a/b/c/file"); err != nil {
		t.Fatal(err)
	}
	if err := c.Mkdir("/missing/sub", 0o755); !errors.Is(err, fsapi.ErrNotExist) {
		t.Fatalf("mkdir under missing parent = %v", err)
	}
}

func TestUnlink(t *testing.T) {
	_, fs := newFSForTest(t, 16<<20)
	c := rootClient(t, fs)
	fd, _ := c.Create("/f", 0o644)
	c.Write(fd, make([]byte, 10000))
	c.Close(fd)
	free := fs.FreeBlocks()
	if err := c.Unlink("/f"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Stat("/f"); !errors.Is(err, fsapi.ErrNotExist) {
		t.Fatalf("stat after unlink = %v", err)
	}
	if fs.FreeBlocks() <= free {
		t.Fatal("unlink did not release data blocks")
	}
	if err := c.Unlink("/f"); !errors.Is(err, fsapi.ErrNotExist) {
		t.Fatalf("double unlink = %v", err)
	}
}

func TestUnlinkRejectsDirectory(t *testing.T) {
	_, fs := newFSForTest(t, 16<<20)
	c := rootClient(t, fs)
	c.Mkdir("/d", 0o755)
	if err := c.Unlink("/d"); !errors.Is(err, fsapi.ErrIsDir) {
		t.Fatalf("unlink dir = %v, want ErrIsDir", err)
	}
}

func TestRmdir(t *testing.T) {
	_, fs := newFSForTest(t, 16<<20)
	c := rootClient(t, fs)
	c.Mkdir("/d", 0o755)
	c.Create("/d/f", 0o644)
	if err := c.Rmdir("/d"); !errors.Is(err, fsapi.ErrNotEmpty) {
		t.Fatalf("rmdir non-empty = %v, want ErrNotEmpty", err)
	}
	c.Unlink("/d/f")
	if err := c.Rmdir("/d"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Stat("/d"); !errors.Is(err, fsapi.ErrNotExist) {
		t.Fatalf("stat after rmdir = %v", err)
	}
	c.Create("/plainfile", 0o644)
	if err := c.Rmdir("/plainfile"); !errors.Is(err, fsapi.ErrNotDir) {
		t.Fatalf("rmdir file = %v, want ErrNotDir", err)
	}
}

func TestRenameSameDirectory(t *testing.T) {
	_, fs := newFSForTest(t, 16<<20)
	c := rootClient(t, fs)
	fd, _ := c.Create("/old", 0o644)
	c.Write(fd, []byte("payload"))
	c.Close(fd)
	if err := c.Rename("/old", "/new"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Stat("/old"); !errors.Is(err, fsapi.ErrNotExist) {
		t.Fatalf("old name survives: %v", err)
	}
	fd, err := c.Open("/new", fsapi.ORdonly, 0)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	n, _ := c.Read(fd, buf)
	if string(buf[:n]) != "payload" {
		t.Fatalf("content after rename = %q", buf[:n])
	}
}

func TestRenameReplacesDestination(t *testing.T) {
	_, fs := newFSForTest(t, 16<<20)
	c := rootClient(t, fs)
	fd, _ := c.Create("/src", 0o644)
	c.Write(fd, []byte("SRC"))
	c.Close(fd)
	fd, _ = c.Create("/dst", 0o644)
	c.Write(fd, []byte("DST-old"))
	c.Close(fd)
	if err := c.Rename("/src", "/dst"); err != nil {
		t.Fatal(err)
	}
	fd, _ = c.Open("/dst", fsapi.ORdonly, 0)
	buf := make([]byte, 16)
	n, _ := c.Read(fd, buf)
	if string(buf[:n]) != "SRC" {
		t.Fatalf("dst content = %q, want SRC", buf[:n])
	}
	if _, err := c.Stat("/src"); !errors.Is(err, fsapi.ErrNotExist) {
		t.Fatal("src still present")
	}
}

func TestRenameCrossDirectory(t *testing.T) {
	_, fs := newFSForTest(t, 16<<20)
	c := rootClient(t, fs)
	c.Mkdir("/a", 0o755)
	c.Mkdir("/b", 0o755)
	fd, _ := c.Create("/a/f", 0o644)
	c.Write(fd, []byte("xdir"))
	c.Close(fd)
	if err := c.Rename("/a/f", "/b/g"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Stat("/a/f"); !errors.Is(err, fsapi.ErrNotExist) {
		t.Fatal("source entry survives cross-dir rename")
	}
	fd, err := c.Open("/b/g", fsapi.ORdonly, 0)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	n, _ := c.Read(fd, buf)
	if string(buf[:n]) != "xdir" {
		t.Fatalf("content = %q", buf[:n])
	}
}

func TestRenameMissingSource(t *testing.T) {
	_, fs := newFSForTest(t, 16<<20)
	c := rootClient(t, fs)
	if err := c.Rename("/none", "/other"); !errors.Is(err, fsapi.ErrNotExist) {
		t.Fatalf("err = %v", err)
	}
}

func TestRenameDirectoryIntoOther(t *testing.T) {
	_, fs := newFSForTest(t, 16<<20)
	c := rootClient(t, fs)
	c.Mkdir("/x", 0o755)
	c.Mkdir("/y", 0o755)
	c.Create("/x/inner", 0o644)
	if err := c.Rename("/x", "/y/x2"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Stat("/y/x2/inner"); err != nil {
		t.Fatalf("moved dir content lost: %v", err)
	}
}

func TestReadDir(t *testing.T) {
	_, fs := newFSForTest(t, 16<<20)
	c := rootClient(t, fs)
	names := map[string]bool{}
	for i := 0; i < 20; i++ {
		name := fmt.Sprintf("file-%02d", i)
		if _, err := c.Create("/"+name, 0o644); err != nil {
			t.Fatal(err)
		}
		names[name] = true
	}
	c.Mkdir("/subdir", 0o755)
	names["subdir"] = true
	ents, err := c.ReadDir("/")
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != len(names) {
		t.Fatalf("ReadDir returned %d entries, want %d", len(ents), len(names))
	}
	for _, e := range ents {
		if !names[e.Name] {
			t.Fatalf("unexpected entry %q", e.Name)
		}
	}
}

func TestManyFilesInSharedDirectory(t *testing.T) {
	// Forces directory chain extension well past one hash block.
	_, fs := newFSForTest(t, 64<<20)
	c := rootClient(t, fs)
	const n = 3000
	for i := 0; i < n; i++ {
		if _, err := c.Create(fmt.Sprintf("/f%05d", i), 0o644); err != nil {
			t.Fatalf("create %d: %v", i, err)
		}
	}
	for i := 0; i < n; i += 97 {
		if _, err := c.Stat(fmt.Sprintf("/f%05d", i)); err != nil {
			t.Fatalf("stat %d: %v", i, err)
		}
	}
	ents, _ := c.ReadDir("/")
	if len(ents) != n {
		t.Fatalf("ReadDir found %d, want %d", len(ents), n)
	}
	// Delete them all, then the directory must look empty again.
	for i := 0; i < n; i++ {
		if err := c.Unlink(fmt.Sprintf("/f%05d", i)); err != nil {
			t.Fatalf("unlink %d: %v", i, err)
		}
	}
	ents, _ = c.ReadDir("/")
	if len(ents) != 0 {
		t.Fatalf("%d entries survive mass delete", len(ents))
	}
}

func TestLongNames(t *testing.T) {
	_, fs := newFSForTest(t, 16<<20)
	c := rootClient(t, fs)
	long := ""
	for i := 0; i < 20; i++ {
		long += "abcdefghij"
	} // 200 chars > shortNameLen
	if _, err := c.Create("/"+long, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Stat("/" + long); err != nil {
		t.Fatalf("stat long name: %v", err)
	}
	ents, _ := c.ReadDir("/")
	if len(ents) != 1 || ents[0].Name != long {
		t.Fatalf("ReadDir long name = %+v", ents)
	}
	if err := c.Unlink("/" + long); err != nil {
		t.Fatal(err)
	}
}

func TestSymlink(t *testing.T) {
	_, fs := newFSForTest(t, 16<<20)
	c := rootClient(t, fs)
	fd, _ := c.Create("/target", 0o644)
	c.Write(fd, []byte("via-link"))
	c.Close(fd)
	if err := c.Symlink("/target", "/link"); err != nil {
		t.Fatal(err)
	}
	got, err := c.Readlink("/link")
	if err != nil || got != "/target" {
		t.Fatalf("readlink = (%q, %v)", got, err)
	}
	// Open through the link.
	fd, err = c.Open("/link", fsapi.ORdonly, 0)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	n, _ := c.Read(fd, buf)
	if string(buf[:n]) != "via-link" {
		t.Fatalf("content through symlink = %q", buf[:n])
	}
	// Lstat sees the link, Stat follows it.
	lst, _ := c.Lstat("/link")
	if !fsapi.IsSymlink(lst.Mode) {
		t.Fatal("Lstat did not report a symlink")
	}
	st, _ := c.Stat("/link")
	if !fsapi.IsRegular(st.Mode) {
		t.Fatal("Stat did not follow the symlink")
	}
}

func TestSymlinkRelativeAndNested(t *testing.T) {
	_, fs := newFSForTest(t, 16<<20)
	c := rootClient(t, fs)
	c.Mkdir("/d", 0o755)
	fd, _ := c.Create("/d/real", 0o644)
	c.Write(fd, []byte("R"))
	c.Close(fd)
	c.Symlink("real", "/d/rel") // relative target within /d
	fd, err := c.Open("/d/rel", fsapi.ORdonly, 0)
	if err != nil {
		t.Fatalf("open relative symlink: %v", err)
	}
	buf := make([]byte, 4)
	n, _ := c.Read(fd, buf)
	if string(buf[:n]) != "R" {
		t.Fatalf("content = %q", buf[:n])
	}
	// Symlink used as a directory component.
	c.Symlink("/d", "/dirlink")
	if _, err := c.Stat("/dirlink/real"); err != nil {
		t.Fatalf("stat through dir symlink: %v", err)
	}
}

func TestSymlinkLoopDetected(t *testing.T) {
	_, fs := newFSForTest(t, 16<<20)
	c := rootClient(t, fs)
	c.Symlink("/b", "/a")
	c.Symlink("/a", "/b")
	if _, err := c.Stat("/a"); !errors.Is(err, fsapi.ErrLoop) {
		t.Fatalf("loop err = %v, want ErrLoop", err)
	}
}

func TestHardLink(t *testing.T) {
	_, fs := newFSForTest(t, 16<<20)
	c := rootClient(t, fs)
	fd, _ := c.Create("/f", 0o644)
	c.Write(fd, []byte("shared"))
	c.Close(fd)
	if err := c.Link("/f", "/g"); err != nil {
		t.Fatal(err)
	}
	st1, _ := c.Stat("/f")
	st2, _ := c.Stat("/g")
	if st1.Ino != st2.Ino {
		t.Fatal("hard link has different inode")
	}
	if st1.Nlink != 2 {
		t.Fatalf("nlink = %d, want 2", st1.Nlink)
	}
	// Removing one name keeps the data alive.
	c.Unlink("/f")
	fd, err := c.Open("/g", fsapi.ORdonly, 0)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	n, _ := c.Read(fd, buf)
	if string(buf[:n]) != "shared" {
		t.Fatalf("content after first unlink = %q", buf[:n])
	}
	st2, _ = c.Stat("/g")
	if st2.Nlink != 1 {
		t.Fatalf("nlink after unlink = %d", st2.Nlink)
	}
	c.Unlink("/g")
	if _, err := c.Stat("/g"); !errors.Is(err, fsapi.ErrNotExist) {
		t.Fatal("file survives last unlink")
	}
}

func TestPermissions(t *testing.T) {
	_, fs := newFSForTest(t, 16<<20)
	rootC := rootClient(t, fs)
	alice := fsapi.Cred{UID: 1000, GID: 1000}
	bob := fsapi.Cred{UID: 1001, GID: 1001}
	ca, _ := fs.Attach(alice)
	cb, _ := fs.Attach(bob)

	// /home is world-writable so alice can make her own 0700 directory.
	rootC.Mkdir("/home", 0o777)
	if err := ca.Mkdir("/home/alice", 0o700); err != nil {
		t.Fatal(err)
	}
	fd, err := ca.(*Client).Create("/home/alice/secret", 0o600)
	if err != nil {
		t.Fatal(err)
	}
	ca.Write(fd, []byte("s3cr3t"))
	ca.Close(fd)

	// Bob cannot traverse alice's 0700 dir.
	if _, err := cb.Open("/home/alice/secret", fsapi.ORdonly, 0); !errors.Is(err, fsapi.ErrPerm) {
		t.Fatalf("bob open = %v, want ErrPerm", err)
	}
	if _, err := cb.Stat("/home/alice/secret"); !errors.Is(err, fsapi.ErrPerm) {
		t.Fatalf("bob stat = %v, want ErrPerm", err)
	}
	// Bob cannot create in alice's dir either.
	if _, err := cb.Create("/home/alice/evil", 0o644); !errors.Is(err, fsapi.ErrPerm) {
		t.Fatalf("bob create = %v, want ErrPerm", err)
	}
	// Root can.
	if _, err := rootC.Open("/home/alice/secret", fsapi.ORdonly, 0); err != nil {
		t.Fatalf("root open: %v", err)
	}
	// Alice opens her own file read-write.
	if _, err := ca.Open("/home/alice/secret", fsapi.ORdwr, 0); err != nil {
		t.Fatalf("alice open: %v", err)
	}
	// A 0600 file is not writable by bob even if reachable.
	fd, _ = ca.Create("/home/alice/shared-path", 0o644)
	ca.Close(fd)
	ca.Chmod("/home/alice", 0o755)
	if _, err := cb.Open("/home/alice/shared-path", fsapi.OWronly, 0); !errors.Is(err, fsapi.ErrPerm) {
		t.Fatalf("bob write-open 0644 = %v, want ErrPerm", err)
	}
	if _, err := cb.Open("/home/alice/shared-path", fsapi.ORdonly, 0); err != nil {
		t.Fatalf("bob read-open 0644: %v", err)
	}
}

func TestChmodOnlyOwnerOrRoot(t *testing.T) {
	_, fs := newFSForTest(t, 16<<20)
	alice := fsapi.Cred{UID: 1000, GID: 1000}
	bob := fsapi.Cred{UID: 1001, GID: 1001}
	ca, _ := fs.Attach(alice)
	cb, _ := fs.Attach(bob)
	rootC := rootClient(t, fs)
	rootC.Chmod("/", 0o777)
	fd, _ := ca.Create("/mine", 0o644)
	ca.Close(fd)
	if err := cb.Chmod("/mine", 0o777); !errors.Is(err, fsapi.ErrPerm) {
		t.Fatalf("bob chmod = %v, want ErrPerm", err)
	}
	if err := ca.Chmod("/mine", 0o600); err != nil {
		t.Fatal(err)
	}
	st, _ := ca.Stat("/mine")
	if st.Mode&fsapi.ModePermMask != 0o600 {
		t.Fatalf("mode = %o", st.Mode&fsapi.ModePermMask)
	}
}

func TestSeekAndPreadPwrite(t *testing.T) {
	_, fs := newFSForTest(t, 16<<20)
	c := rootClient(t, fs)
	fd, _ := c.Open("/f", fsapi.OCreate|fsapi.ORdwr, 0o644)
	c.Write(fd, []byte("0123456789"))
	if pos, err := c.Seek(fd, 2, fsapi.SeekSet); err != nil || pos != 2 {
		t.Fatalf("seek = (%d, %v)", pos, err)
	}
	buf := make([]byte, 3)
	n, _ := c.Read(fd, buf)
	if string(buf[:n]) != "234" {
		t.Fatalf("read after seek = %q", buf[:n])
	}
	if pos, _ := c.Seek(fd, -2, fsapi.SeekEnd); pos != 8 {
		t.Fatalf("seek end = %d", pos)
	}
	if pos, _ := c.Seek(fd, 1, fsapi.SeekCur); pos != 9 {
		t.Fatalf("seek cur = %d", pos)
	}
	if _, err := c.Pwrite(fd, []byte("AB"), 4); err != nil {
		t.Fatal(err)
	}
	n, err := c.Pread(fd, buf, 3)
	if err != nil || string(buf[:n]) != "3AB" {
		t.Fatalf("pread = (%q, %v)", buf[:n], err)
	}
}

func TestAppendMode(t *testing.T) {
	_, fs := newFSForTest(t, 16<<20)
	c := rootClient(t, fs)
	fd, _ := c.Open("/log", fsapi.OCreate|fsapi.OWronly|fsapi.OAppend, 0o644)
	c.Write(fd, []byte("one,"))
	c.Write(fd, []byte("two,"))
	c.Close(fd)
	fd, _ = c.Open("/log", fsapi.OCreate|fsapi.OWronly|fsapi.OAppend, 0o644)
	c.Write(fd, []byte("three"))
	c.Close(fd)
	fd, _ = c.Open("/log", fsapi.ORdonly, 0)
	buf := make([]byte, 64)
	n, _ := c.Read(fd, buf)
	if string(buf[:n]) != "one,two,three" {
		t.Fatalf("appended content = %q", buf[:n])
	}
}

func TestTruncateGrowShrink(t *testing.T) {
	_, fs := newFSForTest(t, 64<<20)
	c := rootClient(t, fs)
	fd, _ := c.Open("/f", fsapi.OCreate|fsapi.ORdwr, 0o644)
	data := bytes.Repeat([]byte{0xAA}, 3*BlockSize)
	c.Write(fd, data)
	free := fs.FreeBlocks()
	if err := c.Ftruncate(fd, BlockSize); err != nil {
		t.Fatal(err)
	}
	st, _ := c.Fstat(fd)
	if st.Size != BlockSize {
		t.Fatalf("size after shrink = %d", st.Size)
	}
	if fs.FreeBlocks() <= free {
		t.Fatal("shrink did not free blocks")
	}
	if err := c.Ftruncate(fd, 2*BlockSize); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 2*BlockSize)
	n, _ := c.Pread(fd, buf, 0)
	if n != 2*BlockSize {
		t.Fatalf("read %d bytes after grow", n)
	}
	for i := 0; i < BlockSize; i++ {
		if buf[i] != 0xAA {
			t.Fatalf("kept byte %d = %x", i, buf[i])
		}
	}
}

func TestFallocate(t *testing.T) {
	_, fs := newFSForTest(t, 64<<20)
	c := rootClient(t, fs)
	fd, _ := c.Create("/big", 0o644)
	if err := c.Fallocate(fd, 4<<20); err != nil {
		t.Fatal(err)
	}
	st, _ := c.Fstat(fd)
	if st.Size != 4<<20 {
		t.Fatalf("size after fallocate = %d", st.Size)
	}
	// Unwritten preallocated space reads as zero... after a write past it.
	if _, err := c.Pwrite(fd, []byte{1}, 4<<20-1); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	n, _ := c.Pread(fd, buf, 100)
	for i := 0; i < n; i++ {
		if buf[i] != 0 {
			t.Fatalf("preallocated byte %d = %d", i, buf[i])
		}
	}
}

func TestLargeFileCrossExtentBoundaries(t *testing.T) {
	_, fs := newFSForTest(t, 128<<20)
	c := rootClient(t, fs)
	fd, _ := c.Open("/big", fsapi.OCreate|fsapi.ORdwr, 0o644)
	// Write a pattern in odd-sized chunks so extents mis-align with blocks.
	chunk := make([]byte, 12345)
	for i := range chunk {
		chunk[i] = byte(i % 251)
	}
	const rounds = 800 // ~9.9 MB
	for i := 0; i < rounds; i++ {
		if _, err := c.Write(fd, chunk); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	st, _ := c.Fstat(fd)
	if st.Size != uint64(rounds*len(chunk)) {
		t.Fatalf("size = %d, want %d", st.Size, rounds*len(chunk))
	}
	// Spot-check contents at random-ish offsets.
	buf := make([]byte, len(chunk))
	for _, r := range []int{0, 1, 37, 399, 799} {
		n, err := c.Pread(fd, buf, uint64(r*len(chunk)))
		if err != nil || n != len(chunk) {
			t.Fatalf("pread round %d = (%d, %v)", r, n, err)
		}
		if !bytes.Equal(buf, chunk) {
			t.Fatalf("content mismatch at round %d", r)
		}
	}
}

func TestStatFields(t *testing.T) {
	_, fs := newFSForTest(t, 16<<20)
	alice := fsapi.Cred{UID: 42, GID: 7}
	rootC := rootClient(t, fs)
	rootC.Chmod("/", 0o777)
	ca, _ := fs.Attach(alice)
	fd, _ := ca.Create("/f", 0o640)
	ca.Write(fd, []byte("12345"))
	st, err := ca.Fstat(fd)
	if err != nil {
		t.Fatal(err)
	}
	if st.UID != 42 || st.GID != 7 {
		t.Fatalf("owner = %d:%d", st.UID, st.GID)
	}
	if st.Mode&fsapi.ModePermMask != 0o640 {
		t.Fatalf("perm = %o", st.Mode&fsapi.ModePermMask)
	}
	if st.Size != 5 {
		t.Fatalf("size = %d", st.Size)
	}
	if st.Mtime == 0 || st.Ctime == 0 {
		t.Fatal("times not set")
	}
	if st.Ino == 0 {
		t.Fatal("ino (persistent pointer) is null")
	}
}

func TestUtimes(t *testing.T) {
	_, fs := newFSForTest(t, 16<<20)
	c := rootClient(t, fs)
	c.Create("/f", 0o644)
	if err := c.Utimes("/f", 111, 222); err != nil {
		t.Fatal(err)
	}
	st, _ := c.Stat("/f")
	if st.Atime != 111 || st.Mtime != 222 {
		t.Fatalf("times = %d/%d", st.Atime, st.Mtime)
	}
}

func TestBadFDOperations(t *testing.T) {
	_, fs := newFSForTest(t, 16<<20)
	c := rootClient(t, fs)
	if _, err := c.Read(999, make([]byte, 4)); !errors.Is(err, fsapi.ErrBadFD) {
		t.Fatalf("read bad fd = %v", err)
	}
	if err := c.Close(999); !errors.Is(err, fsapi.ErrBadFD) {
		t.Fatalf("close bad fd = %v", err)
	}
	fd, _ := c.Create("/f", 0o644)
	c.Close(fd)
	if _, err := c.Write(fd, []byte("x")); !errors.Is(err, fsapi.ErrBadFD) {
		t.Fatalf("write closed fd = %v", err)
	}
}

func TestReadOnlyWriteOnlyEnforcement(t *testing.T) {
	_, fs := newFSForTest(t, 16<<20)
	c := rootClient(t, fs)
	fd, _ := c.Create("/f", 0o644) // write-only
	if _, err := c.Read(fd, make([]byte, 4)); !errors.Is(err, fsapi.ErrWriteOnly) {
		t.Fatalf("read write-only fd = %v", err)
	}
	c.Close(fd)
	fd, _ = c.Open("/f", fsapi.ORdonly, 0)
	if _, err := c.Write(fd, []byte("x")); !errors.Is(err, fsapi.ErrReadOnly) {
		t.Fatalf("write read-only fd = %v", err)
	}
}

func TestUnmountRemountClean(t *testing.T) {
	dev, fs := newFSForTest(t, 32<<20)
	c := rootClient(t, fs)
	fd, _ := c.Create("/persist", 0o644)
	c.Write(fd, []byte("still here"))
	c.Close(fd)
	c.Mkdir("/dir", 0o755)
	fs.Unmount()

	fs2, stats, err := Mount(dev, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.WasClean {
		t.Fatal("clean unmount not detected")
	}
	c2 := rootClient(t, fs2)
	fd, err = c2.Open("/persist", fsapi.ORdonly, 0)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	n, _ := c2.Read(fd, buf)
	if string(buf[:n]) != "still here" {
		t.Fatalf("content after remount = %q", buf[:n])
	}
	if _, err := c2.Stat("/dir"); err != nil {
		t.Fatal(err)
	}
	// Allocator state was rebuilt: new files must not clobber old data.
	fd2, _ := c2.Create("/new", 0o644)
	c2.Write(fd2, bytes.Repeat([]byte{0xFF}, 100000))
	fd, _ = c2.Open("/persist", fsapi.ORdonly, 0)
	n, _ = c2.Read(fd, buf)
	if string(buf[:n]) != "still here" {
		t.Fatalf("old content clobbered after remount: %q", buf[:n])
	}
}

func TestMountRejectsGarbage(t *testing.T) {
	dev := pmem.New(16 << 20)
	if _, _, err := Mount(dev, Options{}); err == nil {
		t.Fatal("mounted an unformatted device")
	}
}

func TestRootStat(t *testing.T) {
	_, fs := newFSForTest(t, 16<<20)
	c := rootClient(t, fs)
	st, err := c.Stat("/")
	if err != nil {
		t.Fatal(err)
	}
	if !fsapi.IsDir(st.Mode) {
		t.Fatal("root is not a directory")
	}
}

func TestUnlinkWhileOpenKeepsInodeAlive(t *testing.T) {
	// POSIX orphan semantics: an unlinked file stays usable through open
	// descriptors; the last close frees it.
	_, fs := newFSForTest(t, 32<<20)
	c := rootClient(t, fs)
	fd, _ := c.Open("/orphan", fsapi.OCreate|fsapi.ORdwr, 0o644)
	c.Write(fd, []byte("before unlink"))
	if err := c.Unlink("/orphan"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Stat("/orphan"); !errors.Is(err, fsapi.ErrNotExist) {
		t.Fatal("name still visible")
	}
	// The descriptor still works for reads AND writes.
	if _, err := c.Pwrite(fd, []byte(" + after"), 13); err != nil {
		t.Fatalf("write to orphan: %v", err)
	}
	buf := make([]byte, 32)
	n, err := c.Pread(fd, buf, 0)
	if err != nil || string(buf[:n]) != "before unlink + after" {
		t.Fatalf("read orphan = (%q, %v)", buf[:n], err)
	}
	free := fs.FreeBlocks()
	if err := c.Close(fd); err != nil {
		t.Fatal(err)
	}
	if fs.FreeBlocks() <= free {
		t.Fatal("orphan inode not freed on last close")
	}
}

func TestUnlinkWhileOpenManyDescriptors(t *testing.T) {
	_, fs := newFSForTest(t, 32<<20)
	c := rootClient(t, fs)
	fd1, _ := c.Open("/f", fsapi.OCreate|fsapi.ORdwr, 0o644)
	c.Write(fd1, make([]byte, 8192))
	fd2, _ := c.Open("/f", fsapi.ORdonly, 0)
	c.Unlink("/f")
	free := fs.FreeBlocks()
	c.Close(fd1)
	if fs.FreeBlocks() != free {
		t.Fatal("inode freed while another descriptor is open")
	}
	buf := make([]byte, 16)
	if n, err := c.Pread(fd2, buf, 0); err != nil || n == 0 {
		t.Fatalf("second descriptor broken: (%d, %v)", n, err)
	}
	c.Close(fd2)
	if fs.FreeBlocks() <= free {
		t.Fatal("inode not freed after final close")
	}
}

func TestDetachFreesOrphans(t *testing.T) {
	_, fs := newFSForTest(t, 32<<20)
	c := rootClient(t, fs)
	fd, _ := c.Open("/g", fsapi.OCreate|fsapi.OWronly, 0o644)
	c.Write(fd, make([]byte, 8192))
	c.Unlink("/g")
	free := fs.FreeBlocks()
	c.Detach()
	if fs.FreeBlocks() <= free {
		t.Fatal("detach did not release the orphan")
	}
}
