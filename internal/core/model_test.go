package core

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"simurgh/internal/fsapi"
	"simurgh/internal/pmem"
)

// Model-based testing: random operation sequences run against both the real
// file system and a trivial in-memory model; externally visible behaviour
// must agree. This is the broadest invariant net over the directory
// machinery (hash lines, chain extension, index, renames).

type modelFS struct {
	files map[string][]byte // path -> content
	dirs  map[string]bool
}

func newModel() *modelFS {
	return &modelFS{files: map[string][]byte{}, dirs: map[string]bool{"": true}}
}

func (m *modelFS) parentExists(p string) bool {
	comps, _ := fsapi.SplitPath(p)
	if len(comps) == 0 {
		return false
	}
	return m.dirs[fsapi.JoinPath(comps[:len(comps)-1])]
}

func (m *modelFS) norm(p string) string {
	comps, _ := fsapi.SplitPath(p)
	return fsapi.JoinPath(comps)
}

func TestModelBasedRandomOps(t *testing.T) {
	for trial := 0; trial < 5; trial++ {
		seed := int64(trial*1000 + 7)
		rng := rand.New(rand.NewSource(seed))
		dev := pmem.New(64 << 20)
		fs, err := Format(dev, fsapi.Root, Options{})
		if err != nil {
			t.Fatal(err)
		}
		c, _ := fs.Attach(fsapi.Root)
		m := newModel()
		m.dirs["/"] = true

		paths := func() []string {
			var out []string
			for p := range m.files {
				out = append(out, p)
			}
			return out
		}
		dirs := func() []string {
			var out []string
			for d := range m.dirs {
				if d != "" {
					out = append(out, d)
				}
			}
			return out
		}
		pick := func(ss []string) string {
			if len(ss) == 0 {
				return "/nonexistent"
			}
			return ss[rng.Intn(len(ss))]
		}
		randName := func() string { return fmt.Sprintf("n%d", rng.Intn(40)) }

		for step := 0; step < 400; step++ {
			switch rng.Intn(7) {
			case 0: // create + write
				dir := pick(append(dirs(), "/"))
				p := m.norm(dir + "/" + randName())
				data := make([]byte, rng.Intn(5000))
				rng.Read(data)
				fd, err := c.Create(p, 0o644)
				_, wantDir := m.dirs[p]
				switch {
				case wantDir:
					if !errors.Is(err, fsapi.ErrIsDir) && err == nil {
						t.Fatalf("step %d: create over dir %s: %v", step, p, err)
					}
				case err == nil:
					if _, werr := c.Write(fd, data); werr != nil {
						t.Fatalf("step %d write: %v", step, werr)
					}
					c.Close(fd)
					m.files[p] = data
				default:
					t.Fatalf("step %d: create %s: %v", step, p, err)
				}
			case 1: // mkdir
				dir := pick(append(dirs(), "/"))
				p := m.norm(dir + "/" + randName())
				err := c.Mkdir(p, 0o755)
				_, isFile := m.files[p]
				switch {
				case m.dirs[p] || isFile:
					if !errors.Is(err, fsapi.ErrExist) {
						t.Fatalf("step %d: mkdir existing %s: %v", step, p, err)
					}
				case err == nil:
					m.dirs[p] = true
				default:
					t.Fatalf("step %d: mkdir %s: %v", step, p, err)
				}
			case 2: // unlink
				p := pick(paths())
				err := c.Unlink(p)
				if _, ok := m.files[p]; ok {
					if err != nil {
						t.Fatalf("step %d: unlink %s: %v", step, p, err)
					}
					delete(m.files, p)
				} else if err == nil {
					t.Fatalf("step %d: unlink phantom %s succeeded", step, p)
				}
			case 3: // rename file
				src := pick(paths())
				dir := pick(append(dirs(), "/"))
				dst := m.norm(dir + "/" + randName())
				if src == dst {
					continue
				}
				err := c.Rename(src, dst)
				_, srcOK := m.files[src]
				_, dstIsDir := m.dirs[dst]
				switch {
				case !srcOK:
					if err == nil {
						// src may be a directory; allow directory moves.
						if m.dirs[src] && !dstIsDir {
							m.renameDir(src, dst)
						} else {
							t.Fatalf("step %d: rename phantom %s -> %s succeeded", step, src, dst)
						}
					}
				case dstIsDir:
					if err == nil {
						t.Fatalf("step %d: rename onto dir succeeded", step)
					}
				case err == nil:
					m.files[dst] = m.files[src]
					delete(m.files, src)
				default:
					t.Fatalf("step %d: rename %s -> %s: %v", step, src, dst, err)
				}
			case 4: // read back a random file
				p := pick(paths())
				want, ok := m.files[p]
				fd, err := c.Open(p, fsapi.ORdonly, 0)
				if !ok {
					if err == nil {
						st, _ := c.Fstat(fd)
						if !fsapi.IsDir(st.Mode) {
							t.Fatalf("step %d: opened phantom file %s", step, p)
						}
					}
					continue
				}
				if err != nil {
					t.Fatalf("step %d: open %s: %v", step, p, err)
				}
				got := make([]byte, len(want)+10)
				n, _ := c.Pread(fd, got, 0)
				if n != len(want) || !bytes.Equal(got[:n], want) {
					t.Fatalf("step %d: content mismatch on %s (%d vs %d bytes)", step, p, n, len(want))
				}
				c.Close(fd)
			case 5: // stat consistency
				p := pick(append(paths(), dirs()...))
				st, err := c.Stat(p)
				_, isFile := m.files[p]
				isDir := m.dirs[p]
				switch {
				case isFile:
					if err != nil || !fsapi.IsRegular(st.Mode) {
						t.Fatalf("step %d: stat file %s: %+v %v", step, p, st, err)
					}
					if st.Size != uint64(len(m.files[p])) {
						t.Fatalf("step %d: %s size %d, want %d", step, p, st.Size, len(m.files[p]))
					}
				case isDir:
					if err != nil || !fsapi.IsDir(st.Mode) {
						t.Fatalf("step %d: stat dir %s: %v", step, p, err)
					}
				default:
					if !errors.Is(err, fsapi.ErrNotExist) {
						t.Fatalf("step %d: stat phantom %s: %v", step, p, err)
					}
				}
			case 6: // readdir consistency for a random directory
				d := pick(append(dirs(), "/"))
				ents, err := c.ReadDir(d)
				if !m.dirs[m.norm(d)] && d != "/" {
					continue
				}
				if err != nil {
					t.Fatalf("step %d: readdir %s: %v", step, d, err)
				}
				want := map[string]bool{}
				prefix := m.norm(d)
				for p := range m.files {
					if dirOf(p) == prefix {
						want[baseOf(p)] = true
					}
				}
				for p := range m.dirs {
					if p != "" && p != "/" && dirOf(p) == prefix {
						want[baseOf(p)] = true
					}
				}
				if len(ents) != len(want) {
					t.Fatalf("step %d: readdir %s: %d entries, model has %d", step, d, len(ents), len(want))
				}
				for _, e := range ents {
					if !want[e.Name] {
						t.Fatalf("step %d: readdir %s: unexpected %q", step, d, e.Name)
					}
				}
			}
		}
	}
}

// renameDir updates the model for a directory move.
func (m *modelFS) renameDir(src, dst string) {
	delete(m.dirs, src)
	m.dirs[dst] = true
	for p, data := range m.files {
		if hasPrefixDir(p, src) {
			np := dst + p[len(src):]
			delete(m.files, p)
			m.files[np] = data
		}
	}
	for p := range m.dirs {
		if hasPrefixDir(p, src) {
			np := dst + p[len(src):]
			delete(m.dirs, p)
			m.dirs[np] = true
		}
	}
}

func hasPrefixDir(p, dir string) bool {
	return len(p) > len(dir) && p[:len(dir)] == dir && p[len(dir)] == '/'
}

func dirOf(p string) string {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] == '/' {
			if i == 0 {
				return "/"
			}
			return p[:i]
		}
	}
	return "/"
}

func baseOf(p string) string {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] == '/' {
			return p[i+1:]
		}
	}
	return p
}
