package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"simurgh/internal/fsapi"
)

// These tests exercise the decentralized coordination paths: many clients
// ("processes") mutating shared NVMM structures simultaneously.

func TestConcurrentCreatesSharedDirectory(t *testing.T) {
	_, fs := newFSForTest(t, 64<<20)
	const workers, perWorker = 8, 150
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, _ := fs.Attach(fsapi.Root)
			for i := 0; i < perWorker; i++ {
				if _, err := c.Create(fmt.Sprintf("/w%d-f%d", w, i), 0o644); err != nil {
					errs <- fmt.Errorf("worker %d create %d: %w", w, i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	c, _ := fs.Attach(fsapi.Root)
	ents, _ := c.ReadDir("/")
	if len(ents) != workers*perWorker {
		t.Fatalf("directory has %d entries, want %d", len(ents), workers*perWorker)
	}
}

func TestConcurrentCreateSameNameExactlyOneWins(t *testing.T) {
	_, fs := newFSForTest(t, 32<<20)
	const workers = 8
	for round := 0; round < 20; round++ {
		name := fmt.Sprintf("/contested-%d", round)
		var wins int32
		var mu sync.Mutex
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				c, _ := fs.Attach(fsapi.Root)
				_, err := c.Open(name, fsapi.OCreate|fsapi.OExcl|fsapi.OWronly, 0o644)
				if err == nil {
					mu.Lock()
					wins++
					mu.Unlock()
				} else if !errors.Is(err, fsapi.ErrExist) {
					t.Errorf("unexpected error: %v", err)
				}
			}()
		}
		wg.Wait()
		if wins != 1 {
			t.Fatalf("round %d: %d winners for exclusive create, want 1", round, wins)
		}
	}
}

func TestConcurrentCreateDeleteChurn(t *testing.T) {
	_, fs := newFSForTest(t, 64<<20)
	const workers = 6
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, _ := fs.Attach(fsapi.Root)
			for i := 0; i < 200; i++ {
				p := fmt.Sprintf("/churn-%d-%d", w, i)
				if _, err := c.Create(p, 0o644); err != nil {
					t.Errorf("create: %v", err)
					return
				}
				if err := c.Unlink(p); err != nil {
					t.Errorf("unlink: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	c, _ := fs.Attach(fsapi.Root)
	ents, _ := c.ReadDir("/")
	if len(ents) != 0 {
		t.Fatalf("%d entries survive the churn", len(ents))
	}
}

func TestConcurrentRenamesInSharedDirectory(t *testing.T) {
	_, fs := newFSForTest(t, 64<<20)
	c, _ := fs.Attach(fsapi.Root)
	const workers = 6
	for w := 0; w < workers; w++ {
		if _, err := c.Create(fmt.Sprintf("/r%d-gen0", w), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			cw, _ := fs.Attach(fsapi.Root)
			for g := 0; g < 100; g++ {
				old := fmt.Sprintf("/r%d-gen%d", w, g)
				new := fmt.Sprintf("/r%d-gen%d", w, g+1)
				if err := cw.Rename(old, new); err != nil {
					t.Errorf("worker %d rename %d: %v", w, g, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	ents, _ := c.ReadDir("/")
	if len(ents) != workers {
		t.Fatalf("%d entries after rename chains, want %d", len(ents), workers)
	}
	for w := 0; w < workers; w++ {
		if _, err := c.Stat(fmt.Sprintf("/r%d-gen100", w)); err != nil {
			t.Fatalf("final name of worker %d missing: %v", w, err)
		}
	}
}

func TestConcurrentCrossDirRenames(t *testing.T) {
	_, fs := newFSForTest(t, 64<<20)
	c, _ := fs.Attach(fsapi.Root)
	c.Mkdir("/left", 0o755)
	c.Mkdir("/right", 0o755)
	const workers = 4
	for w := 0; w < workers; w++ {
		c.Create(fmt.Sprintf("/left/ball%d", w), 0o644)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			cw, _ := fs.Attach(fsapi.Root)
			from, to := "/left", "/right"
			for i := 0; i < 50; i++ {
				name := fmt.Sprintf("ball%d", w)
				if err := cw.Rename(from+"/"+name, to+"/"+name); err != nil {
					t.Errorf("worker %d bounce %d: %v", w, i, err)
					return
				}
				from, to = to, from
			}
		}()
	}
	wg.Wait()
	l, _ := c.ReadDir("/left")
	r, _ := c.ReadDir("/right")
	if len(l)+len(r) != workers {
		t.Fatalf("balls lost or duplicated: left=%d right=%d", len(l), len(r))
	}
	// 50 bounces = even, all balls back on the left.
	if len(l) != workers {
		t.Fatalf("after even bounces %d balls on the left, want %d", len(l), workers)
	}
}

func TestConcurrentReadersOneWriterSharedFile(t *testing.T) {
	_, fs := newFSForTest(t, 64<<20)
	c, _ := fs.Attach(fsapi.Root)
	fd, _ := c.Open("/shared", fsapi.OCreate|fsapi.ORdwr, 0o644)
	block := make([]byte, BlockSize)
	for i := range block {
		block[i] = 0xAB
	}
	for i := 0; i < 16; i++ {
		c.Write(fd, block)
	}
	var readers, writer sync.WaitGroup
	stop := make(chan struct{})
	// Writer keeps overwriting whole blocks with a consistent pattern.
	writer.Add(1)
	go func() {
		defer writer.Done()
		cw, _ := fs.Attach(fsapi.Root)
		wfd, _ := cw.Open("/shared", fsapi.ORdwr, 0)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			patt := make([]byte, BlockSize)
			for j := range patt {
				patt[j] = byte(i)
			}
			cw.Pwrite(wfd, patt, uint64(i%16)*BlockSize)
		}
	}()
	// Readers verify each block read is internally consistent (one value).
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			cr, _ := fs.Attach(fsapi.Root)
			rfd, _ := cr.Open("/shared", fsapi.ORdonly, 0)
			buf := make([]byte, BlockSize)
			for i := 0; i < 300; i++ {
				n, err := cr.Pread(rfd, buf, uint64(i%16)*BlockSize)
				if err != nil || n != BlockSize {
					t.Errorf("pread = (%d, %v)", n, err)
					return
				}
				first := buf[0]
				for j := 1; j < n; j++ {
					if buf[j] != first {
						t.Errorf("torn block read: byte 0 = %d, byte %d = %d", first, j, buf[j])
						return
					}
				}
			}
		}()
	}
	readers.Wait()
	close(stop)
	writer.Wait()
}

func TestConcurrentAppendsPrivateFiles(t *testing.T) {
	_, fs := newFSForTest(t, 128<<20)
	const workers = 6
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, _ := fs.Attach(fsapi.Root)
			fd, err := c.Open(fmt.Sprintf("/app%d", w), fsapi.OCreate|fsapi.OWronly|fsapi.OAppend, 0o644)
			if err != nil {
				t.Error(err)
				return
			}
			chunk := make([]byte, 4096)
			for i := 0; i < 500; i++ {
				if _, err := c.Write(fd, chunk); err != nil {
					t.Errorf("append %d: %v", i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	c, _ := fs.Attach(fsapi.Root)
	for w := 0; w < workers; w++ {
		st, err := c.Stat(fmt.Sprintf("/app%d", w))
		if err != nil {
			t.Fatal(err)
		}
		if st.Size != 500*4096 {
			t.Fatalf("file %d size = %d, want %d", w, st.Size, 500*4096)
		}
	}
}

func TestConcurrentAppendsSharedFile(t *testing.T) {
	// Appends are exclusive even in relaxed mode: total size must equal the
	// sum of all appended bytes (no lost updates).
	_, fs := newFSForTest(t, 64<<20)
	c, _ := fs.Attach(fsapi.Root)
	c.Create("/applog", 0o644)
	const workers, per = 6, 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cw, _ := fs.Attach(fsapi.Root)
			fd, _ := cw.Open("/applog", fsapi.OWronly|fsapi.OAppend, 0)
			chunk := make([]byte, 128)
			for i := 0; i < per; i++ {
				if _, err := cw.Write(fd, chunk); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	st, _ := c.Stat("/applog")
	if st.Size != workers*per*128 {
		t.Fatalf("size = %d, want %d (lost appends)", st.Size, workers*per*128)
	}
}

func TestManySubdirectoriesConcurrently(t *testing.T) {
	_, fs := newFSForTest(t, 64<<20)
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, _ := fs.Attach(fsapi.Root)
			base := fmt.Sprintf("/p%d", w)
			if err := c.Mkdir(base, 0o755); err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < 50; i++ {
				if _, err := c.Create(fmt.Sprintf("%s/f%d", base, i), 0o644); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	c, _ := fs.Attach(fsapi.Root)
	for w := 0; w < workers; w++ {
		ents, err := c.ReadDir(fmt.Sprintf("/p%d", w))
		if err != nil || len(ents) != 50 {
			t.Fatalf("dir p%d has %d entries (%v)", w, len(ents), err)
		}
	}
}
