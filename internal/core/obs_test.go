package core

import (
	"testing"

	"simurgh/internal/fsapi"
	"simurgh/internal/obs"
	"simurgh/internal/pmem"
)

// TestOpAttribution checks that the instrumented dispatch path charges each
// operation class its own NVMM traffic: create, write and unlink are all
// persistence points in the paper's protocols, so each must attribute at
// least one fence to its own class (not to a neighbour).
func TestOpAttribution(t *testing.T) {
	reg := obs.NewRegistry()
	reg.SetSamplePeriod(1)
	dev := pmem.New(64 << 20)
	fs, err := Format(dev, fsapi.Root, Options{Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	c, err := fs.Attach(fsapi.Root)
	if err != nil {
		t.Fatal(err)
	}
	fd, err := c.Create("/f", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write(fd, make([]byte, 4096)); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(fd); err != nil {
		t.Fatal(err)
	}
	if err := c.Unlink("/f"); err != nil {
		t.Fatal(err)
	}

	s := fs.Stats()
	for _, op := range []obs.Op{obs.OpCreate, obs.OpWrite, obs.OpUnlink} {
		o := s.Ops[op]
		if o.Calls != 1 {
			t.Errorf("%v: calls = %d, want 1", op, o.Calls)
		}
		if o.Errors != 0 {
			t.Errorf("%v: errors = %d, want 0", op, o.Errors)
		}
		if o.Pmem.Fences < 1 {
			t.Errorf("%v: attributed %d fences, want >= 1", op, o.Pmem.Fences)
		}
	}
	// Write pushes file content through non-temporal stores, so its class
	// must carry the NT bytes.
	if s.Ops[obs.OpWrite].Pmem.NTBytes < 4096 {
		t.Errorf("write attributed %d NT bytes, want >= 4096", s.Ops[obs.OpWrite].Pmem.NTBytes)
	}
	if s.Ops[obs.OpClose].Calls != 1 {
		t.Errorf("close calls = %d, want 1", s.Ops[obs.OpClose].Calls)
	}

	// FS.Stats carries the shard contention counters and device totals.
	if len(s.Shards) != 3 {
		t.Fatalf("shards = %+v, want locks/refs/dirs", s.Shards)
	}
	var gets uint64
	for _, sh := range s.Shards {
		gets += sh.Gets
	}
	if gets == 0 {
		t.Error("no shard activity recorded for a create/write/unlink sequence")
	}
	if s.Device.Fences == 0 || s.Device.NTBytes == 0 {
		t.Errorf("device totals missing: %+v", s.Device)
	}

	// Failed operations count as errors on their own class.
	if _, err := c.Stat("/missing"); err == nil {
		t.Fatal("stat of missing path succeeded")
	}
	s = fs.Stats()
	if o := s.Ops[obs.OpStat]; o.Calls != 1 || o.Errors != 1 {
		t.Errorf("stat stats = calls %d errors %d, want 1/1", o.Calls, o.Errors)
	}
}
