package core

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"simurgh/internal/fsapi"
)

// Edge-case battery for the client layer.

func TestDeepDirectoryNesting(t *testing.T) {
	_, fs := newFSForTest(t, 64<<20)
	c := rootClient(t, fs)
	path := ""
	for i := 0; i < 40; i++ {
		path += fmt.Sprintf("/level%d", i)
		if err := c.Mkdir(path, 0o755); err != nil {
			t.Fatalf("depth %d: %v", i, err)
		}
	}
	if _, err := c.Create(path+"/leaf", 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := c.Stat(path + "/leaf")
	if err != nil || !fsapi.IsRegular(st.Mode) {
		t.Fatalf("deep stat = %v", err)
	}
}

func TestMaxNameLength(t *testing.T) {
	_, fs := newFSForTest(t, 32<<20)
	c := rootClient(t, fs)
	max := strings.Repeat("n", fsapi.MaxNameLen)
	if _, err := c.Create("/"+max, 0o644); err != nil {
		t.Fatalf("max-length name: %v", err)
	}
	if _, err := c.Stat("/" + max); err != nil {
		t.Fatal(err)
	}
	over := strings.Repeat("n", fsapi.MaxNameLen+1)
	if _, err := c.Create("/"+over, 0o644); !errors.Is(err, fsapi.ErrNameTooLong) {
		t.Fatalf("overlong name: %v", err)
	}
}

func TestDotAndDotDotResolution(t *testing.T) {
	_, fs := newFSForTest(t, 32<<20)
	c := rootClient(t, fs)
	c.Mkdir("/a", 0o755)
	c.Mkdir("/a/b", 0o755)
	c.Create("/a/b/f", 0o644)
	for _, p := range []string{"/a/./b/f", "/a/b/../b/f", "/a/../a/b/./f", "/../a/b/f"} {
		if _, err := c.Stat(p); err != nil {
			t.Fatalf("stat %q: %v", p, err)
		}
	}
}

func TestOpenDirectoryForWriteFails(t *testing.T) {
	_, fs := newFSForTest(t, 32<<20)
	c := rootClient(t, fs)
	c.Mkdir("/d", 0o755)
	if _, err := c.Open("/d", fsapi.OWronly, 0); !errors.Is(err, fsapi.ErrIsDir) {
		t.Fatalf("open dir for write: %v", err)
	}
	if _, err := c.Open("/d", fsapi.ORdonly, 0); err != nil {
		t.Fatalf("open dir for read: %v", err)
	}
}

func TestPathThroughFileFails(t *testing.T) {
	_, fs := newFSForTest(t, 32<<20)
	c := rootClient(t, fs)
	c.Create("/file", 0o644)
	if _, err := c.Stat("/file/sub"); !errors.Is(err, fsapi.ErrNotDir) {
		t.Fatalf("path through file: %v", err)
	}
	if _, err := c.Create("/file/sub", 0o644); !errors.Is(err, fsapi.ErrNotDir) {
		t.Fatalf("create through file: %v", err)
	}
}

func TestZeroLengthIO(t *testing.T) {
	_, fs := newFSForTest(t, 32<<20)
	c := rootClient(t, fs)
	fd, _ := c.Open("/f", fsapi.OCreate|fsapi.ORdwr, 0o644)
	if n, err := c.Write(fd, nil); n != 0 || err != nil {
		t.Fatalf("zero write = (%d, %v)", n, err)
	}
	if n, err := c.Read(fd, nil); n != 0 || err != nil {
		t.Fatalf("zero read = (%d, %v)", n, err)
	}
}

func TestSeekNegativeRejected(t *testing.T) {
	_, fs := newFSForTest(t, 32<<20)
	c := rootClient(t, fs)
	fd, _ := c.Open("/f", fsapi.OCreate|fsapi.ORdwr, 0o644)
	if _, err := c.Seek(fd, -10, fsapi.SeekSet); !errors.Is(err, fsapi.ErrInval) {
		t.Fatalf("negative seek: %v", err)
	}
	if _, err := c.Seek(fd, 0, 99); !errors.Is(err, fsapi.ErrInval) {
		t.Fatalf("bad whence: %v", err)
	}
}

func TestSparseWriteReadsZeroHole(t *testing.T) {
	_, fs := newFSForTest(t, 64<<20)
	c := rootClient(t, fs)
	fd, _ := c.Open("/sparse", fsapi.OCreate|fsapi.ORdwr, 0o644)
	// Write far past the start; the hole must read as zeros.
	if _, err := c.Pwrite(fd, []byte("end"), 1<<20); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4096)
	n, err := c.Pread(fd, buf, 4096)
	if err != nil || n != 4096 {
		t.Fatalf("hole read = (%d, %v)", n, err)
	}
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("hole byte %d = %d", i, b)
		}
	}
}

func TestRenameToSamePathIsNoop(t *testing.T) {
	_, fs := newFSForTest(t, 32<<20)
	c := rootClient(t, fs)
	c.Create("/same", 0o644)
	if err := c.Rename("/same", "/same"); err != nil {
		t.Fatalf("self-rename: %v", err)
	}
	if _, err := c.Stat("/same"); err != nil {
		t.Fatal("file lost in self-rename")
	}
}

func TestRenameDirectoryReplacesEmptyDir(t *testing.T) {
	_, fs := newFSForTest(t, 32<<20)
	c := rootClient(t, fs)
	c.Mkdir("/src", 0o755)
	c.Create("/src/x", 0o644)
	c.Mkdir("/dst", 0o755)
	if err := c.Rename("/src", "/dst"); err != nil {
		t.Fatalf("rename dir over empty dir: %v", err)
	}
	if _, err := c.Stat("/dst/x"); err != nil {
		t.Fatal("moved dir content lost")
	}
	// Replacing a non-empty directory must fail.
	c.Mkdir("/src2", 0o755)
	if err := c.Rename("/src2", "/dst"); !errors.Is(err, fsapi.ErrNotEmpty) {
		t.Fatalf("rename over non-empty dir: %v", err)
	}
}

func TestHardLinkToDirectoryRejected(t *testing.T) {
	_, fs := newFSForTest(t, 32<<20)
	c := rootClient(t, fs)
	c.Mkdir("/d", 0o755)
	if err := c.Link("/d", "/d2"); !errors.Is(err, fsapi.ErrIsDir) {
		t.Fatalf("hard link to dir: %v", err)
	}
}

func TestManyClientsIndependentFDTables(t *testing.T) {
	_, fs := newFSForTest(t, 32<<20)
	c1 := rootClient(t, fs)
	c2 := rootClient(t, fs)
	fd1, _ := c1.Create("/shared-file", 0o644)
	// The fd belongs to c1's table only.
	if _, err := c2.Pwrite(fd1, []byte("x"), 0); !errors.Is(err, fsapi.ErrBadFD) {
		t.Fatalf("cross-client fd use: %v", err)
	}
	// Both clients can open the same file independently.
	fd2, err := c2.Open("/shared-file", fsapi.ORdwr, 0)
	if err != nil {
		t.Fatal(err)
	}
	c1.Write(fd1, []byte("from-c1"))
	buf := make([]byte, 16)
	n, _ := c2.Pread(fd2, buf, 0)
	if string(buf[:n]) != "from-c1" {
		t.Fatalf("cross-client visibility = %q", buf[:n])
	}
}

func TestSymlinkTargetTooLong(t *testing.T) {
	_, fs := newFSForTest(t, 32<<20)
	c := rootClient(t, fs)
	long := "/" + strings.Repeat("x", 600)
	if err := c.Symlink(long, "/l"); !errors.Is(err, fsapi.ErrNameTooLong) {
		t.Fatalf("oversized symlink target: %v", err)
	}
}

func TestReadlinkOnRegularFile(t *testing.T) {
	_, fs := newFSForTest(t, 32<<20)
	c := rootClient(t, fs)
	c.Create("/plain", 0o644)
	if _, err := c.Readlink("/plain"); !errors.Is(err, fsapi.ErrInval) {
		t.Fatalf("readlink on file: %v", err)
	}
}

func TestRmdirRootRejected(t *testing.T) {
	_, fs := newFSForTest(t, 32<<20)
	c := rootClient(t, fs)
	if err := c.Rmdir("/"); err == nil {
		t.Fatal("rmdir / succeeded")
	}
}

func TestFilesWithSameHashLine(t *testing.T) {
	// Stuff enough same-line names into one directory that the line's
	// slots overflow into chained blocks, then verify all lookups.
	_, fs := newFSForTest(t, 64<<20)
	c := rootClient(t, fs)
	var sameLine []string
	line := lineOf(fnv32("seed"))
	for i := 0; len(sameLine) < 30; i++ {
		name := fmt.Sprintf("cand%d", i)
		if lineOf(fnv32(name)) == line {
			sameLine = append(sameLine, name)
		}
	}
	for _, n := range sameLine {
		if _, err := c.Create("/"+n, 0o644); err != nil {
			t.Fatalf("create %s: %v", n, err)
		}
	}
	for _, n := range sameLine {
		if _, err := c.Stat("/" + n); err != nil {
			t.Fatalf("stat %s: %v", n, err)
		}
	}
	// Delete every other one and re-verify.
	for i, n := range sameLine {
		if i%2 == 0 {
			if err := c.Unlink("/" + n); err != nil {
				t.Fatalf("unlink %s: %v", n, err)
			}
		}
	}
	for i, n := range sameLine {
		_, err := c.Stat("/" + n)
		if i%2 == 0 && !errors.Is(err, fsapi.ErrNotExist) {
			t.Fatalf("deleted %s visible: %v", n, err)
		}
		if i%2 == 1 && err != nil {
			t.Fatalf("%s lost: %v", n, err)
		}
	}
}
