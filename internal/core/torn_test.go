package core

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"simurgh/internal/fsapi"
	"simurgh/internal/pmem"
)

// Torn-crash testing: CrashPartial lets an arbitrary subset of unfenced
// cache lines reach the media (as real hardware may, through cache
// eviction). The Figure 5 protocols must produce a recoverable state for
// EVERY such subset, not just the strict all-or-nothing crash.

func TestTornCrashRecoveryInvariants(t *testing.T) {
	points := []string{
		"create.after-inode", "create.after-entry", "create.before-slot",
		"create.after-slot", "delete.after-invalidate",
		"delete.after-entry-zero", "unlink.after-remove",
		"rename.after-shadow", "rename.after-swap", "rename.after-place",
		"xrename.after-log", "xrename.after-insert",
		"xrename.before-log-clear", "dir.extend",
	}
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 30; trial++ {
		dev := pmem.New(32 << 20)
		fs, err := Format(dev, fsapi.Root, Options{LineLockTimeout: 20 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		c, _ := fs.Attach(fsapi.Root)
		c.Mkdir("/d1", 0o755)
		c.Mkdir("/d2", 0o755)
		live := map[string][]byte{}
		for i := 0; i < 20; i++ {
			p := fmt.Sprintf("/d1/f%d", i)
			data := make([]byte, rng.Intn(3000))
			rng.Read(data)
			fd, _ := c.Create(p, 0o644)
			c.Write(fd, data)
			c.Close(fd)
			live[p] = data
		}
		dev.SetMode(pmem.ModeTracked)

		point := points[rng.Intn(len(points))]
		fired := false
		fs.SetHooks(Hooks{CrashPoint: func(p string) bool {
			if p == point && !fired {
				fired = true
				return true
			}
			return false
		}})
		for i := 0; i < 40 && !fired; i++ {
			switch rng.Intn(4) {
			case 0:
				p := fmt.Sprintf("/d1/n%d", i)
				if _, err := c.Create(p, 0o644); err == nil {
					live[p] = nil
				}
			case 1:
				for p := range live {
					if err := c.Unlink(p); err == nil || errors.Is(err, ErrCrashed) {
						delete(live, p)
					}
					break
				}
			case 2:
				for p := range live {
					np := fmt.Sprintf("/d1/r%d", i)
					err := c.Rename(p, np)
					data := live[p]
					if errors.Is(err, ErrCrashed) {
						delete(live, p) // either name may survive
					} else if err == nil {
						delete(live, p)
						live[np] = data
					}
					break
				}
			case 3:
				for p := range live {
					np := fmt.Sprintf("/d2/x%d", i)
					err := c.Rename(p, np)
					data := live[p]
					if errors.Is(err, ErrCrashed) {
						delete(live, p)
					} else if err == nil {
						delete(live, p)
						live[np] = data
					}
					break
				}
			}
		}

		// Torn power failure: unfenced lines persist with probability 1/2.
		dev.CrashPartial(rng)
		fs2, _, err := Mount(dev, Options{LineLockTimeout: 20 * time.Millisecond})
		if err != nil {
			t.Fatalf("trial %d (%s): mount after torn crash: %v", trial, point, err)
		}
		c2, _ := fs2.Attach(fsapi.Root)
		// Invariant 1: every file known to be durable is intact, content
		// included (its writes were fenced before the crash window).
		for p, data := range live {
			st, err := c2.Stat(p)
			if err != nil {
				t.Fatalf("trial %d (%s): %s lost after torn crash: %v", trial, point, p, err)
			}
			if data != nil {
				if st.Size != uint64(len(data)) {
					t.Fatalf("trial %d (%s): %s size %d, want %d", trial, point, p, st.Size, len(data))
				}
				fd, err := c2.Open(p, fsapi.ORdonly, 0)
				if err != nil {
					t.Fatalf("trial %d: open %s: %v", trial, p, err)
				}
				buf := make([]byte, len(data))
				c2.Pread(fd, buf, 0)
				for i := range data {
					if buf[i] != data[i] {
						t.Fatalf("trial %d (%s): %s byte %d corrupted", trial, point, p, i)
					}
				}
				c2.Close(fd)
			}
		}
		// Invariant 2: directories listable; every listed entry statable.
		for _, dir := range []string{"/", "/d1", "/d2"} {
			ents, err := c2.ReadDir(dir)
			if err != nil {
				t.Fatalf("trial %d (%s): readdir %s: %v", trial, point, dir, err)
			}
			for _, e := range ents {
				if _, err := c2.Stat(dir + "/" + e.Name); err != nil {
					t.Fatalf("trial %d (%s): listed %s/%s not statable: %v",
						trial, point, dir, e.Name, err)
				}
			}
		}
		// Invariant 3: the volume still works after recovery.
		if _, err := c2.Create("/d2/post", 0o644); err != nil {
			t.Fatalf("trial %d (%s): create after torn recovery: %v", trial, point, err)
		}
	}
}

func TestTornCrashDuringWritesNeverTearsFencedData(t *testing.T) {
	rng := rand.New(rand.NewSource(555))
	for trial := 0; trial < 10; trial++ {
		dev := pmem.New(16 << 20)
		fs, err := Format(dev, fsapi.Root, Options{})
		if err != nil {
			t.Fatal(err)
		}
		c, _ := fs.Attach(fsapi.Root)
		fd, _ := c.Open("/data", fsapi.OCreate|fsapi.ORdwr, 0o644)
		committed := make([]byte, 32768)
		rng.Read(committed)
		c.Pwrite(fd, committed, 0) // fenced by the write path
		dev.SetMode(pmem.ModeTracked)
		// Overwrite region [8k,16k) but die before the sfence: the data
		// reached the write queue but was never ordered.
		crashAt(fs, "write.before-fence")
		newData := make([]byte, 8192)
		rng.Read(newData)
		if _, err := c.Pwrite(fd, newData, 8192); !errors.Is(err, ErrCrashed) {
			t.Fatalf("trial %d: pwrite = %v", trial, err)
		}
		dev.CrashPartial(rng)
		fs2, _, err := Mount(dev, Options{})
		if err != nil {
			t.Fatalf("trial %d: mount after torn write: %v", trial, err)
		}
		c2, _ := fs2.Attach(fsapi.Root)
		st2, err := c2.Stat("/data")
		if err != nil || st2.Size != 32768 {
			t.Fatalf("trial %d: stat = (%+v, %v)", trial, st2, err)
		}
		// Every 64-byte line of the torn region holds either the old or the
		// new bytes — never invented data. Regions outside are untouched.
		fd2, _ := c2.Open("/data", fsapi.ORdonly, 0)
		got := make([]byte, 32768)
		c2.Pread(fd2, got, 0)
		for off := 0; off < 32768; off += 64 {
			oldLine := committed[off : off+64]
			var newLine []byte
			if off >= 8192 && off < 16384 {
				newLine = newData[off-8192 : off-8192+64]
			}
			if bytesEqual(got[off:off+64], oldLine) {
				continue
			}
			if newLine != nil && bytesEqual(got[off:off+64], newLine) {
				continue
			}
			t.Fatalf("trial %d: line at %d is neither old nor new data", trial, off)
		}
	}
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
