package core

import (
	"strings"
	"testing"

	"simurgh/internal/fsapi"
	"simurgh/internal/pmem"
)

// FuzzPathOperations drives create/stat/unlink with arbitrary path strings:
// no input may panic the file system or corrupt the root directory.
func FuzzPathOperations(f *testing.F) {
	for _, seed := range []string{
		"/a", "/a/b", "//x//", "/..", "/" + strings.Repeat("n", 300),
		"/dir/../dir/file", "/\xff\xfe", "/with space", "/.hidden",
	} {
		f.Add(seed)
	}
	dev := pmem.New(32 << 20)
	fs, err := Format(dev, fsapi.Root, Options{})
	if err != nil {
		f.Fatal(err)
	}
	c, _ := fs.Attach(fsapi.Root)
	f.Fuzz(func(t *testing.T, path string) {
		fd, err := c.Create(path, 0o644)
		if err == nil {
			c.Close(fd)
			if _, err := c.Stat(path); err != nil {
				t.Fatalf("created %q but cannot stat: %v", path, err)
			}
			if err := c.Unlink(path); err != nil {
				t.Fatalf("created %q but cannot unlink: %v", path, err)
			}
		}
		// The root must stay healthy regardless.
		if _, err := c.ReadDir("/"); err != nil {
			t.Fatalf("root corrupted by %q: %v", path, err)
		}
	})
}

// FuzzWriteOffsets drives pwrite/pread at arbitrary offsets and sizes.
func FuzzWriteOffsets(f *testing.F) {
	f.Add(uint32(0), []byte("hello"))
	f.Add(uint32(4096), []byte{})
	f.Add(uint32(1<<20), []byte{1, 2, 3})
	dev := pmem.New(64 << 20)
	fs, err := Format(dev, fsapi.Root, Options{})
	if err != nil {
		f.Fatal(err)
	}
	c, _ := fs.Attach(fsapi.Root)
	fd, _ := c.Open("/fuzz", fsapi.OCreate|fsapi.ORdwr, 0o644)
	f.Fuzz(func(t *testing.T, off uint32, data []byte) {
		const maxOff = 8 << 20
		o := uint64(off) % maxOff
		if len(data) > 1<<16 {
			data = data[:1<<16]
		}
		n, err := c.Pwrite(fd, data, o)
		if err != nil {
			t.Fatalf("pwrite(%d bytes at %d): %v", len(data), o, err)
		}
		if n != len(data) {
			t.Fatalf("short pwrite: %d of %d", n, len(data))
		}
		got := make([]byte, len(data))
		if len(data) > 0 {
			m, err := c.Pread(fd, got, o)
			if err != nil || m != len(data) {
				t.Fatalf("pread = (%d, %v)", m, err)
			}
			for i := range data {
				if got[i] != data[i] {
					t.Fatalf("byte %d: %d != %d", i, got[i], data[i])
				}
			}
		}
	})
}
