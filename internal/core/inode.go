package core

import (
	"simurgh/internal/fsapi"
	"simurgh/internal/pmem"
)

// File data management. A regular file's logical blocks are described by a
// chain of extent blocks, each holding up to extMaxEntries (startBlock, n)
// runs in logical order. Appends coalesce with the final run whenever the
// block allocator returns adjacent blocks, so sequentially written files
// typically need a single extent. Data writes use non-temporal stores and a
// single fence before the metadata update, matching the paper's ordering
// (data persisted before metadata, enforced with sfence).

// extentFor walks the chain to find the run containing logical block lb.
// It returns the physical block and how many blocks remain in the run.
func (fs *FS) extentFor(ino pmem.Ptr, lb uint64) (phys uint64, run uint64, ok bool) {
	d := fs.dev
	var cum uint64
	for eb := fs.inoData(ino); !eb.IsNull(); eb = pmem.Ptr(d.Load64(uint64(eb) + extNextOff)) {
		cnt := d.Load64(uint64(eb) + extCountOff)
		for i := uint64(0); i < cnt; i++ {
			off := uint64(eb) + extEntriesOff + i*16
			start := d.Load64(off)
			n := d.Load64(off + 8)
			if lb < cum+n {
				within := lb - cum
				return start + within, n - within, true
			}
			cum += n
		}
	}
	return 0, 0, false
}

// appendExtent records a freshly allocated run at the logical end of the
// file, coalescing with the last run when physically adjacent.
func (fs *FS) appendExtent(ino pmem.Ptr, start, n uint64) error {
	d := fs.dev
	head := fs.inoData(ino)
	if head.IsNull() {
		eb, err := fs.oa.Alloc(ClassExtent, uint64(ino))
		if err != nil {
			return err
		}
		d.Store64(uint64(eb)+extEntriesOff, start)
		d.Store64(uint64(eb)+extEntriesOff+8, n)
		d.Store64(uint64(eb)+extCountOff, 1)
		d.Persist(uint64(eb), ExtentSize)
		fs.oa.ClearDirty(eb)
		d.AtomicStore64(uint64(ino)+inoDataOff, uint64(eb))
		d.Persist(uint64(ino)+inoDataOff, 8)
		fs.bumpBlocks(ino, n)
		return nil
	}
	// Find the tail extent block.
	tail := head
	for {
		next := pmem.Ptr(d.Load64(uint64(tail) + extNextOff))
		if next.IsNull() {
			break
		}
		tail = next
	}
	cnt := d.Load64(uint64(tail) + extCountOff)
	if cnt > 0 {
		lastOff := uint64(tail) + extEntriesOff + (cnt-1)*16
		lastStart := d.Load64(lastOff)
		lastN := d.Load64(lastOff + 8)
		if lastStart+lastN == start {
			// Coalesce: a single 8-byte store extends the file mapping.
			d.Store64(lastOff+8, lastN+n)
			d.Persist(lastOff+8, 8)
			fs.bumpBlocks(ino, n)
			return nil
		}
	}
	if cnt < extMaxEntries {
		off := uint64(tail) + extEntriesOff + cnt*16
		d.Store64(off, start)
		d.Store64(off+8, n)
		d.Persist(off, 16)
		// Publishing the count makes the run visible atomically.
		d.AtomicStore64(uint64(tail)+extCountOff, cnt+1)
		d.Persist(uint64(tail)+extCountOff, 8)
		fs.bumpBlocks(ino, n)
		return nil
	}
	eb, err := fs.oa.Alloc(ClassExtent, uint64(ino))
	if err != nil {
		return err
	}
	d.Store64(uint64(eb)+extEntriesOff, start)
	d.Store64(uint64(eb)+extEntriesOff+8, n)
	d.Store64(uint64(eb)+extCountOff, 1)
	d.Persist(uint64(eb), ExtentSize)
	fs.oa.ClearDirty(eb)
	d.AtomicStore64(uint64(tail)+extNextOff, uint64(eb))
	d.Persist(uint64(tail)+extNextOff, 8)
	fs.bumpBlocks(ino, n)
	return nil
}

func (fs *FS) bumpBlocks(ino pmem.Ptr, n uint64) {
	fs.dev.AtomicAdd64(uint64(ino)+inoBlocksOff, n)
	fs.dev.Persist(uint64(ino)+inoBlocksOff, 8)
}

// allocatedBlocks returns the number of data blocks mapped by the inode.
func (fs *FS) allocatedBlocks(ino pmem.Ptr) uint64 {
	return fs.dev.AtomicLoad64(uint64(ino) + inoBlocksOff)
}

// ensureCapacity grows the file mapping to cover size bytes, allocating
// data blocks from the segmented block allocator with the inode pointer as
// the placement hint ("blocks of the same file closer to each other").
func (fs *FS) ensureCapacity(ino pmem.Ptr, size uint64) error {
	need := (size + BlockSize - 1) / BlockSize
	have := fs.allocatedBlocks(ino)
	for have < need {
		want := need - have
		// Try to grab the whole remainder contiguously, halving on failure.
		var start uint64
		var err error
		n := want
		for {
			start, err = fs.ba.Alloc(n, uint64(ino)>>7)
			if err == nil {
				break
			}
			if n == 1 {
				return fsapi.ErrNoSpace
			}
			n /= 2
		}
		if err := fs.appendExtent(ino, start, n); err != nil {
			fs.ba.Free(start, n)
			return err
		}
		have += n
	}
	return nil
}

// writeAt copies p into the file at off using the NVMM data path:
// non-temporal stores, one fence, then the size/mtime metadata update.
func (fs *FS) writeAt(ino pmem.Ptr, p []byte, off uint64) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	if err := fs.ensureCapacity(ino, off+uint64(len(p))); err != nil {
		return 0, err
	}
	written := 0
	for written < len(p) {
		pos := off + uint64(written)
		phys, run, ok := fs.extentFor(ino, pos/BlockSize)
		if !ok {
			return written, fsapi.ErrNoSpace
		}
		within := pos % BlockSize
		avail := run*BlockSize - within
		chunk := uint64(len(p) - written)
		if chunk > avail {
			chunk = avail
		}
		fs.dev.NTStore(phys*BlockSize+within, p[written:written+int(chunk)])
		written += int(chunk)
	}
	if fs.crash("write.before-fence") {
		return 0, ErrCrashed
	}
	// sfence: data durable before the metadata that references it.
	fs.dev.Fence()
	for {
		old := fs.inoSize(ino)
		end := off + uint64(len(p))
		if end <= old {
			break
		}
		if fs.dev.CompareAndSwap64(uint64(ino)+inoSizeOff, old, end) {
			fs.dev.Flush(uint64(ino)+inoSizeOff, 8)
			break
		}
	}
	fs.touchMtimeLazy(ino)
	fs.dev.Fence() // one fence commits size + times
	return written, nil
}

// readAt copies file bytes [off, off+len(p)) into p, returning the count
// (short at EOF).
func (fs *FS) readAt(ino pmem.Ptr, p []byte, off uint64) int {
	size := fs.inoSize(ino)
	if off >= size {
		return 0
	}
	if off+uint64(len(p)) > size {
		p = p[:size-off]
	}
	read := 0
	for read < len(p) {
		pos := off + uint64(read)
		phys, run, ok := fs.extentFor(ino, pos/BlockSize)
		if !ok {
			// Hole (fallocate'd but never written region reads zero).
			for i := read; i < len(p); i++ {
				p[i] = 0
			}
			read = len(p)
			break
		}
		within := pos % BlockSize
		avail := run*BlockSize - within
		chunk := uint64(len(p) - read)
		if chunk > avail {
			chunk = avail
		}
		fs.dev.ReadAt(phys*BlockSize+within, p[read:read+int(chunk)])
		read += int(chunk)
	}
	return read
}

// truncate adjusts the file size; shrinking frees whole blocks past the new
// end (whole extents only — partial extent runs are trimmed).
func (fs *FS) truncate(ino pmem.Ptr, size uint64) error {
	cur := fs.inoSize(ino)
	if size >= cur {
		if err := fs.ensureCapacity(ino, size); err != nil {
			return err
		}
		fs.dev.AtomicStore64(uint64(ino)+inoSizeOff, size)
		fs.dev.Persist(uint64(ino)+inoSizeOff, 8)
		fs.touchMtime(ino)
		return nil
	}
	keep := (size + BlockSize - 1) / BlockSize
	fs.dev.AtomicStore64(uint64(ino)+inoSizeOff, size)
	fs.dev.Persist(uint64(ino)+inoSizeOff, 8)
	fs.trimExtents(ino, keep)
	fs.touchMtime(ino)
	return nil
}

// trimExtents drops all logical blocks >= keep from the extent chain.
func (fs *FS) trimExtents(ino pmem.Ptr, keep uint64) {
	d := fs.dev
	var cum uint64
	prevLink := uint64(ino) + inoDataOff
	eb := fs.inoData(ino)
	for !eb.IsNull() {
		cnt := d.Load64(uint64(eb) + extCountOff)
		var keepEntries uint64
		for i := uint64(0); i < cnt; i++ {
			off := uint64(eb) + extEntriesOff + i*16
			start := d.Load64(off)
			n := d.Load64(off + 8)
			switch {
			case cum+n <= keep:
				cum += n
				keepEntries = i + 1
			case cum >= keep:
				d.AtomicStore64(off+8, 0)
				fs.ba.Free(start, n)
			default: // partial trim
				hold := keep - cum
				d.Store64(off+8, hold)
				d.Persist(off+8, 8)
				fs.ba.Free(start+hold, n-hold)
				cum = keep
				keepEntries = i + 1
			}
		}
		newCnt := keepEntries
		if newCnt != cnt {
			d.AtomicStore64(uint64(eb)+extCountOff, newCnt)
			d.Persist(uint64(eb)+extCountOff, 8)
		}
		next := pmem.Ptr(d.Load64(uint64(eb) + extNextOff))
		if newCnt == 0 && prevLink != 0 {
			// Unlink and free the now-empty extent block.
			d.AtomicStore64(prevLink, uint64(next))
			d.Persist(prevLink, 8)
			fs.oa.Free(ClassExtent, eb)
		} else {
			prevLink = uint64(eb) + extNextOff
		}
		eb = next
	}
	// Recompute the block count.
	var blocks uint64
	for eb := fs.inoData(ino); !eb.IsNull(); eb = pmem.Ptr(d.Load64(uint64(eb) + extNextOff)) {
		cnt := d.Load64(uint64(eb) + extCountOff)
		for i := uint64(0); i < cnt; i++ {
			blocks += d.Load64(uint64(eb) + extEntriesOff + i*16 + 8)
		}
	}
	d.AtomicStore64(uint64(ino)+inoBlocksOff, blocks)
	d.Persist(uint64(ino)+inoBlocksOff, 8)
}

// unlinkInode drops one link; at zero links the inode and its data are
// freed (Fig 5b step 3: the inode is zeroed) — unless open descriptors
// still reference it, in which case the last close frees it (POSIX orphan
// semantics).
func (fs *FS) unlinkInode(ino pmem.Ptr) {
	n := fs.inoNlink(ino)
	if n > 1 {
		fs.setNlink(ino, n-1)
		return
	}
	fs.releaseOrOrphan(ino)
}

// freeInode releases an inode and everything it references.
func (fs *FS) freeInode(ino pmem.Ptr) {
	mode := fs.inoMode(ino)
	data := fs.inoData(ino)
	switch {
	case fsapi.IsDir(mode):
		for b := data; !b.IsNull(); {
			next := fs.nextBlock(b)
			fs.oa.Free(ClassDirBlock, b)
			b = next
		}
	case fsapi.IsSymlink(mode):
		if !data.IsNull() {
			fs.oa.Free(ClassBlob, data)
		}
	default:
		d := fs.dev
		eb := data
		for !eb.IsNull() {
			cnt := d.Load64(uint64(eb) + extCountOff)
			for i := uint64(0); i < cnt; i++ {
				start := d.Load64(uint64(eb) + extEntriesOff + i*16)
				nblk := d.Load64(uint64(eb) + extEntriesOff + i*16 + 8)
				if nblk > 0 {
					fs.ba.Free(start, nblk)
				}
			}
			next := pmem.Ptr(d.Load64(uint64(eb) + extNextOff))
			fs.oa.Free(ClassExtent, eb)
			eb = next
		}
	}
	fs.dropFileLock(ino)
	fs.oa.Free(ClassInode, ino)
}

// newSymlinkInode creates a symlink inode whose data blob holds target.
func (fs *FS) newSymlinkInode(cred fsapi.Cred, target string, hint uint64) (pmem.Ptr, error) {
	if len(target) > blobCap {
		return 0, fsapi.ErrNameTooLong
	}
	ino, err := fs.newInode(cred, fsapi.ModeSymlink|0o777, hint)
	if err != nil {
		return 0, err
	}
	blob, err := fs.oa.Alloc(ClassBlob, hint)
	if err != nil {
		fs.oa.Free(ClassInode, ino)
		return 0, err
	}
	d := fs.dev
	d.Store64(uint64(blob)+blobLenOff, uint64(len(target)))
	d.WriteAt(uint64(blob)+blobDataOff, []byte(target))
	d.Persist(uint64(blob), BlobSize)
	fs.oa.ClearDirty(blob)
	d.Store64(uint64(ino)+inoDataOff, uint64(blob))
	d.Store64(uint64(ino)+inoSizeOff, uint64(len(target)))
	d.Persist(uint64(ino), InodeSize)
	return ino, nil
}

// readSymlink returns the target stored in a symlink inode.
func (fs *FS) readSymlink(ino pmem.Ptr) (string, error) {
	blob := fs.inoData(ino)
	if blob.IsNull() {
		return "", fsapi.ErrInval
	}
	n := fs.dev.Load64(uint64(blob) + blobLenOff)
	if n > blobCap {
		return "", fsapi.ErrInval
	}
	buf := make([]byte, n)
	fs.dev.ReadAt(uint64(blob)+blobDataOff, buf)
	return string(buf), nil
}
