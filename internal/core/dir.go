package core

import (
	"runtime"
	"time"

	"simurgh/internal/alloc"
	"simurgh/internal/fsapi"
	"simurgh/internal/obs"
	"simurgh/internal/pmem"
)

// Directory operations (§4.3). A directory is a chain of hash blocks; a
// name hashes to one of NLines lines, and line i of the whole directory is
// the row of SlotsPerLine slots at index i in every block of the chain.
// Mutations lock only the line they touch — a busy bit in the first block —
// so independent names proceed fully in parallel, which is what lets
// Simurgh scale in shared directories where VFS-based file systems
// serialize on the directory inode. Location lookups go through the
// volatile per-line index (dirindex.go); the persistent protocol steps are
// exactly Figure 5.

// entryRef locates a live directory entry.
type entryRef struct {
	entry   pmem.Ptr // the file entry object
	slot    uint64   // device offset of the slot pointing at it
	inode   pmem.Ptr
	symlink bool
}

// lockLine acquires the busy bit of a line, performing waiter-side crash
// recovery if the holder exceeds the timeout (§4.3 crash recovery: "the
// waiting process performs the recovery corresponding to this lock").
// The uncontended path is one load and one CAS with no clock reads;
// contended acquisitions are timed into the line lock-wait histogram.
func (fs *FS) lockLine(first pmem.Ptr, line int) {
	bit := uint64(1) << uint(line)
	off := uint64(first) + dirBusyOff
	old := fs.dev.AtomicLoad64(off)
	if old&bit == 0 && fs.dev.CompareAndSwap64(off, old, old|bit) {
		return
	}
	fs.lockLineSlow(first, line, bit, off)
}

func (fs *FS) lockLineSlow(first pmem.Ptr, line int, bit, off uint64) {
	start := time.Now()
	deadline := start.Add(fs.lineTimeout)
	for spins := 0; ; spins++ {
		old := fs.dev.AtomicLoad64(off)
		if old&bit == 0 {
			if fs.dev.CompareAndSwap64(off, old, old|bit) {
				ns := uint64(time.Since(start).Nanoseconds())
				fs.obsR.LockWait(obs.LockLine, ns)
				fs.obsR.Span(obs.SpanLockWait, 0, start, ns, false)
				return
			}
			continue
		}
		if spins&0x3f == 0x3f {
			runtime.Gosched()
			if time.Now().After(deadline) {
				fs.obsR.Event(obs.EvLineLockTimeout)
				fs.recoverStuckLine(first, line)
				deadline = time.Now().Add(fs.lineTimeout)
			}
		}
	}
}

func (fs *FS) unlockLine(first pmem.Ptr, line int) {
	fs.dev.AtomicAnd64(uint64(first)+dirBusyOff, ^(uint64(1) << uint(line)))
}

// nextBlock follows a chain link.
func (fs *FS) nextBlock(b pmem.Ptr) pmem.Ptr {
	return pmem.Ptr(fs.dev.AtomicLoad64(uint64(b) + dirNextOff))
}

// entryName reads an entry's name (inline or blob).
func (fs *FS) entryName(e pmem.Ptr) string {
	d := fs.dev
	nlen := uint64(d.Load32(uint64(e)+feHashOff+4) & 0xffff)
	bits := d.Load32(uint64(e)+feHashOff+4) >> 16
	if bits&feBitLongName != 0 {
		blob := pmem.Ptr(d.Load64(uint64(e) + feNameOff))
		if blob.IsNull() {
			return ""
		}
		n := d.Load64(uint64(blob) + blobLenOff)
		if n > blobCap {
			return ""
		}
		buf := make([]byte, n)
		d.ReadAt(uint64(blob)+blobDataOff, buf)
		return string(buf)
	}
	if nlen > shortNameLen {
		return ""
	}
	buf := make([]byte, nlen)
	d.ReadAt(uint64(e)+feNameOff, buf)
	return string(buf)
}

// entryMatches reports whether entry e carries the given hash and name.
// It compares in place (no allocation: this is the path-walk hot path).
func (fs *FS) entryMatches(e pmem.Ptr, hash uint32, name string) bool {
	d := fs.dev
	if d.Load32(uint64(e)+feHashOff) != hash {
		return false
	}
	meta := d.Load32(uint64(e) + feHashOff + 4)
	if int(meta&0xffff) != len(name) {
		return false
	}
	if (meta>>16)&feBitLongName != 0 {
		blob := pmem.Ptr(d.Load64(uint64(e) + feNameOff))
		if blob.IsNull() || d.Load64(uint64(blob)+blobLenOff) != uint64(len(name)) {
			return false
		}
		return memeq(d.Bytes(uint64(blob)+blobDataOff, uint64(len(name))), name)
	}
	return memeq(d.Bytes(uint64(e)+feNameOff, uint64(len(name))), name)
}

func memeq(b []byte, s string) bool {
	if len(b) != len(s) {
		return false
	}
	for i := 0; i < len(s); i++ {
		if b[i] != s[i] {
			return false
		}
	}
	return true
}

// newEntry allocates and fills a file entry (valid|dirty until committed).
func (fs *FS) newEntry(name string, ino pmem.Ptr, symlink bool, hint uint64) (pmem.Ptr, error) {
	e, err := fs.oa.Alloc(ClassFileEntry, hint)
	if err != nil {
		return 0, err
	}
	d := fs.dev
	var bits uint32
	if symlink {
		bits |= feBitSymlink
	}
	if len(name) > shortNameLen {
		blob, err := fs.oa.Alloc(ClassBlob, hint)
		if err != nil {
			fs.oa.Free(ClassFileEntry, e)
			return 0, err
		}
		d.Store64(uint64(blob)+blobLenOff, uint64(len(name)))
		d.WriteAt(uint64(blob)+blobDataOff, []byte(name))
		d.Persist(uint64(blob), BlobSize)
		fs.oa.ClearDirtyLazy(blob)
		d.Store64(uint64(e)+feNameOff, uint64(blob))
		bits |= feBitLongName
	} else {
		d.WriteAt(uint64(e)+feNameOff, []byte(name))
	}
	d.Store64(uint64(e)+feInodeOff, uint64(ino))
	d.Store32(uint64(e)+feHashOff, fnv32(name))
	d.Store32(uint64(e)+feHashOff+4, uint32(len(name))|bits<<16)
	d.Persist(uint64(e), FileEntrySize)
	return e, nil
}

// freeEntry releases a file entry and its name blob, if any.
func (fs *FS) freeEntry(e pmem.Ptr) {
	meta := fs.dev.Load32(uint64(e) + feHashOff + 4)
	if (meta>>16)&feBitLongName != 0 {
		blob := pmem.Ptr(fs.dev.Load64(uint64(e) + feNameOff))
		if !blob.IsNull() {
			fs.oa.Free(ClassBlob, blob)
		}
	}
	fs.oa.Free(ClassFileEntry, e)
}

// freeEntryBody completes an entry deallocation whose valid bit is already
// clear: free the name blob, zero the body, clear dirty.
func (fs *FS) freeEntryBody(e pmem.Ptr) {
	meta := fs.dev.Load32(uint64(e) + feHashOff + 4)
	if (meta>>16)&feBitLongName != 0 {
		blob := pmem.Ptr(fs.dev.Load64(uint64(e) + feNameOff))
		if !blob.IsNull() {
			fs.oa.Free(ClassBlob, blob)
		}
	}
	fs.dev.Zero(uint64(e)+alloc.BodyOff, FileEntrySize-alloc.BodyOff)
	fs.dev.Persist(uint64(e)+alloc.BodyOff, FileEntrySize-alloc.BodyOff)
	fs.dev.AtomicStore64(uint64(e), 0)
	fs.dev.Persist(uint64(e), 8)
	fs.oa.Recycle(ClassFileEntry, e)
}

// lookupEntry finds name in the directory whose first hash block is first.
// Reads are lock-free (index consult + NVMM verification); entries whose
// create never cleared the dirty bit are committed lazily (idempotent
// recovery-on-access, Fig 5a).
func (fs *FS) lookupEntry(first pmem.Ptr, name string) (entryRef, error) {
	ds := fs.ensureIndex(first)
	hash := fnv32(name)
	line := lineOf(hash)
	var cbuf [4]uint64
	for _, so := range ds.lines[line].candidates(fnv64(name), cbuf[:0]) {
		e := pmem.Ptr(fs.dev.AtomicLoad64(so))
		if e.IsNull() {
			continue
		}
		flags := fs.oa.Flags(e)
		if flags&alloc.FlagValid == 0 {
			continue
		}
		if !fs.entryMatches(e, hash, name) {
			continue
		}
		if flags&alloc.FlagDirty != 0 {
			// Create reached the slot store but crashed before clearing
			// dirty bits: complete the creation (Fig 5a recovery).
			ino := pmem.Ptr(fs.dev.Load64(uint64(e) + feInodeOff))
			if !ino.IsNull() && fs.oa.Flags(ino)&alloc.FlagValid != 0 {
				fs.oa.ClearDirty(ino)
			}
			fs.oa.ClearDirty(e)
		}
		meta := fs.dev.Load32(uint64(e) + feHashOff + 4)
		return entryRef{
			entry:   e,
			slot:    so,
			inode:   pmem.Ptr(fs.dev.Load64(uint64(e) + feInodeOff)),
			symlink: (meta>>16)&feBitSymlink != 0,
		}, nil
	}
	// Index miss. If the line is mid-mutation (possibly by a crashed
	// process that committed the slot store but died before the index
	// update), fall back to reading the persistent line directly — lookups
	// in the paper always read NVMM and never block on the busy bit.
	if fs.dev.AtomicLoad64(uint64(first)+dirBusyOff)&(1<<uint(line)) != 0 {
		return fs.lookupLineSlow(first, line, hash, name)
	}
	return entryRef{}, fsapi.ErrNotExist
}

// dirProbeSpan records the elapsed time since start as a dir-probe span
// (deferred with start evaluated at entry).
func (fs *FS) dirProbeSpan(start time.Time) {
	fs.obsR.Span(obs.SpanDirProbe, 0, start, uint64(time.Since(start).Nanoseconds()), false)
}

// lookupLineSlow scans the persistent line (used only while the line's busy
// bit is set and the index may lag the NVMM state).
func (fs *FS) lookupLineSlow(first pmem.Ptr, line int, hash uint32, name string) (entryRef, error) {
	if fs.obsR.TraceEnabled() {
		defer fs.dirProbeSpan(time.Now())
	}
	for b := first; fs.plausible(b, DirBlockSize); b = fs.nextBlock(b) {
		for s := 0; s < SlotsPerLine; s++ {
			so := slotOff(b, line, s)
			e := pmem.Ptr(fs.dev.AtomicLoad64(so))
			if !fs.plausible(e, FileEntrySize) {
				continue
			}
			flags := fs.oa.Flags(e)
			if flags&alloc.FlagValid == 0 || !fs.entryMatches(e, hash, name) {
				continue
			}
			if flags&alloc.FlagDirty != 0 {
				ino := pmem.Ptr(fs.dev.Load64(uint64(e) + feInodeOff))
				if !ino.IsNull() && fs.oa.Flags(ino)&alloc.FlagValid != 0 {
					fs.oa.ClearDirty(ino)
				}
				fs.oa.ClearDirty(e)
			}
			meta := fs.dev.Load32(uint64(e) + feHashOff + 4)
			return entryRef{
				entry:   e,
				slot:    so,
				inode:   pmem.Ptr(fs.dev.Load64(uint64(e) + feInodeOff)),
				symlink: (meta>>16)&feBitSymlink != 0,
			}, nil
		}
	}
	return entryRef{}, fsapi.ErrNotExist
}

// nameExists checks for a duplicate under the line lock.
func (fs *FS) nameExists(ds *dirState, line int, hash uint32, name string) bool {
	var cbuf [4]uint64
	for _, so := range ds.lines[line].candidates(fnv64(name), cbuf[:0]) {
		e := pmem.Ptr(fs.dev.AtomicLoad64(so))
		if e.IsNull() {
			continue
		}
		if fs.oa.Flags(e)&alloc.FlagValid != 0 && fs.entryMatches(e, hash, name) {
			return true
		}
	}
	return false
}

// takeSlot obtains a free slot in the line, extending the chain when the
// line is full (Fig 5a steps 3-4). Caller holds the line lock.
func (fs *FS) takeSlot(first pmem.Ptr, ds *dirState, line int) (uint64, error) {
	if so, ok := ds.lines[line].popFree(); ok {
		return so, nil
	}
	return fs.extendChain(first, ds, line)
}

// createEntry inserts a new entry into the directory (Fig 5a). The inode
// must already be persisted (valid|dirty). On success both objects are
// committed (dirty cleared).
func (fs *FS) createEntry(dirFirst pmem.Ptr, name string, ino pmem.Ptr, symlink bool) error {
	hash := fnv32(name)
	line := lineOf(hash)
	ds := fs.ensureIndex(dirFirst)

	entry, err := fs.newEntry(name, ino, symlink, uint64(ino))
	if err != nil {
		return err
	}
	if fs.crash("create.after-entry") {
		return ErrCrashed
	}
	fs.lockLine(dirFirst, line)
	ds = fs.ensureIndex(dirFirst) // recovery may have replaced the index
	if fs.nameExists(ds, line, hash, name) {
		fs.unlockLine(dirFirst, line)
		fs.freeEntry(entry)
		return fsapi.ErrExist
	}
	slot, err := fs.takeSlot(dirFirst, ds, line)
	if err == ErrCrashed {
		return err // the "process" died: no cleanup, lock stays held
	}
	if err != nil {
		fs.unlockLine(dirFirst, line)
		fs.freeEntry(entry)
		return err
	}
	if fs.crash("create.before-slot") {
		return ErrCrashed // dies holding the line lock
	}
	fs.dev.AtomicStore64(slot, uint64(entry))
	fs.dev.Persist(slot, 8)
	if fs.crash("create.after-slot") {
		return ErrCrashed
	}
	// One fence commits both dirty-bit clears (Fig 5a step 6).
	fs.oa.ClearDirtyLazy(ino)
	fs.oa.ClearDirtyLazy(entry)
	fs.dev.Fence()
	ds.lines[line].add(fnv64(name), slot)
	fs.unlockLine(dirFirst, line)
	return nil
}

// removeEntry removes name from the directory (Fig 5b) and returns its
// inode. The caller handles inode link-count bookkeeping.
func (fs *FS) removeEntry(dirFirst pmem.Ptr, name string, wantDir *bool) (pmem.Ptr, error) {
	hash := fnv32(name)
	line := lineOf(hash)
	fs.lockLine(dirFirst, line)
	ds := fs.ensureIndex(dirFirst)
	ref, err := fs.lookupEntry(dirFirst, name)
	if err != nil {
		fs.unlockLine(dirFirst, line)
		return 0, err
	}
	if wantDir != nil {
		isDir := fsapi.IsDir(fs.inoMode(ref.inode))
		if *wantDir && !isDir {
			fs.unlockLine(dirFirst, line)
			return 0, fsapi.ErrNotDir
		}
		if !*wantDir && isDir {
			fs.unlockLine(dirFirst, line)
			return 0, fsapi.ErrIsDir
		}
	}
	// Step 2: mark the entry's operation in progress (valid off, dirty on).
	fs.dev.AtomicStore64(uint64(ref.entry), alloc.FlagDirty)
	fs.dev.Persist(uint64(ref.entry), 8)
	if fs.crash("delete.after-invalidate") {
		return 0, ErrCrashed
	}
	// Steps 4-5: zero the entry, then the slot pointer.
	fs.freeEntryBody(ref.entry)
	if fs.crash("delete.after-entry-zero") {
		return 0, ErrCrashed
	}
	fs.dev.AtomicStore64(ref.slot, 0)
	fs.dev.Persist(ref.slot, 8)
	ds.lines[line].remove(fnv64(name), ref.slot)
	ds.lines[line].pushFree(ref.slot)
	fs.unlockLine(dirFirst, line)
	return ref.inode, nil
}

// oaRecycle returns a fully zeroed object to the volatile free lists.
func (fs *FS) oaRecycle(class int, e pmem.Ptr) {
	fs.oa.Recycle(class, e)
}

// replaceDst removes an existing rename destination (POSIX overwrite).
// Caller holds the destination line's lock.
func (fs *FS) replaceDst(ds *dirState, line int, dst entryRef, name string) {
	fs.dev.AtomicStore64(uint64(dst.entry), alloc.FlagDirty)
	fs.dev.Persist(uint64(dst.entry), 8)
	fs.freeEntryBody(dst.entry)
	fs.dev.AtomicStore64(dst.slot, 0)
	fs.dev.Persist(dst.slot, 8)
	ds.lines[line].remove(fnv64(name), dst.slot)
	ds.lines[line].pushFree(dst.slot)
	if fsapi.IsDir(fs.inoMode(dst.inode)) {
		// An (empty, checked) directory has nlink 2; release it outright.
		fs.releaseOrOrphan(dst.inode)
	} else {
		fs.unlinkInode(dst.inode)
	}
}

// renameSameDir implements Fig 5c: shadow entry, pointer swap through the
// old line, final placement in the new line.
func (fs *FS) renameSameDir(dirFirst pmem.Ptr, oldName, newName string) error {
	oldHash, newHash := fnv32(oldName), fnv32(newName)
	oldLine, newLine := lineOf(oldHash), lineOf(newHash)

	// Lock lines in ascending order to avoid deadlock.
	l1, l2 := oldLine, newLine
	if l1 > l2 {
		l1, l2 = l2, l1
	}
	fs.lockLine(dirFirst, l1)
	if l2 != l1 {
		fs.lockLine(dirFirst, l2)
	}
	unlock := func() {
		if l2 != l1 {
			fs.unlockLine(dirFirst, l2)
		}
		fs.unlockLine(dirFirst, l1)
	}
	ds := fs.ensureIndex(dirFirst)

	ref, err := fs.lookupEntry(dirFirst, oldName)
	if err != nil {
		unlock()
		return err
	}
	// POSIX: an existing destination is replaced.
	if dst, err := fs.lookupEntry(dirFirst, newName); err == nil {
		if err := fs.replaceCheck(ref.inode, dst.inode); err != nil {
			unlock()
			return err
		}
		fs.replaceDst(ds, newLine, dst, newName)
	}

	// Step 1-2: shadow entry with the new name, same inode.
	shadow, err := fs.newEntry(newName, ref.inode, ref.symlink, uint64(ref.inode))
	if err != nil {
		unlock()
		return err
	}
	if fs.crash("rename.after-shadow") {
		return ErrCrashed
	}
	// Step 5: swing the old slot to the shadow entry. The hash of the
	// shadow does not match the old line — that deliberate inconsistency is
	// what recovery keys on.
	fs.dev.AtomicStore64(ref.slot, uint64(shadow))
	fs.dev.Persist(ref.slot, 8)
	ds.lines[oldLine].remove(fnv64(oldName), ref.slot)
	if fs.crash("rename.after-swap") {
		return ErrCrashed
	}
	// Step 6: the old entry is no longer needed.
	fs.dev.AtomicStore64(uint64(ref.entry), alloc.FlagDirty)
	fs.dev.Persist(uint64(ref.entry), 8)
	fs.freeEntryBody(ref.entry)

	// Step 7: place the shadow into its proper line.
	slot, err := fs.takeSlot(dirFirst, ds, newLine)
	if err == ErrCrashed {
		return err
	}
	if err != nil {
		unlock()
		return err
	}
	fs.dev.AtomicStore64(slot, uint64(shadow))
	fs.dev.Persist(slot, 8)
	if fs.crash("rename.after-place") {
		return ErrCrashed
	}
	// Step 8: remove the mismatched pointer from the old line.
	fs.dev.AtomicStore64(ref.slot, 0)
	fs.dev.Persist(ref.slot, 8)
	fs.oa.ClearDirty(shadow)
	ds.lines[newLine].add(fnv64(newName), slot)
	ds.lines[oldLine].pushFree(ref.slot)
	unlock()
	return nil
}

// renameCrossDir moves oldName from srcFirst to dstFirst as newName, using
// the per-directory log entry in the source directory's first block (§4.3
// cross-directory renames).
func (fs *FS) renameCrossDir(srcFirst, dstFirst pmem.Ptr, oldName, newName string) error {
	oldHash, newHash := fnv32(oldName), fnv32(newName)
	oldLine, newLine := lineOf(oldHash), lineOf(newHash)

	// Lock the two directories' lines in a global order (by first-block
	// pointer) to avoid deadlocks between concurrent cross-dir renames.
	if srcFirst < dstFirst {
		fs.lockLine(srcFirst, oldLine)
		fs.lockLine(dstFirst, newLine)
	} else {
		fs.lockLine(dstFirst, newLine)
		fs.lockLine(srcFirst, oldLine)
	}
	unlockBoth := func() {
		fs.unlockLine(srcFirst, oldLine)
		fs.unlockLine(dstFirst, newLine)
	}
	sds := fs.ensureIndex(srcFirst)
	dds := fs.ensureIndex(dstFirst)

	ref, err := fs.lookupEntry(srcFirst, oldName)
	if err != nil {
		unlockBoth()
		return err
	}
	if dst, err := fs.lookupEntry(dstFirst, newName); err == nil {
		if err := fs.replaceCheck(ref.inode, dst.inode); err != nil {
			unlockBoth()
			return err
		}
		fs.replaceDst(dds, newLine, dst, newName)
	}

	// Shadow entry that will live in the destination.
	shadow, err := fs.newEntry(newName, ref.inode, ref.symlink, uint64(ref.inode))
	if err != nil {
		unlockBoth()
		return err
	}
	// Step 1-2: write the log entry in the source directory and set its
	// dirty flag; from here recovery can either roll forward or back.
	d := fs.dev
	d.Store64(uint64(srcFirst)+dirLogOldOff, uint64(ref.entry))
	d.Store64(uint64(srcFirst)+dirLogNewOff, uint64(shadow))
	d.Store64(uint64(srcFirst)+dirLogDstOff, uint64(dstFirst))
	d.Persist(uint64(srcFirst)+dirLogOldOff, 24)
	d.AtomicOr64(uint64(srcFirst)+dirMetaOff, dirLogDirtyBit)
	d.Persist(uint64(srcFirst)+dirMetaOff, 8)
	if fs.crash("xrename.after-log") {
		return ErrCrashed
	}

	// Step 4: perform the operation — insert into destination, remove from
	// source.
	slot, err := fs.takeSlot(dstFirst, dds, newLine)
	if err == ErrCrashed {
		return err
	}
	if err != nil {
		fs.clearRenameLog(srcFirst)
		unlockBoth()
		fs.freeEntry(shadow)
		return err
	}
	d.AtomicStore64(slot, uint64(shadow))
	d.Persist(slot, 8)
	if fs.crash("xrename.after-insert") {
		return ErrCrashed
	}
	d.AtomicStore64(ref.slot, 0)
	d.Persist(ref.slot, 8)
	fs.dev.AtomicStore64(uint64(ref.entry), alloc.FlagDirty)
	fs.dev.Persist(uint64(ref.entry), 8)
	fs.freeEntryBody(ref.entry)
	fs.oa.ClearDirty(shadow)
	if fs.crash("xrename.before-log-clear") {
		return ErrCrashed
	}
	fs.clearRenameLog(srcFirst)
	dds.lines[newLine].add(fnv64(newName), slot)
	sds.lines[oldLine].remove(fnv64(oldName), ref.slot)
	sds.lines[oldLine].pushFree(ref.slot)
	unlockBoth()
	return nil
}

func (fs *FS) clearRenameLog(srcFirst pmem.Ptr) {
	d := fs.dev
	d.AtomicAnd64(uint64(srcFirst)+dirMetaOff, ^uint64(dirLogDirtyBit))
	d.Persist(uint64(srcFirst)+dirMetaOff, 8)
	d.Store64(uint64(srcFirst)+dirLogOldOff, 0)
	d.Store64(uint64(srcFirst)+dirLogNewOff, 0)
	d.Store64(uint64(srcFirst)+dirLogDstOff, 0)
	d.Persist(uint64(srcFirst)+dirLogOldOff, 24)
}

// replaceCheck validates replacing dst with src in a rename.
func (fs *FS) replaceCheck(src, dst pmem.Ptr) error {
	if src == dst {
		return nil
	}
	srcDir := fsapi.IsDir(fs.inoMode(src))
	dstDir := fsapi.IsDir(fs.inoMode(dst))
	switch {
	case dstDir && !srcDir:
		return fsapi.ErrIsDir
	case !dstDir && srcDir:
		return fsapi.ErrNotDir
	case dstDir:
		if !fs.dirEmpty(fs.inoData(dst)) {
			return fsapi.ErrNotEmpty
		}
	}
	return nil
}

// dirEmpty reports whether a directory chain has no live entries.
func (fs *FS) dirEmpty(first pmem.Ptr) bool {
	for b := first; fs.plausible(b, DirBlockSize); b = fs.nextBlock(b) {
		for i := 0; i < NLines*SlotsPerLine; i++ {
			e := pmem.Ptr(fs.dev.AtomicLoad64(uint64(b) + dirSlotsOff + uint64(i)*8))
			if !fs.plausible(e, FileEntrySize) {
				continue
			}
			if fs.oa.Flags(e)&alloc.FlagValid != 0 {
				return false
			}
		}
	}
	return true
}

// listDir returns the live entries of a directory.
func (fs *FS) listDir(first pmem.Ptr) []fsapi.DirEntry {
	var out []fsapi.DirEntry
	for b := first; fs.plausible(b, DirBlockSize); b = fs.nextBlock(b) {
		for i := 0; i < NLines*SlotsPerLine; i++ {
			e := pmem.Ptr(fs.dev.AtomicLoad64(uint64(b) + dirSlotsOff + uint64(i)*8))
			if !fs.plausible(e, FileEntrySize) || fs.oa.Flags(e)&alloc.FlagValid == 0 {
				continue
			}
			ino := pmem.Ptr(fs.dev.Load64(uint64(e) + feInodeOff))
			if !fs.plausible(ino, InodeSize) {
				continue
			}
			out = append(out, fsapi.DirEntry{
				Name: fs.entryName(e),
				Ino:  uint64(ino),
				Mode: fs.inoMode(ino),
			})
		}
	}
	return out
}
