package core

import (
	"time"

	"simurgh/internal/alloc"
	"simurgh/internal/fsapi"
	"simurgh/internal/obs"
	"simurgh/internal/pmem"
)

// Crash recovery (§4.3, §5.5). Two mechanisms exist, both decentralized:
//
//   - Process-crash recovery: a process that busy-waits on a directory line
//     lock longer than the threshold assumes the holder died and repairs the
//     line itself, using only the persistent flag states — every
//     (flags, operation) combination maps to a unique recovery decision.
//
//   - Full-system recovery: an unclean mount runs a mark-and-sweep over all
//     metadata objects and data blocks, completing or rolling back
//     half-finished operations, reclaiming leaked objects, and rebuilding
//     the volatile allocator state.

// RecoveryStats reports what a mount-time recovery found and did.
type RecoveryStats struct {
	Dirs          uint64
	Files         uint64
	Symlinks      uint64
	DirBlocks     uint64
	UsedDataBlock uint64
	FixedSlots    uint64 // stale slot pointers completed (crashed deletes)
	FixedCreates  uint64 // dirty create pairs committed
	FixedRenames  uint64 // same-dir renames completed via hash mismatch
	FixedLogs     uint64 // cross-directory rename logs rolled forward/back
	Reclaimed     uint64 // leaked objects returned to the allocator
	Elapsed       time.Duration
	WasClean      bool
}

// removeSlotFromIndex drops a slot from a line's index when the entry's
// name is no longer recoverable (the crashed delete already zeroed it).
func (l *dirLine) removeSlotAnyHash(slot uint64) {
	l.mu.Lock()
	for h, ss := range l.byHash {
		for i, s := range ss {
			if s == slot {
				ss[i] = ss[len(ss)-1]
				ss = ss[:len(ss)-1]
				if len(ss) == 0 {
					delete(l.byHash, h)
				} else {
					l.byHash[h] = ss
				}
				l.mu.Unlock()
				return
			}
		}
	}
	l.mu.Unlock()
}

// containsSlot reports whether the index already references the slot.
func (l *dirLine) containsSlot(h uint64, slot uint64) bool {
	l.mu.RLock()
	defer l.mu.RUnlock()
	for _, s := range l.byHash[h] {
		if s == slot {
			return true
		}
	}
	return false
}

// recoverStuckLine is the waiter-side recovery: called after a line lock
// timed out. It repairs every recoverable state in the line and then clears
// the busy bit on behalf of the dead holder.
func (fs *FS) recoverStuckLine(first pmem.Ptr, line int) {
	fs.recoveryMu.Lock()
	defer fs.recoveryMu.Unlock()
	bit := uint64(1) << uint(line)
	if fs.dev.AtomicLoad64(uint64(first)+dirBusyOff)&bit == 0 {
		fs.obsR.Event(obs.EvWaiterRecoveryNoop)
		return // holder released while we waited for the recovery mutex
	}
	fs.obsR.Event(obs.EvWaiterRecovery)
	start := time.Now()
	fs.repairLine(first, line, nil)
	if fs.dev.AtomicLoad64(uint64(first)+dirMetaOff)&dirLogDirtyBit != 0 {
		fs.recoverRenameLog(first, nil)
	}
	fs.unlockLine(first, line)
	fs.obsR.Span(obs.SpanRecovery, 0, start, uint64(time.Since(start).Nanoseconds()), false)
}

// repairLine walks one line and fixes every half-done operation it finds,
// keeping the volatile index in sync.
func (fs *FS) repairLine(first pmem.Ptr, line int, st *RecoveryStats) {
	d := fs.dev
	ds := fs.ensureIndex(first)
	for b := first; !b.IsNull(); b = fs.nextBlock(b) {
		for s := 0; s < SlotsPerLine; s++ {
			so := slotOff(b, line, s)
			e := pmem.Ptr(d.AtomicLoad64(so))
			if e.IsNull() {
				continue
			}
			flags := fs.oa.Flags(e)
			switch {
			case flags == 0, flags == alloc.FlagDirty:
				// Crashed delete: finish it.
				if d.CompareAndSwap64(so, uint64(e), 0) {
					d.Persist(so, 8)
					if fs.oa.Flags(e) == alloc.FlagDirty {
						fs.freeEntryBody(e)
					}
					ds.lines[line].removeSlotAnyHash(so)
					ds.lines[line].pushFree(so)
					if st != nil {
						st.FixedSlots++
					}
				}
			case flags&alloc.FlagValid != 0:
				hash := d.Load32(uint64(e) + feHashOff)
				if lineOf(hash) != line {
					// Hash mismatch: a same-directory rename got as far as
					// swinging the old slot to the shadow entry (Fig 5c
					// step 5) but crashed before placing it in its proper
					// line. Complete the move.
					fs.completeRenameMove(first, ds, line, so, e, st)
					continue
				}
				if flags&alloc.FlagDirty != 0 {
					// Create reached the slot store but not the dirty
					// clears: commit it.
					ino := pmem.Ptr(d.Load64(uint64(e) + feInodeOff))
					if !ino.IsNull() && fs.oa.Flags(ino)&alloc.FlagValid != 0 {
						fs.oa.ClearDirty(ino)
					}
					fs.oa.ClearDirty(e)
					h := fnv64(fs.entryName(e))
					if !ds.lines[line].containsSlot(h, so) {
						ds.lines[line].add(h, so)
					}
					if st != nil {
						st.FixedCreates++
					}
				}
			}
		}
	}
}

// completeRenameMove finishes a same-dir rename: entry e sits in a slot of
// the wrong line (srcLine); move it to the line its hash selects.
func (fs *FS) completeRenameMove(first pmem.Ptr, ds *dirState, srcLine int, srcSlot uint64, e pmem.Ptr, st *RecoveryStats) {
	d := fs.dev
	hash := d.Load32(uint64(e) + feHashOff)
	target := lineOf(hash)
	name := fs.entryName(e)
	h64 := fnv64(name)
	if target != srcLine {
		fs.lockLine(first, target)
		defer fs.unlockLine(first, target)
	}
	// Check the entry is not already placed in its proper line (crash
	// between Fig 5c steps 7 and 8: both slots point at it).
	already := uint64(0)
	for b := first; !b.IsNull(); b = fs.nextBlock(b) {
		for s := 0; s < SlotsPerLine; s++ {
			so := slotOff(b, target, s)
			if pmem.Ptr(d.AtomicLoad64(so)) == e {
				already = so
			}
		}
	}
	if already == 0 {
		slot, err := fs.takeSlot(first, ds, target)
		if err != nil {
			return
		}
		d.AtomicStore64(slot, uint64(e))
		d.Persist(slot, 8)
		already = slot
	}
	d.AtomicStore64(srcSlot, 0)
	d.Persist(srcSlot, 8)
	if fs.oa.Flags(e)&alloc.FlagDirty != 0 {
		fs.oa.ClearDirty(e)
	}
	ds.lines[srcLine].removeSlotAnyHash(srcSlot)
	ds.lines[srcLine].pushFree(srcSlot)
	if !ds.lines[target].containsSlot(h64, already) {
		ds.lines[target].add(h64, already)
	}
	if st != nil {
		st.FixedRenames++
	}
}

// recoverRenameLog rolls a cross-directory rename forward or back based on
// how far it progressed: if the shadow entry reached the destination
// directory, the move completes; otherwise it is undone.
func (fs *FS) recoverRenameLog(srcFirst pmem.Ptr, st *RecoveryStats) {
	d := fs.dev
	oldE := pmem.Ptr(d.Load64(uint64(srcFirst) + dirLogOldOff))
	newE := pmem.Ptr(d.Load64(uint64(srcFirst) + dirLogNewOff))
	dstFirst := pmem.Ptr(d.Load64(uint64(srcFirst) + dirLogDstOff))
	if newE.IsNull() || dstFirst.IsNull() {
		fs.clearRenameLog(srcFirst)
		return
	}
	sds := fs.ensureIndex(srcFirst)
	dds := fs.ensureIndex(dstFirst)
	// Is the shadow entry present in the destination directory?
	var insertedSlot uint64
	var newLine int
	if fs.oa.Flags(newE)&alloc.FlagValid != 0 {
		hash := d.Load32(uint64(newE) + feHashOff)
		newLine = lineOf(hash)
		for b := dstFirst; !b.IsNull(); b = fs.nextBlock(b) {
			for s := 0; s < SlotsPerLine; s++ {
				so := slotOff(b, newLine, s)
				if pmem.Ptr(d.AtomicLoad64(so)) == newE {
					insertedSlot = so
				}
			}
		}
	}
	if insertedSlot != 0 {
		// Roll forward: remove the old entry from the source directory.
		if !oldE.IsNull() && fs.oa.Flags(oldE) != 0 {
			ohash := d.Load32(uint64(oldE) + feHashOff)
			oline := lineOf(ohash)
			for b := srcFirst; !b.IsNull(); b = fs.nextBlock(b) {
				for s := 0; s < SlotsPerLine; s++ {
					so := slotOff(b, oline, s)
					if pmem.Ptr(d.AtomicLoad64(so)) == oldE {
						d.AtomicStore64(so, 0)
						d.Persist(so, 8)
						sds.lines[oline].removeSlotAnyHash(so)
						sds.lines[oline].pushFree(so)
					}
				}
			}
			if fs.oa.Flags(oldE)&alloc.FlagValid != 0 {
				fs.dev.AtomicStore64(uint64(oldE), alloc.FlagDirty)
				fs.dev.Persist(uint64(oldE), 8)
			}
			if fs.oa.Flags(oldE) == alloc.FlagDirty {
				fs.freeEntryBody(oldE)
			}
		}
		if fs.oa.Flags(newE)&alloc.FlagDirty != 0 {
			fs.oa.ClearDirty(newE)
		}
		h := fnv64(fs.entryName(newE))
		if !dds.lines[newLine].containsSlot(h, insertedSlot) {
			dds.lines[newLine].add(h, insertedSlot)
		}
	} else {
		// Roll back: discard the shadow entry; the old one is untouched.
		if f := fs.oa.Flags(newE); f&alloc.FlagValid != 0 {
			fs.oa.Free(ClassFileEntry, newE)
		}
	}
	fs.clearRenameLog(srcFirst)
	fs.obsR.Event(obs.EvRenameLogRecovered)
	if st != nil {
		st.FixedLogs++
	}
}

// markState accumulates the reachable object sets of the mark phase.
type markState struct {
	inodes    map[pmem.Ptr]bool
	entries   map[pmem.Ptr]bool
	dirBlocks map[pmem.Ptr]bool
	extents   map[pmem.Ptr]bool
	blobs     map[pmem.Ptr]bool
	dataUsed  map[uint64]uint64 // start block -> run length
}

// recoverAll is the mount-time scan: mark from the root, fix half-done
// operations (when fix is set), sweep every object class, and rebuild the
// block allocator. Even clean mounts run the mark phase, because the block
// allocator lives in volatile memory (§4.2).
func (fs *FS) recoverAll(fix bool) (*RecoveryStats, error) {
	start := time.Now()
	st := &RecoveryStats{WasClean: !fix}
	if fix {
		fs.obsR.Event(obs.EvMountRecovery)
		fs.recStats.Store(st)
		defer fs.recStats.Store((*RecoveryStats)(nil))
		defer func() {
			fs.obsR.Span(obs.SpanRecovery, 0, start, uint64(time.Since(start).Nanoseconds()), false)
		}()
	}
	ms := &markState{
		inodes:    map[pmem.Ptr]bool{},
		entries:   map[pmem.Ptr]bool{},
		dirBlocks: map[pmem.Ptr]bool{},
		extents:   map[pmem.Ptr]bool{},
		blobs:     map[pmem.Ptr]bool{},
		dataUsed:  map[uint64]uint64{},
	}
	fs.markInode(fs.rootInode, ms, st, fix)

	if fix {
		// Reclaim unreachable subtrees before the generic sweep so their
		// data blocks and nested objects do not leak. (The sweep itself
		// only frees single objects.)
		fs.oa.Scan(ClassInode, func(ptr pmem.Ptr, flags uint64) {
			if flags&alloc.FlagValid != 0 && !ms.inodes[ptr] {
				fs.reclaimTree(ptr, st)
			}
		})
	}

	sweep := func(class int, set map[pmem.Ptr]bool) {
		s := fs.oa.Sweep(class, func(p pmem.Ptr) bool { return set[p] })
		st.Reclaimed += s.Reclaimed + s.Completed
	}
	sweep(ClassInode, ms.inodes)
	sweep(ClassDirBlock, ms.dirBlocks)
	sweep(ClassFileEntry, ms.entries)
	sweep(ClassExtent, ms.extents)
	sweep(ClassBlob, ms.blobs)

	// Rebuild the volatile block allocator: slab segments + reachable data.
	firstBlock, nBlocks := fs.ba.Range()
	used := make([]bool, nBlocks)
	markRun := func(block, n uint64) {
		for b := block; b < block+n && b-firstBlock < nBlocks; b++ {
			if b >= firstBlock {
				used[b-firstBlock] = true
			}
		}
	}
	fs.oa.UsedSegments(markRun)
	for startBlk, n := range ms.dataUsed {
		markRun(startBlk, n)
		st.UsedDataBlock += n
	}
	fs.ba.RebuildFromUsed(used)

	st.Elapsed = time.Since(start)
	return st, nil
}

// plausible bounds-checks a persistent pointer before recovery dereferences
// it: after a torn crash, corrupt pointers must degrade to skipped objects,
// never to a wild read.
func (fs *FS) plausible(ptr pmem.Ptr, size uint64) bool {
	return ptr != 0 && uint64(ptr)%8 == 0 && uint64(ptr)+size <= fs.dev.Size() &&
		uint64(ptr) >= BlockSize
}

// markInode visits one inode and, for directories, recurses into entries.
func (fs *FS) markInode(ino pmem.Ptr, ms *markState, st *RecoveryStats, fix bool) {
	if !fs.plausible(ino, InodeSize) || ms.inodes[ino] {
		return
	}
	ms.inodes[ino] = true
	d := fs.dev
	mode := fs.inoMode(ino)
	switch {
	case fsapi.IsDir(mode):
		st.Dirs++
		first := fs.inoData(ino)
		if first.IsNull() {
			return
		}
		if fix {
			// Locks do not survive a crash: clear leftover busy bits, then
			// repair every line and any pending cross-directory log.
			d.AtomicStore64(uint64(first)+dirBusyOff, 0)
			if d.AtomicLoad64(uint64(first)+dirMetaOff)&dirLogDirtyBit != 0 {
				fs.recoverRenameLog(first, st)
			}
			for line := 0; line < NLines; line++ {
				fs.repairLine(first, line, st)
			}
		}
		for b := first; fs.plausible(b, DirBlockSize) && !ms.dirBlocks[b]; b = fs.nextBlock(b) {
			ms.dirBlocks[b] = true
			st.DirBlocks++
			for i := 0; i < NLines*SlotsPerLine; i++ {
				e := pmem.Ptr(d.AtomicLoad64(uint64(b) + dirSlotsOff + uint64(i)*8))
				if !fs.plausible(e, FileEntrySize) || fs.oa.Flags(e)&alloc.FlagValid == 0 {
					continue
				}
				ms.entries[e] = true
				meta := d.Load32(uint64(e) + feHashOff + 4)
				if (meta>>16)&feBitLongName != 0 {
					if blob := pmem.Ptr(d.Load64(uint64(e) + feNameOff)); fs.plausible(blob, BlobSize) {
						ms.blobs[blob] = true
					}
				}
				child := pmem.Ptr(d.Load64(uint64(e) + feInodeOff))
				if !child.IsNull() {
					fs.markInode(child, ms, st, fix)
				}
			}
		}
	case fsapi.IsSymlink(mode):
		st.Symlinks++
		if blob := fs.inoData(ino); fs.plausible(blob, BlobSize) {
			ms.blobs[blob] = true
		}
	default:
		st.Files++
		_, nBlocks := fs.ba.Range()
		eb := fs.inoData(ino)
		for fs.plausible(eb, ExtentSize) && !ms.extents[eb] {
			ms.extents[eb] = true
			cnt := d.Load64(uint64(eb) + extCountOff)
			if cnt > extMaxEntries {
				cnt = extMaxEntries
			}
			for i := uint64(0); i < cnt; i++ {
				startBlk := d.Load64(uint64(eb) + extEntriesOff + i*16)
				n := d.Load64(uint64(eb) + extEntriesOff + i*16 + 8)
				if n > 0 && startBlk+n <= nBlocks+1 {
					ms.dataUsed[startBlk] = n
				}
			}
			eb = pmem.Ptr(d.Load64(uint64(eb) + extNextOff))
		}
	}
}

// reclaimTree frees an unreachable inode and everything below it.
func (fs *FS) reclaimTree(ino pmem.Ptr, st *RecoveryStats) {
	if !fs.plausible(ino, InodeSize) {
		return
	}
	d := fs.dev
	mode := fs.inoMode(ino)
	if fsapi.IsDir(mode) {
		first := fs.inoData(ino)
		seen := map[pmem.Ptr]bool{}
		for b := first; fs.plausible(b, DirBlockSize) && !seen[b]; b = fs.nextBlock(b) {
			seen[b] = true
			for i := 0; i < NLines*SlotsPerLine; i++ {
				e := pmem.Ptr(d.AtomicLoad64(uint64(b) + dirSlotsOff + uint64(i)*8))
				if !fs.plausible(e, FileEntrySize) || fs.oa.Flags(e) == 0 {
					continue
				}
				child := pmem.Ptr(d.Load64(uint64(e) + feInodeOff))
				if fs.plausible(child, InodeSize) && fs.oa.Flags(child)&alloc.FlagValid != 0 {
					fs.reclaimTree(child, st)
				}
				fs.dev.AtomicStore64(uint64(e), alloc.FlagDirty)
				fs.dev.Persist(uint64(e), 8)
				fs.freeEntryBody(e)
				st.Reclaimed++
			}
		}
		fs.invalidateDir(first)
	}
	fs.freeInode(ino)
	st.Reclaimed++
}
