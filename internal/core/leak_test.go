package core

import (
	"fmt"
	"testing"
)

// TestChurnDoesNotLeakBlocks guards the create-write-fsync-unlink cycle
// against data-block leaks (regression net for the Filebench workloads).
func TestChurnDoesNotLeakBlocks(t *testing.T) {
	_, fs := newFSForTest(t, 64<<20)
	c := rootClient(t, fs)
	free0 := fs.FreeBlocks()
	buf := make([]byte, 8192)
	for i := 0; i < 2000; i++ {
		p := fmt.Sprintf("/f%d", i%50)
		c.Unlink(p)
		fd, err := c.Create(p, 0o644)
		if err != nil {
			t.Fatalf("i=%d create: %v (free=%d)", i, err, fs.FreeBlocks())
		}
		if _, err := c.Write(fd, buf); err != nil {
			t.Fatalf("i=%d write: %v free=%d", i, err, fs.FreeBlocks())
		}
		c.Fsync(fd)
		c.Close(fd)
	}
	for i := 0; i < 50; i++ {
		c.Unlink(fmt.Sprintf("/f%d", i))
	}
	if free := fs.FreeBlocks(); free0-free > 200 {
		t.Fatalf("leaked %d blocks", free0-free)
	}
}
