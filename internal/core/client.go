package core

import (
	"io"
	"sync"
	"sync/atomic"
	"time"

	"simurgh/internal/fsapi"
	"simurgh/internal/obs"
	"simurgh/internal/pmem"
)

// Client is one attached process: its credentials (fixed at preload time
// and held in the protected pages, §3.2) plus its private open-file map
// (§4.3). Everything else is shared NVMM. Each public operation models one
// protected-function call and charges the jmpp/pret delta.
type Client struct {
	fs       *FS
	cred     fsapi.Cred
	obsShard uint32
	nextFD   atomic.Int32
	files    sync.Map // fsapi.FD -> *openFile
}

// openFile is one open-file-map entry: open mode, current position, and the
// persistent pointer to the inode (no inode numbers exist).
type openFile struct {
	ino    pmem.Ptr
	flags  fsapi.OpenFlag
	pos    atomic.Uint64
	append bool
}

const maxSymlinkDepth = 10

// Attach registers a process with the volume.
func (fs *FS) Attach(cred fsapi.Cred) (fsapi.Client, error) {
	c := &Client{fs: fs, cred: cred, obsShard: fs.obsR.ShardHint()}
	c.nextFD.Store(2) // 0/1/2 conventionally reserved
	fs.attached.Store(c, struct{}{})
	return c, nil
}

// Name implements fsapi.FileSystem.
func (fs *FS) Name() string { return "simurgh" }

// opCall scopes one public operation through the instrumented dispatch
// path. begin charges the protected-call (jmpp/pret) cost and, when the op
// class is deep-sampled, opens a latency/NVMM-attribution window; end
// records the outcome. The pair is the only instrumentation entry point:
// every public operation is written as
//
//	func (c *Client) X(...) (..., err error) {
//		defer c.begin(obs.OpX).end(&err)
//		...
//	}
//
// so per-op counters, latency histograms and flush/fence attribution stay
// in lockstep with the cost model by construction. Attribution windows
// snapshot the shared device counters, so they are exact when operations do
// not overlap and an upper bound under concurrency (see package obs).
type opCall struct {
	c  *Client
	op obs.Op
	w  *opWindow // non-nil only for deep-sampled calls
}

// opWindow is the deep-sampling state of one operation window. It lives
// behind a pointer so the common (non-sampled) opCall stays small enough to
// copy through the deferred end for a few nanoseconds; the allocation is
// paid only once per sample period.
type opWindow struct {
	start time.Time
	base  pmem.StatsSnapshot
}

// begin is the single cost/instrumentation entry helper of the client.
func (c *Client) begin(op obs.Op) opCall {
	c.fs.costM.ProtectedCall()
	oc := opCall{c: c, op: op}
	if c.fs.obsR.EnterAt(c.obsShard, op) {
		oc.w = &opWindow{base: c.fs.dev.StatsSnapshot(), start: time.Now()}
	}
	return oc
}

// end closes the operation window; errp points at the operation's named
// error result so a deferred end observes the final outcome.
func (oc opCall) end(errp *error) {
	fs := oc.c.fs
	failed := errp != nil && *errp != nil
	if failed {
		fs.obsR.ErrorAt(oc.c.obsShard, oc.op)
	}
	if oc.w != nil {
		lat := time.Since(oc.w.start)
		delta := fs.dev.StatsSnapshot().Sub(oc.w.base)
		fs.obsR.SampleAt(oc.c.obsShard, oc.op, oc.w.start, uint64(lat.Nanoseconds()), toDelta(delta), failed)
	}
}

// resolve walks path from the root, enforcing execute permission on every
// traversed directory and following symlinks (up to maxSymlinkDepth). If
// followLast is false a final symlink is returned as-is.
func (c *Client) resolve(path string, followLast bool) (pmem.Ptr, error) {
	comps, err := fsapi.SplitPath(path)
	if err != nil {
		return 0, err
	}
	return c.walk(comps, followLast, 0)
}

func (c *Client) walk(comps []string, followLast bool, depth int) (pmem.Ptr, error) {
	return c.walkFrom(c.fs.rootInode, comps, followLast, depth)
}

// walkFrom resolves components starting at an arbitrary directory inode.
func (c *Client) walkFrom(start pmem.Ptr, comps []string, followLast bool, depth int) (pmem.Ptr, error) {
	fs := c.fs
	cur := start
	for i := 0; i < len(comps); i++ {
		mode := fs.inoMode(cur)
		if !fsapi.IsDir(mode) {
			return 0, fsapi.ErrNotDir
		}
		if err := fsapi.CheckPerm(c.cred, fs.inoUID(cur), fs.inoGID(cur), mode, fsapi.AccessExec); err != nil {
			return 0, err
		}
		ref, err := fs.lookupEntry(fs.inoData(cur), comps[i])
		if err != nil {
			return 0, err
		}
		ino := ref.inode
		if fsapi.IsSymlink(fs.inoMode(ino)) && (i < len(comps)-1 || followLast) {
			if depth >= maxSymlinkDepth {
				return 0, fsapi.ErrLoop
			}
			target, err := fs.readSymlink(ino)
			if err != nil {
				return 0, err
			}
			tcomps, err := fsapi.SplitPath(target)
			if err != nil {
				return 0, err
			}
			rest := comps[i+1:]
			if target != "" && target[0] == '/' {
				return c.walk(append(tcomps, rest...), followLast, depth+1)
			}
			return c.walkFrom(cur, append(append([]string{}, tcomps...), rest...), followLast, depth+1)
		}
		cur = ino
	}
	return cur, nil
}

// resolveParent returns the parent directory inode of path and the final
// component name, checking write+exec permission on the parent when
// forWrite is set.
func (c *Client) resolveParent(path string, forWrite bool) (pmem.Ptr, string, error) {
	dir, name, err := fsapi.BaseDir(path)
	if err != nil {
		return 0, "", err
	}
	parent, err := c.walk(dir, true, 0)
	if err != nil {
		return 0, "", err
	}
	if !fsapi.IsDir(c.fs.inoMode(parent)) {
		return 0, "", fsapi.ErrNotDir
	}
	want := fsapi.AccessExec
	if forWrite {
		want |= fsapi.AccessWrite
	}
	if err := fsapi.CheckPerm(c.cred, c.fs.inoUID(parent), c.fs.inoGID(parent), c.fs.inoMode(parent), want); err != nil {
		return 0, "", err
	}
	return parent, name, nil
}

func (c *Client) install(ino pmem.Ptr, flags fsapi.OpenFlag) (fsapi.FD, error) {
	if err := c.fs.incRef(ino); err != nil {
		return -1, err
	}
	fd := fsapi.FD(c.nextFD.Add(1))
	of := &openFile{ino: ino, flags: flags, append: flags&fsapi.OAppend != 0}
	c.files.Store(fd, of)
	return fd, nil
}

func (c *Client) file(fd fsapi.FD) (*openFile, error) {
	v, ok := c.files.Load(fd)
	if !ok {
		return nil, fsapi.ErrBadFD
	}
	return v.(*openFile), nil
}

// Create implements fsapi.Client. It is charged and attributed as its own
// op class (the paper's figures single out file creation).
func (c *Client) Create(path string, perm uint32) (fd fsapi.FD, err error) {
	defer c.begin(obs.OpCreate).end(&err)
	return c.open(path, fsapi.OCreate|fsapi.OWronly|fsapi.OTrunc, perm)
}

// Open implements fsapi.Client.
func (c *Client) Open(path string, flags fsapi.OpenFlag, perm uint32) (fd fsapi.FD, err error) {
	defer c.begin(obs.OpOpen).end(&err)
	return c.open(path, flags, perm)
}

// open is the shared uninstrumented open/create path.
func (c *Client) open(path string, flags fsapi.OpenFlag, perm uint32) (fsapi.FD, error) {
	fs := c.fs
	ino, err := c.resolve(path, true)
	switch {
	case err == nil:
		if flags&(fsapi.OCreate|fsapi.OExcl) == fsapi.OCreate|fsapi.OExcl {
			return -1, fsapi.ErrExist
		}
	case err == fsapi.ErrNotExist && flags&fsapi.OCreate != 0:
		parent, name, perr := c.resolveParent(path, true)
		if perr != nil {
			return -1, perr
		}
		ino, err = c.createFile(parent, name, perm)
		if err == fsapi.ErrExist && flags&fsapi.OExcl == 0 {
			// Raced with a concurrent creator; use the winner's file.
			ino, err = c.resolve(path, true)
		}
		if err != nil {
			return -1, err
		}
	default:
		return -1, err
	}
	mode := fs.inoMode(ino)
	if fsapi.IsDir(mode) && flags&(fsapi.OWronly|fsapi.ORdwr) != 0 {
		return -1, fsapi.ErrIsDir
	}
	var want uint32
	if flags&(fsapi.OWronly|fsapi.ORdwr) != 0 {
		want |= fsapi.AccessWrite
	}
	if flags&fsapi.OWronly == 0 {
		want |= fsapi.AccessRead
	}
	if err := fsapi.CheckPerm(c.cred, fs.inoUID(ino), fs.inoGID(ino), mode, want); err != nil {
		return -1, err
	}
	if flags&fsapi.OTrunc != 0 && fsapi.IsRegular(mode) && flags&(fsapi.OWronly|fsapi.ORdwr) != 0 {
		l := fs.fileLock(ino)
		fs.lockFileExcl(l)
		err := fs.truncate(ino, 0)
		l.Unlock()
		if err != nil {
			return -1, err
		}
	}
	return c.install(ino, flags)
}

// createFile allocates the inode and inserts the directory entry (Fig 5a).
func (c *Client) createFile(parent pmem.Ptr, name string, perm uint32) (pmem.Ptr, error) {
	fs := c.fs
	ino, err := fs.newInode(c.cred, fsapi.ModeRegular|perm&fsapi.ModePermMask, uint64(parent))
	if err != nil {
		return 0, err
	}
	if fs.crash("create.after-inode") {
		return 0, ErrCrashed
	}
	if err := fs.createEntry(fs.inoData(parent), name, ino, false); err != nil {
		if err != ErrCrashed {
			fs.oa.Free(ClassInode, ino)
		}
		return 0, err
	}
	return ino, nil
}

// Close implements fsapi.Client.
func (c *Client) Close(fd fsapi.FD) (err error) {
	defer c.begin(obs.OpClose).end(&err)
	v, ok := c.files.LoadAndDelete(fd)
	if !ok {
		return fsapi.ErrBadFD
	}
	c.fs.decRef(v.(*openFile).ino)
	return nil
}

// Read implements fsapi.Client.
func (c *Client) Read(fd fsapi.FD, p []byte) (n int, err error) {
	defer c.begin(obs.OpRead).end(&err)
	of, err := c.file(fd)
	if err != nil {
		return 0, err
	}
	if of.flags&fsapi.OWronly != 0 {
		return 0, fsapi.ErrWriteOnly
	}
	pos := of.pos.Load()
	n = c.readLocked(of.ino, p, pos)
	of.pos.Store(pos + uint64(n))
	if n == 0 && len(p) > 0 {
		return 0, io.EOF
	}
	return n, nil
}

// Pread implements fsapi.Client.
func (c *Client) Pread(fd fsapi.FD, p []byte, off uint64) (n int, err error) {
	defer c.begin(obs.OpPread).end(&err)
	of, err := c.file(fd)
	if err != nil {
		return 0, err
	}
	if of.flags&fsapi.OWronly != 0 {
		return 0, fsapi.ErrWriteOnly
	}
	n = c.readLocked(of.ino, p, off)
	if n == 0 && len(p) > 0 {
		return 0, io.EOF
	}
	return n, nil
}

func (c *Client) readLocked(ino pmem.Ptr, p []byte, off uint64) int {
	l := c.fs.fileLock(ino)
	c.fs.lockFileShared(l)
	n := c.fs.readAt(ino, p, off)
	l.RUnlock()
	return n
}

// Write implements fsapi.Client.
func (c *Client) Write(fd fsapi.FD, p []byte) (n int, err error) {
	defer c.begin(obs.OpWrite).end(&err)
	of, err := c.file(fd)
	if err != nil {
		return 0, err
	}
	if of.flags&(fsapi.OWronly|fsapi.ORdwr) == 0 {
		return 0, fsapi.ErrReadOnly
	}
	fs := c.fs
	if of.append {
		// Appends are exclusive regardless of the relaxed-write setting:
		// the position is defined by the current size.
		l := fs.fileLock(of.ino)
		fs.lockFileExcl(l)
		pos := fs.inoSize(of.ino)
		n, err := fs.writeAt(of.ino, p, pos)
		l.Unlock()
		of.pos.Store(pos + uint64(n))
		return n, err
	}
	pos := of.pos.Load()
	n, err = c.writeLocked(of.ino, p, pos)
	of.pos.Store(pos + uint64(n))
	return n, err
}

// Pwrite implements fsapi.Client.
func (c *Client) Pwrite(fd fsapi.FD, p []byte, off uint64) (n int, err error) {
	defer c.begin(obs.OpPwrite).end(&err)
	of, err := c.file(fd)
	if err != nil {
		return 0, err
	}
	if of.flags&(fsapi.OWronly|fsapi.ORdwr) == 0 {
		return 0, fsapi.ErrReadOnly
	}
	return c.writeLocked(of.ino, p, off)
}

// writeLocked applies the file-granular exclusive write lock unless the
// volume runs in relaxed mode (Fig 7k).
func (c *Client) writeLocked(ino pmem.Ptr, p []byte, off uint64) (int, error) {
	fs := c.fs
	if fs.relaxedWrites {
		return fs.writeAt(ino, p, off)
	}
	l := fs.fileLock(ino)
	fs.lockFileExcl(l)
	n, err := fs.writeAt(ino, p, off)
	l.Unlock()
	return n, err
}

// Seek implements fsapi.Client.
func (c *Client) Seek(fd fsapi.FD, off int64, whence int) (pos int64, err error) {
	defer c.begin(obs.OpSeek).end(&err)
	of, err := c.file(fd)
	if err != nil {
		return 0, err
	}
	var base int64
	switch whence {
	case fsapi.SeekSet:
		base = 0
	case fsapi.SeekCur:
		base = int64(of.pos.Load())
	case fsapi.SeekEnd:
		base = int64(c.fs.inoSize(of.ino))
	default:
		return 0, fsapi.ErrInval
	}
	np := base + off
	if np < 0 {
		return 0, fsapi.ErrInval
	}
	of.pos.Store(uint64(np))
	return np, nil
}

// Fsync implements fsapi.Client. Simurgh persists data and metadata inline
// (non-temporal stores + fences), so fsync only issues a fence.
func (c *Client) Fsync(fd fsapi.FD) (err error) {
	defer c.begin(obs.OpFsync).end(&err)
	if _, err := c.file(fd); err != nil {
		return err
	}
	c.fs.dev.Fence()
	return nil
}

// Ftruncate implements fsapi.Client.
func (c *Client) Ftruncate(fd fsapi.FD, size uint64) (err error) {
	defer c.begin(obs.OpFtruncate).end(&err)
	of, err := c.file(fd)
	if err != nil {
		return err
	}
	l := c.fs.fileLock(of.ino)
	c.fs.lockFileExcl(l)
	defer l.Unlock()
	return c.fs.truncate(of.ino, size)
}

// Fallocate implements fsapi.Client: preallocates blocks for [0, size)
// without zeroing them (the configuration the paper benchmarks).
func (c *Client) Fallocate(fd fsapi.FD, size uint64) (err error) {
	defer c.begin(obs.OpFallocate).end(&err)
	of, err := c.file(fd)
	if err != nil {
		return err
	}
	// Extent growth must be exclusive with writers (the write path also
	// extends the mapping under this lock).
	l := c.fs.fileLock(of.ino)
	c.fs.lockFileExcl(l)
	defer l.Unlock()
	if err := c.fs.ensureCapacity(of.ino, size); err != nil {
		return err
	}
	// fallocate extends the visible size (FALLOC_FL_KEEP_SIZE unset).
	for {
		old := c.fs.inoSize(of.ino)
		if size <= old {
			return nil
		}
		if c.fs.dev.CompareAndSwap64(uint64(of.ino)+inoSizeOff, old, size) {
			c.fs.dev.Persist(uint64(of.ino)+inoSizeOff, 8)
			return nil
		}
	}
}

// Fstat implements fsapi.Client.
func (c *Client) Fstat(fd fsapi.FD) (st fsapi.Stat, err error) {
	defer c.begin(obs.OpFstat).end(&err)
	of, err := c.file(fd)
	if err != nil {
		return fsapi.Stat{}, err
	}
	return c.fs.statOf(of.ino), nil
}

// Stat implements fsapi.Client.
func (c *Client) Stat(path string) (st fsapi.Stat, err error) {
	defer c.begin(obs.OpStat).end(&err)
	ino, err := c.resolve(path, true)
	if err != nil {
		return fsapi.Stat{}, err
	}
	return c.fs.statOf(ino), nil
}

// Lstat implements fsapi.Client.
func (c *Client) Lstat(path string) (st fsapi.Stat, err error) {
	defer c.begin(obs.OpLstat).end(&err)
	ino, err := c.resolve(path, false)
	if err != nil {
		return fsapi.Stat{}, err
	}
	return c.fs.statOf(ino), nil
}

// Mkdir implements fsapi.Client.
func (c *Client) Mkdir(path string, perm uint32) (err error) {
	defer c.begin(obs.OpMkdir).end(&err)
	fs := c.fs
	parent, name, err := c.resolveParent(path, true)
	if err != nil {
		return err
	}
	ino, err := fs.newInode(c.cred, fsapi.ModeDir|perm&fsapi.ModePermMask, uint64(parent))
	if err != nil {
		return err
	}
	first, err := fs.oa.Alloc(ClassDirBlock, uint64(ino))
	if err != nil {
		fs.oa.Free(ClassInode, ino)
		return err
	}
	fs.oa.ClearDirty(first)
	fs.dev.Store64(uint64(ino)+inoDataOff, uint64(first))
	fs.dev.Store32(uint64(ino)+inoNlinkOff, 2)
	fs.dev.Persist(uint64(ino), InodeSize)
	if err := fs.createEntry(fs.inoData(parent), name, ino, false); err != nil {
		if err != ErrCrashed {
			fs.freeInode(ino)
		}
		return err
	}
	return nil
}

// Rmdir implements fsapi.Client.
func (c *Client) Rmdir(path string) (err error) {
	defer c.begin(obs.OpRmdir).end(&err)
	fs := c.fs
	parent, name, err := c.resolveParent(path, true)
	if err != nil {
		return err
	}
	ref, err := fs.lookupEntry(fs.inoData(parent), name)
	if err != nil {
		return err
	}
	if !fsapi.IsDir(fs.inoMode(ref.inode)) {
		return fsapi.ErrNotDir
	}
	if !fs.dirEmpty(fs.inoData(ref.inode)) {
		return fsapi.ErrNotEmpty
	}
	wantDir := true
	ino, err := fs.removeEntry(fs.inoData(parent), name, &wantDir)
	if err != nil {
		return err
	}
	fs.freeInode(ino)
	return nil
}

// Unlink implements fsapi.Client.
func (c *Client) Unlink(path string) (err error) {
	defer c.begin(obs.OpUnlink).end(&err)
	fs := c.fs
	parent, name, err := c.resolveParent(path, true)
	if err != nil {
		return err
	}
	wantDir := false
	ino, err := fs.removeEntry(fs.inoData(parent), name, &wantDir)
	if err != nil {
		return err
	}
	if fs.crash("unlink.after-remove") {
		return ErrCrashed
	}
	fs.unlinkInode(ino)
	return nil
}

// Rename implements fsapi.Client.
func (c *Client) Rename(oldPath, newPath string) (err error) {
	defer c.begin(obs.OpRename).end(&err)
	fs := c.fs
	oldParent, oldName, err := c.resolveParent(oldPath, true)
	if err != nil {
		return err
	}
	newParent, newName, err := c.resolveParent(newPath, true)
	if err != nil {
		return err
	}
	if oldParent == newParent {
		if oldName == newName {
			return nil
		}
		return fs.renameSameDir(fs.inoData(oldParent), oldName, newName)
	}
	return fs.renameCrossDir(fs.inoData(oldParent), fs.inoData(newParent), oldName, newName)
}

// Symlink implements fsapi.Client.
func (c *Client) Symlink(target, linkPath string) (err error) {
	defer c.begin(obs.OpSymlink).end(&err)
	fs := c.fs
	parent, name, err := c.resolveParent(linkPath, true)
	if err != nil {
		return err
	}
	ino, err := fs.newSymlinkInode(c.cred, target, uint64(parent))
	if err != nil {
		return err
	}
	if err := fs.createEntry(fs.inoData(parent), name, ino, true); err != nil {
		if err != ErrCrashed {
			fs.freeInode(ino)
		}
		return err
	}
	return nil
}

// Link implements fsapi.Client: hard links are distinct file entries
// pointing at the same inode, with a reference count in the inode (§4.3).
func (c *Client) Link(oldPath, newPath string) (err error) {
	defer c.begin(obs.OpLink).end(&err)
	fs := c.fs
	ino, err := c.resolve(oldPath, true)
	if err != nil {
		return err
	}
	if fsapi.IsDir(fs.inoMode(ino)) {
		return fsapi.ErrIsDir
	}
	parent, name, err := c.resolveParent(newPath, true)
	if err != nil {
		return err
	}
	fs.setNlink(ino, fs.inoNlink(ino)+1)
	if err := fs.createEntry(fs.inoData(parent), name, ino, false); err != nil {
		if err != ErrCrashed {
			fs.setNlink(ino, fs.inoNlink(ino)-1)
		}
		return err
	}
	return nil
}

// Readlink implements fsapi.Client.
func (c *Client) Readlink(path string) (target string, err error) {
	defer c.begin(obs.OpReadlink).end(&err)
	ino, err := c.resolve(path, false)
	if err != nil {
		return "", err
	}
	if !fsapi.IsSymlink(c.fs.inoMode(ino)) {
		return "", fsapi.ErrInval
	}
	return c.fs.readSymlink(ino)
}

// ReadDir implements fsapi.Client.
func (c *Client) ReadDir(path string) (ents []fsapi.DirEntry, err error) {
	defer c.begin(obs.OpReadDir).end(&err)
	fs := c.fs
	ino, err := c.resolve(path, true)
	if err != nil {
		return nil, err
	}
	if !fsapi.IsDir(fs.inoMode(ino)) {
		return nil, fsapi.ErrNotDir
	}
	if err := fsapi.CheckPerm(c.cred, fs.inoUID(ino), fs.inoGID(ino), fs.inoMode(ino), fsapi.AccessRead); err != nil {
		return nil, err
	}
	return fs.listDir(fs.inoData(ino)), nil
}

// Chmod implements fsapi.Client.
func (c *Client) Chmod(path string, perm uint32) (err error) {
	defer c.begin(obs.OpChmod).end(&err)
	fs := c.fs
	ino, err := c.resolve(path, true)
	if err != nil {
		return err
	}
	if c.cred.UID != 0 && c.cred.UID != fs.inoUID(ino) {
		return fsapi.ErrPerm
	}
	mode := fs.inoMode(ino)&fsapi.ModeTypeMask | perm&fsapi.ModePermMask
	fs.dev.Store32(uint64(ino)+inoModeOff, mode)
	fs.dev.Persist(uint64(ino)+inoModeOff, 4)
	fs.touchMtime(ino)
	return nil
}

// Utimes implements fsapi.Client.
func (c *Client) Utimes(path string, atime, mtime int64) (err error) {
	defer c.begin(obs.OpUtimes).end(&err)
	fs := c.fs
	ino, err := c.resolve(path, true)
	if err != nil {
		return err
	}
	if c.cred.UID != 0 && c.cred.UID != fs.inoUID(ino) {
		return fsapi.ErrPerm
	}
	fs.dev.Store64(uint64(ino)+inoAtimeOff, uint64(atime))
	fs.dev.Store64(uint64(ino)+inoMtimeOff, uint64(mtime))
	fs.dev.Persist(uint64(ino)+inoAtimeOff, 16)
	return nil
}

// Detach implements fsapi.Client.
func (c *Client) Detach() (err error) {
	defer c.begin(obs.OpDetach).end(&err)
	c.files.Range(func(k, v any) bool {
		if _, ok := c.files.LoadAndDelete(k); ok {
			c.fs.decRef(v.(*openFile).ino)
		}
		return true
	})
	c.fs.attached.Delete(c)
	return nil
}
