// Package core implements the Simurgh file system library (§4): a fully
// decentralized NVMM file system in which every attached process performs
// data and metadata operations directly against shared persistent memory,
// coordinated only through atomic flags, per-line busy-wait locks and the
// valid/dirty object protocol — there is no central server and no kernel
// involvement past the bootstrap.
package core

import (
	"simurgh/internal/pmem"
)

// Object classes managed by the slab allocator.
const (
	ClassInode = iota
	ClassDirBlock
	ClassFileEntry
	ClassExtent
	ClassBlob
	numClasses
)

// Object sizes (bytes, including the allocator flags word).
const (
	InodeSize     = 128
	DirBlockSize  = 4096
	FileEntrySize = 64
	ExtentSize    = 256
	BlobSize      = 512
)

// BlockSize is the data block size.
const BlockSize = 4096

// Superblock layout (block 0 of the device).
const (
	sbMagicOff     = 0
	sbVersionOff   = 8
	sbSizeOff      = 16
	sbBlockSizeOff = 24
	sbCleanOff     = 32 // 1 = cleanly unmounted
	sbRootInodeOff = 40
	sbEpochOff     = 48
	sbClassHeadOff = 64 // numClasses chain-head pointers, 8 bytes each

	sbMagic   = 0x53494d5552474831 // "SIMURGH1"
	sbVersion = 1
)

// Inode layout relative to the object start. The paper removes inode
// numbers: an inode is identified by its persistent pointer.
const (
	inoFlagsOff  = 0 // allocator valid/dirty word
	inoModeOff   = 8
	inoUIDOff    = 12
	inoGIDOff    = 16
	inoNlinkOff  = 20
	inoSizeOff   = 24
	inoAtimeOff  = 32
	inoMtimeOff  = 40
	inoCtimeOff  = 48
	inoDataOff   = 56 // dir: first DirBlock; symlink: Blob; file: first Extent
	inoBlocksOff = 64 // allocated data blocks
)

// Directory hash-block layout (§4.3, Figure 4). Each block is a fixed array
// of lines; line i of the whole directory is the union of row i across the
// chain of blocks. The first block additionally carries the per-line busy
// bits and the single per-directory log entry for cross-directory renames.
const (
	dirFlagsOff    = 0  // allocator word
	dirNextOff     = 8  // next block in chain
	dirBusyOff     = 16 // busy bit per line (first block only)
	dirMetaOff     = 24 // bit0: rename log dirty (first block only)
	dirLogOldOff   = 32 // cross-dir rename log: old file entry
	dirLogNewOff   = 40 // cross-dir rename log: shadow file entry
	dirLogDstOff   = 48 // cross-dir rename log: destination dir first block
	dirSlotsOff    = 64
	dirLogDirtyBit = 1 << 0

	// NLines is the number of hash lines per directory.
	NLines = 64
	// SlotsPerLine is how many entry slots one block contributes to a line.
	SlotsPerLine = 7
)

// File-entry layout. Entries of at most shortNameLen bytes store the name
// inline; longer names live in a Blob object referenced instead.
const (
	feFlagsOff = 0
	feInodeOff = 8
	feHashOff  = 16 // u32 name hash
	feNlenOff  = 20 // u16 name length
	feBitsOff  = 22 // u16: bit0 long name (blob), bit1 symlink
	feNameOff  = 24 // inline name bytes, or a Blob pointer for long names

	shortNameLen = FileEntrySize - feNameOff // 40

	feBitLongName = 1 << 0
	feBitSymlink  = 1 << 1
)

// Extent-chain block layout: a chain of fixed arrays of (startBlock, n)
// runs mapping a file's logical blocks in order.
const (
	extFlagsOff   = 0
	extNextOff    = 8
	extCountOff   = 16
	extEntriesOff = 24
	extMaxEntries = (ExtentSize - extEntriesOff) / 16 // 14
)

// Blob layout: flags, length, then payload (long names, symlink targets).
const (
	blobFlagsOff = 0
	blobLenOff   = 8
	blobDataOff  = 16
	blobCap      = BlobSize - blobDataOff
)

// fnv32 hashes a file name (FNV-1a).
func fnv32(name string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(name); i++ {
		h ^= uint32(name[i])
		h *= 16777619
	}
	return h
}

// lineOf maps a name hash to its directory line.
func lineOf(hash uint32) int { return int(hash % NLines) }

// slotOff returns the device offset of slot s of line within block b.
func slotOff(b pmem.Ptr, line, s int) uint64 {
	return uint64(b) + dirSlotsOff + uint64(line*SlotsPerLine+s)*8
}
