package ycsb

import (
	"math"
	"math/rand"
	"testing"

	"simurgh/internal/bench"
)

func TestZipfianSkew(t *testing.T) {
	z := newZipfian(1000)
	rng := rand.New(rand.NewSource(3))
	counts := make([]int, 1000)
	const draws = 200000
	for i := 0; i < draws; i++ {
		v := z.next(rng)
		if v >= 1000 {
			t.Fatalf("zipfian out of range: %d", v)
		}
		counts[v]++
	}
	// Rank 0 must dominate, and the head must hold most of the mass.
	if counts[0] < counts[10] {
		t.Fatal("zipfian not skewed toward rank 0")
	}
	head := 0
	for i := 0; i < 100; i++ {
		head += counts[i]
	}
	if frac := float64(head) / draws; frac < 0.5 {
		t.Fatalf("top-10%% of ranks hold %.2f of mass, want > 0.5", frac)
	}
}

func TestScrambleUniformCoverage(t *testing.T) {
	const n = 100
	seen := map[uint64]bool{}
	for i := uint64(0); i < 10000; i++ {
		v := scramble(i, n)
		if v >= n {
			t.Fatalf("scramble out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) < n*9/10 {
		t.Fatalf("scramble covers only %d/%d slots", len(seen), n)
	}
}

func TestSpecsSumToOne(t *testing.T) {
	for _, s := range Workloads {
		sum := s.Read + s.Update + s.Insert + s.Scan + s.RMW
		if math.Abs(sum-1.0) > 1e-9 {
			t.Fatalf("workload %s proportions sum to %f", s.Name, sum)
		}
	}
	if _, err := SpecByName("A"); err != nil {
		t.Fatal(err)
	}
	if _, err := SpecByName("Z"); err == nil {
		t.Fatal("phantom workload")
	}
}

func TestAllWorkloadsRunOnSimurgh(t *testing.T) {
	for _, spec := range Workloads {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			fs, err := bench.MakeFS("simurgh", 256<<20)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(fs, spec, Config{Records: 500, Ops: 1000, Threads: 2, ValueSize: 200})
			if err != nil {
				t.Fatal(err)
			}
			if res.RunOps == 0 || res.RunThroughput() <= 0 {
				t.Fatalf("no throughput: %+v", res)
			}
		})
	}
}

func TestWorkloadARunsOnAllFS(t *testing.T) {
	spec, _ := SpecByName("A")
	for _, name := range bench.FSNames {
		fs, err := bench.MakeFS(name, 256<<20)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(fs, spec, Config{Records: 300, Ops: 600, Threads: 2, ValueSize: 100})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.RunOps == 0 {
			t.Fatalf("%s: zero ops", name)
		}
	}
}

func TestBreakdownAccounting(t *testing.T) {
	fs, _ := bench.MakeFS("nova", 256<<20)
	res, err := RunLoadOnly(fs, Config{Records: 2000, ValueSize: 500})
	if err != nil {
		t.Fatal(err)
	}
	total := res.App + res.Copy + res.FSTime
	if total <= 0 {
		t.Fatal("empty breakdown")
	}
	// The three parts must roughly cover the load wall time.
	if total > res.LoadTime*3/2 {
		t.Fatalf("breakdown %v exceeds wall %v", total, res.LoadTime)
	}
	if res.FSTime <= 0 {
		t.Fatal("no file-system time measured for a write-heavy load")
	}
}
