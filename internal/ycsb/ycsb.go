// Package ycsb implements the YCSB core workloads (A-F) against the
// LevelDB-like store, reproducing the paper's Figure 9 (throughput per file
// system, normalized to SplitFS), Figure 10 (execution-time breakdown for
// Simurgh) and the YCSB LoadA row of Table 1 (breakdown for NOVA).
//
// The request distributions follow the YCSB core package: a scrambled
// zipfian (theta = 0.99) for A/B/C/E/F, a "latest" distribution for D, and
// uniform scan lengths of 1..100 for E.
package ycsb

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"simurgh/internal/bench"
	"simurgh/internal/fsapi"
	"simurgh/internal/leveldb"
)

// Spec is one YCSB core workload's operation mix.
type Spec struct {
	Name   string
	Read   float64
	Update float64
	Insert float64
	Scan   float64
	RMW    float64
	// Latest selects the latest distribution (workload D).
	Latest bool
}

// Workloads are the six YCSB core workloads.
var Workloads = []Spec{
	{Name: "A", Read: 0.5, Update: 0.5},
	{Name: "B", Read: 0.95, Update: 0.05},
	{Name: "C", Read: 1.0},
	{Name: "D", Read: 0.95, Insert: 0.05, Latest: true},
	{Name: "E", Scan: 0.95, Insert: 0.05},
	{Name: "F", Read: 0.5, RMW: 0.5},
}

// SpecByName finds a workload.
func SpecByName(name string) (Spec, error) {
	for _, s := range Workloads {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("ycsb: unknown workload %q", name)
}

// Config scales a run.
type Config struct {
	Records   int // rows loaded
	Ops       int // operations in the run phase
	Threads   int
	ValueSize int
	Sync      bool // WAL fsync per update
}

func (c *Config) fill() {
	if c.Records == 0 {
		c.Records = 10000
	}
	if c.Ops == 0 {
		c.Ops = 20000
	}
	if c.Threads == 0 {
		c.Threads = 2
	}
	if c.ValueSize == 0 {
		c.ValueSize = 1000
	}
}

// Result reports one workload execution.
type Result struct {
	Workload          string
	FS                string
	LoadOps           int
	LoadTime          time.Duration
	RunOps            int
	RunTime           time.Duration
	App, Copy, FSTime time.Duration // breakdown of load+run wall time
}

// LoadThroughput returns load-phase ops/s.
func (r Result) LoadThroughput() float64 {
	if r.LoadTime <= 0 {
		return 0
	}
	return float64(r.LoadOps) / r.LoadTime.Seconds()
}

// RunThroughput returns run-phase ops/s.
func (r Result) RunThroughput() float64 {
	if r.RunTime <= 0 {
		return 0
	}
	return float64(r.RunOps) / r.RunTime.Seconds()
}

// zipfian is the YCSB ZipfianGenerator (Gray et al.).
type zipfian struct {
	n            uint64
	theta        float64
	alpha        float64
	zetan, zeta2 float64
	eta          float64
}

func newZipfian(n uint64) *zipfian {
	const theta = 0.99
	z := &zipfian{n: n, theta: theta}
	z.zetan = zeta(n, theta)
	z.zeta2 = zeta(2, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1 - math.Pow(2.0/float64(n), 1-theta)) / (1 - z.zeta2/z.zetan)
	return z
}

func zeta(n uint64, theta float64) float64 {
	var sum float64
	for i := uint64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

func (z *zipfian) next(rng *rand.Rand) uint64 {
	u := rng.Float64()
	uz := u * z.zetan
	if uz < 1.0 {
		return 0
	}
	if uz < 1.0+math.Pow(0.5, z.theta) {
		return 1
	}
	return uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
}

// scramble spreads zipfian ranks over the key space (ScrambledZipfian).
func scramble(v, n uint64) uint64 {
	h := v * 0xc6a4a7935bd1e995
	h ^= h >> 47
	h *= 0xc6a4a7935bd1e995
	return h % n
}

func keyName(i uint64) string { return fmt.Sprintf("user%012d", i) }

// Run executes load + run phases of the workload against fs.
func Run(fs fsapi.FileSystem, spec Spec, cfg Config) (Result, error) {
	cfg.fill()
	res := Result{Workload: spec.Name, FS: fs.Name()}
	base, err := fs.Attach(fsapi.Root)
	if err != nil {
		return res, err
	}
	tc := bench.NewTimedClient(base)
	db, err := leveldb.Open(tc, "/ycsb", leveldb.Options{SyncWrites: cfg.Sync})
	if err != nil {
		return res, err
	}
	defer db.Close()
	value := string(make([]byte, cfg.ValueSize))

	wallStart := time.Now()
	// Load phase.
	loadStart := time.Now()
	for i := 0; i < cfg.Records; i++ {
		if err := db.Put(keyName(uint64(i)), value); err != nil {
			return res, fmt.Errorf("load: %w", err)
		}
	}
	res.LoadOps = cfg.Records
	res.LoadTime = time.Since(loadStart)

	// Run phase.
	var inserted atomic.Uint64
	inserted.Store(uint64(cfg.Records))
	z := newZipfian(uint64(cfg.Records))
	opsPer := cfg.Ops / cfg.Threads
	runStart := time.Now()
	errs := make(chan error, cfg.Threads)
	var wg sync.WaitGroup
	for t := 0; t < cfg.Threads; t++ {
		t := t
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(t)*7919 + 17))
			for i := 0; i < opsPer; i++ {
				var key string
				if spec.Latest {
					max := inserted.Load()
					off := z.next(rng)
					if off >= max {
						off = max - 1
					}
					key = keyName(max - 1 - off)
				} else {
					key = keyName(scramble(z.next(rng), uint64(cfg.Records)))
				}
				var err error
				p := rng.Float64()
				switch {
				case p < spec.Read:
					_, _, err = db.Get(key)
				case p < spec.Read+spec.Update:
					err = db.Put(key, value)
				case p < spec.Read+spec.Update+spec.Insert:
					err = db.Put(keyName(inserted.Add(1)-1), value)
				case p < spec.Read+spec.Update+spec.Insert+spec.Scan:
					_, err = db.Scan(key, 1+rng.Intn(100))
				default: // read-modify-write
					if _, _, err = db.Get(key); err == nil {
						err = db.Put(key, value)
					}
				}
				if err != nil {
					errs <- fmt.Errorf("op %d: %w", i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errs:
		return res, err
	default:
	}
	res.RunOps = opsPer * cfg.Threads
	res.RunTime = time.Since(runStart)
	res.App, res.Copy, res.FSTime = tc.Breakdown(time.Since(wallStart))
	return res, nil
}

// RunLoadOnly performs just the load phase with breakdown (Table 1 LoadA).
func RunLoadOnly(fs fsapi.FileSystem, cfg Config) (Result, error) {
	cfg.fill()
	res := Result{Workload: "LoadA", FS: fs.Name()}
	base, err := fs.Attach(fsapi.Root)
	if err != nil {
		return res, err
	}
	tc := bench.NewTimedClient(base)
	db, err := leveldb.Open(tc, "/ycsb", leveldb.Options{SyncWrites: cfg.Sync})
	if err != nil {
		return res, err
	}
	defer db.Close()
	value := string(make([]byte, cfg.ValueSize))
	start := time.Now()
	for i := 0; i < cfg.Records; i++ {
		if err := db.Put(keyName(uint64(i)), value); err != nil {
			return res, err
		}
	}
	res.LoadOps = cfg.Records
	res.LoadTime = time.Since(start)
	res.App, res.Copy, res.FSTime = tc.Breakdown(res.LoadTime)
	return res, nil
}
