package isa

import (
	"errors"
	"testing"
)

// newWorld builds a memory with one supervisor and a user CPU.
func newWorld() (*Memory, *Supervisor, *CPU) {
	mem := NewMemory()
	sup := NewSupervisor(mem, 0x100000)
	cpu := NewCPU(mem)
	return mem, sup, cpu
}

func TestUserCannotReadKernelPage(t *testing.T) {
	_, sup, cpu := newWorld()
	sup.MapData(0x5000, true) // NVMM metadata page: kernel-only
	if err := cpu.Load(0x5000); !errors.Is(err, ErrProtectionFault) {
		t.Fatalf("user load of kernel page: %v, want protection fault", err)
	}
}

func TestUserCannotWriteKernelPage(t *testing.T) {
	_, sup, cpu := newWorld()
	sup.MapData(0x5000, true)
	if err := cpu.Store(0x5000); !errors.Is(err, ErrProtectionFault) {
		t.Fatalf("user store to kernel page: %v, want protection fault", err)
	}
}

func TestUserCanAccessUserPage(t *testing.T) {
	_, sup, cpu := newWorld()
	sup.MapUser(0x6000, true)
	if err := cpu.Load(0x6000); err != nil {
		t.Fatalf("user load of user page: %v", err)
	}
	if err := cpu.Store(0x6000); err != nil {
		t.Fatalf("user store to user page: %v", err)
	}
}

func TestUnmappedPageFaults(t *testing.T) {
	_, _, cpu := newWorld()
	if err := cpu.Load(0xdead000); !errors.Is(err, ErrNotPresent) {
		t.Fatalf("unmapped load: %v", err)
	}
}

func TestProtectedPageNotWritableFromUser(t *testing.T) {
	// Requirement 2: normal functions cannot change protected code, even if
	// the page is writable (it is writable only from kernel mode).
	_, sup, cpu := newWorld()
	addrs, err := sup.LoadProtected([]ProtectedFunc{func(*CPU) error { return nil }}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := cpu.Store(addrs[0]); !errors.Is(err, ErrProtectionFault) && !errors.Is(err, ErrWriteFault) {
		t.Fatalf("user store to protected page: %v, want fault", err)
	}
}

func TestJmppRunsInKernelModeAndReturnsToUser(t *testing.T) {
	_, sup, cpu := newWorld()
	var sawCPL, sawNested int
	var sawStack bool
	addrs, err := sup.LoadProtected([]ProtectedFunc{func(c *CPU) error {
		sawCPL = c.CPL()
		sawNested = c.Nested()
		sawStack = c.OnProtectedStack()
		return nil
	}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cpu.CPL() != CPLUser {
		t.Fatal("CPU did not start in user mode")
	}
	if err := cpu.Jmpp(addrs[0]); err != nil {
		t.Fatalf("jmpp: %v", err)
	}
	if sawCPL != CPLKernel {
		t.Fatalf("protected function ran at CPL %d", sawCPL)
	}
	if sawNested != 1 {
		t.Fatalf("nesting depth inside function = %d", sawNested)
	}
	if !sawStack {
		t.Fatal("stack was not switched to the protected pages")
	}
	if cpu.CPL() != CPLUser {
		t.Fatalf("CPL after pret = %d, want user", cpu.CPL())
	}
	if cpu.Nested() != 0 {
		t.Fatalf("nesting depth after pret = %d", cpu.Nested())
	}
	if cpu.OnProtectedStack() {
		t.Fatal("still on protected stack after pret")
	}
}

func TestJmppToPageWithoutEPFaults(t *testing.T) {
	// Requirement 3: privilege transition only via ep-marked pages.
	_, sup, cpu := newWorld()
	sup.MapUser(0x7000, true)
	if err := cpu.Jmpp(0x7000); !errors.Is(err, ErrNotExecProt) {
		t.Fatalf("jmpp to non-ep page: %v", err)
	}
}

func TestJmppToMisalignedOffsetFaults(t *testing.T) {
	// Requirement 4: only the fixed entry points are valid.
	_, sup, cpu := newWorld()
	addrs, _ := sup.LoadProtected([]ProtectedFunc{func(*CPU) error { return nil }}, nil)
	if err := cpu.Jmpp(addrs[0] + 8); !errors.Is(err, ErrBadEntryPoint) {
		t.Fatalf("jmpp into function body: %v", err)
	}
	if cpu.CPL() != CPLUser {
		t.Fatal("failed jmpp escalated privilege")
	}
}

func TestJmppToEmptySlotFaults(t *testing.T) {
	_, sup, cpu := newWorld()
	addrs, _ := sup.LoadProtected([]ProtectedFunc{func(*CPU) error { return nil }}, nil)
	// Slot 1 of the same page has no function registered.
	if err := cpu.Jmpp(addrs[0] + EntryStride); !errors.Is(err, ErrBadEntryPoint) {
		t.Fatalf("jmpp to empty slot: %v", err)
	}
}

func TestLongFunctionPadsNextEntryWithNop(t *testing.T) {
	// Figure 1: open() is bigger than one stride, so the entry point that
	// falls inside it must be a nop and therefore an invalid jmpp target.
	_, sup, cpu := newWorld()
	ran := false
	addrs, err := sup.LoadProtected(
		[]ProtectedFunc{
			func(*CPU) error { ran = true; return nil }, // open(): > 1 KB
			func(*CPU) error { return nil },             // read()
		},
		[]int{EntryStride + 100, 0},
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := cpu.Jmpp(addrs[0]); err != nil || !ran {
		t.Fatalf("jmpp to long function start: %v (ran=%v)", err, ran)
	}
	// The padded slot right after open()'s entry must fault.
	if err := cpu.Jmpp(addrs[0] + EntryStride); !errors.Is(err, ErrBadEntryPoint) {
		t.Fatalf("jmpp into nop padding: %v", err)
	}
	// read() was placed after the padding.
	if addrs[1] != addrs[0]+2*EntryStride {
		t.Fatalf("second function at %#x, want %#x", addrs[1], addrs[0]+2*EntryStride)
	}
	if err := cpu.Jmpp(addrs[1]); err != nil {
		t.Fatalf("jmpp to function after padding: %v", err)
	}
}

func TestNestedProtectedCalls(t *testing.T) {
	_, sup, cpu := newWorld()
	var innerAddr uint64
	depths := []int{}
	fns := []ProtectedFunc{
		func(c *CPU) error { // outer
			depths = append(depths, c.Nested())
			if err := c.Jmpp(innerAddr); err != nil {
				return err
			}
			// Still in kernel mode after the nested pret.
			if c.CPL() != CPLKernel {
				t.Error("outer frame lost kernel mode after nested pret")
			}
			return nil
		},
		func(c *CPU) error { // inner
			depths = append(depths, c.Nested())
			return nil
		},
	}
	addrs, err := sup.LoadProtected(fns, nil)
	if err != nil {
		t.Fatal(err)
	}
	innerAddr = addrs[1]
	if err := cpu.Jmpp(addrs[0]); err != nil {
		t.Fatalf("nested jmpp: %v", err)
	}
	if len(depths) != 2 || depths[0] != 1 || depths[1] != 2 {
		t.Fatalf("nesting depths = %v, want [1 2]", depths)
	}
	if cpu.CPL() != CPLUser || cpu.Nested() != 0 {
		t.Fatalf("after outermost pret: CPL=%d nested=%d", cpu.CPL(), cpu.Nested())
	}
}

func TestKernelModeInsideFunctionCanTouchNVMM(t *testing.T) {
	_, sup, cpu := newWorld()
	sup.MapData(0x9000, true) // NVMM page
	var loadErr, storeErr error
	addrs, _ := sup.LoadProtected([]ProtectedFunc{func(c *CPU) error {
		loadErr = c.Load(0x9000)
		storeErr = c.Store(0x9000)
		return nil
	}}, nil)
	if err := cpu.Jmpp(addrs[0]); err != nil {
		t.Fatal(err)
	}
	if loadErr != nil || storeErr != nil {
		t.Fatalf("protected function NVMM access: load=%v store=%v", loadErr, storeErr)
	}
	// And the same accesses fault once back in user mode.
	if err := cpu.Load(0x9000); err == nil {
		t.Fatal("user load of NVMM page allowed after pret")
	}
}

func TestStrayPretFaults(t *testing.T) {
	_, _, cpu := newWorld()
	if err := cpu.Pret(); !errors.Is(err, ErrBadPret) {
		t.Fatalf("stray pret: %v", err)
	}
}

func TestSetEPRequiresKernelMode(t *testing.T) {
	_, sup, _ := newWorld()
	if err := sup.SetEP(0x100000, CPLUser); !errors.Is(err, ErrNeedKernel) {
		t.Fatalf("SetEP from user mode: %v", err)
	}
}

func TestPreemptRestoresCPL(t *testing.T) {
	_, sup, cpu := newWorld()
	addrs, _ := sup.LoadProtected([]ProtectedFunc{func(c *CPU) error {
		resume := c.Preempt()
		// While preempted the kernel may run anything; on resume the
		// modified scheduler restores kernel mode for this task.
		c.cpl = CPLUser // clobber, as an interrupt return would
		resume()
		if c.CPL() != CPLKernel {
			t.Error("CPL not restored to kernel after preemption inside protected function")
		}
		return nil
	}}, nil)
	if err := cpu.Jmpp(addrs[0]); err != nil {
		t.Fatal(err)
	}
	if cpu.CPL() != CPLUser {
		t.Fatal("CPL not user after pret")
	}
}

func TestProtectedFunctionErrorPropagates(t *testing.T) {
	_, sup, cpu := newWorld()
	boom := errors.New("boom")
	addrs, _ := sup.LoadProtected([]ProtectedFunc{func(*CPU) error { return boom }}, nil)
	if err := cpu.Jmpp(addrs[0]); !errors.Is(err, boom) {
		t.Fatalf("error from protected function: %v", err)
	}
	if cpu.CPL() != CPLUser || cpu.Nested() != 0 {
		t.Fatal("privilege not restored after erroring protected function")
	}
}

func TestCycleTableMatchesPaper(t *testing.T) {
	if CyclesCallRet != 24 {
		t.Fatalf("call+ret = %d cycles, paper says ~24", CyclesCallRet)
	}
	if CyclesJmppPret != 70 {
		t.Fatalf("jmpp+pret = %d cycles, paper says ~70", CyclesJmppPret)
	}
	if CyclesSyscallGem5 != 1200 {
		t.Fatalf("empty syscall (gem5) = %d cycles, paper says ~1200", CyclesSyscallGem5)
	}
	if CyclesSyscallModern != 400 {
		t.Fatalf("geteuid = %d cycles, paper says ~400", CyclesSyscallModern)
	}
	// The headline ratio: protected calls are ~6x cheaper than syscalls on
	// real hardware and ~17x on gem5.
	if CyclesSyscallModern/CyclesJmppPret < 5 {
		t.Fatal("protected call not meaningfully cheaper than syscall")
	}
	// ep+entry check ~6 cycles, CPL+stack ~30 cycles (paper §3.3).
	if CyclesEPCheck != 6 || CyclesCPLSwitch != 30 {
		t.Fatalf("micro-op split ep=%d cpl=%d, want 6/30", CyclesEPCheck, CyclesCPLSwitch)
	}
	if len(CycleTable()) == 0 {
		t.Fatal("empty cycle table")
	}
}

func TestJmppAccumulatesCycles(t *testing.T) {
	_, sup, cpu := newWorld()
	addrs, _ := sup.LoadProtected([]ProtectedFunc{func(*CPU) error { return nil }}, nil)
	before := cpu.Cycles
	if err := cpu.Jmpp(addrs[0]); err != nil {
		t.Fatal(err)
	}
	if got := cpu.Cycles - before; got != CyclesJmppPret {
		t.Fatalf("jmpp round trip charged %d cycles, want %d", got, CyclesJmppPret)
	}
}

func TestManyFunctionsSpanPages(t *testing.T) {
	_, sup, cpu := newWorld()
	const n = 10 // > 4 entry points, must span 3 pages
	fns := make([]ProtectedFunc, n)
	ran := make([]bool, n)
	for i := range fns {
		i := i
		fns[i] = func(*CPU) error { ran[i] = true; return nil }
	}
	addrs, err := sup.LoadProtected(fns, nil)
	if err != nil {
		t.Fatal(err)
	}
	pages := map[uint64]bool{}
	for i, a := range addrs {
		pages[a/PageSize] = true
		if err := cpu.Jmpp(a); err != nil {
			t.Fatalf("jmpp to fn %d: %v", i, err)
		}
	}
	for i, r := range ran {
		if !r {
			t.Fatalf("function %d never ran", i)
		}
	}
	if len(pages) != 3 {
		t.Fatalf("10 functions occupy %d pages, want 3", len(pages))
	}
}
