package isa_test

import (
	"errors"
	"testing"

	"simurgh/internal/isa"
	"simurgh/internal/pmem"
)

// This integration test wires the §3.2 security architecture together: the
// NVMM device is mapped as kernel-only pages, the "file system" is a set of
// protected functions loaded by the supervisor, and a user-mode application
// can reach the data ONLY through jmpp. It demonstrates the paper's claim
// that an application cannot read or write file-system state without going
// through Simurgh's protected entry points.

const slotSize = 64

// world models one process: a CPU, the shared memory map, and the device.
type world struct {
	cpu      *isa.CPU
	dev      *pmem.Device
	readFn   uint64 // protected entry points from the bootstrap
	writeFn  uint64
	nvmmBase uint64 // virtual address the device is mapped at

	// "registers" passed to the protected functions.
	slot, val uint64
	out       uint64
}

// bootstrap performs Figure 2's steps: map NVMM as kernel pages, load the
// protected functions, set their ep bits.
func bootstrap(t *testing.T) *world {
	t.Helper()
	mem := isa.NewMemory()
	sup := isa.NewSupervisor(mem, 0x400000)
	w := &world{dev: pmem.New(1 << 16), nvmmBase: 0x10000}
	// Map every NVMM page kernel-only (writable from kernel mode only).
	for off := uint64(0); off < w.dev.Size(); off += isa.PageSize {
		sup.MapData(w.nvmmBase+off, true)
	}
	sup.MapUser(0x1000, true) // the application's own pages

	// Protected "file system": slot read/write. The MMU check via c.Load /
	// c.Store stands in for the instruction-level access the function body
	// would perform.
	readFn := func(c *isa.CPU) error {
		if c.CPL() != isa.CPLKernel {
			return errors.New("read ran without privilege")
		}
		if err := c.Load(w.nvmmBase + w.slot*slotSize); err != nil {
			return err
		}
		w.out = w.dev.Load64(w.slot * slotSize)
		return nil
	}
	writeFn := func(c *isa.CPU) error {
		if err := c.Store(w.nvmmBase + w.slot*slotSize); err != nil {
			return err
		}
		w.dev.Store64(w.slot*slotSize, w.val)
		w.dev.Persist(w.slot*slotSize, 8)
		return nil
	}
	addrs, err := sup.LoadProtected([]isa.ProtectedFunc{readFn, writeFn}, nil)
	if err != nil {
		t.Fatal(err)
	}
	w.readFn, w.writeFn = addrs[0], addrs[1]
	w.cpu = isa.NewCPU(mem)
	return w
}

func TestProtectedFileSystemEndToEnd(t *testing.T) {
	w := bootstrap(t)
	// Write through the protected function: privilege escalates only for
	// the duration of the call.
	w.slot, w.val = 3, 0xdead
	if err := w.cpu.Jmpp(w.writeFn); err != nil {
		t.Fatalf("protected write: %v", err)
	}
	if w.cpu.CPL() != isa.CPLUser {
		t.Fatal("privilege leaked after protected call")
	}
	w.slot = 3
	if err := w.cpu.Jmpp(w.readFn); err != nil {
		t.Fatalf("protected read: %v", err)
	}
	if w.out != 0xdead {
		t.Fatalf("read back %#x", w.out)
	}
}

func TestUserModeCannotTouchNVMMDirectly(t *testing.T) {
	w := bootstrap(t)
	// Direct access to the mapped NVMM from user mode must fault — this is
	// Requirement 1 end-to-end.
	if err := w.cpu.Load(w.nvmmBase); !errors.Is(err, isa.ErrProtectionFault) {
		t.Fatalf("user load of NVMM = %v, want protection fault", err)
	}
	if err := w.cpu.Store(w.nvmmBase + 4096); !errors.Is(err, isa.ErrProtectionFault) {
		t.Fatalf("user store to NVMM = %v, want protection fault", err)
	}
}

func TestUserModeCannotJumpMidFunction(t *testing.T) {
	w := bootstrap(t)
	if err := w.cpu.Jmpp(w.writeFn + 16); !errors.Is(err, isa.ErrBadEntryPoint) {
		t.Fatalf("mid-function jmpp = %v, want bad entry point", err)
	}
}

func TestProtectedFunctionsEnforceInternalChecks(t *testing.T) {
	// A protected function's own bounds/permission logic decides the
	// outcome; the mechanism only provides the privilege bracket.
	w := bootstrap(t)
	w.slot = 1 << 40 // far outside the mapped NVMM
	if err := w.cpu.Jmpp(w.readFn); err == nil {
		t.Fatal("out-of-bounds slot accepted")
	}
	if w.cpu.CPL() != isa.CPLUser || w.cpu.Nested() != 0 {
		t.Fatal("privilege state corrupted by failing protected function")
	}
}
