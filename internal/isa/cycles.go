package isa

// Micro-op cycle model (§3.3). The gem5 measurements decompose as follows:
//
//   - a standard x86 call routine including its return costs ~24 cycles;
//   - jmpp additionally checks the ep bit and the entry-point offset
//     (~6 cycles, done during address translation) and changes the CPL value
//     plus writes the return address to the protected stack (~30 cycles),
//     bringing jmpp+pret to ~70 cycles;
//   - a syscall additionally sets up registers and copies parameters,
//     switches to the kernel context, and walks the dispatch table; an empty
//     syscall measures ~1200 cycles on gem5 and ~400 cycles (geteuid) on the
//     real Xeon testbed.
const (
	// CyclesCallRet is a plain call+ret round trip.
	CyclesCallRet = 24

	// CyclesEPCheck covers checking the ep bit and validating the entry
	// point during address translation.
	CyclesEPCheck = 6
	// CyclesCPLSwitch covers changing the CPL value and writing the return
	// address into the protected stack.
	CyclesCPLSwitch = 30

	// CyclesJmpp is the cost of the jmpp instruction itself (checks +
	// privilege switch + the call half of the call routine + counter
	// bookkeeping).
	CyclesJmpp = CyclesEPCheck + CyclesCPLSwitch/2 + CyclesCallRet/2 + 10
	// CyclesPret is the protected return (counter decrement, CPL restore,
	// the ret half of the call routine).
	CyclesPret = CyclesCPLSwitch/2 + CyclesCallRet/2

	// CyclesJmppPret is the combined protected round trip (~70 on gem5).
	CyclesJmppPret = CyclesJmpp + CyclesPret

	// Syscall micro-ops on gem5 (DerivO3CPU, FS mode).
	CyclesSyscallSetup    = 180 // register save, parameter marshalling
	CyclesSyscallSwitch   = 520 // privilege switch, swapgs, kernel context
	CyclesSyscallDispatch = 260 // dispatch-table walk to the handler
	CyclesSyscallReturn   = 240 // sysret, context restore
	// CyclesSyscallGem5 is an empty syscall on gem5 (~1200).
	CyclesSyscallGem5 = CyclesSyscallSetup + CyclesSyscallSwitch +
		CyclesSyscallDispatch + CyclesSyscallReturn

	// CyclesSyscallModern is geteuid on the real Xeon Gold testbed (~400):
	// modern cores overlap most of the gem5 pipeline stalls.
	CyclesSyscallModern = 400
)

// CycleRow is one line of the regenerated §3.3 comparison table.
type CycleRow struct {
	Mechanism string
	Cycles    uint64
	Detail    string
}

// CycleTable regenerates the paper's call/jmpp/syscall comparison.
func CycleTable() []CycleRow {
	return []CycleRow{
		{"call+ret", CyclesCallRet, "standard x86 call routine"},
		{"ep+entry check", CyclesEPCheck, "page-table ep bit and entry-point validation"},
		{"CPL change + protected stack", CyclesCPLSwitch, "privilege switch, return address to protected stack"},
		{"jmpp+pret", CyclesJmppPret, "protected function round trip"},
		{"empty syscall (gem5)", CyclesSyscallGem5, "setup + context switch + dispatch + sysret"},
		{"geteuid (real HW)", CyclesSyscallModern, "measured on Xeon Gold 5215"},
	}
}
