// Package isa models the paper's proposed CPU extension for protected user
// space functions: the jmpp (jump protected) and pret (protected return)
// instructions, the execute-protected (ep) page-table bit, and fixed entry
// points into protected pages.
//
// The paper prototypes the extension in the gem5 cycle-accurate simulator;
// here it is a functional model plus a micro-op cycle account. The
// functional model enforces the four security requirements of §3.1:
//
//  1. normal (user-mode) code cannot access file-system data pages,
//  2. normal code cannot modify protected code pages,
//  3. privilege transitions happen only through jmpp, and
//  4. privileged execution can only start at predefined entry points.
//
// The cycle model decomposes call, jmpp/pret and syscall into micro-ops and
// reproduces the gem5 table of §3.3 (call ≈ 24 cycles, jmpp+pret ≈ 70,
// empty syscall ≈ 1200 on gem5 / ≈ 400 on the real testbed).
package isa

import (
	"errors"
	"fmt"
)

// PageSize is the (simulated) page size.
const PageSize = 4096

// EntryStride is the distance between the fixed protected entry points
// within a protected page; with 4 KB pages this yields 4 entry points at
// offsets 0x000, 0x400, 0x800 and 0xc00 (Figure 1).
const EntryStride = 0x400

// EntryPointsPerPage is the number of jmpp targets a protected page exposes.
const EntryPointsPerPage = PageSize / EntryStride

// Privilege levels. Only user and kernel are distinguished, as in the paper.
const (
	CPLKernel = 0
	CPLUser   = 3
)

// Fault kinds raised by the functional model.
var (
	ErrProtectionFault = errors.New("isa: protection fault (user access to kernel page)")
	ErrWriteFault      = errors.New("isa: write fault (protected page writable only from kernel mode)")
	ErrNotExecProt     = errors.New("isa: jmpp target page lacks the ep bit")
	ErrBadEntryPoint   = errors.New("isa: jmpp target is not a valid protected entry point")
	ErrNotPresent      = errors.New("isa: page not present")
	ErrBadPret         = errors.New("isa: pret without matching jmpp")
	ErrNeedKernel      = errors.New("isa: operation requires kernel mode")
)

// PTE is a page-table entry in the extended design.
type PTE struct {
	Present bool
	// User marks the page accessible from user mode (like the x86 U/S bit).
	// File-system data/metadata pages and protected code pages are kernel
	// pages (User=false).
	User bool
	// Writable marks the page writable at its privilege level.
	Writable bool
	// EP is the new execute-protected bit: the page may be entered via jmpp.
	EP bool
}

// ProtectedFunc is the body of a protected function. It runs with the CPU in
// kernel mode and may perform nested jmpp calls through the same CPU.
type ProtectedFunc func(cpu *CPU) error

// entrySlot describes one fixed entry point of a protected page.
type entrySlot struct {
	fn ProtectedFunc
	// padding marks an entry offset that falls inside the body of a longer
	// function; per the paper the instruction there is deliberately a nop,
	// which makes the slot an invalid jmpp target.
	padding bool
}

// Memory is a paged address space with the extended page-table format.
type Memory struct {
	pages   map[uint64]*PTE
	entries map[uint64]*[EntryPointsPerPage]entrySlot // page base -> slots
}

// NewMemory returns an empty address space.
func NewMemory() *Memory {
	return &Memory{
		pages:   make(map[uint64]*PTE),
		entries: make(map[uint64]*[EntryPointsPerPage]entrySlot),
	}
}

// Map installs a PTE for the page containing addr.
func (m *Memory) Map(addr uint64, pte PTE) {
	p := pte
	m.pages[addr/PageSize] = &p
}

// Lookup returns the PTE for addr, or nil if unmapped.
func (m *Memory) Lookup(addr uint64) *PTE {
	return m.pages[addr/PageSize]
}

// CPU models the privilege state of one hardware thread.
type CPU struct {
	mem *Memory
	cpl int
	// nested counts outstanding jmpp frames (§3.1: nested protected calls
	// increment a counter that pret decrements).
	nested int
	// onProtectedStack records that the stack pointer was switched into the
	// protected pages on entry (§3.2 stack-modification defence).
	onProtectedStack bool
	// savedCPL holds the privilege level across a simulated preemption.
	savedCPL int

	Cycles uint64 // accumulated cycle count of executed instructions
}

// NewCPU returns a CPU in user mode attached to mem.
func NewCPU(mem *Memory) *CPU {
	return &CPU{mem: mem, cpl: CPLUser, savedCPL: CPLUser}
}

// CPL returns the current privilege level.
func (c *CPU) CPL() int { return c.cpl }

// Nested returns the protected-call nesting depth.
func (c *CPU) Nested() int { return c.nested }

// OnProtectedStack reports whether execution currently uses the protected stack.
func (c *CPU) OnProtectedStack() bool { return c.onProtectedStack }

// Load checks a data read at addr under the current privilege level.
func (c *CPU) Load(addr uint64) error {
	pte := c.mem.Lookup(addr)
	switch {
	case pte == nil || !pte.Present:
		return ErrNotPresent
	case !pte.User && c.cpl != CPLKernel:
		return ErrProtectionFault
	}
	return nil
}

// Store checks a data write at addr under the current privilege level.
// Beyond the classic U/S check, the extension requires that pages carrying
// the ep bit are writable only from kernel mode, so user code can never
// patch a protected function.
func (c *CPU) Store(addr uint64) error {
	pte := c.mem.Lookup(addr)
	switch {
	case pte == nil || !pte.Present:
		return ErrNotPresent
	case !pte.User && c.cpl != CPLKernel:
		return ErrProtectionFault
	case !pte.Writable:
		return ErrWriteFault
	case pte.EP && c.cpl != CPLKernel:
		return ErrWriteFault
	}
	return nil
}

// Jmpp executes the jump-protected instruction to target. On success the
// registered protected function runs in kernel mode and Jmpp performs the
// matching pret before returning. The returned error is either a fault from
// the jmpp itself or the error returned by the protected function.
func (c *CPU) Jmpp(target uint64) error {
	c.Cycles += CyclesJmpp
	pte := c.mem.Lookup(target)
	switch {
	case pte == nil || !pte.Present:
		return ErrNotPresent
	case !pte.EP:
		return ErrNotExecProt
	case target%EntryStride != 0:
		return ErrBadEntryPoint
	}
	slots := c.mem.entries[target/PageSize*PageSize]
	if slots == nil {
		return ErrBadEntryPoint
	}
	slot := slots[(target%PageSize)/EntryStride]
	if slot.fn == nil || slot.padding {
		// The first instruction at this entry offset is a nop (or nothing):
		// per §3.1 the CPU raises an exception rather than escalate.
		return ErrBadEntryPoint
	}

	// Privilege escalation: CPL -> kernel, nesting counter++, stack switch.
	prevStack := c.onProtectedStack
	c.cpl = CPLKernel
	c.nested++
	c.onProtectedStack = true

	err := slot.fn(c)

	// pret: nesting counter--, restore user mode at depth zero.
	c.Cycles += CyclesPret
	c.nested--
	c.onProtectedStack = prevStack
	if c.nested == 0 {
		c.cpl = CPLUser
	}
	return err
}

// Pret models a stray pret executed without a matching jmpp frame.
func (c *CPU) Pret() error {
	if c.nested == 0 {
		return ErrBadPret
	}
	return nil
}

// Preempt simulates the CPU being preempted by the OS scheduler and later
// resumed. The paper modifies the scheduler so that, upon returning from
// interrupts, the CPL is restored with regard to the running mode; the
// nesting counter and privilege level must survive.
func (c *CPU) Preempt() (resume func()) {
	saved := c.cpl
	c.savedCPL = saved
	// While preempted the kernel runs; on resume the scheduler restores the
	// task's CPL (kernel if it was inside a protected function).
	return func() { c.cpl = saved }
}

// Supervisor models the trusted kernel module that bootstraps protected
// libraries (Figure 2): it loads a library's functions into fresh protected
// pages, sets the ep bit, and registers the entry points. Only a Supervisor
// can set ep bits or install entry points.
type Supervisor struct {
	mem      *Memory
	nextPage uint64
}

// NewSupervisor returns a supervisor allocating protected pages starting at base.
func NewSupervisor(mem *Memory, base uint64) *Supervisor {
	return &Supervisor{mem: mem, nextPage: base / PageSize}
}

// LoadProtected implements the load_protected() system call: it maps the
// given functions into protected pages (four entry points per page), marks
// the pages kernel-only + ep, and returns the entry address of each function
// in order. Functions whose simulated size exceeds one entry stride consume
// the following slots as nop padding (Figure 1's open() example).
//
// sizes[i] gives the simulated code size of fns[i] in bytes; pass 0 for a
// function that fits one stride.
func (s *Supervisor) LoadProtected(fns []ProtectedFunc, sizes []int) ([]uint64, error) {
	if len(sizes) != 0 && len(sizes) != len(fns) {
		return nil, fmt.Errorf("isa: LoadProtected: %d sizes for %d functions", len(sizes), len(fns))
	}
	addrs := make([]uint64, 0, len(fns))
	var page uint64
	slotIdx := EntryPointsPerPage // force page allocation on first use
	var slots *[EntryPointsPerPage]entrySlot
	for i, fn := range fns {
		need := 1
		if len(sizes) > 0 && sizes[i] > EntryStride {
			need = (sizes[i] + EntryStride - 1) / EntryStride
		}
		if slotIdx+need > EntryPointsPerPage {
			page = s.nextPage * PageSize
			s.nextPage++
			s.mem.Map(page, PTE{Present: true, User: false, Writable: true, EP: true})
			slots = new([EntryPointsPerPage]entrySlot)
			s.mem.entries[page] = slots
			slotIdx = 0
		}
		addr := page + uint64(slotIdx)*EntryStride
		slots[slotIdx] = entrySlot{fn: fn}
		for j := 1; j < need; j++ {
			slots[slotIdx+j] = entrySlot{padding: true}
		}
		slotIdx += need
		addrs = append(addrs, addr)
	}
	return addrs, nil
}

// MapData maps a kernel-only data page (file-system data/metadata in NVMM).
func (s *Supervisor) MapData(addr uint64, writable bool) {
	s.mem.Map(addr, PTE{Present: true, User: false, Writable: writable})
}

// MapUser maps an ordinary user page.
func (s *Supervisor) MapUser(addr uint64, writable bool) {
	s.mem.Map(addr, PTE{Present: true, User: true, Writable: writable})
}

// SetEP attempts to set the ep bit on the page containing addr on behalf of
// code running at the given privilege level. Only kernel mode may do this.
func (s *Supervisor) SetEP(addr uint64, cpl int) error {
	if cpl != CPLKernel {
		return ErrNeedKernel
	}
	pte := s.mem.Lookup(addr)
	if pte == nil {
		return ErrNotPresent
	}
	pte.EP = true
	return nil
}
