package alloc

import (
	"fmt"
	"sync"

	"simurgh/internal/pmem"
)

// Object flag bits (the first 8 bytes of every metadata object). The
// two-bit valid/dirty protocol of §4.2 makes every allocation state crash-
// recoverable:
//
//	valid=0 dirty=0  free, ready to be allocated
//	valid=1 dirty=1  allocated but the file-system operation using it has
//	                 not completed (reclaimable after a crash)
//	valid=1 dirty=0  live object
//	valid=0 dirty=1  deallocation in progress (zeroing not yet complete)
const (
	FlagValid uint64 = 1 << 0
	FlagDirty uint64 = 1 << 1
)

// BodyOff is the offset of an object's payload past its flags word.
const BodyOff = 8

const (
	segMagic     uint64 = 0x53494d5247534c42 // "SIMRGSLB"
	segHeaderLen uint64 = 64
)

// ClassConfig describes one fixed-size object class.
type ClassConfig struct {
	// ObjSize is the full object size including the flags word; must be a
	// multiple of 8.
	ObjSize uint64
	// SegBlocks is how many blocks each new slab segment spans.
	SegBlocks uint64
	// HeadOff is the device offset (inside the superblock) of the persistent
	// chain-head pointer for this class.
	HeadOff uint64
}

type objShard struct {
	mu   sync.Mutex
	free []pmem.Ptr
}

type classState struct {
	cfg        ClassConfig
	objsPerSeg uint64
	shards     []objShard
	growMu     sync.Mutex
}

// ObjAlloc is the slab-style metadata-object allocator. Free lists are
// volatile and sharded; the persistent truth is each object's flags word and
// the per-class segment chains anchored in the superblock.
type ObjAlloc struct {
	dev     *pmem.Device
	blocks  *BlockAlloc
	classes []*classState
}

// NewObjAlloc creates the allocator. nShards controls free-list sharding
// (the paper uses twice the core count).
func NewObjAlloc(dev *pmem.Device, blocks *BlockAlloc, classes []ClassConfig, nShards int) (*ObjAlloc, error) {
	if nShards < 1 {
		nShards = 1
	}
	a := &ObjAlloc{dev: dev, blocks: blocks}
	for _, cfg := range classes {
		if cfg.ObjSize%8 != 0 || cfg.ObjSize < 16 {
			return nil, fmt.Errorf("alloc: bad object size %d", cfg.ObjSize)
		}
		segBytes := cfg.SegBlocks * blocks.BlockSize()
		cs := &classState{
			cfg:        cfg,
			objsPerSeg: (segBytes - segHeaderLen) / cfg.ObjSize,
			shards:     make([]objShard, nShards),
		}
		if cs.objsPerSeg == 0 {
			return nil, fmt.Errorf("alloc: segment too small for object size %d", cfg.ObjSize)
		}
		a.classes = append(a.classes, cs)
	}
	return a, nil
}

// Load repopulates the volatile free lists from the persistent chains,
// treating every object whose flags are exactly zero as free. Objects in
// intermediate states are left for Sweep.
func (a *ObjAlloc) Load() {
	for id := range a.classes {
		a.scanClass(id, func(ptr pmem.Ptr, flags uint64) {
			if flags == 0 {
				a.pushFree(a.classes[id], ptr)
			}
		})
	}
}

// Alloc claims a zeroed object of the class: the valid and dirty bits are
// set and persisted before it is returned, so a crash can never lose it in
// an untracked state. hint spreads contention across shards.
func (a *ObjAlloc) Alloc(class int, hint uint64) (pmem.Ptr, error) {
	cs := a.classes[class]
	for {
		ptr := a.popFree(cs, hint)
		if ptr.IsNull() {
			if err := a.grow(class, hint); err != nil {
				return 0, err
			}
			continue
		}
		// Claim via CAS on the persistent flags word. The free lists are
		// volatile, so after a crash a stale entry could alias a live
		// object; the CAS is the ground truth. The flush is left unfenced:
		// the caller persists the object body (which includes this line's
		// neighbourhood) before publishing any reference to it.
		if a.dev.CompareAndSwap64(uint64(ptr), 0, FlagValid|FlagDirty) {
			a.dev.Flush(uint64(ptr), 8)
			return ptr, nil
		}
	}
}

// ClearDirty marks the object's pending operation complete.
func (a *ObjAlloc) ClearDirty(ptr pmem.Ptr) {
	a.dev.AtomicAnd64(uint64(ptr), ^FlagDirty)
	a.dev.Persist(uint64(ptr), 8)
}

// ClearDirtyLazy is ClearDirty without the fence: the caller batches one
// fence over several flag clears (a crash before the fence merely leaves
// recoverable dirty bits, never an inconsistency).
func (a *ObjAlloc) ClearDirtyLazy(ptr pmem.Ptr) {
	a.dev.AtomicAnd64(uint64(ptr), ^FlagDirty)
	a.dev.Flush(uint64(ptr), 8)
}

// SetDirty marks an operation in progress on a live object.
func (a *ObjAlloc) SetDirty(ptr pmem.Ptr) {
	a.dev.AtomicOr64(uint64(ptr), FlagDirty)
	a.dev.Persist(uint64(ptr), 8)
}

// ClearValid begins deallocation (paper order: unset valid, then zero, then
// unset dirty).
func (a *ObjAlloc) ClearValid(ptr pmem.Ptr) {
	a.dev.AtomicAnd64(uint64(ptr), ^FlagValid)
	a.dev.Persist(uint64(ptr), 8)
}

// Flags returns the object's current flag word.
func (a *ObjAlloc) Flags(ptr pmem.Ptr) uint64 { return a.dev.AtomicLoad64(uint64(ptr)) }

// Free releases an object using the crash-safe protocol: set dirty + clear
// valid, zero the body, clear dirty, then recycle.
func (a *ObjAlloc) Free(class int, ptr pmem.Ptr) {
	cs := a.classes[class]
	a.dev.AtomicStore64(uint64(ptr), FlagDirty) // valid off, dirty on
	a.dev.Persist(uint64(ptr), 8)
	a.dev.Zero(uint64(ptr)+BodyOff, cs.cfg.ObjSize-BodyOff)
	// The zeroed body must be durable before the dirty bit clears: a free
	// object's body is relied upon to be zero by the next allocation.
	a.dev.Persist(uint64(ptr)+BodyOff, cs.cfg.ObjSize-BodyOff)
	a.dev.AtomicStore64(uint64(ptr), 0)
	a.dev.Persist(uint64(ptr), 8)
	a.pushFree(cs, ptr)
}

// Recycle returns an object whose persistent flags word is already zero
// (e.g. an entry whose deallocation protocol the caller drove directly) to
// the volatile free lists without touching persistent state.
func (a *ObjAlloc) Recycle(class int, ptr pmem.Ptr) { a.pushFree(a.classes[class], ptr) }

// ObjSize returns the configured object size of a class.
func (a *ObjAlloc) ObjSize(class int) uint64 { return a.classes[class].cfg.ObjSize }

func (a *ObjAlloc) pushFree(cs *classState, ptr pmem.Ptr) {
	sh := &cs.shards[uint64(ptr)%uint64(len(cs.shards))]
	sh.mu.Lock()
	sh.free = append(sh.free, ptr)
	sh.mu.Unlock()
}

func (a *ObjAlloc) popFree(cs *classState, hint uint64) pmem.Ptr {
	n := len(cs.shards)
	start := int(hint % uint64(n))
	for i := 0; i < n; i++ {
		sh := &cs.shards[(start+i)%n]
		sh.mu.Lock()
		if len(sh.free) > 0 {
			ptr := sh.free[len(sh.free)-1]
			sh.free = sh.free[:len(sh.free)-1]
			sh.mu.Unlock()
			return ptr
		}
		sh.mu.Unlock()
	}
	return 0
}

// grow links a freshly formatted segment into the class chain. Ordering:
// the segment header (including its next pointer) is persisted before the
// chain head is swung, so a crash leaves either the old chain or the new
// one — never a dangling head.
func (a *ObjAlloc) grow(class int, hint uint64) error {
	cs := a.classes[class]
	cs.growMu.Lock()
	defer cs.growMu.Unlock()
	// Another goroutine may have grown while we waited.
	if ptr := a.popFree(cs, hint); !ptr.IsNull() {
		a.pushFree(cs, ptr)
		return nil
	}
	block, err := a.blocks.Alloc(cs.cfg.SegBlocks, hint)
	if err != nil {
		return err
	}
	segOff := a.blocks.Off(block)
	segBytes := cs.cfg.SegBlocks * a.blocks.BlockSize()
	a.dev.Zero(segOff, segBytes)
	for {
		head := a.dev.AtomicLoad64(cs.cfg.HeadOff)
		a.dev.Store64(segOff, segMagic)
		a.dev.Store64(segOff+8, head)
		a.dev.Store64(segOff+16, cs.cfg.ObjSize)
		a.dev.Store64(segOff+24, cs.objsPerSeg)
		a.dev.Flush(segOff, segBytes)
		a.dev.Fence()
		if a.dev.CompareAndSwap64(cs.cfg.HeadOff, head, segOff) {
			a.dev.Persist(cs.cfg.HeadOff, 8)
			break
		}
	}
	for i := uint64(0); i < cs.objsPerSeg; i++ {
		a.pushFree(cs, pmem.Ptr(segOff+segHeaderLen+i*cs.cfg.ObjSize))
	}
	return nil
}

// scanClass walks the persistent segment chain of a class.
func (a *ObjAlloc) scanClass(class int, fn func(ptr pmem.Ptr, flags uint64)) {
	cs := a.classes[class]
	seg := a.dev.Load64(cs.cfg.HeadOff)
	for seg != 0 {
		if a.dev.Load64(seg) != segMagic {
			panic(fmt.Sprintf("alloc: corrupt slab segment at %#x", seg))
		}
		for i := uint64(0); i < cs.objsPerSeg; i++ {
			ptr := pmem.Ptr(seg + segHeaderLen + i*cs.cfg.ObjSize)
			fn(ptr, a.dev.Load64(uint64(ptr)))
		}
		seg = a.dev.Load64(seg + 8)
	}
}

// Scan exposes the persistent chain walk for recovery.
func (a *ObjAlloc) Scan(class int, fn func(ptr pmem.Ptr, flags uint64)) {
	a.scanClass(class, fn)
}

// SweepStats summarizes a recovery sweep of one class.
type SweepStats struct {
	Live      uint64 // valid, clean, referenced
	Reclaimed uint64 // allocated-but-dirty or unreferenced: freed
	Completed uint64 // half-deallocated objects whose free was finished
	Free      uint64
}

// Sweep performs the §4.2 crash-recovery pass over one class: objects whose
// operation never completed (valid+dirty) or that are unreferenced are
// reclaimed; interrupted deallocations (dirty only) are completed; free
// objects repopulate the volatile lists. inUse reports whether the
// mark phase found the object reachable.
func (a *ObjAlloc) Sweep(class int, inUse func(pmem.Ptr) bool) SweepStats {
	var st SweepStats
	cs := a.classes[class]
	a.scanClass(class, func(ptr pmem.Ptr, flags uint64) {
		valid := flags&FlagValid != 0
		dirty := flags&FlagDirty != 0
		switch {
		case valid && !dirty && inUse(ptr):
			st.Live++
		case flags == 0:
			st.Free++
			a.pushFree(cs, ptr)
		case !valid && dirty:
			// Deallocation was interrupted: finish zeroing and free.
			a.dev.Zero(uint64(ptr)+BodyOff, cs.cfg.ObjSize-BodyOff)
			a.dev.Persist(uint64(ptr)+BodyOff, cs.cfg.ObjSize-BodyOff)
			a.dev.AtomicStore64(uint64(ptr), 0)
			a.dev.Persist(uint64(ptr), 8)
			st.Completed++
			a.pushFree(cs, ptr)
		default:
			// Allocated but never committed, or committed but unreachable.
			a.Free(class, ptr)
			st.Reclaimed++
		}
	})
	return st
}

// UsedSegments reports, for every class, the block ranges its persistent
// segment chain occupies; recovery uses this to rebuild the block allocator.
func (a *ObjAlloc) UsedSegments(mark func(block, n uint64)) {
	for _, cs := range a.classes {
		seg := a.dev.Load64(cs.cfg.HeadOff)
		for seg != 0 {
			mark(a.blocks.Block(seg), cs.cfg.SegBlocks)
			seg = a.dev.Load64(seg + 8)
		}
	}
}
