package alloc

import (
	"testing"

	"simurgh/internal/pmem"
)

func TestSegStatsOccupancy(t *testing.T) {
	dev := pmem.New(4 << 20)
	ba := NewBlockAlloc(dev, 4096, 1, dev.Size()/4096-1, 4)
	stats := ba.SegStats()
	if len(stats) != 4 {
		t.Fatalf("got %d segments, want 4", len(stats))
	}
	var free uint64
	for _, s := range stats {
		if s.Free != s.Hi-s.Lo {
			t.Errorf("fresh segment [%d,%d) free=%d, want %d", s.Lo, s.Hi, s.Free, s.Hi-s.Lo)
		}
		free += s.Free
	}
	if free != ba.FreeBlocks() {
		t.Fatalf("SegStats total free %d != FreeBlocks %d", free, ba.FreeBlocks())
	}
	b, err := ba.Alloc(8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := sumFree(ba.SegStats()); got != free-8 {
		t.Fatalf("free after alloc = %d, want %d", got, free-8)
	}
	ba.Free(b, 8)
	if got := sumFree(ba.SegStats()); got != free {
		t.Fatalf("free after free = %d, want %d", got, free)
	}
}

func sumFree(stats []SegStat) uint64 {
	var n uint64
	for _, s := range stats {
		n += s.Free
	}
	return n
}

func TestClassStatsCountsFlagStates(t *testing.T) {
	_, _, oa := slabWorld(t)
	if st := oa.ClassStats(0); st.Objects != 0 || st.Segments != 0 {
		t.Fatalf("empty class stats = %+v", st)
	}
	p1, err := oa.Alloc(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := oa.Alloc(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	oa.ClearDirty(p1) // p1 live; p2 still valid+dirty
	st := oa.ClassStats(0)
	if st.Segments != 1 {
		t.Errorf("segments = %d, want 1", st.Segments)
	}
	if st.Valid != 2 || st.Dirty != 1 {
		t.Errorf("valid/dirty = %d/%d, want 2/1", st.Valid, st.Dirty)
	}
	if st.Free != st.Objects-2 {
		t.Errorf("free = %d, want %d", st.Free, st.Objects-2)
	}
	if st.FreeListed != st.Objects-2 {
		t.Errorf("free-listed = %d, want %d", st.FreeListed, st.Objects-2)
	}
	oa.Free(0, p2)
	st = oa.ClassStats(0)
	if st.Valid != 1 || st.Dirty != 0 || st.Free != st.Objects-1 {
		t.Errorf("after free: %+v", st)
	}
	if oa.NumClasses() != 2 {
		t.Errorf("NumClasses = %d, want 2", oa.NumClasses())
	}
}

func TestStealHookFires(t *testing.T) {
	dev := pmem.New(1 << 20)
	ba := NewBlockAlloc(dev, 4096, 1, dev.Size()/4096-1, 1)
	ba.SetMaxHold(0)
	fired := 0
	ba.SetStealHook(func() { fired++ })
	// Jam the only segment's lock, then allocate: the caller must steal it.
	if !ba.segs[0].lock.tryLock() {
		t.Fatal("could not jam segment lock")
	}
	if _, err := ba.Alloc(1, 0); err != nil {
		t.Fatal(err)
	}
	if ba.Steals() == 0 || fired == 0 {
		t.Fatalf("steals=%d hook fired=%d, want both > 0", ba.Steals(), fired)
	}
}
