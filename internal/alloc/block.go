// Package alloc implements Simurgh's two allocators (§4.2):
//
//   - a block allocator for NVMM data blocks, kept in (shared) volatile
//     memory and rebuilt from a scan on recovery: the space is divided into
//     segments (twice the number of cores, as in Hoard) each owning a
//     contiguous block range with a first-fit free-range list; segments are
//     guarded by an atomic busy flag plus a last-accessed timestamp so a
//     waiter can detect that the lock holder crashed and take over;
//
//   - a slab-style allocator for fixed-size persistent metadata objects
//     (inodes, directory blocks, file entries). Objects live in NVMM
//     segments obtained from the block allocator, carry an atomic
//     valid+dirty flag word, and are claimed/released with the exact
//     valid/dirty protocol of the paper so no object can be lost across a
//     crash.
package alloc

import (
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"simurgh/internal/pmem"
)

// ErrNoSpace is returned when an allocation cannot be satisfied.
var ErrNoSpace = errors.New("alloc: out of space")

// DefaultMaxHold is how long a process may hold a segment lock before
// waiters assume it crashed and recover the lock.
const DefaultMaxHold = 200 * time.Millisecond

// segLock is a crash-detectable spinlock: an atomic busy flag plus the
// acquisition timestamp. A waiter observing the flag held longer than
// maxHold performs recovery by re-stamping the lock for itself.
type segLock struct {
	flag atomic.Int32
	last atomic.Int64 // unix nanoseconds of acquisition
}

func (l *segLock) tryLock() bool {
	if l.flag.CompareAndSwap(0, 1) {
		l.last.Store(time.Now().UnixNano())
		return true
	}
	return false
}

// stealIfStale takes over a lock whose holder exceeded maxHold (presumed
// crashed). Returns true if the caller now owns the lock.
func (l *segLock) stealIfStale(maxHold time.Duration) bool {
	stamp := l.last.Load()
	if time.Now().UnixNano()-stamp <= int64(maxHold) {
		return false
	}
	// Re-stamp: whoever wins the CAS owns the lock.
	return l.last.CompareAndSwap(stamp, time.Now().UnixNano())
}

func (l *segLock) unlock() { l.flag.Store(0) }

// blkRange is a free range of whole blocks [start, start+n).
type blkRange struct{ start, n uint64 }

// segment owns a contiguous block range with a first-fit free list.
type segment struct {
	lock  segLock
	lo    uint64 // first block owned
	hi    uint64 // one past last block owned
	free  []blkRange
	freeN uint64 // total free blocks (for stats)
}

// BlockAlloc allocates contiguous runs of fixed-size blocks from a device
// region. Its state is volatile ("shared DRAM" in the paper) and is rebuilt
// by the recovery scan after a crash.
type BlockAlloc struct {
	dev        *pmem.Device
	blockSize  uint64
	firstBlock uint64
	nBlocks    uint64
	segs       []*segment
	maxHold    time.Duration
	steals     atomic.Uint64
	onSteal    func()
}

// NewBlockAlloc creates an allocator over blocks
// [firstBlock, firstBlock+nBlocks) of dev, split across nSegs segments.
// All blocks start free.
func NewBlockAlloc(dev *pmem.Device, blockSize, firstBlock, nBlocks uint64, nSegs int) *BlockAlloc {
	if nSegs < 1 {
		nSegs = 1
	}
	if uint64(nSegs) > nBlocks {
		nSegs = int(nBlocks)
	}
	a := &BlockAlloc{
		dev:        dev,
		blockSize:  blockSize,
		firstBlock: firstBlock,
		nBlocks:    nBlocks,
		maxHold:    DefaultMaxHold,
	}
	per := nBlocks / uint64(nSegs)
	for i := 0; i < nSegs; i++ {
		lo := firstBlock + uint64(i)*per
		hi := lo + per
		if i == nSegs-1 {
			hi = firstBlock + nBlocks
		}
		a.segs = append(a.segs, &segment{
			lo: lo, hi: hi,
			free:  []blkRange{{start: lo, n: hi - lo}},
			freeN: hi - lo,
		})
	}
	return a
}

// RebuildFromUsed reconstructs the free lists from a used-block predicate,
// as the mark-and-sweep recovery does. used is indexed by block number
// relative to firstBlock.
func (a *BlockAlloc) RebuildFromUsed(used []bool) {
	for _, s := range a.segs {
		s.free = s.free[:0]
		s.freeN = 0
		var run uint64
		var runStart uint64
		flush := func() {
			if run > 0 {
				s.free = append(s.free, blkRange{start: runStart, n: run})
				s.freeN += run
				run = 0
			}
		}
		for b := s.lo; b < s.hi; b++ {
			if used[b-a.firstBlock] {
				flush()
				continue
			}
			if run == 0 {
				runStart = b
			}
			run++
		}
		flush()
	}
}

// BlockSize returns the block size in bytes.
func (a *BlockAlloc) BlockSize() uint64 { return a.blockSize }

// Off converts a block number to a device byte offset.
func (a *BlockAlloc) Off(block uint64) uint64 { return block * a.blockSize }

// Block converts a device byte offset to a block number.
func (a *BlockAlloc) Block(off uint64) uint64 { return off / a.blockSize }

// Range returns the managed block range [first, first+n).
func (a *BlockAlloc) Range() (first, n uint64) { return a.firstBlock, a.nBlocks }

// FreeBlocks returns the total number of free blocks.
func (a *BlockAlloc) FreeBlocks() uint64 {
	var total uint64
	for _, s := range a.segs {
		s.lockSeg(a)
		total += s.freeN
		s.lock.unlock()
	}
	return total
}

// Steals reports how many stale segment locks were recovered from presumed-
// crashed holders.
func (a *BlockAlloc) Steals() uint64 { return a.steals.Load() }

// SetMaxHold adjusts the crash-detection threshold (tests use short values).
func (a *BlockAlloc) SetMaxHold(d time.Duration) { a.maxHold = d }

// lockSeg acquires the segment's lock, recovering it if the holder appears
// to have crashed.
func (s *segment) lockSeg(a *BlockAlloc) {
	for spins := 0; ; spins++ {
		if s.lock.tryLock() {
			return
		}
		if spins > 64 && s.lock.stealIfStale(a.maxHold) {
			a.steals.Add(1)
			if a.onSteal != nil {
				a.onSteal()
			}
			return
		}
		if spins&0xff == 0xff {
			time.Sleep(time.Microsecond)
		}
	}
}

// Alloc allocates n contiguous blocks. hint spreads callers across segments
// (the paper uses a modulo of the inode's persistent pointer so a file's
// blocks cluster in one segment); a busy segment is skipped for the next.
// Returns the first block number.
func (a *BlockAlloc) Alloc(n uint64, hint uint64) (uint64, error) {
	if n == 0 {
		return 0, fmt.Errorf("alloc: zero-length block allocation")
	}
	start := int(hint % uint64(len(a.segs)))
	// First pass: try-lock segments so concurrent callers don't pile up.
	for i := 0; i < len(a.segs); i++ {
		s := a.segs[(start+i)%len(a.segs)]
		if !s.lock.tryLock() {
			continue
		}
		if b, ok := s.allocLocked(n); ok {
			s.lock.unlock()
			return b, nil
		}
		s.lock.unlock()
	}
	// Second pass: wait on each segment in turn (also performs crash
	// recovery of stale locks).
	for i := 0; i < len(a.segs); i++ {
		s := a.segs[(start+i)%len(a.segs)]
		s.lockSeg(a)
		if b, ok := s.allocLocked(n); ok {
			s.lock.unlock()
			return b, nil
		}
		s.lock.unlock()
	}
	return 0, ErrNoSpace
}

// allocLocked performs first-fit within the segment.
func (s *segment) allocLocked(n uint64) (uint64, bool) {
	for i := range s.free {
		r := &s.free[i]
		if r.n >= n {
			b := r.start
			r.start += n
			r.n -= n
			s.freeN -= n
			if r.n == 0 {
				s.free = append(s.free[:i], s.free[i+1:]...)
			}
			return b, true
		}
	}
	return 0, false
}

// Free returns n contiguous blocks starting at block to their owning
// segment, coalescing adjacent ranges.
func (a *BlockAlloc) Free(block, n uint64) {
	if n == 0 {
		return
	}
	s := a.segFor(block)
	end := block + n
	if end > s.hi {
		// A contiguous run can span segment boundaries only if it was
		// allocated before a rebuild changed segment geometry; split it.
		a.Free(block, s.hi-block)
		a.Free(s.hi, end-s.hi)
		return
	}
	s.lockSeg(a)
	defer s.lock.unlock()
	i := sort.Search(len(s.free), func(i int) bool { return s.free[i].start >= block })
	// Coalesce with predecessor and/or successor.
	mergedPrev := i > 0 && s.free[i-1].start+s.free[i-1].n == block
	mergedNext := i < len(s.free) && block+n == s.free[i].start
	switch {
	case mergedPrev && mergedNext:
		s.free[i-1].n += n + s.free[i].n
		s.free = append(s.free[:i], s.free[i+1:]...)
	case mergedPrev:
		s.free[i-1].n += n
	case mergedNext:
		s.free[i].start = block
		s.free[i].n += n
	default:
		s.free = append(s.free, blkRange{})
		copy(s.free[i+1:], s.free[i:])
		s.free[i] = blkRange{start: block, n: n}
	}
	s.freeN += n
}

func (a *BlockAlloc) segFor(block uint64) *segment {
	per := a.nBlocks / uint64(len(a.segs))
	if per == 0 {
		return a.segs[0]
	}
	idx := (block - a.firstBlock) / per
	if idx >= uint64(len(a.segs)) {
		idx = uint64(len(a.segs)) - 1
	}
	return a.segs[idx]
}
