package alloc

// SegStat describes one block-allocator segment's occupancy.
type SegStat struct {
	Lo   uint64 // first block owned
	Hi   uint64 // one past last block owned
	Free uint64 // free blocks
}

// SegStats returns per-segment occupancy (locking each segment briefly).
func (a *BlockAlloc) SegStats() []SegStat {
	out := make([]SegStat, len(a.segs))
	for i, s := range a.segs {
		s.lockSeg(a)
		out[i] = SegStat{Lo: s.lo, Hi: s.hi, Free: s.freeN}
		s.lock.unlock()
	}
	return out
}

// SetStealHook installs fn to be called whenever a stale segment lock is
// stolen from a presumed-crashed holder (nil removes it). Install before
// the allocator sees concurrent traffic; the field is not synchronized.
func (a *BlockAlloc) SetStealHook(fn func()) { a.onSteal = fn }

// ClassStat summarizes one slab class's persistent and volatile state at a
// point in time. Valid and Dirty count flag bits independently (an
// allocated-but-uncommitted object is both); Free counts slots whose flags
// word is exactly zero.
type ClassStat struct {
	Segments   uint64 // persistent segments in the chain
	Objects    uint64 // object slots across all segments
	Valid      uint64 // slots with the valid bit set
	Dirty      uint64 // slots with the dirty bit set
	Free       uint64 // slots with zero flags
	FreeListed uint64 // slots on the volatile free lists
}

// ClassStats counts the flag states of one class by walking its persistent
// segment chain — exact but O(objects), so it belongs on polling paths
// (FS.Stats, exporters), not in operations. Unlike scanClass (recovery
// time, no concurrent writers) the walk uses atomic loads throughout,
// because it races with live flag transitions by design.
func (a *ObjAlloc) ClassStats(class int) ClassStat {
	var st ClassStat
	cs := a.classes[class]
	for seg := a.dev.AtomicLoad64(cs.cfg.HeadOff); seg != 0; seg = a.dev.AtomicLoad64(seg + 8) {
		for i := uint64(0); i < cs.objsPerSeg; i++ {
			flags := a.dev.AtomicLoad64(seg + segHeaderLen + i*cs.cfg.ObjSize)
			st.Objects++
			if flags&FlagValid != 0 {
				st.Valid++
			}
			if flags&FlagDirty != 0 {
				st.Dirty++
			}
			if flags == 0 {
				st.Free++
			}
		}
	}
	if cs.objsPerSeg > 0 {
		st.Segments = st.Objects / cs.objsPerSeg
	}
	for i := range cs.shards {
		sh := &cs.shards[i]
		sh.mu.Lock()
		st.FreeListed += uint64(len(sh.free))
		sh.mu.Unlock()
	}
	return st
}

// NumClasses returns how many object classes the allocator manages.
func (a *ObjAlloc) NumClasses() int { return len(a.classes) }
