package alloc

import (
	"sync"
	"testing"

	"simurgh/internal/pmem"
)

// slabWorld builds a device with a superblock page holding two class heads
// and a block allocator over the rest.
func slabWorld(t *testing.T) (*pmem.Device, *BlockAlloc, *ObjAlloc) {
	t.Helper()
	dev := pmem.New(4 << 20)
	ba := NewBlockAlloc(dev, 4096, 1, dev.Size()/4096-1, 4)
	oa, err := NewObjAlloc(dev, ba, []ClassConfig{
		{ObjSize: 128, SegBlocks: 4, HeadOff: 64}, // class 0: "inodes"
		{ObjSize: 64, SegBlocks: 2, HeadOff: 128}, // class 1: "file entries"
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	return dev, ba, oa
}

func TestObjAllocFlagsProtocol(t *testing.T) {
	dev, _, oa := slabWorld(t)
	ptr, err := oa.Alloc(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if f := oa.Flags(ptr); f != FlagValid|FlagDirty {
		t.Fatalf("freshly allocated flags = %b, want valid|dirty", f)
	}
	// Body must be zero.
	body := dev.Bytes(uint64(ptr)+BodyOff, 128-BodyOff)
	for i, b := range body {
		if b != 0 {
			t.Fatalf("body byte %d = %d, want 0", i, b)
		}
	}
	oa.ClearDirty(ptr)
	if f := oa.Flags(ptr); f != FlagValid {
		t.Fatalf("flags after ClearDirty = %b", f)
	}
	oa.Free(0, ptr)
	if f := oa.Flags(ptr); f != 0 {
		t.Fatalf("flags after Free = %b", f)
	}
}

func TestObjAllocDistinctPointers(t *testing.T) {
	_, _, oa := slabWorld(t)
	seen := map[pmem.Ptr]bool{}
	for i := 0; i < 500; i++ {
		p, err := oa.Alloc(1, uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		if seen[p] {
			t.Fatalf("pointer %#x handed out twice", p)
		}
		seen[p] = true
	}
}

func TestObjAllocReuseAfterFree(t *testing.T) {
	_, _, oa := slabWorld(t)
	p1, _ := oa.Alloc(0, 0)
	oa.ClearDirty(p1)
	oa.Free(0, p1)
	// The freed slot must be allocatable again.
	found := false
	for i := 0; i < 2000; i++ {
		p, err := oa.Alloc(0, uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		if p == p1 {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("freed object never recycled")
	}
}

func TestObjAllocGrowsChain(t *testing.T) {
	dev, _, oa := slabWorld(t)
	// Class 1: 64-byte objects, 2-block segments -> (8192-64)/64 = 127 per
	// segment. Allocate past one segment to force chain growth.
	for i := 0; i < 300; i++ {
		if _, err := oa.Alloc(1, uint64(i)); err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
	}
	// Walk the chain: needs >= 3 segments.
	segs := 0
	seg := dev.Load64(128)
	for seg != 0 {
		segs++
		seg = dev.Load64(seg + 8)
	}
	if segs < 3 {
		t.Fatalf("chain has %d segments, want >= 3", segs)
	}
}

func TestObjAllocConcurrent(t *testing.T) {
	// All workers hold on to everything they allocate; every held pointer
	// must be globally unique.
	_, _, oa := slabWorld(t)
	const workers = 8
	held := make([][]pmem.Ptr, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				p, err := oa.Alloc(0, uint64(w))
				if err != nil {
					t.Error(err)
					return
				}
				oa.ClearDirty(p)
				held[w] = append(held[w], p)
			}
		}()
	}
	wg.Wait()
	all := map[pmem.Ptr]int{}
	for w, ps := range held {
		for _, p := range ps {
			if prev, dup := all[p]; dup {
				t.Fatalf("pointer %#x held by workers %d and %d", p, prev, w)
			}
			all[p] = w
		}
	}
}

func TestObjAllocConcurrentChurn(t *testing.T) {
	// Allocate/free churn across workers: the allocator must never hand the
	// same object to two workers that hold it at the same time. Each worker
	// writes its id into the object body and checks it before freeing.
	dev, _, oa := slabWorld(t)
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				p, err := oa.Alloc(0, uint64(w+i))
				if err != nil {
					t.Error(err)
					return
				}
				dev.Store64(uint64(p)+BodyOff, uint64(w)+1)
				oa.ClearDirty(p)
				if got := dev.Load64(uint64(p) + BodyOff); got != uint64(w)+1 {
					t.Errorf("object %#x owned by worker %d overwritten: %d", p, w, got)
					return
				}
				oa.Free(0, p)
			}
		}()
	}
	wg.Wait()
}

func TestSweepReclaimsDirtyObjects(t *testing.T) {
	dev, _, oa := slabWorld(t)
	live, _ := oa.Alloc(0, 0)
	oa.ClearDirty(live)
	leaked, _ := oa.Alloc(0, 1) // valid|dirty: op never completed
	halfFreed, _ := oa.Alloc(0, 2)
	oa.ClearDirty(halfFreed)
	// Simulate a crash mid-Free: valid cleared, dirty set, body not zeroed.
	dev.Store64(uint64(halfFreed)+BodyOff, 0xabcdef)
	dev.AtomicStore64(uint64(halfFreed), FlagDirty)
	dev.Persist(uint64(halfFreed), 8)

	st := oa.Sweep(0, func(p pmem.Ptr) bool { return p == live })
	if st.Live != 1 {
		t.Fatalf("live = %d, want 1", st.Live)
	}
	if st.Reclaimed != 1 {
		t.Fatalf("reclaimed = %d, want 1 (the leaked valid|dirty object)", st.Reclaimed)
	}
	if st.Completed != 1 {
		t.Fatalf("completed = %d, want 1 (the half-freed object)", st.Completed)
	}
	if f := oa.Flags(leaked); f != 0 {
		t.Fatalf("leaked object flags after sweep = %b", f)
	}
	if v := dev.Load64(uint64(halfFreed) + BodyOff); v != 0 {
		t.Fatalf("half-freed body not zeroed by sweep: %#x", v)
	}
	if f := oa.Flags(live); f != FlagValid {
		t.Fatalf("live object disturbed by sweep: flags %b", f)
	}
}

func TestSweepReclaimsUnreferencedValidObjects(t *testing.T) {
	_, _, oa := slabWorld(t)
	orphan, _ := oa.Alloc(0, 0)
	oa.ClearDirty(orphan) // committed but unreachable (e.g. lost rename source)
	st := oa.Sweep(0, func(pmem.Ptr) bool { return false })
	if st.Reclaimed != 1 {
		t.Fatalf("reclaimed = %d, want 1", st.Reclaimed)
	}
	if f := oa.Flags(orphan); f != 0 {
		t.Fatalf("orphan flags = %b after sweep", f)
	}
}

func TestLoadRepopulatesFreeLists(t *testing.T) {
	dev, ba, oa := slabWorld(t)
	var keep pmem.Ptr
	for i := 0; i < 50; i++ {
		p, _ := oa.Alloc(0, uint64(i))
		oa.ClearDirty(p)
		if i == 25 {
			keep = p
		}
	}
	// Simulate a restart: a brand-new allocator over the same device.
	oa2, err := NewObjAlloc(dev, ba, []ClassConfig{
		{ObjSize: 128, SegBlocks: 4, HeadOff: 64},
		{ObjSize: 64, SegBlocks: 2, HeadOff: 128},
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	oa2.Load()
	// New allocations must not collide with live objects.
	for i := 0; i < 200; i++ {
		p, err := oa2.Alloc(0, uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		if p == keep {
			t.Fatal("Load handed out a live object")
		}
	}
}

func TestUsedSegmentsCoversChains(t *testing.T) {
	_, _, oa := slabWorld(t)
	for i := 0; i < 300; i++ {
		oa.Alloc(1, uint64(i))
	}
	var blocks uint64
	oa.UsedSegments(func(b, n uint64) { blocks += n })
	if blocks < 6 { // >= 3 segments x 2 blocks
		t.Fatalf("UsedSegments reported %d blocks, want >= 6", blocks)
	}
}

func TestCrashDuringGrowLeavesConsistentChain(t *testing.T) {
	dev := pmem.New(4 << 20)
	dev.SetMode(pmem.ModeTracked)
	ba := NewBlockAlloc(dev, 4096, 1, dev.Size()/4096-1, 2)
	oa, _ := NewObjAlloc(dev, ba, []ClassConfig{{ObjSize: 64, SegBlocks: 2, HeadOff: 64}}, 2)
	p, err := oa.Alloc(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	oa.ClearDirty(p)
	dev.Crash()
	// After the crash, walking the chain must terminate and find the object.
	oa2, _ := NewObjAlloc(dev, ba, []ClassConfig{{ObjSize: 64, SegBlocks: 2, HeadOff: 64}}, 2)
	found := false
	oa2.Scan(0, func(ptr pmem.Ptr, flags uint64) {
		if ptr == p && flags == FlagValid {
			found = true
		}
	})
	if !found {
		t.Fatal("persisted object lost after crash")
	}
}
