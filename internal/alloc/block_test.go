package alloc

import (
	"sync"
	"testing"
	"time"

	"simurgh/internal/pmem"
)

func newBA(t *testing.T, nBlocks uint64, nSegs int) *BlockAlloc {
	t.Helper()
	dev := pmem.New((1 + nBlocks) * 4096)
	return NewBlockAlloc(dev, 4096, 1, nBlocks, nSegs)
}

func TestBlockAllocBasic(t *testing.T) {
	a := newBA(t, 64, 4)
	b1, err := a.Alloc(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := a.Alloc(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if b1 == b2 {
		t.Fatal("double allocation of the same block")
	}
	if a.FreeBlocks() != 62 {
		t.Fatalf("free = %d, want 62", a.FreeBlocks())
	}
	a.Free(b1, 1)
	a.Free(b2, 1)
	if a.FreeBlocks() != 64 {
		t.Fatalf("free after release = %d, want 64", a.FreeBlocks())
	}
}

func TestBlockAllocContiguous(t *testing.T) {
	a := newBA(t, 128, 2)
	b, err := a.Alloc(32, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The run must be contiguous by construction; verify bounds.
	if b < 1 || b+32 > 129 {
		t.Fatalf("run [%d,%d) outside managed range", b, b+32)
	}
}

func TestBlockAllocExhaustion(t *testing.T) {
	a := newBA(t, 8, 2)
	if _, err := a.Alloc(8, 0); err != ErrNoSpace {
		// 8 blocks split across 2 segments: no segment can hold 8.
		t.Fatalf("cross-segment allocation err = %v, want ErrNoSpace", err)
	}
	for i := 0; i < 8; i++ {
		if _, err := a.Alloc(1, uint64(i)); err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
	}
	if _, err := a.Alloc(1, 0); err != ErrNoSpace {
		t.Fatalf("err = %v, want ErrNoSpace", err)
	}
}

func TestBlockFreeCoalesces(t *testing.T) {
	a := newBA(t, 16, 1)
	b, err := a.Alloc(16, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Free out of order in three chunks; they must coalesce back into one
	// range able to satisfy a full-size allocation.
	a.Free(b+5, 6)
	a.Free(b, 5)
	a.Free(b+11, 5)
	got, err := a.Alloc(16, 0)
	if err != nil {
		t.Fatalf("re-alloc after coalesce: %v", err)
	}
	if got != b {
		t.Fatalf("re-alloc at %d, want %d", got, b)
	}
}

func TestBlockAllocHintSpreadsSegments(t *testing.T) {
	a := newBA(t, 64, 4)
	b0, _ := a.Alloc(1, 0)
	b1, _ := a.Alloc(1, 1)
	s0 := a.segFor(b0)
	s1 := a.segFor(b1)
	if s0 == s1 {
		t.Fatal("different hints mapped to the same segment")
	}
}

func TestBlockAllocConcurrent(t *testing.T) {
	a := newBA(t, 4096, 8)
	const workers = 8
	var wg sync.WaitGroup
	seen := make([]map[uint64]bool, workers)
	for w := 0; w < workers; w++ {
		w := w
		seen[w] = map[uint64]bool{}
		wg.Add(1)
		go func() {
			defer wg.Done()
			var held []uint64
			for i := 0; i < 200; i++ {
				b, err := a.Alloc(1, uint64(w))
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				seen[w][b] = true
				held = append(held, b)
				if len(held) > 10 {
					a.Free(held[0], 1)
					delete(seen[w], held[0])
					held = held[1:]
				}
			}
			for _, b := range held {
				a.Free(b, 1)
			}
		}()
	}
	wg.Wait()
	if a.FreeBlocks() != 4096 {
		t.Fatalf("leaked blocks: free = %d", a.FreeBlocks())
	}
}

func TestBlockAllocNoDoubleHandout(t *testing.T) {
	a := newBA(t, 512, 4)
	const workers = 6
	results := make([][]uint64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 80; i++ {
				b, err := a.Alloc(1, uint64(w*7+i))
				if err != nil {
					return
				}
				results[w] = append(results[w], b)
			}
		}()
	}
	wg.Wait()
	all := map[uint64]int{}
	for w, bs := range results {
		for _, b := range bs {
			if prev, dup := all[b]; dup {
				t.Fatalf("block %d handed to both worker %d and %d", b, prev, w)
			}
			all[b] = w
		}
	}
}

func TestSegmentLockStealAfterCrash(t *testing.T) {
	a := newBA(t, 64, 1)
	a.SetMaxHold(5 * time.Millisecond)
	// Simulate a process that locked the segment and died.
	if !a.segs[0].lock.tryLock() {
		t.Fatal("could not take lock")
	}
	time.Sleep(10 * time.Millisecond)
	done := make(chan uint64, 1)
	go func() {
		b, err := a.Alloc(1, 0)
		if err != nil {
			t.Error(err)
		}
		done <- b
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("waiter never recovered the stale segment lock")
	}
	if a.Steals() == 0 {
		t.Fatal("steal not recorded")
	}
}

func TestRebuildFromUsed(t *testing.T) {
	a := newBA(t, 16, 2)
	used := make([]bool, 16)
	used[0], used[3], used[4], used[5], used[15] = true, true, true, true, true
	a.RebuildFromUsed(used)
	if a.FreeBlocks() != 11 {
		t.Fatalf("free after rebuild = %d, want 11", a.FreeBlocks())
	}
	// All handed-out blocks must come from the free set.
	for i := 0; i < 11; i++ {
		b, err := a.Alloc(1, uint64(i))
		if err != nil {
			t.Fatalf("alloc %d after rebuild: %v", i, err)
		}
		if used[b-1] {
			t.Fatalf("rebuilt allocator handed out used block %d", b)
		}
	}
	if _, err := a.Alloc(1, 0); err != ErrNoSpace {
		t.Fatalf("err = %v, want ErrNoSpace", err)
	}
}
