package alloc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"simurgh/internal/pmem"
)

// Property: any interleaving of allocations and frees conserves blocks —
// free + held always equals the managed total, no run overlaps another, and
// every handed-out run stays within bounds.
func TestQuickBlockAllocConservation(t *testing.T) {
	f := func(seed int64, opsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		const nBlocks = 256
		dev := pmem.New((1 + nBlocks) * 4096)
		a := NewBlockAlloc(dev, 4096, 1, nBlocks, 1+rng.Intn(4))
		type run struct{ start, n uint64 }
		var held []run
		heldBlocks := uint64(0)
		ops := int(opsRaw)
		for i := 0; i < ops; i++ {
			if rng.Intn(2) == 0 || len(held) == 0 {
				n := uint64(1 + rng.Intn(8))
				b, err := a.Alloc(n, uint64(rng.Intn(64)))
				if err != nil {
					continue // legitimately full/fragmented
				}
				if b < 1 || b+n > 1+nBlocks {
					t.Logf("out-of-range run [%d,%d)", b, b+n)
					return false
				}
				for _, h := range held {
					if b < h.start+h.n && h.start < b+n {
						t.Logf("overlap: [%d,%d) vs [%d,%d)", b, b+n, h.start, h.start+h.n)
						return false
					}
				}
				held = append(held, run{b, n})
				heldBlocks += n
			} else {
				i := rng.Intn(len(held))
				a.Free(held[i].start, held[i].n)
				heldBlocks -= held[i].n
				held = append(held[:i], held[i+1:]...)
			}
			if a.FreeBlocks()+heldBlocks != nBlocks {
				t.Logf("conservation broken: free=%d held=%d total=%d",
					a.FreeBlocks(), heldBlocks, nBlocks)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: the slab allocator's persistent flag words and volatile free
// lists stay consistent through arbitrary alloc/free interleavings — a
// freshly loaded allocator over the same device hands out exactly the
// objects the first one had free.
func TestQuickSlabStateSurvivesReload(t *testing.T) {
	f := func(seed int64, opsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		dev := pmem.New(2 << 20)
		ba := NewBlockAlloc(dev, 4096, 1, dev.Size()/4096-1, 2)
		cfg := []ClassConfig{{ObjSize: 64, SegBlocks: 2, HeadOff: 64}}
		oa, err := NewObjAlloc(dev, ba, cfg, 2)
		if err != nil {
			return false
		}
		live := map[pmem.Ptr]bool{}
		for i := 0; i < int(opsRaw); i++ {
			if rng.Intn(3) != 0 || len(live) == 0 {
				p, err := oa.Alloc(0, uint64(i))
				if err != nil {
					continue
				}
				oa.ClearDirty(p)
				live[p] = true
			} else {
				for p := range live {
					oa.Free(0, p)
					delete(live, p)
					break
				}
			}
		}
		// Reload from persistent state only.
		oa2, err := NewObjAlloc(dev, ba, cfg, 2)
		if err != nil {
			return false
		}
		oa2.Load()
		// Allocate everything allocatable: none may collide with live set.
		for i := 0; i < 1000; i++ {
			p, err := oa2.Alloc(0, uint64(i))
			if err != nil {
				break
			}
			if live[p] {
				t.Logf("reloaded allocator handed out live object %#x", p)
				return false
			}
		}
		// Every live object still carries valid flags.
		for p := range live {
			if oa2.Flags(p) != FlagValid {
				t.Logf("live object %#x flags=%b after reload", p, oa2.Flags(p))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
