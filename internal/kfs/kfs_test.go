package kfs

import (
	"bytes"
	"sync"
	"testing"

	"simurgh/internal/fsapi"
	"simurgh/internal/pmem"
	"simurgh/internal/vfs"
)

func newKFS(t *testing.T, kind Kind) *FS {
	t.Helper()
	return New(kind, pmem.New(256<<20))
}

func TestAllKindsBasicCycle(t *testing.T) {
	for _, kind := range []Kind{KindNova, KindPMFS, KindExtDax} {
		t.Run(kind.String(), func(t *testing.T) {
			fs := newKFS(t, kind)
			root := fs.Root()
			id, err := fs.Create(root, "f", fsapi.ModeRegular|0o644, 0, 0)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := fs.WriteAt(id, []byte("hello"), 0); err != nil {
				t.Fatal(err)
			}
			buf := make([]byte, 8)
			n, err := fs.ReadAt(id, buf, 0)
			if err != nil || string(buf[:n]) != "hello" {
				t.Fatalf("read = (%q, %v)", buf[:n], err)
			}
			got, err := fs.Lookup(root, "f")
			if err != nil || got != id {
				t.Fatalf("lookup = (%d, %v), want %d", got, err, id)
			}
			if err := fs.Unlink(root, "f"); err != nil {
				t.Fatal(err)
			}
			if _, err := fs.Lookup(root, "f"); err != fsapi.ErrNotExist {
				t.Fatalf("lookup after unlink = %v", err)
			}
		})
	}
}

func TestPMFSUsesLinearDirectory(t *testing.T) {
	fs := newKFS(t, KindPMFS)
	id, _ := fs.Mkdir(fs.Root(), "d", fsapi.ModeDir|0o755, 0, 0)
	n := fs.node(id)
	if n.dirList == nil || n.dirMap != nil {
		t.Fatal("PMFS directory is not a linear list")
	}
	fs2 := newKFS(t, KindNova)
	id2, _ := fs2.Mkdir(fs2.Root(), "d", fsapi.ModeDir|0o755, 0, 0)
	n2 := fs2.node(id2)
	if n2.dirMap == nil || n2.dirList != nil {
		t.Fatal("NOVA directory is not a map")
	}
}

func TestHardLinkCounts(t *testing.T) {
	fs := newKFS(t, KindNova)
	root := fs.Root()
	id, _ := fs.Create(root, "a", fsapi.ModeRegular|0o644, 0, 0)
	if err := fs.Link(root, "b", id); err != nil {
		t.Fatal(err)
	}
	attr, _ := fs.GetAttr(id)
	if attr.Nlink != 2 {
		t.Fatalf("nlink = %d", attr.Nlink)
	}
	fs.Unlink(root, "a")
	attr, err := fs.GetAttr(id)
	if err != nil || attr.Nlink != 1 {
		t.Fatalf("after unlink: nlink=%d err=%v", attr.Nlink, err)
	}
	if _, err := fs.Lookup(root, "b"); err != nil {
		t.Fatal("second link lost")
	}
}

func TestRenameReplacesAndFrees(t *testing.T) {
	fs := newKFS(t, KindExtDax)
	root := fs.Root()
	a, _ := fs.Create(root, "a", fsapi.ModeRegular|0o644, 0, 0)
	fs.WriteAt(a, make([]byte, 100000), 0)
	bID, _ := fs.Create(root, "b", fsapi.ModeRegular|0o644, 0, 0)
	fs.WriteAt(bID, make([]byte, 100000), 0)
	free := fs.ba.FreeBlocks()
	if err := fs.Rename(root, "a", root, "b"); err != nil {
		t.Fatal(err)
	}
	if fs.ba.FreeBlocks() <= free {
		t.Fatal("replaced file's blocks not freed")
	}
	got, err := fs.Lookup(root, "b")
	if err != nil || got != a {
		t.Fatalf("b -> %d (%v), want %d", got, err, a)
	}
}

func TestTruncateFreesBlocks(t *testing.T) {
	fs := newKFS(t, KindNova)
	id, _ := fs.Create(fs.Root(), "f", fsapi.ModeRegular|0o644, 0, 0)
	fs.WriteAt(id, make([]byte, 10*BlockSize), 0)
	free := fs.ba.FreeBlocks()
	if err := fs.Truncate(id, BlockSize); err != nil {
		t.Fatal(err)
	}
	if fs.ba.FreeBlocks() != free+9 {
		t.Fatalf("free %d -> %d, want +9", free, fs.ba.FreeBlocks())
	}
}

func TestDataSurvivesOddOffsets(t *testing.T) {
	fs := newKFS(t, KindPMFS)
	id, _ := fs.Create(fs.Root(), "f", fsapi.ModeRegular|0o644, 0, 0)
	pattern := []byte("0123456789abcdef")
	for off := uint64(0); off < 50000; off += 13007 {
		if _, err := fs.WriteAt(id, pattern, off); err != nil {
			t.Fatal(err)
		}
	}
	buf := make([]byte, len(pattern))
	for off := uint64(0); off < 50000; off += 13007 {
		n, err := fs.ReadAt(id, buf, off)
		if err != nil || !bytes.Equal(buf[:n], pattern[:n]) {
			t.Fatalf("off %d: (%q, %v)", off, buf[:n], err)
		}
	}
}

func TestJournalsDoRealNVMMWork(t *testing.T) {
	// Each design's journal must actually write to the device: compare
	// flush counts across an op batch.
	for _, kind := range []Kind{KindNova, KindPMFS, KindExtDax} {
		dev := pmem.New(256 << 20)
		fs := New(kind, dev)
		before := dev.Stats.Flushes.Load()
		for i := 0; i < 50; i++ {
			fs.Create(fs.Root(), string(rune('a'+i%26))+string(rune('0'+i/26)), fsapi.ModeRegular|0o644, 0, 0)
		}
		if delta := dev.Stats.Flushes.Load() - before; delta < 100 {
			t.Fatalf("%s: only %d flushes for 50 creates", kind, delta)
		}
	}
}

func TestPMFSJournalSerializes(t *testing.T) {
	// The undo journal's fence count scales with ops (every op fences);
	// jbd2 batches fences.
	devP := pmem.New(256 << 20)
	pmfs := New(KindPMFS, devP)
	devE := pmem.New(256 << 20)
	ext := New(KindExtDax, devE)
	pBefore := devP.Stats.Fences.Load()
	eBefore := devE.Stats.Fences.Load()
	for i := 0; i < 100; i++ {
		name := "f" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26))
		pmfs.Create(pmfs.Root(), name, fsapi.ModeRegular|0o644, 0, 0)
		ext.Create(ext.Root(), name, fsapi.ModeRegular|0o644, 0, 0)
	}
	pf := devP.Stats.Fences.Load() - pBefore
	ef := devE.Stats.Fences.Load() - eBefore
	if pf <= ef*2 {
		t.Fatalf("undo journal fences (%d) should far exceed jbd2's batched fences (%d)", pf, ef)
	}
}

func TestConcurrentCreatesUnderVFS(t *testing.T) {
	fs := New(KindNova, pmem.New(256<<20))
	v := vfs.New(fs, nil)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, _ := v.Attach(fsapi.Root)
			for i := 0; i < 100; i++ {
				name := "/x" + string(rune('a'+w)) + string(rune('a'+i%26)) + string(rune('a'+i/26))
				if _, err := c.Create(name, 0o644); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	c, _ := v.Attach(fsapi.Root)
	ents, _ := c.ReadDir("/")
	if len(ents) != 400 {
		t.Fatalf("%d entries, want 400", len(ents))
	}
}

func TestSplitFSHelpers(t *testing.T) {
	fs := newKFS(t, KindExtDax)
	id, _ := fs.Create(fs.Root(), "f", fsapi.ModeRegular|0o644, 0, 0)
	start, err := fs.AllocBlocks(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Write directly into the staged blocks, then relink them.
	payload := bytes.Repeat([]byte{0x5A}, 4*BlockSize)
	fs.Device().NTStore(start*BlockSize, payload)
	fs.Device().Fence()
	if err := fs.AppendRun(id, start, 4); err != nil {
		t.Fatal(err)
	}
	if err := fs.SetSize(id, uint64(len(payload))); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(payload))
	n, err := fs.ReadAt(id, buf, 0)
	if err != nil || n != len(payload) || !bytes.Equal(buf, payload) {
		t.Fatalf("relinked data mismatch (n=%d err=%v)", n, err)
	}
}
