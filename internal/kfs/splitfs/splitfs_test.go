package splitfs

import (
	"bytes"
	"testing"

	"simurgh/internal/fsapi"
	"simurgh/internal/pmem"
)

func newSFS(t *testing.T) (*FS, fsapi.Client) {
	t.Helper()
	fs := New(pmem.New(256<<20), nil)
	c, err := fs.Attach(fsapi.Root)
	if err != nil {
		t.Fatal(err)
	}
	return fs, c
}

func TestStagedAppendsVisibleAndDurable(t *testing.T) {
	_, c := newSFS(t)
	fd, err := c.Open("/log", fsapi.OCreate|fsapi.OWronly|fsapi.OAppend, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// Appends smaller than a block, crossing block boundaries.
	var want []byte
	for i := 0; i < 20; i++ {
		chunk := bytes.Repeat([]byte{byte(i + 1)}, 1000)
		if _, err := c.Write(fd, chunk); err != nil {
			t.Fatal(err)
		}
		want = append(want, chunk...)
	}
	// Size must include staged-but-not-relinked bytes.
	st, _ := c.Fstat(fd)
	if st.Size != uint64(len(want)) {
		t.Fatalf("visible size = %d, want %d", st.Size, len(want))
	}
	if err := c.Fsync(fd); err != nil {
		t.Fatal(err)
	}
	c.Close(fd)
	fd, _ = c.Open("/log", fsapi.ORdonly, 0)
	got := make([]byte, len(want))
	n, _ := c.Pread(fd, got, 0)
	if n != len(want) || !bytes.Equal(got, want) {
		t.Fatalf("staged append data corrupted (n=%d)", n)
	}
}

func TestReadSeesPendingStagedData(t *testing.T) {
	_, c := newSFS(t)
	fd, _ := c.Open("/f", fsapi.OCreate|fsapi.ORdwr|fsapi.OAppend, 0o644)
	c.Write(fd, []byte("staged-not-synced"))
	// No fsync: a read must still see the append (relink-on-read).
	buf := make([]byte, 32)
	n, err := c.Pread(fd, buf, 0)
	if err != nil || string(buf[:n]) != "staged-not-synced" {
		t.Fatalf("read staged = (%q, %v)", buf[:n], err)
	}
}

func TestUnalignedTailAppendAfterRelink(t *testing.T) {
	_, c := newSFS(t)
	fd, _ := c.Open("/f", fsapi.OCreate|fsapi.ORdwr|fsapi.OAppend, 0o644)
	// First append leaves an unaligned tail, relink, then append again:
	// the second staging round starts mid-block.
	c.Write(fd, bytes.Repeat([]byte{0xAA}, 5000))
	c.Fsync(fd)
	c.Write(fd, bytes.Repeat([]byte{0xBB}, 5000))
	c.Fsync(fd)
	got := make([]byte, 10000)
	n, _ := c.Pread(fd, got, 0)
	if n != 10000 {
		t.Fatalf("read %d bytes", n)
	}
	for i := 0; i < 5000; i++ {
		if got[i] != 0xAA {
			t.Fatalf("byte %d = %x, want AA", i, got[i])
		}
	}
	for i := 5000; i < 10000; i++ {
		if got[i] != 0xBB {
			t.Fatalf("byte %d = %x, want BB", i, got[i])
		}
	}
}

func TestOverwriteBypassesStaging(t *testing.T) {
	_, c := newSFS(t)
	fd, _ := c.Open("/f", fsapi.OCreate|fsapi.ORdwr, 0o644)
	c.Pwrite(fd, bytes.Repeat([]byte{1}, 8192), 0)
	// In-place overwrite within the file.
	if _, err := c.Pwrite(fd, []byte{9, 9, 9}, 100); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	c.Pread(fd, buf, 99)
	if buf[0] != 1 || buf[1] != 9 || buf[2] != 9 || buf[3] != 9 || buf[4] != 1 {
		t.Fatalf("overwrite result = %v", buf)
	}
}

func TestUnlinkDropsStagedData(t *testing.T) {
	fs, c := newSFS(t)
	fd, _ := c.Open("/gone", fsapi.OCreate|fsapi.OWronly|fsapi.OAppend, 0o644)
	c.Write(fd, make([]byte, 100000))
	if err := c.Unlink("/gone"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Stat("/gone"); err != fsapi.ErrNotExist {
		t.Fatalf("stat after unlink = %v", err)
	}
	_ = fs
}

func TestCloseRelinksPending(t *testing.T) {
	_, c := newSFS(t)
	fd, _ := c.Open("/f", fsapi.OCreate|fsapi.OWronly|fsapi.OAppend, 0o644)
	c.Write(fd, []byte("pending"))
	c.Close(fd)
	st, err := c.Stat("/f")
	if err != nil || st.Size != 7 {
		t.Fatalf("size after close = (%d, %v)", st.Size, err)
	}
}

func TestMetadataPathThroughKernel(t *testing.T) {
	_, c := newSFS(t)
	if err := c.Mkdir("/d", 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Create("/d/x", 0o644); err != nil {
		t.Fatal(err)
	}
	if err := c.Rename("/d/x", "/d/y"); err != nil {
		t.Fatal(err)
	}
	ents, err := c.ReadDir("/d")
	if err != nil || len(ents) != 1 || ents[0].Name != "y" {
		t.Fatalf("readdir = (%v, %v)", ents, err)
	}
}
