// Package splitfs reimplements the SplitFS design (SOSP '19) the paper
// benchmarks against: metadata operations go through the kernel path
// (EXT4-DAX under the simulated VFS, paying syscalls and kernel locks),
// while data operations run in user space. Appends are staged into
// preallocated staging blocks with plain user-space NVMM writes and are
// "relinked" into the file with a single syscall at fsync time — the
// optimization that makes SplitFS extremely fast for appends at low thread
// counts (Fig 7g). POSIX mode (the strictest the paper uses) is modelled.
package splitfs

import (
	"io"
	"sync"
	"sync/atomic"

	"simurgh/internal/cost"
	"simurgh/internal/fsapi"
	"simurgh/internal/kfs"
	"simurgh/internal/pmem"
	"simurgh/internal/vfs"
)

// stagingRunBlocks is how many blocks each staging region spans (SplitFS
// preallocates staging files and hands out regions from them).
const stagingRunBlocks = 16

const blockSize = kfs.BlockSize

// FS is a mounted SplitFS: an EXT4-DAX inner file system with a user-space
// data path layered on top.
type FS struct {
	inner *kfs.FS
	meta  *vfs.VFS
	costM *cost.Model

	mu      sync.Mutex
	staging map[vfs.NodeID]*staging
}

type staging struct {
	mu    sync.Mutex
	runs  []stRun
	base  uint64 // visible file size when staging began
	used  uint64 // staged bytes
	avail uint64 // staged capacity in bytes (minus the in-block head offset)
}

type stRun struct{ start, n uint64 }

// New creates a SplitFS over a fresh EXT4-DAX instance on dev.
func New(dev *pmem.Device, costM *cost.Model) *FS {
	inner := kfs.New(kfs.KindExtDax, dev)
	return &FS{
		inner:   inner,
		meta:    vfs.New(inner, costM),
		costM:   costM,
		staging: make(map[vfs.NodeID]*staging),
	}
}

// Name implements fsapi.FileSystem.
func (fs *FS) Name() string { return "splitfs" }

// Inner exposes the EXT4-DAX metadata file system (benchmark wiring).
func (fs *FS) Inner() *kfs.FS { return fs.inner }

// Attach implements fsapi.FileSystem.
func (fs *FS) Attach(cred fsapi.Cred) (fsapi.Client, error) {
	mc, err := fs.meta.Attach(cred)
	if err != nil {
		return nil, err
	}
	return &Client{fs: fs, meta: mc.(*vfs.Client)}, nil
}

func (fs *FS) stagingOf(n vfs.NodeID) *staging {
	fs.mu.Lock()
	st := fs.staging[n]
	if st == nil {
		st = &staging{}
		fs.staging[n] = st
	}
	fs.mu.Unlock()
	return st
}

// Client is one attached process.
type Client struct {
	fs     *FS
	meta   *vfs.Client
	nextFD atomic.Int32
	files  sync.Map // fsapi.FD -> *openFile
}

type openFile struct {
	metaFD fsapi.FD
	node   vfs.NodeID
	flags  fsapi.OpenFlag
	pos    atomic.Uint64
	append bool
}

func (c *Client) file(fd fsapi.FD) (*openFile, error) {
	v, ok := c.files.Load(fd)
	if !ok {
		return nil, fsapi.ErrBadFD
	}
	return v.(*openFile), nil
}

// Open routes through the kernel metadata path, then sets up the user-space
// data path for the file.
func (c *Client) Open(path string, flags fsapi.OpenFlag, perm uint32) (fsapi.FD, error) {
	mfd, err := c.meta.Open(path, flags, perm)
	if err != nil {
		return -1, err
	}
	st, err := c.meta.Fstat(mfd)
	if err != nil {
		return -1, err
	}
	fd := fsapi.FD(c.nextFD.Add(1)) + 1000
	c.files.Store(fd, &openFile{
		metaFD: mfd,
		node:   vfs.NodeID(st.Ino),
		flags:  flags,
		append: flags&fsapi.OAppend != 0,
	})
	return fd, nil
}

// Create implements fsapi.Client.
func (c *Client) Create(path string, perm uint32) (fsapi.FD, error) {
	return c.Open(path, fsapi.OCreate|fsapi.OWronly|fsapi.OTrunc, perm)
}

// Close implements fsapi.Client: relinks pending appends (SplitFS keeps
// staged data visible via its own mapping, but close makes it durable).
func (c *Client) Close(fd fsapi.FD) error {
	of, err := c.file(fd)
	if err != nil {
		return err
	}
	c.fs.relink(of.node)
	c.files.Delete(fd)
	return c.meta.Close(of.metaFD)
}

// visibleSize is the inner size plus pending staged bytes.
func (fs *FS) visibleSize(n vfs.NodeID) uint64 {
	attr, err := fs.inner.GetAttr(n)
	if err != nil {
		return 0
	}
	st := fs.stagingOf(n)
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.used > 0 {
		return st.base + st.used
	}
	return attr.Size
}

// relink merges staged appends into the file with one syscall: unaligned
// head bytes are copied, whole staged blocks are attached to the extent
// tree without copying.
func (fs *FS) relink(n vfs.NodeID) {
	st := fs.stagingOf(n)
	st.mu.Lock()
	defer st.mu.Unlock()
	fs.relinkLocked(n, st)
}

func (fs *FS) relinkLocked(n vfs.NodeID, st *staging) {
	if st.used == 0 {
		return
	}
	fs.costM.Syscall() // the relink ioctl
	dev := fs.inner.Device()
	oldSize := st.base
	headOff := oldSize % blockSize
	remaining := st.used
	pos := oldSize
	first := true
	for _, r := range st.runs {
		if remaining == 0 {
			fs.inner.FreeBlocks(r.start, r.n)
			continue
		}
		runStart, runBlocks := r.start, r.n
		srcOff := runStart * blockSize
		if first && headOff != 0 {
			// Copy the unaligned head into the file's existing tail block.
			head := blockSize - headOff
			if head > remaining {
				head = remaining
			}
			buf := make([]byte, head)
			dev.ReadAt(srcOff+headOff, buf)
			fs.inner.WriteAt(n, buf, pos)
			pos += head
			remaining -= head
			// The head consumed staging block 0; the rest of the run is
			// block-aligned and can be attached directly.
			fs.inner.FreeBlocks(runStart, 1)
			runStart++
			runBlocks--
		}
		first = false
		if runBlocks > 0 && remaining > 0 {
			attach := (remaining + blockSize - 1) / blockSize
			if attach > runBlocks {
				attach = runBlocks
			}
			fs.inner.AppendRun(n, runStart, attach)
			take := attach * blockSize
			if take > remaining {
				take = remaining
			}
			pos += take
			remaining -= take
			if attach < runBlocks {
				fs.inner.FreeBlocks(runStart+attach, runBlocks-attach)
			}
		} else if runBlocks > 0 {
			fs.inner.FreeBlocks(runStart, runBlocks)
		}
	}
	fs.inner.SetSize(n, st.base+st.used)
	st.runs = nil
	st.used = 0
	st.avail = 0
	st.base = 0
}

// stageAppend copies p into staging blocks with user-space NVMM writes.
func (fs *FS) stageAppend(n vfs.NodeID, p []byte) (int, error) {
	st := fs.stagingOf(n)
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.used == 0 {
		attr, err := fs.inner.GetAttr(n)
		if err != nil {
			return 0, err
		}
		st.base = attr.Size
	}
	dev := fs.inner.Device()
	headOff := st.base % blockSize
	written := 0
	for written < len(p) {
		if st.used >= st.avail {
			// Grab a fresh staging region (occasionally hits the kernel to
			// preallocate, amortized over the region size).
			fs.costM.Syscall()
			start, err := fs.inner.AllocBlocks(stagingRunBlocks, uint64(n))
			if err != nil {
				fs.relinkLocked(n, st)
				return written, err
			}
			st.runs = append(st.runs, stRun{start, stagingRunBlocks})
			add := uint64(stagingRunBlocks) * blockSize
			if len(st.runs) == 1 {
				add -= headOff // first block starts at the head offset
			}
			st.avail += add
		}
		// Locate the staging position for byte st.used.
		off := headOff + st.used
		runIdx := off / (stagingRunBlocks * blockSize)
		within := off % (stagingRunBlocks * blockSize)
		r := st.runs[runIdx]
		space := r.n*blockSize - within
		chunk := uint64(len(p) - written)
		if chunk > space {
			chunk = space
		}
		if chunk > st.avail-st.used {
			chunk = st.avail - st.used
		}
		dst := r.start*blockSize + within
		dev.NTStore(dst, p[written:written+int(chunk)])
		written += int(chunk)
		st.used += chunk
	}
	dev.Fence()
	return written, nil
}

// Read implements fsapi.Client (user-space data path).
func (c *Client) Read(fd fsapi.FD, p []byte) (int, error) {
	of, err := c.file(fd)
	if err != nil {
		return 0, err
	}
	if of.flags&fsapi.OWronly != 0 {
		return 0, fsapi.ErrWriteOnly
	}
	pos := of.pos.Load()
	n, err := c.pread(of, p, pos)
	of.pos.Store(pos + uint64(n))
	if err == nil && n == 0 && len(p) > 0 {
		return 0, io.EOF
	}
	return n, err
}

// Pread implements fsapi.Client.
func (c *Client) Pread(fd fsapi.FD, p []byte, off uint64) (int, error) {
	of, err := c.file(fd)
	if err != nil {
		return 0, err
	}
	if of.flags&fsapi.OWronly != 0 {
		return 0, fsapi.ErrWriteOnly
	}
	n, err := c.pread(of, p, off)
	if err == nil && n == 0 && len(p) > 0 {
		return 0, io.EOF
	}
	return n, err
}

func (c *Client) pread(of *openFile, p []byte, off uint64) (int, error) {
	// Reads of files with pending staged appends first relink (SplitFS
	// tracks staged extents in its user-space mapping; flushing on read
	// keeps our model simple and costs one syscall, which only makes
	// SplitFS *faster* than reality in read-heavy phases... it does not:
	// it adds the relink cost; either way appends dominate its profile).
	st := c.fs.stagingOf(of.node)
	st.mu.Lock()
	pending := st.used > 0
	st.mu.Unlock()
	if pending {
		c.fs.relink(of.node)
	}
	return c.fs.inner.ReadAt(of.node, p, off)
}

// Write implements fsapi.Client: appends take the staging path; overwrites
// within the file go straight to NVMM in user space.
func (c *Client) Write(fd fsapi.FD, p []byte) (int, error) {
	of, err := c.file(fd)
	if err != nil {
		return 0, err
	}
	if of.flags&(fsapi.OWronly|fsapi.ORdwr) == 0 {
		return 0, fsapi.ErrReadOnly
	}
	if of.append {
		n, err := c.fs.stageAppend(of.node, p)
		of.pos.Store(c.fs.visibleSize(of.node))
		return n, err
	}
	pos := of.pos.Load()
	n, err := c.pwrite(of, p, pos)
	of.pos.Store(pos + uint64(n))
	return n, err
}

// Pwrite implements fsapi.Client.
func (c *Client) Pwrite(fd fsapi.FD, p []byte, off uint64) (int, error) {
	of, err := c.file(fd)
	if err != nil {
		return 0, err
	}
	if of.flags&(fsapi.OWronly|fsapi.ORdwr) == 0 {
		return 0, fsapi.ErrReadOnly
	}
	return c.pwrite(of, p, off)
}

func (c *Client) pwrite(of *openFile, p []byte, off uint64) (int, error) {
	size := c.fs.visibleSize(of.node)
	if off+uint64(len(p)) > size {
		// Growing writes behave like appends at the tail: relink staged
		// data first, then extend through the inner FS (one syscall).
		c.fs.relink(of.node)
		c.fs.costM.Syscall()
		return c.fs.inner.WriteAt(of.node, p, off)
	}
	// In-place overwrite: pure user-space NVMM write.
	return c.fs.inner.WriteAt(of.node, p, off)
}

// Seek implements fsapi.Client.
func (c *Client) Seek(fd fsapi.FD, off int64, whence int) (int64, error) {
	of, err := c.file(fd)
	if err != nil {
		return 0, err
	}
	var base int64
	switch whence {
	case fsapi.SeekSet:
	case fsapi.SeekCur:
		base = int64(of.pos.Load())
	case fsapi.SeekEnd:
		base = int64(c.fs.visibleSize(of.node))
	default:
		return 0, fsapi.ErrInval
	}
	np := base + off
	if np < 0 {
		return 0, fsapi.ErrInval
	}
	of.pos.Store(uint64(np))
	return np, nil
}

// Fsync implements fsapi.Client: relink + journal commit.
func (c *Client) Fsync(fd fsapi.FD) error {
	of, err := c.file(fd)
	if err != nil {
		return err
	}
	c.fs.relink(of.node)
	return c.meta.Fsync(of.metaFD)
}

// Ftruncate implements fsapi.Client.
func (c *Client) Ftruncate(fd fsapi.FD, size uint64) error {
	of, err := c.file(fd)
	if err != nil {
		return err
	}
	c.fs.relink(of.node)
	return c.meta.Ftruncate(of.metaFD, size)
}

// Fallocate implements fsapi.Client.
func (c *Client) Fallocate(fd fsapi.FD, size uint64) error {
	of, err := c.file(fd)
	if err != nil {
		return err
	}
	return c.meta.Fallocate(of.metaFD, size)
}

// Fstat implements fsapi.Client.
func (c *Client) Fstat(fd fsapi.FD) (fsapi.Stat, error) {
	of, err := c.file(fd)
	if err != nil {
		return fsapi.Stat{}, err
	}
	st, err := c.meta.Fstat(of.metaFD)
	if err != nil {
		return st, err
	}
	st.Size = c.fs.visibleSize(of.node)
	return st, nil
}

// Stat implements fsapi.Client.
func (c *Client) Stat(path string) (fsapi.Stat, error) {
	st, err := c.meta.Stat(path)
	if err != nil {
		return st, err
	}
	st.Size = c.fs.visibleSize(vfs.NodeID(st.Ino))
	return st, nil
}

// Lstat implements fsapi.Client.
func (c *Client) Lstat(path string) (fsapi.Stat, error) { return c.meta.Lstat(path) }

// Unlink implements fsapi.Client: drop staged data, then kernel path.
func (c *Client) Unlink(path string) error {
	if st, err := c.meta.Lstat(path); err == nil {
		c.fs.dropStaging(vfs.NodeID(st.Ino))
	}
	return c.meta.Unlink(path)
}

func (fs *FS) dropStaging(n vfs.NodeID) {
	st := fs.stagingOf(n)
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, r := range st.runs {
		fs.inner.FreeBlocks(r.start, r.n)
	}
	st.runs = nil
	st.used = 0
	st.avail = 0
}

// Remaining metadata operations forward to the kernel path.

// Mkdir implements fsapi.Client.
func (c *Client) Mkdir(path string, perm uint32) error { return c.meta.Mkdir(path, perm) }

// Rmdir implements fsapi.Client.
func (c *Client) Rmdir(path string) error { return c.meta.Rmdir(path) }

// Rename implements fsapi.Client.
func (c *Client) Rename(oldPath, newPath string) error {
	if st, err := c.meta.Lstat(oldPath); err == nil {
		c.fs.relink(vfs.NodeID(st.Ino))
	}
	return c.meta.Rename(oldPath, newPath)
}

// Symlink implements fsapi.Client.
func (c *Client) Symlink(target, linkPath string) error { return c.meta.Symlink(target, linkPath) }

// Link implements fsapi.Client.
func (c *Client) Link(oldPath, newPath string) error { return c.meta.Link(oldPath, newPath) }

// Readlink implements fsapi.Client.
func (c *Client) Readlink(path string) (string, error) { return c.meta.Readlink(path) }

// ReadDir implements fsapi.Client.
func (c *Client) ReadDir(path string) ([]fsapi.DirEntry, error) { return c.meta.ReadDir(path) }

// Chmod implements fsapi.Client.
func (c *Client) Chmod(path string, perm uint32) error { return c.meta.Chmod(path, perm) }

// Utimes implements fsapi.Client.
func (c *Client) Utimes(path string, atime, mtime int64) error {
	return c.meta.Utimes(path, atime, mtime)
}

// Detach implements fsapi.Client.
func (c *Client) Detach() error {
	c.files.Range(func(k, v any) bool {
		of := v.(*openFile)
		c.fs.relink(of.node)
		c.files.Delete(k)
		return true
	})
	return c.meta.Detach()
}
