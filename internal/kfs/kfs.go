// Package kfs implements design-faithful reimplementations of the kernel
// file systems the paper compares against — NOVA, PMFS and EXT4-DAX — as
// vfs.InnerFS backends. Each keeps the structural property the paper blames
// for its behaviour:
//
//   - NOVA: per-inode metadata logs (scalable journaling) and a segmented,
//     per-core-style block allocator; DRAM indexes for directories.
//   - PMFS: a single global undo journal (every metadata operation
//     serializes on it), unsorted linear directories (O(n) lookup/unlink),
//     and a serial one-segment block allocator.
//   - EXT4-DAX: a jbd2-style journal with one running transaction under a
//     global lock and block-sized journal records (heavier per-operation
//     work, batched fences), extents optimized for large files, and a
//     serial allocator.
//
// All three do their persistent work for real against the emulated NVMM
// (journal records, inode writes, dentry records, data copies with
// flush/fence), so their relative costs and contention points arise from
// mechanism, not from injected sleeps. They run under internal/vfs, which
// adds the syscall cost and the kernel locking discipline.
//
// Deviation: baseline crash recovery is not implemented (the paper does not
// evaluate it); their journaling exists to reproduce its runtime cost.
package kfs

import (
	"sync"
	"sync/atomic"
	"time"

	"simurgh/internal/alloc"
	"simurgh/internal/fsapi"
	"simurgh/internal/pmem"
	"simurgh/internal/vfs"
)

// Kind selects which baseline design an FS instance follows.
type Kind int

const (
	// KindNova is a NOVA-like log-structured NVMM file system.
	KindNova Kind = iota
	// KindPMFS is a PMFS-like undo-journaling file system.
	KindPMFS
	// KindExtDax is an EXT4-DAX-like journaling file system.
	KindExtDax
)

func (k Kind) String() string {
	switch k {
	case KindNova:
		return "nova"
	case KindPMFS:
		return "pmfs"
	default:
		return "ext4-dax"
	}
}

// BlockSize is the data block size.
const BlockSize = 4096

const (
	inodeSlot    = 128 // persistent inode record size
	dentryRecord = 64  // persistent dentry record size
)

type run struct{ start, n uint64 }

type dent struct {
	name string
	node vfs.NodeID
}

// node is the DRAM inode (kernel in-memory inode + page-cache-less DAX
// indexes). Persistent counterparts are written through the journal.
type node struct {
	mu   sync.Mutex
	attr vfs.Attr
	// Directories: one of the two indexes depending on Kind.
	dirMap  map[string]vfs.NodeID // NOVA, EXT4 (htree-like)
	dirList []dent                // PMFS (unsorted linear)
	// Regular files.
	extents []run
	// Symlinks.
	target string
	// Per-directory persistent dentry area (chunked).
	dentArea run
	dentOff  uint64
}

// pathCosts are the CPU path lengths (cycles) of each design's in-kernel
// code, charged per operation when software-cost accounting is enabled
// (bench runs). They calibrate the single-thread base costs the paper
// measures: EXT4's jbd2 handle management and block-group machinery make it
// the most expensive metadata path; PMFS and NOVA are lean NVMM designs;
// data-path overheads are smaller and similar. Simurgh charges only the
// jmpp delta (its path length IS this package's Go code running in user
// space).
type pathCosts struct {
	meta   uint64 // create/unlink/rename/mkdir/...
	lookup uint64 // directory lookup miss
	data   uint64 // read/write entry overhead
	alloc  uint64 // fallocate / block allocation ioctl path
}

var costsByKind = map[Kind]pathCosts{
	KindNova:   {meta: 1200, lookup: 200, data: 300, alloc: 800},
	KindPMFS:   {meta: 1000, lookup: 250, data: 300, alloc: 400},
	KindExtDax: {meta: 9000, lookup: 400, data: 500, alloc: 9000},
}

// FS is one baseline file system instance.
type FS struct {
	kind  Kind
	dev   *pmem.Device
	ba    *alloc.BlockAlloc
	j     journal
	costs pathCosts
	spin  func(cycles uint64) // nil = no software-cost accounting
	nodes []*node
	nmu   sync.RWMutex
	next  atomic.Uint64

	inodeBase uint64 // device offset of the persistent inode table
	inodeCap  uint64

	freeIDs struct {
		mu  sync.Mutex
		ids []vfs.NodeID
	}
}

// New creates a baseline file system of the given kind over dev.
func New(kind Kind, dev *pmem.Device) *FS {
	nBlocks := dev.Size() / BlockSize
	inodeCap := nBlocks/4 + 1024
	inodeBytes := inodeCap * inodeSlot
	inodeBlocks := (inodeBytes + BlockSize - 1) / BlockSize
	journalBlocks := uint64(1024) // 4 MiB journal area
	firstData := 1 + inodeBlocks + journalBlocks

	segs := 1 // PMFS/EXT4: serial allocator
	if kind == KindNova {
		segs = 2 * numCPU()
	}
	fs := &FS{
		kind:      kind,
		dev:       dev,
		ba:        alloc.NewBlockAlloc(dev, BlockSize, firstData, nBlocks-firstData, segs),
		costs:     costsByKind[kind],
		inodeBase: BlockSize,
		inodeCap:  inodeCap,
		nodes:     make([]*node, 1, 4096),
	}
	journalBase := (1 + inodeBlocks) * BlockSize
	switch kind {
	case KindNova:
		fs.j = newNovaLog(dev, fs.ba)
	case KindPMFS:
		fs.j = newUndoJournal(dev, journalBase, journalBlocks*BlockSize)
	default:
		fs.j = newJBD2(dev, journalBase, journalBlocks*BlockSize)
	}
	// Root directory.
	root := fs.allocNode(fsapi.ModeDir|0o755, 0, 0)
	fs.node(root).attr.Nlink = 2
	return fs
}

func numCPU() int {
	n := defaultNumCPU()
	if n < 1 {
		return 1
	}
	return n
}

// Name implements vfs.InnerFS.
func (fs *FS) Name() string { return fs.kind.String() }

// Root implements vfs.InnerFS.
func (fs *FS) Root() vfs.NodeID { return 1 }

// Kind reports which baseline design this instance follows.
func (fs *FS) Kind() Kind { return fs.kind }

// EnableSoftwareCosts turns on per-operation CPU path-length accounting
// (spin is typically cost.Spin). Benchmarks enable it; unit tests run lean.
func (fs *FS) EnableSoftwareCosts(spin func(cycles uint64)) { fs.spin = spin }

func (fs *FS) chargeMeta() {
	if fs.spin != nil {
		fs.spin(fs.costs.meta)
	}
}

func (fs *FS) chargeLookup() {
	if fs.spin != nil {
		fs.spin(fs.costs.lookup)
	}
}

func (fs *FS) chargeData() {
	if fs.spin != nil {
		fs.spin(fs.costs.data)
	}
}

func (fs *FS) chargeAlloc() {
	if fs.spin != nil {
		fs.spin(fs.costs.alloc)
	}
}

// Device returns the underlying device.
func (fs *FS) Device() *pmem.Device { return fs.dev }

func (fs *FS) node(id vfs.NodeID) *node {
	fs.nmu.RLock()
	defer fs.nmu.RUnlock()
	if id == 0 || uint64(id) >= uint64(len(fs.nodes)) || fs.nodes[id] == nil {
		return nil
	}
	return fs.nodes[id]
}

// allocNode creates a DRAM inode and persists its initial record.
func (fs *FS) allocNode(mode, uid, gid uint32) vfs.NodeID {
	var id vfs.NodeID
	fs.freeIDs.mu.Lock()
	if n := len(fs.freeIDs.ids); n > 0 {
		id = fs.freeIDs.ids[n-1]
		fs.freeIDs.ids = fs.freeIDs.ids[:n-1]
	}
	fs.freeIDs.mu.Unlock()
	now := time.Now().UnixNano()
	nd := &node{attr: vfs.Attr{Mode: mode, UID: uid, GID: gid, Nlink: 1,
		Atime: now, Mtime: now, Ctime: now}}
	if fsapi.IsDir(mode) {
		if fs.kind == KindPMFS {
			nd.dirList = make([]dent, 0, 8)
		} else {
			nd.dirMap = make(map[string]vfs.NodeID, 8)
		}
	}
	fs.nmu.Lock()
	if id == 0 {
		fs.nodes = append(fs.nodes, nd)
		id = vfs.NodeID(len(fs.nodes) - 1)
	} else {
		fs.nodes[id] = nd
	}
	fs.nmu.Unlock()
	fs.persistInode(id)
	return id
}

func (fs *FS) freeNode(id vfs.NodeID) {
	fs.nmu.Lock()
	fs.nodes[id] = nil
	fs.nmu.Unlock()
	fs.freeIDs.mu.Lock()
	fs.freeIDs.ids = append(fs.freeIDs.ids, id)
	fs.freeIDs.mu.Unlock()
}

// persistInode writes the inode's persistent record through the journal
// discipline of the kind.
func (fs *FS) persistInode(id vfs.NodeID) {
	off := fs.inodeBase + (uint64(id)%fs.inodeCap)*inodeSlot
	fs.j.logMeta(id, inodeSlot)
	// In-place inode write (NOVA's log entry doubles as the record, but it
	// still maintains its inode table for lookups).
	var rec [inodeSlot]byte
	fs.dev.WriteAt(off, rec[:])
	fs.dev.Flush(off, inodeSlot)
	fs.j.orderPoint()
}

// persistDentry appends a dentry record to the directory's persistent area.
func (fs *FS) persistDentry(dir *node, dirID vfs.NodeID) {
	if dir.dentArea.n == 0 || dir.dentOff+dentryRecord > dir.dentArea.n*BlockSize {
		b, err := fs.ba.Alloc(1, uint64(dirID))
		if err != nil {
			return // out of space: skip persistence bookkeeping
		}
		dir.dentArea = run{start: b, n: 1}
		dir.dentOff = 0
	}
	off := dir.dentArea.start*BlockSize + dir.dentOff
	dir.dentOff += dentryRecord
	fs.j.logMeta(dirID, dentryRecord)
	var rec [dentryRecord]byte
	fs.dev.WriteAt(off, rec[:])
	fs.dev.Flush(off, dentryRecord)
	fs.j.orderPoint()
}

// Lookup implements vfs.InnerFS.
func (fs *FS) Lookup(dir vfs.NodeID, name string) (vfs.NodeID, error) {
	fs.chargeLookup()
	d := fs.node(dir)
	if d == nil {
		return 0, fsapi.ErrNotExist
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if !fsapi.IsDir(d.attr.Mode) {
		return 0, fsapi.ErrNotDir
	}
	if fs.kind == KindPMFS {
		// Unsorted linear scan.
		for i := range d.dirList {
			if d.dirList[i].name == name {
				return d.dirList[i].node, nil
			}
		}
		return 0, fsapi.ErrNotExist
	}
	n, ok := d.dirMap[name]
	if !ok {
		return 0, fsapi.ErrNotExist
	}
	return n, nil
}

// GetAttr implements vfs.InnerFS.
func (fs *FS) GetAttr(id vfs.NodeID) (vfs.Attr, error) {
	n := fs.node(id)
	if n == nil {
		return vfs.Attr{}, fsapi.ErrNotExist
	}
	n.mu.Lock()
	a := n.attr
	n.mu.Unlock()
	return a, nil
}

// SetAttr implements vfs.InnerFS.
func (fs *FS) SetAttr(id vfs.NodeID, perm *uint32, atime, mtime *int64) error {
	n := fs.node(id)
	if n == nil {
		return fsapi.ErrNotExist
	}
	n.mu.Lock()
	if perm != nil {
		n.attr.Mode = n.attr.Mode&fsapi.ModeTypeMask | *perm&fsapi.ModePermMask
	}
	if atime != nil {
		n.attr.Atime = *atime
	}
	if mtime != nil {
		n.attr.Mtime = *mtime
	}
	n.attr.Ctime = time.Now().UnixNano()
	n.mu.Unlock()
	fs.persistInode(id)
	return nil
}

// dirInsert adds a name under the directory (caller holds VFS dir mutex,
// but the node mutex still guards against lookup racers).
func (fs *FS) dirInsert(dirID vfs.NodeID, name string, child vfs.NodeID) error {
	d := fs.node(dirID)
	if d == nil {
		return fsapi.ErrNotExist
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if !fsapi.IsDir(d.attr.Mode) {
		return fsapi.ErrNotDir
	}
	if fs.kind == KindPMFS {
		for i := range d.dirList {
			if d.dirList[i].name == name {
				return fsapi.ErrExist
			}
		}
		d.dirList = append(d.dirList, dent{name, child})
	} else {
		if _, ok := d.dirMap[name]; ok {
			return fsapi.ErrExist
		}
		d.dirMap[name] = child
	}
	d.attr.Mtime = time.Now().UnixNano()
	fs.persistDentry(d, dirID)
	return nil
}

// dirRemove removes a name, returning the child it mapped to.
func (fs *FS) dirRemove(dirID vfs.NodeID, name string) (vfs.NodeID, error) {
	d := fs.node(dirID)
	if d == nil {
		return 0, fsapi.ErrNotExist
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if fs.kind == KindPMFS {
		for i := range d.dirList {
			if d.dirList[i].name == name {
				child := d.dirList[i].node
				d.dirList = append(d.dirList[:i], d.dirList[i+1:]...)
				fs.persistDentry(d, dirID)
				return child, nil
			}
		}
		return 0, fsapi.ErrNotExist
	}
	child, ok := d.dirMap[name]
	if !ok {
		return 0, fsapi.ErrNotExist
	}
	delete(d.dirMap, name)
	fs.persistDentry(d, dirID)
	return child, nil
}

// Create implements vfs.InnerFS.
func (fs *FS) Create(dir vfs.NodeID, name string, mode, uid, gid uint32) (vfs.NodeID, error) {
	fs.chargeMeta()
	id := fs.allocNode(mode, uid, gid)
	if err := fs.dirInsert(dir, name, id); err != nil {
		fs.freeNode(id)
		return 0, err
	}
	fs.j.commitSmall()
	return id, nil
}

// Mkdir implements vfs.InnerFS.
func (fs *FS) Mkdir(dir vfs.NodeID, name string, mode, uid, gid uint32) (vfs.NodeID, error) {
	fs.chargeMeta()
	id := fs.allocNode(mode, uid, gid)
	fs.node(id).attr.Nlink = 2
	if err := fs.dirInsert(dir, name, id); err != nil {
		fs.freeNode(id)
		return 0, err
	}
	fs.j.commitSmall()
	return id, nil
}

// Symlink implements vfs.InnerFS.
func (fs *FS) Symlink(dir vfs.NodeID, name, target string, uid, gid uint32) (vfs.NodeID, error) {
	fs.chargeMeta()
	id := fs.allocNode(fsapi.ModeSymlink|0o777, uid, gid)
	n := fs.node(id)
	n.target = target
	n.attr.Size = uint64(len(target))
	if err := fs.dirInsert(dir, name, id); err != nil {
		fs.freeNode(id)
		return 0, err
	}
	fs.j.commitSmall()
	return id, nil
}

// Readlink implements vfs.InnerFS.
func (fs *FS) Readlink(id vfs.NodeID) (string, error) {
	n := fs.node(id)
	if n == nil {
		return "", fsapi.ErrNotExist
	}
	if !fsapi.IsSymlink(n.attr.Mode) {
		return "", fsapi.ErrInval
	}
	return n.target, nil
}

// Link implements vfs.InnerFS.
func (fs *FS) Link(dir vfs.NodeID, name string, target vfs.NodeID) error {
	fs.chargeMeta()
	t := fs.node(target)
	if t == nil {
		return fsapi.ErrNotExist
	}
	if err := fs.dirInsert(dir, name, target); err != nil {
		return err
	}
	t.mu.Lock()
	t.attr.Nlink++
	t.mu.Unlock()
	fs.persistInode(target)
	fs.j.commitSmall()
	return nil
}

// Unlink implements vfs.InnerFS.
func (fs *FS) Unlink(dir vfs.NodeID, name string) error {
	fs.chargeMeta()
	d := fs.node(dir)
	if d == nil {
		return fsapi.ErrNotExist
	}
	// Type check before removal.
	child, err := fs.Lookup(dir, name)
	if err != nil {
		return err
	}
	cn := fs.node(child)
	if cn == nil {
		return fsapi.ErrNotExist
	}
	if fsapi.IsDir(cn.attr.Mode) {
		return fsapi.ErrIsDir
	}
	if _, err := fs.dirRemove(dir, name); err != nil {
		return err
	}
	cn.mu.Lock()
	cn.attr.Nlink--
	last := cn.attr.Nlink == 0
	cn.mu.Unlock()
	fs.persistInode(child)
	if last {
		fs.releaseData(cn)
		fs.freeNode(child)
	}
	fs.j.commitSmall()
	return nil
}

// Rmdir implements vfs.InnerFS.
func (fs *FS) Rmdir(dir vfs.NodeID, name string) error {
	fs.chargeMeta()
	child, err := fs.Lookup(dir, name)
	if err != nil {
		return err
	}
	cn := fs.node(child)
	if cn == nil {
		return fsapi.ErrNotExist
	}
	cn.mu.Lock()
	if !fsapi.IsDir(cn.attr.Mode) {
		cn.mu.Unlock()
		return fsapi.ErrNotDir
	}
	empty := len(cn.dirMap) == 0 && len(cn.dirList) == 0
	cn.mu.Unlock()
	if !empty {
		return fsapi.ErrNotEmpty
	}
	if _, err := fs.dirRemove(dir, name); err != nil {
		return err
	}
	if cn.dentArea.n > 0 {
		fs.ba.Free(cn.dentArea.start, cn.dentArea.n)
	}
	fs.freeNode(child)
	fs.j.commitSmall()
	return nil
}

// Rename implements vfs.InnerFS.
func (fs *FS) Rename(odir vfs.NodeID, oname string, ndir vfs.NodeID, nname string) error {
	fs.chargeMeta()
	child, err := fs.Lookup(odir, oname)
	if err != nil {
		return err
	}
	// Replace an existing destination (POSIX).
	if existing, err := fs.Lookup(ndir, nname); err == nil {
		en := fs.node(existing)
		cn := fs.node(child)
		if en != nil && cn != nil {
			eDir, cDir := fsapi.IsDir(en.attr.Mode), fsapi.IsDir(cn.attr.Mode)
			switch {
			case eDir && !cDir:
				return fsapi.ErrIsDir
			case !eDir && cDir:
				return fsapi.ErrNotDir
			case eDir:
				en.mu.Lock()
				empty := len(en.dirMap) == 0 && len(en.dirList) == 0
				en.mu.Unlock()
				if !empty {
					return fsapi.ErrNotEmpty
				}
				fs.dirRemove(ndir, nname)
				fs.freeNode(existing)
			default:
				fs.dirRemove(ndir, nname)
				en.mu.Lock()
				en.attr.Nlink--
				last := en.attr.Nlink == 0
				en.mu.Unlock()
				if last {
					fs.releaseData(en)
					fs.freeNode(existing)
				}
			}
		}
	}
	if _, err := fs.dirRemove(odir, oname); err != nil {
		return err
	}
	if err := fs.dirInsert(ndir, nname, child); err != nil {
		// Roll back.
		fs.dirInsert(odir, oname, child)
		return err
	}
	fs.j.commitSmall()
	return nil
}

// ReadDir implements vfs.InnerFS.
func (fs *FS) ReadDir(dir vfs.NodeID) ([]fsapi.DirEntry, error) {
	d := fs.node(dir)
	if d == nil {
		return nil, fsapi.ErrNotExist
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []fsapi.DirEntry
	add := func(name string, id vfs.NodeID) {
		n := fs.node(id)
		if n == nil {
			return
		}
		out = append(out, fsapi.DirEntry{Name: name, Ino: uint64(id), Mode: n.attr.Mode})
	}
	if fs.kind == KindPMFS {
		for i := range d.dirList {
			add(d.dirList[i].name, d.dirList[i].node)
		}
	} else {
		for name, id := range d.dirMap {
			add(name, id)
		}
	}
	return out, nil
}

// releaseData frees a file's data blocks.
func (fs *FS) releaseData(n *node) {
	n.mu.Lock()
	exts := n.extents
	n.extents = nil
	n.attr.Size = 0
	n.mu.Unlock()
	for _, r := range exts {
		fs.ba.Free(r.start, r.n)
	}
}

// ensureCapacity grows the extent list to cover size bytes.
// Caller must hold n.mu.
func (fs *FS) ensureCapacity(n *node, id vfs.NodeID, size uint64) error {
	var have uint64
	for _, r := range n.extents {
		have += r.n
	}
	need := (size + BlockSize - 1) / BlockSize
	for have < need {
		want := need - have
		var start uint64
		var err error
		cnt := want
		for {
			start, err = fs.ba.Alloc(cnt, uint64(id))
			if err == nil {
				break
			}
			if cnt == 1 {
				return fsapi.ErrNoSpace
			}
			cnt /= 2
		}
		// Allocation is a metadata mutation: journaled (bitmap/extent tree).
		fs.j.logMeta(id, 32)
		if len(n.extents) > 0 {
			last := &n.extents[len(n.extents)-1]
			if last.start+last.n == start {
				last.n += cnt
				have += cnt
				continue
			}
		}
		n.extents = append(n.extents, run{start, cnt})
		have += cnt
	}
	return nil
}

// extentFor maps a logical block to (physical block, run remainder).
func (n *node) extentFor(lb uint64) (uint64, uint64, bool) {
	var cum uint64
	for _, r := range n.extents {
		if lb < cum+r.n {
			w := lb - cum
			return r.start + w, r.n - w, true
		}
		cum += r.n
	}
	return 0, 0, false
}

// WriteAt implements vfs.InnerFS: a DAX write — copy to NVMM, flush the
// written lines, fence, then journal the inode-size update.
func (fs *FS) WriteAt(id vfs.NodeID, p []byte, off uint64) (int, error) {
	fs.chargeData()
	n := fs.node(id)
	if n == nil {
		return 0, fsapi.ErrNotExist
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if err := fs.ensureCapacity(n, id, off+uint64(len(p))); err != nil {
		return 0, err
	}
	written := 0
	for written < len(p) {
		pos := off + uint64(written)
		phys, rem, ok := n.extentFor(pos / BlockSize)
		if !ok {
			return written, fsapi.ErrNoSpace
		}
		within := pos % BlockSize
		avail := rem*BlockSize - within
		chunk := uint64(len(p) - written)
		if chunk > avail {
			chunk = avail
		}
		dst := phys*BlockSize + within
		fs.dev.WriteAt(dst, p[written:written+int(chunk)])
		fs.dev.Flush(dst, chunk)
		written += int(chunk)
	}
	fs.dev.Fence()
	if end := off + uint64(len(p)); end > n.attr.Size {
		n.attr.Size = end
		fs.j.logMeta(id, 16)
		fs.j.orderPoint()
	}
	n.attr.Mtime = time.Now().UnixNano()
	return written, nil
}

// ReadAt implements vfs.InnerFS.
func (fs *FS) ReadAt(id vfs.NodeID, p []byte, off uint64) (int, error) {
	fs.chargeData()
	n := fs.node(id)
	if n == nil {
		return 0, fsapi.ErrNotExist
	}
	n.mu.Lock()
	size := n.attr.Size
	// Copy the extent slice header so reads don't hold the node mutex
	// while copying data (the VFS rwsem already excludes writers).
	exts := n.extents
	n.mu.Unlock()
	if off >= size {
		return 0, nil
	}
	if off+uint64(len(p)) > size {
		p = p[:size-off]
	}
	tmp := node{extents: exts}
	read := 0
	for read < len(p) {
		pos := off + uint64(read)
		phys, rem, ok := tmp.extentFor(pos / BlockSize)
		if !ok {
			for i := read; i < len(p); i++ {
				p[i] = 0
			}
			read = len(p)
			break
		}
		within := pos % BlockSize
		avail := rem*BlockSize - within
		chunk := uint64(len(p) - read)
		if chunk > avail {
			chunk = avail
		}
		fs.dev.ReadAt(phys*BlockSize+within, p[read:read+int(chunk)])
		read += int(chunk)
	}
	return read, nil
}

// Truncate implements vfs.InnerFS.
func (fs *FS) Truncate(id vfs.NodeID, size uint64) error {
	fs.chargeMeta()
	n := fs.node(id)
	if n == nil {
		return fsapi.ErrNotExist
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if size > n.attr.Size {
		if err := fs.ensureCapacity(n, id, size); err != nil {
			return err
		}
	} else {
		keep := (size + BlockSize - 1) / BlockSize
		var cum uint64
		var kept []run
		for _, r := range n.extents {
			switch {
			case cum+r.n <= keep:
				kept = append(kept, r)
			case cum >= keep:
				fs.ba.Free(r.start, r.n)
			default:
				h := keep - cum
				kept = append(kept, run{r.start, h})
				fs.ba.Free(r.start+h, r.n-h)
			}
			cum += r.n
		}
		n.extents = kept
	}
	n.attr.Size = size
	fs.j.logMeta(id, 16)
	fs.j.orderPoint()
	return nil
}

// Fallocate implements vfs.InnerFS.
func (fs *FS) Fallocate(id vfs.NodeID, size uint64) error {
	fs.chargeAlloc()
	n := fs.node(id)
	if n == nil {
		return fsapi.ErrNotExist
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if err := fs.ensureCapacity(n, id, size); err != nil {
		return err
	}
	if size > n.attr.Size {
		n.attr.Size = size
		fs.j.logMeta(id, 16)
		fs.j.orderPoint()
	}
	return nil
}

// Fsync implements vfs.InnerFS: force the journal durable.
func (fs *FS) Fsync(id vfs.NodeID) error {
	fs.j.commit()
	fs.dev.Fence()
	return nil
}

// The following helpers exist for SplitFS, which allocates staging regions
// and relinks them into files without copying.

// AllocBlocks hands out a contiguous run of data blocks (journaled as a
// bitmap/extent-tree update, like any allocation).
func (fs *FS) AllocBlocks(n uint64, hint uint64) (uint64, error) {
	start, err := fs.ba.Alloc(n, hint)
	if err != nil {
		return 0, fsapi.ErrNoSpace
	}
	fs.j.logMeta(0, 32)
	return start, nil
}

// FreeBlocks returns a run of data blocks.
func (fs *FS) FreeBlocks(start, n uint64) { fs.ba.Free(start, n) }

// AppendRun attaches an already-written run of blocks to the end of a
// file's extent list (the relink fast path: no data copy).
func (fs *FS) AppendRun(id vfs.NodeID, start, cnt uint64) error {
	n := fs.node(id)
	if n == nil {
		return fsapi.ErrNotExist
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if len(n.extents) > 0 {
		last := &n.extents[len(n.extents)-1]
		if last.start+last.n == start {
			last.n += cnt
			fs.j.logMeta(id, 32)
			fs.j.orderPoint()
			return nil
		}
	}
	n.extents = append(n.extents, run{start, cnt})
	fs.j.logMeta(id, 32)
	fs.j.orderPoint()
	return nil
}

// SetSize updates a file's size (journaled).
func (fs *FS) SetSize(id vfs.NodeID, size uint64) error {
	n := fs.node(id)
	if n == nil {
		return fsapi.ErrNotExist
	}
	n.mu.Lock()
	n.attr.Size = size
	n.mu.Unlock()
	fs.j.logMeta(id, 16)
	fs.j.orderPoint()
	return nil
}
