package kfs

import (
	"runtime"
	"sync"

	"simurgh/internal/alloc"
	"simurgh/internal/pmem"
	"simurgh/internal/vfs"
)

// defaultNumCPU is indirected for tests.
var defaultNumCPU = runtime.NumCPU

// journal abstracts the three metadata-persistence disciplines. All three
// do real NVMM writes so their costs are mechanical, not injected.
type journal interface {
	// logMeta records one metadata mutation of roughly `bytes` payload for
	// the given inode.
	logMeta(id vfs.NodeID, bytes int)
	// orderPoint is where the design requires an ordering fence right after
	// a record (undo logging needs the old value durable before the
	// in-place write; NOVA needs the log entry durable before it counts).
	orderPoint()
	// commitSmall ends a small metadata transaction (create/unlink/...).
	commitSmall()
	// commit forces everything durable (fsync).
	commit()
}

// ---------------------------------------------------------------------------
// NOVA: per-inode logs. Each inode appends fixed-size log entries to its own
// log pages; only that inode's log lock is taken, so independent inodes
// never serialize. This is why NOVA scales for private-directory workloads.

type novaLog struct {
	dev *pmem.Device
	ba  *alloc.BlockAlloc
	mu  sync.Mutex
	per map[vfs.NodeID]*inodeLog
}

type inodeLog struct {
	mu   sync.Mutex
	page uint64 // current log page (device offset)
	off  uint64
}

const novaEntry = 64

func newNovaLog(dev *pmem.Device, ba *alloc.BlockAlloc) *novaLog {
	return &novaLog{dev: dev, ba: ba, per: make(map[vfs.NodeID]*inodeLog)}
}

func (j *novaLog) logOf(id vfs.NodeID) *inodeLog {
	j.mu.Lock()
	l := j.per[id]
	if l == nil {
		l = &inodeLog{}
		j.per[id] = l
	}
	j.mu.Unlock()
	return l
}

func (j *novaLog) logMeta(id vfs.NodeID, bytes int) {
	l := j.logOf(id)
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.page == 0 || l.off+novaEntry > BlockSize {
		b, err := j.ba.Alloc(1, uint64(id))
		if err != nil {
			return
		}
		l.page = b * BlockSize
		l.off = 0
	}
	var entry [novaEntry]byte
	dst := l.page + l.off
	j.dev.WriteAt(dst, entry[:])
	j.dev.Flush(dst, novaEntry)
	j.dev.Fence() // log entry durable before the operation counts
	l.off += novaEntry
}

func (j *novaLog) orderPoint()  { j.dev.Fence() }
func (j *novaLog) commitSmall() {}
func (j *novaLog) commit()      { j.dev.Fence() }

// ---------------------------------------------------------------------------
// PMFS: one global undo journal. Every metadata mutation writes an undo
// record under a single lock and fences before the in-place update — the
// global serialization the paper calls out.

type undoJournal struct {
	dev  *pmem.Device
	mu   sync.Mutex
	base uint64
	size uint64
	off  uint64
}

const undoRecord = 64

func newUndoJournal(dev *pmem.Device, base, size uint64) *undoJournal {
	return &undoJournal{dev: dev, base: base, size: size}
}

func (j *undoJournal) logMeta(id vfs.NodeID, bytes int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.off+undoRecord > j.size {
		j.off = 0 // wrap (checkpointing elided)
	}
	var rec [undoRecord]byte
	dst := j.base + j.off
	j.dev.WriteAt(dst, rec[:])
	j.dev.Flush(dst, undoRecord)
	j.dev.Fence() // undo record must be durable before the in-place write
	j.off += undoRecord
}

func (j *undoJournal) orderPoint() { j.dev.Fence() }

func (j *undoJournal) commitSmall() {
	// Transaction end: invalidate the undo records (one more fenced write).
	j.mu.Lock()
	defer j.mu.Unlock()
	var rec [8]byte
	dst := j.base + j.off%j.size
	j.dev.WriteAt(dst, rec[:])
	j.dev.Flush(dst, 8)
	j.dev.Fence()
}

func (j *undoJournal) commit() { j.commitSmall() }

// ---------------------------------------------------------------------------
// EXT4 (jbd2): one running transaction under a global lock. Records are
// block-oriented (jbd2 journals whole metadata blocks, so the per-operation
// payload is large), flushed immediately but fenced in batches; commits
// write a commit record and fence.

type jbd2 struct {
	dev     *pmem.Device
	mu      sync.Mutex
	base    uint64
	size    uint64
	off     uint64
	pending int
}

const (
	jbd2Record    = 512 // journaled portion of a metadata block + tags
	jbd2BatchSize = 32  // records per implicit commit
)

func newJBD2(dev *pmem.Device, base, size uint64) *jbd2 {
	return &jbd2{dev: dev, base: base, size: size}
}

func (j *jbd2) logMeta(id vfs.NodeID, bytes int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.off+jbd2Record > j.size {
		j.off = 0
	}
	var rec [jbd2Record]byte
	dst := j.base + j.off
	j.dev.WriteAt(dst, rec[:])
	j.dev.Flush(dst, jbd2Record)
	j.off += jbd2Record
	j.pending++
	if j.pending >= jbd2BatchSize {
		j.commitLocked()
	}
}

func (j *jbd2) commitLocked() {
	var rec [64]byte // commit block header
	dst := j.base + j.off%j.size
	j.dev.WriteAt(dst, rec[:])
	j.dev.Flush(dst, 64)
	j.dev.Fence()
	j.pending = 0
}

func (j *jbd2) orderPoint() {} // jbd2 defers ordering to the commit

func (j *jbd2) commitSmall() {
	// Handle-close: cheap, the running transaction keeps batching.
}

func (j *jbd2) commit() {
	j.mu.Lock()
	j.commitLocked()
	j.mu.Unlock()
}
