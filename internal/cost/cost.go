// Package cost injects calibrated CPU-cycle costs into file-system calls.
//
// The paper's evaluation adds 46 cycles (the measured difference between a
// jmpp-protected call and a plain call) to every Simurgh operation, while
// kernel file systems pay a full syscall entry/exit (~400 cycles measured
// for geteuid on the Xeon Gold testbed, ~1200 cycles on gem5). We reproduce
// that accounting with a calibrated busy-spin: at init we measure how many
// iterations of a side-effect-free loop take one nanosecond and then convert
// cycles → nanoseconds at the paper's 2.5 GHz clock.
//
// The spin can be disabled (Model.Disabled) so unit tests are fast, and the
// injected cycle counts are also tallied so that breakdown experiments
// (Table 1, Fig 10) can report where virtual time went even when spinning is
// off.
package cost

import (
	"sync/atomic"
	"time"
)

// Paper-calibrated cycle costs (see §3.3 and §5.1).
const (
	// ClockGHz is the testbed clock (Xeon Gold 5215 @ 2.5 GHz).
	ClockGHz = 2.5
	// SyscallCycles is the measured round-trip of a trivial syscall on the
	// testbed (geteuid ≈ 400 cycles).
	SyscallCycles = 400
	// JmppExtraCycles is the measured difference between a protected call
	// (jmpp+pret) and a plain call+ret: 70 − 24 = 46 cycles.
	JmppExtraCycles = 46
)

// spinsPerNano is the calibrated number of spin-loop iterations per
// nanosecond. Calibrated once at package init.
var spinsPerNano float64

func init() {
	calibrate()
}

func calibrate() {
	const iters = 2_000_000
	start := time.Now()
	spinLoop(iters)
	elapsed := time.Since(start)
	if elapsed <= 0 {
		spinsPerNano = 1
		return
	}
	spinsPerNano = float64(iters) / float64(elapsed.Nanoseconds())
	if spinsPerNano <= 0 {
		spinsPerNano = 1
	}
}

//go:noinline
func spinLoop(n int) uint64 {
	var acc uint64
	for i := 0; i < n; i++ {
		acc = acc*6364136223846793005 + 1442695040888963407
	}
	return acc
}

// Model is a per-file-system cost model. The zero value charges nothing.
type Model struct {
	// SyscallEntry cycles charged on every kernel-crossing call.
	SyscallEntry uint64
	// ProtectedEntry cycles charged on every protected-function call.
	ProtectedEntry uint64
	// Disabled suppresses the busy-spin (costs are still tallied).
	Disabled bool

	charged atomic.Uint64 // total cycles charged
	calls   atomic.Uint64
}

// KernelModel returns the cost model for a kernel file system: a syscall per
// operation.
func KernelModel() *Model { return &Model{SyscallEntry: SyscallCycles} }

// SimurghModel returns the cost model for Simurgh: the jmpp/pret delta per
// operation.
func SimurghModel() *Model { return &Model{ProtectedEntry: JmppExtraCycles} }

// FreeModel returns a model that charges nothing (for raw-substrate
// measurements such as the max-bandwidth line in Fig 7i).
func FreeModel() *Model { return &Model{} }

// Syscall charges one kernel entry/exit. Safe on a nil model.
func (m *Model) Syscall() {
	if m == nil {
		return
	}
	m.charge(m.SyscallEntry)
}

// ProtectedCall charges one jmpp/pret round trip delta. Safe on a nil model.
func (m *Model) ProtectedCall() {
	if m == nil {
		return
	}
	m.charge(m.ProtectedEntry)
}

func (m *Model) charge(cycles uint64) {
	if m == nil || cycles == 0 {
		return
	}
	m.charged.Add(cycles)
	m.calls.Add(1)
	if !m.Disabled {
		Spin(cycles)
	}
}

// ChargedCycles returns the total cycles charged so far.
func (m *Model) ChargedCycles() uint64 {
	if m == nil {
		return 0
	}
	return m.charged.Load()
}

// Calls returns the number of charged calls.
func (m *Model) Calls() uint64 {
	if m == nil {
		return 0
	}
	return m.calls.Load()
}

// Reset zeroes the tallies.
func (m *Model) Reset() {
	if m == nil {
		return
	}
	m.charged.Store(0)
	m.calls.Store(0)
}

// SpinNs busy-waits for approximately the given number of nanoseconds.
func SpinNs(ns uint64) {
	n := int(float64(ns) * spinsPerNano)
	if n <= 0 {
		n = 1
	}
	spinLoop(n)
}

// Spin busy-waits for approximately the given number of CPU cycles at the
// paper's 2.5 GHz clock.
func Spin(cycles uint64) {
	ns := float64(cycles) / ClockGHz
	n := int(ns * spinsPerNano)
	if n <= 0 {
		n = 1
	}
	spinLoop(n)
}

// CyclesToDuration converts a cycle count to wall time at the paper clock.
func CyclesToDuration(cycles uint64) time.Duration {
	return time.Duration(float64(cycles) / ClockGHz)
}
