package cost

import (
	"testing"
	"time"
)

func TestPaperConstants(t *testing.T) {
	if SyscallCycles != 400 {
		t.Fatalf("SyscallCycles = %d", SyscallCycles)
	}
	if JmppExtraCycles != 46 {
		t.Fatalf("JmppExtraCycles = %d (paper: 70-24)", JmppExtraCycles)
	}
}

func TestModelsChargeCorrectAmounts(t *testing.T) {
	k := KernelModel()
	k.Disabled = true
	for i := 0; i < 10; i++ {
		k.Syscall()
	}
	if k.ChargedCycles() != 10*SyscallCycles {
		t.Fatalf("kernel charged %d", k.ChargedCycles())
	}
	if k.Calls() != 10 {
		t.Fatalf("calls = %d", k.Calls())
	}
	s := SimurghModel()
	s.Disabled = true
	s.ProtectedCall()
	if s.ChargedCycles() != JmppExtraCycles {
		t.Fatalf("simurgh charged %d", s.ChargedCycles())
	}
	k.Reset()
	if k.ChargedCycles() != 0 || k.Calls() != 0 {
		t.Fatal("reset failed")
	}
}

func TestNilModelSafe(t *testing.T) {
	var m *Model
	m.Syscall()
	m.ProtectedCall()
	if m.ChargedCycles() != 0 || m.Calls() != 0 {
		t.Fatal("nil model accounted something")
	}
	m.Reset()
}

func TestFreeModelChargesNothing(t *testing.T) {
	f := FreeModel()
	f.Syscall()
	f.ProtectedCall()
	if f.ChargedCycles() != 0 {
		t.Fatalf("free model charged %d", f.ChargedCycles())
	}
}

func TestSpinTakesRoughlyRightTime(t *testing.T) {
	// 250k cycles at 2.5 GHz = 100 µs; allow generous slack for CI noise.
	start := time.Now()
	Spin(250_000)
	got := time.Since(start)
	if got < 20*time.Microsecond {
		t.Fatalf("Spin(250k cycles) returned too fast: %v", got)
	}
	if got > 10*time.Millisecond {
		t.Fatalf("Spin(250k cycles) took too long: %v", got)
	}
}

func TestSpinNs(t *testing.T) {
	start := time.Now()
	SpinNs(100_000) // 100 µs
	got := time.Since(start)
	if got < 20*time.Microsecond || got > 10*time.Millisecond {
		t.Fatalf("SpinNs(100µs) took %v", got)
	}
}

func TestCyclesToDuration(t *testing.T) {
	if d := CyclesToDuration(2500); d != time.Microsecond {
		t.Fatalf("2500 cycles @ 2.5GHz = %v, want 1µs", d)
	}
}
