package corpus

import (
	"bytes"
	"testing"

	"simurgh/internal/core"
	"simurgh/internal/fsapi"
	"simurgh/internal/pmem"
)

func newClient(t *testing.T) fsapi.Client {
	t.Helper()
	dev := pmem.New(256 << 20)
	fs, err := core.Format(dev, fsapi.Root, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c, _ := fs.Attach(fsapi.Root)
	return c
}

func TestGenerateIsDeterministic(t *testing.T) {
	spec := Spec{Depth: 2, Fanout: 2, FilesPerDir: 3, MeanFileSize: 1000, Seed: 5}
	c1 := newClient(t)
	c1.Mkdir("/a", 0o755)
	st1, err := Generate(c1, "/a", spec)
	if err != nil {
		t.Fatal(err)
	}
	c2 := newClient(t)
	c2.Mkdir("/a", 0o755)
	st2, err := Generate(c2, "/a", spec)
	if err != nil {
		t.Fatal(err)
	}
	if st1 != st2 {
		t.Fatalf("non-deterministic: %+v vs %+v", st1, st2)
	}
	// Identical trees file-by-file.
	var paths1 []string
	Walk(c1, "/a", func(p string, st fsapi.Stat) error {
		paths1 = append(paths1, p)
		return nil
	})
	i := 0
	Walk(c2, "/a", func(p string, st fsapi.Stat) error {
		if paths1[i] != p {
			t.Fatalf("walk order differs at %d: %s vs %s", i, paths1[i], p)
		}
		i++
		return nil
	})
}

func TestGenerateShape(t *testing.T) {
	spec := LinuxLike(1)
	c := newClient(t)
	c.Mkdir("/src", 0o755)
	st, err := Generate(c, "/src", spec)
	if err != nil {
		t.Fatal(err)
	}
	// Depth 3, fanout 6: 6+36+216 = 258 dirs; files = 259 dirs * 7.
	if st.Dirs != 258 {
		t.Fatalf("dirs = %d, want 258", st.Dirs)
	}
	if st.Files != 259*7 {
		t.Fatalf("files = %d, want %d", st.Files, 259*7)
	}
	if st.Bytes == 0 {
		t.Fatal("no bytes generated")
	}
	// Walk must visit exactly the generated files.
	var count uint64
	if err := Walk(c, "/src", func(string, fsapi.Stat) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if count != st.Files {
		t.Fatalf("walk found %d files, generated %d", count, st.Files)
	}
}

func TestFileContentDeterministic(t *testing.T) {
	a := FileContent(7, 500)
	b := FileContent(7, 500)
	if !bytes.Equal(a, b) {
		t.Fatal("FileContent not deterministic")
	}
	c := FileContent(8, 500)
	if bytes.Equal(a, c) {
		t.Fatal("different files have identical content")
	}
	if len(FileContent(0, 0)) != 0 {
		t.Fatal("zero-size content")
	}
	if len(FileContent(3, 3_000_000)) != 3_000_000 {
		t.Fatal("large content wrong size")
	}
}
