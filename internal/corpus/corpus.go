// Package corpus generates deterministic synthetic source trees standing in
// for the Linux kernel sources the paper uses in its tar, git and recovery
// benchmarks (linux-5.6.14: 672,940 files and 88,780 directories, mostly
// small text files). The generator reproduces the *shape* — deep
// directories, many small files with a long-tailed size distribution — at a
// configurable scale, with contents derived from the seed so runs are
// reproducible.
package corpus

import (
	"fmt"
	"math/rand"

	"simurgh/internal/fsapi"
)

// Spec describes a synthetic tree.
type Spec struct {
	// Depth is the directory nesting depth.
	Depth int
	// Fanout is the number of subdirectories per directory.
	Fanout int
	// FilesPerDir is the number of files in each directory.
	FilesPerDir int
	// MeanFileSize controls the size distribution (long-tailed around it).
	MeanFileSize int
	// Seed makes generation deterministic.
	Seed int64
}

// LinuxLike returns a scaled-down linux-source-like spec: scale=1 yields
// roughly 340 dirs / 2,400 files; each +1 on Depth multiplies by Fanout.
func LinuxLike(scale int) Spec {
	if scale < 1 {
		scale = 1
	}
	return Spec{
		Depth:        3,
		Fanout:       6,
		FilesPerDir:  7 * scale,
		MeanFileSize: 10 * 1024,
		Seed:         42,
	}
}

// Stats reports what was generated.
type Stats struct {
	Dirs  uint64
	Files uint64
	Bytes uint64
}

// pattern is a shared pseudo-random content pool files are sliced from.
var pattern = func() []byte {
	p := make([]byte, 1<<20)
	rng := rand.New(rand.NewSource(0xC0FFEE))
	rng.Read(p)
	return p
}()

// FileContent returns the deterministic content of the i-th generated file
// of the given size (a slice of the shared pattern at a seeded offset).
func FileContent(i int, size int) []byte {
	if size <= 0 {
		return nil
	}
	out := make([]byte, size)
	off := (i * 131071) % (len(pattern) - 1)
	for n := 0; n < size; {
		c := copy(out[n:], pattern[off:])
		n += c
		off = 0
	}
	return out
}

// sizeFor draws a long-tailed file size: mostly small, some 10x mean.
func sizeFor(rng *rand.Rand, mean int) int {
	f := rng.ExpFloat64()
	if f > 8 {
		f = 8
	}
	return int(float64(mean)*f*0.5) + 64
}

// Generate builds the tree under root (which must exist) using c.
func Generate(c fsapi.Client, root string, spec Spec) (Stats, error) {
	rng := rand.New(rand.NewSource(spec.Seed))
	var st Stats
	var fileIdx int
	var build func(dir string, depth int) error
	build = func(dir string, depth int) error {
		for f := 0; f < spec.FilesPerDir; f++ {
			size := sizeFor(rng, spec.MeanFileSize)
			name := fmt.Sprintf("%s/file_%d_%d.c", dir, depth, f)
			fd, err := c.Create(name, 0o644)
			if err != nil {
				return fmt.Errorf("corpus create %s: %w", name, err)
			}
			data := FileContent(fileIdx, size)
			fileIdx++
			if _, err := c.Write(fd, data); err != nil {
				c.Close(fd)
				return fmt.Errorf("corpus write %s: %w", name, err)
			}
			c.Close(fd)
			st.Files++
			st.Bytes += uint64(size)
		}
		if depth >= spec.Depth {
			return nil
		}
		for d := 0; d < spec.Fanout; d++ {
			sub := fmt.Sprintf("%s/dir_%d_%d", dir, depth, d)
			if err := c.Mkdir(sub, 0o755); err != nil {
				return fmt.Errorf("corpus mkdir %s: %w", sub, err)
			}
			st.Dirs++
			if err := build(sub, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := build(root, 0); err != nil {
		return st, err
	}
	return st, nil
}

// Walk visits every file in a generated tree in a deterministic order.
func Walk(c fsapi.Client, root string, fn func(path string, st fsapi.Stat) error) error {
	ents, err := c.ReadDir(root)
	if err != nil {
		return err
	}
	// Files first, then directories (deterministic by readdir order is not
	// guaranteed; sort lexically).
	sortEntries(ents)
	for _, e := range ents {
		p := root + "/" + e.Name
		if root == "/" {
			p = "/" + e.Name
		}
		if fsapi.IsDir(e.Mode) {
			if err := Walk(c, p, fn); err != nil {
				return err
			}
			continue
		}
		st, err := c.Stat(p)
		if err != nil {
			return err
		}
		if err := fn(p, st); err != nil {
			return err
		}
	}
	return nil
}

func sortEntries(ents []fsapi.DirEntry) {
	for i := 1; i < len(ents); i++ {
		for j := i; j > 0 && ents[j].Name < ents[j-1].Name; j-- {
			ents[j], ents[j-1] = ents[j-1], ents[j]
		}
	}
}
