package replica_test

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"simurgh/internal/fsapi"
	"simurgh/internal/replica"
	"simurgh/internal/wire"
	"simurgh/internal/wire/client"
)

// metricValue scrapes one series value out of a node's metrics exposition.
func metricValue(t *testing.T, n *replica.Node, name string) uint64 {
	t.Helper()
	var buf bytes.Buffer
	n.WriteMetrics(&buf)
	for _, line := range strings.Split(buf.String(), "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseUint(rest, 10, 64)
			if err != nil {
				t.Fatalf("parse %s: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not exported", name)
	return 0
}

// TestPipelinedQuorum2 drives writes through a quorum=2 group in the
// pipelined default and reads them back: both backups' cumulative acks
// must cover each write before its reply, across both shipping modes.
func TestPipelinedQuorum2(t *testing.T) {
	for _, mode := range []struct {
		name     string
		lockstep bool
	}{{"pipelined", false}, {"lockstep", true}} {
		t.Run(mode.name, func(t *testing.T) {
			cfg := repConfig()
			cfg.Quorum = 2
			cfg.Lockstep = mode.lockstep
			// Two backups mean a second snapshot cut can stall heartbeats
			// to the first link; more grace keeps the links from flapping
			// on slow (-race) runs.
			cfg.FailoverGrace = 2 * time.Second
			p := startPrimary(t, cfg)
			b1 := startBackup(t, cfg, p.addr)
			b2 := startBackup(t, cfg, p.addr)
			// Completed joins, not just registered links: a backup's epoch
			// leaves zero once its snapshot is restored.
			waitFor(t, "both backups", func() bool {
				return p.n.Backups() == 2 &&
					b1.n.Epoch() == p.n.Epoch() && b2.n.Epoch() == p.n.Epoch()
			})

			// The attach handshake waits for both backups' acks; give it
			// room on starved runs.
			remote, err := client.Dial(p.addr, client.Options{DialTimeout: 30 * time.Second})
			if err != nil {
				t.Fatal(err)
			}
			defer remote.Close()
			c, err := remote.Attach(fsapi.Root)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Detach()
			writeFile(t, c, "/q2", "covered by two acks")
			if got := readFile(t, c, "/q2"); got != "covered by two acks" {
				t.Fatalf("got %q", got)
			}
		})
	}
}

// TestSlowBackupDoesNotStall pins the sliding window's point: with
// quorum=1 and two backups, a backup stuck mid-apply must not stall
// writes the other backup is acking. A floor computed as the minimum ack
// (the pre-window behavior this guards against) deadlocks this test.
func TestSlowBackupDoesNotStall(t *testing.T) {
	cfg := repConfig()
	cfg.FailoverGrace = 2 * time.Second // two-backup group; see TestPipelinedQuorum2
	p := startPrimary(t, cfg)
	fast := startBackup(t, cfg, p.addr)

	gate := make(chan struct{})
	var slowApplied atomic.Uint64
	slowCfg := cfg
	slowCfg.ApplyHook = func(e *wire.Entry) {
		if slowApplied.Add(1) > 2 {
			<-gate // wedge the slow backup after its first couple of entries
		}
	}
	slow := startBackup(t, slowCfg, p.addr)
	waitFor(t, "both backups", func() bool {
		return p.n.Backups() == 2 &&
			fast.n.Epoch() == p.n.Epoch() && slow.n.Epoch() == p.n.Epoch()
	})

	remote, err := client.Dial(p.addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	c, err := remote.Attach(fsapi.Root)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Detach()

	const writes = 200
	fd, err := c.Create("/unstalled", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("not gated on the slow backup")
	for i := 0; i < writes; i++ {
		if _, err := c.Pwrite(fd, payload, uint64(i*len(payload))); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if err := c.Close(fd); err != nil {
		t.Fatal(err)
	}
	if applied := slowApplied.Load(); applied > 3 {
		t.Fatalf("slow backup applied %d entries while wedged", applied)
	}
	if win := metricValue(t, p.n, "simurgh_replica_ack_window"); win != 0 {
		t.Logf("ack window %d entries behind the wedged backup (informational)", win)
	}

	// Unwedge; the slow backup must drain the backlog and converge.
	close(gate)
	waitFor(t, "slow backup catch-up", func() bool { return slow.n.Seq() == p.n.Seq() })
	if got := readFile(t, c, "/unstalled"); len(got) != writes*len(payload) {
		t.Fatalf("read %d bytes, want %d", len(got), writes*len(payload))
	}
}

// TestParallelApplyConsistency hammers a backup configured with a worker
// pool: interleaved pwrites across many files must replay to byte-identical
// content even when runs of them apply concurrently. The backup is then
// promoted and read directly, so the check sees the replayed volume, not
// the primary's.
func TestParallelApplyConsistency(t *testing.T) {
	cfg := repConfig()
	p := startPrimary(t, cfg)
	bCfg := cfg
	bCfg.ApplyWorkers = 4
	b := startBackup(t, bCfg, p.addr)
	waitFor(t, "backup to join", func() bool { return p.n.Backups() == 1 })

	remote, err := client.Dial(p.addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	c, err := remote.Attach(fsapi.Root)
	if err != nil {
		t.Fatal(err)
	}
	sess := c.(*client.Session)

	const nfiles = 8
	const rounds = 120
	const batch = 64
	fds := make([]fsapi.FD, nfiles)
	want := make([][]byte, nfiles)
	for i := range fds {
		if fds[i], err = c.Create(fmt.Sprintf("/par%02d", i), 0o644); err != nil {
			t.Fatal(err)
		}
		want[i] = make([]byte, 32<<10)
	}
	reqs := make([]wire.Request, batch)
	var n uint64
	for r := 0; r < rounds; r++ {
		for j := range reqs {
			f := int(n) % nfiles
			off := (n * 977) % uint64(32<<10-16)
			var data [16]byte
			binary.LittleEndian.PutUint64(data[:], n)
			binary.LittleEndian.PutUint64(data[8:], ^n)
			copy(want[f][off:], data[:])
			reqs[j] = wire.Request{ID: uint32(1000 + n), Op: wire.OpPwrite,
				FD: fds[f], Off: off, Data: data[:]}
			n++
		}
		resps, err := sess.Submit(reqs)
		if err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
		for i := range resps {
			if resps[i].Code != wire.CodeOK {
				t.Fatalf("round %d resp %d: %s", r, i, resps[i].Msg)
			}
		}
	}
	for i := range fds {
		if err := c.Close(fds[i]); err != nil {
			t.Fatal(err)
		}
	}
	c.Detach()

	waitFor(t, "backup catch-up", func() bool { return b.n.Seq() == p.n.Seq() })
	if par := metricValue(t, b.n, "simurgh_replica_apply_parallel_total"); par == 0 {
		t.Error("no entries took the parallel apply path; the test exercised nothing")
	}

	// Read the replayed bytes off the backup itself.
	if _, err := b.n.Promote(); err != nil {
		t.Fatal(err)
	}
	bremote, err := client.Dial(b.addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer bremote.Close()
	bc, err := bremote.Attach(fsapi.Root)
	if err != nil {
		t.Fatal(err)
	}
	defer bc.Detach()
	for i := range want {
		got := readFile(t, bc, fmt.Sprintf("/par%02d", i))
		if !bytes.Equal([]byte(got), want[i][:len(got)]) || len(got) == 0 {
			t.Fatalf("file %d: replayed content diverged (len %d)", i, len(got))
		}
	}
}

// TestKillMidWindow hard-kills the primary while a stream of acknowledged
// pwrites keeps the ack window busy. Pipelining must not weaken the
// guarantee failover is built on: after the backup promotes, every write
// that was acknowledged before or across the kill is present.
func TestKillMidWindow(t *testing.T) {
	cfg := repConfig()
	cfg.AutoPromote = true
	p := startPrimary(t, cfg)
	b := startBackup(t, cfg, p.addr)
	waitFor(t, "backup to join", func() bool { return p.n.Backups() == 1 })

	remote, err := client.Dial(p.addr+","+b.addr, client.Options{
		FailoverTimeout: 20 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	c, err := remote.Attach(fsapi.Root)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Detach()
	fd, err := c.Create("/window", 0o644)
	if err != nil {
		t.Fatal(err)
	}

	var acked atomic.Uint64
	writerDone := make(chan error, 1)
	go func() {
		var rec [8]byte
		for i := uint64(0); i < 4000; i++ {
			binary.LittleEndian.PutUint64(rec[:], i)
			if _, err := c.Pwrite(fd, rec[:], i*8); err != nil {
				writerDone <- fmt.Errorf("write %d: %w", i, err)
				return
			}
			acked.Add(1)
		}
		writerDone <- nil
	}()

	// Cut the primary once the stream is in full flight, with entries in
	// every stage of the pipeline: executed-unshipped, shipped-unacked,
	// and acked.
	waitFor(t, "stream in flight", func() bool { return acked.Load() > 500 })
	p.srv.Abort()
	p.n.Close()

	if err := <-writerDone; err != nil {
		t.Logf("writer stopped at the kill: %v (acked writes must still hold)", err)
	}
	waitFor(t, "auto promotion", func() bool { return b.n.Role() == replica.RolePrimary })
	if remote.Stats().Failovers == 0 {
		t.Error("client never failed over")
	}

	total := acked.Load()
	if total < 500 {
		t.Fatalf("only %d writes acked before the kill", total)
	}
	got := readFile(t, c, "/window")
	for i := uint64(0); i < total; i++ {
		if uint64(len(got)) < (i+1)*8 || binary.LittleEndian.Uint64([]byte(got[i*8:])) != i {
			t.Fatalf("acked write %d lost after failover (%d acked, %d bytes present)",
				i, total, len(got))
		}
	}
}
