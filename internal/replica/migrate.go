package replica

import (
	"fmt"
	"io"
	"time"

	"simurgh/internal/wire"
)

// MigrationDrain hands this node's log off to a shard's new owner group
// (the shard authority's retire hook calls it after the routing fence is
// in place; see internal/shard). On a backup it is a no-op — only the
// primary owns the log. On the primary it:
//
//  1. Takes the op gate exclusively, quiescing every executor. With the
//     fence already answering Moved — and re-checked under this same gate —
//     no further entry can enter the log: the tip read below is final.
//  2. Re-exports every session's open descriptors as synthetic open+seek
//     log entries. Backups replay opens they have never seen and skip ones
//     they have (the apply path is idempotent on live descriptors), so a
//     target that joined mid-load — after the original opens shipped in
//     the snapshot manifest's blind spot — rebuilds the full descriptor
//     table before the handoff completes.
//  3. Releases the gate and waits until every link whose advertised
//     address is in addrs has acknowledged the tip.
//
// When it returns nil, every operation ever acknowledged to a client is
// applied on the new owners, descriptors included — the migration's
// zero-loss barrier.
func (n *Node) MigrationDrain(addrs []string, timeout time.Duration) error {
	if n.Role() != RolePrimary {
		return nil
	}
	n.opGate.Lock()
	n.mu.Lock()
	if !n.closed {
		for _, sess := range n.sessions {
			n.reexportLocked(sess)
		}
	}
	tip := n.seq
	n.mu.Unlock()
	n.opGate.Unlock()
	return n.WaitCaughtUp(addrs, tip, timeout)
}

// reexportLocked ships one session's open-descriptor table as synthetic
// log entries: an open (origin path, sanitized flags) that re-binds each
// virtual descriptor, and a seek restoring its live file offset when
// nonzero. The entries carry request ID zero — they answer no client.
// Descriptors whose origin file was unlinked while open cannot reopen and
// are skipped on the target (replay_errors counts them; DESIGN.md §9
// documents the limitation). Caller holds opGate and n.mu.
func (n *Node) reexportLocked(sess *session) {
	for vfd, oi := range sess.opens {
		lfd, ok := sess.fdMap[vfd]
		if !ok {
			continue
		}
		n.seq++
		n.shipLocked(&wire.Entry{Seq: n.seq, Sess: sess.id, Kind: wire.EntryOp, ResFD: vfd,
			Req: wire.Request{Op: wire.OpOpen, Path: oi.path, Flags: uint32(oi.flags), Perm: oi.perm}}, 0)
		if off, err := sess.client.Seek(lfd, 0, io.SeekCurrent); err == nil && off > 0 {
			n.seq++
			n.shipLocked(&wire.Entry{Seq: n.seq, Sess: sess.id, Kind: wire.EntryOp,
				Req: wire.Request{Op: wire.OpSeek, FD: vfd, Off: uint64(off), Flags: io.SeekStart}}, 0)
		}
		n.m.fdReexports.Add(1)
	}
}

// WaitCaughtUp blocks until every live link advertised at one of addrs has
// cumulatively acknowledged tip, with at least one such link present.
// It is the handoff barrier's wait half: requiring every matching link
// (not just one) means any target-group node replicating from this
// primary is fully caught up when the migration coordinator gets its
// reply.
func (n *Node) WaitCaughtUp(addrs []string, tip uint64, timeout time.Duration) error {
	if tip == 0 || len(addrs) == 0 {
		return nil
	}
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	want := make(map[string]bool, len(addrs))
	for _, a := range addrs {
		want[a] = true
	}
	deadline := time.Now().Add(timeout)
	for {
		n.mu.Lock()
		present := 0
		var lowest uint64
		caught := true
		for l := range n.links {
			if !want[l.addr] {
				continue
			}
			present++
			if l.ackedSeq < tip {
				caught = false
				if present == 1 || l.ackedSeq < lowest {
					lowest = l.ackedSeq
				}
			}
		}
		closed := n.closed
		n.mu.Unlock()
		if present > 0 && caught {
			return nil
		}
		if closed {
			return fmt.Errorf("replica: node closed during migration drain")
		}
		if time.Now().After(deadline) {
			if present == 0 {
				return fmt.Errorf("replica: migration drain: no replication link from new owners %v", addrs)
			}
			return fmt.Errorf("replica: migration drain timeout: new owners at seq %d, need %d", lowest, tip)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
