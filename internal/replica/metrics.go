package replica

import (
	"bytes"
	"fmt"
	"io"
	"sync/atomic"
)

// counters are the node's replication metrics, exported as Prometheus
// series through WriteMetrics (an export.Extra).
type counters struct {
	resumes        atomic.Uint64
	dedupHits      atomic.Uint64
	entriesShipped atomic.Uint64
	bytesShipped   atomic.Uint64
	framesShipped  atomic.Uint64
	entriesApplied atomic.Uint64
	applyParallel  atomic.Uint64
	replaySkipped  atomic.Uint64
	replayErrors   atomic.Uint64
	snapshotBytes  atomic.Uint64
	joins          atomic.Uint64
	promotions     atomic.Uint64
	fdReexports    atomic.Uint64
	heartbeatRTT   atomic.Uint64 // last measured, ns
	primarySeq     atomic.Uint64 // last heartbeat's seq (backup role)
}

// ShipStats reports the cumulative entries and encoded bytes shipped to
// backups — the wire cost of replication (simurghbench rep derives its
// bytes/op figure from the deltas).
func (n *Node) ShipStats() (entries, bytes uint64) {
	return n.m.entriesShipped.Load(), n.m.bytesShipped.Load()
}

// WriteClusterJSON writes the cluster health document served at
// /cluster.json: the node's role, epoch, log position, durability floor,
// and — on a primary — one row per live backup link with its ack distance,
// buffered bytes, and ship lag. One lock hold, one consistent snapshot.
func (n *Node) WriteClusterJSON(w io.Writer) error {
	role := n.Role()
	n.mu.Lock()
	seq := n.seq
	quorumSeq := n.quorumSeq
	sessions := len(n.sessions)
	type row struct {
		addr     string
		acked    uint64
		lagBytes uint64
		shipLag  uint64
	}
	rows := make([]row, 0, len(n.links))
	if role == RolePrimary {
		for l := range n.links {
			rows = append(rows, row{
				addr:     l.addr,
				acked:    l.ackedSeq,
				lagBytes: uint64(len(l.out)),
				shipLag:  uint64(len(l.ends) + l.inflight),
			})
		}
	}
	n.mu.Unlock()

	floor := quorumSeq
	var ackWindow uint64
	if role == RolePrimary {
		if len(rows) > 0 && seq > quorumSeq {
			ackWindow = seq - quorumSeq
		}
	} else {
		floor = seq
	}
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "{\n  \"role\": %q,\n  \"epoch\": %d,\n  \"seq\": %d,\n  \"commit_floor\": %d,\n  \"quorum\": %d,\n  \"ack_window\": %d,\n  \"sessions\": %d,\n  \"heartbeat_rtt_ns\": %d,\n  \"primary_seq\": %d,\n  \"backups\": [",
		role.String(), n.Epoch(), seq, floor, n.cfg.Quorum, ackWindow,
		sessions, n.m.heartbeatRTT.Load(), n.m.primarySeq.Load())
	for i, r := range rows {
		if i > 0 {
			buf.WriteByte(',')
		}
		lagOps := uint64(0)
		if seq > r.acked {
			lagOps = seq - r.acked
		}
		fmt.Fprintf(&buf, "\n    {\"addr\": %q, \"acked_seq\": %d, \"lag_ops\": %d, \"lag_bytes\": %d, \"ship_lag\": %d}",
			r.addr, r.acked, lagOps, r.lagBytes, r.shipLag)
	}
	if len(rows) > 0 {
		buf.WriteString("\n  ")
	}
	buf.WriteString("]")
	if f, ok := n.clusterX.Load().(func(io.Writer)); ok && f != nil {
		f(&buf)
	}
	buf.WriteString("\n}\n")
	_, err := w.Write(buf.Bytes())
	return err
}

// SetClusterExtra registers a hook that appends extra members to the
// /cluster.json document (the shard authority injects its shard table
// here). The hook is called after the document's last regular member and
// must write a leading comma.
func (n *Node) SetClusterExtra(f func(io.Writer)) {
	n.clusterX.Store(f)
}

// WriteMetrics appends the simurgh_replica_* series to a /metrics scrape.
func (n *Node) WriteMetrics(w io.Writer) {
	role := n.Role()
	n.mu.Lock()
	seq := n.seq
	backups := len(n.links)
	sessions := len(n.sessions)
	// Replication lag: on the primary, distance between the log head and
	// the slowest live backup's ack (plus unshipped buffer bytes); on a
	// backup, distance behind the primary's last advertised head.
	var lagOps, lagBytes uint64
	// Ack window: entries assigned but not yet quorum-covered (the span of
	// the sliding window). Ship lag: entries buffered or in flight toward
	// the slowest link's socket, before it has even received them.
	var ackWindow, shipLag uint64
	if role == RolePrimary {
		for l := range n.links {
			if d := seq - l.ackedSeq; d > lagOps {
				lagOps = d
			}
			if uint64(len(l.out)) > lagBytes {
				lagBytes = uint64(len(l.out))
			}
			if p := uint64(len(l.ends) + l.inflight); p > shipLag {
				shipLag = p
			}
		}
		if len(n.links) > 0 && seq > n.quorumSeq {
			ackWindow = seq - n.quorumSeq
		}
	} else if ps := n.m.primarySeq.Load(); ps > seq {
		lagOps = ps - seq
	}
	n.mu.Unlock()

	g := func(name string, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	c := func(name string, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	fmt.Fprintf(w, "# HELP simurgh_replica_role Node role (1 when active in that role).\n")
	fmt.Fprintf(w, "# TYPE simurgh_replica_role gauge\n")
	for _, r := range []Role{RolePrimary, RoleBackup} {
		v := 0
		if role == r {
			v = 1
		}
		fmt.Fprintf(w, "simurgh_replica_role{role=%q} %d\n", r.String(), v)
	}
	g("simurgh_replica_epoch", "Replication epoch (bumped on every promotion).", n.Epoch())
	g("simurgh_replica_seq", "Last log sequence assigned (primary) or applied (backup).", seq)
	g("simurgh_replica_lag_ops", "Log entries the slowest live backup is behind (or this backup is behind its primary).", lagOps)
	g("simurgh_replica_lag_bytes", "Encoded entry bytes buffered for the slowest live backup.", lagBytes)
	g("simurgh_replica_ack_window", "Entries inside the sliding ack window (assigned but not yet quorum-covered).", ackWindow)
	g("simurgh_replica_ship_lag_entries", "Entries buffered or in flight toward the slowest link's socket.", shipLag)
	g("simurgh_replica_backups", "Live backup links.", uint64(backups))
	g("simurgh_replica_sessions", "Replicated sessions carried by this node.", uint64(sessions))
	g("simurgh_replica_heartbeat_rtt_ns", "Last heartbeat round trip to a backup.", n.m.heartbeatRTT.Load())
	c("simurgh_replica_entries_shipped_total", "Log entries shipped to backups.", n.m.entriesShipped.Load())
	c("simurgh_replica_bytes_shipped_total", "Encoded log bytes shipped to backups.", n.m.bytesShipped.Load())
	c("simurgh_replica_frames_shipped_total", "Replicate frames written to backups (entries_shipped/frames_shipped is the achieved group-commit size).", n.m.framesShipped.Load())
	c("simurgh_replica_entries_applied_total", "Log entries applied by this backup.", n.m.entriesApplied.Load())
	c("simurgh_replica_apply_parallel_total", "Log entries applied through the parallel (inode-partitioned) apply path.", n.m.applyParallel.Load())
	c("simurgh_replica_replay_skipped_total", "Replayed operations skipped (pre-join descriptors or sessions).", n.m.replaySkipped.Load())
	c("simurgh_replica_replay_errors_total", "Replayed operations that failed (replica divergence).", n.m.replayErrors.Load())
	c("simurgh_replica_dedup_hits_total", "Client retransmissions answered from the replay cache.", n.m.dedupHits.Load())
	c("simurgh_replica_session_resumes_total", "Sessions resumed by failed-over clients.", n.m.resumes.Load())
	c("simurgh_replica_snapshot_bytes_total", "Snapshot bytes streamed to joining backups.", n.m.snapshotBytes.Load())
	c("simurgh_replica_joins_total", "Backups that completed a join.", n.m.joins.Load())
	c("simurgh_replica_promotions_total", "Times this node promoted itself to primary.", n.m.promotions.Load())
	c("simurgh_replica_fd_reexports_total", "Open descriptors re-exported into the log for a migration handoff.", n.m.fdReexports.Load())
}
