package replica

import (
	"sync"
	"testing"
	"time"

	"simurgh/internal/wire"
)

// fakeLinks registers n fake backup links on a bare primary node, giving
// the window tests acks to play with and the ship bench a buffer to fill.
func fakeLinks(n *Node, count int) []*link {
	links := make([]*link, count)
	n.mu.Lock()
	for i := range links {
		links[i] = newLink(nil, "fake")
		n.links[links[i]] = struct{}{}
	}
	n.mu.Unlock()
	return links
}

// ack simulates the reader goroutine receiving a cumulative ack on l,
// exactly as runReader does: update, refresh, broadcast only on advance.
func ack(n *Node, l *link, seq uint64) {
	n.mu.Lock()
	advanced := false
	if seq > l.ackedSeq {
		l.ackedSeq = seq
		advanced = n.refreshQuorumLocked()
	}
	n.mu.Unlock()
	if advanced {
		n.cond.Broadcast()
	}
}

// TestQuorumWindowFloor pins the sliding-window arithmetic: the floor is
// the k-th highest cumulative ack, it never regresses, and below-quorum
// acks do not move it.
func TestQuorumWindowFloor(t *testing.T) {
	n := NewPrimary(nil, Config{Quorum: 2})
	links := fakeLinks(n, 3)
	n.mu.Lock()
	n.seq = 100
	n.mu.Unlock()

	ack(n, links[0], 50)
	if got := n.windowFloor(); got != 0 {
		t.Fatalf("floor after one ack = %d, want 0 (quorum is 2)", got)
	}
	ack(n, links[1], 30)
	if got := n.windowFloor(); got != 30 {
		t.Fatalf("floor = %d, want 30 (2nd highest of 50,30,0)", got)
	}
	ack(n, links[2], 40)
	if got := n.windowFloor(); got != 40 {
		t.Fatalf("floor = %d, want 40 (2nd highest of 50,30,40)", got)
	}
	// Regressing ack (stale retransmit) must not pull the floor back.
	ack(n, links[2], 10)
	if got := n.windowFloor(); got != 40 {
		t.Fatalf("floor regressed to %d after stale ack", got)
	}
	// Slow links detaching drop the effective quorum with them and can
	// advance the floor, as in HandleJoin's detach path: with only the
	// 50-ack link left, k caps at 1 and the floor jumps to its ack.
	n.mu.Lock()
	delete(n.links, links[1])
	delete(n.links, links[2])
	n.refreshQuorumLocked()
	n.mu.Unlock()
	if got := n.windowFloor(); got != 50 {
		t.Fatalf("floor = %d after detaches, want 50 (k capped at 1 live link)", got)
	}
}

func (n *Node) windowFloor() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.quorumSeq
}

// TestWaitQuorumContention floods WaitQuorum with concurrent waiters while
// acks advance one sequence at a time, the worst case for wakeup delivery.
// Every waiter must return; a lost wakeup or a floor that skips a waiter
// deadlocks the test (and the race detector checks the window's locking).
// This is the regression test for the per-link spin the condvar replaced.
func TestWaitQuorumContention(t *testing.T) {
	n := NewPrimary(nil, Config{Quorum: 1})
	links := fakeLinks(n, 2)
	const top = 300

	var wg sync.WaitGroup
	for seq := uint64(1); seq <= top; seq++ {
		wg.Add(1)
		go func(seq uint64) {
			defer wg.Done()
			n.WaitQuorum(seq)
		}(seq)
	}
	// Two ackers race each other cumulative-ack style; quorum=1 means the
	// faster one drives the floor.
	for _, l := range links {
		wg.Add(1)
		go func(l *link) {
			defer wg.Done()
			for seq := uint64(1); seq <= top; seq++ {
				ack(n, l, seq)
			}
		}(l)
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("waiters stuck: quorum window wakeup lost")
	}
	if got := n.windowFloor(); got != top {
		t.Fatalf("floor = %d, want %d", got, top)
	}
}

// shipDrain swaps the link's double buffer exactly as runWriter's takeover
// does, so the bench exercises the real recycle path.
func shipDrain(n *Node, l *link) {
	n.mu.Lock()
	out, ends := l.out, l.ends
	l.out, l.ends = l.spareOut[:0], l.spareEnds[:0]
	l.spareOut, l.spareEnds = out, ends
	n.mu.Unlock()
}

// BenchmarkShipEntry measures the primary's per-entry ship cost on the
// single-link fast path — encode straight into the link buffer, kick the
// writer — with the writer's buffer swap folded in. The steady state must
// not allocate; CI's bench-smoke gate enforces it.
func BenchmarkShipEntry(b *testing.B) {
	n := NewPrimary(nil, Config{Quorum: 1})
	l := fakeLinks(n, 1)[0]
	e := &wire.Entry{Sess: 42, Kind: wire.EntryPwrite,
		Req: wire.Request{ID: 5, Op: wire.OpPwrite, FD: 3, Off: 4096, Data: make([]byte, 512)}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n.mu.Lock()
		n.seq++
		e.Seq = n.seq
		n.shipLocked(e, 0)
		n.mu.Unlock()
		if i%16 == 15 {
			shipDrain(n, l)
			select {
			case <-l.kick:
			default:
			}
		}
	}
}
