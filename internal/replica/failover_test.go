package replica_test

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"simurgh/internal/fsapi"
	"simurgh/internal/fstest"
	"simurgh/internal/replica"
	"simurgh/internal/wire/client"
)

// prefixFS gives each conformance case a private namespace on the shared
// replicated volume: every path is rewritten under a per-case directory,
// so cases that reuse names ("/f") do not collide.
type prefixFS struct {
	remote *client.Remote
	pre    string
}

func (p *prefixFS) Name() string { return p.remote.Name() }

func (p *prefixFS) Attach(cred fsapi.Cred) (fsapi.Client, error) {
	c, err := p.remote.Attach(cred)
	if err != nil {
		return nil, err
	}
	return &prefixClient{Client: c, pre: p.pre}, nil
}

type prefixClient struct {
	fsapi.Client
	pre string
}

func (p *prefixClient) path(s string) string {
	if s == "/" {
		return p.pre
	}
	return p.pre + s
}

func (p *prefixClient) Create(path string, perm uint32) (fsapi.FD, error) {
	return p.Client.Create(p.path(path), perm)
}
func (p *prefixClient) Open(path string, flags fsapi.OpenFlag, perm uint32) (fsapi.FD, error) {
	return p.Client.Open(p.path(path), flags, perm)
}
func (p *prefixClient) Stat(path string) (fsapi.Stat, error)  { return p.Client.Stat(p.path(path)) }
func (p *prefixClient) Lstat(path string) (fsapi.Stat, error) { return p.Client.Lstat(p.path(path)) }
func (p *prefixClient) Mkdir(path string, perm uint32) error {
	return p.Client.Mkdir(p.path(path), perm)
}
func (p *prefixClient) Rmdir(path string) error  { return p.Client.Rmdir(p.path(path)) }
func (p *prefixClient) Unlink(path string) error { return p.Client.Unlink(p.path(path)) }
func (p *prefixClient) Rename(o, n string) error {
	return p.Client.Rename(p.path(o), p.path(n))
}
func (p *prefixClient) Symlink(target, link string) error {
	return p.Client.Symlink(p.path(target), p.path(link))
}
func (p *prefixClient) Link(o, n string) error { return p.Client.Link(p.path(o), p.path(n)) }
func (p *prefixClient) Readlink(path string) (string, error) {
	tgt, err := p.Client.Readlink(p.path(path))
	if err != nil {
		return tgt, err
	}
	if trimmed := strings.TrimPrefix(tgt, p.pre); trimmed != "" {
		return trimmed, nil
	}
	return "/", nil
}
func (p *prefixClient) ReadDir(path string) ([]fsapi.DirEntry, error) {
	return p.Client.ReadDir(p.path(path))
}
func (p *prefixClient) Chmod(path string, perm uint32) error {
	return p.Client.Chmod(p.path(path), perm)
}
func (p *prefixClient) Utimes(path string, at, mt int64) error {
	return p.Client.Utimes(p.path(path), at, mt)
}

// TestFailoverConformance runs the full conformance battery against a
// 1-primary/1-backup group through a failover-enabled client, and
// hard-kills the primary partway through. The backup must auto-promote
// and the remaining cases — plus a write acknowledged just before the
// kill — must complete against it with nothing lost.
func TestFailoverConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("failover suite is slow")
	}
	cfg := repConfig()
	cfg.AutoPromote = true
	p := startPrimary(t, cfg)
	b := startBackup(t, cfg, p.addr)
	waitFor(t, "backup to join", func() bool { return p.n.Backups() == 1 })

	remote, err := client.Dial(p.addr+","+b.addr, client.Options{
		FailoverTimeout: 20 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	const killAt = 8 // cases into the 22-case battery
	const marker = "acknowledged before the primary died"
	var caseNo atomic.Int32
	fstest.RunConformance(t, func() fsapi.FileSystem {
		i := caseNo.Add(1) - 1
		root, err := remote.Attach(fsapi.Root)
		if err != nil {
			t.Fatalf("case %d attach: %v", i, err)
		}
		defer root.Detach()
		if i == killAt {
			// This write is acknowledged (quorum=1: the backup applied
			// it) before the primary is cut mid-everything.
			writeFile(t, root, "/marker", marker)
			p.srv.Abort()
			p.n.Close()
		}
		pre := fmt.Sprintf("/case%02d", i)
		if err := root.Mkdir(pre, 0o777); err != nil {
			t.Fatalf("case %d mkdir: %v", i, err)
		}
		return &prefixFS{remote: remote, pre: pre}
	})

	if got := int(caseNo.Load()); got <= killAt {
		t.Fatalf("battery ran %d cases; the kill at %d never happened", got, killAt)
	}
	if b.n.Role() != replica.RolePrimary {
		t.Fatalf("backup never promoted (role %v)", b.n.Role())
	}
	st := remote.Stats()
	if st.Failovers == 0 {
		t.Error("client never failed over")
	}

	// The acknowledged write survived the unclean failover.
	c, err := remote.Attach(fsapi.Root)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Detach()
	if got := readFile(t, c, "/marker"); got != marker {
		t.Fatalf("acknowledged write lost: %q", got)
	}
}

// TestFDSurvivesFailover pins the virtual-descriptor guarantee directly: a
// descriptor opened before the failover keeps working after it, on the
// promoted backup, with its offset intact.
func TestFDSurvivesFailover(t *testing.T) {
	cfg := repConfig()
	cfg.AutoPromote = true
	p := startPrimary(t, cfg)
	b := startBackup(t, cfg, p.addr)
	waitFor(t, "backup to join", func() bool { return p.n.Backups() == 1 })

	remote, err := client.Dial(p.addr+","+b.addr, client.Options{
		FailoverTimeout: 20 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	c, err := remote.Attach(fsapi.Root)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Detach()

	fd, err := c.Create("/journal", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write(fd, []byte("first half, ")); err != nil {
		t.Fatal(err)
	}

	p.srv.Abort()
	p.n.Close()
	waitFor(t, "auto promotion", func() bool { return b.n.Role() == replica.RolePrimary })

	// Same descriptor, same session, new primary: the positional write
	// must land where the pre-failover offset left it.
	if _, err := c.Write(fd, []byte("second half")); err != nil {
		t.Fatalf("write on resumed fd: %v", err)
	}
	if err := c.Close(fd); err != nil {
		t.Fatalf("close resumed fd: %v", err)
	}
	if got := readFile(t, c, "/journal"); got != "first half, second half" {
		t.Fatalf("journal = %q", got)
	}
	if remote.Stats().Replays == 0 {
		t.Log("note: failover completed without replaying any request")
	}
}
