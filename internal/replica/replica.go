// Package replica adds primary–backup replication to the wire server. The
// primary assigns every state-changing operation a monotonic log sequence
// number, executes it, and ships the resulting log entry to each connected
// backup; the client is acknowledged only after a quorum of backups has
// applied the entry. Reads never leave the primary.
//
// A backup enlists with `simurghd -join <primary>`: it receives a snapshot
// of the volume (the device image), a manifest of live sessions, and then
// the live log, which it applies against shadow sessions of its own mount.
// When the primary's heartbeats stop — or an admin sends the promote frame
// — the backup bumps the epoch and starts serving as primary; clients that
// lose their connection re-resolve the group, resume their session by
// client ID, and replay unacknowledged requests, which the per-session
// replay cache answers idempotently.
//
// Scope and guarantees (see DESIGN.md §7): with quorum ≥ 1 and a live
// backup, no acknowledged write is lost when the primary dies uncleanly.
// With zero connected backups the primary acknowledges alone (availability
// over durability — the group degrades to a standalone server). Fencing of
// a resurrected old primary and multi-node consensus are out of scope: the
// epoch detects staleness, it does not arbitrate split brain.
package replica

import (
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"simurgh/internal/fsapi"
	"simurgh/internal/obs"
	"simurgh/internal/wire"
)

// Role is a node's place in the group.
type Role int32

const (
	// RoleBackup applies the primary's log and serves nothing itself.
	RoleBackup Role = iota
	// RolePrimary serves clients and ships the log.
	RolePrimary
)

func (r Role) String() string {
	if r == RolePrimary {
		return "primary"
	}
	return "backup"
}

// Replay-cache bounds, per session. The cache must cover every request a
// client could still replay after a failover: clients replay only requests
// they have no response for, and their in-flight window is far below
// maxDedupEntries. Oversized cached responses (large reads) are bounded by
// bytes, with an entry floor so small-op windows never collapse.
const (
	maxDedupEntries = 4096
	maxDedupBytes   = 8 << 20
	minDedupEntries = 128
)

// inoStripes sizes the per-inode lock table that pipelined data operations
// serialize on. A collision only over-serializes two files; it never
// breaks ordering.
const inoStripes = 64

// stripe maps an inode to its execution lock.
func (n *Node) stripe(ino uint64) *sync.Mutex {
	return &n.stripes[(ino*0x9e3779b97f4a7c15)>>58]
}

// dataOp reports whether a replicated operation acts on an open descriptor
// without touching the namespace or the descriptor table — the class the
// pipelined primary executes concurrently under per-inode stripes.
func dataOp(op wire.Op) bool {
	switch op {
	case wire.OpRead, wire.OpWrite, wire.OpPwrite, wire.OpSeek,
		wire.OpFtruncate, wire.OpFallocate:
		return true
	}
	return false
}

// cachedResp is one replay-cache slot: the response as the client saw it,
// plus the log sequence that must be quorum-covered before it is released.
type cachedResp struct {
	resp wire.Response
	seq  uint64
}

// openInfo remembers how a live descriptor was opened, so a migration can
// re-export it into the log for backups that joined too late to replay the
// original open (see Node.MigrationDrain). Flags are sanitized at record
// time: OCreate/OExcl/OTrunc are one-shot open semantics that must not
// re-run on a reopen.
type openInfo struct {
	path  string
	flags fsapi.OpenFlag
	perm  uint32
}

// sanitizeOpenFlags strips the one-shot open semantics from recorded flags.
func sanitizeOpenFlags(flags fsapi.OpenFlag) fsapi.OpenFlag {
	return flags &^ (fsapi.OCreate | fsapi.OExcl | fsapi.OTrunc)
}

// session is one client's server-side state, replicated across the group:
// credentials, the virtual-descriptor table, and the replay cache. On the
// node where the client is attached, client is the live fsapi session; on
// backups it is the shadow built by log replay.
type session struct {
	id   uint64
	cred fsapi.Cred

	client fsapi.Client

	// fdmu guards the descriptor table. Virtual descriptors are the FDs
	// clients hold; they survive failover because log entries carry them
	// explicitly, while the local descriptor they map to is whatever this
	// node's mount handed out. On the first primary the mapping is the
	// identity; after a failover it usually is not.
	fdmu  sync.RWMutex
	fdMap map[fsapi.FD]fsapi.FD
	// inos caches each open virtual descriptor's inode number (recorded at
	// open/create time) — the dependency key the pipelined paths use to run
	// data operations on independent files concurrently.
	inos map[fsapi.FD]uint64
	// opens remembers each open virtual descriptor's origin (path, flags,
	// perm) so MigrationDrain can re-export the descriptor table to backups
	// that joined after the opens replicated. Guarded by fdmu.
	opens map[fsapi.FD]openInfo
	nextV fsapi.FD

	// dedup answers replayed requests without re-executing them. Guarded by
	// dmu: the pipelined paths mutate the cache from concurrent executors
	// and parallel apply workers, so it cannot ride the node's log lock.
	dmu        sync.Mutex
	dedup      map[uint32]cachedResp
	dedupFIFO  []uint32
	dedupBytes int

	attached bool      // a live connection owns this session
	released time.Time // when the owning connection went away
}

func newSession(id uint64, cred fsapi.Cred, client fsapi.Client) *session {
	return &session{
		id:     id,
		cred:   cred,
		client: client,
		fdMap:  make(map[fsapi.FD]fsapi.FD),
		inos:   make(map[fsapi.FD]uint64),
		opens:  make(map[fsapi.FD]openInfo),
		dedup:  make(map[uint32]cachedResp),
	}
}

// allocVFD assigns a virtual descriptor for a freshly opened local one,
// preferring the identity so a never-failed-over group behaves exactly
// like a standalone server. ino is the opened file's inode (zero when
// unknown), kept as the dependency key for pipelined data ops; oi records
// the open's origin for migration-time re-export.
func (s *session) allocVFD(lfd fsapi.FD, ino uint64, oi openInfo) fsapi.FD {
	s.fdmu.Lock()
	defer s.fdmu.Unlock()
	v := lfd
	if _, taken := s.fdMap[v]; taken || v < 0 {
		v = s.nextV
		for {
			if _, taken := s.fdMap[v]; !taken {
				break
			}
			v++
		}
	}
	s.fdMap[v] = lfd
	s.inos[v] = ino
	s.opens[v] = oi
	if v >= s.nextV {
		s.nextV = v + 1
	}
	return v
}

// mapVFD installs an explicit virtual→local mapping (backup replay, where
// the log dictates the virtual descriptor).
func (s *session) mapVFD(vfd, lfd fsapi.FD, ino uint64, oi openInfo) {
	s.fdmu.Lock()
	s.fdMap[vfd] = lfd
	s.inos[vfd] = ino
	s.opens[vfd] = oi
	if vfd >= s.nextV {
		s.nextV = vfd + 1
	}
	s.fdmu.Unlock()
}

// lookupVFD translates a client-held descriptor to this node's local one.
func (s *session) lookupVFD(vfd fsapi.FD) (fsapi.FD, bool) {
	s.fdmu.RLock()
	lfd, ok := s.fdMap[vfd]
	s.fdmu.RUnlock()
	return lfd, ok
}

// lookupVFDIno translates a descriptor and reports its cached inode.
func (s *session) lookupVFDIno(vfd fsapi.FD) (fsapi.FD, uint64, bool) {
	s.fdmu.RLock()
	lfd, ok := s.fdMap[vfd]
	ino := s.inos[vfd]
	s.fdmu.RUnlock()
	return lfd, ino, ok
}

// unmapVFD drops a closed descriptor's mapping.
func (s *session) unmapVFD(vfd fsapi.FD) {
	s.fdmu.Lock()
	delete(s.fdMap, vfd)
	delete(s.inos, vfd)
	delete(s.opens, vfd)
	s.fdmu.Unlock()
}

// inoOf fetches a file's inode for the dependency key, tolerating failure
// (zero collapses onto one stripe, which only costs parallelism).
func inoOf(c fsapi.Client, lfd fsapi.FD) uint64 {
	st, err := c.Fstat(lfd)
	if err != nil {
		return 0
	}
	return st.Ino
}

// cacheResp remembers a request's response for idempotent replay. Caller
// holds s.dmu.
func (s *session) cacheResp(id uint32, resp wire.Response, seq uint64) {
	if old, ok := s.dedup[id]; ok {
		// An ID reused this fast means the 4G-wide counter wrapped within
		// the window; keep the newer answer.
		s.dedupBytes -= len(old.resp.Data)
	}
	s.dedup[id] = cachedResp{resp: resp, seq: seq}
	s.dedupFIFO = append(s.dedupFIFO, id)
	s.dedupBytes += len(resp.Data)
	for len(s.dedupFIFO) > maxDedupEntries ||
		(s.dedupBytes > maxDedupBytes && len(s.dedupFIFO) > minDedupEntries) {
		victim := s.dedupFIFO[0]
		s.dedupFIFO = s.dedupFIFO[1:]
		if old, ok := s.dedup[victim]; ok {
			s.dedupBytes -= len(old.resp.Data)
			delete(s.dedup, victim)
		}
	}
}

// Config parameterizes a Node.
type Config struct {
	// FS is the primary's mounted volume. nil for a backup (its volume
	// arrives with the snapshot).
	FS fsapi.FileSystem
	// Advertise is the wire address clients and backups should use to
	// reach this node (used in redirects and joins).
	Advertise string
	// Quorum is how many backups must acknowledge an operation before the
	// client is. Capped at the number of live backup links: a group with
	// none acknowledges alone. Default 1.
	Quorum int
	// PrimaryAddr is the primary a backup joins. Empty for a primary.
	PrimaryAddr string
	// HeartbeatInterval paces the primary's liveness beacons. Default 500ms.
	HeartbeatInterval time.Duration
	// FailoverGrace is how long a backup tolerates primary silence before
	// it promotes itself (when AutoPromote). Default 2s.
	FailoverGrace time.Duration
	// AutoPromote lets a backup promote itself after FailoverGrace without
	// primary contact.
	AutoPromote bool
	// DialTimeout bounds each join dial. Default 1s.
	DialTimeout time.Duration
	// Snapshot serializes the volume image for a joining backup. Called
	// under the log lock — mutations are paused while it runs.
	Snapshot func(w io.Writer) error
	// Restore materializes a received snapshot into a mounted file system
	// (backup side).
	Restore func(img []byte) (fsapi.FileSystem, error)
	// Logf receives replication diagnostics. Default: discard.
	Logf func(format string, args ...any)
	// Lockstep disables the pipelined paths — per-op exclusive execution on
	// the primary, full-request entry encoding, single-threaded apply and a
	// synchronous per-frame ack on backups — restoring the pre-pipelining
	// behavior. It exists for A/B measurement (simurghbench rep reports
	// both modes); production groups leave it off.
	Lockstep bool
	// ApplyWorkers bounds the backup's parallel apply pool. Zero picks
	// min(GOMAXPROCS, 4); one disables parallel apply.
	ApplyWorkers int
	// ApplyHook, when set, is called by a backup before applying each log
	// entry. Test instrumentation (simulating slow or lagging backups).
	ApplyHook func(e *wire.Entry)
	// Obs receives replication spans (group commit, ship, apply, ack) for
	// sampled operations. nil disables tracing on this node: every Registry
	// method is nil-safe, so the hot paths need no guard beyond the trace ID.
	Obs *obs.Registry
}

func (c *Config) fillDefaults() {
	if c.Quorum <= 0 {
		c.Quorum = 1
	}
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = 500 * time.Millisecond
	}
	if c.FailoverGrace <= 0 {
		c.FailoverGrace = 2 * time.Second
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	if c.ApplyWorkers <= 0 {
		c.ApplyWorkers = runtime.GOMAXPROCS(0)
		if c.ApplyWorkers > 4 {
			c.ApplyWorkers = 4
		}
	}
}

// Node is one member of a replication group. It implements the server's
// Replica interface; the same Node serves as primary or backup depending
// on its role, which promotion changes at runtime.
type Node struct {
	cfg Config

	role  atomic.Int32
	epoch atomic.Uint64

	// mu is the log lock: it guards seq assignment and shipping (log order
	// is ship order), fs, sessions, links, and the quorum window. cond
	// broadcasts quorum-window advances and membership changes.
	mu   sync.Mutex
	cond *sync.Cond

	// opGate orders pipelined execution against everything that must see a
	// quiescent volume. Data operations on open descriptors (pwrite, write,
	// read, seek, ftruncate, fallocate) execute under the read side plus a
	// per-inode stripe — concurrent across files, serialized per file —
	// while namespace/descriptor operations, snapshot cuts, and lockstep
	// mode take the write side and exclude them all. Lock order is
	// opGate → stripe → mu.
	opGate  sync.RWMutex
	stripes [inoStripes]sync.Mutex

	fs       fsapi.FileSystem
	seq      uint64
	sessions map[uint64]*session
	links    map[*link]struct{}
	anonID   uint64 // synthesized session IDs for clients without one
	closed   bool

	// quorumSeq is the sliding ack window's floor: the highest sequence a
	// quorum of live backups has cumulatively applied. WaitQuorum blocks on
	// it; it advances (under mu, with one broadcast) when an ack or a
	// membership change moves the k-th-highest cumulative ack forward.
	quorumSeq uint64

	// shipBuf is the entry-encoding scratch reused by shipLocked; guarded
	// by mu like everything else on the ship path.
	shipBuf []byte

	// applyParts is the backup's reused per-worker partition scratch for
	// parallel apply; guarded by mu (only the apply dispatcher touches it).
	applyParts [][]*wire.Entry

	// primaryAddr is the last known primary (for redirects from backups).
	primaryAddr atomic.Value // string

	// joinConn is the backup's live replication connection, closed by
	// Promote/Close to unblock the join loop.
	joinConn atomic.Value // net.Conn

	// clusterX is an optional /cluster.json extension hook (func(io.Writer));
	// see SetClusterExtra.
	clusterX atomic.Value

	// traceAck* carry a backup's pending rep-ack span: a traced frame's
	// apply records the trace here, and the acker emits SpanRepAck once a
	// cumulative ack covering that sequence hits the socket. One slot is
	// enough — sampled frames are rare, and a collision only drops a span.
	traceAckMu  sync.Mutex
	traceAckID  uint64
	traceAckSeq uint64
	traceAckAt  time.Time

	stop chan struct{}
	wg   sync.WaitGroup

	m counters
}

// NewPrimary builds the group's founding primary serving fs at epoch 1.
func NewPrimary(fs fsapi.FileSystem, cfg Config) *Node {
	cfg.FS = fs
	cfg.fillDefaults()
	n := newNode(cfg)
	n.fs = fs
	n.role.Store(int32(RolePrimary))
	n.epoch.Store(1)
	n.primaryAddr.Store(cfg.Advertise)
	return n
}

// NewBackup builds a backup that joins cfg.PrimaryAddr, restores the
// snapshot, and follows the log until promoted or closed.
func NewBackup(cfg Config) *Node {
	cfg.fillDefaults()
	n := newNode(cfg)
	n.role.Store(int32(RoleBackup))
	n.primaryAddr.Store(cfg.PrimaryAddr)
	n.wg.Add(1)
	go n.runBackup()
	return n
}

func newNode(cfg Config) *Node {
	n := &Node{
		cfg:      cfg,
		sessions: make(map[uint64]*session),
		links:    make(map[*link]struct{}),
		stop:     make(chan struct{}),
	}
	n.cond = sync.NewCond(&n.mu)
	return n
}

// Role reports the node's current role.
func (n *Node) Role() Role { return Role(n.role.Load()) }

// Epoch reports the node's current epoch.
func (n *Node) Epoch() uint64 { return n.epoch.Load() }

// Seq reports the last log sequence this node has assigned (primary) or
// applied (backup).
func (n *Node) Seq() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.seq
}

// CommitFloor reports the durability floor: on a primary the sliding ack
// window's floor (the highest sequence a quorum of backups has applied);
// on a backup the highest sequence it has applied itself.
func (n *Node) CommitFloor() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	if Role(n.role.Load()) == RolePrimary {
		return n.quorumSeq
	}
	return n.seq
}

// noteTracedApply records that a traced frame's entries were applied
// through seq; the acker turns this into a SpanRepAck when a cumulative
// ack covering seq is written.
func (n *Node) noteTracedApply(trace, seq uint64) {
	n.traceAckMu.Lock()
	n.traceAckID = trace
	n.traceAckSeq = seq
	n.traceAckAt = time.Now()
	n.traceAckMu.Unlock()
}

// emitAckSpan closes a pending rep-ack span if ackedSeq covers it.
func (n *Node) emitAckSpan(ackedSeq uint64) {
	n.traceAckMu.Lock()
	trace, seq, at := n.traceAckID, n.traceAckSeq, n.traceAckAt
	if trace != 0 && ackedSeq >= seq {
		n.traceAckID = 0
	} else {
		trace = 0
	}
	n.traceAckMu.Unlock()
	if trace != 0 {
		n.cfg.Obs.SpanCtx(obs.SpanRepAck, 0, trace, at, uint64(time.Since(at)), false)
	}
}

// Backups reports the number of live backup links (primary role).
func (n *Node) Backups() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.links)
}

// Health reports the node's serving state for /healthz: "serving" on a
// primary, "backup" otherwise.
func (n *Node) Health() string {
	if n.Role() == RolePrimary {
		return "serving"
	}
	return "backup"
}

// Close stops the node: the backup join loop ends, replication links
// close, and quorum waiters are released.
func (n *Node) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		n.wg.Wait()
		return
	}
	n.closed = true
	links := make([]*link, 0, len(n.links))
	for l := range n.links {
		links = append(links, l)
	}
	n.mu.Unlock()
	close(n.stop)
	for _, l := range links {
		l.conn.Close()
	}
	if c, ok := n.joinConn.Load().(interface{ Close() error }); ok && c != nil {
		c.Close()
	}
	n.cond.Broadcast()
	n.wg.Wait()
}
