package replica_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"strings"
	"testing"

	"simurgh/internal/core"
	"simurgh/internal/fsapi"
	"simurgh/internal/obs"
	"simurgh/internal/pmem"
	"simurgh/internal/replica"
	"simurgh/internal/server"
	"simurgh/internal/wire/client"
)

// tracedGroup is a one-primary one-backup group with per-node registries
// wired through every layer (server, replica, client), tracing every span.
type tracedGroup struct {
	p, b       *member
	clientReg  *obs.Registry
	primaryReg *obs.Registry
	backupReg  *obs.Registry
	c          fsapi.Client
	remote     *client.Remote
}

func startTracedGroup(t *testing.T) *tracedGroup {
	t.Helper()
	g := &tracedGroup{
		clientReg:  obs.NewRegistry(),
		primaryReg: obs.NewRegistry(),
		backupReg:  obs.NewRegistry(),
	}
	for name, reg := range map[string]*obs.Registry{
		"client": g.clientReg, "primary": g.primaryReg, "backup": g.backupReg,
	} {
		reg.SetNode(name)
		reg.EnableTrace(4096)
	}

	// Primary.
	dev := pmem.New(16 << 20)
	vol, err := core.Format(dev, fsapi.Root, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	pcfg := repConfig()
	pcfg.Advertise = pln.Addr().String()
	pcfg.Obs = g.primaryReg
	pcfg.Snapshot = func(w io.Writer) error {
		_, err := dev.WriteTo(w)
		return err
	}
	pn := replica.NewPrimary(vol, pcfg)
	psrv, err := server.New(server.Config{FS: vol, Replica: pn, Obs: g.primaryReg})
	if err != nil {
		t.Fatal(err)
	}
	go psrv.Serve(pln)
	g.p = &member{n: pn, srv: psrv, addr: pln.Addr().String()}
	t.Cleanup(func() { g.p.srv.Abort(); g.p.n.Close() })

	// Backup.
	bln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	bcfg := repConfig()
	bcfg.Advertise = bln.Addr().String()
	bcfg.PrimaryAddr = g.p.addr
	bcfg.Obs = g.backupReg
	bcfg.Restore = func(img []byte) (fsapi.FileSystem, error) {
		d, err := pmem.ReadImage(bytes.NewReader(img))
		if err != nil {
			return nil, err
		}
		fs, _, err := core.Mount(d, core.Options{})
		return fs, err
	}
	bn := replica.NewBackup(bcfg)
	bsrv, err := server.New(server.Config{Replica: bn, Obs: g.backupReg})
	if err != nil {
		t.Fatal(err)
	}
	go bsrv.Serve(bln)
	g.b = &member{n: bn, srv: bsrv, addr: bln.Addr().String()}
	t.Cleanup(func() { g.b.srv.Abort(); g.b.n.Close() })
	waitFor(t, "backup to join", func() bool { return g.p.n.Backups() == 1 })

	// Client: every submission carries a trace context.
	g.remote, err = client.Dial(g.p.addr, client.Options{Obs: g.clientReg, TraceSample: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { g.remote.Close() })
	g.c, err = g.remote.Attach(fsapi.Root)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { g.c.Detach() })
	return g
}

// traceSets collects, per registry, the set of distributed trace IDs seen
// for each span kind.
func traceSets(reg *obs.Registry) map[obs.SpanKind]map[uint64]bool {
	out := map[obs.SpanKind]map[uint64]bool{}
	for _, e := range reg.Trace() {
		if e.Trace == 0 {
			continue
		}
		if out[e.Kind] == nil {
			out[e.Kind] = map[uint64]bool{}
		}
		out[e.Kind][e.Trace] = true
	}
	return out
}

// TestDistributedTraceLinksAcrossNodes follows one sampled replicated
// pwrite from the client through the primary to the backup's ack: every
// layer must emit spans carrying the same trace ID, and the merged Chrome
// dump of all three registries must be one valid timeline containing them.
func TestDistributedTraceLinksAcrossNodes(t *testing.T) {
	g := startTracedGroup(t)

	fd, err := g.c.Create("/traced", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.c.Pwrite(fd, []byte("follow this write"), 0); err != nil {
		t.Fatal(err)
	}
	if err := g.c.Close(fd); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "backup to catch up", func() bool { return g.b.n.Seq() == g.p.n.Seq() })

	// The rep-ack span is emitted by the backup's async acker after the
	// ack hits the socket; quorum acknowledgment (which the client waits
	// on) implies the ack was sent, but the span write can trail it.
	waitFor(t, "backup rep-ack span", func() bool {
		return len(traceSets(g.backupReg)[obs.SpanRepAck]) > 0
	})

	cli := traceSets(g.clientReg)
	pri := traceSets(g.primaryReg)
	bak := traceSets(g.backupReg)
	for _, probe := range []struct {
		where string
		sets  map[obs.SpanKind]map[uint64]bool
		kind  obs.SpanKind
	}{
		{"client", cli, obs.SpanClientEnqueue},
		{"client", cli, obs.SpanClientSend},
		{"client", cli, obs.SpanClientAwait},
		{"primary", pri, obs.SpanSrvExec},
		{"primary", pri, obs.SpanSrvQuorum},
		{"primary", pri, obs.SpanRepCommit},
		{"primary", pri, obs.SpanRepShip},
		{"backup", bak, obs.SpanRepApply},
		{"backup", bak, obs.SpanRepAck},
	} {
		if len(probe.sets[probe.kind]) == 0 {
			t.Errorf("%s recorded no %v spans", probe.where, probe.kind)
		}
	}
	if t.Failed() {
		t.FailNow()
	}

	// At least one trace ID must traverse the whole chain: client send →
	// primary execute → backup apply → backup ack.
	var linked uint64
	for id := range cli[obs.SpanClientSend] {
		if pri[obs.SpanSrvExec][id] && pri[obs.SpanRepShip][id] &&
			bak[obs.SpanRepApply][id] && bak[obs.SpanRepAck][id] {
			linked = id
			break
		}
	}
	if linked == 0 {
		t.Fatalf("no trace ID spans the full chain; client send IDs: %d, backup apply IDs: %d",
			len(cli[obs.SpanClientSend]), len(bak[obs.SpanRepApply]))
	}

	// Merge the three nodes' dumps into one timeline and verify it is
	// valid Chrome trace JSON containing the linked trace on distinct
	// process groups.
	var cdump, pdump, bdump bytes.Buffer
	for _, d := range []struct {
		reg *obs.Registry
		buf *bytes.Buffer
	}{{g.clientReg, &cdump}, {g.primaryReg, &pdump}, {g.backupReg, &bdump}} {
		if err := d.reg.WriteChromeTrace(d.buf); err != nil {
			t.Fatal(err)
		}
	}
	var merged bytes.Buffer
	if err := obs.MergeChromeTraces(&merged, cdump.Bytes(), pdump.Bytes(), bdump.Bytes()); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(merged.Bytes(), &events); err != nil {
		t.Fatalf("merged dump is not valid JSON: %v", err)
	}
	hex := fmt.Sprintf("%016x", linked)
	pids := map[float64]bool{}
	for _, e := range events {
		args, _ := e["args"].(map[string]any)
		if args == nil || args["trace"] != hex {
			continue
		}
		if pid, ok := e["pid"].(float64); ok {
			pids[pid] = true
		}
	}
	if len(pids) < 3 {
		t.Fatalf("linked trace %s spans %d process groups in the merged dump, want 3", hex, len(pids))
	}
	if !strings.Contains(merged.String(), `"process_name"`) {
		t.Fatal("merged dump lost the process_name metadata")
	}
}

// TestClusterJSON pins the /cluster.json document: a primary with one
// backup reports its role, epoch, durability floor, and a per-backup row.
func TestClusterJSON(t *testing.T) {
	g := startTracedGroup(t)
	writeFile(t, g.c, "/f", "content")
	waitFor(t, "backup to catch up", func() bool { return g.b.n.Seq() == g.p.n.Seq() })

	var buf bytes.Buffer
	if err := g.p.n.WriteClusterJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Role        string `json:"role"`
		Epoch       uint64 `json:"epoch"`
		Seq         uint64 `json:"seq"`
		CommitFloor uint64 `json:"commit_floor"`
		Quorum      int    `json:"quorum"`
		Backups     []struct {
			Addr     string `json:"addr"`
			AckedSeq uint64 `json:"acked_seq"`
			LagOps   uint64 `json:"lag_ops"`
		} `json:"backups"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("cluster.json invalid: %v\n%s", err, buf.String())
	}
	if doc.Role != "primary" || doc.Epoch != 1 || doc.Quorum != 1 {
		t.Fatalf("role/epoch/quorum = %s/%d/%d", doc.Role, doc.Epoch, doc.Quorum)
	}
	if doc.Seq == 0 {
		t.Fatal("primary reports zero seq after writes")
	}
	if len(doc.Backups) != 1 {
		t.Fatalf("backups rows = %d, want 1", len(doc.Backups))
	}
	if doc.Backups[0].Addr == "" {
		t.Fatal("backup row missing address")
	}
	// Quorum 1 with one live backup: acknowledged writes are quorum-covered,
	// so the floor tracks the backup's cumulative ack.
	waitFor(t, "commit floor to reach seq", func() bool {
		return g.p.n.CommitFloor() == g.p.n.Seq()
	})

	// The backup's document reports its own applied position as the floor.
	buf.Reset()
	if err := g.b.n.WriteClusterJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var bdoc struct {
		Role        string `json:"role"`
		CommitFloor uint64 `json:"commit_floor"`
		Seq         uint64 `json:"seq"`
	}
	if err := json.Unmarshal(buf.Bytes(), &bdoc); err != nil {
		t.Fatalf("backup cluster.json invalid: %v\n%s", err, buf.String())
	}
	if bdoc.Role != "backup" || bdoc.CommitFloor != bdoc.Seq {
		t.Fatalf("backup role/floor/seq = %s/%d/%d", bdoc.Role, bdoc.CommitFloor, bdoc.Seq)
	}
}
